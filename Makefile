GO ?= go

.PHONY: all build test race vet lint torture bench bench-paper experiments clean

all: vet lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The kernel tree is where the concurrency lives (sharded bcache,
# per-inode filesystem locking, sched, ksync); CI runs this twice under
# the race detector (kernel-stress job), this target mirrors it locally.
race:
	$(GO) test -race -count=2 ./internal/kernel/...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed:"; gofmt -l .; exit 1; }

# Documentation lint: the storage-stack packages treat their docs as a
# contract (doc.go invariants, go doc usability), so every exported
# identifier there must carry a doc comment. cmd/lintdoc is the
# dependency-free revive/golint "exported" rule.
lint:
	$(GO) run ./cmd/lintdoc internal/kernel/blkq internal/kernel/bcache \
		internal/kernel/fs internal/kernel/errseq internal/kernel/uring \
		internal/kernel/dcache internal/kernel/net internal/kernel/bufpool

# Lookup-vs-mutation torture: concurrent walkers on the dentry cache's
# lock-free fast path against create/unlink/rename/rmdir mutators, on
# both filesystems, repeated under the race detector. CI runs this as its
# own job; the generation-protocol bugs it hunts only surface under -race
# and repetition.
torture:
	$(GO) test -race -count=2 -run TestTortureLookupVsMutation -v ./internal/kernel/dcache

# Storage-stack perf trajectory: the write-heavy harness compares the
# async stack (blkq + write-behind + flusher daemon) against the
# synchronous-writeback baseline — asserting >= 2x throughput and a merge
# ratio > 1 — and the 1-appender fsync workload with anticipatory
# plugging off/on — asserting the plugged merge ratio wins — recording
# both in BENCH_blkq.json; the random-4K file-IO harness compares pread
# on a shared open file description against the lseek+read idiom it
# replaced — asserting pread >= baseline — recording BENCH_file.json,
# and the ring-vs-syscall random-4K harness merges its ring_random4k
# section into the same file — asserting the batched ring path >= 1.3x
# the one-syscall-per-op loop on a latency-bound device;
# then the parallel-files, write-heavy, and fsync-append benchmarks run
# for the log. The write-heavy harness additionally gates against its
# PR 5 recording (>= 0.8x) now that the ordered-writes discipline is in,
# and the journal-overhead harness records what the xv6fs write-ahead
# log costs against an unjournaled mount of the same image
# (BENCH_journal.json). The path-lookup harness compares stat traffic
# with the dentry cache attached against the uncached locked walk on a
# latency-bound device — asserting >= 1.5x — recording BENCH_path.json.
# The network harness runs the chanserv broadcast workload end to end
# over the NIC link — accept rate, single-connection echo, and broadcast
# fan-out at 64 and 256 members — gating the fan-out floor at 4 MB/s and
# recording BENCH_net.json. CI runs this as a non-blocking job.
bench:
	BENCH_BLKQ_JSON=$(CURDIR)/BENCH_blkq.json $(GO) test -run TestWriteHeavyThroughput -v ./internal/kernel/fat32
	BENCH_FILE_JSON=$(CURDIR)/BENCH_file.json $(GO) test -run TestFileIOThroughput -v ./internal/kernel/xv6fs
	BENCH_FILE_JSON=$(CURDIR)/BENCH_file.json $(GO) test -run TestRingIOThroughput -v ./internal/kernel
	BENCH_JOURNAL_JSON=$(CURDIR)/BENCH_journal.json $(GO) test -run TestJournalOverhead -v ./internal/kernel/xv6fs
	BENCH_PATH_JSON=$(CURDIR)/BENCH_path.json $(GO) test -run TestPathLookupThroughput -v ./internal/kernel/dcache
	BENCH_NET_JSON=$(CURDIR)/BENCH_net.json $(GO) test -run TestNetThroughput -v ./internal/user/apps/chanserv
	$(GO) test -bench 'BenchmarkParallelFiles|BenchmarkWriteHeavy|BenchmarkFsyncAppend|BenchmarkRandom|BenchmarkPathLookup' -benchtime 1x -run '^$$' ./internal/kernel/fat32 ./internal/kernel/xv6fs ./internal/kernel/dcache

# The paper's evaluation as Go benchmarks (Fig 8/9/10, Table 5, ablations,
# sharded-cache vs bypass).
bench-paper:
	$(GO) test -bench . -benchtime 3x -benchmem .

experiments:
	$(GO) run ./cmd/experiments -exp all

clean:
	$(GO) clean ./...
	rm -rf images
