GO ?= go

.PHONY: all build test race vet bench experiments clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The kernel tree is where the concurrency lives (sharded bcache,
# per-inode filesystem locking, sched, ksync); CI runs this twice under
# the race detector (kernel-stress job), this target mirrors it locally.
race:
	$(GO) test -race -count=2 ./internal/kernel/...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed:"; gofmt -l .; exit 1; }

# The paper's evaluation as Go benchmarks (Fig 8/9/10, Table 5, ablations,
# sharded-cache vs bypass).
bench:
	$(GO) test -bench . -benchtime 3x -benchmem .

experiments:
	$(GO) run ./cmd/experiments -exp all

clean:
	$(GO) clean ./...
	rm -rf images
