module protosim

go 1.24
