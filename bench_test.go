// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §3 and EXPERIMENTS.md), plus ablations for the design
// choices §5.2 calls out (memmove, YUV conversion, FAT32 range bypass,
// fork strategy). Run: go test -bench=. -benchmem
package main

import (
	"fmt"
	"testing"
	"time"

	"protosim/internal/core"
	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/mm"
	"protosim/internal/user/apps/blockchain"
	"protosim/internal/user/apps/nes"
	"protosim/internal/user/codec/mpv"
)

// bootP5 boots a Prototype 5 system for benchmarking.
func bootP5(b *testing.B, cores int, mode kernel.Mode) *core.System {
	b.Helper()
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		Cores:      cores,
		Mode:       mode,
		MemBytes:   96 << 20,
		AssetScale: 8,
		FBWidth:    640,
		FBHeight:   480,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Shutdown() })
	return sys
}

// inProc runs fn inside a process and waits.
func inProc(b *testing.B, sys *core.System, fn func(p *kernel.Proc)) {
	b.Helper()
	done := make(chan struct{})
	sys.Kernel.Spawn("bench", 0, func(p *kernel.Proc, _ []string) int {
		fn(p)
		close(done)
		return 0
	}, nil)
	select {
	case <-done:
	case <-time.After(10 * time.Minute):
		b.Fatal("bench process hung")
	}
}

// --- Figure 8 ---

func BenchmarkFig8Syscall(b *testing.B) {
	sys := bootP5(b, 4, kernel.ModeProto)
	inProc(b, sys, func(p *kernel.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SysGetPID()
		}
	})
}

func BenchmarkFig8IPCPipe(b *testing.B) {
	sys := bootP5(b, 4, kernel.ModeProto)
	inProc(b, sys, func(p *kernel.Proc) {
		r1, w1, _ := p.SysPipe()
		r2, w2, _ := p.SysPipe()
		n := b.N
		p.SysFork(func(c *kernel.Proc) {
			buf := make([]byte, 1)
			for i := 0; i < n; i++ {
				if _, err := c.SysRead(r1, buf); err != nil {
					return
				}
				if _, err := c.SysWrite(w2, buf); err != nil {
					return
				}
			}
		})
		buf := []byte{1}
		b.ResetTimer()
		for i := 0; i < n; i++ {
			p.SysWrite(w1, buf)
			p.SysRead(r2, buf)
		}
		b.StopTimer()
		p.SysWait()
	})
}

func benchFSThroughput(b *testing.B, ioSize int, write bool) {
	sys := bootP5(b, 4, kernel.ModeProto)
	inProc(b, sys, func(p *kernel.Proc) {
		buf := make([]byte, ioSize)
		fd, err := p.SysOpen("/d/bench.bin", fs.OCreate|fs.ORdWr|fs.OTrunc)
		if err != nil {
			b.Error(err)
			return
		}
		// Preallocate 1 MB for the read case.
		for written := 0; written < 1<<20; written += ioSize {
			p.SysWrite(fd, buf)
		}
		b.SetBytes(int64(ioSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if write {
				off := int64(i%(1<<20/ioSize)) * int64(ioSize)
				p.SysLseek(fd, off, fs.SeekSet)
				p.SysWrite(fd, buf)
			} else {
				off := int64(i%(1<<20/ioSize)) * int64(ioSize)
				p.SysLseek(fd, off, fs.SeekSet)
				p.SysRead(fd, buf)
			}
		}
		b.StopTimer()
		p.SysClose(fd)
	})
}

func BenchmarkFig8FATRead4K(b *testing.B)    { benchFSThroughput(b, 4<<10, false) }
func BenchmarkFig8FATRead128K(b *testing.B)  { benchFSThroughput(b, 128<<10, false) }
func BenchmarkFig8FATRead512K(b *testing.B)  { benchFSThroughput(b, 512<<10, false) }
func BenchmarkFig8FATWrite128K(b *testing.B) { benchFSThroughput(b, 128<<10, true) }

func BenchmarkFig8Boot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Options{
			Prototype: core.Prototype5, AssetScale: 8, MemBytes: 96 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Shutdown()
	}
}

// --- Figure 9 (the mode-sensitive pair that defines the figure's shape) ---

func benchFork(b *testing.B, mode kernel.Mode) {
	sys := bootP5(b, 4, mode)
	inProc(b, sys, func(p *kernel.Proc) {
		p.SysSbrk(96 * mm.PageSize) // pages for fork to copy (or COW-share)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SysFork(func(c *kernel.Proc) {})
			p.SysWait()
		}
	})
}

// BenchmarkFig9ForkProto vs BenchmarkFig9ForkProd shows the eager-copy vs
// COW gap (paper: Proto's fork ~17x slower than production OSes).
func BenchmarkFig9ForkProto(b *testing.B) { benchFork(b, kernel.ModeProto) }
func BenchmarkFig9ForkProd(b *testing.B)  { benchFork(b, kernel.ModeProd) }

func benchDiskRead(b *testing.B, mode kernel.Mode) {
	sys := bootP5(b, 4, mode)
	inProc(b, sys, func(p *kernel.Proc) {
		buf := make([]byte, 256<<10)
		fd, _ := p.SysOpen("/d/dfr.bin", fs.OCreate|fs.ORdWr)
		p.SysWrite(fd, buf)
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SysLseek(fd, 0, fs.SeekSet)
			p.SysRead(fd, buf)
		}
		b.StopTimer()
		p.SysClose(fd)
	})
}

// Proto's disk read path vs the xv6 baseline. Since the sharded cache
// landed, the Proto column is a warm-cache read (the 256 KB file fits),
// while the xv6 column runs a faithful 30-buffer single-shard cache with
// per-sector commands — so the gap is much larger than the paper's 2–3×
// device-path effect. The §5.2 range-vs-bypass *device* comparison lives
// in BenchmarkRangeRead256K{Sharded,Bypass} below.
func BenchmarkFig9DiskReadProto(b *testing.B) { benchDiskRead(b, kernel.ModeProto) }
func BenchmarkFig9DiskReadXv6(b *testing.B)   { benchDiskRead(b, kernel.ModeXv6) }

// --- Sharded cache vs the old direct-device bypass ---
//
// The bypass was the pre-sharded-cache fast path: range commands straight
// to the SD card, no caching. The sharded cache issues the same coalesced
// commands on a cold pass and serves repeats from memory, so it must be at
// parity or better on every shape these benchmarks measure.

func benchRangeIO(b *testing.B, write bool, path fat32.DataPath) {
	sys := bootP5(b, 4, kernel.ModeProto)
	sys.Kernel.FatFS.SetDataPath(path)
	const fileSize = 256 << 10
	inProc(b, sys, func(p *kernel.Proc) {
		buf := make([]byte, fileSize)
		fd, err := p.SysOpen("/d/range.bin", fs.OCreate|fs.ORdWr|fs.OTrunc)
		if err != nil {
			b.Error(err)
			return
		}
		if _, err := p.SysWrite(fd, buf); err != nil {
			b.Error(err)
			return
		}
		b.SetBytes(fileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SysLseek(fd, 0, fs.SeekSet)
			var n int
			var err error
			if write {
				n, err = p.SysWrite(fd, buf)
			} else {
				n, err = p.SysRead(fd, buf)
			}
			if err != nil || n != fileSize {
				b.Errorf("iteration %d: n=%d err=%v", i, n, err)
				return
			}
		}
		b.StopTimer()
		p.SysClose(fd)
	})
}

func BenchmarkRangeRead256KSharded(b *testing.B)  { benchRangeIO(b, false, fat32.DataPathRange) }
func BenchmarkRangeRead256KBypass(b *testing.B)   { benchRangeIO(b, false, fat32.DataPathBypass) }
func BenchmarkRangeWrite256KSharded(b *testing.B) { benchRangeIO(b, true, fat32.DataPathRange) }
func BenchmarkRangeWrite256KBypass(b *testing.B)  { benchRangeIO(b, true, fat32.DataPathBypass) }

// --- Table 5: app FPS ---

func benchAppFPS(b *testing.B, app string, argvFor func(frames int) []string) {
	sys := bootP5(b, 4, kernel.ModeProto)
	frames := b.N
	if frames < 5 {
		frames = 5
	}
	start := time.Now()
	code, err := sys.RunApp(app, argvFor(frames), 10*time.Minute)
	if err != nil || code != 0 {
		b.Fatalf("%s: code=%d err=%v", app, code, err)
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(frames)/elapsed.Seconds(), "fps")
	b.ReportMetric(0, "ns/op") // fps is the meaningful metric here
}

func BenchmarkTable5Doom(b *testing.B) {
	benchAppFPS(b, "doom", func(f int) []string { return []string{"doom", "/d/doom1.wad", fmt.Sprint(f)} })
}

func BenchmarkTable5Video480(b *testing.B) {
	benchAppFPS(b, "videoplayer", func(f int) []string {
		return []string{"videoplayer", "/d/clip480.mpv", fmt.Sprint(f)}
	})
}

func BenchmarkTable5MarioNoInput(b *testing.B) {
	benchAppFPS(b, "mario-noinput", func(f int) []string {
		return []string{"mario-noinput", "builtin:mario", fmt.Sprint(f)}
	})
}

func BenchmarkTable5MarioProc(b *testing.B) {
	benchAppFPS(b, "mario-proc", func(f int) []string {
		return []string{"mario-proc", "builtin:mario", fmt.Sprint(f)}
	})
}

func BenchmarkTable5MarioSDL(b *testing.B) {
	benchAppFPS(b, "mario-sdl", func(f int) []string {
		return []string{"mario-sdl", "builtin:mario", fmt.Sprint(f)}
	})
}

// --- Figure 10: multicore ---

func benchMario8(b *testing.B, cores int) {
	sys := bootP5(b, cores, kernel.ModeProto)
	frames := b.N
	if frames < 4 {
		frames = 4
	}
	start := time.Now()
	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		sys.Kernel.Spawn("mario8", 0, func(p *kernel.Proc, _ []string) int {
			code := runMarioFrames(p, frames)
			done <- code
			return code
		}, nil)
	}
	for i := 0; i < 8; i++ {
		if code := <-done; code != 0 {
			b.Fatalf("instance exited %d", code)
		}
	}
	b.ReportMetric(float64(frames)/time.Since(start).Seconds(), "fps/instance")
}

func runMarioFrames(p *kernel.Proc, frames int) int {
	cart, err := nes.BuildMarioROM("mario", 3)
	if err != nil {
		return 1
	}
	console := nes.NewConsole(cart)
	frame := make([]byte, nes.ScreenW*nes.ScreenH*4)
	for i := 0; i < frames; i++ {
		console.StepFrame()
		console.Render(frame, nes.ScreenW*4)
		p.Checkpoint()
	}
	return 0
}

func BenchmarkFig10Mario8x1Core(b *testing.B)  { benchMario8(b, 1) }
func BenchmarkFig10Mario8x2Cores(b *testing.B) { benchMario8(b, 2) }
func BenchmarkFig10Mario8x4Cores(b *testing.B) { benchMario8(b, 4) }

func benchMiner(b *testing.B, cores int) {
	sys := bootP5(b, cores, kernel.ModeProto)
	inProc(b, sys, func(p *kernel.Proc) {
		m := blockchain.NewMiner(12, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk := blockchain.Block{Index: uint32(i)}
			if _, err := m.MineBlock(p, blk); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkFig10Blockchain1Core(b *testing.B)  { benchMiner(b, 1) }
func BenchmarkFig10Blockchain4Cores(b *testing.B) { benchMiner(b, 4) }

// --- Ablations (§5.2's optimizations) ---

// Memmove: the ARMv8-assembly substitute vs the byte loop.
func BenchmarkAblationMemmoveFast(b *testing.B) {
	mem := hw.NewMem(8 << 20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		mem.MemMove(0, 4<<20, 1<<20)
	}
}

func BenchmarkAblationMemmoveSlow(b *testing.B) {
	mem := hw.NewMem(8 << 20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		mem.MemMoveSlow(0, 4<<20, 1<<20)
	}
}

// YUV conversion: fixed-point (SIMD substitute) vs naive float — the
// "nearly 3x" of §5.2.
func benchYUV(b *testing.B, fast bool) {
	w, h := 640, 480
	f := mpv.NewFrame(w, h)
	for i := range f.Y {
		f.Y[i] = byte(i)
	}
	dst := make([]byte, w*h*4)
	b.SetBytes(int64(w * h * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fast {
			mpv.FastYUVToXRGB(f, dst, w*4)
		} else {
			mpv.SlowYUVToXRGB(f, dst, w*4)
		}
	}
}

func BenchmarkAblationYUVFast(b *testing.B) { benchYUV(b, true) }
func BenchmarkAblationYUVSlow(b *testing.B) { benchYUV(b, false) }

// Emulator-only FPS (no OS): isolates app cost from OS cost in Table 5.
func BenchmarkAblationMarioEmulatorOnly(b *testing.B) {
	cart, err := nes.BuildMarioROM("mario", 3)
	if err != nil {
		b.Fatal(err)
	}
	console := nes.NewConsole(cart)
	frame := make([]byte, nes.ScreenW*nes.ScreenH*4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		console.StepFrame()
		console.Render(frame, nes.ScreenW*4)
	}
}
