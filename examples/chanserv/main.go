// Chanserv demo: boot Prototype 5 with the NIC pair, run the broadcast
// channel server as a kernel process, and drive a three-way chat from
// host-side clients at the far end of the link. Finishes by printing
// /proc/net as the kernel sees the connections.
//
//	go run ./examples/chanserv
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"protosim/internal/core"
	"protosim/internal/kernel"
	"protosim/internal/kernel/net"
	"protosim/internal/user/apps/chanserv"
	"protosim/internal/user/ulib"
)

// chatClient is one host-side participant: a peer-stack socket plus
// frame reassembly.
type chatClient struct {
	name string
	sk   *net.Socket
	d    ulib.FrameDecoder
	buf  []byte
}

func dial(peer *net.Stack, name, room string) (*chatClient, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		sk := peer.NewSocket()
		err := sk.Connect(nil, net.Addr{Host: kernel.NetLocalHost, Port: chanserv.DefaultPort})
		if err == nil {
			c := &chatClient{name: name, sk: sk, buf: make([]byte, 4096)}
			return c, c.send(room)
		}
		sk.Close(nil)
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("connect: %w", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *chatClient) send(msg string) error {
	buf := ulib.EncodeFrame([]byte(msg))
	for len(buf) > 0 {
		n, err := c.sk.Write(nil, buf)
		if err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

func (c *chatClient) next() (string, error) {
	for {
		if f, err := c.d.Next(); f != nil || err != nil {
			return string(f), err
		}
		n, err := c.sk.Read(nil, c.buf)
		if err != nil {
			return "", err
		}
		if n == 0 {
			return "", io.EOF
		}
		c.d.Feed(c.buf[:n])
	}
}

func main() {
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		AssetScale: 4,
		EnableNet:  true,
		ConsoleOut: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// The peer stack is "the rest of the network": a host-side net.Stack
	// on the far NIC of the link, no kernel underneath it.
	peer := net.NewStack("peer0", kernel.NetPeerHost, sys.Machine.PeerNIC, net.Options{
		After: func(d time.Duration, fn func()) func() bool {
			return time.AfterFunc(d, fn).Stop
		},
	})
	sys.Machine.PeerNIC.SetNotify(peer.IRQ)
	defer peer.Close()

	// The server runs as an ordinary kernel process: sockets are file
	// descriptors, each client connection gets its own task.
	done := make(chan int, 1)
	sys.Kernel.Spawn("chanserv", 0, func(p *kernel.Proc, argv []string) int {
		code := chanserv.Main(p, argv)
		done <- code
		return code
	}, []string{"chanserv"})

	names := []string{"ada", "bob", "cyn"}
	clients := make([]*chatClient, len(names))
	for i, name := range names {
		c, err := dial(peer, name, "lobby")
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		clients[i] = c
		// Announce; waiting for our own copy confirms the join landed
		// before the next client speaks.
		hello := name + " joined"
		if err := c.send(hello); err != nil {
			log.Fatal(err)
		}
		for _, earlier := range clients[:i+1] {
			msg, err := earlier.next()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  [%s sees] %s\n", earlier.name, msg)
		}
	}

	if err := clients[0].send("hello from the host side"); err != nil {
		log.Fatal(err)
	}
	for _, c := range clients {
		msg, err := c.next()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%s sees] %s\n", c.name, msg)
	}

	// The kernel's view of all this: /proc/net through the VFS.
	fmt.Printf("\n/proc/net:\n")
	if _, err := sys.RunShellScript("cat /proc/net\n", time.Minute); err != nil {
		log.Fatal(err)
	}

	if err := clients[0].send("/shutdown"); err != nil {
		log.Fatal(err)
	}
	select {
	case code := <-done:
		fmt.Printf("chanserv exited %d\n", code)
	case <-time.After(30 * time.Second):
		log.Fatal("chanserv did not exit")
	}
	for _, c := range clients {
		c.sk.Close(nil)
	}
}
