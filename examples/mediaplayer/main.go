// Mediaplayer: the §4.4 producer-consumer audio pipeline plus video
// playback — MusicPlayer streams ADPCM blocks to /dev/sb through the DMA
// engine while VideoPlayer decodes MPV1 frames to the framebuffer.
//
//	go run ./examples/mediaplayer
package main

import (
	"fmt"
	"log"
	"time"

	"protosim/internal/core"
)

func main() {
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		AssetScale: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// Music: decode POG on a clone()d thread, stream to /dev/sb, DMA to
	// the PWM output.
	start := time.Now()
	code, err := sys.RunApp("musicplayer",
		[]string{"musicplayer", "/d/track01.pog", "/d/cover01.bmp"}, 5*time.Minute)
	if err != nil || code != 0 {
		log.Fatalf("musicplayer: code=%d err=%v", code, err)
	}
	consumed, underruns, _ := sys.Machine.PWM.Stats()
	xfers, bytes := sys.Machine.DMA.Stats()
	fmt.Printf("music: %v, %d samples played, %d underruns, %d DMA transfers (%d bytes)\n",
		time.Since(start).Round(time.Millisecond), consumed, underruns, xfers, bytes)

	// Video: decode and present at the native framerate.
	const frames = 12
	start = time.Now()
	code, err = sys.RunApp("videoplayer",
		[]string{"videoplayer", "/d/clip480.mpv", fmt.Sprint(frames)}, 5*time.Minute)
	if err != nil || code != 0 {
		log.Fatalf("videoplayer: code=%d err=%v", code, err)
	}
	fmt.Printf("video: %d frames in %v\n", frames, time.Since(start).Round(time.Millisecond))

	// Slides from the FAT32 partition.
	code, err = sys.RunApp("slider", []string{"slider", "/d/photos", "3"}, 5*time.Minute)
	if err != nil || code != 0 {
		log.Fatalf("slider: code=%d err=%v", code, err)
	}
	fmt.Println("slider: 3 slides shown")
}
