// Quickstart: boot Prototype 5, run a shell script, then play the pixel
// donut — the "hello world" of the protosim public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"protosim/internal/core"
)

func main() {
	// Boot a full Prototype 5 system: 4 cores, xv6fs root with all the
	// apps, FAT32 SD card with game/media assets, USB keyboard, window
	// manager. ConsoleOut mirrors the UART to our stdout.
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		AssetScale: 4, // small assets for a fast start
		ConsoleOut: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// Run a shell script against the root filesystem.
	code, err := sys.RunShellScript(
		"echo hello from proto > /greeting\ncat /greeting\nls /bin\nuptime\n",
		time.Minute)
	if err != nil || code != 0 {
		log.Fatalf("script: code=%d err=%v", code, err)
	}

	// Run the Prototype 1 flagship app: 30 frames of the spinning donut.
	start := time.Now()
	code, err = sys.RunApp("donut", []string{"donut", "30"}, time.Minute)
	if err != nil || code != 0 {
		log.Fatalf("donut: code=%d err=%v", code, err)
	}
	fmt.Printf("\ndonut rendered 30 frames in %v\n", time.Since(start).Round(time.Millisecond))

	// Peek at the simulated panel: a donut means non-background pixels.
	lit := 0
	snap := sys.Kernel.FB.Snapshot()
	for _, b := range snap {
		if b != 0 && b != 0xFF {
			lit++
		}
	}
	fmt.Printf("panel shows %d non-trivial bytes of donut\n", lit)
}
