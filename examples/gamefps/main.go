// Gamefps: the Table 5 scenario in miniature — run DOOM and the mario
// variants, print their frame rates, and press some keys mid-game through
// the simulated USB keyboard.
//
//	go run ./examples/gamefps
package main

import (
	"fmt"
	"log"
	"time"

	"protosim/internal/core"
	"protosim/internal/hw"
)

func main() {
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		AssetScale: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	const frames = 60
	apps := []struct {
		name string
		argv []string
	}{
		{"doom", []string{"doom", "/d/doom1.wad", fmt.Sprint(frames)}},
		{"mario-noinput", []string{"mario-noinput", "builtin:mario", fmt.Sprint(frames)}},
		{"mario-sdl", []string{"mario-sdl", "builtin:mario", fmt.Sprint(frames)}},
	}

	for _, app := range apps {
		// Hold a key down while the game runs: doom polls non-blocking,
		// mario-sdl gets it via WM focus routing.
		go func() {
			time.Sleep(50 * time.Millisecond)
			sys.Keyboard.KeyDown(hw.UsageUp)
			time.Sleep(150 * time.Millisecond)
			sys.Keyboard.KeyUp(hw.UsageUp)
		}()
		start := time.Now()
		code, err := sys.RunApp(app.name, app.argv, 5*time.Minute)
		if err != nil || code != 0 {
			log.Fatalf("%s: code=%d err=%v", app.name, code, err)
		}
		fps := float64(frames) / time.Since(start).Seconds()
		fmt.Printf("%-14s %6.1f FPS (paper on Pi3: doom 62, mario 72-115)\n", app.name, fps)
	}
}
