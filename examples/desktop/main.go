// Desktop: the Figure 1(m) scenario — several windowed apps at once with
// the translucent sysmon floating on top, a user typing, and ctrl+tab
// switching focus through the window manager.
//
//	go run ./examples/desktop
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"protosim/internal/core"
	"protosim/internal/hw"
)

func main() {
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		AssetScale: 4,
		ConsoleOut: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// Launch three windowed apps concurrently: two marios and sysmon.
	done := make(chan string, 3)
	go func() {
		sys.RunApp("mario-sdl", []string{"mario-sdl", "builtin:mario", "60"}, 2*time.Minute)
		done <- "mario-1"
	}()
	go func() {
		sys.RunApp("mario-sdl", []string{"mario-sdl", "builtin:mario", "60"}, 2*time.Minute)
		done <- "mario-2"
	}()
	go func() {
		sys.RunApp("sysmon", []string{"sysmon", "10"}, 2*time.Minute)
		done <- "sysmon"
	}()

	// Give the windows a moment, then drive the keyboard: arrows reach
	// the focused mario; ctrl+tab rotates focus.
	time.Sleep(200 * time.Millisecond)
	kbd := sys.Keyboard
	kbd.KeyDown(hw.UsageRight)
	time.Sleep(100 * time.Millisecond)
	kbd.KeyUp(hw.UsageRight)
	kbd.ModifierDown(hw.ModLCtrl)
	kbd.Tap(hw.UsageTab)
	kbd.ModifierUp(hw.ModLCtrl)

	for i := 0; i < 3; i++ {
		fmt.Printf("[%s finished]\n", <-done)
	}

	frames, pixels := sys.Kernel.WM.Stats()
	fmt.Printf("window manager composited %d frames (%d pixels blended)\n", frames, pixels)
	surfaces := len(sys.Kernel.WM.Surfaces())
	fmt.Printf("%d surfaces still open at exit\n", surfaces)
}
