// Command experiments regenerates the paper's tables and figures against
// the simulated system.
//
// Usage:
//
//	experiments -exp all            # everything (slow: full Fig 9 + Table 5)
//	experiments -exp table1         # one experiment
//	experiments -exp table5 -frames 120 -scale 1   # paper-sized assets
//
// Experiments: table1 table2 table5 fig7 fig8 fig9 fig10 fig11 fig12 fig13.
package main

import (
	"flag"
	"fmt"
	"os"

	"protosim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1,table2,table5,fig7..fig13,all)")
	frames := flag.Int("frames", 60, "frames per app run (table5, fig10, fig11)")
	scale := flag.Int("scale", 4, "asset scale divisor (1 = paper-sized assets)")
	difficulty := flag.Int("difficulty", 18, "blockchain difficulty bits (fig10)")
	root := flag.String("root", ".", "repository root (fig7)")
	flag.Parse()

	run := func(name string, fn func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table1", func() (string, error) { return experiments.Table1(), nil })
	run("table2", func() (string, error) { return experiments.Table2(), nil })
	run("fig7", func() (string, error) { return experiments.Fig7(*root) })
	run("fig8", func() (string, error) {
		_, out, err := experiments.Fig8()
		return out, err
	})
	run("fig9", func() (string, error) {
		_, out, err := experiments.Fig9()
		return out, err
	})
	run("table5", func() (string, error) {
		_, out, err := experiments.Table5(*frames, *scale)
		return out, err
	})
	run("fig10", func() (string, error) {
		_, out, err := experiments.Fig10(*frames, *difficulty)
		return out, err
	})
	run("fig11", func() (string, error) {
		_, a, err := experiments.Fig11Rendering(*frames)
		if err != nil {
			return "", err
		}
		_, b, err := experiments.Fig11InputLatency(30)
		return a + "\n" + b, err
	})
	run("fig12", func() (string, error) {
		_, out, err := experiments.Fig12()
		return out, err
	})
	run("fig13", func() (string, error) { return experiments.Fig13(), nil })
}
