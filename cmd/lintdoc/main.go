// Command lintdoc fails when an exported identifier in the given package
// directories lacks a doc comment — the revive/golint "exported" rule as
// a dependency-free script. CI runs it over the storage-stack and
// file-layer packages whose documentation this repo treats as a contract
// (internal/kernel/blkq, internal/kernel/bcache, internal/kernel/fs,
// internal/kernel/errseq), so `go doc` stays usable as the docs evolve.
//
// Usage: go run ./cmd/lintdoc <pkg-dir> [<pkg-dir>...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdoc: %s: %v\n", dir, err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				bad += lintDecl(fset, decl)
			}
		}
	}
	return bad
}

// lintDecl flags exported top-level identifiers (functions, methods with
// exported receivers, types, consts, vars) whose declaration carries no
// doc comment. A documented grouped declaration covers its members — the
// standard "// Errors shared across..." const-block idiom.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	complain := func(pos token.Pos, what, name string) int {
		fmt.Fprintf(os.Stderr, "%s: exported %s %s has no doc comment\n",
			fset.Position(pos), what, name)
		return 1
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return 0
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return 0 // method on an unexported type
		}
		return complain(d.Pos(), "function", d.Name.Name)
	case *ast.GenDecl:
		if d.Doc != nil {
			return 0 // the group comment documents the members
		}
		bad := 0
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil {
					bad += complain(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						bad += complain(n.Pos(), "value", n.Name)
					}
				}
			}
		}
		return bad
	}
	return 0
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
