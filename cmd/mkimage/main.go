// Command mkimage builds Proto's two-partition OS image (§3): partition 1
// is the kernel's ramdisk dump (xv6fs, holding /bin ELF executables, NES
// cartridges and /etc files), partition 2 the FAT32 user partition (game
// assets, music, video, photos). The images are written to files so they
// can be inspected with host tools, then verified by remounting.
//
// Usage:
//
//	mkimage -out ./images -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"protosim/internal/core"
	"protosim/internal/hw"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/xv6fs"
)

func main() {
	out := flag.String("out", "images", "output directory")
	scale := flag.Int("scale", 4, "asset scale divisor (1 = paper-sized)")
	sdMB := flag.Int("sdmb", 32, "SD card size in MB")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("mkdir: %v", err)
	}

	// Partition 1: boot a system to reuse core's ramdisk packing, then
	// dump the root filesystem image.
	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		AssetScale: *scale,
		MemBytes:   96 << 20,
	})
	if err != nil {
		fatal("assemble: %v", err)
	}
	defer sys.Shutdown()

	ramdiskPath := filepath.Join(*out, "ramdisk.img")
	rd, err := core.RootImage(map[string][]byte{
		"/etc/motd": []byte("proto image built by mkimage\n"),
	})
	if err != nil {
		fatal("ramdisk: %v", err)
	}
	if err := os.WriteFile(ramdiskPath, rd, 0o644); err != nil {
		fatal("write: %v", err)
	}

	sdPath := filepath.Join(*out, "sdcard.img")
	if err := os.WriteFile(sdPath, sys.Machine.SD.DumpImage(), 0o644); err != nil {
		fatal("write: %v", err)
	}

	// Verify both images remount and hold the expected files.
	rfs, err := xv6fs.Mount(fs.NewRamdiskFromImage(xv6fs.BlockSize, rd), nil)
	if err != nil {
		fatal("verify ramdisk: %v", err)
	}
	if _, err := rfs.Stat(nil, "/bin/sh"); err != nil {
		fatal("verify ramdisk: /bin/sh: %v", err)
	}
	sd := hw.NewSDCard(len(sys.Machine.SD.DumpImage())/hw.SDBlockSize, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	sd.LoadImage(sys.Machine.SD.DumpImage())
	ffs, err := fat32.Mount(sdDev{sd}, nil)
	if err != nil {
		fatal("verify sd: %v", err)
	}
	st, err := ffs.Stat(nil, "/doom1.wad")
	if err != nil {
		fatal("verify sd: /doom1.wad: %v", err)
	}

	fmt.Printf("wrote %s (%d KB, xv6fs root with /bin)\n", ramdiskPath, len(rd)/1024)
	fmt.Printf("wrote %s (%d MB FAT32, doom1.wad %d KB)\n", sdPath,
		len(sys.Machine.SD.DumpImage())>>20, st.Size/1024)
	_ = sdMB
}

// sdDev adapts hw.SDCard to fs.BlockDevice.
type sdDev struct{ sd *hw.SDCard }

func (d sdDev) BlockSize() int { return hw.SDBlockSize }
func (d sdDev) Blocks() int    { return d.sd.Blocks() }
func (d sdDev) ReadBlocks(lba, n int, dst []byte) error {
	return d.sd.ReadBlocks(lba, n, dst)
}
func (d sdDev) WriteBlocks(lba, n int, src []byte) error {
	return d.sd.WriteBlocks(lba, n, src)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mkimage: "+format+"\n", args...)
	os.Exit(1)
}
