// Command sloc performs Figure 7's source-code analysis on this
// repository: lines of code per subsystem bucket.
//
// Usage: sloc [-root DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"protosim/internal/experiments"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	out, err := experiments.Fig7(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sloc: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
