// Command protorun boots a Proto prototype and runs an app (or a shell
// script), printing the UART console to stdout — the closest thing to
// plugging the Pi3 into a monitor.
//
// Usage:
//
//	protorun -proto 5 -app doom -frames 120
//	protorun -proto 1 -app donut-text -frames 30
//	protorun -proto 4 -script 'echo hello > /f.txt; cat /f.txt'
//	protorun -proto 5 -list           # show the app matrix for -proto
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"protosim/internal/core"
	"protosim/internal/kernel"
)

func main() {
	proto := flag.Int("proto", 5, "prototype stage 1..5")
	app := flag.String("app", "", "app to run (see -list)")
	script := flag.String("script", "", "shell script to execute (prototype >= 4)")
	frames := flag.Int("frames", 60, "frame budget passed to the app")
	cores := flag.Int("cores", 0, "cores (default: prototype-appropriate)")
	mode := flag.String("mode", "proto", "kernel mode: proto, xv6, prod")
	scale := flag.Int("scale", 4, "asset scale divisor (1 = paper-sized)")
	list := flag.Bool("list", false, "list apps runnable on -proto")
	flag.Parse()

	if *list {
		fmt.Printf("Prototype %d (%s):\n", *proto, core.Prototype(*proto).Title())
		for _, a := range core.Apps() {
			ok, missing := core.CanRun(a, core.Prototype(*proto))
			status := "ok"
			if !ok {
				status = "needs " + missing
			}
			fmt.Printf("  %-16s %-34s %s\n", a.Name, a.Desc, status)
		}
		return
	}

	var m kernel.Mode
	switch *mode {
	case "proto":
		m = kernel.ModeProto
	case "xv6":
		m = kernel.ModeXv6
	case "prod":
		m = kernel.ModeProd
	default:
		fatal("unknown mode %q", *mode)
	}

	sys, err := core.NewSystem(core.Options{
		Prototype:  core.Prototype(*proto),
		Cores:      *cores,
		Mode:       m,
		AssetScale: *scale,
		ConsoleOut: os.Stdout,
	})
	if err != nil {
		fatal("boot: %v", err)
	}
	defer sys.Shutdown()

	switch {
	case *script != "":
		code, err := sys.RunShellScript(strings.ReplaceAll(*script, ";", "\n"), 5*time.Minute)
		if err != nil {
			fatal("script: %v", err)
		}
		fmt.Printf("\n[script exited %d]\n", code)
	case *app != "":
		argv := append([]string{*app}, flag.Args()...)
		if len(argv) == 1 {
			argv = defaultArgv(*app, *frames)
		}
		start := time.Now()
		code, err := sys.RunApp(*app, argv, 10*time.Minute)
		if err != nil {
			fatal("%s: %v", *app, err)
		}
		elapsed := time.Since(start)
		fmt.Printf("\n[%s exited %d after %v — %.1f FPS over %d frames]\n",
			*app, code, elapsed.Round(time.Millisecond), float64(*frames)/elapsed.Seconds(), *frames)
	default:
		fatal("pass -app, -script or -list")
	}
}

// defaultArgv fills each app's conventional arguments.
func defaultArgv(app string, frames int) []string {
	f := fmt.Sprint(frames)
	switch app {
	case "doom":
		return []string{app, "/d/doom1.wad", f}
	case "videoplayer":
		return []string{app, "/d/clip480.mpv", f}
	case "mario-noinput", "mario-proc", "mario-sdl":
		return []string{app, "builtin:mario", f}
	case "donut", "donut-text", "sysmon", "launcher":
		return []string{app, f}
	case "slider":
		return []string{app, "/d/photos", "3"}
	case "blockchain":
		return []string{app, "2", "14", "4"}
	}
	return []string{app}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
