// Package uelf builds and parses the ELF64 executables Proto's exec() loads.
//
// Proto packs user programs as AArch64 ELF executables in the ramdisk; its
// exec() parses the ELF region and loads code/data segments into the user
// address space (§4.3). In this reproduction the "machine code" of a
// program is a registry token — a magic string naming the Go function that
// implements the app — but everything around it is genuine ELF64: magic,
// class/data/machine fields, program headers with vaddr/filesz/memsz/flags,
// and an entry point inside the text segment. exec() performs the same
// validation and mapping work the real kernel does, and corrupt images fail
// in the same ways (bad magic, wrong class, truncated phdrs).
package uelf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ELF constants (the subset exec validates).
const (
	elfClass64   = 2
	elfLittle    = 1
	elfTypeExec  = 2
	elfMachARM64 = 0xB7
	ehSize       = 64
	phSize       = 56

	// TokenMagic marks the text segment of a protosim app.
	TokenMagic = "PROTOAPP"
)

// Segment load addresses: text at 64 KB (leaving page 0 unmapped to catch
// null derefs), data after it.
const (
	TextVaddr = 0x10000
	DataAlign = 0x1000
)

// Segment flags.
const (
	FlagX = 1
	FlagW = 2
	FlagR = 4
)

// Errors from Parse.
var (
	ErrNotELF    = errors.New("uelf: bad ELF magic")
	ErrBadClass  = errors.New("uelf: not ELF64 little-endian")
	ErrBadType   = errors.New("uelf: not an AArch64 executable")
	ErrTruncated = errors.New("uelf: truncated image")
	ErrNoToken   = errors.New("uelf: no program token in text segment")
)

// Segment is one loadable program header.
type Segment struct {
	Vaddr uint64
	Data  []byte
	MemSz uint64 // >= len(Data); the rest is BSS
	Flags uint32
}

// Image is a parsed executable.
type Image struct {
	Entry    uint64
	Segments []Segment
	// Program is the registry token extracted from the text segment — the
	// name exec() resolves to a Go function.
	Program string
}

// Build produces an ELF64 AArch64 executable whose text segment carries the
// program token and whose data segment carries payload (may be nil). bss
// adds zero-initialized space after the data.
func Build(program string, payload []byte, bss int) []byte {
	text := make([]byte, 0, len(TokenMagic)+1+len(program)+1)
	text = append(text, TokenMagic...)
	text = append(text, 0)
	text = append(text, program...)
	text = append(text, 0)
	// Pad text so it looks like real code (and exceeds one instruction).
	for len(text)%16 != 0 {
		text = append(text, 0xD5) // a byte of "nop"-ish filler
	}

	nph := 1
	if len(payload) > 0 || bss > 0 {
		nph = 2
	}
	textOff := uint64(ehSize + nph*phSize)
	dataOff := textOff + uint64(len(text))
	dataVaddr := (TextVaddr + uint64(len(text)) + DataAlign - 1) &^ (DataAlign - 1)

	img := make([]byte, int(dataOff)+len(payload))
	// ELF header.
	copy(img[0:4], "\x7fELF")
	img[4] = elfClass64
	img[5] = elfLittle
	img[6] = 1 // version
	binary.LittleEndian.PutUint16(img[16:], elfTypeExec)
	binary.LittleEndian.PutUint16(img[18:], elfMachARM64)
	binary.LittleEndian.PutUint32(img[20:], 1)
	binary.LittleEndian.PutUint64(img[24:], TextVaddr) // entry
	binary.LittleEndian.PutUint64(img[32:], ehSize)    // phoff
	binary.LittleEndian.PutUint16(img[52:], ehSize)
	binary.LittleEndian.PutUint16(img[54:], phSize)
	binary.LittleEndian.PutUint16(img[56:], uint16(nph))

	// Text phdr.
	ph := img[ehSize:]
	binary.LittleEndian.PutUint32(ph[0:], 1) // PT_LOAD
	binary.LittleEndian.PutUint32(ph[4:], FlagR|FlagX)
	binary.LittleEndian.PutUint64(ph[8:], textOff)
	binary.LittleEndian.PutUint64(ph[16:], TextVaddr)
	binary.LittleEndian.PutUint64(ph[24:], TextVaddr)
	binary.LittleEndian.PutUint64(ph[32:], uint64(len(text)))
	binary.LittleEndian.PutUint64(ph[40:], uint64(len(text)))
	binary.LittleEndian.PutUint64(ph[48:], DataAlign)

	if nph == 2 {
		ph2 := img[ehSize+phSize:]
		binary.LittleEndian.PutUint32(ph2[0:], 1)
		binary.LittleEndian.PutUint32(ph2[4:], FlagR|FlagW)
		binary.LittleEndian.PutUint64(ph2[8:], dataOff)
		binary.LittleEndian.PutUint64(ph2[16:], dataVaddr)
		binary.LittleEndian.PutUint64(ph2[24:], dataVaddr)
		binary.LittleEndian.PutUint64(ph2[32:], uint64(len(payload)))
		binary.LittleEndian.PutUint64(ph2[40:], uint64(len(payload)+bss))
		binary.LittleEndian.PutUint64(ph2[48:], DataAlign)
	}

	copy(img[textOff:], text)
	copy(img[dataOff:], payload)
	return img
}

// Parse validates and decodes an executable image.
func Parse(img []byte) (*Image, error) {
	if len(img) >= 4 && string(img[0:4]) != "\x7fELF" {
		return nil, ErrNotELF
	}
	if len(img) < ehSize {
		return nil, ErrTruncated
	}
	if img[4] != elfClass64 || img[5] != elfLittle {
		return nil, ErrBadClass
	}
	if binary.LittleEndian.Uint16(img[16:]) != elfTypeExec ||
		binary.LittleEndian.Uint16(img[18:]) != elfMachARM64 {
		return nil, ErrBadType
	}
	entry := binary.LittleEndian.Uint64(img[24:])
	phoff := binary.LittleEndian.Uint64(img[32:])
	nph := int(binary.LittleEndian.Uint16(img[56:]))
	out := &Image{Entry: entry}
	for i := 0; i < nph; i++ {
		off := int(phoff) + i*phSize
		if off+phSize > len(img) {
			return nil, ErrTruncated
		}
		ph := img[off:]
		if binary.LittleEndian.Uint32(ph[0:]) != 1 { // PT_LOAD only
			continue
		}
		flags := binary.LittleEndian.Uint32(ph[4:])
		fileOff := binary.LittleEndian.Uint64(ph[8:])
		vaddr := binary.LittleEndian.Uint64(ph[16:])
		filesz := binary.LittleEndian.Uint64(ph[32:])
		memsz := binary.LittleEndian.Uint64(ph[40:])
		if fileOff+filesz > uint64(len(img)) {
			return nil, ErrTruncated
		}
		if memsz < filesz {
			return nil, fmt.Errorf("uelf: memsz %d < filesz %d", memsz, filesz)
		}
		seg := Segment{
			Vaddr: vaddr,
			Data:  img[fileOff : fileOff+filesz],
			MemSz: memsz,
			Flags: flags,
		}
		out.Segments = append(out.Segments, seg)
	}
	// Extract the program token from the segment containing the entry.
	for _, seg := range out.Segments {
		if entry < seg.Vaddr || entry >= seg.Vaddr+uint64(len(seg.Data)) {
			continue
		}
		text := seg.Data[entry-seg.Vaddr:]
		if len(text) < len(TokenMagic)+2 || string(text[:len(TokenMagic)]) != TokenMagic {
			return nil, ErrNoToken
		}
		rest := text[len(TokenMagic)+1:]
		for j, b := range rest {
			if b == 0 {
				out.Program = string(rest[:j])
				return out, nil
			}
		}
		return nil, ErrNoToken
	}
	return nil, ErrNoToken
}
