package uelf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundTrip(t *testing.T) {
	payload := []byte("game assets table")
	img := Build("mario", payload, 4096)
	parsed, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Program != "mario" {
		t.Fatalf("program = %q", parsed.Program)
	}
	if parsed.Entry != TextVaddr {
		t.Fatalf("entry = %#x", parsed.Entry)
	}
	if len(parsed.Segments) != 2 {
		t.Fatalf("segments = %d", len(parsed.Segments))
	}
	text, data := parsed.Segments[0], parsed.Segments[1]
	if text.Flags&FlagX == 0 || data.Flags&FlagW == 0 {
		t.Fatalf("flags: text %b data %b", text.Flags, data.Flags)
	}
	if !bytes.Equal(data.Data, payload) {
		t.Fatal("payload corrupted")
	}
	if data.MemSz != uint64(len(payload)+4096) {
		t.Fatalf("memsz = %d (bss lost)", data.MemSz)
	}
	if data.Vaddr%DataAlign != 0 || data.Vaddr <= text.Vaddr {
		t.Fatalf("data vaddr = %#x", data.Vaddr)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not an elf at all, definitely")); !errors.Is(err, ErrNotELF) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Parse([]byte{0x7f}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsWrongClass(t *testing.T) {
	img := Build("x", nil, 0)
	img[4] = 1 // ELF32
	if _, err := Parse(img); !errors.Is(err, ErrBadClass) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsWrongMachine(t *testing.T) {
	img := Build("x", nil, 0)
	img[18] = 0x3E // x86-64
	if _, err := Parse(img); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsTruncatedSegment(t *testing.T) {
	img := Build("x", []byte("data"), 0)
	if _, err := Parse(img[:len(img)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsMissingToken(t *testing.T) {
	img := Build("x", nil, 0)
	// Corrupt the token magic inside the text segment.
	idx := bytes.Index(img, []byte(TokenMagic))
	img[idx] = 'X'
	if _, err := Parse(img); !errors.Is(err, ErrNoToken) {
		t.Fatalf("err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(nameBytes []byte, payload []byte, bss uint16) bool {
		name := ""
		for _, b := range nameBytes {
			if b >= 'a' && b <= 'z' {
				name += string(rune(b))
			}
		}
		if name == "" {
			name = "app"
		}
		if len(name) > 20 {
			name = name[:20]
		}
		img := Build(name, payload, int(bss))
		p, err := Parse(img)
		if err != nil {
			return false
		}
		if p.Program != name {
			return false
		}
		if len(payload) > 0 {
			if len(p.Segments) != 2 || !bytes.Equal(p.Segments[1].Data, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
