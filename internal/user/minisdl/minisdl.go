// Package minisdl is the trimmed-down SDL of Prototype 5 (§4.5): a small
// portable layer over the window manager's surface device, the per-window
// event stream, and the audio device. Like the real SDL port, audio runs
// on a dedicated clone()d thread streaming samples to /dev/sb while the
// game thread renders (§4.5: "SDL uses a dedicated thread to stream audio
// samples to the device file").
package minisdl

import (
	"errors"
	"sync"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/wm"
)

// Window wraps a WM surface plus its event stream.
type Window struct {
	p   *kernel.Proc
	sfd int
	efd int
	w   int
	h   int
}

// CreateWindow opens a surface and its event queue.
func CreateWindow(p *kernel.Proc, title string, w, h int) (*Window, error) {
	sfd, err := p.OpenSurface(title, w, h)
	if err != nil {
		return nil, err
	}
	efd, err := p.OpenSurfaceEvents(true) // SDL-style polled events
	if err != nil {
		return nil, err
	}
	return &Window{p: p, sfd: sfd, efd: efd, w: w, h: h}, nil
}

// Size returns the window dimensions.
func (win *Window) Size() (w, h int) { return win.w, win.h }

// Present pushes a full XRGB frame to the compositor.
func (win *Window) Present(frame []byte) error {
	_, err := win.p.SysWrite(win.sfd, frame)
	return err
}

// Event is minisdl's event record.
type Event struct {
	Down  bool
	Key   byte // HID usage
	ASCII byte
}

// PollEvent returns the next pending event without blocking.
func (win *Window) PollEvent() (Event, bool) {
	buf := make([]byte, wm.EventSize)
	if _, err := win.p.SysRead(win.efd, buf); err != nil {
		return Event{}, false
	}
	e, ok := wm.DecodeEvent(buf)
	if !ok {
		return Event{}, false
	}
	return Event{Down: e.Down, Key: e.Code, ASCII: e.ASCII}, true
}

// SetAlpha adjusts window translucency.
func (win *Window) SetAlpha(a byte) error {
	_, err := win.p.SysIoctl(win.sfd, kernel.IoctlSurfAlpha, int64(a))
	return err
}

// Key constants re-exported for app convenience.
const (
	KeyUp    = hw.UsageUp
	KeyDown  = hw.UsageDown
	KeyLeft  = hw.UsageLeft
	KeyRight = hw.UsageRight
	KeyEnter = hw.UsageEnter
	KeyEsc   = hw.UsageEsc
)

// Audio is the SDL-style callback audio device: a worker thread repeatedly
// asks the callback for samples and streams them to /dev/sb.
type Audio struct {
	p    *kernel.Proc
	fd   int
	stop chan struct{}
	wg   sync.WaitGroup
	sem  int // completion semaphore
}

// ErrNoAudio is returned when /dev/sb is absent (sound disabled).
var ErrNoAudio = errors.New("minisdl: no audio device")

// OpenAudio starts the audio thread. callback fills buf with 16-bit
// samples and returns how many it wrote; returning 0 ends the stream.
func OpenAudio(p *kernel.Proc, callback func(buf []int16) int) (*Audio, error) {
	fd, err := p.SysOpen("/dev/sb", fs.OWrOnly)
	if err != nil {
		return nil, ErrNoAudio
	}
	sem, err := p.SysSemCreate(0)
	if err != nil {
		return nil, err
	}
	a := &Audio{p: p, fd: fd, stop: make(chan struct{}), sem: sem}
	_, err = p.SysClone("sdl-audio", func(tp *kernel.Proc) {
		defer tp.SysSemPost(sem)
		samples := make([]int16, 2048)
		raw := make([]byte, 0, len(samples)*2)
		for {
			select {
			case <-a.stop:
				return
			default:
			}
			n := callback(samples)
			if n == 0 {
				return
			}
			raw = raw[:0]
			for _, s := range samples[:n] {
				raw = append(raw, byte(uint16(s)), byte(uint16(s)>>8))
			}
			if _, err := tp.SysWrite(a.fd, raw); err != nil {
				return
			}
			tp.Checkpoint()
		}
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Wait blocks until the audio stream ends (callback returned 0), then
// drains the device.
func (a *Audio) Wait() {
	a.p.SysSemWait(a.sem)
	a.p.SysIoctl(a.fd, kernel.IoctlSoundDrain, 0)
}

// Close stops the audio thread.
func (a *Audio) Close() {
	close(a.stop)
	a.p.SysSemWait(a.sem)
}
