// Package apps_test exercises the user applications end to end on booted
// systems: the integration layer between internal/core's prototype tests
// and the per-app packages' unit tests.
package apps_test

import (
	"strings"
	"testing"
	"time"

	"protosim/internal/core"
	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/wm"
	"protosim/internal/user/apps/blockchain"
	"protosim/internal/user/apps/donut"
	"protosim/internal/user/apps/doomlike"
	"protosim/internal/user/minisdl"
	"protosim/internal/user/ulib"
)

func boot(t *testing.T, p core.Prototype) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Prototype: p, MemBytes: 48 << 20, FBWidth: 320, FBHeight: 240})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.SD != nil {
		sys.Machine.SD.SetLatencyScale(0)
	}
	t.Cleanup(func() {
		if err := sys.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return sys
}

func run(t *testing.T, sys *core.System, name string, fn func(p *kernel.Proc) int) int {
	t.Helper()
	done := make(chan int, 1)
	sys.Kernel.Spawn(name, 0, func(p *kernel.Proc, _ []string) int {
		c := fn(p)
		done <- c
		return c
	}, nil)
	select {
	case c := <-done:
		return c
	case <-time.After(60 * time.Second):
		t.Fatalf("%s hung", name)
		return -1
	}
}

func TestDonutTextRendersTorus(t *testing.T) {
	s := donut.NewState(1)
	f1 := s.RenderText()
	chars := 0
	for _, c := range f1 {
		if c != ' ' {
			chars++
		}
	}
	if chars < 200 {
		t.Fatalf("donut frame has %d glyphs", chars)
	}
	// Rotation changes the frame.
	f2 := s.RenderText()
	if string(f1) == string(f2) {
		t.Fatal("donut not spinning")
	}
}

func TestDonutFastSpinsFaster(t *testing.T) {
	slow := donut.NewState(1)
	fast := donut.NewState(2.5)
	slow.RenderText()
	fast.RenderText()
	if fast.A <= slow.A {
		t.Fatalf("fast donut A=%f, slow A=%f", fast.A, slow.A)
	}
}

func TestDoomWADRoundTrip(t *testing.T) {
	wad := doomlike.BuildWAD(32, 24, 128<<10)
	if len(wad) < 128<<10 {
		t.Fatalf("wad = %d bytes", len(wad))
	}
	w, err := doomlike.LoadWAD(wad)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 160*120*4)
	w.Render(frame, 160, 120, 160*4)
	// Walls textured: a raycast frame must have many distinct colours.
	colors := map[uint32]bool{}
	for i := 0; i < len(frame); i += 4 {
		colors[uint32(frame[i])|uint32(frame[i+1])<<8|uint32(frame[i+2])<<16] = true
	}
	if len(colors) < 16 {
		t.Fatalf("raycast frame has only %d colours", len(colors))
	}
	if _, err := doomlike.LoadWAD(wad[:40]); err == nil {
		t.Fatal("truncated WAD accepted")
	}
}

func TestDoomMovementCollides(t *testing.T) {
	w, err := doomlike.LoadWAD(doomlike.BuildWAD(16, 16, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Walk forward into a wall for many steps: must not escape the map.
	for i := 0; i < 500; i++ {
		w.Step(doomlike.KeyForward)
	}
	frame := make([]byte, 64*64*4)
	w.Render(frame, 64, 64, 64*4) // must not panic (player inside bounds)
}

func TestBlockchainVerify(t *testing.T) {
	sys := boot(t, core.Prototype5)
	code := run(t, sys, "miner", func(p *kernel.Proc) int {
		m := blockchain.NewMiner(10, 2)
		blk, err := m.MineBlock(p, blockchain.Block{Index: 1})
		if err != nil {
			return 1
		}
		if !blockchain.Verify(&blk, 10) {
			return 2
		}
		// Tampering breaks verification.
		blk.Nonce++
		if blockchain.Verify(&blk, 10) {
			return 3
		}
		hashes, mined := m.Stats()
		if hashes == 0 || mined != 1 {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestMinisdlWindowAndEvents(t *testing.T) {
	sys := boot(t, core.Prototype5)
	code := run(t, sys, "sdlapp", func(p *kernel.Proc) int {
		win, err := minisdl.CreateWindow(p, "test", 64, 48)
		if err != nil {
			return 1
		}
		frame := make([]byte, 64*48*4)
		for i := range frame {
			frame[i] = 0x40
		}
		if err := win.Present(frame); err != nil {
			return 2
		}
		// No pending events: poll returns false.
		if _, ok := win.PollEvent(); ok {
			return 3
		}
		// Inject a key; focused window receives it.
		p.Kernel().InjectKey(kernelEvent('z'))
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if e, ok := win.PollEvent(); ok {
				if e.ASCII != 'z' {
					return 4
				}
				return 0
			}
			p.SysSleep(2)
		}
		return 5
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestMinisdlAudioThread(t *testing.T) {
	sys := boot(t, core.Prototype5)
	code := run(t, sys, "sdlaudio", func(p *kernel.Proc) int {
		blocks := 5
		audio, err := minisdl.OpenAudio(p, func(buf []int16) int {
			if blocks == 0 {
				return 0
			}
			blocks--
			for i := range buf {
				buf[i] = int16((i % 64) * 256)
			}
			return len(buf)
		})
		if err != nil {
			return 1
		}
		audio.Wait()
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// The output stage consumes at the sample rate; give it a moment.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if consumed, _, _ := sys.Machine.PWM.Stats(); consumed > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("audio thread produced nothing")
}

func TestShellPipelineOfUtilities(t *testing.T) {
	sys := boot(t, core.Prototype4)
	script := strings.Join([]string{
		"mkdir /work",
		"echo one line here > /work/a.txt",
		"echo another > /work/b.txt",
		"ls /work",
		"wc /work/a.txt",
		"grep line /work/a.txt",
		"rm /work/b.txt",
		"ls /work",
		"ps",
	}, "\n")
	code, err := sys.RunShellScript(script, 60*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("script: code=%d err=%v", code, err)
	}
	out := sys.Kernel.Transcript()
	for _, want := range []string{"a.txt", "one line here", "1 3 14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
	// b.txt appears once (the first ls); after rm the second ls omits it.
	if strings.Count(out, "b.txt") != 1 {
		t.Fatalf("b.txt listed %d times, want 1:\n%s", strings.Count(out, "b.txt"), out)
	}
}

func TestShellRedirectionAndNotFound(t *testing.T) {
	sys := boot(t, core.Prototype4)
	code, err := sys.RunShellScript("nosuchcmd\necho fine > /r.txt\ncat /r.txt\n", 30*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("script: code=%d err=%v", code, err)
	}
	out := sys.Kernel.Transcript()
	if !strings.Contains(out, "not found") || !strings.Contains(out, "fine") {
		t.Fatalf("transcript: %s", out)
	}
}

func TestUlibMallocFree(t *testing.T) {
	sys := boot(t, core.Prototype3)
	code := run(t, sys, "malloc", func(p *kernel.Proc) int {
		a := ulib.NewAlloc(p)
		var ptrs []uint64
		for i := 0; i < 50; i++ {
			va, err := a.Malloc(100 + i*10)
			if err != nil {
				return 1
			}
			if err := a.Store(va, []byte{byte(i)}); err != nil {
				return 2
			}
			ptrs = append(ptrs, va)
		}
		// Verify and free.
		for i, va := range ptrs {
			b := make([]byte, 1)
			if err := a.Load(va, b); err != nil || b[0] != byte(i) {
				return 3
			}
			a.Free(va)
		}
		if a.InUse() != 0 {
			return 4
		}
		// Reuse after free: no growth needed.
		if _, err := a.Malloc(64); err != nil {
			return 5
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestUlibMutexCondAcrossThreads(t *testing.T) {
	sys := boot(t, core.Prototype5)
	code := run(t, sys, "sync", func(p *kernel.Proc) int {
		mu, err := ulib.NewMutex(p)
		if err != nil {
			return 1
		}
		cond, err := ulib.NewCond(p)
		if err != nil {
			return 2
		}
		ready := false
		var got int
		done, _ := p.SysSemCreate(0)
		p.SysClone("waiter", func(tp *kernel.Proc) {
			mu.Lock(tp)
			for !ready {
				cond.Wait(tp, mu)
			}
			got = 99
			mu.Unlock(tp)
			tp.SysSemPost(done)
		})
		p.SysSleep(5)
		mu.Lock(p)
		ready = true
		cond.Signal(p)
		mu.Unlock(p)
		p.SysSemWait(done)
		if got != 99 {
			return 3
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// kernelEvent builds an injected key event.
func kernelEvent(ch byte) wm.InputEvent {
	return wm.InputEvent{Down: true, Code: hw.UsageA + (ch - 'a'), ASCII: ch}
}

func TestWordsmithSynchronization(t *testing.T) {
	sys := boot(t, core.Prototype5)
	code, err := sys.RunShellScript("wordsmith 40\n", 60*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("wordsmith: code=%d err=%v", code, err)
	}
}
