// Package launcher is the GUI frontend of Prototype 5: an animated menu of
// installed programs; up/down selects, enter fork+execs the selection in a
// new process. It renders through the window manager.
package launcher

import (
	"fmt"
	"sort"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/wm"
)

// Window geometry.
const (
	Width  = 240
	Height = 180
	rowH   = 18
)

// Main runs the launcher. argv: [name, maxFrames] — maxFrames > 0 runs the
// animation that many frames then exits (demo/benchmark mode).
func Main(p *kernel.Proc, argv []string) int {
	entries, err := listBin(p)
	if err != nil || len(entries) == 0 {
		return 1
	}
	sfd, err := p.OpenSurface("launcher", Width, Height)
	if err != nil {
		return 2
	}
	efd, err := p.OpenSurfaceEvents(true)
	if err != nil {
		return 3
	}
	maxFrames := 0
	if len(argv) >= 2 {
		fmt.Sscanf(argv[1], "%d", &maxFrames)
	}
	sel := 0
	frame := make([]byte, Width*Height*4)
	buf := make([]byte, wm.EventSize)
	for n := 0; maxFrames == 0 || n < maxFrames; n++ {
		// Non-blocking event drain.
		for {
			if _, err := p.SysRead(efd, buf); err != nil {
				break
			}
			e, ok := wm.DecodeEvent(buf)
			if !ok || !e.Down {
				continue
			}
			switch e.Code {
			case hw.UsageDown:
				sel = (sel + 1) % len(entries)
			case hw.UsageUp:
				sel = (sel + len(entries) - 1) % len(entries)
			case hw.UsageEnter:
				launch(p, entries[sel])
			case hw.UsageEsc:
				return 0
			}
		}
		render(frame, entries, sel, n)
		if _, err := p.SysWrite(sfd, frame); err != nil {
			return 4
		}
		p.SysSleep(33)
	}
	return 0
}

// listBin enumerates /bin.
func listBin(p *kernel.Proc) ([]string, error) {
	fd, err := p.SysOpen("/bin", fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer p.SysClose(fd)
	des, err := p.SysReadDir(fd)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		if de.Type == fs.TypeFile {
			out = append(out, de.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// launch fork+execs the selected program, without waiting (the launcher
// stays responsive; the WM handles focus).
func launch(p *kernel.Proc, name string) {
	p.SysFork(func(c *kernel.Proc) {
		if err := c.SysExec("/bin/"+name, []string{name}); err != nil {
			c.SysExit(127)
		}
	})
}

// render draws the animated background and the menu.
func render(frame []byte, entries []string, sel, tick int) {
	// Animated diagonal waves.
	for y := 0; y < Height; y++ {
		for x := 0; x < Width; x++ {
			o := (y*Width + x) * 4
			v := byte((x + y + tick*3) % 64)
			frame[o] = 0x30 + v/2
			frame[o+1] = 0x18 + v/3
			frame[o+2] = 0x28
			frame[o+3] = 0xFF
		}
	}
	// Menu rows: selected row highlighted; entries drawn as blocks (a
	// 5x7 text renderer is overkill — row identity is positional).
	for i, name := range entries {
		y0 := 8 + i*rowH
		if y0+rowH > Height {
			break
		}
		var r, g, b byte = 0x60, 0x60, 0x70
		if i == sel {
			r, g, b = 0xF0, 0xC0, 0x30
		}
		barLen := 40 + 8*len(name)
		if barLen > Width-16 {
			barLen = Width - 16
		}
		for dy := 2; dy < rowH-4; dy++ {
			row := (y0 + dy) * Width * 4
			for dx := 0; dx < barLen; dx++ {
				o := row + (8+dx)*4
				frame[o], frame[o+1], frame[o+2] = b, g, r
			}
		}
	}
}
