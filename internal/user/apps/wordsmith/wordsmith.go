// Package wordsmith is Lab 2's reader/writer synchronization exercise
// ("Wordsmith", Fig 14b task 10): a writer produces words character by
// character into a shared bounded buffer and a reader assembles and prints
// them — correctness depends entirely on the synchronization between the
// two, so torn words mean a broken lock/condvar.
//
// In Prototype 5 form it runs as two clone()d threads sharing user memory,
// synchronized with the semaphore syscalls via ulib's mutex/condvar.
package wordsmith

import (
	"fmt"
	"strings"

	"protosim/internal/kernel"
	"protosim/internal/user/ulib"
)

// Words the writer emits.
var words = []string{
	"proto", "kernel", "donut", "framebuffer", "syscall",
	"semaphore", "scheduler", "pagetable", "pipeline", "interrupt",
}

// Main runs the exercise. argv: [name, rounds]. Exit 0 when every word
// arrived untorn.
func Main(p *kernel.Proc, argv []string) int {
	rounds := 20
	if len(argv) >= 2 {
		fmt.Sscanf(argv[1], "%d", &rounds)
	}

	// Shared state: a one-word slot plus full/empty signalling — the
	// classic bounded-buffer-of-size-one.
	mu, err := ulib.NewMutex(p)
	if err != nil {
		return 1
	}
	notEmpty, err := ulib.NewCond(p)
	if err != nil {
		return 1
	}
	notFull, err := ulib.NewCond(p)
	if err != nil {
		return 1
	}
	var slot string
	full := false
	doneSem, err := p.SysSemCreate(0)
	if err != nil {
		return 1
	}

	// Writer thread: publishes one word at a time.
	if _, err := p.SysClone("writer", func(tp *kernel.Proc) {
		for i := 0; i < rounds; i++ {
			word := words[i%len(words)]
			mu.Lock(tp)
			for full {
				notFull.Wait(tp, mu)
			}
			// Build the word character by character while holding the
			// lock — without it the reader would see torn words.
			var b strings.Builder
			for _, ch := range word {
				b.WriteRune(ch)
				tp.Checkpoint()
			}
			slot = b.String()
			full = true
			notEmpty.Signal(tp)
			mu.Unlock(tp)
		}
		mu.Lock(tp)
		for full {
			notFull.Wait(tp, mu)
		}
		slot = "" // EOF marker
		full = true
		notEmpty.Signal(tp)
		mu.Unlock(tp)
	}); err != nil {
		return 2
	}

	// Reader thread: consumes and validates.
	ok := true
	if _, err := p.SysClone("reader", func(tp *kernel.Proc) {
		defer tp.SysSemPost(doneSem)
		for i := 0; ; i++ {
			mu.Lock(tp)
			for !full {
				notEmpty.Wait(tp, mu)
			}
			word := slot
			full = false
			notFull.Signal(tp)
			mu.Unlock(tp)
			if word == "" {
				return
			}
			if word != words[i%len(words)] {
				ok = false
				return
			}
		}
	}); err != nil {
		return 3
	}

	p.SysSemWait(doneSem)
	if !ok {
		return 4
	}
	return 0
}
