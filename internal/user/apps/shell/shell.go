// Package shell is Proto's console shell (ported from xv6, enhanced with
// script execution, §3) plus the standard utilities. Convention: fd 0 is
// standard input and fd 1 standard output; the shell wires both to
// /dev/console (or a script/pipe) before fork+exec'ing commands, and
// children inherit them through the fd table.
package shell

import (
	"fmt"
	"strings"

	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/user/ulib"
)

// Main runs the shell. argv: [name] for interactive mode, [name, script]
// to execute a script file.
func Main(p *kernel.Proc, argv []string) int {
	if err := ensureStdio(p); err != nil {
		return 1
	}
	if len(argv) >= 2 && argv[1] != "" {
		return runScript(p, argv[1])
	}
	ulib.Printf(p, 1, "proto sh — type 'help'\n")
	for {
		ulib.Printf(p, 1, "$ ")
		line, eof := readLine(p, 0)
		if eof {
			return 0
		}
		if code, exit := Execute(p, line); exit {
			return code
		}
	}
}

// ensureStdio opens the console on fds 0 and 1 if the table is empty.
func ensureStdio(p *kernel.Proc) error {
	if _, err := p.SysFstat(0); err == nil {
		return nil
	}
	fd, err := p.SysOpen("/dev/console", fs.ORdWr)
	if err != nil {
		return err
	}
	if fd != 0 {
		return fmt.Errorf("console landed on fd %d", fd)
	}
	_, err = p.SysDup(0) // fd 1
	return err
}

// runScript executes each line of a file — the initrc mechanism (Lab 4).
func runScript(p *kernel.Proc, path string) int {
	data, err := ulib.ReadFile(p, path)
	if err != nil {
		ulib.Printf(p, 1, "sh: %s: %v\n", path, err)
		return 1
	}
	for _, line := range strings.Split(string(data), "\n") {
		if code, exit := Execute(p, line); exit {
			return code
		}
	}
	return 0
}

// Execute runs one command line. Returns (exitCode, true) when the shell
// should exit.
func Execute(p *kernel.Proc, line string) (int, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return 0, false
	}
	// Sequential composition.
	if i := strings.IndexByte(line, ';'); i >= 0 {
		Execute(p, line[:i])
		return Execute(p, line[i+1:])
	}
	// Output redirection: cmd > file.
	redirect := ""
	if i := strings.IndexByte(line, '>'); i >= 0 {
		redirect = strings.TrimSpace(line[i+1:])
		line = strings.TrimSpace(line[:i])
	}
	args := strings.Fields(line)
	if len(args) == 0 {
		return 0, false
	}
	switch args[0] {
	case "exit":
		return 0, true
	case "cd":
		dir := "/"
		if len(args) > 1 {
			dir = args[1]
		}
		if err := p.SysChdir(dir); err != nil {
			ulib.Printf(p, 1, "cd: %v\n", err)
		}
		return 0, false
	case "help":
		ulib.Printf(p, 1, "builtins: cd exit help; programs in /bin\n")
		return 0, false
	}
	// External command: fork, set up redirection, exec /bin/<cmd>.
	path := args[0]
	if !strings.HasPrefix(path, "/") {
		path = "/bin/" + path
	}
	if _, err := p.SysStat(path); err != nil {
		ulib.Printf(p, 1, "sh: %s: not found\n", args[0])
		return 127, false
	}
	pid, err := p.SysFork(func(c *kernel.Proc) {
		if redirect != "" {
			c.SysClose(1)
			fd, err := c.SysOpen(redirect, fs.OCreate|fs.OWrOnly|fs.OTrunc)
			if err != nil || fd != 1 {
				c.SysExit(126)
			}
		}
		if err := c.SysExec(path, args); err != nil {
			c.SysExit(127)
		}
	})
	if err != nil {
		ulib.Printf(p, 1, "sh: fork: %v\n", err)
		return 1, false
	}
	_ = pid
	_, status, err := p.SysWait()
	if err != nil {
		return 1, false
	}
	return status, false
}

// readLine reads one line from fd with minimal line discipline (backspace).
func readLine(p *kernel.Proc, fd int) (string, bool) {
	var line []byte
	buf := make([]byte, 1)
	for {
		n, err := p.SysRead(fd, buf)
		if err != nil || n == 0 {
			return string(line), true
		}
		switch buf[0] {
		case '\n', '\r':
			return string(line), false
		case 0x08: // backspace
			if len(line) > 0 {
				line = line[:len(line)-1]
			}
		default:
			line = append(line, buf[0])
		}
	}
}
