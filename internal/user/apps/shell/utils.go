package shell

import (
	"fmt"
	"sort"
	"strings"

	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/user/ulib"
)

// The console utilities ported from xv6 (§3). Each is a separate program
// (own ELF in /bin); they read fd 0 and write fd 1.

// LsMain lists a directory. argv: [ls, path?].
func LsMain(p *kernel.Proc, argv []string) int {
	path := p.Cwd()
	if len(argv) > 1 && !strings.HasPrefix(argv[1], "-") {
		path = argv[1]
	}
	st, err := p.SysStat(path)
	if err != nil {
		ulib.Printf(p, 1, "ls: %s: %v\n", path, err)
		return 1
	}
	if st.Type != fs.TypeDir {
		ulib.Printf(p, 1, "%s %d\n", st.Name, st.Size)
		return 0
	}
	fd, err := p.SysOpen(path, fs.ORdOnly)
	if err != nil {
		return 1
	}
	defer p.SysClose(fd)
	entries, err := p.SysReadDir(fd)
	if err != nil {
		ulib.Printf(p, 1, "ls: %v\n", err)
		return 1
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		marker := ""
		if e.Type == fs.TypeDir {
			marker = "/"
		}
		ulib.Printf(p, 1, "%-14s %6d %s\n", e.Name+marker, e.Size, e.Type)
	}
	return 0
}

// CatMain concatenates files (or stdin) to stdout.
func CatMain(p *kernel.Proc, argv []string) int {
	dump := func(fd int) int {
		buf := make([]byte, 4096)
		for {
			n, err := p.SysRead(fd, buf)
			if err != nil {
				return 1
			}
			if n == 0 {
				return 0
			}
			if _, err := p.SysWrite(1, buf[:n]); err != nil {
				return 1
			}
		}
	}
	if len(argv) < 2 {
		return dump(0)
	}
	for _, path := range argv[1:] {
		fd, err := p.SysOpen(path, fs.ORdOnly)
		if err != nil {
			ulib.Printf(p, 1, "cat: %s: %v\n", path, err)
			return 1
		}
		code := dump(fd)
		p.SysClose(fd)
		if code != 0 {
			return code
		}
	}
	return 0
}

// EchoMain prints its arguments.
func EchoMain(p *kernel.Proc, argv []string) int {
	ulib.Printf(p, 1, "%s\n", strings.Join(argv[1:], " "))
	return 0
}

// WcMain counts lines, words, bytes of a file or stdin.
func WcMain(p *kernel.Proc, argv []string) int {
	fd := 0
	if len(argv) > 1 {
		var err error
		fd, err = p.SysOpen(argv[1], fs.ORdOnly)
		if err != nil {
			ulib.Printf(p, 1, "wc: %v\n", err)
			return 1
		}
		defer p.SysClose(fd)
	}
	var lines, words, bytes int
	inWord := false
	buf := make([]byte, 4096)
	for {
		n, err := p.SysRead(fd, buf)
		if err != nil || n == 0 {
			break
		}
		bytes += n
		for _, b := range buf[:n] {
			if b == '\n' {
				lines++
			}
			space := b == ' ' || b == '\n' || b == '\t'
			if !space && !inWord {
				words++
			}
			inWord = !space
		}
	}
	ulib.Printf(p, 1, "%d %d %d\n", lines, words, bytes)
	return 0
}

// GrepMain prints lines matching a literal pattern.
func GrepMain(p *kernel.Proc, argv []string) int {
	if len(argv) < 2 {
		ulib.Printf(p, 1, "usage: grep pattern [file]\n")
		return 1
	}
	pattern := argv[1]
	fd := 0
	if len(argv) > 2 {
		var err error
		fd, err = p.SysOpen(argv[2], fs.ORdOnly)
		if err != nil {
			ulib.Printf(p, 1, "grep: %v\n", err)
			return 1
		}
		defer p.SysClose(fd)
	}
	var data []byte
	buf := make([]byte, 4096)
	for {
		n, err := p.SysRead(fd, buf)
		if err != nil || n == 0 {
			break
		}
		data = append(data, buf[:n]...)
	}
	found := 1
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, pattern) {
			ulib.Printf(p, 1, "%s\n", line)
			found = 0
		}
	}
	return found
}

// MkdirMain creates directories.
func MkdirMain(p *kernel.Proc, argv []string) int {
	if len(argv) < 2 {
		return 1
	}
	for _, path := range argv[1:] {
		if err := p.SysMkdir(path); err != nil {
			ulib.Printf(p, 1, "mkdir: %s: %v\n", path, err)
			return 1
		}
	}
	return 0
}

// RmMain unlinks files.
func RmMain(p *kernel.Proc, argv []string) int {
	if len(argv) < 2 {
		return 1
	}
	for _, path := range argv[1:] {
		if err := p.SysUnlink(path); err != nil {
			ulib.Printf(p, 1, "rm: %s: %v\n", path, err)
			return 1
		}
	}
	return 0
}

// UptimeMain prints seconds since boot.
func UptimeMain(p *kernel.Proc, argv []string) int {
	us := p.SysUptime()
	ulib.Printf(p, 1, "up %.2fs\n", float64(us)/1e6)
	return 0
}

// PsMain lists tasks from /proc/tasks.
func PsMain(p *kernel.Proc, argv []string) int {
	content, err := ulib.ProcRead(p, "tasks")
	if err != nil {
		return 1
	}
	ulib.Printf(p, 1, "%s", content)
	return 0
}

// KillMain kills a process by pid.
func KillMain(p *kernel.Proc, argv []string) int {
	if len(argv) < 2 {
		return 1
	}
	pid := 0
	fmt.Sscanf(argv[1], "%d", &pid)
	if err := p.SysKill(pid); err != nil {
		ulib.Printf(p, 1, "kill: %v\n", err)
		return 1
	}
	return 0
}
