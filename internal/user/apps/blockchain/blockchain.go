// Package blockchain is the multithreaded proof-of-work miner of Table 1
// and Figure 10: clone()d worker threads sweep disjoint nonce ranges over
// SHA-256 double hashing, coordinated with semaphores — Proto's showcase
// for threads scaling across all four cores. (The paper's app is C++; the
// crt0/global-constructor machinery it needs is host-language runtime here.)
package blockchain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"protosim/internal/kernel"
)

// Block is one mined block.
type Block struct {
	Index    uint32
	PrevHash [32]byte
	Payload  [32]byte
	Nonce    uint64
	Hash     [32]byte
}

// Difficulty is the number of leading zero bits a hash must have.
const DefaultDifficulty = 17

// header serializes the hashed portion.
func (b *Block) header(nonce uint64) [80]byte {
	var h [80]byte
	binary.LittleEndian.PutUint32(h[0:], b.Index)
	copy(h[4:36], b.PrevHash[:])
	copy(h[36:68], b.Payload[:])
	binary.LittleEndian.PutUint64(h[68:], nonce)
	return h
}

// hashAt computes the double-SHA256 for a nonce.
func (b *Block) hashAt(nonce uint64) [32]byte {
	h := b.header(nonce)
	first := sha256.Sum256(h[:])
	return sha256.Sum256(first[:])
}

// meets checks the difficulty target.
func meets(hash [32]byte, bits int) bool {
	for i := 0; i < bits; i++ {
		if hash[i/8]&(0x80>>(i%8)) != 0 {
			return false
		}
	}
	return true
}

// Verify re-checks a mined block.
func Verify(b *Block, bits int) bool {
	return b.hashAt(b.Nonce) == b.Hash && meets(b.Hash, bits)
}

// Miner mines blocks with nthreads clone()d workers.
type Miner struct {
	Difficulty int
	Threads    int

	hashes atomic.Uint64
	mined  atomic.Uint64
}

// NewMiner configures a miner.
func NewMiner(difficulty, threads int) *Miner {
	if threads < 1 {
		threads = 1
	}
	return &Miner{Difficulty: difficulty, Threads: threads}
}

// Stats reports total hashes tried and blocks mined.
func (m *Miner) Stats() (hashes, mined uint64) {
	return m.hashes.Load(), m.mined.Load()
}

// MineBlock finds a nonce for block b using worker threads; returns the
// solved block. The workers stride the nonce space and the first winner
// posts the result semaphore.
func (m *Miner) MineBlock(p *kernel.Proc, b Block) (Block, error) {
	found, err := p.SysSemCreate(0)
	if err != nil {
		return b, err
	}
	var winner atomic.Uint64
	var solved atomic.Bool
	// Workers read this pre-spawn copy; the parent mutates b (Nonce, Hash)
	// after the win, which a late-starting straggler must never observe.
	tmpl := b
	for w := 0; w < m.Threads; w++ {
		start := uint64(w)
		if _, err := p.SysClone(fmt.Sprintf("miner%d", w), func(tp *kernel.Proc) {
			local := tmpl
			for nonce := start; !solved.Load(); nonce += uint64(m.Threads) {
				h := local.hashAt(nonce)
				m.hashes.Add(1)
				if meets(h, m.Difficulty) {
					if solved.CompareAndSwap(false, true) {
						winner.Store(nonce)
						tp.SysSemPost(found)
					}
					return
				}
				if nonce%1024 < uint64(m.Threads) {
					tp.Checkpoint() // preemption point in the hash loop
				}
			}
		}); err != nil {
			return b, err
		}
	}
	p.SysSemWait(found)
	b.Nonce = winner.Load()
	b.Hash = b.hashAt(b.Nonce)
	m.mined.Add(1)
	// Give straggler threads a moment to observe `solved` and exit.
	for p.Threads() > 1 {
		p.SysSleep(1)
	}
	return b, nil
}

// Main mines argv[1] blocks (default 3) at argv[2] difficulty with argv[3]
// threads, printing progress to the console.
func Main(p *kernel.Proc, argv []string) int {
	blocks, difficulty, threads := 3, DefaultDifficulty, 4
	if len(argv) >= 2 {
		fmt.Sscanf(argv[1], "%d", &blocks)
	}
	if len(argv) >= 3 {
		fmt.Sscanf(argv[2], "%d", &difficulty)
	}
	if len(argv) >= 4 {
		fmt.Sscanf(argv[3], "%d", &threads)
	}
	m := NewMiner(difficulty, threads)
	var prev [32]byte
	for i := 0; i < blocks; i++ {
		blk := Block{Index: uint32(i), PrevHash: prev}
		copy(blk.Payload[:], fmt.Sprintf("block %d payload", i))
		solved, err := m.MineBlock(p, blk)
		if err != nil {
			return 1
		}
		if !Verify(&solved, difficulty) {
			return 2
		}
		prev = solved.Hash
	}
	return 0
}
