// Package chanserv_test drives the channel server end to end: a booted
// Prototype 5 system with the NIC pair enabled, chanserv running as a
// kernel process, and host-side clients on a peer stack at the far end
// of the link. Every byte crosses the full column — socket write, conn
// ring, TCP-ish segments, NIC descriptor rings, IRQ, softirq, and back
// up the other side.
package chanserv_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"protosim/internal/core"
	"protosim/internal/kernel"
	"protosim/internal/kernel/net"
	"protosim/internal/user/apps/chanserv"
	"protosim/internal/user/ulib"
)

// netSystem boots a Prototype 5 with the network column enabled and
// returns a host-side peer stack wired to the far end of the NIC link.
func netSystem(t testing.TB) (*core.System, *net.Stack) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Prototype: core.Prototype5,
		MemBytes:  48 << 20,
		FBWidth:   320, FBHeight: 240,
		EnableNet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Machine.SD.SetLatencyScale(0)
	peer := net.NewStack("peer0", kernel.NetPeerHost, sys.Machine.PeerNIC, net.Options{
		After: func(d time.Duration, fn func()) func() bool {
			return time.AfterFunc(d, fn).Stop
		},
	})
	sys.Machine.PeerNIC.SetNotify(peer.IRQ)
	t.Cleanup(func() {
		peer.Close()
		if err := sys.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return sys, peer
}

// startChanserv spawns the server process and returns its exit-code
// channel plus a watchdog-wrapped wait.
func startChanserv(t testing.TB, sys *core.System) <-chan int {
	t.Helper()
	done := make(chan int, 1)
	sys.Kernel.Spawn("chanserv", 0, func(p *kernel.Proc, argv []string) int {
		c := chanserv.Main(p, argv)
		done <- c
		return c
	}, []string{"chanserv"})
	return done
}

// client is a host-side chanserv client: a peer-stack socket plus frame
// reassembly. Methods return errors so they are safe off the test
// goroutine.
type client struct {
	sk  *net.Socket
	d   ulib.FrameDecoder
	buf []byte
}

// dialChan connects to the server, retrying while the listener is still
// coming up, and sends the join frame for room.
func dialChan(t testing.TB, peer *net.Stack, room string) *client {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		sk := peer.NewSocket()
		err := sk.Connect(nil, net.Addr{Host: kernel.NetLocalHost, Port: chanserv.DefaultPort})
		if err == nil {
			c := &client{sk: sk, buf: make([]byte, 4096)}
			if err := c.send([]byte(room)); err != nil {
				t.Fatalf("join %s: %v", room, err)
			}
			return c
		}
		sk.Close(nil)
		if time.Now().After(deadline) {
			t.Fatalf("connect: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *client) send(payload []byte) error {
	buf := ulib.EncodeFrame(payload)
	for len(buf) > 0 {
		n, err := c.sk.Write(nil, buf)
		if err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// next returns the next frame, io.EOF on a clean close.
func (c *client) next() ([]byte, error) {
	for {
		if f, err := c.d.Next(); f != nil || err != nil {
			return f, err
		}
		n, err := c.sk.Read(nil, c.buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			if c.d.Pending() {
				return nil, ulib.ErrTruncatedFrame
			}
			return nil, io.EOF
		}
		c.d.Feed(c.buf[:n])
	}
}

// expect reads one frame and requires it to equal want.
func (c *client) expect(t testing.TB, want string) {
	t.Helper()
	f, err := c.next()
	if err != nil {
		t.Fatalf("waiting for %q: %v", want, err)
	}
	if string(f) != want {
		t.Fatalf("got frame %q, want %q", f, want)
	}
}

// joinRoom dials and then confirms membership by broadcasting a sync
// probe and waiting for its own copy: once the probe comes back, the
// server has processed the join, so later broadcasts will reach this
// client. Join clients sequentially and membership order is
// deterministic.
func joinRoom(t testing.TB, peer *net.Stack, room, tag string) *client {
	t.Helper()
	c := dialChan(t, peer, room)
	if err := c.send([]byte(tag)); err != nil {
		t.Fatalf("sync %s: %v", tag, err)
	}
	c.expect(t, tag)
	return c
}

// runRoom joins n clients into room sequentially, has every client
// broadcast one message, and verifies every client sees the full set.
// Returns the clients, still connected.
func runRoom(t testing.TB, peer *net.Stack, room string, n int) []*client {
	t.Helper()
	clients := make([]*client, n)
	for k := 0; k < n; k++ {
		clients[k] = joinRoom(t, peer, room, fmt.Sprintf("sync:%s:%d", room, k))
	}
	// Drain the later joiners' sync probes: client k, a member since join
	// k, saw syncs k+1..n-1 broadcast in order.
	for k, c := range clients {
		for m := k + 1; m < n; m++ {
			c.expect(t, fmt.Sprintf("sync:%s:%d", room, m))
		}
	}
	// Every member broadcasts one message; room-wide the fan-out order is
	// the server's broadcast serialization, identical on every stream.
	for k, c := range clients {
		if err := c.send([]byte(fmt.Sprintf("msg:%s:%d", room, k))); err != nil {
			t.Fatalf("msg %d: %v", k, err)
		}
	}
	var order []string
	for k, c := range clients {
		seen := map[string]bool{}
		var got []string
		for m := 0; m < n; m++ {
			f, err := c.next()
			if err != nil {
				t.Fatalf("client %d msg %d: %v", k, m, err)
			}
			if seen[string(f)] {
				t.Fatalf("client %d got %q twice", k, f)
			}
			seen[string(f)] = true
			got = append(got, string(f))
		}
		for m := 0; m < n; m++ {
			if !seen[fmt.Sprintf("msg:%s:%d", room, m)] {
				t.Fatalf("client %d missed msg %d (got %v)", k, m, got)
			}
		}
		if k == 0 {
			order = got
		} else {
			for i := range order {
				if got[i] != order[i] {
					t.Fatalf("client %d saw order %v, client 0 saw %v", k, got, order)
				}
			}
		}
	}
	return clients
}

func TestChanservBroadcastAndShutdown(t *testing.T) {
	sys, peer := netSystem(t)
	done := startChanserv(t, sys)

	clients := runRoom(t, peer, "lobby", 6)

	// /quit leaves the room: the quitter gets EOF, the survivors still
	// get broadcasts, and the quitter's messages stop counting.
	if err := clients[5].send([]byte("/quit")); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[5].next(); err != io.EOF {
		t.Fatalf("after /quit: %v, want EOF", err)
	}
	// The leave is processed before the handler closes the fd, so once
	// the quitter sees EOF the membership change is visible.
	if err := clients[0].send([]byte("after-quit")); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients[:5] {
		c.expect(t, "after-quit")
	}

	// /shutdown stops the accept loop; the server exits cleanly.
	if err := clients[0].send([]byte("/shutdown")); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("chanserv exit %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("chanserv did not exit after /shutdown")
	}
	for _, c := range clients {
		c.sk.Close(nil)
	}
}

func TestChanservRoomsAreIsolated(t *testing.T) {
	sys, peer := netSystem(t)
	startChanserv(t, sys)

	a0 := joinRoom(t, peer, "alpha", "sync:a0")
	a1 := joinRoom(t, peer, "alpha", "sync:a1")
	b0 := joinRoom(t, peer, "beta", "sync:b0")
	a0.expect(t, "sync:a1") // a0 sees alpha's later join, nothing from beta

	if err := b0.send([]byte("beta-only")); err != nil {
		t.Fatal(err)
	}
	b0.expect(t, "beta-only")
	if err := a1.send([]byte("alpha-only")); err != nil {
		t.Fatal(err)
	}
	// Both alpha members get the alpha message; if beta's broadcast had
	// leaked it would have arrived first on these ordered streams.
	a0.expect(t, "alpha-only")
	a1.expect(t, "alpha-only")

	for _, c := range []*client{a0, a1, b0} {
		c.sk.Close(nil)
	}
}

// TestChanservSustains256Clients is the soak gate from the issue: 256
// concurrent connections across 8 rooms, every client broadcasting and
// every client receiving every room message, race-clean.
func TestChanservSustains256Clients(t *testing.T) {
	const rooms = 8
	perRoom := 32
	if testing.Short() {
		perRoom = 4
	}
	sys, peer := netSystem(t)
	done := startChanserv(t, sys)

	var all []*client
	for r := 0; r < rooms; r++ {
		all = append(all, runRoom(t, peer, fmt.Sprintf("room-%d", r), perRoom)...)
	}

	// All rooms live at once: one more broadcast per room with the full
	// population connected.
	for r := 0; r < rooms; r++ {
		if err := all[r*perRoom].send([]byte(fmt.Sprintf("final-%d", r))); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rooms; r++ {
		for _, c := range all[r*perRoom : (r+1)*perRoom] {
			c.expect(t, fmt.Sprintf("final-%d", r))
		}
	}

	if err := all[0].send([]byte("/shutdown")); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("chanserv exit %d", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("chanserv did not exit after /shutdown")
	}
	for _, c := range all {
		c.sk.Close(nil)
	}
}
