// Package chanserv is the broadcast channel server workload: an
// Erupe-style room server over the kernel's stream sockets, exercising
// the whole network column — NIC rings, the TCP-ish stack, socket
// descriptors, and the ulib frame codec — under hundreds of concurrent
// connections.
//
// The shape is one kernel task per connection: the main task accepts and
// clones a handler thread per client (threads share the descriptor
// table, so a broadcast can write straight to every member's fd). The
// protocol is length-prefixed frames (ulib frame codec):
//
//   - the client's first frame names the room to join;
//   - every later frame is a message, broadcast to every member of the
//     room including the sender;
//   - "/quit" leaves cleanly, "/shutdown" stops the whole server (the
//     handler closes the shared listener descriptor, which wakes the
//     accept loop with ErrListenerClosed);
//   - disconnecting (FIN) leaves the room.
//
// Broadcast writes happen under the room lock — a ulib.Mutex over the
// semaphore syscalls, so a blocked write sleeps its task on the
// scheduler. A client that stops reading stalls its room once its
// receive window and the sender's send ring fill; the workload's clients
// always drain, which is the deal a broadcast fan-out server offers.
package chanserv

import (
	"errors"
	"fmt"
	"io"

	"protosim/internal/kernel"
	"protosim/internal/user/ulib"
)

// DefaultPort is the server's listen port.
const DefaultPort = 4000

// server is the shared state across handler threads.
type server struct {
	lfd   int
	mu    *ulib.Mutex
	rooms map[string][]int // room name -> member conn fds

	joins, leaves, broadcasts, msgsOut int
}

// Main runs the channel server: argv[1] may override the listen port.
// It returns once a client sends "/shutdown" (or the listener dies).
func Main(p *kernel.Proc, argv []string) int {
	port := uint16(DefaultPort)
	if len(argv) > 1 {
		var v int
		if _, err := fmt.Sscanf(argv[1], "%d", &v); err == nil && v > 0 && v < 65536 {
			port = uint16(v)
		}
	}
	cons, cerr := ulib.OpenConsole(p)
	logf := func(format string, args ...any) {
		if cerr == nil {
			ulib.Printf(p, cons, format, args...)
		}
	}
	lfd, err := p.SysSocket()
	if err != nil {
		logf("chanserv: socket: %v\n", err)
		return 1
	}
	if err := p.SysBind(lfd, port); err != nil {
		logf("chanserv: bind %d: %v\n", port, err)
		return 1
	}
	if err := p.SysListen(lfd, 64); err != nil {
		logf("chanserv: listen: %v\n", err)
		return 1
	}
	mu, err := ulib.NewMutex(p)
	if err != nil {
		logf("chanserv: mutex: %v\n", err)
		return 1
	}
	s := &server{lfd: lfd, mu: mu, rooms: make(map[string][]int)}
	logf("chanserv: listening on %d\n", port)

	for {
		cfd, err := p.SysAccept(lfd)
		if err != nil {
			// Listener closed (a /shutdown handler) or stack torn down:
			// stop accepting either way.
			break
		}
		id := cfd
		if _, err := p.SysClone(fmt.Sprintf("chan-%d", id), func(tp *kernel.Proc) {
			s.serveConn(tp, cfd)
		}); err != nil {
			// Out of thread room: refuse this client, keep serving.
			p.SysClose(cfd)
		}
	}
	p.SysClose(lfd)
	s.mu.Lock(p)
	stats := fmt.Sprintf("chanserv: done: joins=%d leaves=%d broadcasts=%d msgs_out=%d\n",
		s.joins, s.leaves, s.broadcasts, s.msgsOut)
	s.mu.Unlock(p)
	logf("%s", stats)
	if cerr == nil {
		p.SysClose(cons)
	}
	return 0
}

// serveConn is one connection's lifetime: join, relay, leave.
func (s *server) serveConn(p *kernel.Proc, fd int) {
	defer p.SysClose(fd)
	fr := ulib.NewFrameReader(p, fd)

	joinF, err := fr.Next()
	if err != nil {
		return
	}
	room := string(joinF)
	s.join(p, room, fd)
	defer s.leave(p, room, fd)

	for {
		f, err := fr.Next()
		if err != nil {
			// io.EOF is the clean disconnect; truncation or a reset just
			// ends the connection too.
			if !errors.Is(err, io.EOF) && !errors.Is(err, ulib.ErrTruncatedFrame) {
				return
			}
			return
		}
		switch string(f) {
		case "/quit":
			return
		case "/shutdown":
			// Close the shared listener: the accept loop wakes with
			// ErrListenerClosed and the server winds down.
			p.SysClose(s.lfd)
			return
		default:
			s.broadcast(p, room, f)
		}
	}
}

func (s *server) join(p *kernel.Proc, room string, fd int) {
	s.mu.Lock(p)
	s.rooms[room] = append(s.rooms[room], fd)
	s.joins++
	s.mu.Unlock(p)
}

func (s *server) leave(p *kernel.Proc, room string, fd int) {
	s.mu.Lock(p)
	members := s.rooms[room]
	for i, m := range members {
		if m == fd {
			s.rooms[room] = append(members[:i], members[i+1:]...)
			break
		}
	}
	if len(s.rooms[room]) == 0 {
		delete(s.rooms, room)
	}
	s.leaves++
	s.mu.Unlock(p)
}

// broadcast fans a message out to every member of the room, sender
// included. The room lock covers the writes: membership cannot change
// mid-fan-out, and a leaving member's fd is still valid because leave()
// removes it under this same lock before the handler closes it.
func (s *server) broadcast(p *kernel.Proc, room string, msg []byte) {
	s.mu.Lock(p)
	s.broadcasts++
	for _, fd := range s.rooms[room] {
		if err := ulib.WriteFrame(p, fd, msg); err == nil {
			s.msgsOut++
		}
	}
	s.mu.Unlock(p)
}
