package chanserv_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"protosim/internal/kernel/net"
)

// The network-workload harness behind `make bench` / BENCH_net.json:
// the channel server under load on a booted system. Three figures, all
// end to end through the NIC link:
//
//   - accept rate: connect + join + first-broadcast round trips per
//     second, serialized (each accept costs a handshake, a task clone,
//     and a room join);
//   - echo throughput: a single-member room is an echo server (broadcast
//     includes the sender), so payload MB/s through one connection;
//   - broadcast fan-out: one sender, a room of N, delivered MB/s across
//     all members — the figure that scales with the fan-out width and
//     gates the floor.

const (
	nbAcceptClients = 128
	nbEchoFrame     = 4096
	nbEchoFrames    = 256
	nbFanFrame      = 1024
	nbFanFrames     = 24 // 24 x (1024+4) stays inside every 32 KiB ring
)

// benchAcceptRate dials n clients through the full join handshake.
func benchAcceptRate(t testing.TB, peer *net.Stack, n int) float64 {
	start := time.Now()
	for k := 0; k < n; k++ {
		c := joinRoom(t, peer, fmt.Sprintf("accept-%d", k), "hi")
		c.sk.Close(nil)
	}
	return float64(n) / time.Since(start).Seconds()
}

// benchEcho round-trips payload through a single-member room.
func benchEcho(t testing.TB, peer *net.Stack) float64 {
	c := joinRoom(t, peer, "echo", "sync")
	payload := make([]byte, nbEchoFrame)
	start := time.Now()
	// Window of 4 frames in flight keeps the pipe full without
	// overrunning the 32 KiB conn rings.
	const window = 4
	inFlight := 0
	for sent := 0; sent < nbEchoFrames || inFlight > 0; {
		for sent < nbEchoFrames && inFlight < window {
			if err := c.send(payload); err != nil {
				t.Fatalf("echo send: %v", err)
			}
			sent++
			inFlight++
		}
		f, err := c.next()
		if err != nil {
			t.Fatalf("echo recv: %v", err)
		}
		if len(f) != nbEchoFrame {
			t.Fatalf("echo frame %d bytes, want %d", len(f), nbEchoFrame)
		}
		inFlight--
	}
	mbps := float64(nbEchoFrames*nbEchoFrame) / (1 << 20) / time.Since(start).Seconds()
	c.sk.Close(nil)
	return mbps
}

// benchFanout joins n clients into one room, broadcasts from the first,
// and measures delivered MB/s across all members.
func benchFanout(t testing.TB, peer *net.Stack, n int) float64 {
	room := fmt.Sprintf("fan-%d", n)
	clients := make([]*client, n)
	for k := 0; k < n; k++ {
		clients[k] = joinRoom(t, peer, room, fmt.Sprintf("s%d", k))
	}
	for k, c := range clients {
		for m := k + 1; m < n; m++ {
			c.expect(t, fmt.Sprintf("s%d", m))
		}
	}
	payload := make([]byte, nbFanFrame)
	start := time.Now()
	for b := 0; b < nbFanFrames; b++ {
		if err := clients[0].send(payload); err != nil {
			t.Fatalf("fanout send: %v", err)
		}
	}
	for _, c := range clients {
		for b := 0; b < nbFanFrames; b++ {
			f, err := c.next()
			if err != nil {
				t.Fatalf("fanout recv: %v", err)
			}
			if len(f) != nbFanFrame {
				t.Fatalf("fanout frame %d bytes, want %d", len(f), nbFanFrame)
			}
		}
	}
	mbps := float64(nbFanFrames*nbFanFrame*n) / (1 << 20) / time.Since(start).Seconds()
	for _, c := range clients {
		c.sk.Close(nil)
	}
	return mbps
}

// TestNetThroughput is the BENCH_net.json recorder and gate. Heavyweight
// and timing-sensitive, so it only runs when BENCH_NET_JSON names the
// output (the `make bench` / CI path). The gate is the fan-out floor:
// the broadcast path must deliver at least 4 MB/s at both widths — a
// server that serializes, copies, or wakes badly lands far under it.
func TestNetThroughput(t *testing.T) {
	out := os.Getenv("BENCH_NET_JSON")
	if out == "" {
		t.Skip("set BENCH_NET_JSON=<path> to run the network benchmark")
	}
	sys, peer := netSystem(t)
	done := startChanserv(t, sys)

	accepts := benchAcceptRate(t, peer, nbAcceptClients)
	echo := benchEcho(t, peer)
	fan64 := benchFanout(t, peer, 64)
	fan256 := benchFanout(t, peer, 256)

	shut := joinRoom(t, peer, "end", "sync")
	if err := shut.send([]byte("/shutdown")); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("chanserv exit %d", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("chanserv did not exit")
	}
	shut.sk.Close(nil)

	ks := sys.Kernel.Net.Stats()
	res := map[string]any{
		"workload": fmt.Sprintf("chanserv over the NIC link: %d accepts, %d x %d B echo, %d x %d B broadcast to 64/256 members",
			nbAcceptClients, nbEchoFrames, nbEchoFrame, nbFanFrames, nbFanFrame),
		"accepts_per_sec":       round2(accepts),
		"echo_mb_per_sec":       round2(echo),
		"fanout_64_mb_per_sec":  round2(fan64),
		"fanout_256_mb_per_sec": round2(fan256),
		"kernel_segs_in":        ks.SegsIn,
		"kernel_segs_out":       ks.SegsOut,
		"kernel_retrans":        ks.Retrans,
		"kernel_accepted":       ks.Accepted,
	}
	blob, err := json.MarshalIndent(map[string]any{"net": res}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("net: %.0f accepts/s, echo %.2f MB/s, fan-out 64 %.2f MB/s, 256 %.2f MB/s (%d segs out, %d retrans)",
		accepts, echo, fan64, fan256, ks.SegsOut, ks.Retrans)
	if fan64 < 4 || fan256 < 4 {
		t.Fatalf("broadcast fan-out %.2f / %.2f MB/s under the 4 MB/s floor", fan64, fan256)
	}
}

func round2(f float64) float64 { return float64(int(f*100)) / 100 }
