package media

import "sync/atomic"

func loadInt32(p *int32) int32     { return atomic.LoadInt32(p) }
func storeInt32(p *int32, v int32) { atomic.StoreInt32(p, v) }
