// Package media holds Proto's media apps: MusicPlayer (POG audio streamed
// to /dev/sb with album art, using a clone()d worker thread exactly as
// §4.5 describes), VideoPlayer (MPV1 playback at native framerate with the
// fast YUV conversion), and slider (BMP slide show).
package media

import (
	"fmt"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/wm"
	"protosim/internal/user/codec/bmpimg"
	"protosim/internal/user/codec/mpv"
	"protosim/internal/user/codec/pim"
	"protosim/internal/user/codec/pogg"
	"protosim/internal/user/ulib"
)

// MusicPlayerMain plays a POG file and shows the album cover.
// argv: [name, songPath, coverPath].
func MusicPlayerMain(p *kernel.Proc, argv []string) int {
	song := "/d/track01.pog"
	cover := "/d/cover01.bmp"
	if len(argv) >= 2 && argv[1] != "" {
		song = argv[1]
	}
	if len(argv) >= 3 && argv[2] != "" {
		cover = argv[2]
	}
	data, err := ulib.ReadFile(p, song)
	if err != nil {
		return 1
	}
	dec, err := pogg.NewDecoder(data)
	if err != nil {
		return 2
	}
	// Album art to the framebuffer (best effort; music plays regardless).
	if raw, err := ulib.ReadFile(p, cover); err == nil {
		if img, err := bmpimg.Decode(raw); err == nil {
			if fbmem, err := p.MapFramebuffer(); err == nil {
				fb := p.Kernel().FB
				blitImage(fbmem, fb.Width(), fb.Height(), fb.Pitch(), img)
				p.SysCacheFlush(0, fb.Size())
			}
		}
	}
	sbfd, err := p.SysOpen("/dev/sb", fs.OWrOnly)
	if err != nil {
		return 3
	}
	// The decode->stream pipeline runs on a clone()d worker thread while
	// the main thread handles UI (here: progress on the console) — the
	// paper's SDL-audio threading structure.
	doneSem, err := p.SysSemCreate(0)
	if err != nil {
		return 4
	}
	var failed int32
	if _, err := p.SysClone("audio", func(tp *kernel.Proc) {
		defer tp.SysSemPost(doneSem)
		buf := make([]byte, 0, pogg.BlockSamples*2)
		for {
			block := dec.NextBlock()
			if block == nil {
				return
			}
			buf = buf[:0]
			for _, s := range block {
				buf = append(buf, byte(uint16(s)), byte(uint16(s)>>8))
			}
			if _, err := tp.SysWrite(sbfd, buf); err != nil {
				storeInt32(&failed, 1)
				return
			}
			tp.Checkpoint()
		}
	}); err != nil {
		return 5
	}
	p.SysSemWait(doneSem)
	if loadInt32(&failed) != 0 {
		return 6
	}
	p.SysIoctl(sbfd, kernel.IoctlSoundDrain, 0)
	return 0
}

// VideoPlayerMain decodes an MPV1 file, converting with the fast YUV path
// and pacing to the native framerate. argv: [name, path, maxFrames].
// Returns 0 and prints "video: N frames" on the console.
func VideoPlayerMain(p *kernel.Proc, argv []string) int {
	path := "/d/clip480.mpv"
	if len(argv) >= 2 && argv[1] != "" {
		path = argv[1]
	}
	data, err := ulib.ReadFile(p, path) // preloaded into memory, as §7.3
	if err != nil {
		return 1
	}
	dec, err := mpv.NewDecoder(data)
	if err != nil {
		return 2
	}
	fbmem, err := p.MapFramebuffer()
	if err != nil {
		return 3
	}
	fb := p.Kernel().FB
	maxFrames := 0
	if len(argv) >= 3 {
		fmt.Sscanf(argv[2], "%d", &maxFrames)
	}
	frameDur := 1000 / dec.FPS // ms
	shown := 0
	next := p.SysUptime()
	for maxFrames == 0 || shown < maxFrames {
		f, err := dec.NextFrame()
		if err != nil {
			return 4
		}
		if f == nil {
			if maxFrames == 0 || shown == 0 {
				break
			}
			// Loop the clip until the frame budget is met (benchmarks ask
			// for more frames than short test clips hold).
			dec, err = mpv.NewDecoder(data)
			if err != nil {
				return 2
			}
			continue
		}
		w := min(f.W, fb.Width())
		h := min(f.H, fb.Height())
		_ = w
		if f.W <= fb.Width() && f.H <= fb.Height() {
			mpv.FastYUVToXRGB(f, fbmem, fb.Pitch())
		}
		_ = h
		p.SysCacheFlush(0, fb.Size())
		shown++
		// Pace to the native framerate (decode may be faster or slower).
		next += int64(frameDur) * 1000
		now := p.SysUptime()
		if sleep := (next - now) / 1000; sleep > 0 {
			p.SysSleep(int(sleep))
		}
		p.Checkpoint()
	}
	return 0
}

// SliderMain shows BMP slides; left/right keys navigate, ESC exits.
// argv: [name, dir, autoAdvanceFrames]. With autoAdvanceFrames > 0 the
// show advances automatically and exits after one pass (demo mode).
func SliderMain(p *kernel.Proc, argv []string) int {
	dir := "/d/photos"
	if len(argv) >= 2 && argv[1] != "" {
		dir = argv[1]
	}
	dfd, err := p.SysOpen(dir, fs.ORdOnly)
	if err != nil {
		return 1
	}
	entries, err := p.SysReadDir(dfd)
	p.SysClose(dfd)
	if err != nil {
		return 2
	}
	var slides []string
	for _, e := range entries {
		if e.Type == fs.TypeFile {
			slides = append(slides, dir+"/"+e.Name)
		}
	}
	if len(slides) == 0 {
		return 3
	}
	fbmem, err := p.MapFramebuffer()
	if err != nil {
		return 4
	}
	fb := p.Kernel().FB
	auto := 0
	if len(argv) >= 3 {
		fmt.Sscanf(argv[2], "%d", &auto)
	}
	var efd int
	if auto == 0 {
		efd, err = p.SysOpen("/dev/events", fs.ORdOnly)
		if err != nil {
			return 5
		}
	}
	cur := 0
	show := func() error {
		raw, err := ulib.ReadFile(p, slides[cur])
		if err != nil {
			return err
		}
		// High-res PIM slides (Table 1 note 4) or plain BMP.
		img, err := pim.Decode(raw)
		if err != nil {
			img, err = bmpimg.Decode(raw)
		}
		if err != nil {
			return err
		}
		blitImage(fbmem, fb.Width(), fb.Height(), fb.Pitch(), img)
		return p.SysCacheFlush(0, fb.Size())
	}
	if auto > 0 {
		for i := 0; i < auto && i < len(slides); i++ {
			cur = i
			if err := show(); err != nil {
				return 6
			}
			p.SysSleep(5)
		}
		return 0
	}
	if err := show(); err != nil {
		return 6
	}
	buf := make([]byte, wm.EventSize)
	for {
		if _, err := p.SysRead(efd, buf); err != nil {
			return 0
		}
		e, ok := wm.DecodeEvent(buf)
		if !ok || !e.Down {
			continue
		}
		switch e.Code {
		case hw.UsageRight:
			cur = (cur + 1) % len(slides)
		case hw.UsageLeft:
			cur = (cur + len(slides) - 1) % len(slides)
		case hw.UsageEsc:
			return 0
		default:
			continue
		}
		if err := show(); err != nil {
			return 6
		}
	}
}

// blitImage centres img on the framebuffer, clipping as needed.
func blitImage(fbmem []byte, fbw, fbh, pitch int, img *bmpimg.Image) {
	x0 := (fbw - img.W) / 2
	y0 := (fbh - img.H) / 2
	xr := img.ToXRGB()
	for y := 0; y < img.H; y++ {
		dy := y0 + y
		if dy < 0 || dy >= fbh {
			continue
		}
		for x := 0; x < img.W; x++ {
			dx := x0 + x
			if dx < 0 || dx >= fbw {
				continue
			}
			copy(fbmem[dy*pitch+dx*4:dy*pitch+dx*4+4], xr[(y*img.W+x)*4:])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
