// Package sysmon is the floating, semi-transparent system monitor: it
// reads /proc/cpuinfo and /proc/meminfo and draws per-core utilization and
// memory bars in a translucent window that stays on top of other apps
// (Figure 1(m)).
package sysmon

import (
	"fmt"

	"protosim/internal/kernel"
	"protosim/internal/user/ulib"
)

// Window geometry.
const (
	Width  = 160
	Height = 100
)

// Main runs the monitor. argv: [name, iterations] (0 = forever).
func Main(p *kernel.Proc, argv []string) int {
	sfd, err := p.OpenSurface("sysmon", Width, Height)
	if err != nil {
		return 1
	}
	// Floating translucency: alpha ~160 like the paper's screenshot.
	if _, err := p.SysIoctl(sfd, kernel.IoctlSurfAlpha, 160); err != nil {
		return 2
	}
	iterations := 0
	if len(argv) >= 2 {
		fmt.Sscanf(argv[1], "%d", &iterations)
	}
	frame := make([]byte, Width*Height*4)
	for i := 0; iterations == 0 || i < iterations; i++ {
		cores, util, err := ulib.CPUInfo(p)
		if err != nil {
			return 3
		}
		totalKB, freeKB, err := ulib.MemInfo(p)
		if err != nil {
			return 4
		}
		render(frame, cores, util, totalKB, freeKB)
		if _, err := p.SysWrite(sfd, frame); err != nil {
			return 5
		}
		p.SysSleep(100)
	}
	return 0
}

// render draws the bars into the XRGB frame.
func render(frame []byte, cores int, util []int, totalKB, freeKB int) {
	// Dark translucent panel background.
	for i := 0; i < len(frame); i += 4 {
		frame[i], frame[i+1], frame[i+2], frame[i+3] = 0x18, 0x10, 0x10, 0xFF
	}
	barW := Width - 20
	// CPU bars.
	for c := 0; c < cores && c < 8; c++ {
		pct := 0
		if c < len(util) {
			pct = util[c]
		}
		y0 := 8 + c*12
		drawBar(frame, 10, y0, barW, 8, pct, 0x30, 0xC0, 0x30)
	}
	// Memory bar.
	usedPct := 0
	if totalKB > 0 {
		usedPct = (totalKB - freeKB) * 100 / totalKB
	}
	drawBar(frame, 10, Height-16, barW, 10, usedPct, 0x30, 0x60, 0xE0)
}

func drawBar(frame []byte, x, y, w, h, pct int, r, g, b byte) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	fill := w * pct / 100
	for dy := 0; dy < h; dy++ {
		row := (y + dy) * Width * 4
		for dx := 0; dx < w; dx++ {
			o := row + (x+dx)*4
			if o+3 >= len(frame) {
				continue
			}
			if dx < fill {
				frame[o], frame[o+1], frame[o+2] = b, g, r
			} else {
				frame[o], frame[o+1], frame[o+2] = 0x30, 0x28, 0x28
			}
			frame[o+3] = 0xFF
		}
	}
}
