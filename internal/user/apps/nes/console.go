package nes

// Console wires the 6502 to RAM, PRG ROM, a controller port, and the
// mini-PPU: a tile/sprite renderer over 2-bits-per-pixel CHR patterns —
// the essential structure of LiteNES without the cycle-exact scanline
// machinery.
//
// Memory map (simplified NES):
//
//	0x0000–0x07FF  RAM (mirrored through 0x1FFF)
//	0x2000–0x23BF  nametable (32×30 background tile ids)
//	0x2400–0x24FF  OAM (64 sprites × 4 bytes: y, tile, attr, x)
//	0x4016         controller (bit0 right, 1 left, 2 down, 3 up, 4 A, 5 B)
//	0x5000         frame counter (read-only)
//	0x8000–0xFFFF  PRG ROM (32 KB, vectors at the top)
type Console struct {
	CPU *CPU

	ram [0x800]byte
	nt  [32 * 30]byte
	oam [256]byte
	prg []byte
	chr []byte // 256 tiles × 16 bytes, 2bpp

	Controller byte
	frame      uint32
}

// Screen geometry.
const (
	ScreenW = 256
	ScreenH = 240
)

// CyclesPerFrame approximates NTSC timing.
const CyclesPerFrame = 29780

// NewConsole inserts a cartridge.
func NewConsole(cart *Cartridge) *Console {
	c := &Console{prg: cart.PRG, chr: cart.CHR}
	c.CPU = NewCPU(c)
	c.CPU.Reset()
	return c
}

// Read implements Bus.
func (c *Console) Read(addr uint16) byte {
	switch {
	case addr < 0x2000:
		return c.ram[addr&0x7FF]
	case addr >= 0x2000 && addr < 0x2000+uint16(len(c.nt)):
		return c.nt[addr-0x2000]
	case addr >= 0x2400 && addr < 0x2500:
		return c.oam[addr-0x2400]
	case addr == 0x4016:
		return c.Controller
	case addr == 0x5000:
		return byte(c.frame)
	case addr >= 0x8000:
		i := int(addr-0x8000) % len(c.prg)
		return c.prg[i]
	}
	return 0
}

// Write implements Bus.
func (c *Console) Write(addr uint16, v byte) {
	switch {
	case addr < 0x2000:
		c.ram[addr&0x7FF] = v
	case addr >= 0x2000 && addr < 0x2000+uint16(len(c.nt)):
		c.nt[addr-0x2000] = v
	case addr >= 0x2400 && addr < 0x2500:
		c.oam[addr-0x2400] = v
	}
}

// Frame returns the frame counter.
func (c *Console) Frame() uint32 { return c.frame }

// StepFrame emulates one video frame: a frame's worth of CPU cycles, then
// the vertical-blank NMI that runs the game's per-frame logic.
func (c *Console) StepFrame() {
	target := c.CPU.Cycles + CyclesPerFrame
	for c.CPU.Cycles < target && !c.CPU.Halted() {
		c.CPU.Step()
	}
	c.frame++
	c.CPU.NMI()
	// Let the NMI handler run (it ends with RTI back into the main loop).
	limit := c.CPU.Cycles + 8000
	for c.CPU.Cycles < limit && !c.CPU.Halted() {
		c.CPU.Step()
	}
}

// palette is a 16-entry RGB palette (NES-flavoured).
var palette = [16][3]byte{
	{0x00, 0x00, 0x00}, {0x7C, 0x7C, 0x7C}, {0xBC, 0xBC, 0xBC}, {0xF8, 0xF8, 0xF8},
	{0xA8, 0x10, 0x00}, {0xF8, 0x38, 0x00}, {0xF8, 0x78, 0x58}, {0xFC, 0xA0, 0x44},
	{0x00, 0x40, 0x58}, {0x00, 0x78, 0x88}, {0x00, 0xB8, 0xF8}, {0x3C, 0xBC, 0xFC},
	{0x00, 0x58, 0x00}, {0x00, 0xA8, 0x00}, {0xB8, 0xF8, 0x18}, {0xF8, 0xD8, 0x78},
}

// tilePixel reads one 2bpp pixel from a CHR tile.
func (c *Console) tilePixel(tile byte, x, y int) byte {
	base := int(tile) * 16
	if base+16 > len(c.chr) {
		return 0
	}
	lo := c.chr[base+y]
	hi := c.chr[base+8+y]
	bit := 7 - x
	return (lo>>bit)&1 | ((hi>>bit)&1)<<1
}

// Render draws the current frame into dst (XRGB8888, 256×240, given
// stride in bytes). This is the blit-heavy half of mario's frame loop.
func (c *Console) Render(dst []byte, stride int) {
	// Background: 32×30 tiles.
	for ty := 0; ty < 30; ty++ {
		for tx := 0; tx < 32; tx++ {
			tile := c.nt[ty*32+tx]
			for py := 0; py < 8; py++ {
				row := (ty*8 + py) * stride
				for px := 0; px < 8; px++ {
					pix := c.tilePixel(tile, px, py)
					col := palette[pix]
					o := row + (tx*8+px)*4
					dst[o] = col[2]
					dst[o+1] = col[1]
					dst[o+2] = col[0]
					dst[o+3] = 0xFF
				}
			}
		}
	}
	// Sprites: 64 entries, pixel 0 transparent, palette offset 4.
	for s := 0; s < 64; s++ {
		sy := int(c.oam[s*4])
		tile := c.oam[s*4+1]
		attr := c.oam[s*4+2]
		sx := int(c.oam[s*4+3])
		if sy >= ScreenH-1 || (tile == 0 && attr == 0 && sx == 0 && sy == 0) {
			continue
		}
		for py := 0; py < 8; py++ {
			y := sy + py
			if y < 0 || y >= ScreenH {
				continue
			}
			for px := 0; px < 8; px++ {
				x := sx + px
				if x < 0 || x >= ScreenW {
					continue
				}
				pix := c.tilePixel(tile, px, py)
				if pix == 0 {
					continue
				}
				col := palette[4+int(pix)+int(attr&3)*3]
				o := y*stride + x*4
				dst[o] = col[2]
				dst[o+1] = col[1]
				dst[o+2] = col[0]
				dst[o+3] = 0xFF
			}
		}
	}
}

// Controller button bits.
const (
	BtnRight = 1 << 0
	BtnLeft  = 1 << 1
	BtnDown  = 1 << 2
	BtnUp    = 1 << 3
	BtnA     = 1 << 4
	BtnB     = 1 << 5
)
