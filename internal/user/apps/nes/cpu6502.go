// Package nes is the LiteNES substitute: a real MOS 6502 interpreter, a
// minimal PPU-style tile renderer, and synthetic cartridges, enough to run
// "mario"-class sprite games. The paper's mario builds exercise exactly
// this computational profile — an interpreter loop emulating ~30k cycles
// per frame followed by a full-frame pixel blit (§7.3).
package nes

import "fmt"

// Bus is the CPU's view of memory.
type Bus interface {
	Read(addr uint16) byte
	Write(addr uint16, v byte)
}

// Status flag bits.
const (
	flagC byte = 1 << 0
	flagZ byte = 1 << 1
	flagI byte = 1 << 2
	flagD byte = 1 << 3
	flagB byte = 1 << 4
	flagU byte = 1 << 5
	flagV byte = 1 << 6
	flagN byte = 1 << 7
)

// CPU is a MOS 6502 with the documented instruction set.
type CPU struct {
	A, X, Y byte
	SP      byte
	PC      uint16
	P       byte

	bus    Bus
	Cycles uint64
	halted bool
}

// NewCPU attaches a CPU to a bus.
func NewCPU(bus Bus) *CPU {
	return &CPU{bus: bus, SP: 0xFD, P: flagI | flagU}
}

// Reset loads PC from the reset vector.
func (c *CPU) Reset() {
	c.PC = uint16(c.bus.Read(0xFFFC)) | uint16(c.bus.Read(0xFFFD))<<8
	c.SP = 0xFD
	c.P = flagI | flagU
	c.halted = false
}

// Halted reports whether the CPU hit an illegal/KIL opcode.
func (c *CPU) Halted() bool { return c.halted }

func (c *CPU) setZN(v byte) {
	c.setFlag(flagZ, v == 0)
	c.setFlag(flagN, v&0x80 != 0)
}

func (c *CPU) setFlag(f byte, on bool) {
	if on {
		c.P |= f
	} else {
		c.P &^= f
	}
}

func (c *CPU) flag(f byte) bool { return c.P&f != 0 }

func (c *CPU) fetch() byte {
	v := c.bus.Read(c.PC)
	c.PC++
	return v
}

func (c *CPU) fetch16() uint16 {
	lo := uint16(c.fetch())
	hi := uint16(c.fetch())
	return hi<<8 | lo
}

func (c *CPU) push(v byte) {
	c.bus.Write(0x0100|uint16(c.SP), v)
	c.SP--
}

func (c *CPU) pop() byte {
	c.SP++
	return c.bus.Read(0x0100 | uint16(c.SP))
}

func (c *CPU) read16(addr uint16) uint16 {
	return uint16(c.bus.Read(addr)) | uint16(c.bus.Read(addr+1))<<8
}

// read16bug reproduces the 6502's page-wrap bug for indirect JMP.
func (c *CPU) read16bug(addr uint16) uint16 {
	lo := uint16(c.bus.Read(addr))
	hiAddr := (addr & 0xFF00) | uint16(byte(addr)+1)
	hi := uint16(c.bus.Read(hiAddr))
	return hi<<8 | lo
}

// Addressing modes return the effective address.
func (c *CPU) zp() uint16   { return uint16(c.fetch()) }
func (c *CPU) zpx() uint16  { return uint16(c.fetch() + c.X) }
func (c *CPU) zpy() uint16  { return uint16(c.fetch() + c.Y) }
func (c *CPU) abs() uint16  { return c.fetch16() }
func (c *CPU) absx() uint16 { return c.fetch16() + uint16(c.X) }
func (c *CPU) absy() uint16 { return c.fetch16() + uint16(c.Y) }
func (c *CPU) indx() uint16 {
	base := c.fetch() + c.X
	return uint16(c.bus.Read(uint16(base))) | uint16(c.bus.Read(uint16(base+1)))<<8
}
func (c *CPU) indy() uint16 {
	base := c.fetch()
	addr := uint16(c.bus.Read(uint16(base))) | uint16(c.bus.Read(uint16(base+1)))<<8
	return addr + uint16(c.Y)
}

func (c *CPU) branch(cond bool) {
	off := int8(c.fetch())
	if cond {
		c.PC = uint16(int32(c.PC) + int32(off))
		c.Cycles++
	}
}

// ALU helpers.
func (c *CPU) adc(v byte) {
	carry := uint16(0)
	if c.flag(flagC) {
		carry = 1
	}
	sum := uint16(c.A) + uint16(v) + carry
	c.setFlag(flagC, sum > 0xFF)
	r := byte(sum)
	c.setFlag(flagV, (c.A^r)&(v^r)&0x80 != 0)
	c.A = r
	c.setZN(c.A)
}

func (c *CPU) sbc(v byte) { c.adc(^v) }

func (c *CPU) cmp(reg, v byte) {
	c.setFlag(flagC, reg >= v)
	c.setZN(reg - v)
}

func (c *CPU) asl(v byte) byte {
	c.setFlag(flagC, v&0x80 != 0)
	v <<= 1
	c.setZN(v)
	return v
}

func (c *CPU) lsr(v byte) byte {
	c.setFlag(flagC, v&1 != 0)
	v >>= 1
	c.setZN(v)
	return v
}

func (c *CPU) rol(v byte) byte {
	carry := byte(0)
	if c.flag(flagC) {
		carry = 1
	}
	c.setFlag(flagC, v&0x80 != 0)
	v = v<<1 | carry
	c.setZN(v)
	return v
}

func (c *CPU) ror(v byte) byte {
	carry := byte(0)
	if c.flag(flagC) {
		carry = 0x80
	}
	c.setFlag(flagC, v&1 != 0)
	v = v>>1 | carry
	c.setZN(v)
	return v
}

func (c *CPU) bit(v byte) {
	c.setFlag(flagZ, c.A&v == 0)
	c.setFlag(flagV, v&0x40 != 0)
	c.setFlag(flagN, v&0x80 != 0)
}

// rmw applies fn to memory at addr.
func (c *CPU) rmw(addr uint16, fn func(byte) byte) {
	c.bus.Write(addr, fn(c.bus.Read(addr)))
}

// Step executes one instruction, returning its cycle cost.
func (c *CPU) Step() int {
	if c.halted {
		return 1
	}
	op := c.fetch()
	cycles := opCycles[op]
	switch op {
	// Loads.
	case 0xA9:
		c.A = c.fetch()
		c.setZN(c.A)
	case 0xA5:
		c.A = c.bus.Read(c.zp())
		c.setZN(c.A)
	case 0xB5:
		c.A = c.bus.Read(c.zpx())
		c.setZN(c.A)
	case 0xAD:
		c.A = c.bus.Read(c.abs())
		c.setZN(c.A)
	case 0xBD:
		c.A = c.bus.Read(c.absx())
		c.setZN(c.A)
	case 0xB9:
		c.A = c.bus.Read(c.absy())
		c.setZN(c.A)
	case 0xA1:
		c.A = c.bus.Read(c.indx())
		c.setZN(c.A)
	case 0xB1:
		c.A = c.bus.Read(c.indy())
		c.setZN(c.A)
	case 0xA2:
		c.X = c.fetch()
		c.setZN(c.X)
	case 0xA6:
		c.X = c.bus.Read(c.zp())
		c.setZN(c.X)
	case 0xB6:
		c.X = c.bus.Read(c.zpy())
		c.setZN(c.X)
	case 0xAE:
		c.X = c.bus.Read(c.abs())
		c.setZN(c.X)
	case 0xBE:
		c.X = c.bus.Read(c.absy())
		c.setZN(c.X)
	case 0xA0:
		c.Y = c.fetch()
		c.setZN(c.Y)
	case 0xA4:
		c.Y = c.bus.Read(c.zp())
		c.setZN(c.Y)
	case 0xB4:
		c.Y = c.bus.Read(c.zpx())
		c.setZN(c.Y)
	case 0xAC:
		c.Y = c.bus.Read(c.abs())
		c.setZN(c.Y)
	case 0xBC:
		c.Y = c.bus.Read(c.absx())
		c.setZN(c.Y)
	// Stores.
	case 0x85:
		c.bus.Write(c.zp(), c.A)
	case 0x95:
		c.bus.Write(c.zpx(), c.A)
	case 0x8D:
		c.bus.Write(c.abs(), c.A)
	case 0x9D:
		c.bus.Write(c.absx(), c.A)
	case 0x99:
		c.bus.Write(c.absy(), c.A)
	case 0x81:
		c.bus.Write(c.indx(), c.A)
	case 0x91:
		c.bus.Write(c.indy(), c.A)
	case 0x86:
		c.bus.Write(c.zp(), c.X)
	case 0x96:
		c.bus.Write(c.zpy(), c.X)
	case 0x8E:
		c.bus.Write(c.abs(), c.X)
	case 0x84:
		c.bus.Write(c.zp(), c.Y)
	case 0x94:
		c.bus.Write(c.zpx(), c.Y)
	case 0x8C:
		c.bus.Write(c.abs(), c.Y)
	// Transfers.
	case 0xAA:
		c.X = c.A
		c.setZN(c.X)
	case 0xA8:
		c.Y = c.A
		c.setZN(c.Y)
	case 0x8A:
		c.A = c.X
		c.setZN(c.A)
	case 0x98:
		c.A = c.Y
		c.setZN(c.A)
	case 0xBA:
		c.X = c.SP
		c.setZN(c.X)
	case 0x9A:
		c.SP = c.X
	// Stack.
	case 0x48:
		c.push(c.A)
	case 0x68:
		c.A = c.pop()
		c.setZN(c.A)
	case 0x08:
		c.push(c.P | flagB | flagU)
	case 0x28:
		c.P = c.pop()&^flagB | flagU
	// Arithmetic.
	case 0x69:
		c.adc(c.fetch())
	case 0x65:
		c.adc(c.bus.Read(c.zp()))
	case 0x75:
		c.adc(c.bus.Read(c.zpx()))
	case 0x6D:
		c.adc(c.bus.Read(c.abs()))
	case 0x7D:
		c.adc(c.bus.Read(c.absx()))
	case 0x79:
		c.adc(c.bus.Read(c.absy()))
	case 0x61:
		c.adc(c.bus.Read(c.indx()))
	case 0x71:
		c.adc(c.bus.Read(c.indy()))
	case 0xE9:
		c.sbc(c.fetch())
	case 0xE5:
		c.sbc(c.bus.Read(c.zp()))
	case 0xF5:
		c.sbc(c.bus.Read(c.zpx()))
	case 0xED:
		c.sbc(c.bus.Read(c.abs()))
	case 0xFD:
		c.sbc(c.bus.Read(c.absx()))
	case 0xF9:
		c.sbc(c.bus.Read(c.absy()))
	case 0xE1:
		c.sbc(c.bus.Read(c.indx()))
	case 0xF1:
		c.sbc(c.bus.Read(c.indy()))
	// Logic.
	case 0x29:
		c.A &= c.fetch()
		c.setZN(c.A)
	case 0x25:
		c.A &= c.bus.Read(c.zp())
		c.setZN(c.A)
	case 0x35:
		c.A &= c.bus.Read(c.zpx())
		c.setZN(c.A)
	case 0x2D:
		c.A &= c.bus.Read(c.abs())
		c.setZN(c.A)
	case 0x3D:
		c.A &= c.bus.Read(c.absx())
		c.setZN(c.A)
	case 0x39:
		c.A &= c.bus.Read(c.absy())
		c.setZN(c.A)
	case 0x21:
		c.A &= c.bus.Read(c.indx())
		c.setZN(c.A)
	case 0x31:
		c.A &= c.bus.Read(c.indy())
		c.setZN(c.A)
	case 0x09:
		c.A |= c.fetch()
		c.setZN(c.A)
	case 0x05:
		c.A |= c.bus.Read(c.zp())
		c.setZN(c.A)
	case 0x15:
		c.A |= c.bus.Read(c.zpx())
		c.setZN(c.A)
	case 0x0D:
		c.A |= c.bus.Read(c.abs())
		c.setZN(c.A)
	case 0x1D:
		c.A |= c.bus.Read(c.absx())
		c.setZN(c.A)
	case 0x19:
		c.A |= c.bus.Read(c.absy())
		c.setZN(c.A)
	case 0x01:
		c.A |= c.bus.Read(c.indx())
		c.setZN(c.A)
	case 0x11:
		c.A |= c.bus.Read(c.indy())
		c.setZN(c.A)
	case 0x49:
		c.A ^= c.fetch()
		c.setZN(c.A)
	case 0x45:
		c.A ^= c.bus.Read(c.zp())
		c.setZN(c.A)
	case 0x55:
		c.A ^= c.bus.Read(c.zpx())
		c.setZN(c.A)
	case 0x4D:
		c.A ^= c.bus.Read(c.abs())
		c.setZN(c.A)
	case 0x5D:
		c.A ^= c.bus.Read(c.absx())
		c.setZN(c.A)
	case 0x59:
		c.A ^= c.bus.Read(c.absy())
		c.setZN(c.A)
	case 0x41:
		c.A ^= c.bus.Read(c.indx())
		c.setZN(c.A)
	case 0x51:
		c.A ^= c.bus.Read(c.indy())
		c.setZN(c.A)
	// Compare.
	case 0xC9:
		c.cmp(c.A, c.fetch())
	case 0xC5:
		c.cmp(c.A, c.bus.Read(c.zp()))
	case 0xD5:
		c.cmp(c.A, c.bus.Read(c.zpx()))
	case 0xCD:
		c.cmp(c.A, c.bus.Read(c.abs()))
	case 0xDD:
		c.cmp(c.A, c.bus.Read(c.absx()))
	case 0xD9:
		c.cmp(c.A, c.bus.Read(c.absy()))
	case 0xC1:
		c.cmp(c.A, c.bus.Read(c.indx()))
	case 0xD1:
		c.cmp(c.A, c.bus.Read(c.indy()))
	case 0xE0:
		c.cmp(c.X, c.fetch())
	case 0xE4:
		c.cmp(c.X, c.bus.Read(c.zp()))
	case 0xEC:
		c.cmp(c.X, c.bus.Read(c.abs()))
	case 0xC0:
		c.cmp(c.Y, c.fetch())
	case 0xC4:
		c.cmp(c.Y, c.bus.Read(c.zp()))
	case 0xCC:
		c.cmp(c.Y, c.bus.Read(c.abs()))
	// Inc/dec.
	case 0xE6:
		c.rmw(c.zp(), func(v byte) byte { v++; c.setZN(v); return v })
	case 0xF6:
		c.rmw(c.zpx(), func(v byte) byte { v++; c.setZN(v); return v })
	case 0xEE:
		c.rmw(c.abs(), func(v byte) byte { v++; c.setZN(v); return v })
	case 0xFE:
		c.rmw(c.absx(), func(v byte) byte { v++; c.setZN(v); return v })
	case 0xC6:
		c.rmw(c.zp(), func(v byte) byte { v--; c.setZN(v); return v })
	case 0xD6:
		c.rmw(c.zpx(), func(v byte) byte { v--; c.setZN(v); return v })
	case 0xCE:
		c.rmw(c.abs(), func(v byte) byte { v--; c.setZN(v); return v })
	case 0xDE:
		c.rmw(c.absx(), func(v byte) byte { v--; c.setZN(v); return v })
	case 0xE8:
		c.X++
		c.setZN(c.X)
	case 0xC8:
		c.Y++
		c.setZN(c.Y)
	case 0xCA:
		c.X--
		c.setZN(c.X)
	case 0x88:
		c.Y--
		c.setZN(c.Y)
	// Shifts.
	case 0x0A:
		c.A = c.asl(c.A)
	case 0x06:
		c.rmw(c.zp(), c.asl)
	case 0x16:
		c.rmw(c.zpx(), c.asl)
	case 0x0E:
		c.rmw(c.abs(), c.asl)
	case 0x1E:
		c.rmw(c.absx(), c.asl)
	case 0x4A:
		c.A = c.lsr(c.A)
	case 0x46:
		c.rmw(c.zp(), c.lsr)
	case 0x56:
		c.rmw(c.zpx(), c.lsr)
	case 0x4E:
		c.rmw(c.abs(), c.lsr)
	case 0x5E:
		c.rmw(c.absx(), c.lsr)
	case 0x2A:
		c.A = c.rol(c.A)
	case 0x26:
		c.rmw(c.zp(), c.rol)
	case 0x36:
		c.rmw(c.zpx(), c.rol)
	case 0x2E:
		c.rmw(c.abs(), c.rol)
	case 0x3E:
		c.rmw(c.absx(), c.rol)
	case 0x6A:
		c.A = c.ror(c.A)
	case 0x66:
		c.rmw(c.zp(), c.ror)
	case 0x76:
		c.rmw(c.zpx(), c.ror)
	case 0x6E:
		c.rmw(c.abs(), c.ror)
	case 0x7E:
		c.rmw(c.absx(), c.ror)
	// Bit test.
	case 0x24:
		c.bit(c.bus.Read(c.zp()))
	case 0x2C:
		c.bit(c.bus.Read(c.abs()))
	// Jumps and calls.
	case 0x4C:
		c.PC = c.fetch16()
	case 0x6C:
		c.PC = c.read16bug(c.fetch16())
	case 0x20:
		addr := c.fetch16()
		ret := c.PC - 1
		c.push(byte(ret >> 8))
		c.push(byte(ret))
		c.PC = addr
	case 0x60:
		lo := uint16(c.pop())
		hi := uint16(c.pop())
		c.PC = hi<<8 | lo + 1
	case 0x40: // RTI
		c.P = c.pop()&^flagB | flagU
		lo := uint16(c.pop())
		hi := uint16(c.pop())
		c.PC = hi<<8 | lo
	case 0x00: // BRK
		c.PC++
		c.push(byte(c.PC >> 8))
		c.push(byte(c.PC))
		c.push(c.P | flagB | flagU)
		c.setFlag(flagI, true)
		c.PC = c.read16(0xFFFE)
	// Branches.
	case 0x90:
		c.branch(!c.flag(flagC))
	case 0xB0:
		c.branch(c.flag(flagC))
	case 0xF0:
		c.branch(c.flag(flagZ))
	case 0xD0:
		c.branch(!c.flag(flagZ))
	case 0x10:
		c.branch(!c.flag(flagN))
	case 0x30:
		c.branch(c.flag(flagN))
	case 0x50:
		c.branch(!c.flag(flagV))
	case 0x70:
		c.branch(c.flag(flagV))
	// Flags.
	case 0x18:
		c.setFlag(flagC, false)
	case 0x38:
		c.setFlag(flagC, true)
	case 0x58:
		c.setFlag(flagI, false)
	case 0x78:
		c.setFlag(flagI, true)
	case 0xB8:
		c.setFlag(flagV, false)
	case 0xD8:
		c.setFlag(flagD, false)
	case 0xF8:
		c.setFlag(flagD, true)
	case 0xEA: // NOP
	default:
		// Undocumented opcode: halt, like LiteNES would crash.
		c.halted = true
	}
	c.Cycles += uint64(cycles)
	return cycles
}

// NMI triggers the vertical-blank interrupt the game loop runs on.
func (c *CPU) NMI() {
	c.push(byte(c.PC >> 8))
	c.push(byte(c.PC))
	c.push(c.P &^ flagB)
	c.setFlag(flagI, true)
	c.PC = c.read16(0xFFFA)
}

// String summarizes register state for debugging.
func (c *CPU) String() string {
	return fmt.Sprintf("A=%02X X=%02X Y=%02X SP=%02X PC=%04X P=%02X", c.A, c.X, c.Y, c.SP, c.PC, c.P)
}

// opCycles gives base cycle counts (page-cross penalties folded in
// approximately; the emulator only needs frame-level pacing).
var opCycles = [256]int{}

func init() {
	for i := range opCycles {
		opCycles[i] = 2
	}
	for _, e := range []struct {
		op  byte
		cyc int
	}{
		{0xA5, 3}, {0xB5, 4}, {0xAD, 4}, {0xBD, 4}, {0xB9, 4}, {0xA1, 6}, {0xB1, 5},
		{0x85, 3}, {0x95, 4}, {0x8D, 4}, {0x9D, 5}, {0x99, 5}, {0x81, 6}, {0x91, 6},
		{0x20, 6}, {0x60, 6}, {0x40, 6}, {0x00, 7}, {0x4C, 3}, {0x6C, 5},
		{0x48, 3}, {0x68, 4}, {0x08, 3}, {0x28, 4},
		{0xE6, 5}, {0xF6, 6}, {0xEE, 6}, {0xFE, 7},
		{0xC6, 5}, {0xD6, 6}, {0xCE, 6}, {0xDE, 7},
		{0x06, 5}, {0x16, 6}, {0x0E, 6}, {0x1E, 7},
		{0x46, 5}, {0x56, 6}, {0x4E, 6}, {0x5E, 7},
		{0x26, 5}, {0x36, 6}, {0x2E, 6}, {0x3E, 7},
		{0x66, 5}, {0x76, 6}, {0x6E, 6}, {0x7E, 7},
	} {
		opCycles[e.op] = e.cyc
	}
}
