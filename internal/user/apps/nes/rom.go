package nes

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Cartridge is PRG code plus CHR tiles, serialized in an iNES-like "PNES"
// container so game files live on the filesystem as Prototype 4 requires
// ("the NES game engine can load additional ROMs as files", §4.4).
type Cartridge struct {
	Name string
	PRG  []byte // 32 KB
	CHR  []byte // 4 KB
}

// ROMMagic identifies a cartridge file.
const ROMMagic = "PNES"

// ErrBadROM reports a malformed cartridge file.
var ErrBadROM = errors.New("nes: bad ROM")

// PRGSize and CHRSize are fixed (mapper 0 flavour).
const (
	PRGSize = 32 * 1024
	CHRSize = 4 * 1024
)

// Serialize writes the cartridge file.
func (c *Cartridge) Serialize() []byte {
	out := make([]byte, 0, 16+len(c.Name)+PRGSize+CHRSize)
	out = append(out, ROMMagic...)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(c.Name)))
	out = append(out, hdr[:]...)
	out = append(out, c.Name...)
	out = append(out, c.PRG...)
	out = append(out, c.CHR...)
	return out
}

// LoadCartridge parses a cartridge file.
func LoadCartridge(data []byte) (*Cartridge, error) {
	if len(data) < 8 || string(data[0:4]) != ROMMagic {
		return nil, ErrBadROM
	}
	nameLen := int(binary.LittleEndian.Uint32(data[4:]))
	if nameLen < 0 || nameLen > 64 || 8+nameLen+PRGSize+CHRSize > len(data) {
		return nil, fmt.Errorf("%w: truncated", ErrBadROM)
	}
	c := &Cartridge{Name: string(data[8 : 8+nameLen])}
	c.PRG = append([]byte(nil), data[8+nameLen:8+nameLen+PRGSize]...)
	c.CHR = append([]byte(nil), data[8+nameLen+PRGSize:8+nameLen+PRGSize+CHRSize]...)
	return c, nil
}

// --- A tiny 6502 assembler for building the synthetic game ROMs ---

// asm builds PRG images with label fixups.
type asm struct {
	buf    []byte
	org    uint16
	labels map[string]uint16
	fixAbs map[int]string // offset of 16-bit absolute operand -> label
	fixRel map[int]string // offset of 8-bit branch operand -> label
}

func newAsm(org uint16) *asm {
	return &asm{org: org, labels: map[string]uint16{}, fixAbs: map[int]string{}, fixRel: map[int]string{}}
}

func (a *asm) pc() uint16        { return a.org + uint16(len(a.buf)) }
func (a *asm) label(name string) { a.labels[name] = a.pc() }
func (a *asm) db(bs ...byte)     { a.buf = append(a.buf, bs...) }

// op emits opcode + operand bytes.
func (a *asm) op(code byte, operands ...byte) { a.db(append([]byte{code}, operands...)...) }

// opAbs emits opcode with a label-resolved absolute address.
func (a *asm) opAbs(code byte, label string) {
	a.db(code)
	a.fixAbs[len(a.buf)] = label
	a.db(0, 0)
}

// br emits a branch to a label.
func (a *asm) br(code byte, label string) {
	a.db(code)
	a.fixRel[len(a.buf)] = label
	a.db(0)
}

// assemble resolves fixups and pads to PRGSize with vectors installed.
func (a *asm) assemble(resetLabel, nmiLabel string) ([]byte, error) {
	for off, label := range a.fixAbs {
		addr, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("nes: undefined label %q", label)
		}
		a.buf[off] = byte(addr)
		a.buf[off+1] = byte(addr >> 8)
	}
	for off, label := range a.fixRel {
		addr, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("nes: undefined label %q", label)
		}
		rel := int(addr) - int(a.org) - (off + 1)
		if rel < -128 || rel > 127 {
			return nil, fmt.Errorf("nes: branch to %q out of range (%d)", label, rel)
		}
		a.buf[off] = byte(int8(rel))
	}
	if len(a.buf) > PRGSize-6 {
		return nil, fmt.Errorf("nes: program too large (%d)", len(a.buf))
	}
	prg := make([]byte, PRGSize)
	copy(prg, a.buf)
	reset := a.labels[resetLabel]
	nmi := a.labels[nmiLabel]
	// Vectors live at 0xFFFA (NMI), 0xFFFC (RESET), 0xFFFE (IRQ/BRK).
	put := func(vec uint16, addr uint16) {
		prg[vec-0x8000] = byte(addr)
		prg[vec-0x8000+1] = byte(addr >> 8)
	}
	put(0xFFFA, nmi)
	put(0xFFFC, reset)
	put(0xFFFE, reset)
	return prg, nil
}

// BuildMarioROM assembles the synthetic "mario" game: a sprite moved by
// the controller over an animated background, with a busy-work loop per
// frame so the CPU profile resembles a real game engine. The title screen
// animates even with no input (the coin flash of §4.3) and the sprite
// auto-drifts when idle — mario-noinput's perpetual motion.
func BuildMarioROM(name string, workLoops byte) (*Cartridge, error) {
	a := newAsm(0x8000)
	// Zero page: $10 = sprite x, $11 = sprite y, $12 = anim counter.
	a.label("reset")
	a.op(0xA9, 120) // LDA #120
	a.op(0x85, 0x10)
	a.op(0xA9, 100)
	a.op(0x85, 0x11)
	a.op(0xA9, 0)
	a.op(0x85, 0x12)
	// Fill the nametable with tile 2 (checkerboard).
	a.op(0xA2, 0x00) // LDX #0
	a.label("fill")
	a.op(0xA9, 2)
	// STA $2000,X ; STA $2100,X ; STA $2200,X ; ~(32*30=960 < 0x400)
	a.op(0x9D, 0x00, 0x20)
	a.op(0x9D, 0x00, 0x21)
	a.op(0x9D, 0x00, 0x22)
	a.op(0x9D, 0x00, 0x23)
	a.op(0xE8) // INX
	a.br(0xD0, "fill")
	a.label("idle")
	a.opAbs(0x4C, "idle") // JMP idle — everything happens in the NMI.

	a.label("nmi")
	// Controller: right/left/down/up move the sprite.
	a.op(0xAD, 0x16, 0x40) // LDA $4016
	a.op(0x4A)             // LSR (bit0 right -> carry)
	a.br(0x90, "noR")
	a.op(0xE6, 0x10) // INC $10
	a.label("noR")
	a.op(0x4A)
	a.br(0x90, "noL")
	a.op(0xC6, 0x10)
	a.label("noL")
	a.op(0x4A)
	a.br(0x90, "noD")
	a.op(0xE6, 0x11)
	a.label("noD")
	a.op(0x4A)
	a.br(0x90, "noU")
	a.op(0xC6, 0x11)
	a.label("noU")
	// Idle drift: every 4th frame nudge x so the demo is alive without
	// input (autoplay).
	a.op(0xA5, 0x12)
	a.op(0x29, 0x03) // AND #3
	a.br(0xD0, "noDrift")
	a.op(0xE6, 0x10)
	a.label("noDrift")
	// OAM sprite 0: y, tile 1, attr 0, x.
	a.op(0xA5, 0x11)
	a.op(0x8D, 0x00, 0x24)
	a.op(0xA9, 1)
	a.op(0x8D, 0x01, 0x24)
	a.op(0xA9, 0)
	a.op(0x8D, 0x02, 0x24)
	a.op(0xA5, 0x10)
	a.op(0x8D, 0x03, 0x24)
	// Animate the title row: cycle tile ids 2/3 along row 0 (coin flash).
	a.op(0xE6, 0x12) // INC $12
	a.op(0xA5, 0x12)
	a.op(0x4A)
	a.op(0x4A)
	a.op(0x29, 0x01)
	a.op(0x18)       // CLC
	a.op(0x69, 2)    // ADC #2 -> tile 2 or 3
	a.op(0xA6, 0x12) // LDX $12
	a.op(0x9D, 0x00, 0x20)
	// Busy work: nested DEY loop to burn cycles like game logic.
	a.op(0xA0, workLoops) // LDY #work
	a.label("busyO")
	a.op(0xA2, 0xFF)
	a.label("busyI")
	a.op(0xCA)
	a.br(0xD0, "busyI")
	a.op(0x88)
	a.br(0xD0, "busyO")
	a.op(0x40) // RTI

	prg, err := a.assemble("reset", "nmi")
	if err != nil {
		return nil, err
	}
	return &Cartridge{Name: name, PRG: prg, CHR: buildCHR()}, nil
}

// buildCHR generates pattern tiles: 0 = blank, 1 = the hero sprite blob,
// 2/3 = background checker variants, 4.. = gradient stripes.
func buildCHR() []byte {
	chr := make([]byte, CHRSize)
	setPix := func(tile, x, y int, v byte) {
		base := tile * 16
		bit := byte(1) << (7 - x)
		if v&1 != 0 {
			chr[base+y] |= bit
		}
		if v&2 != 0 {
			chr[base+8+y] |= bit
		}
	}
	// Tile 1: a filled 8x8 blob with a face-ish notch.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := byte(3)
			if y < 2 && (x < 2 || x > 5) {
				v = 0
			}
			if y == 4 && (x == 2 || x == 5) {
				v = 1
			}
			setPix(1, x, y, v)
		}
	}
	// Tiles 2 and 3: checker phases.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x/2+y/2)%2 == 0 {
				setPix(2, x, y, 1)
			} else {
				setPix(3, x, y, 1)
			}
		}
	}
	// Tiles 4..7: stripe patterns.
	for t := 4; t < 8; t++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if (x+y+t)%4 == 0 {
					setPix(t, x, y, 2)
				}
			}
		}
	}
	return chr
}
