package nes

import (
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/wm"
)

// The three mario variants of §7.3:
//
//   - MainNoInput (Prototype 3): one task, direct framebuffer rendering,
//     no input handling — autoplay only.
//   - MainProc (Prototype 4): direct rendering; input via the fork+pipe
//     IPC pattern of §4.4 (a timer process and a /dev/events reader
//     process writing into a shared pipe the main loop reads).
//   - MainSDL (Prototype 5): renders indirectly through the window
//     manager and reads events from its window.
//
// argv: [name, romPath, maxFrames] — maxFrames 0 means run until killed.

// runConfig carries per-variant wiring.
type runConfig struct {
	blit     func(frame []byte) error // present one rendered frame
	pollKeys func() byte              // controller state
	done     func() bool
}

// loadROM reads the cartridge from the filesystem (or builds the embedded
// mario when the path is "builtin:mario").
func loadROM(p *kernel.Proc, path string) (*Cartridge, error) {
	if path == "" || path == "builtin:mario" {
		return BuildMarioROM("mario", 3)
	}
	data, err := readAll(p, path)
	if err != nil {
		return nil, err
	}
	return LoadCartridge(data)
}

func readAll(p *kernel.Proc, path string) ([]byte, error) {
	fd, err := p.SysOpen(path, fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer p.SysClose(fd)
	var out []byte
	buf := make([]byte, 32*1024)
	for {
		n, err := p.SysRead(fd, buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// frameLimit parses argv[2].
func frameLimit(argv []string) int {
	if len(argv) >= 3 {
		n := 0
		for _, ch := range argv[2] {
			if ch < '0' || ch > '9' {
				return 0
			}
			n = n*10 + int(ch-'0')
		}
		return n
	}
	return 0
}

func romPath(argv []string) string {
	if len(argv) >= 2 {
		return argv[1]
	}
	return "builtin:mario"
}

// emulate is the shared main loop: emulate a frame, render, present.
func emulate(p *kernel.Proc, cart *Cartridge, cfg runConfig, maxFrames int) int {
	console := NewConsole(cart)
	frame := make([]byte, ScreenW*ScreenH*4)
	frames := 0
	for maxFrames == 0 || frames < maxFrames {
		console.Controller = cfg.pollKeys()
		console.StepFrame()
		console.Render(frame, ScreenW*4)
		if err := cfg.blit(frame); err != nil {
			return 1
		}
		frames++
		p.Checkpoint()
		if cfg.done != nil && cfg.done() {
			break
		}
		if console.CPU.Halted() {
			return 2
		}
	}
	return 0
}

// MainNoInput is the Prototype 3 variant.
func MainNoInput(p *kernel.Proc, argv []string) int {
	cart, err := loadROM(p, romPath(argv))
	if err != nil {
		return 1
	}
	fbmem, err := p.MapFramebuffer()
	if err != nil {
		return 1
	}
	fbw := p.Kernel().FB.Width()
	pitch := p.Kernel().FB.Pitch()
	return emulate(p, cart, runConfig{
		blit: func(frame []byte) error {
			blitToFB(fbmem, pitch, fbw, frame)
			return p.SysCacheFlush(0, len(fbmem))
		},
		pollKeys: func() byte { return 0 },
	}, frameLimit(argv))
}

// MainProc is the Prototype 4 variant: two forked helper processes (a
// msleep ticker and a blocking /dev/events reader) write event bytes into
// a pipe; the main loop reads the pipe — two writers, one reader (§4.4).
func MainProc(p *kernel.Proc, argv []string) int {
	cart, err := loadROM(p, romPath(argv))
	if err != nil {
		return 1
	}
	fbmem, err := p.MapFramebuffer()
	if err != nil {
		return 1
	}
	fbw := p.Kernel().FB.Width()
	pitch := p.Kernel().FB.Pitch()

	rfd, wfd, err := p.SysPipe()
	if err != nil {
		return 1
	}
	// Ticker child: a 'T' byte per frame period. Table 5 measures apps
	// rendering "as fast as possible without locking to a fixed FPS", so
	// the tick is the shortest sleep the kernel grants — the IPC structure
	// (two writers, one reader over a pipe) is what this variant is about.
	p.SysFork(func(c *kernel.Proc) {
		for {
			c.SysSleep(1)
			if _, err := c.SysWrite(wfd, []byte{'T'}); err != nil {
				c.SysExit(0)
			}
		}
	})
	// Input child: blocking /dev/events reads, forwarding key state bytes.
	p.SysFork(func(c *kernel.Proc) {
		efd, err := c.SysOpen("/dev/events", fs.ORdOnly)
		if err != nil {
			c.SysExit(1)
		}
		var state byte
		buf := make([]byte, wm.EventSize)
		for {
			if _, err := c.SysRead(efd, buf); err != nil {
				c.SysExit(0)
			}
			e, ok := wm.DecodeEvent(buf)
			if !ok {
				continue
			}
			state = applyKey(state, e)
			if _, err := c.SysWrite(wfd, []byte{'K', state}); err != nil {
				c.SysExit(0)
			}
		}
	})
	p.SysClose(wfd)

	var keys byte
	buf := make([]byte, 2)
	waitTick := func() {
		for {
			n, err := p.SysRead(rfd, buf[:1])
			if err != nil || n == 0 {
				return
			}
			switch buf[0] {
			case 'T':
				return
			case 'K':
				if n2, _ := p.SysRead(rfd, buf[1:2]); n2 == 1 {
					keys = buf[1]
				}
			}
		}
	}
	code := emulate(p, cart, runConfig{
		blit: func(frame []byte) error {
			waitTick()
			blitToFB(fbmem, pitch, fbw, frame)
			return p.SysCacheFlush(0, len(fbmem))
		},
		pollKeys: func() byte { return keys },
	}, frameLimit(argv))
	p.SysClose(rfd)
	return code
}

// MainSDL is the Prototype 5 variant: threads + WM surface.
func MainSDL(p *kernel.Proc, argv []string) int {
	cart, err := loadROM(p, romPath(argv))
	if err != nil {
		return 1
	}
	sfd, err := p.OpenSurface("mario", ScreenW, ScreenH)
	if err != nil {
		return 1
	}
	efd, err := p.OpenSurfaceEvents(false)
	if err != nil {
		return 1
	}
	// Event thread (clone, like SDL's input handling): updates shared key
	// state the render loop polls — threads over processes, §4.5.
	var keyState atomic32
	if _, err := p.SysClone("input", func(tp *kernel.Proc) {
		buf := make([]byte, wm.EventSize)
		for {
			if _, err := tp.SysRead(efd, buf); err != nil {
				return
			}
			if e, ok := wm.DecodeEvent(buf); ok {
				keyState.store(applyKey(keyState.load(), e))
			}
		}
	}); err != nil {
		return 1
	}
	frameBytes := 0
	code := emulate(p, cart, runConfig{
		blit: func(frame []byte) error {
			frameBytes = len(frame)
			_, err := p.SysWrite(sfd, frame)
			return err
		},
		pollKeys: func() byte { return keyState.load() },
	}, frameLimit(argv))
	_ = frameBytes
	return code
}

// applyKey folds an input event into controller state.
func applyKey(state byte, e wm.InputEvent) byte {
	var bit byte
	switch e.Code {
	case hw.UsageRight:
		bit = BtnRight
	case hw.UsageLeft:
		bit = BtnLeft
	case hw.UsageDown:
		bit = BtnDown
	case hw.UsageUp:
		bit = BtnUp
	case hw.UsageA:
		bit = BtnA
	case hw.UsageA + 1:
		bit = BtnB
	default:
		return state
	}
	if e.Down {
		return state | bit
	}
	return state &^ bit
}

// blitToFB centres the 256×240 frame on the framebuffer.
func blitToFB(fbmem []byte, pitch, fbw int, frame []byte) {
	offX := (fbw - ScreenW) / 2
	if offX < 0 {
		offX = 0
	}
	h := len(fbmem) / pitch
	offY := (h - ScreenH) / 2
	if offY < 0 {
		offY = 0
	}
	rows := ScreenH
	if rows > h {
		rows = h
	}
	cols := ScreenW
	if cols > fbw {
		cols = fbw
	}
	for y := 0; y < rows; y++ {
		dst := fbmem[(offY+y)*pitch+offX*4:]
		src := frame[y*ScreenW*4:]
		copy(dst[:cols*4], src[:cols*4])
	}
}

// atomic32 is a tiny atomic byte (avoids importing sync/atomic at use
// sites in a "user program").
type atomic32 struct{ v int32 }

func (a *atomic32) load() byte { return byte(loadInt32(&a.v)) }
func (a *atomic32) store(b byte) {
	storeInt32(&a.v, int32(b))
}

// FPS measures frames per second over n frames of headless emulation
// (benchmarks use it to isolate emulator cost from OS cost).
func FPS(cart *Cartridge, n int) float64 {
	console := NewConsole(cart)
	frame := make([]byte, ScreenW*ScreenH*4)
	start := time.Now()
	for i := 0; i < n; i++ {
		console.StepFrame()
		console.Render(frame, ScreenW*4)
	}
	return float64(n) / time.Since(start).Seconds()
}
