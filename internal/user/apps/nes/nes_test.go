package nes

import (
	"bytes"
	"testing"
)

// ramBus is a flat 64 KB bus for CPU unit tests.
type ramBus struct{ mem [65536]byte }

func (b *ramBus) Read(a uint16) byte     { return b.mem[a] }
func (b *ramBus) Write(a uint16, v byte) { b.mem[a] = v }

// loadProgram installs code at 0x8000 with the reset vector set.
func loadProgram(b *ramBus, code []byte) {
	copy(b.mem[0x8000:], code)
	b.mem[0xFFFC] = 0x00
	b.mem[0xFFFD] = 0x80
}

func runCPU(t *testing.T, code []byte, steps int) (*CPU, *ramBus) {
	t.Helper()
	b := &ramBus{}
	loadProgram(b, code)
	c := NewCPU(b)
	c.Reset()
	for i := 0; i < steps && !c.Halted(); i++ {
		c.Step()
	}
	return c, b
}

func TestCPULoadStore(t *testing.T) {
	c, b := runCPU(t, []byte{
		0xA9, 0x42, // LDA #$42
		0x85, 0x10, // STA $10
		0xA6, 0x10, // LDX $10
		0x8E, 0x00, 0x02, // STX $0200
	}, 4)
	if c.A != 0x42 || c.X != 0x42 || b.mem[0x10] != 0x42 || b.mem[0x200] != 0x42 {
		t.Fatalf("state: %v mem10=%02x mem200=%02x", c, b.mem[0x10], b.mem[0x200])
	}
}

func TestCPUArithmeticFlags(t *testing.T) {
	c, _ := runCPU(t, []byte{
		0xA9, 0x7F, // LDA #$7F
		0x18,       // CLC
		0x69, 0x01, // ADC #1 -> 0x80, overflow set
	}, 3)
	if c.A != 0x80 || !c.flag(flagV) || !c.flag(flagN) || c.flag(flagC) {
		t.Fatalf("A=%02x P=%02x", c.A, c.P)
	}
	c2, _ := runCPU(t, []byte{
		0xA9, 0x01,
		0x38,       // SEC
		0xE9, 0x01, // SBC #1 -> 0
	}, 3)
	if c2.A != 0 || !c2.flag(flagZ) || !c2.flag(flagC) {
		t.Fatalf("A=%02x P=%02x", c2.A, c2.P)
	}
}

func TestCPUBranchLoop(t *testing.T) {
	// Count X down from 5; loop with BNE.
	c, _ := runCPU(t, []byte{
		0xA2, 0x05, // LDX #5
		0xCA,       // DEX
		0xD0, 0xFD, // BNE -3
		0xA9, 0xAA, // LDA #$AA
	}, 20)
	if c.X != 0 || c.A != 0xAA {
		t.Fatalf("X=%d A=%02x", c.X, c.A)
	}
}

func TestCPUSubroutine(t *testing.T) {
	c, _ := runCPU(t, []byte{
		0x20, 0x08, 0x80, // JSR $8008
		0xA2, 0x55, // $8003: LDX #$55 (after return)
		0x4C, 0x05, 0x80, // $8005: JMP $8005 (spin)
		0xA9, 0x99, // $8008: LDA #$99
		0x60, // RTS
	}, 6)
	if c.A != 0x99 || c.X != 0x55 {
		t.Fatalf("A=%02x X=%02x", c.A, c.X)
	}
}

func TestCPUStack(t *testing.T) {
	c, _ := runCPU(t, []byte{
		0xA9, 0x11,
		0x48,       // PHA
		0xA9, 0x22, // LDA #$22
		0x68, // PLA -> 0x11
	}, 4)
	if c.A != 0x11 {
		t.Fatalf("A=%02x", c.A)
	}
}

func TestCPUShiftsAndLogic(t *testing.T) {
	c, _ := runCPU(t, []byte{
		0xA9, 0x81, // LDA #$81
		0x0A,       // ASL -> 0x02, C=1
		0x09, 0x40, // ORA #$40
		0x29, 0x42, // AND #$42
		0x49, 0x02, // EOR #$02 -> 0x40
	}, 5)
	if c.A != 0x40 || !c.flag(flagC) {
		t.Fatalf("A=%02x P=%02x", c.A, c.P)
	}
}

func TestCPUIndexedIndirect(t *testing.T) {
	b := &ramBus{}
	// Pointer at $24/$25 -> $0300; value 0x5A at $0300.
	b.mem[0x24] = 0x00
	b.mem[0x25] = 0x03
	b.mem[0x300] = 0x5A
	loadProgram(b, []byte{
		0xA2, 0x04, // LDX #4
		0xA1, 0x20, // LDA ($20,X) -> ($24)
	})
	c := NewCPU(b)
	c.Reset()
	c.Step()
	c.Step()
	if c.A != 0x5A {
		t.Fatalf("A=%02x", c.A)
	}
}

func TestCPUNMIAndRTI(t *testing.T) {
	b := &ramBus{}
	loadProgram(b, []byte{
		0xA9, 0x01, // reset: LDA #1
		0x4C, 0x02, 0x80, // JMP self
	})
	// NMI handler at $9000: LDX #$77; RTI.
	copy(b.mem[0x9000:], []byte{0xA2, 0x77, 0x40})
	b.mem[0xFFFA] = 0x00
	b.mem[0xFFFB] = 0x90
	c := NewCPU(b)
	c.Reset()
	c.Step()
	pcBefore := c.PC
	c.NMI()
	c.Step() // LDX
	c.Step() // RTI
	if c.X != 0x77 {
		t.Fatalf("X=%02x", c.X)
	}
	if c.PC != pcBefore {
		t.Fatalf("PC=%04x, want %04x after RTI", c.PC, pcBefore)
	}
}

func TestCPUHaltsOnUndocumented(t *testing.T) {
	c, _ := runCPU(t, []byte{0x02}, 3) // KIL
	if !c.Halted() {
		t.Fatal("undocumented opcode did not halt")
	}
}

func TestCartridgeSerializeLoad(t *testing.T) {
	cart, err := BuildMarioROM("mario", 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadCartridge(cart.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mario" || !bytes.Equal(got.PRG, cart.PRG) || !bytes.Equal(got.CHR, cart.CHR) {
		t.Fatal("cartridge round trip failed")
	}
	if _, err := LoadCartridge([]byte("NES\x1a old format")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMarioROMRunsAndAnimates(t *testing.T) {
	cart, err := BuildMarioROM("mario", 2)
	if err != nil {
		t.Fatal(err)
	}
	console := NewConsole(cart)
	f1 := make([]byte, ScreenW*ScreenH*4)
	f2 := make([]byte, ScreenW*ScreenH*4)
	for i := 0; i < 3; i++ {
		console.StepFrame()
	}
	console.Render(f1, ScreenW*4)
	for i := 0; i < 8; i++ {
		console.StepFrame()
	}
	console.Render(f2, ScreenW*4)
	if console.CPU.Halted() {
		t.Fatalf("ROM crashed: %v", console.CPU)
	}
	if bytes.Equal(f1, f2) {
		t.Fatal("no animation between frames (autoplay broken)")
	}
	// The frame must not be blank.
	blank := true
	for _, b := range f1 {
		if b != 0 && b != 0xFF {
			blank = false
			break
		}
	}
	if blank {
		t.Fatal("rendered frame is blank")
	}
}

func TestControllerMovesSprite(t *testing.T) {
	cart, _ := BuildMarioROM("mario", 1)
	console := NewConsole(cart)
	for i := 0; i < 2; i++ {
		console.StepFrame()
	}
	x0 := console.oam[3]
	console.Controller = BtnRight
	for i := 0; i < 8; i++ {
		console.StepFrame()
	}
	x1 := console.oam[3]
	if x1 <= x0 {
		t.Fatalf("sprite x %d -> %d; controller ignored", x0, x1)
	}
	// Releasing stops movement (minus the idle drift every 4 frames).
	console.Controller = 0
	start := console.oam[3]
	console.StepFrame()
	console.StepFrame()
	moved := int(console.oam[3]) - int(start)
	if moved > 2 {
		t.Fatalf("sprite keeps racing after release: +%d", moved)
	}
}

func TestRenderDrawsSprite(t *testing.T) {
	cart, _ := BuildMarioROM("mario", 1)
	console := NewConsole(cart)
	for i := 0; i < 3; i++ {
		console.StepFrame()
	}
	frame := make([]byte, ScreenW*ScreenH*4)
	console.Render(frame, ScreenW*4)
	sx := int(console.oam[3])
	sy := int(console.oam[0])
	// Center of the sprite should use a sprite palette colour (not the
	// checkerboard greys).
	o := ((sy+4)*ScreenW + sx + 4) * 4
	r, g, b := frame[o+2], frame[o+1], frame[o]
	grey := r == g && g == b
	if grey {
		t.Fatalf("sprite pixel (%d,%d) = grey %02x", sx+4, sy+4, r)
	}
}
