// Package donut renders the spinning 3D torus of a1k0n's donut.c — Proto's
// Prototype 1/2 flagship app — in both its textual form (UART output) and
// its pixel form (framebuffer), with per-instance rotation rates so
// Prototype 2's scheduler behaviour is visible on screen (§4.2).
package donut

import (
	"math"

	"protosim/internal/kernel"
)

// Text geometry.
const (
	TextW = 80
	TextH = 22
)

// State carries the rotation angles of one donut instance.
type State struct {
	A, B float64 // rotation angles
	// StepA/StepB set the spin rate — fast vs slow donuts (Lab 2 task 6).
	StepA, StepB float64
}

// NewState returns a donut with the classic spin rates scaled by rate.
func NewState(rate float64) *State {
	return &State{StepA: 0.07 * rate, StepB: 0.03 * rate}
}

// luminanceChars maps brightness to ASCII, exactly as donut.c does.
const luminanceChars = ".,-~:;=!*#$@"

// RenderText produces one frame of the textual donut.
func (s *State) RenderText() []byte {
	zbuf := make([]float64, TextW*TextH)
	out := make([]byte, TextW*TextH)
	for i := range out {
		out[i] = ' '
	}
	s.render(TextW, TextH, func(x, y int, z, lum float64) {
		idx := y*TextW + x
		if z > zbuf[idx] {
			zbuf[idx] = z
			li := int(lum * 8)
			if li < 0 {
				li = 0
			}
			if li >= len(luminanceChars) {
				li = len(luminanceChars) - 1
			}
			out[idx] = luminanceChars[li]
		}
	})
	s.A += s.StepA
	s.B += s.StepB
	return out
}

// RenderPixels draws a w×h pixel frame (XRGB) of the donut.
func (s *State) RenderPixels(dst []byte, w, h, stride int) {
	for i := 0; i < h; i++ {
		row := dst[i*stride : i*stride+w*4]
		for j := range row {
			row[j] = 0
		}
	}
	zbuf := make([]float64, w*h)
	s.render(w, h, func(x, y int, z, lum float64) {
		idx := y*w + x
		if z > zbuf[idx] {
			zbuf[idx] = z
			v := lum
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			o := y*stride + x*4
			dst[o] = byte(40 + 100*v)    // B
			dst[o+1] = byte(80 * v)      // G
			dst[o+2] = byte(155 + 100*v) // R: warm donut
			dst[o+3] = 0xFF
		}
	})
	s.A += s.StepA
	s.B += s.StepB
}

// render walks the torus surface and emits projected samples.
func (s *State) render(w, h int, plot func(x, y int, z, lum float64)) {
	sinA, cosA := math.Sin(s.A), math.Cos(s.A)
	sinB, cosB := math.Sin(s.B), math.Cos(s.B)
	scale := float64(h) * 15.0 / 22.0
	for theta := 0.0; theta < 2*math.Pi; theta += 0.07 {
		sinT, cosT := math.Sin(theta), math.Cos(theta)
		for phi := 0.0; phi < 2*math.Pi; phi += 0.02 {
			sinP, cosP := math.Sin(phi), math.Cos(phi)
			circX := cosT + 2 // torus radius 2, tube radius 1
			circY := sinT
			// 3D rotation.
			x := circX*(cosB*cosP+sinA*sinB*sinP) - circY*cosA*sinB
			y := circX*(sinB*cosP-sinA*cosB*sinP) + circY*cosA*cosB
			z := 5 + cosA*circX*sinP + circY*sinA
			ooz := 1 / z
			px := int(float64(w)/2 + scale*2*ooz*x)
			py := int(float64(h)/2 - scale*ooz*y)
			if px < 0 || px >= w || py < 0 || py >= h {
				continue
			}
			lum := cosP*cosT*sinB - cosA*cosT*sinP - sinA*sinT +
				cosB*(cosA*sinT-cosT*sinA*sinP)
			plot(px, py, ooz, (lum+1.4)/2.8)
		}
	}
}

// MainText is the textual donut app: frames to the console at ~30 FPS.
// argv: [name, maxFrames].
func MainText(p *kernel.Proc, argv []string) int {
	cfd, err := p.SysOpen("/dev/console", 1)
	if err != nil {
		return 1
	}
	s := NewState(1)
	max := frames(argv)
	for i := 0; max == 0 || i < max; i++ {
		frame := s.RenderText()
		var buf []byte
		buf = append(buf, "\x1b[H"...)
		for y := 0; y < TextH; y++ {
			buf = append(buf, frame[y*TextW:(y+1)*TextW]...)
			buf = append(buf, '\n')
		}
		if _, err := p.SysWrite(cfd, buf); err != nil {
			return 1
		}
		p.SysSleep(33)
	}
	return 0
}

// MainPixel is the framebuffer donut. argv: [name, maxFrames, rate].
func MainPixel(p *kernel.Proc, argv []string) int {
	fbmem, err := p.MapFramebuffer()
	if err != nil {
		return 1
	}
	fb := p.Kernel().FB
	rate := 1.0
	if len(argv) >= 3 && argv[2] == "fast" {
		rate = 2.5
	}
	s := NewState(rate)
	max := frames(argv)
	for i := 0; max == 0 || i < max; i++ {
		s.RenderPixels(fbmem, fb.Width(), fb.Height(), fb.Pitch())
		if err := p.SysCacheFlush(0, fb.Size()); err != nil {
			return 1
		}
		p.SysSleep(16)
	}
	return 0
}

func frames(argv []string) int {
	if len(argv) < 2 {
		return 0
	}
	n := 0
	for _, ch := range argv[1] {
		if ch < '0' || ch > '9' {
			return 0
		}
		n = n*10 + int(ch-'0')
	}
	return n
}
