// Package ulib is Proto's user-space support library — the newlib
// substitute of Table 1's "User lib" rows: a malloc built on sbrk(), string
// and formatting helpers, wrappers over the file syscalls, and the
// proc/devfs convenience readers that sysmon and the shell use.
//
// Everything here talks to the kernel exclusively through the 28 syscalls
// on *kernel.Proc; nothing reaches into kernel internals.
package ulib

import (
	"fmt"
	"strings"

	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/mm"
	"protosim/internal/kernel/uring"
)

// Alloc is the user allocator: a first-fit free list over memory obtained
// from sbrk(), like xv6's umalloc. One per process (apps create it in
// main).
type Alloc struct {
	p    *kernel.Proc
	free []span // sorted, coalesced spans of user VA
	used map[uint64]int
}

type span struct {
	va uint64
	n  int
}

// NewAlloc returns an empty allocator for the process.
func NewAlloc(p *kernel.Proc) *Alloc {
	return &Alloc{p: p, used: make(map[uint64]int)}
}

const allocAlign = 16

// Malloc returns the user VA of an n-byte region.
func (a *Alloc) Malloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("ulib: malloc(%d)", n)
	}
	n = (n + allocAlign - 1) &^ (allocAlign - 1)
	for i, s := range a.free {
		if s.n < n {
			continue
		}
		va := s.va
		if s.n == n {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = span{s.va + uint64(n), s.n - n}
		}
		a.used[va] = n
		return va, nil
	}
	// Grow the heap: at least one page, rounded up.
	grow := (n + mm.PageSize - 1) &^ (mm.PageSize - 1)
	old, err := a.p.SysSbrk(grow)
	if err != nil {
		return 0, err
	}
	a.insertFree(span{old, grow})
	return a.Malloc(n)
}

// Free returns a region to the free list.
func (a *Alloc) Free(va uint64) {
	n, ok := a.used[va]
	if !ok {
		panic(fmt.Sprintf("ulib: free of unallocated %#x", va))
	}
	delete(a.used, va)
	a.insertFree(span{va, n})
}

func (a *Alloc) insertFree(s span) {
	i := 0
	for i < len(a.free) && a.free[i].va < s.va {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce around i.
	out := a.free[:0]
	for _, cur := range a.free {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.va+uint64(last.n) == cur.va {
				last.n += cur.n
				continue
			}
		}
		out = append(out, cur)
	}
	a.free = out
}

// InUse reports allocated bytes.
func (a *Alloc) InUse() int {
	total := 0
	for _, n := range a.used {
		total += n
	}
	return total
}

// Store writes data at a malloc'd VA through the page tables.
func (a *Alloc) Store(va uint64, data []byte) error {
	return a.p.AddressSpace().WriteAt(va, data)
}

// Load reads back from user memory.
func (a *Alloc) Load(va uint64, data []byte) error {
	return a.p.AddressSpace().ReadAt(va, data)
}

// --- File helpers (the libc-os layer) ---

// ReadFile slurps a whole file via open/read/close.
func ReadFile(p *kernel.Proc, path string) ([]byte, error) {
	fd, err := p.SysOpen(path, fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer p.SysClose(fd)
	st, err := p.SysFstat(fd)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, st.Size)
	buf := make([]byte, 64*1024)
	for {
		n, err := p.SysRead(fd, buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// PreadFull reads exactly len(buf) bytes at off via pread — no seek, no
// shared-offset traffic, so concurrent readers of one descriptor (or a
// fork-shared one) never disturb each other.
func PreadFull(p *kernel.Proc, fd int, buf []byte, off int64) error {
	for done := 0; done < len(buf); {
		n, err := p.SysPread(fd, buf[done:], off+int64(done))
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("ulib: short pread: %d of %d at %d", done, len(buf), off)
		}
		done += n
	}
	return nil
}

// PwriteFull writes all of buf at off via pwrite, leaving the shared
// offset untouched.
func PwriteFull(p *kernel.Proc, fd int, buf []byte, off int64) error {
	for done := 0; done < len(buf); {
		n, err := p.SysPwrite(fd, buf[done:], off+int64(done))
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("ulib: short pwrite: %d of %d at %d", done, len(buf), off)
		}
		done += n
	}
	return nil
}

// WriteFile creates/truncates path with data.
func WriteFile(p *kernel.Proc, path string, data []byte) error {
	fd, err := p.SysOpen(path, fs.OCreate|fs.OWrOnly|fs.OTrunc)
	if err != nil {
		return err
	}
	defer p.SysClose(fd)
	for len(data) > 0 {
		n, err := p.SysWrite(fd, data)
		if err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// AppendFile appends data to path.
func AppendFile(p *kernel.Proc, path string, data []byte) error {
	fd, err := p.SysOpen(path, fs.OCreate|fs.OWrOnly|fs.OAppend)
	if err != nil {
		return err
	}
	defer p.SysClose(fd)
	_, err = p.SysWrite(fd, data)
	return err
}

// Printf formats to an open descriptor (the console, usually).
func Printf(p *kernel.Proc, fd int, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	p.SysWrite(fd, []byte(s))
}

// OpenConsole opens /dev/console read-write.
func OpenConsole(p *kernel.Proc) (int, error) {
	return p.SysOpen("/dev/console", fs.ORdWr)
}

// --- Ring helpers (batched IO over SysRingSetup/SysRingEnter) ---

// RingBatch pushes sqes through the process ring and returns one CQE per
// SQE, in completion order (correlate with SQE.User, not position). It
// stages entries with Queue — draining with a SysRingEnter whenever the
// staging queue fills — then enters once more until every completion has
// been reaped. A full batch that fits the staging queue costs exactly one
// syscall; per-op errors ride inside the CQEs, so err is only transport
// failures (no ring, ring closed).
func RingBatch(p *kernel.Proc, r *uring.Ring, sqes []uring.SQE) ([]uring.CQE, error) {
	out := make([]uring.CQE, 0, len(sqes))
	reap := func() {
		for {
			cqe, ok := r.Reap()
			if !ok {
				return
			}
			out = append(out, cqe)
		}
	}
	staged := 0
	for _, e := range sqes {
		for {
			err := r.Queue(e)
			if err == nil {
				staged++
				break
			}
			if err != uring.ErrSQFull || staged == 0 {
				return out, err
			}
			// Staging queue full: hand the partial batch off and reap what
			// has already completed to free CQ slots for admission.
			if _, err := p.SysRingEnter(staged, 1); err != nil {
				return out, err
			}
			staged = 0
			reap()
		}
	}
	// Final drain: submit the tail and keep entering until every CQE for
	// this batch has been reaped (earlier partial drains already counted
	// toward out).
	for len(out) < len(sqes) {
		want := len(sqes) - len(out)
		if _, err := p.SysRingEnter(staged, want); err != nil {
			return out, err
		}
		staged = 0
		reap()
	}
	return out, nil
}

// --- proc/devfs wrappers (Table 1's "proc/devfs wrappers" row) ---

// ProcRead returns the content of /proc/<name>.
func ProcRead(p *kernel.Proc, name string) (string, error) {
	b, err := ReadFile(p, "/proc/"+name)
	return string(b), err
}

// ProcValue extracts "key: value" from a proc file's content.
func ProcValue(content, key string) (string, bool) {
	for _, line := range strings.Split(content, "\n") {
		if rest, ok := strings.CutPrefix(line, key+":"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// CPUInfo summarizes /proc/cpuinfo: core count and per-core utilization %.
func CPUInfo(p *kernel.Proc) (cores int, utilPct []int, err error) {
	content, err := ProcRead(p, "cpuinfo")
	if err != nil {
		return 0, nil, err
	}
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(line, "processor:") {
			cores++
		}
		if rest, ok := strings.CutPrefix(line, "util_pct:"); ok {
			v := 0
			fmt.Sscanf(strings.TrimSpace(rest), "%d", &v)
			utilPct = append(utilPct, v)
		}
	}
	return cores, utilPct, nil
}

// MemInfo summarizes /proc/meminfo: total and free kB.
func MemInfo(p *kernel.Proc) (totalKB, freeKB int, err error) {
	content, err := ProcRead(p, "meminfo")
	if err != nil {
		return 0, 0, err
	}
	if v, ok := ProcValue(content, "MemTotal"); ok {
		fmt.Sscanf(v, "%d kB", &totalKB)
	}
	if v, ok := ProcValue(content, "MemFree"); ok {
		fmt.Sscanf(v, "%d kB", &freeKB)
	}
	return totalKB, freeKB, nil
}
