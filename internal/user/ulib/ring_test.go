package ulib

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/uring"
	"protosim/internal/kernel/xv6fs"
)

// bootRingKernel boots a minimal files-enabled kernel for the ring
// helper tests.
func bootRingKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.Cores = 2
	cfg.MemBytes = 32 << 20
	cfg.SDBlocks = 8192
	m := hw.NewMachine(cfg)
	m.SD.SetLatencyScale(0)
	rd, err := xv6fs.BuildImage(2048, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{
		Machine:      m,
		Mode:         kernel.ModeProto,
		EnableFiles:  true,
		RamdiskImage: rd.Image(),
		TickInterval: 2 * time.Millisecond,
	})
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := k.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return k
}

func runProc(t *testing.T, k *kernel.Kernel, fn func(p *kernel.Proc) int) {
	t.Helper()
	code := make(chan int, 1)
	k.Spawn("ringbatch", 0, func(p *kernel.Proc, _ []string) int {
		c := fn(p)
		code <- c
		return c
	}, nil)
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit = %d", c)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("process never finished")
	}
}

// TestRingBatchHelper drives ulib.RingBatch through both of its paths: a
// batch that fits the staging queue (one syscall) and one larger than
// the ring, which forces the helper's partial-drain refill loop.
func TestRingBatchHelper(t *testing.T) {
	k := bootRingKernel(t)
	runProc(t, k, func(p *kernel.Proc) int {
		r, err := p.SysRingSetup(8)
		if err != nil {
			return 1
		}
		fd, err := p.SysOpen("/batch.dat", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 2
		}
		// 24 SQEs through an 8-entry ring: RingBatch must drain and refill.
		const n = 24
		sqes := make([]uring.SQE, 0, n)
		for i := 0; i < n; i++ {
			sqes = append(sqes, uring.SQE{
				Op: uring.OpPwrite, FD: fd, Off: int64(i * 4),
				Buf: []byte(fmt.Sprintf("<%02d>", i)), User: uint64(i),
			})
		}
		cqes, err := RingBatch(p, r, sqes)
		if err != nil || len(cqes) != n {
			return 3
		}
		seen := make(map[uint64]bool, n)
		for _, c := range cqes {
			if c.Err != nil || c.Res != 4 || seen[c.User] {
				return 4
			}
			seen[c.User] = true
		}
		// One mixed read-back batch that fits: exactly one syscall.
		buf := make([]byte, 4*n)
		reads := make([]uring.SQE, 0, 8)
		for i := 0; i < 8; i++ {
			reads = append(reads, uring.SQE{
				Op: uring.OpPread, FD: fd, Off: int64(i * 4),
				Buf: buf[i*4 : i*4+4], User: uint64(100 + i),
			})
		}
		before := p.Kernel().SyscallCount()
		cqes, err = RingBatch(p, r, reads)
		if delta := p.Kernel().SyscallCount() - before; err != nil || len(cqes) != 8 || delta != 1 {
			return 5
		}
		if !bytes.Equal(buf[:32], []byte("<00><01><02><03><04><05><06><07>")) {
			return 6
		}
		return 0
	})
}
