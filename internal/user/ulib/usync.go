package ulib

import (
	"sync/atomic"

	"protosim/internal/kernel"
	"protosim/internal/kernel/wm"
)

// Mutex is a user-level mutex built on the semaphore syscalls, exactly as
// Prototype 5's user library does (§4.5).
type Mutex struct {
	p   *kernel.Proc
	sem int
}

// NewMutex allocates a mutex (semaphore with count 1).
func NewMutex(p *kernel.Proc) (*Mutex, error) {
	id, err := p.SysSemCreate(1)
	if err != nil {
		return nil, err
	}
	return &Mutex{p: p, sem: id}, nil
}

// Lock acquires; callers pass their own proc (threads share the group's
// semaphore table).
func (m *Mutex) Lock(p *kernel.Proc) { p.SysSemWait(m.sem) }

// Unlock releases.
func (m *Mutex) Unlock(p *kernel.Proc) { p.SysSemPost(m.sem) }

// Cond is a user-level condition variable over semaphores: a wait counter
// guarded by the associated mutex plus a signal semaphore.
type Cond struct {
	p       *kernel.Proc
	sem     int
	waiters atomic.Int32
}

// NewCond allocates a condition variable.
func NewCond(p *kernel.Proc) (*Cond, error) {
	id, err := p.SysSemCreate(0)
	if err != nil {
		return nil, err
	}
	return &Cond{p: p, sem: id}, nil
}

// Wait atomically releases m and blocks until a Signal/Broadcast, then
// reacquires m. The usual lost-wakeup caveats are handled by the counter.
func (c *Cond) Wait(p *kernel.Proc, m *Mutex) {
	c.waiters.Add(1)
	m.Unlock(p)
	p.SysSemWait(c.sem)
	m.Lock(p)
}

// Signal wakes one waiter.
func (c *Cond) Signal(p *kernel.Proc) {
	if c.waiters.Load() > 0 {
		c.waiters.Add(-1)
		p.SysSemPost(c.sem)
	}
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(p *kernel.Proc) {
	for c.waiters.Load() > 0 {
		c.waiters.Add(-1)
		p.SysSemPost(c.sem)
	}
}

// SpinLock is the user-level spinlock of §4.5: a CAS loop with a
// checkpoint in the spin so a single core can still make progress.
type SpinLock struct {
	held atomic.Bool
}

// Lock spins until acquired.
func (s *SpinLock) Lock(p *kernel.Proc) {
	for !s.held.CompareAndSwap(false, true) {
		p.SysYield()
	}
}

// Unlock releases.
func (s *SpinLock) Unlock() { s.held.Store(false) }

// ReadEvent reads one input event record from an event descriptor
// (/dev/events or the surface event stream).
func ReadEvent(p *kernel.Proc, fd int) (wm.InputEvent, error) {
	buf := make([]byte, wm.EventSize)
	if _, err := p.SysRead(fd, buf); err != nil {
		return wm.InputEvent{}, err
	}
	e, _ := wm.DecodeEvent(buf)
	return e, nil
}
