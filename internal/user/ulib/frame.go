package ulib

import (
	"encoding/binary"
	"errors"
	"io"

	"protosim/internal/kernel"
)

// Length-prefixed frame codec: every frame on a stream is a 4-byte
// big-endian payload length followed by the payload. Stream sockets (and
// pipes) preserve bytes, not message boundaries — a 300-byte frame may
// arrive as 7 reads, or three frames may arrive in one — so the decoder
// reassembles frames from arbitrary fragmentation.

// FrameHdrSize is the length prefix size.
const FrameHdrSize = 4

// MaxFrame bounds a single frame's payload; a peer announcing more is
// corrupt (or hostile) and the stream is unrecoverable, since the only
// framing is the lengths themselves.
const MaxFrame = 1 << 20

// Frame codec errors.
var (
	// ErrFrameTooBig: a length prefix exceeded MaxFrame.
	ErrFrameTooBig = errors.New("ulib: frame exceeds MaxFrame")
	// ErrTruncatedFrame: the stream ended mid-frame.
	ErrTruncatedFrame = errors.New("ulib: stream ended mid-frame")
)

// EncodeFrame renders payload as one wire frame.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, FrameHdrSize+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[FrameHdrSize:], payload)
	return out
}

// WriteFrame writes one frame to fd, looping over short writes.
func WriteFrame(p *kernel.Proc, fd int, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	buf := EncodeFrame(payload)
	for len(buf) > 0 {
		n, err := p.SysWrite(fd, buf)
		if err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// FrameDecoder reassembles frames from a fragmented byte stream. Feed
// bytes in as they arrive; Next returns completed frames. The zero value
// is ready to use.
type FrameDecoder struct {
	buf []byte
}

// Feed appends received bytes to the reassembly buffer.
func (d *FrameDecoder) Feed(p []byte) {
	d.buf = append(d.buf, p...)
}

// Next returns the next complete frame's payload, or (nil, nil) when the
// buffered bytes don't yet complete one. The returned slice is the
// caller's to keep. ErrFrameTooBig poisons the stream: framing is lost.
func (d *FrameDecoder) Next() ([]byte, error) {
	if len(d.buf) < FrameHdrSize {
		return nil, nil
	}
	n := int(binary.BigEndian.Uint32(d.buf))
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	if len(d.buf) < FrameHdrSize+n {
		return nil, nil
	}
	payload := make([]byte, n)
	copy(payload, d.buf[FrameHdrSize:FrameHdrSize+n])
	// Shift the remainder down; the buffer is reused for the next frame.
	rest := copy(d.buf, d.buf[FrameHdrSize+n:])
	d.buf = d.buf[:rest]
	return payload, nil
}

// Pending reports whether a partial frame sits in the buffer — an EOF
// here is a truncation, not a clean end of stream.
func (d *FrameDecoder) Pending() bool { return len(d.buf) > 0 }

// FrameReader reads whole frames from a descriptor, reassembling across
// arbitrarily fragmented reads.
type FrameReader struct {
	p   *kernel.Proc
	fd  int
	d   FrameDecoder
	buf []byte
}

// NewFrameReader wraps fd for frame-at-a-time reads.
func NewFrameReader(p *kernel.Proc, fd int) *FrameReader {
	return &FrameReader{p: p, fd: fd, buf: make([]byte, 4096)}
}

// Next returns the next frame's payload. A clean EOF on a frame boundary
// is io.EOF; an EOF mid-frame is ErrTruncatedFrame.
func (r *FrameReader) Next() ([]byte, error) {
	for {
		if f, err := r.d.Next(); f != nil || err != nil {
			return f, err
		}
		n, err := r.p.SysRead(r.fd, r.buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			if r.d.Pending() {
				return nil, ErrTruncatedFrame
			}
			return nil, io.EOF
		}
		r.d.Feed(r.buf[:n])
	}
}
