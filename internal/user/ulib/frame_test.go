package ulib

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestFrameDecoderPathologicalFragmentation(t *testing.T) {
	// Frames of awkward sizes, concatenated, then fed to the decoder in
	// every fragmentation pattern a stream can produce: byte-at-a-time,
	// prime-sized chunks, random splits, and all-at-once.
	var frames [][]byte
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 255, 256, 257, 4096, 70000} {
		f := make([]byte, n)
		rng.Read(f)
		frames = append(frames, f)
	}
	var wire []byte
	for _, f := range frames {
		wire = append(wire, EncodeFrame(f)...)
	}

	feedPatterns := map[string]func(d *FrameDecoder, deliver func()){
		"byte-at-a-time": func(d *FrameDecoder, deliver func()) {
			for i := range wire {
				d.Feed(wire[i : i+1])
				deliver()
			}
		},
		"prime-chunks": func(d *FrameDecoder, deliver func()) {
			for i := 0; i < len(wire); i += 7 {
				end := i + 7
				if end > len(wire) {
					end = len(wire)
				}
				d.Feed(wire[i:end])
				deliver()
			}
		},
		"random-chunks": func(d *FrameDecoder, deliver func()) {
			r := rand.New(rand.NewSource(2))
			for i := 0; i < len(wire); {
				n := 1 + r.Intn(9000)
				if i+n > len(wire) {
					n = len(wire) - i
				}
				d.Feed(wire[i : i+n])
				i += n
				deliver()
			}
		},
		"all-at-once": func(d *FrameDecoder, deliver func()) {
			d.Feed(wire)
			deliver()
		},
	}

	for name, feed := range feedPatterns {
		t.Run(name, func(t *testing.T) {
			var d FrameDecoder
			var got [][]byte
			deliver := func() {
				for {
					f, err := d.Next()
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					if f == nil {
						return
					}
					got = append(got, f)
				}
			}
			feed(&d, deliver)
			if len(got) != len(frames) {
				t.Fatalf("got %d frames, want %d", len(got), len(frames))
			}
			for i := range frames {
				if !bytes.Equal(got[i], frames[i]) {
					t.Fatalf("frame %d mismatch (%d vs %d bytes)", i, len(got[i]), len(frames[i]))
				}
			}
			if d.Pending() {
				t.Fatal("decoder holds leftover bytes after a clean stream")
			}
		})
	}
}

func TestFrameDecoderZeroLengthFramesBackToBack(t *testing.T) {
	var d FrameDecoder
	for i := 0; i < 3; i++ {
		d.Feed(EncodeFrame(nil))
	}
	count := 0
	for {
		f, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			break
		}
		if len(f) != 0 {
			t.Fatalf("zero frame came back %d bytes", len(f))
		}
		count++
	}
	if count != 3 {
		t.Fatalf("decoded %d zero frames, want 3", count)
	}
}

func TestFrameDecoderRejectsOversizedFrame(t *testing.T) {
	var hdr [FrameHdrSize]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var d FrameDecoder
	d.Feed(hdr[:])
	if _, err := d.Next(); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized prefix: %v, want ErrFrameTooBig", err)
	}
}

func TestFrameDecoderPendingDetectsTruncation(t *testing.T) {
	var d FrameDecoder
	full := EncodeFrame([]byte("cut short"))
	d.Feed(full[:len(full)-2])
	if f, err := d.Next(); f != nil || err != nil {
		t.Fatalf("partial frame decoded: %v %v", f, err)
	}
	if !d.Pending() {
		t.Fatal("Pending() false with a partial frame buffered")
	}
}

func ExampleEncodeFrame() {
	f := EncodeFrame([]byte("hi"))
	fmt.Println(len(f), f[3], string(f[4:]))
	// Output: 6 2 hi
}
