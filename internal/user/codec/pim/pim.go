// Package pim is the PNG substitute for slider's "high res PNGs"
// (Table 1 note 4): a lossless image codec with PNG's architecture —
// per-row predictive filtering (none/sub/up/average, chosen per row by
// heuristic) followed by DEFLATE entropy coding (compress/flate). Files
// round-trip exactly; compression on synthetic slides is PNG-class.
package pim

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"protosim/internal/user/codec/bmpimg"
)

// Magic identifies a PIM file.
const Magic = "PIM1"

// ErrBadPIM reports a malformed file.
var ErrBadPIM = errors.New("pim: bad image")

// Row filter types (PNG's, minus Paeth).
const (
	filterNone byte = iota
	filterSub
	filterUp
	filterAvg
	numFilters
)

// Encode compresses an RGBA image.
func Encode(im *bmpimg.Image) ([]byte, error) {
	const bpp = 4
	stride := im.W * bpp
	raw := make([]byte, 0, (stride+1)*im.H)
	prev := make([]byte, stride) // zero row above the first
	scratch := make([]byte, stride)
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*stride : (y+1)*stride]
		best, bestScore := filterNone, int(^uint(0)>>1)
		var bestData []byte
		for f := filterNone; f < numFilters; f++ {
			applyFilter(f, row, prev, scratch, bpp)
			score := 0
			for _, b := range scratch {
				v := int(int8(b))
				if v < 0 {
					v = -v
				}
				score += v
			}
			if score < bestScore {
				bestScore = score
				best = f
				bestData = append(bestData[:0], scratch...)
			}
		}
		raw = append(raw, best)
		raw = append(raw, bestData...)
		prev = append(prev[:0], row...)
	}
	var compressed bytes.Buffer
	zw, err := flate.NewWriter(&compressed, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 12+compressed.Len())
	out = append(out, Magic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(im.W))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(im.H))
	out = append(out, hdr[:]...)
	return append(out, compressed.Bytes()...), nil
}

// applyFilter computes dst = filter(row) given the previous row.
func applyFilter(f byte, row, prev, dst []byte, bpp int) {
	switch f {
	case filterNone:
		copy(dst, row)
	case filterSub:
		for i := range row {
			left := byte(0)
			if i >= bpp {
				left = row[i-bpp]
			}
			dst[i] = row[i] - left
		}
	case filterUp:
		for i := range row {
			dst[i] = row[i] - prev[i]
		}
	case filterAvg:
		for i := range row {
			left := 0
			if i >= bpp {
				left = int(row[i-bpp])
			}
			dst[i] = row[i] - byte((left+int(prev[i]))/2)
		}
	}
}

// unfilter inverts applyFilter in place.
func unfilter(f byte, row, prev []byte, bpp int) error {
	switch f {
	case filterNone:
	case filterSub:
		for i := range row {
			left := byte(0)
			if i >= bpp {
				left = row[i-bpp]
			}
			row[i] += left
		}
	case filterUp:
		for i := range row {
			row[i] += prev[i]
		}
	case filterAvg:
		for i := range row {
			left := 0
			if i >= bpp {
				left = int(row[i-bpp])
			}
			row[i] += byte((left + int(prev[i])) / 2)
		}
	default:
		return fmt.Errorf("%w: filter %d", ErrBadPIM, f)
	}
	return nil
}

// Decode parses a PIM file.
func Decode(data []byte) (*bmpimg.Image, error) {
	if len(data) < 12 || string(data[0:4]) != Magic {
		return nil, ErrBadPIM
	}
	w := int(binary.LittleEndian.Uint32(data[4:]))
	h := int(binary.LittleEndian.Uint32(data[8:]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadPIM, w, h)
	}
	zr := flate.NewReader(bytes.NewReader(data[12:]))
	defer zr.Close()
	const bpp = 4
	stride := w * bpp
	raw := make([]byte, (stride+1)*h)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPIM, err)
	}
	im := bmpimg.NewImage(w, h)
	prev := make([]byte, stride)
	for y := 0; y < h; y++ {
		f := raw[y*(stride+1)]
		row := raw[y*(stride+1)+1 : (y+1)*(stride+1)]
		if err := unfilter(f, row, prev, bpp); err != nil {
			return nil, err
		}
		copy(im.Pix[y*stride:], row)
		prev = row
	}
	return im, nil
}
