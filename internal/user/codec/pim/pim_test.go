package pim

import (
	"bytes"
	"testing"
	"testing/quick"

	"protosim/internal/user/codec/bmpimg"
)

func TestRoundTripExact(t *testing.T) {
	im := bmpimg.Gradient(97, 41, 0x3C) // odd sizes
	data, err := Encode(im)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != im.W || dec.H != im.H || !bytes.Equal(dec.Pix, im.Pix) {
		t.Fatal("lossless round trip failed")
	}
}

func TestCompressesSmoothContent(t *testing.T) {
	im := bmpimg.Gradient(256, 256, 0)
	data, err := Encode(im)
	if err != nil {
		t.Fatal(err)
	}
	raw := len(im.Pix)
	if len(data) > raw/3 {
		t.Fatalf("compressed %d of %d raw bytes; filtering+deflate should do much better on a gradient", len(data), raw)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("JPEG")); err == nil {
		t.Fatal("garbage accepted")
	}
	im := bmpimg.Gradient(16, 16, 1)
	data, _ := Encode(im)
	if _, err := Decode(data[:20]); err == nil {
		t.Fatal("truncated accepted")
	}
	// Oversized dimensions rejected.
	bad := append([]byte(nil), data...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Decode(bad); err == nil {
		t.Fatal("absurd dimensions accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(w8, h8 uint8, pix []byte) bool {
		w := int(w8)%24 + 1
		h := int(h8)%24 + 1
		im := bmpimg.NewImage(w, h)
		for i := 0; i < len(im.Pix) && i < len(pix); i++ {
			im.Pix[i] = pix[i]
		}
		// Alpha is carried exactly too (unlike BMP).
		data, err := Encode(im)
		if err != nil {
			return false
		}
		dec, err := Decode(data)
		return err == nil && bytes.Equal(dec.Pix, im.Pix)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
