package pogg

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeLengthAndRate(t *testing.T) {
	pcm := Tone(10000, 22050)
	stream := Encode(pcm, 22050)
	got, rate, err := DecodeAll(stream)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 22050 {
		t.Fatalf("rate = %d", rate)
	}
	if len(got) != len(pcm) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(pcm))
	}
}

func TestCodecQuality(t *testing.T) {
	pcm := Tone(22050, 22050)
	got, _, err := DecodeAll(Encode(pcm, 22050))
	if err != nil {
		t.Fatal(err)
	}
	if snr := SNR(pcm, got); snr < 20 {
		t.Fatalf("SNR = %.1f dB; ADPCM should exceed 20 dB on tonal content", snr)
	}
}

func TestCompressionRatio(t *testing.T) {
	pcm := Tone(44100, 22050)
	stream := Encode(pcm, 22050)
	raw := len(pcm) * 2
	if len(stream) > raw/3 {
		t.Fatalf("stream %d bytes vs %d raw; expected ~4:1", len(stream), raw)
	}
}

func TestStreamingBlockDecode(t *testing.T) {
	pcm := Tone(3*BlockSamples+100, 22050)
	d, err := NewDecoder(Encode(pcm, 22050))
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	total := 0
	for {
		b := d.NextBlock()
		if b == nil {
			break
		}
		blocks++
		total += len(b)
	}
	if blocks != 4 {
		t.Fatalf("blocks = %d, want 4", blocks)
	}
	if total != len(pcm) {
		t.Fatalf("total = %d, want %d (final block must trim)", total, len(pcm))
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewDecoder([]byte("OGGS")); err == nil {
		t.Fatal("garbage accepted")
	}
	stream := Encode(Tone(2048, 22050), 22050)
	if _, err := NewDecoder(stream[:20]); err == nil {
		t.Fatal("truncated accepted")
	}
}

// Property: decoding never produces more blocks than the header promises
// and always reproduces the sample count, for arbitrary content.
func TestRoundTripProperty(t *testing.T) {
	check := func(raw []byte) bool {
		pcm := make([]int16, len(raw))
		for i, b := range raw {
			pcm[i] = int16(int(b)-128) * 200
		}
		got, _, err := DecodeAll(Encode(pcm, 8000))
		return err == nil && len(got) == len(pcm)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
