// Package pogg is the libvorbis substitute: a "POG" perceptual audio
// format built on real IMA-ADPCM compression (4 bits per sample, 4:1 over
// 16-bit PCM) with a block structure so playback can stream block by block
// — the access pattern MusicPlayer needs to keep the DMA pipeline fed
// (§4.4).
package pogg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic identifies a POG stream.
const Magic = "POG1"

// BlockSamples is the number of samples per ADPCM block.
const BlockSamples = 1024

// ErrBadPOG reports a malformed stream.
var ErrBadPOG = errors.New("pogg: bad stream")

// imaIndexTable and imaStepTable are the standard IMA ADPCM tables.
var imaIndexTable = [16]int{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var imaStepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// Encode compresses 16-bit mono PCM at rate Hz into a POG stream.
func Encode(samples []int16, rate int) []byte {
	nblocks := (len(samples) + BlockSamples - 1) / BlockSamples
	out := make([]byte, 0, 16+nblocks*(4+BlockSamples/2))
	out = append(out, Magic...)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(rate))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(samples)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(nblocks))
	out = append(out, hdr[:]...)

	predictor, index := 0, 0
	for b := 0; b < nblocks; b++ {
		// Block header: predictor (int16) + index (byte) + pad.
		var bh [4]byte
		binary.LittleEndian.PutUint16(bh[0:], uint16(int16(predictor)))
		bh[2] = byte(index)
		out = append(out, bh[:]...)
		var nibbles []byte
		for s := 0; s < BlockSamples; s++ {
			i := b*BlockSamples + s
			var sample int
			if i < len(samples) {
				sample = int(samples[i])
			}
			step := imaStepTable[index]
			diff := sample - predictor
			var code int
			if diff < 0 {
				code = 8
				diff = -diff
			}
			if diff >= step {
				code |= 4
				diff -= step
			}
			if diff >= step/2 {
				code |= 2
				diff -= step / 2
			}
			if diff >= step/4 {
				code |= 1
			}
			predictor = decodeStep(predictor, index, code)
			index = clampIndex(index + imaIndexTable[code])
			nibbles = append(nibbles, byte(code))
		}
		for i := 0; i < len(nibbles); i += 2 {
			out = append(out, nibbles[i]|nibbles[i+1]<<4)
		}
	}
	return out
}

func decodeStep(predictor, index, code int) int {
	step := imaStepTable[index]
	diff := step >> 3
	if code&4 != 0 {
		diff += step
	}
	if code&2 != 0 {
		diff += step >> 1
	}
	if code&1 != 0 {
		diff += step >> 2
	}
	if code&8 != 0 {
		predictor -= diff
	} else {
		predictor += diff
	}
	if predictor > 32767 {
		predictor = 32767
	}
	if predictor < -32768 {
		predictor = -32768
	}
	return predictor
}

func clampIndex(i int) int {
	if i < 0 {
		return 0
	}
	if i > 88 {
		return 88
	}
	return i
}

// Decoder streams a POG file block by block.
type Decoder struct {
	data    []byte
	Rate    int
	Total   int // total samples
	nblocks int
	next    int // next block index
	decoded int
}

// NewDecoder validates the header.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < 16 || string(data[0:4]) != Magic {
		return nil, ErrBadPOG
	}
	d := &Decoder{
		data:    data,
		Rate:    int(binary.LittleEndian.Uint32(data[4:])),
		Total:   int(binary.LittleEndian.Uint32(data[8:])),
		nblocks: int(binary.LittleEndian.Uint32(data[12:])),
	}
	if d.Rate <= 0 || d.nblocks < 0 {
		return nil, fmt.Errorf("%w: rate=%d blocks=%d", ErrBadPOG, d.Rate, d.nblocks)
	}
	blockBytes := 4 + BlockSamples/2
	if 16+d.nblocks*blockBytes > len(data) {
		return nil, fmt.Errorf("%w: truncated", ErrBadPOG)
	}
	return d, nil
}

// NextBlock decodes one block of samples; nil when the stream ends.
func (d *Decoder) NextBlock() []int16 {
	if d.next >= d.nblocks {
		return nil
	}
	blockBytes := 4 + BlockSamples/2
	off := 16 + d.next*blockBytes
	d.next++
	predictor := int(int16(binary.LittleEndian.Uint16(d.data[off:])))
	index := clampIndex(int(d.data[off+2]))
	out := make([]int16, 0, BlockSamples)
	packed := d.data[off+4 : off+blockBytes]
	for _, pb := range packed {
		for _, code := range [2]int{int(pb & 0xF), int(pb >> 4)} {
			predictor = decodeStep(predictor, index, code)
			index = clampIndex(index + imaIndexTable[code])
			out = append(out, int16(predictor))
		}
	}
	// Trim the final partial block.
	remain := d.Total - d.decoded
	if remain < len(out) {
		out = out[:remain]
	}
	d.decoded += len(out)
	return out
}

// DecodeAll is a convenience for tests.
func DecodeAll(data []byte) ([]int16, int, error) {
	d, err := NewDecoder(data)
	if err != nil {
		return nil, 0, err
	}
	var all []int16
	for {
		b := d.NextBlock()
		if b == nil {
			return all, d.Rate, nil
		}
		all = append(all, b...)
	}
}

// Tone synthesizes a test melody: n samples of layered sine waves (the
// "music" shipped on the SD card in examples and benchmarks).
func Tone(n, rate int) []int16 {
	out := make([]int16, n)
	for i := range out {
		t := float64(i) / float64(rate)
		v := 0.5*math.Sin(2*math.Pi*220*t) +
			0.3*math.Sin(2*math.Pi*277.18*t) +
			0.2*math.Sin(2*math.Pi*329.63*t)
		// A slow envelope so it sounds like notes, not a drone.
		env := 0.5 + 0.5*math.Sin(2*math.Pi*t/2)
		out[i] = int16(v * env * 12000)
	}
	return out
}

// SNR computes the signal-to-noise ratio in dB between reference and
// decoded audio (codec quality tests).
func SNR(ref, got []int16) float64 {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	var sig, noise float64
	for i := 0; i < n; i++ {
		s := float64(ref[i])
		d := float64(ref[i]) - float64(got[i])
		sig += s * s
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}
