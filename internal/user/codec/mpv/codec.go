package mpv

import (
	"encoding/binary"
	"fmt"
)

// Frame type markers.
const (
	frameI = 'I'
	frameP = 'P'
	// blockSkip marks an unchanged P-frame block (one byte, no payload).
	blockSkip = 0xFE
	blockCode = 0xFD
)

// Encoder compresses frames into an MPV1 stream.
type Encoder struct {
	W, H    int
	FPS     int
	Quality int32 // 1 (best) .. 31 (worst), like MPEG's qscale

	frames int
	prev   *Frame // reconstructed reference
	buf    []byte
}

// NewEncoder starts a stream; dimensions must be multiples of 16.
func NewEncoder(w, h, fps int, quality int32) (*Encoder, error) {
	if w%16 != 0 || h%16 != 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("mpv: dimensions %dx%d not multiples of 16", w, h)
	}
	if quality < 1 {
		quality = 1
	}
	if quality > 31 {
		quality = 31
	}
	e := &Encoder{W: w, H: h, FPS: fps, Quality: quality}
	e.buf = append(e.buf, Magic...)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(w))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(h))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(fps))
	// Frame count (hdr[12:16]) backpatched by Close.
	binary.LittleEndian.PutUint32(hdr[16:], uint32(quality))
	e.buf = append(e.buf, hdr[:]...)
	return e, nil
}

// planeSpec describes one plane's geometry for the block loops.
type planeSpec struct {
	data   []byte
	ref    []byte
	stride int
	bh, bw int // blocks
}

func (e *Encoder) planes(f, ref *Frame) []planeSpec {
	var r1, r2, r3 []byte
	if ref != nil {
		r1, r2, r3 = ref.Y, ref.U, ref.V
	}
	return []planeSpec{
		{f.Y, r1, e.W, e.H / 8, e.W / 8},
		{f.U, r2, e.W / 2, e.H / 16, e.W / 16},
		{f.V, r3, e.W / 2, e.H / 16, e.W / 16},
	}
}

// AddFrame encodes one frame (I every GOP frames, P otherwise).
func (e *Encoder) AddFrame(f *Frame) error {
	if f.W != e.W || f.H != e.H {
		return fmt.Errorf("mpv: frame %dx%d in %dx%d stream", f.W, f.H, e.W, e.H)
	}
	intra := e.frames%GOP == 0 || e.prev == nil
	if intra {
		e.buf = append(e.buf, frameI)
	} else {
		e.buf = append(e.buf, frameP)
	}
	recon := NewFrame(e.W, e.H)
	reconPlanes := e.planes(recon, nil)
	var ref *Frame
	if !intra {
		ref = e.prev
	}
	for pi, pl := range e.planes(f, ref) {
		var coeffs, spatial [64]int32
		for by := 0; by < pl.bh; by++ {
			for bx := 0; bx < pl.bw; bx++ {
				if !intra {
					// P block: residual against the reference.
					if blockUnchanged(pl.data, pl.ref, pl.stride, bx, by) {
						e.buf = append(e.buf, blockSkip)
						copyBlock(reconPlanes[pi].data, pl.ref, pl.stride, bx, by)
						continue
					}
					diffBlock(pl.data, pl.ref, pl.stride, bx, by, &spatial)
				} else {
					getBlock(pl.data, pl.stride, bx, by, &spatial, 128)
				}
				fdct8(&spatial, &coeffs)
				quantize(&coeffs, e.Quality)
				e.buf = append(e.buf, blockCode)
				e.buf = encodeBlock(&coeffs, e.buf)
				// Reconstruct exactly as the decoder will, so P frames
				// predict from decoded (not source) pixels.
				dequantize(&coeffs, e.Quality)
				idct8(&coeffs, &spatial)
				if intra {
					putBlock(reconPlanes[pi].data, pl.stride, bx, by, &spatial, 128)
				} else {
					addBlock(reconPlanes[pi].data, pl.ref, pl.stride, bx, by, &spatial)
				}
			}
		}
	}
	e.prev = recon
	e.frames++
	return nil
}

// Close finalizes and returns the stream.
func (e *Encoder) Close() []byte {
	out := append(e.buf, 0) // end marker (no more frames)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(e.frames))
	copy(out[16:], cnt[:])
	return out
}

func blockUnchanged(cur, ref []byte, stride, bx, by int) bool {
	var sad int
	for y := 0; y < 8; y++ {
		row := (by*8 + y) * stride
		for x := 0; x < 8; x++ {
			d := int(cur[row+bx*8+x]) - int(ref[row+bx*8+x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad < 48 // tolerance: tiny noise still skips
}

func copyBlock(dst, src []byte, stride, bx, by int) {
	for y := 0; y < 8; y++ {
		row := (by*8 + y) * stride
		copy(dst[row+bx*8:row+bx*8+8], src[row+bx*8:row+bx*8+8])
	}
}

func diffBlock(cur, ref []byte, stride, bx, by int, out *[64]int32) {
	for y := 0; y < 8; y++ {
		row := (by*8 + y) * stride
		for x := 0; x < 8; x++ {
			out[y*8+x] = int32(cur[row+bx*8+x]) - int32(ref[row+bx*8+x])
		}
	}
}

func addBlock(dst, ref []byte, stride, bx, by int, res *[64]int32) {
	for y := 0; y < 8; y++ {
		row := (by*8 + y) * stride
		for x := 0; x < 8; x++ {
			v := int32(ref[row+bx*8+x]) + res[y*8+x]
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			dst[row+bx*8+x] = byte(v)
		}
	}
}

// Decoder streams frames out of an MPV1 buffer.
type Decoder struct {
	W, H, FPS int
	Frames    int
	Quality   int32

	data []byte
	pos  int
	prev *Frame
	out  int
}

// NewDecoder validates the header (quality travels in the stream).
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < 24 || string(data[0:4]) != Magic {
		return nil, ErrBadMPV
	}
	d := &Decoder{
		W:       int(binary.LittleEndian.Uint32(data[4:])),
		H:       int(binary.LittleEndian.Uint32(data[8:])),
		FPS:     int(binary.LittleEndian.Uint32(data[12:])),
		Frames:  int(binary.LittleEndian.Uint32(data[16:])),
		Quality: int32(binary.LittleEndian.Uint32(data[20:])),
		data:    data,
		pos:     24,
	}
	if d.W%16 != 0 || d.H%16 != 0 || d.W <= 0 || d.H <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadMPV, d.W, d.H)
	}
	if d.Quality < 1 || d.Quality > 31 {
		return nil, fmt.Errorf("%w: quality %d", ErrBadMPV, d.Quality)
	}
	return d, nil
}

// NextFrame decodes and returns the next frame (nil at end of stream).
func (d *Decoder) NextFrame() (*Frame, error) {
	if d.pos >= len(d.data) || d.data[d.pos] == 0 || d.out >= d.Frames {
		return nil, nil
	}
	ftype := d.data[d.pos]
	d.pos++
	if ftype != frameI && ftype != frameP {
		return nil, fmt.Errorf("%w: frame type %#x", ErrBadMPV, ftype)
	}
	intra := ftype == frameI
	if !intra && d.prev == nil {
		return nil, fmt.Errorf("%w: P frame before any I frame", ErrBadMPV)
	}
	f := NewFrame(d.W, d.H)
	planes := []planeSpec{
		{f.Y, nil, d.W, d.H / 8, d.W / 8},
		{f.U, nil, d.W / 2, d.H / 16, d.W / 16},
		{f.V, nil, d.W / 2, d.H / 16, d.W / 16},
	}
	var refs [3][]byte
	if d.prev != nil {
		refs = [3][]byte{d.prev.Y, d.prev.U, d.prev.V}
	}
	var coeffs, spatial [64]int32
	for pi, pl := range planes {
		for by := 0; by < pl.bh; by++ {
			for bx := 0; bx < pl.bw; bx++ {
				if d.pos >= len(d.data) {
					return nil, fmt.Errorf("%w: truncated frame", ErrBadMPV)
				}
				marker := d.data[d.pos]
				d.pos++
				switch marker {
				case blockSkip:
					if intra {
						return nil, fmt.Errorf("%w: skip block in I frame", ErrBadMPV)
					}
					copyBlock(pl.data, refs[pi], pl.stride, bx, by)
				case blockCode:
					n, err := decodeBlock(d.data[d.pos:], &coeffs)
					if err != nil {
						return nil, err
					}
					d.pos += n
					dequantize(&coeffs, d.Quality)
					idct8(&coeffs, &spatial)
					if intra {
						putBlock(pl.data, pl.stride, bx, by, &spatial, 128)
					} else {
						addBlock(pl.data, refs[pi], pl.stride, bx, by, &spatial)
					}
				default:
					return nil, fmt.Errorf("%w: block marker %#x", ErrBadMPV, marker)
				}
			}
		}
	}
	d.prev = f
	d.out++
	return f, nil
}
