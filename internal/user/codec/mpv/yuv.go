package mpv

// YUV <-> RGB conversion. FastYUVToXRGB is the fixed-point path standing in
// for Proto's ARMv8 SIMD pixel conversion (§5.2, "improve video playback
// framerate by nearly 3x"); SlowYUVToXRGB is the naive floating-point
// per-pixel version it replaced. Benchmarks compare them.

// clamp8 saturates to a byte.
func clamp8(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// FastYUVToXRGB converts a 4:2:0 frame into XRGB8888 using BT.601
// fixed-point coefficients, two rows at a time to reuse chroma — the
// SIMD-substitute fast path.
func FastYUVToXRGB(f *Frame, dst []byte, stride int) {
	w, h := f.W, f.H
	cw := w / 2
	for y := 0; y < h; y += 2 {
		crow := (y / 2) * cw
		for row := 0; row < 2; row++ {
			yy := y + row
			yrow := yy * w
			drow := yy * stride
			for x := 0; x < w; x++ {
				cy := int32(f.Y[yrow+x]) - 16
				cu := int32(f.U[crow+x/2]) - 128
				cv := int32(f.V[crow+x/2]) - 128
				y298 := 298 * cy
				r := (y298 + 409*cv + 128) >> 8
				g := (y298 - 100*cu - 208*cv + 128) >> 8
				b := (y298 + 516*cu + 128) >> 8
				o := drow + x*4
				dst[o] = clamp8(b)
				dst[o+1] = clamp8(g)
				dst[o+2] = clamp8(r)
				dst[o+3] = 0xFF
			}
		}
	}
}

// SlowYUVToXRGB is the unoptimized float path (per-pixel chroma lookup,
// float math, function-call conversion) that the paper's user library
// replaced.
func SlowYUVToXRGB(f *Frame, dst []byte, stride int) {
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := slowPixel(f, x, y)
			o := y*stride + x*4
			dst[o] = b
			dst[o+1] = g
			dst[o+2] = r
			dst[o+3] = 0xFF
		}
	}
}

func slowPixel(f *Frame, x, y int) (r, g, b byte) {
	cy := float64(f.Y[y*f.W+x]) - 16
	cu := float64(f.U[(y/2)*(f.W/2)+x/2]) - 128
	cv := float64(f.V[(y/2)*(f.W/2)+x/2]) - 128
	rf := 1.164*cy + 1.596*cv
	gf := 1.164*cy - 0.392*cu - 0.813*cv
	bf := 1.164*cy + 2.017*cu
	return clampF(rf), clampF(gf), clampF(bf)
}

func clampF(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// RGBToYUV fills a frame from XRGB pixels (the encoder-side conversion for
// synthesizing test content).
func RGBToYUV(dst *Frame, src []byte, stride int) {
	w, h := dst.W, dst.H
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			o := y*stride + x*4
			b := int32(src[o])
			g := int32(src[o+1])
			r := int32(src[o+2])
			yy := (66*r + 129*g + 25*b + 128) >> 8
			dst.Y[y*w+x] = clamp8(yy + 16)
		}
	}
	cw, ch := w/2, h/2
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			// Average the 2x2 quad.
			var rs, gs, bs int32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					o := (cy*2+dy)*stride + (cx*2+dx)*4
					bs += int32(src[o])
					gs += int32(src[o+1])
					rs += int32(src[o+2])
				}
			}
			r, g, b := rs/4, gs/4, bs/4
			u := (-38*r - 74*g + 112*b + 128) >> 8
			v := (112*r - 94*g - 18*b + 128) >> 8
			dst.U[cy*cw+cx] = clamp8(u + 128)
			dst.V[cy*cw+cx] = clamp8(v + 128)
		}
	}
}

// SynthesizeClip produces an n-frame test video (moving gradient ball over
// a static background — mixes skip blocks, P residuals and I refreshes).
func SynthesizeClip(w, h, frames, fps int, quality int32) ([]byte, error) {
	enc, err := NewEncoder(w, h, fps, quality)
	if err != nil {
		return nil, err
	}
	rgb := make([]byte, w*h*4)
	f := NewFrame(w, h)
	for n := 0; n < frames; n++ {
		renderTestFrame(rgb, w, h, n)
		RGBToYUV(f, rgb, w*4)
		if err := enc.AddFrame(f); err != nil {
			return nil, err
		}
	}
	return enc.Close(), nil
}

// renderTestFrame draws frame n of the synthetic clip.
func renderTestFrame(dst []byte, w, h, n int) {
	// Static background gradient.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			o := (y*w + x) * 4
			dst[o] = byte(x * 255 / w)
			dst[o+1] = byte(y * 255 / h)
			dst[o+2] = 0x30
			dst[o+3] = 0xFF
		}
	}
	// Moving ball.
	bx := (n * 7) % w
	by := (n * 5) % h
	r := h / 6
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy > r*r {
				continue
			}
			x, y := bx+dx, by+dy
			if x < 0 || y < 0 || x >= w || y >= h {
				continue
			}
			o := (y*w + x) * 4
			dst[o] = 0x20
			dst[o+1] = 0x80
			dst[o+2] = 0xF0
		}
	}
}
