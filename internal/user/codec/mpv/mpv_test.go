package mpv

import (
	"testing"
	"testing/quick"
)

func TestDCTRoundTrip(t *testing.T) {
	var in, freq, back [64]int32
	for i := range in {
		in[i] = int32((i*37)%255 - 128)
	}
	fdct8(&in, &freq)
	idct8(&freq, &back)
	for i := range in {
		d := in[i] - back[i]
		if d < -2 || d > 2 {
			t.Fatalf("coefficient %d: %d -> %d", i, in[i], back[i])
		}
	}
}

func TestDCTRoundTripProperty(t *testing.T) {
	check := func(raw [64]uint8) bool {
		var in, freq, back [64]int32
		for i := range in {
			in[i] = int32(raw[i]) - 128
		}
		fdct8(&in, &freq)
		idct8(&freq, &back)
		for i := range in {
			d := in[i] - back[i]
			if d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyBlockRoundTrip(t *testing.T) {
	var c [64]int32
	c[0] = 100
	c[1] = -3
	c[9] = 7
	c[63] = 1
	encoded := encodeBlock(&c, nil)
	var got [64]int32
	n, err := decodeBlock(encoded, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(encoded) {
		t.Fatalf("consumed %d of %d", n, len(encoded))
	}
	if got != c {
		t.Fatalf("round trip: %v != %v", got, c)
	}
}

func TestEntropyBlockProperty(t *testing.T) {
	check := func(vals [64]int8) bool {
		var c [64]int32
		for i, v := range vals {
			if v%3 == 0 { // keep it sparse, like real coefficients
				c[i] = int32(v)
			}
		}
		encoded := encodeBlock(&c, nil)
		var got [64]int32
		_, err := decodeBlock(encoded, &got)
		return err == nil && got == c
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeClip(t *testing.T) {
	stream, err := SynthesizeClip(64, 48, 25, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 64 || d.H != 48 || d.FPS != 30 || d.Frames != 25 {
		t.Fatalf("header = %dx%d@%d x%d", d.W, d.H, d.FPS, d.Frames)
	}
	frames := 0
	for {
		f, err := d.NextFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		if f == nil {
			break
		}
		frames++
	}
	if frames != 25 {
		t.Fatalf("decoded %d frames", frames)
	}
}

func TestDecodedQuality(t *testing.T) {
	// Encode one frame and compare PSNR-ish: mean abs error per pixel must
	// be small at high quality.
	w, h := 64, 48
	rgb := make([]byte, w*h*4)
	renderTestFrame(rgb, w, h, 3)
	src := NewFrame(w, h)
	RGBToYUV(src, rgb, w*4)
	enc, _ := NewEncoder(w, h, 30, 2)
	enc.AddFrame(src)
	d, _ := NewDecoder(enc.Close())
	got, err := d.NextFrame()
	if err != nil || got == nil {
		t.Fatal(err)
	}
	var sum, n int
	for i := range src.Y {
		diff := int(src.Y[i]) - int(got.Y[i])
		if diff < 0 {
			diff = -diff
		}
		sum += diff
		n++
	}
	if mae := float64(sum) / float64(n); mae > 6 {
		t.Fatalf("mean abs luma error = %.1f", mae)
	}
}

func TestPFramesCompress(t *testing.T) {
	// Mostly-static content: P frames must be much smaller than I frames.
	w, h := 64, 48
	iOnly, _ := NewEncoder(w, h, 30, 4)
	withP, _ := NewEncoder(w, h, 30, 4)
	rgb := make([]byte, w*h*4)
	f := NewFrame(w, h)
	for n := 0; n < GOP; n++ {
		renderTestFrame(rgb, w, h, 0) // static scene
		RGBToYUV(f, rgb, w*4)
		withP.AddFrame(f)
		// iOnly gets a fresh encoder-forced I each time via GOP reset:
		single, _ := NewEncoder(w, h, 30, 4)
		single.AddFrame(f)
		iOnly.buf = append(iOnly.buf, single.Close()[24:]...)
	}
	if len(withP.Close()) >= len(iOnly.buf) {
		t.Fatalf("P-frame stream %d >= I-only %d", len(withP.buf), len(iOnly.buf))
	}
}

func TestFastAndSlowYUVAgree(t *testing.T) {
	w, h := 32, 32
	rgb := make([]byte, w*h*4)
	renderTestFrame(rgb, w, h, 5)
	f := NewFrame(w, h)
	RGBToYUV(f, rgb, w*4)
	fast := make([]byte, w*h*4)
	slow := make([]byte, w*h*4)
	FastYUVToXRGB(f, fast, w*4)
	SlowYUVToXRGB(f, slow, w*4)
	for i := range fast {
		d := int(fast[i]) - int(slow[i])
		if d < -3 || d > 3 {
			t.Fatalf("byte %d: fast=%d slow=%d", i, fast[i], slow[i])
		}
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewDecoder([]byte("AVI?xxxxxxxxxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("garbage accepted")
	}
	stream, _ := SynthesizeClip(32, 32, 3, 30, 4)
	// Corrupt a frame marker.
	stream[24] = 'X'
	d, err := NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NextFrame(); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}
