// Package mpv is the MPEG-1 substitute: the "MPV1" block video codec.
// It is a real transform codec with the same pipeline shape as MPEG-1 —
// YUV 4:2:0 planes, 8×8 integer DCT, frequency-weighted quantization,
// zigzag scan, run-length + varint entropy coding, intra (I) frames and
// predicted (P) frames with block-skip — so VideoPlayer's CPU profile
// (decode dominating, conversion second, §7.3) is reproduced faithfully.
package mpv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies an MPV1 stream.
const Magic = "MPV1"

// Block is the transform size.
const Block = 8

// GOP is the I-frame interval.
const GOP = 12

// ErrBadMPV reports a malformed stream.
var ErrBadMPV = errors.New("mpv: bad stream")

// Frame is one decoded picture in planar YUV 4:2:0.
type Frame struct {
	W, H int
	Y    []byte // W*H
	U, V []byte // (W/2)*(H/2)
}

// NewFrame allocates a frame (dimensions must be multiples of 16).
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Y: make([]byte, w*h), U: make([]byte, w*h/4), V: make([]byte, w*h/4)}
}

// zigzag is the standard 8x8 scan order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// quant is a frequency-weighted quantization table (rough luminance
// weighting; chroma reuses it).
var quant = [64]int32{
	8, 6, 6, 8, 12, 20, 26, 31,
	6, 6, 7, 10, 13, 29, 30, 28,
	7, 7, 8, 12, 20, 29, 35, 28,
	7, 9, 11, 15, 26, 44, 40, 31,
	9, 11, 19, 28, 34, 55, 52, 39,
	12, 18, 28, 32, 41, 52, 57, 46,
	25, 32, 39, 44, 52, 61, 60, 51,
	36, 46, 48, 49, 56, 50, 52, 50,
}

// basis[k][n] = α(k)·cos((2n+1)kπ/16), the orthonormal DCT-II basis, so
// idct is the exact transpose of fdct and round-trip error is bounded by
// quantization alone.
var basis [8][8]float64

func init() {
	for k := 0; k < 8; k++ {
		alpha := 0.3535533905932738 // sqrt(1/8)
		if k > 0 {
			alpha = 0.5 // sqrt(2/8)
		}
		for n := 0; n < 8; n++ {
			basis[k][n] = alpha * cosf(float64(2*n+1)*float64(k)*piOver16)
		}
	}
}

// fdct8 is a separable orthonormal DCT-II over an 8x8 block (values
// centred on zero).
func fdct8(in *[64]int32, out *[64]int32) {
	var tmp [64]float64
	for r := 0; r < 8; r++ {
		for k := 0; k < 8; k++ {
			var sum float64
			for n := 0; n < 8; n++ {
				sum += float64(in[r*8+n]) * basis[k][n]
			}
			tmp[r*8+k] = sum
		}
	}
	for c := 0; c < 8; c++ {
		for k := 0; k < 8; k++ {
			var sum float64
			for n := 0; n < 8; n++ {
				sum += tmp[n*8+c] * basis[k][n]
			}
			out[k*8+c] = int32(roundf(sum))
		}
	}
}

// idct8 inverts fdct8 (transpose of the orthonormal basis).
func idct8(in *[64]int32, out *[64]int32) {
	var tmp [64]float64
	for c := 0; c < 8; c++ {
		for n := 0; n < 8; n++ {
			var sum float64
			for k := 0; k < 8; k++ {
				sum += float64(in[k*8+c]) * basis[k][n]
			}
			tmp[n*8+c] = sum
		}
	}
	for r := 0; r < 8; r++ {
		for n := 0; n < 8; n++ {
			var sum float64
			for k := 0; k < 8; k++ {
				sum += tmp[r*8+k] * basis[k][n]
			}
			out[r*8+n] = int32(roundf(sum))
		}
	}
}

func roundf(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return float64(int64(x - 0.5))
}

const piOver16 = 0.19634954084936207

// cosf is a small Taylor-series cosine good to ~1e-7 on [0, 2π).
func cosf(x float64) float64 {
	const twoPi = 6.283185307179586
	for x >= twoPi {
		x -= twoPi
	}
	for x < 0 {
		x += twoPi
	}
	term := 1.0
	sum := 1.0
	x2 := x * x
	for i := 1; i <= 10; i++ {
		term *= -x2 / float64((2*i-1)*(2*i))
		sum += term
	}
	return sum
}

// --- Entropy coding: zigzag RLE of quantized coefficients ---

// encodeBlock appends the entropy-coded block: (run, level) pairs with
// varint levels, terminated by 0x00.
func encodeBlock(coeffs *[64]int32, out []byte) []byte {
	run := 0
	for _, zz := range zigzag {
		v := coeffs[zz]
		if v == 0 {
			run++
			continue
		}
		for run > 62 {
			out = append(out, 0x3F) // long-run escape
			run -= 62
		}
		out = append(out, byte(run+1)) // 1..63: run of zeros then level
		out = binary.AppendVarint(out, int64(v))
		run = 0
	}
	return append(out, 0x00)
}

// decodeBlock reads one entropy-coded block.
func decodeBlock(data []byte, coeffs *[64]int32) (int, error) {
	*coeffs = [64]int32{}
	pos := 0
	idx := 0
	for {
		if pos >= len(data) {
			return 0, fmt.Errorf("%w: truncated block", ErrBadMPV)
		}
		tok := data[pos]
		pos++
		if tok == 0x00 {
			return pos, nil
		}
		if tok == 0x3F {
			idx += 62
			continue
		}
		idx += int(tok) - 1
		if idx >= 64 {
			return 0, fmt.Errorf("%w: coefficient index %d", ErrBadMPV, idx)
		}
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint", ErrBadMPV)
		}
		pos += n
		coeffs[zigzag[idx]] = int32(v)
		idx++
	}
}

// --- Plane block helpers ---

func getBlock(plane []byte, stride, bx, by int, out *[64]int32, center int32) {
	for y := 0; y < 8; y++ {
		row := (by*8 + y) * stride
		for x := 0; x < 8; x++ {
			out[y*8+x] = int32(plane[row+bx*8+x]) - center
		}
	}
}

func putBlock(plane []byte, stride, bx, by int, in *[64]int32, center int32) {
	for y := 0; y < 8; y++ {
		row := (by*8 + y) * stride
		for x := 0; x < 8; x++ {
			v := in[y*8+x] + center
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			plane[row+bx*8+x] = byte(v)
		}
	}
}

func quantize(c *[64]int32, q int32) {
	for i := range c {
		c[i] = c[i] / (quant[i] * q / 8)
	}
}

func dequantize(c *[64]int32, q int32) {
	for i := range c {
		c[i] = c[i] * (quant[i] * q / 8)
	}
}
