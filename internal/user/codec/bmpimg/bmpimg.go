// Package bmpimg encodes and decodes 24-bit uncompressed BMP images — the
// LODE substitute for slider's slides and MusicPlayer's album covers.
// The implementation is a real BI_RGB BMP writer/reader (bottom-up rows,
// 4-byte row padding, BGR byte order) so files interoperate with desktop
// tools through the FAT32 partition, as the paper intends (§3).
package bmpimg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Image is a simple RGBA image (A is carried but BMP drops it).
type Image struct {
	W, H int
	Pix  []byte // RGBA, row-major, top-down
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h*4)}
}

// Set writes a pixel.
func (im *Image) Set(x, y int, r, g, b byte) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	o := (y*im.W + x) * 4
	im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3] = r, g, b, 0xFF
}

// At reads a pixel.
func (im *Image) At(x, y int) (r, g, b byte) {
	o := (y*im.W + x) * 4
	return im.Pix[o], im.Pix[o+1], im.Pix[o+2]
}

// ToXRGB converts to the framebuffer's XRGB8888 layout.
func (im *Image) ToXRGB() []byte {
	out := make([]byte, im.W*im.H*4)
	for i := 0; i < im.W*im.H; i++ {
		out[i*4] = im.Pix[i*4+2]   // B
		out[i*4+1] = im.Pix[i*4+1] // G
		out[i*4+2] = im.Pix[i*4]   // R
		out[i*4+3] = 0xFF
	}
	return out
}

// ErrBadBMP reports a malformed file.
var ErrBadBMP = errors.New("bmpimg: not a 24-bit BMP")

const (
	fileHeaderSize = 14
	infoHeaderSize = 40
)

// Encode writes the image as a 24-bit BMP.
func Encode(im *Image) []byte {
	rowSize := (im.W*3 + 3) &^ 3
	dataSize := rowSize * im.H
	total := fileHeaderSize + infoHeaderSize + dataSize
	out := make([]byte, total)
	out[0], out[1] = 'B', 'M'
	binary.LittleEndian.PutUint32(out[2:], uint32(total))
	binary.LittleEndian.PutUint32(out[10:], fileHeaderSize+infoHeaderSize)
	ih := out[fileHeaderSize:]
	binary.LittleEndian.PutUint32(ih[0:], infoHeaderSize)
	binary.LittleEndian.PutUint32(ih[4:], uint32(im.W))
	binary.LittleEndian.PutUint32(ih[8:], uint32(im.H))
	binary.LittleEndian.PutUint16(ih[12:], 1)
	binary.LittleEndian.PutUint16(ih[14:], 24)
	binary.LittleEndian.PutUint32(ih[20:], uint32(dataSize))
	data := out[fileHeaderSize+infoHeaderSize:]
	for y := 0; y < im.H; y++ {
		src := im.Pix[(im.H-1-y)*im.W*4:] // bottom-up
		row := data[y*rowSize:]
		for x := 0; x < im.W; x++ {
			row[x*3] = src[x*4+2]   // B
			row[x*3+1] = src[x*4+1] // G
			row[x*3+2] = src[x*4]   // R
		}
	}
	return out
}

// Decode parses a 24-bit BMP.
func Decode(b []byte) (*Image, error) {
	if len(b) < fileHeaderSize+infoHeaderSize || b[0] != 'B' || b[1] != 'M' {
		return nil, ErrBadBMP
	}
	dataOff := int(binary.LittleEndian.Uint32(b[10:]))
	ih := b[fileHeaderSize:]
	w := int(int32(binary.LittleEndian.Uint32(ih[4:])))
	h := int(int32(binary.LittleEndian.Uint32(ih[8:])))
	bpp := int(binary.LittleEndian.Uint16(ih[14:]))
	compression := binary.LittleEndian.Uint32(ih[16:])
	if bpp != 24 || compression != 0 {
		return nil, fmt.Errorf("%w: bpp=%d compression=%d", ErrBadBMP, bpp, compression)
	}
	topDown := false
	if h < 0 {
		h, topDown = -h, true
	}
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadBMP, w, h)
	}
	rowSize := (w*3 + 3) &^ 3
	if dataOff+rowSize*h > len(b) {
		return nil, fmt.Errorf("%w: truncated pixel data", ErrBadBMP)
	}
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		srcY := h - 1 - y
		if topDown {
			srcY = y
		}
		row := b[dataOff+srcY*rowSize:]
		for x := 0; x < w; x++ {
			im.Set(x, y, row[x*3+2], row[x*3+1], row[x*3])
		}
	}
	return im, nil
}

// Gradient renders a test-card image (slide and album-art generator for
// examples and benchmarks).
func Gradient(w, h int, seed byte) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, byte(x*255/w), byte(y*255/h), seed^byte((x+y)/2))
		}
	}
	return im
}
