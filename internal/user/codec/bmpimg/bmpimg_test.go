package bmpimg

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := Gradient(33, 17, 0x5A) // odd width exercises row padding
	dec, err := Decode(Encode(im))
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 33 || dec.H != 17 {
		t.Fatalf("size = %dx%d", dec.W, dec.H)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r0, g0, b0 := im.At(x, y)
			r1, g1, b1 := dec.At(x, y)
			if r0 != r1 || g0 != g1 || b0 != b1 {
				t.Fatalf("pixel (%d,%d): (%d,%d,%d) != (%d,%d,%d)", x, y, r0, g0, b0, r1, g1, b1)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("PNG? nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	im := Gradient(8, 8, 1)
	b := Encode(im)
	if _, err := Decode(b[:40]); err == nil {
		t.Fatal("truncated accepted")
	}
	// 32bpp rejected.
	b2 := Encode(im)
	b2[14+14] = 32
	if _, err := Decode(b2); err == nil {
		t.Fatal("32bpp accepted")
	}
}

func TestToXRGB(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, 0x11, 0x22, 0x33)
	x := im.ToXRGB()
	if x[0] != 0x33 || x[1] != 0x22 || x[2] != 0x11 || x[3] != 0xFF {
		t.Fatalf("xrgb = % x", x[:4])
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(w8, h8 uint8, seed byte) bool {
		w := int(w8)%40 + 1
		h := int(h8)%40 + 1
		im := Gradient(w, h, seed)
		dec, err := Decode(Encode(im))
		if err != nil || dec.W != w || dec.H != h {
			return false
		}
		for i := range im.Pix {
			if i%4 == 3 {
				continue // alpha not carried
			}
			if im.Pix[i] != dec.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
