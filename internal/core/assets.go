package core

import (
	"protosim/internal/user/codec/bmpimg"
	"protosim/internal/user/codec/mpv"
	"protosim/internal/user/codec/pim"
	"protosim/internal/user/codec/pogg"
)

// poggTone encodes n samples of the synth melody.
func poggTone(n int) []byte {
	return pogg.Encode(pogg.Tone(n, 22050), 22050)
}

// coverArt renders the album cover BMP.
func coverArt() []byte {
	return bmpimg.Encode(bmpimg.Gradient(160, 160, 0x99))
}

// photo renders one slide.
func photo(w, h int, seed byte) []byte {
	if w < 8 {
		w = 8
	}
	if h < 8 {
		h = 8
	}
	return bmpimg.Encode(bmpimg.Gradient(w, h, seed))
}

// photoPIM renders one high-res slide in the PNG-substitute format.
func photoPIM(w, h int, seed byte) ([]byte, error) {
	if w < 8 {
		w = 8
	}
	if h < 8 {
		h = 8
	}
	return pim.Encode(bmpimg.Gradient(w, h, seed))
}

// synthClip encodes the synthetic test video.
func synthClip(w, h, frames int) ([]byte, error) {
	return mpv.SynthesizeClip(w, h, frames, 30, 6)
}
