package core

import (
	"fmt"
	"io"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/xv6fs"
	"protosim/internal/uelf"
	"protosim/internal/user/apps/blockchain"
	"protosim/internal/user/apps/chanserv"
	"protosim/internal/user/apps/donut"
	"protosim/internal/user/apps/doomlike"
	"protosim/internal/user/apps/launcher"
	"protosim/internal/user/apps/media"
	"protosim/internal/user/apps/nes"
	"protosim/internal/user/apps/shell"
	"protosim/internal/user/apps/sysmon"
	"protosim/internal/user/apps/wordsmith"
)

// Options configures NewSystem.
type Options struct {
	Prototype Prototype
	Cores     int         // default: 1 for prototypes 1–4, 4 for 5
	Mode      kernel.Mode // baseline selection for Fig 9
	MemBytes  int         // default 64 MB
	FBWidth   int
	FBHeight  int

	// AssetScale shrinks the generated SD-card assets: 1 = paper-like
	// (multi-MB WAD, 480p clip), 0 or larger divisors = smaller/faster.
	AssetScale int

	// CacheShards and CacheBuffers size the sharded buffer cache both
	// filesystems mount over (0 = bcache defaults). More shards cut lock
	// contention under multicore IO; more buffers keep a bigger working
	// set — DOOM's WAD, the FAT — out of the SD card's latency path.
	CacheShards  int
	CacheBuffers int

	// QueueDepth bounds in-flight commands in each block device's IO
	// request queue (0 = blkq default; negative disables the queues —
	// the synchronous baseline).
	QueueDepth int

	// WritebackRatio is the dirty-buffer percentage that wakes the
	// write-behind flusher daemon early (0 = bcache default; negative
	// disables the ratio trigger, leaving only the age interval).
	WritebackRatio int

	// PlugDelay is the request queues' anticipatory-plug window — how long
	// a request arriving at an idle queue waits for mergeable company
	// before dispatching (0 = blkq default; negative disables
	// anticipatory plugging).
	PlugDelay time.Duration

	// WithKeyboard attaches the USB keyboard (default true from P4 on).
	WithKeyboard *bool

	// EnableNet attaches the simulated NIC pair and boots the kernel's
	// network stack (sockets, /proc/net). Machine.PeerNIC is the far end
	// of the link: drive it with a host-side net.Stack to be "the rest of
	// the network". Off by default — the network column is an optional
	// subsystem, not a Table 1 prototype feature.
	EnableNet bool

	// ExtraRootFiles adds files to the ramdisk image.
	ExtraRootFiles map[string][]byte

	// ConsoleOut tees UART output.
	ConsoleOut io.Writer

	// TickInterval overrides the scheduler tick.
	TickInterval time.Duration
}

// System is a booted Proto instance.
type System struct {
	Proto    Prototype
	Machine  *hw.Machine
	Kernel   *kernel.Kernel
	Keyboard *hw.USBKeyboard
}

// programTable maps registry tokens to app mains.
func programTable() map[string]kernel.Program {
	return map[string]kernel.Program{
		"helloworld": func(p *kernel.Proc, argv []string) int {
			p.Kernel().Printk("hello world\n")
			return 0
		},
		"donut-text":    donut.MainText,
		"donut":         donut.MainPixel,
		"mario-noinput": nes.MainNoInput,
		"mario-proc":    nes.MainProc,
		"mario-sdl":     nes.MainSDL,
		"doom":          doomlike.Main,
		"musicplayer":   media.MusicPlayerMain,
		"videoplayer":   media.VideoPlayerMain,
		"slider":        media.SliderMain,
		"sysmon":        sysmon.Main,
		"launcher":      launcher.Main,
		"blockchain":    blockchain.Main,
		"chanserv":      chanserv.Main,
		"wordsmith":     wordsmith.Main,
		"sh":            shell.Main,
		"ls":            shell.LsMain,
		"cat":           shell.CatMain,
		"echo":          shell.EchoMain,
		"wc":            shell.WcMain,
		"grep":          shell.GrepMain,
		"mkdir":         shell.MkdirMain,
		"rm":            shell.RmMain,
		"uptime":        shell.UptimeMain,
		"ps":            shell.PsMain,
		"kill":          shell.KillMain,
	}
}

// NewSystem builds and boots a prototype.
func NewSystem(opts Options) (*System, error) {
	if opts.Prototype < Prototype1 || opts.Prototype > Prototype5 {
		return nil, fmt.Errorf("core: bad prototype %d", opts.Prototype)
	}
	feats := opts.Prototype.Features()
	cores := opts.Cores
	if cores <= 0 {
		if feats.Has(FeatMulticore) {
			cores = 4
		} else {
			cores = 1
		}
	}
	if !feats.Has(FeatMulticore) && cores > 1 {
		return nil, fmt.Errorf("core: prototype %d is single-core", opts.Prototype)
	}
	mem := opts.MemBytes
	if mem <= 0 {
		mem = 64 << 20
	}
	scale := opts.AssetScale
	if scale <= 0 {
		scale = 8 // small assets by default; experiments pass 1
	}

	mcfg := hw.DefaultConfig()
	mcfg.Cores = cores
	mcfg.MemBytes = mem
	if opts.FBWidth > 0 {
		mcfg.FBWidth = opts.FBWidth
	}
	if opts.FBHeight > 0 {
		mcfg.FBHeight = opts.FBHeight
	}
	if !feats.Has(FeatSDCard) {
		mcfg.SDBlocks = 0
	}
	mcfg.EnableNIC = opts.EnableNet
	m := hw.NewMachine(mcfg)

	// Partition 2 (FAT32) with user assets, as §3's OS-image layout.
	if feats.Has(FeatSDCard) {
		m.SD.SetLatencyScale(0) // asset generation at full speed
		if err := buildSDAssets(m.SD, scale); err != nil {
			return nil, fmt.Errorf("core: sd assets: %w", err)
		}
		m.SD.SetLatencyScale(1)
	}

	// Partition 1: the kernel image packs the ramdisk dump with all the
	// user programs as ELF executables.
	var ramdisk []byte
	if feats.Has(FeatXv6FS) {
		var err error
		ramdisk, err = RootImage(opts.ExtraRootFiles)
		if err != nil {
			return nil, fmt.Errorf("core: ramdisk: %w", err)
		}
	}

	withKbd := feats.Has(FeatUSBKeyboard)
	if opts.WithKeyboard != nil {
		withKbd = *opts.WithKeyboard && feats.Has(FeatUSBKeyboard)
	}
	var kbd *hw.USBKeyboard
	if withKbd {
		kbd = m.USB.AttachKeyboard()
	}

	rq := sched.RunqueueGlobal
	if feats.Has(FeatMulticore) {
		rq = sched.RunqueuePerCore
	}
	kcfg := kernel.Config{
		Machine:        m,
		Cores:          cores,
		Mode:           opts.Mode,
		RunqueueMode:   rq,
		TickInterval:   opts.TickInterval,
		EnableVM:       feats.Has(FeatVM),
		EnableFiles:    feats.Has(FeatFileAbstraction),
		EnableFAT:      feats.Has(FeatFAT32),
		EnableUSB:      withKbd,
		EnableSound:    feats.Has(FeatSound),
		EnableWM:       feats.Has(FeatWM),
		EnableThreads:  feats.Has(FeatSyscallsThread),
		EnableNet:      opts.EnableNet,
		EnableTrace:    true,
		CacheShards:    opts.CacheShards,
		CacheBuffers:   opts.CacheBuffers,
		QueueDepth:     opts.QueueDepth,
		WritebackRatio: opts.WritebackRatio,
		PlugDelay:      opts.PlugDelay,
		RamdiskImage:   ramdisk,
		ConsoleOut:     opts.ConsoleOut,
	}
	k := kernel.New(kcfg)
	for name, fn := range programTable() {
		k.RegisterProgram(name, fn)
	}
	if err := k.Boot(); err != nil {
		return nil, err
	}
	return &System{Proto: opts.Prototype, Machine: m, Kernel: k, Keyboard: kbd}, nil
}

// RootImage packs the xv6fs ramdisk image Proto boots from: every
// registered program as an ELF executable in /bin, NES cartridges in
// /roms, and /etc files — §3's partition 1 content. cmd/mkimage writes it
// to disk; NewSystem embeds it in the kernel.
func RootImage(extra map[string][]byte) ([]byte, error) {
	files := map[string][]byte{
		"/etc/motd":   []byte("welcome to proto\n"),
		"/etc/initrc": []byte("echo proto initrc\nuptime\n"),
	}
	for name := range programTable() {
		files["/bin/"+name] = uelf.Build(name, nil, 0)
	}
	// Extra NES cartridges as disk files (Prototype 4: "additional ROMs
	// as files").
	if cart, err := nes.BuildMarioROM("kungfu", 5); err == nil {
		files["/roms/kungfu.rom"] = cart.Serialize()
	}
	if cart, err := nes.BuildMarioROM("mario", 3); err == nil {
		files["/roms/mario.rom"] = cart.Serialize()
	}
	for p, b := range extra {
		files[p] = b
	}
	rd, err := xv6fs.BuildImage(4096, 256, files)
	if err != nil {
		return nil, err
	}
	return rd.Image(), nil
}

// CanRun checks an app against this system's prototype.
func (s *System) CanRun(appName string) (bool, string) {
	for _, app := range Apps() {
		if app.Name == appName {
			return CanRun(app, s.Proto)
		}
	}
	return false, "unknown app"
}

// RunApp launches an app by registry name and waits for it, returning its
// exit code. Prototype gating is enforced first, like the staged course
// materials would by simply not shipping the feature.
func (s *System) RunApp(name string, argv []string, timeout time.Duration) (int, error) {
	if ok, missing := s.CanRun(name); !ok {
		return -1, fmt.Errorf("core: %s needs %q which prototype %d lacks", name, missing, s.Proto)
	}
	return s.runProgram(name, argv, timeout)
}

// runProgram bypasses the matrix (utilities, tests).
func (s *System) runProgram(name string, argv []string, timeout time.Duration) (int, error) {
	table := programTable()
	fn, ok := table[name]
	if !ok {
		return -1, fmt.Errorf("core: no program %q", name)
	}
	if len(argv) == 0 {
		argv = []string{name}
	}
	done := make(chan int, 1)
	s.Kernel.Spawn(name, 0, func(p *kernel.Proc, a []string) int {
		code := fn(p, a)
		done <- code
		return code
	}, argv)
	select {
	case code := <-done:
		return code, nil
	case <-time.After(timeout):
		return -1, fmt.Errorf("core: %s did not finish within %v", name, timeout)
	}
}

// RunShellScript executes a script through the shell program.
func (s *System) RunShellScript(script string, timeout time.Duration) (int, error) {
	path := "/tmp-script"
	done := make(chan int, 1)
	s.Kernel.Spawn("sh", 0, func(p *kernel.Proc, a []string) int {
		// Write the script, then run it.
		fd, err := p.SysOpen(path, fs.OCreate|fs.OWrOnly|fs.OTrunc)
		if err != nil {
			done <- -2
			return 1
		}
		p.SysWrite(fd, []byte(script))
		p.SysClose(fd)
		code := shell.Main(p, []string{"sh", path})
		done <- code
		return code
	}, nil)
	select {
	case code := <-done:
		return code, nil
	case <-time.After(timeout):
		return -1, fmt.Errorf("core: script timed out")
	}
}

// Shutdown stops the system.
func (s *System) Shutdown() error { return s.Kernel.Shutdown() }

// buildSDAssets formats the card and installs doom1.wad, music, video and
// photos, sized by scale (1 = paper-like).
func buildSDAssets(sd *hw.SDCard, scale int) error {
	dev := sdDev{sd}
	if err := fat32.Mkfs(dev); err != nil {
		return err
	}
	f, err := fat32.Mount(dev, nil)
	if err != nil {
		return err
	}
	write := func(path string, data []byte) error {
		ops, err := f.Open(nil, path, fs.OCreate|fs.OWrOnly)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fl := fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly)
		defer fl.Close(nil)
		if _, err := fl.Write(nil, data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return nil
	}
	// DOOM assets: ~2 MB at scale 1.
	wadPad := (2 << 20) / scale
	if err := write("/doom1.wad", doomlike.BuildWAD(48, 32, wadPad)); err != nil {
		return err
	}
	// Music: ~20 s of audio at scale 1.
	seconds := 20 / scale
	if seconds < 1 {
		seconds = 1
	}
	pcm := poggTone(seconds * 22050)
	if err := write("/track01.pog", pcm); err != nil {
		return err
	}
	if err := write("/cover01.bmp", coverArt()); err != nil {
		return err
	}
	// Video clips: 480p-class and 720p-class at scale 1; tiny otherwise.
	w480, h480, n480 := 640, 480, 90
	w720, h720, n720 := 1280, 720, 45
	if scale > 1 {
		w480, h480, n480 = 64, 48, 12
		w720, h720, n720 = 128, 96, 8
	}
	clip480, err := synthClip(w480, h480, n480)
	if err != nil {
		return err
	}
	if err := write("/clip480.mpv", clip480); err != nil {
		return err
	}
	clip720, err := synthClip(w720, h720, n720)
	if err != nil {
		return err
	}
	if err := write("/clip720.mpv", clip720); err != nil {
		return err
	}
	// Photos for slider.
	if err := f.Mkdir(nil, "/photos"); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		img := photo(320/scaleClamp(scale), 240/scaleClamp(scale), byte(i*40))
		if err := write(fmt.Sprintf("/photos/img%d.bmp", i+1), img); err != nil {
			return err
		}
	}
	// One high-res PIM slide (Prototype 5 slider, Table 1 note 4).
	hi, err := photoPIM(640/scaleClamp(scale), 480/scaleClamp(scale), 0x77)
	if err != nil {
		return err
	}
	if err := write("/photos/hires.pim", hi); err != nil {
		return err
	}
	return f.Sync(nil)
}

func scaleClamp(s int) int {
	if s < 1 {
		return 1
	}
	if s > 4 {
		return 4
	}
	return s
}

// sdDev adapts hw.SDCard to fs.BlockDevice.
type sdDev struct{ sd *hw.SDCard }

func (d sdDev) BlockSize() int { return hw.SDBlockSize }
func (d sdDev) Blocks() int    { return d.sd.Blocks() }
func (d sdDev) ReadBlocks(lba, n int, dst []byte) error {
	return d.sd.ReadBlocks(lba, n, dst)
}
func (d sdDev) WriteBlocks(lba, n int, src []byte) error {
	return d.sd.WriteBlocks(lba, n, src)
}
