package core

import "fmt"

// Prototype identifies one of the five incremental snapshots (§4).
type Prototype int

// The five prototypes.
const (
	Prototype1 Prototype = 1 + iota // "Baremetal IO"
	Prototype2                      // "Multitasking"
	Prototype3                      // "User vs. Kernel"
	Prototype4                      // "Files"
	Prototype5                      // "Desktop"
)

// Title returns the paper's name for the prototype.
func (p Prototype) Title() string {
	switch p {
	case Prototype1:
		return "Baremetal IO"
	case Prototype2:
		return "Multitasking"
	case Prototype3:
		return "User vs. Kernel"
	case Prototype4:
		return "Files"
	case Prototype5:
		return "Desktop"
	}
	return fmt.Sprintf("Prototype%d", int(p))
}

// Feature is one kernel capability row of Table 1.
type Feature int

// Features, following Table 1's kernel-core / files / IO sections.
const (
	FeatDebugMsg Feature = iota
	FeatTimers
	FeatIRQ
	FeatFramebuffer
	FeatUARTPolled
	FeatUARTIRQRx
	FeatMultitasking
	FeatPageAlloc
	FeatKmalloc
	FeatPrivileges // EL0/EL1 split
	FeatVM
	FeatSyscallsTask
	FeatSyscallsFile
	FeatSyscallsThread
	FeatMulticore
	FeatWM
	FeatFileAbstraction
	FeatProcDevFS
	FeatRamdisk
	FeatXv6FS
	FeatFAT32
	FeatUSBKeyboard
	FeatSound
	FeatSDCard
	numFeatures
)

// featureNames for reports.
var featureNames = map[Feature]string{
	FeatDebugMsg:        "debug msg",
	FeatTimers:          "timer, timekeeping",
	FeatIRQ:             "irq",
	FeatFramebuffer:     "framebuffer",
	FeatUARTPolled:      "UART (polled)",
	FeatUARTIRQRx:       "UART (irq RX)",
	FeatMultitasking:    "multitasking",
	FeatPageAlloc:       "memory allocator (pages)",
	FeatKmalloc:         "kmalloc",
	FeatPrivileges:      "privileges (EL0/1)",
	FeatVM:              "virtual memory",
	FeatSyscallsTask:    "syscalls: tasks & time",
	FeatSyscallsFile:    "syscalls: files",
	FeatSyscallsThread:  "syscalls: threading",
	FeatMulticore:       "multicore",
	FeatWM:              "window manager",
	FeatFileAbstraction: "file abstraction",
	FeatProcDevFS:       "procfs/devfs",
	FeatRamdisk:         "ramdisk",
	FeatXv6FS:           "xv6 filesystem",
	FeatFAT32:           "FAT32",
	FeatUSBKeyboard:     "USB keyboard",
	FeatSound:           "sound (PWM)",
	FeatSDCard:          "SD card",
}

// Name returns the Table 1 row label.
func (f Feature) Name() string { return featureNames[f] }

// FeatureSet is a prototype's enabled capability set.
type FeatureSet map[Feature]bool

// Has reports whether the set includes f.
func (fs FeatureSet) Has(f Feature) bool { return fs[f] }

// Features returns the prototype's feature set — exactly Table 1's kernel
// column for Prototype-X.
func (p Prototype) Features() FeatureSet {
	fs := FeatureSet{}
	add := func(feats ...Feature) {
		for _, f := range feats {
			fs[f] = true
		}
	}
	// Prototype 1: baremetal appliance.
	add(FeatDebugMsg, FeatTimers, FeatIRQ, FeatFramebuffer, FeatUARTPolled)
	if p >= Prototype2 {
		add(FeatMultitasking, FeatPageAlloc, FeatUARTIRQRx)
	}
	if p >= Prototype3 {
		add(FeatPrivileges, FeatVM, FeatSyscallsTask)
	}
	if p >= Prototype4 {
		add(FeatSyscallsFile, FeatFileAbstraction, FeatProcDevFS,
			FeatRamdisk, FeatXv6FS, FeatUSBKeyboard, FeatSound, FeatKmalloc)
	}
	if p >= Prototype5 {
		add(FeatSyscallsThread, FeatMulticore, FeatWM, FeatFAT32, FeatSDCard)
	}
	return fs
}

// AppSpec describes one target application: its name, the prototype that
// first supports it, and the features it depends on (the "minimum viable
// implementation" mapping, principle P4).
type AppSpec struct {
	Name     string
	Desc     string
	Since    Prototype
	Requires []Feature
}

// Apps is the registry of Table 1's application rows.
func Apps() []AppSpec {
	return []AppSpec{
		{"helloworld", "hello world over UART", Prototype1,
			[]Feature{FeatDebugMsg, FeatUARTPolled}},
		{"donut-text", "spinning textual donut", Prototype1,
			[]Feature{FeatTimers, FeatUARTPolled}},
		{"donut", "spinning pixel donut", Prototype1,
			[]Feature{FeatTimers, FeatFramebuffer}},
		{"mario-noinput", "NES emulator, autoplay", Prototype3,
			[]Feature{FeatVM, FeatPrivileges, FeatSyscallsTask, FeatFramebuffer}},
		{"sysmon", "floating CPU/mem monitor", Prototype4,
			[]Feature{FeatSyscallsFile, FeatProcDevFS, FeatWM}},
		{"sh", "shell with scripts", Prototype4,
			[]Feature{FeatSyscallsFile, FeatFileAbstraction, FeatXv6FS}},
		{"slider", "BMP slide viewer", Prototype4,
			[]Feature{FeatSyscallsFile, FeatFramebuffer, FeatUSBKeyboard}},
		{"mario-proc", "NES emulator, IPC input", Prototype4,
			[]Feature{FeatSyscallsFile, FeatUSBKeyboard, FeatVM}},
		{"musicplayer", "POG playback with album art", Prototype4,
			[]Feature{FeatSyscallsFile, FeatSound}},
		{"doom", "raycasting 3D game", Prototype5,
			[]Feature{FeatSyscallsFile, FeatFAT32, FeatSDCard, FeatFramebuffer}},
		{"mario-sdl", "NES emulator, threads + WM", Prototype5,
			[]Feature{FeatSyscallsThread, FeatWM}},
		{"launcher", "GUI program launcher", Prototype5,
			[]Feature{FeatWM, FeatSyscallsFile}},
		{"blockchain", "multithreaded miner", Prototype5,
			[]Feature{FeatSyscallsThread, FeatMulticore}},
		{"videoplayer", "MPV1 video playback", Prototype5,
			[]Feature{FeatSyscallsFile, FeatFAT32, FeatFramebuffer}},
	}
}

// CanRun checks an app's requirements against a prototype's features,
// returning the first missing feature's name.
func CanRun(app AppSpec, p Prototype) (bool, string) {
	fs := p.Features()
	for _, f := range app.Requires {
		if !fs.Has(f) {
			return false, f.Name()
		}
	}
	return true, ""
}

// FeatureMatrix reproduces Table 1's app section: for each app and
// prototype, whether the app's requirements are met. Keyed app -> [5]bool.
func FeatureMatrix() map[string][5]bool {
	out := map[string][5]bool{}
	for _, app := range Apps() {
		var row [5]bool
		for p := Prototype1; p <= Prototype5; p++ {
			ok, _ := CanRun(app, p)
			row[p-1] = ok
		}
		out[app.Name] = row
	}
	return out
}
