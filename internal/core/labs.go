package core

import "fmt"

// Lab is one of the five student assignments (Table 2): its workload
// numbers and the task graph of Figure 14.
type Lab struct {
	Number   int
	Tasks    []LabTask
	Files    int    // source files to modify
	SLoC     string // lines of code to write (paper reports ranges)
	Videos   int    // required video evidences
	Teamwork bool   // Labs 4–5 expect teams (§6.1)
}

// LabTask is one node of a Figure 14 task graph.
type LabTask struct {
	ID        string
	Title     string
	Concepts  []string
	DependsOn []string
	Video     bool // bold-border tasks require video evidence
}

// Labs returns the course's five labs with Table 2's workload numbers and
// Figure 14's task graphs encoded as data.
func Labs() []Lab {
	return []Lab{
		{
			Number: 1, Files: 10, SLoC: "~100", Videos: 9,
			Tasks: []LabTask{
				{ID: "1.1", Title: "Setup", Concepts: []string{"Compilation", "Linking"}},
				{ID: "1.2", Title: "Kernel image", Concepts: []string{"elf", "binary files"}, DependsOn: []string{"1.1"}},
				{ID: "1.3", Title: "Boot", Concepts: []string{"GDB", "HW/SW interactions"}, DependsOn: []string{"1.2"}, Video: true},
				{ID: "1.4", Title: "UART", Concepts: []string{"IO"}, DependsOn: []string{"1.3"}, Video: true},
				{ID: "1.5", Title: "Textual donut", Concepts: []string{"IO"}, DependsOn: []string{"1.4"}, Video: true},
				{ID: "1.6", Title: "OS logo", Concepts: []string{"Graphics"}, DependsOn: []string{"1.4"}, Video: true},
				{ID: "1.7", Title: "Debug level", Concepts: []string{"Debug"}, DependsOn: []string{"1.4"}},
				{ID: "1.8", Title: "Framebuffer offsets", Concepts: []string{"Graphics"}, DependsOn: []string{"1.6"}},
				{ID: "1.9", Title: "SysTimer IRQ", Concepts: []string{"IRQ"}, DependsOn: []string{"1.4"}, Video: true},
				{ID: "1.10", Title: "Pixel donut", Concepts: []string{"IRQ", "Graphics"}, DependsOn: []string{"1.8", "1.9"}, Video: true},
				{ID: "1.11", Title: "Virtual timers", Concepts: []string{"Virtualization"}, DependsOn: []string{"1.9"}, Video: true},
				{ID: "1.12", Title: "UART RX IRQ", Concepts: []string{"IO", "IRQ"}, DependsOn: []string{"1.9"}, Video: true},
				{ID: "1.13", Title: "Rpi3", Concepts: []string{"HW/SW interactions"}, DependsOn: []string{"1.10"}, Video: true},
			},
		},
		{
			Number: 2, Files: 10, SLoC: "~100", Videos: 9,
			Tasks: []LabTask{
				{ID: "2.1", Title: "Boot (kernel stack)", Concepts: []string{"Stack"}},
				{ID: "2.2", Title: "Two cooperative printers", Concepts: []string{"Virtualization", "Scheduling"}, DependsOn: []string{"2.1"}, Video: true},
				{ID: "2.3", Title: "Two preemptive printers", Concepts: []string{"Virtualization", "Scheduling"}, DependsOn: []string{"2.2"}, Video: true},
				{ID: "2.4", Title: "Two donuts", Concepts: []string{"Scheduling", "IO"}, DependsOn: []string{"2.3"}, Video: true},
				{ID: "2.5", Title: "N donuts", Concepts: []string{"Scheduling", "Concurrency", "IO"}, DependsOn: []string{"2.4"}, Video: true},
				{ID: "2.6", Title: "Fast/slow donuts", Concepts: []string{"Scheduling"}, DependsOn: []string{"2.5"}, Video: true},
				{ID: "2.7", Title: "Donuts in sync", Concepts: []string{"Scheduling", "Concurrency"}, DependsOn: []string{"2.5"}, Video: true},
				{ID: "2.8", Title: "Kill a donut", Concepts: []string{"Process"}, DependsOn: []string{"2.5"}, Video: true},
				{ID: "2.9", Title: "Donuts on Rpi3", Concepts: []string{"HW/SW interactions"}, DependsOn: []string{"2.5"}, Video: true},
				{ID: "2.10", Title: "Wordsmith", Concepts: []string{"Concurrency"}, DependsOn: []string{"2.3"}, Video: true},
			},
		},
		{
			Number: 3, Files: 18, SLoC: "~150", Videos: 6,
			Tasks: []LabTask{
				{ID: "3.1", Title: "Kernel virtual addresses", Concepts: []string{"Virtual memory"}},
				{ID: "3.2", Title: "User helloworld", Concepts: []string{"User/kernel separation", "Syscalls"}, DependsOn: []string{"3.1"}, Video: true},
				{ID: "3.3", Title: "Two user printers", Concepts: []string{"Scheduling", "Process"}, DependsOn: []string{"3.2"}, Video: true},
				{ID: "3.4", Title: "User donut", Concepts: []string{"User/kernel separation", "mmap", "IO"}, DependsOn: []string{"3.2"}, Video: true},
				{ID: "3.5", Title: "User donut on rpi3", Concepts: []string{"HW/SW interactions", "CPU cache"}, DependsOn: []string{"3.4"}, Video: true},
				{ID: "3.6", Title: "Mario", Concepts: []string{"Process", "memory management"}, DependsOn: []string{"3.4"}, Video: true},
				{ID: "3.7", Title: "Mario on rpi3", Concepts: []string{"Process", "HW/SW interactions"}, DependsOn: []string{"3.6"}, Video: true},
			},
		},
		{
			Number: 4, Files: 21, SLoC: "~300", Videos: 7, Teamwork: true,
			Tasks: []LabTask{
				{ID: "4.1", Title: "Shell", Concepts: []string{"Shell", "process"}, Video: true},
				{ID: "4.2", Title: "Kungfu (NES from file)", Concepts: []string{"Graphics", "files", "procfs"}, DependsOn: []string{"4.1"}, Video: true},
				{ID: "4.3", Title: "initrc", Concepts: []string{"User-level system programming"}, DependsOn: []string{"4.1"}},
				{ID: "4.4", Title: "Mario with inputs", Concepts: []string{"Device driver", "IPC", "procfs"}, DependsOn: []string{"4.2"}, Video: true},
				{ID: "4.5", Title: "Mario on rpi3", Concepts: []string{"HW/SW interactions"}, DependsOn: []string{"4.4"}, Video: true},
				{ID: "4.6", Title: "Slider", Concepts: []string{"User-level IO", "Graphics"}, DependsOn: []string{"4.1"}, Video: true},
				{ID: "4.7", Title: "Large files", Concepts: []string{"Filesystem", "Block devices"}, DependsOn: []string{"4.6"}, Video: true},
				{ID: "4.8", Title: "Sound", Concepts: []string{"Device driver", "IO", "DMA", "procfs"}, DependsOn: []string{"4.1"}, Video: true},
			},
		},
		{
			Number: 5, Files: 28, SLoC: "~300", Videos: 6, Teamwork: true,
			Tasks: []LabTask{
				{ID: "5.1", Title: "Build", Concepts: []string{"Complex software projects", "Libraries"}, Video: true},
				{ID: "5.2", Title: "MusicPlayer", Concepts: []string{"Threading", "Concurrency", "Graphics", "IO"}, DependsOn: []string{"5.1"}, Video: true},
				{ID: "5.3", Title: "FAT on SD card", Concepts: []string{"Filesystems", "Device Driver", "HW/SW interactions"}, DependsOn: []string{"5.1"}, Video: true},
				{ID: "5.4", Title: "DOOM", Concepts: []string{"Libraries", "Graphics", "IO"}, DependsOn: []string{"5.3"}, Video: true},
				{ID: "5.5", Title: "Desktop", Concepts: []string{"IPC", "Synchronization", "IO", "Graphics"}, DependsOn: []string{"5.2"}, Video: true},
				{ID: "5.6", Title: "Multicore", Concepts: []string{"Multicore", "Concurrency"}, DependsOn: []string{"5.5"}, Video: true},
			},
		},
	}
}

// ValidateLabGraph checks a lab's dependency graph: every dependency
// exists, no cycles (so students can always make progress).
func ValidateLabGraph(lab Lab) error {
	byID := map[string]*LabTask{}
	for i := range lab.Tasks {
		byID[lab.Tasks[i].ID] = &lab.Tasks[i]
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("lab %d: cycle through task %s", lab.Number, id)
		case black:
			return nil
		}
		color[id] = grey
		t := byID[id]
		if t == nil {
			return fmt.Errorf("lab %d: unknown task %s", lab.Number, id)
		}
		for _, dep := range t.DependsOn {
			if byID[dep] == nil {
				return fmt.Errorf("lab %d: task %s depends on unknown %s", lab.Number, id, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for _, t := range lab.Tasks {
		if err := visit(t.ID); err != nil {
			return err
		}
	}
	return nil
}

// SurveyQuestion is one bar of Figure 13 (the pedagogical user study).
type SurveyQuestion struct {
	ID        string
	Principle string
	Question  string
	Score     float64 // mean on the 1–5 scale, as read from Figure 13
}

// Survey returns Figure 13's reported results (N=48). These are the
// paper's data — a human-subjects study cannot be re-run by a simulator —
// shipped so the experiment harness can render the figure.
func Survey() (questions []SurveyQuestion, n int) {
	return []SurveyQuestion{
		{"Q1", "P1 appealing apps", "Apps interesting?", 4.5},
		{"Q2", "P1 appealing apps", "Apps motivate learning?", 4.3},
		{"Q3", "P2 demonstrability", "Hardware motivate learning?", 4.0},
		{"Q4", "P2 demonstrability", "Will demonstrate to others?", 3.9},
		{"Q5", "P3 incremental prototype", "Incremental prototyping helpful?", 4.4},
		{"Q6", "P3 incremental prototype", "Early prototypes help later one?", 4.3},
		{"Q7", "P4 minimum viable impl", "Understand quests/apps relations?", 4.2},
		{"Q8", "P4 minimum viable impl", "Quests tied to apps?", 4.3},
		{"Q9", "P4 minimum viable impl", "Can manage code complexity?", 3.8},
	}, 48
}
