package core

import (
	"strings"
	"testing"
	"time"
)

// boot boots a prototype with small assets and cleans up.
func boot(t *testing.T, p Prototype) *System {
	t.Helper()
	sys, err := NewSystem(Options{Prototype: p, MemBytes: 48 << 20, FBWidth: 320, FBHeight: 240})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.SD != nil {
		sys.Machine.SD.SetLatencyScale(0)
	}
	t.Cleanup(func() {
		if err := sys.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return sys
}

func TestFeatureMatrixMatchesTable1(t *testing.T) {
	m := FeatureMatrix()
	// Spot-check Table 1's app rows: {app: first prototype that runs it}.
	first := map[string]int{
		"donut":         1,
		"mario-noinput": 3,
		"sh":            4,
		"slider":        4,
		"musicplayer":   4,
		"sysmon":        5, // our sysmon draws via the WM (Fig 1(m))
		"doom":          5,
		"mario-sdl":     5,
		"launcher":      5,
		"blockchain":    5,
		"videoplayer":   5,
	}
	for app, want := range first {
		row, ok := m[app]
		if !ok {
			t.Fatalf("app %s missing from matrix", app)
		}
		got := 0
		for i, can := range row {
			if can {
				got = i + 1
				break
			}
		}
		if got != want {
			t.Errorf("%s first runs on prototype %d, want %d (row %v)", app, got, want, row)
		}
		// Monotone: once available, an app stays available.
		seen := false
		for _, can := range row {
			if seen && !can {
				t.Errorf("%s regresses across prototypes: %v", app, row)
			}
			seen = seen || can
		}
	}
}

func TestPrototype1DonutOnFramebuffer(t *testing.T) {
	sys := boot(t, Prototype1)
	code, err := sys.RunApp("donut", []string{"donut", "5"}, 20*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("donut: code=%d err=%v", code, err)
	}
	// The panel must show the flushed donut.
	nonzero := 0
	for _, b := range sys.Kernel.FB.Snapshot() {
		if b != 0 && b != 0xFF {
			nonzero++
		}
	}
	if nonzero < 100 {
		t.Fatalf("panel nearly blank (%d non-trivial bytes)", nonzero)
	}
}

func TestPrototypeGatingRefusesFutureApps(t *testing.T) {
	sys := boot(t, Prototype2)
	if _, err := sys.RunApp("doom", nil, time.Second); err == nil {
		t.Fatal("prototype 2 ran doom")
	}
	if _, err := sys.RunApp("sh", nil, time.Second); err == nil {
		t.Fatal("prototype 2 ran the shell")
	}
}

func TestPrototype3MarioNoInput(t *testing.T) {
	sys := boot(t, Prototype3)
	code, err := sys.RunApp("mario-noinput", []string{"mario-noinput", "builtin:mario", "10"}, 30*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("mario: code=%d err=%v", code, err)
	}
}

func TestPrototype4ShellScript(t *testing.T) {
	sys := boot(t, Prototype4)
	code, err := sys.RunShellScript("echo lab4 works > /out.txt\ncat /out.txt\n", 30*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("script: code=%d err=%v", code, err)
	}
	if !strings.Contains(sys.Kernel.Transcript(), "lab4 works") {
		t.Fatalf("transcript missing output: %q", sys.Kernel.Transcript())
	}
}

func TestPrototype5DoomAndVideo(t *testing.T) {
	sys := boot(t, Prototype5)
	code, err := sys.RunApp("doom", []string{"doom", "/d/doom1.wad", "5"}, 60*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("doom: code=%d err=%v", code, err)
	}
	code, err = sys.RunApp("videoplayer", []string{"videoplayer", "/d/clip480.mpv", "5"}, 60*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("videoplayer: code=%d err=%v", code, err)
	}
}

func TestPrototype5Blockchain(t *testing.T) {
	sys := boot(t, Prototype5)
	code, err := sys.RunApp("blockchain", []string{"blockchain", "1", "12", "4"}, 60*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("blockchain: code=%d err=%v", code, err)
	}
}

func TestPrototype5MusicPipeline(t *testing.T) {
	sys := boot(t, Prototype5)
	code, err := sys.RunApp("musicplayer", []string{"musicplayer", "/d/track01.pog", "/d/cover01.bmp"}, 60*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("musicplayer: code=%d err=%v", code, err)
	}
	consumed, underruns, energy := sys.Machine.PWM.Stats()
	if consumed == 0 || energy == 0 {
		t.Fatalf("no audio played (consumed=%d)", consumed)
	}
	_ = underruns // underruns are possible under test-host jitter; energy proves playback
}

func TestPrototype5SysmonTranslucentWindow(t *testing.T) {
	sys := boot(t, Prototype5)
	code, err := sys.RunApp("sysmon", []string{"sysmon", "3"}, 30*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("sysmon: code=%d err=%v", code, err)
	}
}

func TestPrototype5LauncherRuns(t *testing.T) {
	sys := boot(t, Prototype5)
	code, err := sys.RunApp("launcher", []string{"launcher", "3"}, 30*time.Second)
	if err != nil || code != 0 {
		t.Fatalf("launcher: code=%d err=%v", code, err)
	}
}

func TestSingleCoreConstraint(t *testing.T) {
	if _, err := NewSystem(Options{Prototype: Prototype3, Cores: 4}); err == nil {
		t.Fatal("prototype 3 accepted 4 cores")
	}
}

func TestLabGraphs(t *testing.T) {
	labs := Labs()
	if len(labs) != 5 {
		t.Fatalf("labs = %d", len(labs))
	}
	// Table 2's task counts.
	wantTasks := []int{13, 10, 7, 8, 6}
	for i, lab := range labs {
		if err := ValidateLabGraph(lab); err != nil {
			t.Fatal(err)
		}
		if len(lab.Tasks) != wantTasks[i] {
			t.Errorf("lab %d: %d tasks, want %d", lab.Number, len(lab.Tasks), wantTasks[i])
		}
		videos := 0
		for _, task := range lab.Tasks {
			if task.Video {
				videos++
			}
		}
		if videos != lab.Videos {
			t.Errorf("lab %d: %d video tasks, header says %d", lab.Number, videos, lab.Videos)
		}
	}
	if !labs[3].Teamwork || !labs[4].Teamwork || labs[0].Teamwork {
		t.Error("teamwork flags wrong (labs 4-5 are team labs)")
	}
}

func TestSurveyData(t *testing.T) {
	qs, n := Survey()
	if len(qs) != 9 || n != 48 {
		t.Fatalf("survey = %d questions, n=%d", len(qs), n)
	}
	for _, q := range qs {
		if q.Score < 1 || q.Score > 5 {
			t.Errorf("%s score %f out of range", q.ID, q.Score)
		}
	}
}
