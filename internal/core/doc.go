// Package core implements the paper's primary contribution: decomposing a
// full-featured OS into five incremental, self-contained prototypes, each
// mapped to the target applications that motivate its mechanisms (Table 1).
//
// core.NewSystem assembles the machine + kernel + userland for a chosen
// prototype, enabling exactly that prototype's feature set; the app
// registry records which kernel features each app needs, so Table 1's
// "which app runs where" matrix is checked by the system, not asserted in
// prose.
//
// Options is the tuning surface experiments and benchmarks share: the
// prototype and kernel mode (proto/xv6/prod baselines for Fig 9), core
// count, memory, framebuffer geometry, SD asset scale, and the sharded
// buffer cache's shard/buffer counts (CacheShards, CacheBuffers) that
// both filesystems mount over.
package core
