package hw

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Typed device-fault errors. These are the canonical values the whole IO
// stack tests with errors.Is — internal/kernel/fs re-exports them so upper
// layers never import hw directly.
var (
	// ErrDeviceDead: the device has failed whole — every past and future
	// command on it fails. The request queue latches this state and
	// fast-fails instead of letting submitters sleep forever.
	ErrDeviceDead = errors.New("hw: device dead")
	// ErrBadSector: a persistent per-LBA media error. Retrying does not
	// help; a merged command covering a bad sector should be split so only
	// the requests over the sector fail.
	ErrBadSector = errors.New("hw: bad sector")
	// ErrSDWriteProtected: the card's write-protect tab is set. Typed so
	// the stack can distinguish it from media errors (it is neither
	// transient nor a reason to declare the device dead).
	ErrSDWriteProtected = errors.New("sd: card is write-protected")
)

// blockStore is the sync device face a FaultDisk wraps — structurally
// fs.BlockDevice, declared here so hw stays dependency-free.
type blockStore interface {
	BlockSize() int
	Blocks() int
	ReadBlocks(lba, n int, dst []byte) error
	WriteBlocks(lba, n int, src []byte) error
}

// FaultPlan is a seeded, replayable schedule of device faults. All
// decisions are drawn from one rand.Rand seeded with Seed in command-
// arrival order, so a workload that issues the same command sequence sees
// the same faults on every run (the crash harness's workloads are
// single-goroutine for exactly this property).
//
// Probabilities are per command. Zero values inject nothing.
type FaultPlan struct {
	// Seed drives every random decision.
	Seed int64
	// PTransient injects an error burst: the command fails now, and the
	// next 0..TransientMax-1 commands at the same start LBA fail too, after
	// which commands there succeed — the retry-with-backoff success case.
	PTransient float64
	// TransientMax bounds a burst (default 2: at most the initial failure
	// plus one retry failure).
	TransientMax int
	// PBadSector mints a persistent bad sector at a random LBA inside the
	// command's range; that LBA fails every command covering it, forever.
	PBadSector float64
	// PTorn tears a multi-block write: a random proper prefix of the
	// blocks lands on media and the command reports a transient error.
	PTorn float64
	// PLatency delays the command by LatencySpike (default 2ms).
	PLatency     float64
	LatencySpike time.Duration
	// PStall drops an async command entirely: no completion ever arrives
	// (the timeout path's food). Ignored on the synchronous faces.
	PStall float64
	// DeathAfter kills the whole device after that many commands
	// (0 = never): every later command fails with ErrDeviceDead.
	DeathAfter int
}

func (p FaultPlan) withDefaults() FaultPlan {
	if p.TransientMax <= 0 {
		p.TransientMax = 2
	}
	if p.LatencySpike <= 0 {
		p.LatencySpike = 2 * time.Millisecond
	}
	return p
}

// String prints the knobs that matter for replaying a fuzz failure.
func (p FaultPlan) String() string {
	return fmt.Sprintf("plan{seed=%d transient=%.3f bad=%.3f torn=%.3f latency=%.3f stall=%.3f death=%d}",
		p.Seed, p.PTransient, p.PBadSector, p.PTorn, p.PLatency, p.PStall, p.DeathAfter)
}

// RandomPlan derives a full plan from one seed: the probabilities
// themselves are drawn from the seed, so a single integer names the whole
// fault schedule (FAULT_SEED=n replays it).
func RandomPlan(seed int64) FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := FaultPlan{
		Seed:       seed,
		PTransient: rng.Float64() * 0.08,
		PBadSector: rng.Float64() * 0.02,
		PTorn:      rng.Float64() * 0.05,
		PLatency:   rng.Float64() * 0.02,
	}
	if rng.Intn(4) == 0 { // one run in four ends in whole-device death
		p.DeathAfter = 40 + rng.Intn(200)
	}
	return p
}

// FaultStats counts what a FaultDisk actually injected (tests assert
// against these, and fuzz logs them per seed).
type FaultStats struct {
	Commands   int
	Transient  int
	BadSector  int
	Torn       int
	Latency    int
	Stalls     int
	DeadFails  int
	BadSectors int // distinct bad LBAs minted
}

// FaultDisk wraps a block device in a FaultPlan. It exposes both device
// faces the kernel stack consumes: the synchronous fs.BlockDevice methods,
// and the split submit/completion halves (blkq.AsyncBackend) with a
// pluggable completion notifier in place of a wired IRQ line. It composes
// with the crash Recorder in either order; stacking it ABOVE the Recorder
// (FaultDisk → Recorder → ramdisk) records exactly the writes that
// physically landed, torn prefixes included.
type FaultDisk struct {
	dev  blockStore
	plan FaultPlan

	mu          sync.Mutex
	rng         *rand.Rand
	dead        bool
	transient   map[int]int // command-start LBA → remaining burst failures
	bad         map[int]bool
	completions []sdCompletion
	notify      func()
	stats       FaultStats
}

// NewFaultDisk wraps dev in plan.
func NewFaultDisk(dev blockStore, plan FaultPlan) *FaultDisk {
	plan = plan.withDefaults()
	return &FaultDisk{
		dev:       dev,
		plan:      plan,
		rng:       rand.New(rand.NewSource(plan.Seed)),
		transient: make(map[int]int),
		bad:       make(map[int]bool),
	}
}

// SetNotify installs the completion signal for the async faces (the kernel
// routes it to the queue's CompletionIRQ; tests call the queue directly).
func (d *FaultDisk) SetNotify(fn func()) {
	d.mu.Lock()
	d.notify = fn
	d.mu.Unlock()
}

// AddBadSector mints a persistent bad sector at lba — the deterministic
// version of PBadSector for tests that need a known bad block.
func (d *FaultDisk) AddBadSector(lba int) {
	d.mu.Lock()
	d.bad[lba] = true
	d.mu.Unlock()
}

// InjectTransient opens a transient burst at lba: the next count commands
// starting there fail with ErrSDInjected, after which commands at lba
// succeed — the deterministic version of PTransient.
func (d *FaultDisk) InjectTransient(lba, count int) {
	d.mu.Lock()
	d.transient[lba] = count + 1
	d.mu.Unlock()
}

// Kill fails the device whole, immediately — the deterministic version of
// DeathAfter for tests that need death at an exact point.
func (d *FaultDisk) Kill() {
	d.mu.Lock()
	d.dead = true
	d.mu.Unlock()
}

// Dead reports whether the device has died.
func (d *FaultDisk) Dead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

// Stats snapshots the injection counters.
func (d *FaultDisk) Stats() FaultStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.BadSectors = len(d.bad)
	return s
}

// BlockSize implements the sync device face.
func (d *FaultDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks implements the sync device face.
func (d *FaultDisk) Blocks() int { return d.dev.Blocks() }

// verdict is one command's fate, decided under d.mu in arrival order.
type verdict struct {
	err     error
	tornN   int  // torn write: blocks of the prefix that lands
	stall   bool // async: never complete
	latency time.Duration
}

// decide draws one command's fate. Async callers pass async=true so stalls
// can apply. Caller must not hold d.mu.
func (d *FaultDisk) decide(write bool, lba, n int, async bool) verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Commands++
	if d.plan.DeathAfter > 0 && d.stats.Commands > d.plan.DeathAfter {
		d.dead = true
	}
	if d.dead {
		d.stats.DeadFails++
		return verdict{err: ErrDeviceDead}
	}
	var v verdict
	if d.plan.PLatency > 0 && d.rng.Float64() < d.plan.PLatency {
		d.stats.Latency++
		v.latency = d.plan.LatencySpike
	}
	// Persistent bad sectors dominate everything below: the media is gone.
	for b := lba; b < lba+n; b++ {
		if d.bad[b] {
			v.err = ErrBadSector
			return v
		}
	}
	// An open transient burst at this start LBA keeps failing until spent.
	if left, ok := d.transient[lba]; ok {
		if left <= 1 {
			delete(d.transient, lba)
		} else {
			d.transient[lba] = left - 1
			d.stats.Transient++
			v.err = ErrSDInjected
		}
		return v
	}
	switch {
	case async && d.plan.PStall > 0 && d.rng.Float64() < d.plan.PStall:
		d.stats.Stalls++
		v.stall = true
	case d.plan.PTransient > 0 && d.rng.Float64() < d.plan.PTransient:
		// Burst length counts this failure; the map holds what remains.
		if burst := 1 + d.rng.Intn(d.plan.TransientMax); burst > 1 {
			d.transient[lba] = burst
		}
		d.stats.Transient++
		v.err = ErrSDInjected
	case write && d.plan.PBadSector > 0 && d.rng.Float64() < d.plan.PBadSector:
		d.bad[lba+d.rng.Intn(n)] = true
		d.stats.BadSector++
		v.err = ErrBadSector
	case write && n > 1 && d.plan.PTorn > 0 && d.rng.Float64() < d.plan.PTorn:
		d.stats.Torn++
		v.tornN = 1 + d.rng.Intn(n-1)
		v.err = ErrSDInjected
	}
	return v
}

// apply performs the decided IO against the backing store.
func (d *FaultDisk) apply(v verdict, write bool, lba, n int, buf []byte) error {
	if v.latency > 0 {
		time.Sleep(v.latency)
	}
	if v.err != nil {
		if v.tornN > 0 {
			// Torn write: the prefix lands on media, the command fails.
			bs := d.dev.BlockSize()
			if werr := d.dev.WriteBlocks(lba, v.tornN, buf[:v.tornN*bs]); werr != nil {
				return werr
			}
		}
		return v.err
	}
	if write {
		return d.dev.WriteBlocks(lba, n, buf)
	}
	return d.dev.ReadBlocks(lba, n, buf)
}

// ReadBlocks implements the sync device face with fault injection.
func (d *FaultDisk) ReadBlocks(lba, n int, dst []byte) error {
	return d.apply(d.decide(false, lba, n, false), false, lba, n, dst)
}

// WriteBlocks implements the sync device face with fault injection.
func (d *FaultDisk) WriteBlocks(lba, n int, src []byte) error {
	return d.apply(d.decide(true, lba, n, false), true, lba, n, src)
}

// --- split submit/completion halves (async request-queue face) ---

// submitAsync is both async halves: decide the fate now (so fault order is
// submission order, deterministic), run the transfer in the background,
// queue the completion and fire the notifier. A stalled command never
// completes — exactly the hang the queue's command timeout must break.
func (d *FaultDisk) submitAsync(tag uint64, write bool, lba, n int, buf []byte) error {
	if lba < 0 || n <= 0 || lba+n > d.dev.Blocks() {
		return ErrSDRange
	}
	d.mu.Lock()
	if d.dead {
		d.stats.Commands++
		d.stats.DeadFails++
		d.mu.Unlock()
		return ErrDeviceDead
	}
	d.mu.Unlock()
	v := d.decide(write, lba, n, true)
	if v.stall {
		return nil
	}
	go func() {
		err := d.apply(v, write, lba, n, buf)
		d.mu.Lock()
		d.completions = append(d.completions, sdCompletion{tag: tag, err: err})
		fn := d.notify
		d.mu.Unlock()
		if fn != nil {
			fn()
		}
	}()
	return nil
}

// SubmitRead implements the async face (blkq.AsyncBackend shape).
func (d *FaultDisk) SubmitRead(tag uint64, lba, n int, dst []byte) error {
	return d.submitAsync(tag, false, lba, n, dst)
}

// SubmitWrite implements the async face.
func (d *FaultDisk) SubmitWrite(tag uint64, lba, n int, src []byte) error {
	return d.submitAsync(tag, true, lba, n, src)
}

// PopCompletion implements the async face, FIFO like the SD controller.
func (d *FaultDisk) PopCompletion() (tag uint64, err error, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.completions) == 0 {
		return 0, nil, false
	}
	c := d.completions[0]
	d.completions = d.completions[1:]
	return c.tag, c.err, true
}
