package hw

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainNIC collects frames from n's RX ring until want frames arrived or
// the deadline passes, waking on the notify hook.
func drainNIC(t *testing.T, n *NIC, want int, deadline time.Duration) [][]byte {
	t.Helper()
	var got [][]byte
	stop := time.Now().Add(deadline)
	for len(got) < want {
		if f, ok := n.PopRX(); ok {
			got = append(got, f)
			continue
		}
		if time.Now().After(stop) {
			t.Fatalf("drained %d/%d frames before deadline", len(got), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return got
}

func TestNICLinkDeliversFIFO(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.SubmitTX(uint64(i), []byte(fmt.Sprintf("frame-%04d", i))); err != nil {
			t.Fatalf("SubmitTX(%d): %v", i, err)
		}
	}
	got := drainNIC(t, b, n, 5*time.Second)
	for i, f := range got {
		if want := fmt.Sprintf("frame-%04d", i); string(f) != want {
			t.Fatalf("frame %d = %q, want %q (FIFO violated)", i, f, want)
		}
	}

	// Every TX descriptor completes without error.
	comps := 0
	deadline := time.Now().Add(5 * time.Second)
	for comps < n {
		if _, err, ok := a.PopTX(); ok {
			if err != nil {
				t.Fatalf("TX completion error: %v", err)
			}
			comps++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d/%d TX completions", comps, n)
		}
		time.Sleep(100 * time.Microsecond)
	}

	as, bs := a.Stats(), b.Stats()
	if as.TxFrames != n || bs.RxFrames != n || bs.RxDrops != 0 {
		t.Fatalf("stats: tx=%d rx=%d drops=%d, want %d/%d/0", as.TxFrames, bs.RxFrames, bs.RxDrops, n, n)
	}
}

func TestNICRaisesIRQOnActivity(t *testing.T) {
	ic := NewIRQController(1)
	var mu sync.Mutex
	var events []string
	a, b := NewLink("eth0", "peer0", ic, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	ic.Register(IRQNIC, 0, func(l IRQLine, _ int) {
		mu.Lock()
		events = append(events, l.String())
		mu.Unlock()
	})
	if !ic.Routed(IRQNIC) {
		t.Fatal("Routed(IRQNIC) = false after Register")
	}

	if err := a.SubmitTX(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	drainNIC(t, b, 1, time.Second) // wire delivered to peer
	// a's completion must have raised IRQNIC at least once.
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no IRQNIC raised for TX completion")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, _, ok := a.PopTX(); !ok {
		t.Fatal("no TX completion queued after IRQ")
	}
}

func TestNICNotifyHookFiresWithoutController(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	fired := make(chan struct{}, 16)
	b.SetNotify(func() { fired <- struct{}{} })
	if err := a.SubmitTX(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("notify hook never fired on RX delivery")
	}
}

func TestNICSubmitErrors(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer b.Close()

	if err := a.SubmitTX(0, make([]byte, NICMTU+1)); err != ErrNICFrameTooBig {
		t.Fatalf("oversize frame: %v, want ErrNICFrameTooBig", err)
	}
	a.Close()
	if err := a.SubmitTX(0, []byte("x")); err != ErrNICDown {
		t.Fatalf("submit after close: %v, want ErrNICDown", err)
	}
}

func TestNICTxRingBounded(t *testing.T) {
	// Slow wire: 1 byte frames at 10 bytes/sec never finish serializing
	// inside the test, so descriptors pile up until the ring refuses.
	a, b := NewLink("a", "b", nil, nil, LinkConfig{BandwidthAB: 10})
	defer a.Close()
	defer b.Close()
	full := false
	for i := 0; i < NICTxRing+8; i++ {
		if err := a.SubmitTX(uint64(i), []byte{1}); err == ErrNICTxRingFull {
			full = true
			break
		} else if err != nil {
			t.Fatalf("SubmitTX: %v", err)
		}
	}
	if !full {
		t.Fatalf("submitted %d frames on a stalled wire without ErrNICTxRingFull", NICTxRing+8)
	}
}

func TestNICLinkLatency(t *testing.T) {
	const lat = 20 * time.Millisecond
	a, b := NewLink("a", "b", nil, nil, LinkConfig{LatencyAB: lat})
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.SubmitTX(0, []byte("timed")); err != nil {
		t.Fatal(err)
	}
	drainNIC(t, b, 1, 5*time.Second)
	if d := time.Since(start); d < lat {
		t.Fatalf("frame arrived after %v, latency floor is %v", d, lat)
	}
}

func TestNICLinkBandwidthSerializes(t *testing.T) {
	// 1000-byte frame at 100 KB/s serializes in 10ms; two frames ≥ 20ms.
	a, b := NewLink("a", "b", nil, nil, LinkConfig{BandwidthAB: 100_000})
	defer a.Close()
	defer b.Close()
	start := time.Now()
	frame := make([]byte, 1000)
	if err := a.SubmitTX(0, frame); err != nil {
		t.Fatal(err)
	}
	if err := a.SubmitTX(1, append([]byte(nil), frame...)); err != nil {
		t.Fatal(err)
	}
	drainNIC(t, b, 2, 5*time.Second)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("two 1000B frames at 100KB/s arrived in %v, want >= 20ms", d)
	}
}

func TestNICCloseFailsInflightTX(t *testing.T) {
	// Stalled wire, then close: the queued descriptor must complete with
	// ErrNICDown rather than hang forever.
	a, b := NewLink("a", "b", nil, nil, LinkConfig{BandwidthAB: 1})
	defer b.Close()
	if err := a.SubmitTX(7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tag, err, ok := a.PopTX(); ok {
			// The descriptor serializing on the wire may still complete
			// successfully; only queued-behind ones fail. Either way it
			// must COMPLETE.
			if tag != 7 {
				t.Fatalf("completion tag = %d, want 7", tag)
			}
			_ = err
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("TX descriptor never completed after Close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNICRxOverflowDrops(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	const extra = 64
	for i := 0; i < NICRxRing+extra; i++ {
		for {
			err := a.SubmitTX(uint64(i), []byte{byte(i)})
			if err == nil {
				break
			}
			if err != ErrNICTxRingFull {
				t.Fatalf("SubmitTX: %v", err)
			}
			for { // drain completions to free descriptors
				if _, _, ok := a.PopTX(); !ok {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := b.Stats()
		if s.RxFrames+s.RxDrops == NICRxRing+extra {
			if s.RxDrops == 0 {
				t.Fatal("no RX drops despite overflowing the ring")
			}
			if b.RxQueued() > NICRxRing {
				t.Fatalf("RX ring holds %d frames, bound is %d", b.RxQueued(), NICRxRing)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wire never finished: rx=%d drops=%d", s.RxFrames, s.RxDrops)
		}
		time.Sleep(time.Millisecond)
	}
}

// --- NetFaultPlan ---

func TestNetFaultDropAndDup(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	a.SetFaults(NetFaultPlan{Seed: 42, PDrop: 0.2, PDup: 0.2})

	const n = 500
	for i := 0; i < n; i++ {
		for {
			if err := a.SubmitTX(uint64(i), []byte{byte(i), byte(i >> 8)}); err == nil {
				break
			}
			for {
				if _, _, ok := a.PopTX(); !ok {
					break
				}
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	// Wait for the fault layer to have judged every frame.
	deadline := time.Now().Add(10 * time.Second)
	var fs NetFaultStats
	for {
		fs = a.FaultStats()
		if fs.Frames == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault layer saw %d/%d frames", fs.Frames, n)
		}
		time.Sleep(time.Millisecond)
	}
	if fs.Drops == 0 || fs.Dups == 0 {
		t.Fatalf("seed 42 with p=0.2 injected drops=%d dups=%d over %d frames", fs.Drops, fs.Dups, n)
	}
	// Delivered = sent - drops + dups (ring is large enough not to drop).
	want := n - fs.Drops + fs.Dups
	deadline = time.Now().Add(10 * time.Second)
	for {
		if got := int(b.Stats().RxFrames); got == want {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("delivered %d frames, want %d (drops=%d dups=%d)", got, want, fs.Drops, fs.Dups)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNetFaultDeterministicReplay(t *testing.T) {
	run := func() NetFaultStats {
		a, b := NewLink("a", "b", nil, nil, LinkConfig{})
		defer a.Close()
		defer b.Close()
		a.SetFaults(NetFaultPlan{Seed: 7, PDrop: 0.1, PDup: 0.1, PReorder: 0.1, PLatency: 0.05, LatencySpike: time.Microsecond})
		for i := 0; i < 300; i++ {
			for {
				if err := a.SubmitTX(uint64(i), []byte{byte(i)}); err == nil {
					break
				}
				for {
					if _, _, ok := a.PopTX(); !ok {
						break
					}
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for a.FaultStats().Frames < 300 {
			if time.Now().After(deadline) {
				t.Fatalf("fault layer saw %d/300", a.FaultStats().Frames)
			}
			time.Sleep(time.Millisecond)
		}
		return a.FaultStats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed, different schedules:\n  %+v\n  %+v", s1, s2)
	}
	if s1.Drops == 0 && s1.Dups == 0 && s1.Reorders == 0 {
		t.Fatalf("seed 7 injected nothing: %+v", s1)
	}
}

func TestNetFaultReorderActuallyReorders(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	a.SetFaults(NetFaultPlan{Seed: 3, PReorder: 0.15, ReorderWindow: 3})

	const n = 400
	for i := 0; i < n; i++ {
		for {
			if err := a.SubmitTX(uint64(i), []byte{byte(i), byte(i >> 8)}); err == nil {
				break
			}
			for {
				if _, _, ok := a.PopTX(); !ok {
					break
				}
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	got := drainNIC(t, b, n, 10*time.Second)
	outOfOrder := 0
	prev := -1
	for _, f := range got {
		v := int(f[0]) | int(f[1])<<8
		if v < prev {
			outOfOrder++
		} else {
			prev = v
		}
	}
	if fs := a.FaultStats(); fs.Reorders == 0 {
		t.Fatalf("seed 3 held no frames: %+v", fs)
	} else if outOfOrder == 0 {
		t.Fatalf("%d holds but delivery order was strictly FIFO", fs.Reorders)
	}
}

func TestNetFaultReorderFlushNeverStarves(t *testing.T) {
	// PReorder=1 holds the very first frame; with no follow-up traffic
	// only the flush timer can release it.
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	a.SetFaults(NetFaultPlan{Seed: 1, PReorder: 1})
	if err := a.SubmitTX(0, []byte("held")); err != nil {
		t.Fatal(err)
	}
	got := drainNIC(t, b, 1, 5*time.Second)
	if !bytes.Equal(got[0], []byte("held")) {
		t.Fatalf("flushed frame = %q", got[0])
	}
}

func TestNetFaultLatencySpikeDelaysWithoutError(t *testing.T) {
	a, b := NewLink("a", "b", nil, nil, LinkConfig{})
	defer a.Close()
	defer b.Close()
	a.SetFaults(NetFaultPlan{Seed: 9, PLatency: 1, LatencySpike: 15 * time.Millisecond})
	start := time.Now()
	if err := a.SubmitTX(0, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	drainNIC(t, b, 1, 5*time.Second)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("spiked frame arrived in %v, want >= 15ms", d)
	}
	// The descriptor still completed cleanly: spikes are not errors.
	deadline := time.Now().Add(time.Second)
	for {
		if _, err, ok := a.PopTX(); ok {
			if err != nil {
				t.Fatalf("latency spike surfaced error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no TX completion")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// --- IRQ line coverage (fail-loudly satellite) ---

// TestIRQLineStringExhaustive walks every discrete line below the
// generic-timer base: each must stringify to a real name. A new line
// added without a String() case falls through to the "irq%d" default and
// fails here — the compile-time-ish guard this simulated world can have.
func TestIRQLineStringExhaustive(t *testing.T) {
	for l := IRQLine(0); l < irqGenericTimerBase; l++ {
		s := l.String()
		if strings.HasPrefix(s, "irq") {
			t.Errorf("IRQLine(%d) stringifies as %q: missing String() case", int(l), s)
		}
	}
	if got := IRQNIC.String(); got != "nic" {
		t.Fatalf("IRQNIC.String() = %q, want \"nic\"", got)
	}
	if got := GenericTimerLine(2).String(); got != "gtimer2" {
		t.Fatalf("GenericTimerLine(2).String() = %q", got)
	}
}

func TestIRQRoutedReportsHandlerPresence(t *testing.T) {
	ic := NewIRQController(1)
	if ic.Routed(IRQNIC) {
		t.Fatal("Routed true before Register")
	}
	ic.Register(IRQNIC, 0, func(IRQLine, int) {})
	if !ic.Routed(IRQNIC) {
		t.Fatal("Routed false after Register")
	}
	ic.Disable(IRQNIC)
	if ic.Routed(IRQNIC) {
		t.Fatal("Routed true after Disable")
	}
}
