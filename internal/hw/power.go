package hw

import (
	"sync"
	"time"
)

// PowerModel estimates board power from device activity counters, standing
// in for the metered USB supply of Figure 12. Coefficients are calibrated
// so the paper's envelope reproduces: ~3 W at an idle shell prompt (WFI most
// of the time), rising toward ~4 W under DOOM-class CPU + display load.
// It is a model, not a measurement; EXPERIMENTS.md says so.
type PowerModel struct {
	mu    sync.Mutex
	start time.Time

	// Integrated busy time per core, reported by the scheduler.
	busy []time.Duration
}

// Power coefficients (watts). The Pi3 board floor covers SoC standby, PMIC
// and SDRAM refresh; the HAT floor covers the 3.5" backlight at its default
// level, which dominates the HAT's draw.
const (
	PowerBoardIdle   = 1.25      // Pi3 floor with all cores in WFI
	PowerCoreActive  = 0.55      // each fully-busy Cortex-A53 core
	PowerHATDisplay  = 1.45      // backlight + panel logic
	PowerHATAmp      = 0.15      // speaker amp when samples flow
	PowerSDActive    = 0.20      // controller during transfers
	BatteryWattHours = 3.0 * 3.7 // one 18650: 3000 mAh at 3.7 V
)

// NewPowerModel starts integrating at "power on".
func NewPowerModel(ncores int) *PowerModel {
	return &PowerModel{start: time.Now(), busy: make([]time.Duration, ncores)}
}

// AddBusy credits busy time to a core; the scheduler calls this when a task
// completes a timeslice.
func (p *PowerModel) AddBusy(core int, d time.Duration) {
	p.mu.Lock()
	p.busy[core] += d
	p.mu.Unlock()
}

// Utilization returns each core's busy fraction since power-on.
func (p *PowerModel) Utilization() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := time.Since(p.start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	out := make([]float64, len(p.busy))
	for i, b := range p.busy {
		u := float64(b) / float64(elapsed)
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// Reading is one power-model sample.
type Reading struct {
	PiWatts      float64 // SoC + board
	HATWatts     float64 // display + amp
	TotalWatts   float64
	BatteryHours float64 // estimated life on one 18650
}

// Sample computes a reading given current activity. audioActive and
// sdActive report whether those devices moved data during the sampling
// window; displayOn is true whenever the framebuffer has been allocated.
func (p *PowerModel) Sample(displayOn, audioActive, sdActive bool) Reading {
	var r Reading
	r.PiWatts = PowerBoardIdle
	for _, u := range p.Utilization() {
		r.PiWatts += PowerCoreActive * u
	}
	if sdActive {
		r.PiWatts += PowerSDActive
	}
	if displayOn {
		r.HATWatts += PowerHATDisplay
	}
	if audioActive {
		r.HATWatts += PowerHATAmp
	}
	r.TotalWatts = r.PiWatts + r.HATWatts
	r.BatteryHours = BatteryWattHours / r.TotalWatts
	return r
}
