package hw

import (
	"fmt"
	"hash/crc64"
	"sync"
)

// Framebuffer geometry defaults match the Game HAT's 640×480 panel.
const (
	DefaultFBWidth  = 640
	DefaultFBHeight = 480
	FBBytesPerPixel = 4 // XRGB8888
)

// Mailbox models the VideoCore property mailbox: the only way Proto's kernel
// obtains a framebuffer. AllocFramebuffer carves the buffer out of the top
// of physical memory at a firmware-chosen (i.e. arbitrary-looking) address —
// the paper notes GPU framebuffers land at arbitrary addresses on real
// hardware, unlike QEMU.
type Mailbox struct {
	mem *Mem
	mu  sync.Mutex
	fb  *Framebuffer
}

// NewMailbox returns the machine's mailbox.
func NewMailbox(mem *Mem) *Mailbox { return &Mailbox{mem: mem} }

// AllocFramebuffer asks the "GPU" for a w×h 32bpp framebuffer and returns
// it. Repeated calls return the same framebuffer (the GPU owns one panel).
func (mb *Mailbox) AllocFramebuffer(w, h int) (*Framebuffer, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.fb != nil {
		if mb.fb.width != w || mb.fb.height != h {
			return nil, fmt.Errorf("mailbox: framebuffer already allocated at %dx%d", mb.fb.width, mb.fb.height)
		}
		return mb.fb, nil
	}
	size := w * h * FBBytesPerPixel
	size = (size + FrameSize - 1) / FrameSize * FrameSize
	// Firmware places the buffer near the top of DRAM, at an odd offset so
	// nothing can assume a round number.
	base := mb.mem.Size() - size - 3*FrameSize
	if base < 0 {
		return nil, fmt.Errorf("mailbox: %d bytes of DRAM cannot hold a %dx%d framebuffer", mb.mem.Size(), w, h)
	}
	mb.fb = &Framebuffer{
		mem:    mb.mem,
		base:   base,
		width:  w,
		height: h,
		pitch:  w * FBBytesPerPixel,
		front:  make([]byte, w*h*FBBytesPerPixel),
	}
	return mb.fb, nil
}

// Framebuffer models the HDMI scan-out buffer *including the CPU cache
// effect that Proto's Prototype 3 teaches*: CPU stores land in "cached"
// physical memory and the display only sees them after an explicit cache
// flush. Skipping the flush leaves stale pixels on screen (the paper's
// gradually-disappearing artifacts); tests assert that staleness.
type Framebuffer struct {
	mem    *Mem
	base   int
	width  int
	height int
	pitch  int

	mu          sync.Mutex
	front       []byte // what the panel shows
	flushes     int
	flushBytes  int
	presentGen  uint64
	staleAtLast int
}

// Base returns the physical address of the framebuffer.
func (fb *Framebuffer) Base() int { return fb.base }

// Width, Height, Pitch describe the geometry.
func (fb *Framebuffer) Width() int  { return fb.width }
func (fb *Framebuffer) Height() int { return fb.height }
func (fb *Framebuffer) Pitch() int  { return fb.pitch }

// Size returns the byte length of the pixel region.
func (fb *Framebuffer) Size() int { return fb.pitch * fb.height }

// Mem returns the "cached" pixel memory the CPU writes. It aliases physical
// DRAM; the panel does not see it until FlushRegion.
func (fb *Framebuffer) Mem() []byte { return fb.mem.Bytes(fb.base, fb.Size()) }

// FlushRegion models a CPU cache clean over [off, off+n) of the pixel
// region, making those bytes visible on the panel.
func (fb *Framebuffer) FlushRegion(off, n int) {
	if off < 0 || n < 0 || off+n > fb.Size() {
		panic(fmt.Sprintf("hw: fb flush [%d,%d) outside %d-byte framebuffer", off, off+n, fb.Size()))
	}
	src := fb.mem.Bytes(fb.base+off, n)
	fb.mu.Lock()
	copy(fb.front[off:off+n], src)
	fb.flushes++
	fb.flushBytes += n
	fb.presentGen++
	fb.mu.Unlock()
}

// Flush cleans the whole framebuffer.
func (fb *Framebuffer) Flush() { fb.FlushRegion(0, fb.Size()) }

// Snapshot copies what the panel currently shows.
func (fb *Framebuffer) Snapshot() []byte {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	out := make([]byte, len(fb.front))
	copy(out, fb.front)
	return out
}

// PixelAt returns the displayed XRGB pixel at (x, y).
func (fb *Framebuffer) PixelAt(x, y int) uint32 {
	if x < 0 || y < 0 || x >= fb.width || y >= fb.height {
		panic(fmt.Sprintf("hw: pixel (%d,%d) outside %dx%d panel", x, y, fb.width, fb.height))
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	o := y*fb.pitch + x*FBBytesPerPixel
	return uint32(fb.front[o]) | uint32(fb.front[o+1])<<8 | uint32(fb.front[o+2])<<16 | uint32(fb.front[o+3])<<24
}

// StaleBytes counts bytes whose cached (CPU) value differs from what the
// panel shows — the visible artifact of a missing cache flush.
func (fb *Framebuffer) StaleBytes() int {
	cached := fb.mem.Bytes(fb.base, fb.Size())
	fb.mu.Lock()
	defer fb.mu.Unlock()
	stale := 0
	for i, b := range cached {
		if fb.front[i] != b {
			stale++
		}
	}
	return stale
}

// Checksum hashes the displayed image (for golden tests).
func (fb *Framebuffer) Checksum() uint64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return crc64.Checksum(fb.front, crc64Table)
}

// Stats reports flush activity for the power model and latency breakdowns.
func (fb *Framebuffer) Stats() (flushes, flushBytes int) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.flushes, fb.flushBytes
}

// PresentGen is a monotonically increasing count of flushes, used by tests
// to wait for "a new frame was presented".
func (fb *Framebuffer) PresentGen() uint64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.presentGen
}

var crc64Table = crc64.MakeTable(crc64.ECMA)
