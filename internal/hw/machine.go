package hw

import (
	"time"
)

// MachineConfig sizes the simulated board.
type MachineConfig struct {
	Cores        int // 1–4, like the Pi3's Cortex-A53 cluster
	MemBytes     int // DRAM size (paper: 1 GB; tests use less)
	SDBlocks     int // SD card capacity in 512 B blocks (0 = no card)
	FBWidth      int
	FBHeight     int
	ScrambleSeed uint64 // non-zero: fill DRAM with garbage at power-on

	// EnableNIC installs a network interface pair: Machine.NIC is wired
	// to the board's IRQ controller (IRQNIC), and Machine.PeerNIC is the
	// other end of the cross-wired link — the "rest of the network",
	// driven by whoever holds it (a host-side peer stack in tests and
	// workloads) through SetNotify.
	EnableNIC bool
	// NICLink shapes the link (zero value: instant, unlimited).
	NICLink LinkConfig
}

// DefaultConfig is a Pi3-like board scaled for in-process testing: 4 cores,
// 64 MB DRAM, a 32 MB SD card, and the Game HAT panel.
func DefaultConfig() MachineConfig {
	return MachineConfig{
		Cores:        4,
		MemBytes:     64 << 20,
		SDBlocks:     (32 << 20) / SDBlockSize,
		FBWidth:      DefaultFBWidth,
		FBHeight:     DefaultFBHeight,
		ScrambleSeed: 0xDEADBEEFCAFE,
	}
}

// Machine bundles the whole board: everything Proto's kernel drives.
type Machine struct {
	Cfg     MachineConfig
	Mem     *Mem
	IRQ     *IRQController
	UART    *UART
	SysTmr  *SystemTimer
	GTimers []*GenericTimer
	Mailbox *Mailbox
	GPIO    *GPIO
	PWM     *PWMAudio
	DMA     *DMAEngine
	SD      *SDCard
	USB     *USBController
	Power   *PowerModel
	NIC     *NIC // board side of the link (IRQNIC), nil unless EnableNIC
	PeerNIC *NIC // far side of the link, notify-driven, nil unless EnableNIC

	poweredOn time.Time
}

// NewMachine powers on a board.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.Cores < 1 || cfg.Cores > 8 {
		panic("hw: core count must be 1..8")
	}
	m := &Machine{Cfg: cfg, poweredOn: time.Now()}
	m.Mem = NewMem(cfg.MemBytes)
	if cfg.ScrambleSeed != 0 {
		m.Mem.Scramble(cfg.ScrambleSeed)
	}
	m.IRQ = NewIRQController(cfg.Cores)
	m.UART = NewUART(m.IRQ)
	m.SysTmr = NewSystemTimer()
	for c := 0; c < cfg.Cores; c++ {
		m.GTimers = append(m.GTimers, NewGenericTimer(c, m.IRQ))
	}
	m.Mailbox = NewMailbox(m.Mem)
	m.GPIO = NewGPIO(m.IRQ)
	m.PWM = NewPWMAudio(DefaultSampleRate, DefaultSampleRate/2)
	m.DMA = NewDMAEngine(m.Mem, m.IRQ)
	if cfg.SDBlocks > 0 {
		m.SD = NewSDCard(cfg.SDBlocks, m.IRQ)
	}
	m.USB = NewUSBController(m.IRQ)
	m.Power = NewPowerModel(cfg.Cores)
	if cfg.EnableNIC {
		m.NIC, m.PeerNIC = NewLink("eth0", "peer0", m.IRQ, nil, cfg.NICLink)
	}
	return m
}

// Cores returns the CPU core count.
func (m *Machine) Cores() int { return m.Cfg.Cores }

// Uptime is wall time since power-on.
func (m *Machine) Uptime() time.Duration { return time.Since(m.poweredOn) }

// Shutdown stops device goroutines (timers, audio).
func (m *Machine) Shutdown() {
	for _, t := range m.GTimers {
		t.Stop()
	}
	m.PWM.Stop()
	if m.NIC != nil {
		m.NIC.Close()
		m.PeerNIC.Close()
	}
}
