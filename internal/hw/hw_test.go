package hw

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMemRoundsUpToFrames(t *testing.T) {
	m := NewMem(FrameSize + 1)
	if m.Size() != 2*FrameSize {
		t.Fatalf("size = %d, want %d", m.Size(), 2*FrameSize)
	}
	if m.Frames() != 2 {
		t.Fatalf("frames = %d, want 2", m.Frames())
	}
}

func TestMemBytesAliases(t *testing.T) {
	m := NewMem(4 * FrameSize)
	a := m.Bytes(100, 8)
	a[0] = 0xAB
	b := m.Bytes(100, 1)
	if b[0] != 0xAB {
		t.Fatal("Bytes does not alias physical memory")
	}
}

func TestMemOutOfRangePanics(t *testing.T) {
	m := NewMem(FrameSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range physical access")
		}
	}()
	m.Bytes(FrameSize-1, 2)
}

func TestMemScrambleNonZero(t *testing.T) {
	m := NewMem(FrameSize)
	m.Scramble(42)
	zero := 0
	for _, b := range m.Bytes(0, FrameSize) {
		if b == 0 {
			zero++
		}
	}
	if zero > FrameSize/8 {
		t.Fatalf("scrambled memory suspiciously zero-heavy: %d/%d", zero, FrameSize)
	}
}

func TestMemMoveVariantsAgree(t *testing.T) {
	check := func(seed uint64, dstOff, srcOff, n uint16) bool {
		m1 := NewMem(8 * FrameSize)
		m2 := NewMem(8 * FrameSize)
		m1.Scramble(seed | 1)
		copy(m2.Bytes(0, m2.Size()), m1.Bytes(0, m1.Size()))
		// Keep both regions inside their own 4-frame halves.
		d := int(dstOff) % (3 * FrameSize)
		s := int(srcOff)%(3*FrameSize) + 4*FrameSize
		l := int(n) % FrameSize
		m1.MemMove(d, s, l)
		m2.MemMoveSlow(d, s, l)
		return bytes.Equal(m1.Bytes(0, m1.Size()), m2.Bytes(0, m2.Size()))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIRQDeliveryAndRouting(t *testing.T) {
	ic := NewIRQController(2)
	var gotLine IRQLine
	var gotCore int
	ic.Register(IRQUSB, 1, func(l IRQLine, c int) { gotLine, gotCore = l, c })
	ic.Raise(IRQUSB)
	if gotLine != IRQUSB || gotCore != 1 {
		t.Fatalf("delivered (%v, core %d), want (usb, core 1)", gotLine, gotCore)
	}
	if ic.Count(IRQUSB) != 1 {
		t.Fatalf("count = %d, want 1", ic.Count(IRQUSB))
	}
}

func TestIRQMaskPendsAndUnmaskDrains(t *testing.T) {
	ic := NewIRQController(1)
	var fired atomic.Int32
	ic.Register(IRQDMA, 0, func(IRQLine, int) { fired.Add(1) })
	ic.Mask(0)
	ic.Raise(IRQDMA)
	ic.Raise(IRQDMA)
	if fired.Load() != 0 {
		t.Fatal("IRQ delivered while masked")
	}
	if ic.PendingLen(0) != 2 {
		t.Fatalf("pending = %d, want 2", ic.PendingLen(0))
	}
	ic.Unmask(0)
	if fired.Load() != 2 {
		t.Fatalf("after unmask fired = %d, want 2", fired.Load())
	}
}

func TestIRQDisabledDropped(t *testing.T) {
	ic := NewIRQController(1)
	fired := false
	ic.Register(IRQGPIO, 0, func(IRQLine, int) { fired = true })
	ic.Disable(IRQGPIO)
	ic.Raise(IRQGPIO)
	if fired {
		t.Fatal("disabled line delivered")
	}
}

func TestFIQBypassesMaskAndRotates(t *testing.T) {
	ic := NewIRQController(4)
	var mu sync.Mutex
	var cores []int
	ic.Register(FIQPanic, 0, func(_ IRQLine, c int) {
		mu.Lock()
		cores = append(cores, c)
		mu.Unlock()
	})
	for c := 0; c < 4; c++ {
		ic.Mask(c) // simulate a kernel deadlocked with IRQs off everywhere
	}
	for i := 0; i < 4; i++ {
		ic.Raise(FIQPanic)
	}
	seen := map[int]bool{}
	for _, c := range cores {
		seen[c] = true
	}
	if len(cores) != 4 || len(seen) != 4 {
		t.Fatalf("FIQ cores = %v, want one delivery on each of 4 cores", cores)
	}
}

func TestUARTSynchronousWriteAndTranscript(t *testing.T) {
	ic := NewIRQController(1)
	u := NewUART(ic)
	u.TxByte('h')
	u.Write([]byte("i\n"))
	if got := u.Transcript(); got != "hi\n" {
		t.Fatalf("transcript = %q", got)
	}
	if u.TxBytes() != 3 {
		t.Fatalf("txbytes = %d, want 3", u.TxBytes())
	}
}

func TestUARTPolledRead(t *testing.T) {
	ic := NewIRQController(1)
	u := NewUART(ic)
	if _, ok := u.RxByte(); ok {
		t.Fatal("read from empty FIFO succeeded")
	}
	u.Feed([]byte("ab"))
	b1, _ := u.RxByte()
	b2, _ := u.RxByte()
	if b1 != 'a' || b2 != 'b' {
		t.Fatalf("read %c%c, want ab", b1, b2)
	}
}

func TestUARTIRQMode(t *testing.T) {
	ic := NewIRQController(1)
	u := NewUART(ic)
	var raised atomic.Int32
	ic.Register(IRQUARTRx, 0, func(IRQLine, int) { raised.Add(1) })
	u.SetMode(UARTIRQRx)
	u.Feed([]byte("x"))
	if raised.Load() != 1 {
		t.Fatalf("rx irq = %d, want 1", raised.Load())
	}
}

func TestUARTFIFOOverflowDrops(t *testing.T) {
	ic := NewIRQController(1)
	u := NewUART(ic)
	big := make([]byte, uartRxFIFO+10)
	u.Feed(big)
	if u.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", u.Dropped())
	}
}

func TestGenericTimerFires(t *testing.T) {
	ic := NewIRQController(1)
	var ticks atomic.Int32
	ic.Register(GenericTimerLine(0), 0, func(IRQLine, int) { ticks.Add(1) })
	gt := NewGenericTimer(0, ic)
	gt.Start(time.Millisecond)
	defer gt.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks.Load() < 3 {
		t.Fatalf("timer fired %d times in 2s, want >= 3", ticks.Load())
	}
}

func TestSystemTimerMonotonic(t *testing.T) {
	st := NewSystemTimer()
	a := st.Ticks()
	time.Sleep(2 * time.Millisecond)
	b := st.Ticks()
	if b <= a {
		t.Fatalf("system timer not advancing: %d -> %d", a, b)
	}
}

func TestMailboxFramebufferAllocation(t *testing.T) {
	mem := NewMem(16 << 20)
	mb := NewMailbox(mem)
	fb, err := mb.AllocFramebuffer(320, 240)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Width() != 320 || fb.Height() != 240 || fb.Pitch() != 320*4 {
		t.Fatalf("geometry %dx%d pitch %d", fb.Width(), fb.Height(), fb.Pitch())
	}
	if fb.Base()%FrameSize == 0 {
		// Not required, but the base must be inside DRAM.
	}
	if fb.Base() < 0 || fb.Base()+fb.Size() > mem.Size() {
		t.Fatalf("fb [%d,%d) outside DRAM", fb.Base(), fb.Base()+fb.Size())
	}
	again, err := mb.AllocFramebuffer(320, 240)
	if err != nil || again != fb {
		t.Fatal("second allocation should return the same framebuffer")
	}
	if _, err := mb.AllocFramebuffer(640, 480); err == nil {
		t.Fatal("geometry change should fail")
	}
}

func TestMailboxTooSmallDRAM(t *testing.T) {
	mem := NewMem(2 * FrameSize)
	mb := NewMailbox(mem)
	if _, err := mb.AllocFramebuffer(1920, 1080); err == nil {
		t.Fatal("expected allocation failure in tiny DRAM")
	}
}

// TestFramebufferCacheArtifact is the Prototype 3 lesson: writes without a
// flush do not reach the panel.
func TestFramebufferCacheArtifact(t *testing.T) {
	mem := NewMem(16 << 20)
	mb := NewMailbox(mem)
	fb, err := mb.AllocFramebuffer(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	px := fb.Mem()
	for i := range px {
		px[i] = 0x55
	}
	if fb.StaleBytes() != fb.Size() {
		t.Fatalf("stale = %d, want all %d bytes", fb.StaleBytes(), fb.Size())
	}
	if got := fb.PixelAt(0, 0); got == 0x55555555 {
		t.Fatal("panel saw unflushed write")
	}
	fb.Flush()
	if fb.StaleBytes() != 0 {
		t.Fatalf("stale after flush = %d", fb.StaleBytes())
	}
	if got := fb.PixelAt(0, 0); got != 0x55555555 {
		t.Fatalf("pixel = %#x after flush", got)
	}
}

func TestFramebufferPartialFlush(t *testing.T) {
	mem := NewMem(16 << 20)
	mb := NewMailbox(mem)
	fb, _ := mb.AllocFramebuffer(16, 16)
	px := fb.Mem()
	for i := range px {
		px[i] = 0xFF
	}
	fb.FlushRegion(0, fb.Pitch()) // first row only
	if fb.PixelAt(0, 0) != 0xFFFFFFFF {
		t.Fatal("flushed row not visible")
	}
	if fb.PixelAt(0, 1) == 0xFFFFFFFF {
		t.Fatal("unflushed row visible")
	}
	if fb.StaleBytes() != fb.Size()-fb.Pitch() {
		t.Fatalf("stale = %d, want %d", fb.StaleBytes(), fb.Size()-fb.Pitch())
	}
}

func TestGPIOEdgesAndIRQ(t *testing.T) {
	ic := NewIRQController(1)
	g := NewGPIO(ic)
	var irqs atomic.Int32
	ic.Register(IRQGPIO, 0, func(IRQLine, int) { irqs.Add(1) })
	g.Press(PinA)
	g.Press(PinA) // no edge, no irq
	g.Release(PinA)
	if irqs.Load() != 2 {
		t.Fatalf("irqs = %d, want 2 (press + release)", irqs.Load())
	}
	evs := g.DrainEvents()
	if len(evs) != 2 || !evs[0].Pressed || evs[1].Pressed {
		t.Fatalf("events = %+v", evs)
	}
	if len(g.DrainEvents()) != 0 {
		t.Fatal("drain did not clear events")
	}
}

func TestGPIOPanicButtonIsFIQ(t *testing.T) {
	ic := NewIRQController(2)
	g := NewGPIO(ic)
	var fiq, irq atomic.Int32
	ic.Register(FIQPanic, 0, func(IRQLine, int) { fiq.Add(1) })
	ic.Register(IRQGPIO, 0, func(IRQLine, int) { irq.Add(1) })
	ic.Mask(0)
	ic.Mask(1)
	g.Press(PinPanic)
	if fiq.Load() != 1 {
		t.Fatalf("fiq = %d, want 1 even with all cores masked", fiq.Load())
	}
	if irq.Load() != 0 {
		t.Fatal("panic button must not use the ordinary GPIO IRQ")
	}
}

func TestPWMDMAPipeline(t *testing.T) {
	mem := NewMem(1 << 20)
	ic := NewIRQController(1)
	pwm := NewPWMAudio(22050, 22050)
	dma := NewDMAEngine(mem, ic)
	var done atomic.Int32
	ic.Register(IRQDMA, 0, func(IRQLine, int) { done.Add(1) })

	// Write a square wave into a physical buffer and DMA it out.
	const n = 2048
	buf := mem.Bytes(0x1000, n*2)
	for i := 0; i < n; i++ {
		s := int16(8000)
		if i%2 == 0 {
			s = -8000
		}
		buf[2*i] = byte(uint16(s))
		buf[2*i+1] = byte(uint16(s) >> 8)
	}
	pwm.Start()
	defer pwm.Stop()
	if !dma.TransferToPWM(pwm, 0x1000, n*2) {
		t.Fatal("transfer refused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for done.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if done.Load() != 1 {
		t.Fatal("DMA completion IRQ never fired")
	}
	// Let the output stage consume.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		consumed, _, energy := pwm.Stats()
		if consumed >= n && energy > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("PWM never consumed the DMA'd samples")
}

func TestDMASingleChannel(t *testing.T) {
	mem := NewMem(1 << 20)
	ic := NewIRQController(1)
	pwm := NewPWMAudio(8000, 64) // tiny FIFO so the first transfer lingers
	dma := NewDMAEngine(mem, ic)
	ic.Register(IRQDMA, 0, func(IRQLine, int) {})
	if !dma.TransferToPWM(pwm, 0, 4096) {
		t.Fatal("first transfer refused")
	}
	if dma.TransferToPWM(pwm, 0, 4096) {
		t.Fatal("second concurrent transfer should be refused")
	}
	pwm.Start()
	defer pwm.Stop()
}

func TestSDCardReadWriteRoundTrip(t *testing.T) {
	ic := NewIRQController(1)
	sd := NewSDCard(128, ic)
	sd.SetLatencyScale(0)
	src := make([]byte, 3*SDBlockSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := sd.WriteBlocks(5, 3, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 3*SDBlockSize)
	if err := sd.ReadBlocks(5, 3, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("read back differs")
	}
}

func TestSDCardRangeChecks(t *testing.T) {
	ic := NewIRQController(1)
	sd := NewSDCard(8, ic)
	sd.SetLatencyScale(0)
	buf := make([]byte, SDBlockSize)
	if err := sd.ReadBlocks(8, 1, buf); err != ErrSDRange {
		t.Fatalf("err = %v, want ErrSDRange", err)
	}
	if err := sd.ReadBlocks(-1, 1, buf); err != ErrSDRange {
		t.Fatalf("err = %v, want ErrSDRange", err)
	}
}

func TestSDCardWriteProtectAndInjection(t *testing.T) {
	ic := NewIRQController(1)
	sd := NewSDCard(8, ic)
	sd.SetLatencyScale(0)
	buf := make([]byte, SDBlockSize)
	sd.SetReadOnly(true)
	if err := sd.WriteBlocks(0, 1, buf); err == nil {
		t.Fatal("write to protected card succeeded")
	}
	sd.SetReadOnly(false)
	sd.InjectErrors(1)
	if err := sd.ReadBlocks(0, 1, buf); err != ErrSDInjected {
		t.Fatalf("err = %v, want injected", err)
	}
	if err := sd.ReadBlocks(0, 1, buf); err != nil {
		t.Fatalf("error injection should clear: %v", err)
	}
}

// TestSDRangeBeatsSingleBlock verifies the latency-model property the
// paper's bcache bypass exploits: reading N blocks as one range is much
// cheaper than N single-block commands.
func TestSDRangeBeatsSingleBlock(t *testing.T) {
	ic := NewIRQController(1)
	sd := NewSDCard(256, ic)
	sd.SetLatencyScale(0.25) // keep the test quick but timed
	const n = 64
	buf := make([]byte, n*SDBlockSize)

	start := time.Now()
	if err := sd.ReadBlocks(0, n, buf); err != nil {
		t.Fatal(err)
	}
	rangeT := time.Since(start)

	start = time.Now()
	for i := 0; i < n; i++ {
		if err := sd.ReadBlocks(i, 1, buf[:SDBlockSize]); err != nil {
			t.Fatal(err)
		}
	}
	singleT := time.Since(start)

	if singleT < rangeT*5/4 {
		t.Fatalf("single-block %v not meaningfully slower than range %v", singleT, rangeT)
	}
}

// TestSDAsyncSubmitCompletion exercises the split halves: Submit returns
// before the data lands, the completion carries the tag (and any media
// error), and IRQSD fires per command.
func TestSDAsyncSubmitCompletion(t *testing.T) {
	ic := NewIRQController(1)
	fired := make(chan IRQLine, 8)
	ic.Register(IRQSD, 0, func(l IRQLine, _ int) { fired <- l })
	sd := NewSDCard(64, ic)
	sd.SetLatencyScale(0.02)

	src := bytes.Repeat([]byte{0x7E}, SDBlockSize)
	if err := sd.SubmitWrite(42, 3, 1, src); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("no IRQSD for async write")
	}
	tag, err, ok := sd.PopCompletion()
	if !ok || tag != 42 || err != nil {
		t.Fatalf("completion = (%d, %v, %v), want (42, nil, true)", tag, err, ok)
	}
	dst := make([]byte, SDBlockSize)
	if err := sd.SubmitRead(43, 3, 1, dst); err != nil {
		t.Fatal(err)
	}
	<-fired
	if tag, err, ok := sd.PopCompletion(); !ok || tag != 43 || err != nil {
		t.Fatalf("read completion = (%d, %v, %v)", tag, err, ok)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("async round trip corrupted data")
	}
	// Bad descriptors are rejected at submit; media errors ride the
	// completion.
	if err := sd.SubmitRead(44, 64, 1, dst); err != ErrSDRange {
		t.Fatalf("bad-range submit = %v, want ErrSDRange", err)
	}
	sd.InjectErrors(1)
	if err := sd.SubmitWrite(45, 0, 1, src); err != nil {
		t.Fatal(err)
	}
	<-fired
	if _, err, _ := sd.PopCompletion(); err != ErrSDInjected {
		t.Fatalf("completion err = %v, want ErrSDInjected", err)
	}
}

// TestSDWaitAccountingSplitsPollAndDMA pins the power-model fix: polled
// PIO charges the busy-poll budget, DMA transfers (sync or async) charge
// the idle DMA budget — never the poll budget.
func TestSDWaitAccountingSplitsPollAndDMA(t *testing.T) {
	ic := NewIRQController(1)
	sd := NewSDCard(64, ic)
	sd.SetLatencyScale(0.01)
	buf := make([]byte, SDBlockSize)

	if err := sd.ReadBlocks(0, 1, buf); err != nil { // polled PIO
		t.Fatal(err)
	}
	poll1, dma1 := sd.WaitStats()
	if poll1 == 0 || dma1 != 0 {
		t.Fatalf("PIO read charged poll=%d dma=%d, want poll>0 dma=0", poll1, dma1)
	}

	sd.SetDMA(true)
	if err := sd.ReadBlocks(0, 1, buf); err != nil { // sync DMA
		t.Fatal(err)
	}
	poll2, dma2 := sd.WaitStats()
	if poll2 != poll1 {
		t.Fatalf("sync DMA grew the poll budget: %d -> %d", poll1, poll2)
	}
	if dma2 == 0 {
		t.Fatal("sync DMA charged no idle wait")
	}

	done := make(chan struct{})
	ic.Register(IRQSD, 0, func(IRQLine, int) {
		select {
		case done <- struct{}{}:
		default:
		}
	})
	if err := sd.SubmitRead(1, 0, 1, buf); err != nil { // async DMA
		t.Fatal(err)
	}
	<-done
	poll3, dma3 := sd.WaitStats()
	if poll3 != poll1 || dma3 <= dma2 {
		t.Fatalf("async DMA accounting: poll %d -> %d, dma %d -> %d", poll1, poll3, dma2, dma3)
	}
	// Stats' pollMicros column is the PIO-only figure.
	if _, _, _, pm := sd.Stats(); pm != poll1 {
		t.Fatalf("Stats pollMicros = %d, want %d", pm, poll1)
	}
}

func TestSDImageLoadDump(t *testing.T) {
	ic := NewIRQController(1)
	sd := NewSDCard(4, ic)
	sd.SetLatencyScale(0)
	img := make([]byte, 2*SDBlockSize)
	img[0], img[len(img)-1] = 0xA5, 0x5A
	if err := sd.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	dump := sd.DumpImage()
	if dump[0] != 0xA5 || dump[2*SDBlockSize-1] != 0x5A {
		t.Fatal("image content lost")
	}
	if err := sd.LoadImage(make([]byte, 5*SDBlockSize)); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestUSBEnumerationDance(t *testing.T) {
	ic := NewIRQController(1)
	c := NewUSBController(ic)
	if c.PortConnected() {
		t.Fatal("port connected before attach")
	}
	c.AttachKeyboard()
	if !c.PortConnected() {
		t.Fatal("port not connected after attach")
	}
	// GET_DESCRIPTOR(device) at address 0.
	dd, err := c.ControlTransfer(0, SetupPacket{Request: usbReqGetDescriptor, Value: usbDescDevice << 8, Length: 18})
	if err != nil || len(dd) != 18 || dd[1] != usbDescDevice {
		t.Fatalf("device descriptor: %v %v", dd, err)
	}
	// SET_ADDRESS(7), then talk at address 7.
	if _, err := c.ControlTransfer(0, SetupPacket{Request: usbReqSetAddress, Value: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ControlTransfer(0, SetupPacket{Request: usbReqGetDescriptor, Value: usbDescDevice << 8, Length: 18}); err == nil {
		t.Fatal("device still answering at address 0 after SET_ADDRESS")
	}
	cd, err := c.ControlTransfer(7, SetupPacket{Request: usbReqGetDescriptor, Value: usbDescConfig << 8, Length: 64})
	if err != nil || len(cd) != 34 {
		t.Fatalf("config descriptor: %d bytes, err %v", len(cd), err)
	}
	if cd[14] != 3 || cd[16] != 1 {
		t.Fatalf("interface class/protocol = %d/%d, want HID keyboard", cd[14], cd[16])
	}
	if _, err := c.ControlTransfer(7, SetupPacket{Request: usbReqSetConfig, Value: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestUSBKeyboardReportsAndModifiers(t *testing.T) {
	ic := NewIRQController(1)
	c := NewUSBController(ic)
	kbd := c.AttachKeyboard()
	var irqs atomic.Int32
	ic.Register(IRQUSB, 0, func(IRQLine, int) { irqs.Add(1) })
	// Configure at address 0 (default address works since we never moved it).
	if _, err := c.ControlTransfer(0, SetupPacket{Request: usbReqSetConfig, Value: 1}); err != nil {
		t.Fatal(err)
	}
	kbd.ModifierDown(ModLShift)
	kbd.KeyDown(UsageA)
	kbd.KeyUp(UsageA)
	kbd.ModifierUp(ModLShift)
	if irqs.Load() != 4 {
		t.Fatalf("usb irqs = %d, want 4", irqs.Load())
	}
	// Report 1: shift down, no keys.
	r, ok, err := c.InterruptTransfer(0)
	if err != nil || !ok || r[0] != ModLShift || r[2] != 0 {
		t.Fatalf("report1 = %v ok=%v err=%v", r, ok, err)
	}
	// Report 2: shift+A.
	r, ok, _ = c.InterruptTransfer(0)
	if !ok || r[0] != ModLShift || r[2] != UsageA {
		t.Fatalf("report2 = %v", r)
	}
	if UsageToASCII(r[2], r[0]) != 'A' {
		t.Fatalf("shift+a should decode to 'A', got %q", UsageToASCII(r[2], r[0]))
	}
	// Report 3: key released (usage gone), shift still held.
	r, ok, _ = c.InterruptTransfer(0)
	if !ok || r[0] != ModLShift || r[2] != 0 {
		t.Fatalf("report3 = %v (release not visible)", r)
	}
	// Report 4: all up.
	r, ok, _ = c.InterruptTransfer(0)
	if !ok || r[0] != 0 {
		t.Fatalf("report4 = %v", r)
	}
	// NAK when drained.
	if _, ok, _ := c.InterruptTransfer(0); ok {
		t.Fatal("expected NAK on empty endpoint")
	}
}

func TestUSBTypeStringRoundTrip(t *testing.T) {
	ic := NewIRQController(1)
	c := NewUSBController(ic)
	kbd := c.AttachKeyboard()
	c.ControlTransfer(0, SetupPacket{Request: usbReqSetConfig, Value: 1})
	kbd.TypeString("ls -a\n")
	var got []byte
	for {
		r, ok, _ := c.InterruptTransfer(0)
		if !ok {
			break
		}
		if r[2] != 0 {
			if a := UsageToASCII(r[2], r[0]); a != 0 {
				got = append(got, a)
			}
		}
	}
	if string(got) != "ls -a\n" {
		t.Fatalf("typed %q, decoded %q", "ls -a\n", got)
	}
}

func TestPowerModelEnvelope(t *testing.T) {
	p := NewPowerModel(4)
	idle := p.Sample(true, false, false)
	if idle.TotalWatts < 2 || idle.TotalWatts > 3.5 {
		t.Fatalf("idle draw %.2f W outside paper's ~3 W envelope", idle.TotalWatts)
	}
	// Saturate all four cores for the whole (short) life of the model.
	time.Sleep(5 * time.Millisecond)
	for c := 0; c < 4; c++ {
		p.AddBusy(c, time.Hour) // clamps to 100%
	}
	load := p.Sample(true, true, true)
	if load.TotalWatts <= idle.TotalWatts {
		t.Fatal("loaded draw not above idle")
	}
	if load.TotalWatts > 6 {
		t.Fatalf("loaded draw %.2f W unreasonably high", load.TotalWatts)
	}
	if load.BatteryHours >= idle.BatteryHours {
		t.Fatal("battery life should drop under load")
	}
}

func TestMachinePowerOn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemBytes = 8 << 20
	cfg.SDBlocks = 64
	m := NewMachine(cfg)
	defer m.Shutdown()
	if m.Cores() != 4 || len(m.GTimers) != 4 {
		t.Fatalf("cores = %d, gtimers = %d", m.Cores(), len(m.GTimers))
	}
	if m.SD == nil || m.USB == nil || m.Mailbox == nil {
		t.Fatal("devices missing")
	}
	// DRAM must be scrambled (uninitialized-memory lesson).
	nz := false
	for _, b := range m.Mem.Bytes(0, 4096) {
		if b != 0 {
			nz = true
			break
		}
	}
	if !nz {
		t.Fatal("DRAM is zeroed; real hardware would not be")
	}
	if m.Uptime() <= 0 {
		t.Fatal("uptime not advancing")
	}
}
