package hw

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// NetFaultPlan is the NIC member of the FaultPlan family: a seeded,
// replayable schedule of link misbehaviour. It wraps ONE direction of a
// link (install with NIC.SetFaults on the transmitting side) and draws
// every decision from one rand.Rand seeded with Seed in frame-
// serialization order, so the same frame sequence sees the same faults
// on every run.
//
// Unlike FaultPlan this never surfaces an error to the submitter: frames
// are dropped, duplicated, reordered or delayed silently — the ROADMAP's
// "latency spikes without errors" item, applied where it bites hardest.
// Recovering is the protocol layer's job. Probabilities are per frame;
// zero values inject nothing.
type NetFaultPlan struct {
	// Seed drives every random decision.
	Seed int64
	// PDrop discards the frame after TX completion (the wire ate it).
	PDrop float64
	// PDup delivers the frame twice back to back.
	PDup float64
	// PReorder holds the frame back and re-inserts it after the next
	// ReorderWindow frames have passed (or after a flush timeout if the
	// direction goes quiet, so a held frame is late, never lost).
	PReorder float64
	// ReorderWindow bounds how many frames overtake a held one
	// (default 4).
	ReorderWindow int
	// PLatency delays the frame's arrival by LatencySpike (default 2ms).
	// Later frames queue behind it — a spike delays, it never reorders.
	PLatency     float64
	LatencySpike time.Duration
}

func (p NetFaultPlan) withDefaults() NetFaultPlan {
	if p.ReorderWindow <= 0 {
		p.ReorderWindow = 4
	}
	if p.LatencySpike <= 0 {
		p.LatencySpike = 2 * time.Millisecond
	}
	return p
}

// String prints the knobs that matter for replaying a fuzz failure.
func (p NetFaultPlan) String() string {
	return fmt.Sprintf("netplan{seed=%d drop=%.3f dup=%.3f reorder=%.3f/%d latency=%.3f}",
		p.Seed, p.PDrop, p.PDup, p.PReorder, p.ReorderWindow, p.PLatency)
}

// RandomNetPlan derives a full plan from one seed, like RandomPlan: a
// single integer names the whole misbehaviour schedule (NET_SEED=n
// replays it).
func RandomNetPlan(seed int64) NetFaultPlan {
	rng := rand.New(rand.NewSource(seed))
	return NetFaultPlan{
		Seed:          seed,
		PDrop:         rng.Float64() * 0.05,
		PDup:          rng.Float64() * 0.03,
		PReorder:      rng.Float64() * 0.05,
		ReorderWindow: 1 + rng.Intn(8),
		PLatency:      rng.Float64() * 0.02,
	}
}

// NetFaultStats counts what a plan actually injected.
type NetFaultStats struct {
	Frames   int // frames that reached the fault layer
	Drops    int
	Dups     int
	Reorders int
	Latency  int
}

// netFaultFlush bounds how long a reorder-held frame waits for overtaking
// traffic before it is released anyway.
const netFaultFlush = 10 * time.Millisecond

// netFaultState sits between a linkDir's serialization and propagation
// stages, deciding each frame's fate in serialization order.
type netFaultState struct {
	plan    NetFaultPlan
	latency time.Duration // the direction's base propagation delay

	mu       sync.Mutex
	rng      *rand.Rand
	held     []byte // reorder: the frame waiting to be overtaken
	heldLeft int    // frames still to pass before release
	heldSeq  uint64 // identity of the current hold, for the flush timer
	stats    NetFaultStats
}

// SetFaults installs plan on the NIC's OUTBOUND direction (frames this
// NIC transmits). Wrap both NICs of a link to fault both directions.
// Install before traffic flows; the plan cannot be swapped mid-stream.
func (n *NIC) SetFaults(plan NetFaultPlan) {
	plan = plan.withDefaults()
	d := n.dir
	d.mu.Lock()
	d.faults = &netFaultState{
		plan:    plan,
		latency: d.latency,
		rng:     rand.New(rand.NewSource(plan.Seed)),
	}
	d.mu.Unlock()
}

// FaultStats snapshots the injection counters of the NIC's outbound
// fault plan (zero value if SetFaults was never called).
func (n *NIC) FaultStats() NetFaultStats {
	n.dir.mu.Lock()
	s := n.dir.faults
	n.dir.mu.Unlock()
	if s == nil {
		return NetFaultStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// emit decides one serialized frame's fate and forwards the survivors to
// the propagation stage. Called from the direction's serializer, one
// frame at a time.
func (s *netFaultState) emit(frame []byte, out chan<- delivery) {
	s.mu.Lock()
	s.stats.Frames++
	lat := s.latency
	if s.plan.PLatency > 0 && s.rng.Float64() < s.plan.PLatency {
		s.stats.Latency++
		lat += s.plan.LatencySpike
	}
	var sends [][]byte
	switch {
	case s.plan.PDrop > 0 && s.rng.Float64() < s.plan.PDrop:
		s.stats.Drops++
	case s.plan.PDup > 0 && s.rng.Float64() < s.plan.PDup:
		s.stats.Dups++
		// The duplicate is a deep copy: receivers recycle frames after
		// consuming them, and the twin must survive the original's reuse.
		sends = append(sends, frame, append([]byte(nil), frame...))
	case s.held == nil && s.plan.PReorder > 0 && s.rng.Float64() < s.plan.PReorder:
		// Hold this frame; the next ReorderWindow frames overtake it. A
		// flush timer releases it if the direction goes quiet first, so a
		// reorder can starve nothing.
		s.stats.Reorders++
		s.held = frame
		s.heldLeft = s.plan.ReorderWindow
		s.heldSeq++
		seq := s.heldSeq
		time.AfterFunc(netFaultFlush, func() { s.flush(seq, out) })
	default:
		sends = append(sends, frame)
	}
	// Frames that pass count down the hold; release behind the last one.
	if s.held != nil && len(sends) > 0 {
		s.heldLeft -= len(sends)
		if s.heldLeft <= 0 {
			sends = append(sends, s.held)
			s.held = nil
		}
	}
	s.mu.Unlock()
	for _, f := range sends {
		out <- delivery{data: f, at: time.Now().Add(lat)}
	}
}

// flush releases a reorder-held frame whose overtaking traffic never
// arrived. seq identifies the hold: a newer hold means the old frame was
// already released and the timer has nothing to do.
func (s *netFaultState) flush(seq uint64, out chan<- delivery) {
	s.mu.Lock()
	if s.held == nil || s.heldSeq != seq {
		s.mu.Unlock()
		return
	}
	f := s.held
	s.held = nil
	lat := s.latency
	s.mu.Unlock()
	out <- delivery{data: f, at: time.Now().Add(lat)}
}
