package hw

import (
	"sync"
)

// GPIO pin assignments for the Game HAT buttons and the panic button, as
// Proto wires them.
const (
	PinUp     = 5
	PinDown   = 6
	PinLeft   = 13
	PinRight  = 19
	PinA      = 16
	PinB      = 26
	PinStart  = 20
	PinSelect = 21
	PinPanic  = 4 // push button wired to FIQ
	numPins   = 32
)

// GPIO models the Pi3 GPIO block as Proto uses it: button inputs that raise
// edge interrupts, plus one pin routed to FIQ for the panic button (§5.1).
type GPIO struct {
	ic *IRQController

	mu     sync.Mutex
	level  [numPins]bool
	events []GPIOEvent
}

// GPIOEvent records one edge for the kernel driver to collect.
type GPIOEvent struct {
	Pin     int
	Pressed bool // true = falling edge (buttons are active-low)
}

// NewGPIO returns the GPIO block.
func NewGPIO(ic *IRQController) *GPIO { return &GPIO{ic: ic} }

// Press simulates pressing a button (falling edge on an active-low pin).
// Pressing PinPanic raises FIQ instead of the ordinary GPIO IRQ — the whole
// point of the panic button is to fire even when IRQs are masked.
func (g *GPIO) Press(pin int) {
	g.setLevel(pin, true)
}

// Release simulates releasing a button.
func (g *GPIO) Release(pin int) {
	g.setLevel(pin, false)
}

func (g *GPIO) setLevel(pin int, pressed bool) {
	if pin < 0 || pin >= numPins {
		panic("hw: gpio pin out of range")
	}
	g.mu.Lock()
	if g.level[pin] == pressed {
		g.mu.Unlock()
		return // no edge
	}
	g.level[pin] = pressed
	g.events = append(g.events, GPIOEvent{Pin: pin, Pressed: pressed})
	g.mu.Unlock()
	if pin == PinPanic {
		if pressed {
			g.ic.Raise(FIQPanic)
		}
		return
	}
	g.ic.Raise(IRQGPIO)
}

// Level reads a pin's current level (true = pressed).
func (g *GPIO) Level(pin int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.level[pin]
}

// DrainEvents returns and clears pending edges; the kernel driver calls this
// from its GPIO IRQ handler.
func (g *GPIO) DrainEvents() []GPIOEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	evs := g.events
	g.events = nil
	return evs
}
