package hw

import (
	"io"
	"sync"
)

// UARTMode selects how the receive side is driven, mirroring the prototype
// staging in Table 1: Prototype 1 polls (RX only), Prototypes 2–3 use RX
// IRQs, Prototypes 4–5 use IRQs for RX and keep TX synchronous (the paper
// deliberately never makes TX interrupt-driven, §4.1).
type UARTMode int

const (
	// UARTPolled: no interrupts; the kernel polls RxByte.
	UARTPolled UARTMode = iota
	// UARTIRQRx: received bytes raise IRQUARTRx.
	UARTIRQRx
)

const uartRxFIFO = 256

// UART models the Pi3 mini-UART. Writes are always synchronous (polled),
// matching Proto's decision to keep debug output free of locking and ring
// buffers. Reads come from a bounded RX FIFO fed by the host test harness.
type UART struct {
	mu      sync.Mutex
	mode    UARTMode
	rx      []byte
	dropped int
	tx      []byte
	sink    io.Writer // optional tee for interactive runs
	ic      *IRQController

	txBytes int
}

// NewUART returns a UART in polled mode with output captured in-memory.
func NewUART(ic *IRQController) *UART {
	return &UART{ic: ic}
}

// SetMode switches the receive path between polled and IRQ-driven.
func (u *UART) SetMode(m UARTMode) {
	u.mu.Lock()
	u.mode = m
	u.mu.Unlock()
}

// SetSink tees transmitted bytes to w (e.g. os.Stdout for cmd/protorun).
func (u *UART) SetSink(w io.Writer) {
	u.mu.Lock()
	u.sink = w
	u.mu.Unlock()
}

// TxByte transmits one byte synchronously.
func (u *UART) TxByte(b byte) {
	u.mu.Lock()
	u.tx = append(u.tx, b)
	u.txBytes++
	sink := u.sink
	u.mu.Unlock()
	if sink != nil {
		sink.Write([]byte{b})
	}
}

// Write transmits a buffer synchronously; it never fails (the wire does not
// push back), satisfying io.Writer so the kernel's printk can Fprintf to it.
func (u *UART) Write(p []byte) (int, error) {
	u.mu.Lock()
	u.tx = append(u.tx, p...)
	u.txBytes += len(p)
	sink := u.sink
	u.mu.Unlock()
	if sink != nil {
		sink.Write(p)
	}
	return len(p), nil
}

// Feed injects received bytes from the host side (a person typing on the
// serial console). In IRQ mode each injection raises IRQUARTRx after the
// bytes are in the FIFO. Overflow beyond the FIFO depth drops bytes, as the
// real 16550-style FIFO would.
func (u *UART) Feed(p []byte) {
	u.mu.Lock()
	for _, b := range p {
		if len(u.rx) >= uartRxFIFO {
			u.dropped++
			continue
		}
		u.rx = append(u.rx, b)
	}
	mode := u.mode
	u.mu.Unlock()
	if mode == UARTIRQRx && len(p) > 0 {
		u.ic.Raise(IRQUARTRx)
	}
}

// RxByte pops one received byte; ok is false when the FIFO is empty.
func (u *UART) RxByte() (b byte, ok bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.rx) == 0 {
		return 0, false
	}
	b = u.rx[0]
	u.rx = u.rx[1:]
	return b, true
}

// Transcript returns everything transmitted so far.
func (u *UART) Transcript() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return string(u.tx)
}

// TxBytes reports the number of bytes transmitted (for the power model).
func (u *UART) TxBytes() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.txBytes
}

// Dropped reports RX FIFO overflow losses.
func (u *UART) Dropped() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.dropped
}
