package hw

import (
	"errors"
	"testing"
	"time"
)

// memDisk is a trivial backing store for FaultDisk tests.
type memDisk struct {
	bs   int
	data []byte
}

func newMemDisk(bs, blocks int) *memDisk { return &memDisk{bs: bs, data: make([]byte, bs*blocks)} }

func (m *memDisk) BlockSize() int { return m.bs }
func (m *memDisk) Blocks() int    { return len(m.data) / m.bs }
func (m *memDisk) ReadBlocks(lba, n int, dst []byte) error {
	copy(dst, m.data[lba*m.bs:(lba+n)*m.bs])
	return nil
}
func (m *memDisk) WriteBlocks(lba, n int, src []byte) error {
	copy(m.data[lba*m.bs:(lba+n)*m.bs], src[:n*m.bs])
	return nil
}

// TestFaultDiskReplayable pins the plan's core promise: the same seed over
// the same command sequence injects the identical fault sequence.
func TestFaultDiskReplayable(t *testing.T) {
	run := func() []error {
		fd := NewFaultDisk(newMemDisk(512, 64), FaultPlan{Seed: 11, PTransient: 0.3, PBadSector: 0.1, PTorn: 0.3})
		var errs []error
		buf := make([]byte, 4*512)
		for i := 0; i < 200; i++ {
			lba := (i * 7) % 60
			if i%2 == 0 {
				errs = append(errs, fd.WriteBlocks(lba, 1+i%4, buf))
			} else {
				errs = append(errs, fd.ReadBlocks(lba, 1+i%4, buf))
			}
		}
		return errs
	}
	a, b := run(), run()
	for i := range a {
		if !errors.Is(b[i], a[i]) && (a[i] != nil || b[i] != nil) {
			t.Fatalf("cmd %d: run1 %v, run2 %v", i, a[i], b[i])
		}
	}
}

// TestFaultDiskTransientHeals: a transient burst fails at most TransientMax
// times for one start LBA, then the same command succeeds — the contract
// the queue's bounded retry depends on.
func TestFaultDiskTransientHeals(t *testing.T) {
	fd := NewFaultDisk(newMemDisk(512, 8), FaultPlan{Seed: 1, PTransient: 1.0, TransientMax: 3})
	fd.plan.PTransient = 0 // only the burst opened below remains
	fd.mu.Lock()
	fd.transient[2] = 3
	fd.mu.Unlock()
	buf := make([]byte, 512)
	fails := 0
	for i := 0; i < 10; i++ {
		err := fd.WriteBlocks(2, 1, buf)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrSDInjected) {
			t.Fatalf("want ErrSDInjected, got %v", err)
		}
		fails++
	}
	if fails == 0 || fails > 3 {
		t.Fatalf("burst failed %d times, want 1..3", fails)
	}
	if err := fd.WriteBlocks(2, 1, buf); err != nil {
		t.Fatalf("post-burst write: %v", err)
	}
}

// TestFaultDiskBadSectorPersists: a minted bad sector fails every covering
// command forever, and commands elsewhere still succeed.
func TestFaultDiskBadSectorPersists(t *testing.T) {
	fd := NewFaultDisk(newMemDisk(512, 64), FaultPlan{Seed: 1})
	fd.mu.Lock()
	fd.bad[10] = true
	fd.mu.Unlock()
	buf := make([]byte, 8*512)
	for i := 0; i < 3; i++ {
		if err := fd.WriteBlocks(8, 4, buf); !errors.Is(err, ErrBadSector) {
			t.Fatalf("covering write attempt %d: %v, want ErrBadSector", i, err)
		}
		if err := fd.ReadBlocks(9, 4, buf); !errors.Is(err, ErrBadSector) {
			t.Fatalf("covering read attempt %d: %v, want ErrBadSector", i, err)
		}
	}
	if err := fd.WriteBlocks(11, 4, buf); err != nil {
		t.Fatalf("adjacent write: %v", err)
	}
	if err := fd.ReadBlocks(0, 8, buf); err != nil {
		t.Fatalf("distant read: %v", err)
	}
}

// TestFaultDiskTornWritePrefix: a torn multi-block write lands a strict
// prefix and reports a transient error — rewriting the full range heals it.
func TestFaultDiskTornWritePrefix(t *testing.T) {
	m := newMemDisk(512, 16)
	fd := NewFaultDisk(m, FaultPlan{Seed: 3, PTorn: 1.0})
	src := make([]byte, 4*512)
	for i := range src {
		src[i] = 0xAB
	}
	err := fd.WriteBlocks(4, 4, src)
	if !errors.Is(err, ErrSDInjected) {
		t.Fatalf("torn write: %v, want ErrSDInjected", err)
	}
	// Some strict prefix landed; the tail did not.
	landed := 0
	for b := 4; b < 8; b++ {
		if m.data[b*512] == 0xAB {
			landed++
		} else {
			break
		}
	}
	if landed == 0 || landed == 4 {
		t.Fatalf("torn write landed %d/4 blocks, want a strict prefix", landed)
	}
	for b := 4 + landed; b < 8; b++ {
		if m.data[b*512] != 0 {
			t.Fatalf("block %d written past the tear", b)
		}
	}
	fd.plan.PTorn = 0
	if err := fd.WriteBlocks(4, 4, src); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
}

// TestFaultDiskDeath: DeathAfter kills every later command, sync and
// async, and Kill does it immediately.
func TestFaultDiskDeath(t *testing.T) {
	fd := NewFaultDisk(newMemDisk(512, 8), FaultPlan{Seed: 1, DeathAfter: 2})
	buf := make([]byte, 512)
	if err := fd.WriteBlocks(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.ReadBlocks(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if err := fd.WriteBlocks(0, 1, buf); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("post-death write: %v", err)
	}
	if err := fd.SubmitWrite(1, 0, 1, buf); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("post-death submit: %v", err)
	}
	fd2 := NewFaultDisk(newMemDisk(512, 8), FaultPlan{Seed: 1})
	fd2.Kill()
	if err := fd2.ReadBlocks(0, 1, buf); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("killed read: %v", err)
	}
}

// TestFaultDiskAsyncStall: a stalled submission never completes; a healthy
// one does and fires the notifier.
func TestFaultDiskAsyncStall(t *testing.T) {
	fd := NewFaultDisk(newMemDisk(512, 8), FaultPlan{Seed: 1, PStall: 1.0})
	done := make(chan struct{}, 4)
	fd.SetNotify(func() { done <- struct{}{} })
	buf := make([]byte, 512)
	if err := fd.SubmitWrite(1, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("stalled command completed")
	case <-time.After(20 * time.Millisecond):
	}
	fd.plan.PStall = 0
	if err := fd.SubmitWrite(2, 1, 1, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("healthy command never completed")
	}
	tag, err, ok := fd.PopCompletion()
	if !ok || tag != 2 || err != nil {
		t.Fatalf("completion: tag=%d err=%v ok=%v", tag, err, ok)
	}
}
