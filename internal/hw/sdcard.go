package hw

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// SDBlockSize is the SD sector size.
const SDBlockSize = 512

// SD timing model. Proto's 600-SLoC driver polls the controller; the
// dominant costs are a fixed per-command setup (CMD17/18 issue, card
// response, polling loop iterations) plus a per-block wire transfer. Range
// transfers (CMD18) pay setup once for many blocks — which is why bypassing
// the single-block buffer cache for FAT32 range reads wins the paper's 2–3×
// (§5.2). The prod-OS baseline uses DMA: same wire time, but the CPU sleeps
// instead of polling and setup overlaps transfer.
const (
	sdCmdSetup = 120 * time.Microsecond // command issue + response, polled
	sdPerBlock = 380 * time.Microsecond // one 512 B sector on the wire
	sdDMASetup = 60 * time.Microsecond  // descriptor programming
)

// ErrSDRange is returned for out-of-range block addresses.
var ErrSDRange = errors.New("sd: block address out of range")

// ErrSDInjected is returned when a test has injected a media error.
var ErrSDInjected = errors.New("sd: injected IO error")

// SDCard models the EMMC controller plus an inserted card. The backing
// store is in-memory; what matters for the reproduction is the latency
// structure and the single-block vs range-transfer distinction.
//
// The controller has two faces:
//
//   - ReadBlocks/WriteBlocks, the synchronous driver path: the caller eats
//     the command latency inline (polled PIO, or a DMA sleep ending in an
//     IRQSD the caller has already slept through).
//   - SubmitRead/SubmitWrite + PopCompletion, the split submit/completion
//     halves the async request queue drives: Submit programs the transfer
//     and returns immediately; when the simulated wire time elapses the
//     completion record (tag, error) is queued and IRQSD fires, and the
//     IRQ handler collects it with PopCompletion. Multiple commands may be
//     in flight at once (the request queue bounds how many).
type SDCard struct {
	mu     sync.Mutex
	data   []byte
	ro     bool
	useDMA bool
	ic     *IRQController

	reads, writes  uint64 // blocks
	cmds           uint64
	failNextOps    int
	latencyScale   float64
	busyPollBudget uint64 // simulated PIO poll iterations (power model)
	dmaWaitBudget  uint64 // simulated DMA sleep time — the CPU is idle

	completions []sdCompletion // finished async commands, drained via IRQ
}

// sdCompletion is one finished async command awaiting collection.
type sdCompletion struct {
	tag uint64
	err error
}

// NewSDCard returns a card with the given capacity in blocks.
func NewSDCard(blocks int, ic *IRQController) *SDCard {
	if blocks <= 0 {
		panic("hw: sd card needs at least one block")
	}
	return &SDCard{data: make([]byte, blocks*SDBlockSize), ic: ic, latencyScale: 1}
}

// Blocks returns the card capacity in 512-byte blocks.
func (sd *SDCard) Blocks() int { return len(sd.data) / SDBlockSize }

// SetDMA switches the controller between polled PIO (Proto's driver) and
// DMA (the production-OS baseline). With DMA, completion raises IRQSD.
func (sd *SDCard) SetDMA(on bool) {
	sd.mu.Lock()
	sd.useDMA = on
	sd.mu.Unlock()
}

// SetLatencyScale scales the timing model (0 disables latency entirely,
// which keeps unit tests fast; benchmarks run at scale 1).
func (sd *SDCard) SetLatencyScale(s float64) {
	sd.mu.Lock()
	sd.latencyScale = s
	sd.mu.Unlock()
}

// SetReadOnly toggles write protection.
func (sd *SDCard) SetReadOnly(ro bool) {
	sd.mu.Lock()
	sd.ro = ro
	sd.mu.Unlock()
}

// InjectErrors makes the next n operations fail with ErrSDInjected.
func (sd *SDCard) InjectErrors(n int) {
	sd.mu.Lock()
	sd.failNextOps = n
	sd.mu.Unlock()
}

// LoadImage installs a disk image starting at block 0 (mkimage uses this to
// "burn" the FAT32 partition).
func (sd *SDCard) LoadImage(img []byte) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if len(img) > len(sd.data) {
		return fmt.Errorf("sd: image %d bytes exceeds card %d bytes", len(img), len(sd.data))
	}
	copy(sd.data, img)
	return nil
}

// DumpImage copies the card contents (for host-side verification).
func (sd *SDCard) DumpImage() []byte {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	out := make([]byte, len(sd.data))
	copy(out, sd.data)
	return out
}

func (sd *SDCard) checkRange(lba, n int) error {
	if lba < 0 || n <= 0 || (lba+n)*SDBlockSize > len(sd.data) {
		return ErrSDRange
	}
	return nil
}

func (sd *SDCard) takeError() error {
	if sd.failNextOps > 0 {
		sd.failNextOps--
		return ErrSDInjected
	}
	return nil
}

// busyWait models the polled PIO delay. Polling burns CPU on the caller —
// we account the iterations for the power model but yield the host CPU.
func (sd *SDCard) busyWait(d time.Duration, scale float64) {
	if scale == 0 {
		return
	}
	d = time.Duration(float64(d) * scale)
	sd.mu.Lock()
	sd.busyPollBudget += uint64(d / time.Microsecond)
	sd.mu.Unlock()
	time.Sleep(d)
}

// dmaWait models the DMA transfer window: the same wall time as the wire
// transfer, but the CPU sleeps instead of polling, so the time is charged
// to the idle-wait budget — not the busy-poll budget the power model bills
// as CPU burn. (Earlier versions charged both paths to the poll budget,
// making DMA look as power-hungry as PIO.)
func (sd *SDCard) dmaWait(d time.Duration, scale float64) {
	if scale == 0 {
		return
	}
	d = time.Duration(float64(d) * scale)
	sd.mu.Lock()
	sd.dmaWaitBudget += uint64(d / time.Microsecond)
	sd.mu.Unlock()
	time.Sleep(d)
}

// ReadBlocks reads n blocks starting at lba into dst (len >= n*512).
// Latency: one command setup + n wire transfers; with DMA the setup is
// cheaper and an IRQSD fires at completion.
func (sd *SDCard) ReadBlocks(lba, n int, dst []byte) error {
	if err := sd.checkRange(lba, n); err != nil {
		return err
	}
	if len(dst) < n*SDBlockSize {
		return fmt.Errorf("sd: destination %d bytes < %d", len(dst), n*SDBlockSize)
	}
	sd.mu.Lock()
	if err := sd.takeError(); err != nil {
		sd.mu.Unlock()
		return err
	}
	dma := sd.useDMA
	scale := sd.latencyScale
	sd.cmds++
	sd.reads += uint64(n)
	src := sd.data[lba*SDBlockSize : (lba+n)*SDBlockSize]
	copy(dst, src)
	sd.mu.Unlock()

	if dma {
		sd.dmaWait(sdDMASetup+time.Duration(n)*sdPerBlock, scale)
		if sd.ic != nil {
			sd.ic.Raise(IRQSD)
		}
	} else {
		sd.busyWait(sdCmdSetup+time.Duration(n)*sdPerBlock, scale)
	}
	return nil
}

// WriteBlocks writes n blocks starting at lba from src.
func (sd *SDCard) WriteBlocks(lba, n int, src []byte) error {
	if err := sd.checkRange(lba, n); err != nil {
		return err
	}
	if len(src) < n*SDBlockSize {
		return fmt.Errorf("sd: source %d bytes < %d", len(src), n*SDBlockSize)
	}
	sd.mu.Lock()
	if sd.ro {
		sd.mu.Unlock()
		return ErrSDWriteProtected
	}
	if err := sd.takeError(); err != nil {
		sd.mu.Unlock()
		return err
	}
	dma := sd.useDMA
	scale := sd.latencyScale
	sd.cmds++
	sd.writes += uint64(n)
	copy(sd.data[lba*SDBlockSize:(lba+n)*SDBlockSize], src)
	sd.mu.Unlock()

	// Writes pay a program-time penalty on top of the wire transfer.
	extra := time.Duration(n) * sdPerBlock / 2
	if dma {
		sd.dmaWait(sdDMASetup+time.Duration(n)*sdPerBlock+extra, scale)
		if sd.ic != nil {
			sd.ic.Raise(IRQSD)
		}
	} else {
		sd.busyWait(sdCmdSetup+time.Duration(n)*sdPerBlock+extra, scale)
	}
	return nil
}

// --- split submit/completion halves (async request-queue path) ---

// SubmitRead programs an asynchronous DMA read of n blocks at lba into dst
// and returns immediately. dst must stay valid (and unread) until the
// command's completion is collected: the DMA engine writes it at transfer
// end. Range errors are reported synchronously — the controller rejects a
// bad descriptor before starting; media errors (injection, write protect)
// surface in the completion record. When the simulated transfer time
// elapses, the completion (tag, error) is queued and IRQSD is raised.
func (sd *SDCard) SubmitRead(tag uint64, lba, n int, dst []byte) error {
	if err := sd.checkRange(lba, n); err != nil {
		return err
	}
	if len(dst) < n*SDBlockSize {
		return fmt.Errorf("sd: destination %d bytes < %d", len(dst), n*SDBlockSize)
	}
	sd.mu.Lock()
	scale := sd.latencyScale
	sd.cmds++
	sd.reads += uint64(n)
	sd.mu.Unlock()
	go func() {
		sd.dmaWait(sdDMASetup+time.Duration(n)*sdPerBlock, scale)
		sd.mu.Lock()
		err := sd.takeError()
		if err == nil {
			copy(dst, sd.data[lba*SDBlockSize:(lba+n)*SDBlockSize])
		}
		sd.completions = append(sd.completions, sdCompletion{tag: tag, err: err})
		ic := sd.ic
		sd.mu.Unlock()
		if ic != nil {
			ic.Raise(IRQSD)
		}
	}()
	return nil
}

// SubmitWrite is SubmitRead's write half. src must stay stable until
// completion; the card latches it at transfer end, so a write whose
// completion has not fired is not yet durable — Flush-style barriers wait
// for completions, not submissions.
func (sd *SDCard) SubmitWrite(tag uint64, lba, n int, src []byte) error {
	if err := sd.checkRange(lba, n); err != nil {
		return err
	}
	if len(src) < n*SDBlockSize {
		return fmt.Errorf("sd: source %d bytes < %d", len(src), n*SDBlockSize)
	}
	sd.mu.Lock()
	scale := sd.latencyScale
	sd.cmds++
	sd.writes += uint64(n)
	sd.mu.Unlock()
	go func() {
		extra := time.Duration(n) * sdPerBlock / 2
		sd.dmaWait(sdDMASetup+time.Duration(n)*sdPerBlock+extra, scale)
		sd.mu.Lock()
		var err error
		if sd.ro {
			err = ErrSDWriteProtected
		} else if err = sd.takeError(); err == nil {
			copy(sd.data[lba*SDBlockSize:(lba+n)*SDBlockSize], src)
		}
		sd.completions = append(sd.completions, sdCompletion{tag: tag, err: err})
		ic := sd.ic
		sd.mu.Unlock()
		if ic != nil {
			ic.Raise(IRQSD)
		}
	}()
	return nil
}

// PopCompletion collects one finished async command (tag and error), FIFO.
// The IRQSD handler drains this until ok is false — one interrupt may
// cover several completions, as on real controllers.
func (sd *SDCard) PopCompletion() (tag uint64, err error, ok bool) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	if len(sd.completions) == 0 {
		return 0, nil, false
	}
	c := sd.completions[0]
	sd.completions = sd.completions[1:]
	return c.tag, c.err, true
}

// Stats reports IO activity for the power model and experiment harness.
// pollMicros counts only polled-PIO busy time; DMA sleeps are idle and
// reported separately by WaitStats.
func (sd *SDCard) Stats() (cmds, readBlocks, writeBlocks, pollMicros uint64) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.cmds, sd.reads, sd.writes, sd.busyPollBudget
}

// WaitStats splits simulated device-wait time by kind: pollMicros is CPU
// burned busy-polling (PIO), dmaMicros is idle sleep until the completion
// IRQ (DMA) — the distinction the power model charges differently.
func (sd *SDCard) WaitStats() (pollMicros, dmaMicros uint64) {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.busyPollBudget, sd.dmaWaitBudget
}
