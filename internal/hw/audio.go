package hw

import (
	"sync"
	"time"
)

// DefaultSampleRate is the PWM output rate Proto uses for the 3.5 mm jack.
const DefaultSampleRate = 22050

// PWMAudio models the Pi3's PWM audio output. Hardware drains its FIFO at
// the sample rate; when the FIFO runs dry playback stutters (an underrun),
// which is exactly the observable failure the paper uses as debugging
// feedback for the producer-consumer pipeline (§4.4).
//
// Samples reach the FIFO only via DMA transfers (see DMAEngine); the CPU
// never programs samples directly, as on the real part.
type PWMAudio struct {
	rate int

	mu        sync.Mutex
	fifo      []int16
	fifoCap   int
	consumed  uint64
	underruns uint64
	energy    float64 // sum of squares, for "did sound actually play" tests
	running   bool
	stop      chan struct{}
}

// NewPWMAudio returns a stopped PWM block with a fifoCap-sample FIFO.
func NewPWMAudio(rate, fifoCap int) *PWMAudio {
	if rate <= 0 || fifoCap <= 0 {
		panic("hw: bad PWM parameters")
	}
	return &PWMAudio{rate: rate, fifoCap: fifoCap}
}

// Rate returns the output sample rate.
func (p *PWMAudio) Rate() int { return p.rate }

// Start begins draining the FIFO at the sample rate.
func (p *PWMAudio) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	stop := p.stop
	go p.drain(stop)
}

// Stop halts the output stage.
func (p *PWMAudio) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.running {
		return
	}
	close(p.stop)
	p.running = false
}

// drain consumes samples in small batches at the nominal rate.
func (p *PWMAudio) drain(stop chan struct{}) {
	const batchMS = 5
	batch := p.rate * batchMS / 1000
	tick := time.NewTicker(batchMS * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			p.mu.Lock()
			n := batch
			if n > len(p.fifo) {
				p.underruns++
				n = len(p.fifo)
			}
			for _, s := range p.fifo[:n] {
				p.energy += float64(s) * float64(s)
			}
			p.consumed += uint64(n)
			p.fifo = p.fifo[n:]
			p.mu.Unlock()
		}
	}
}

// push is called by the DMA engine; it returns how many samples fit.
func (p *PWMAudio) push(samples []int16) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	room := p.fifoCap - len(p.fifo)
	if room <= 0 {
		return 0
	}
	if len(samples) > room {
		samples = samples[:room]
	}
	p.fifo = append(p.fifo, samples...)
	return len(samples)
}

// FIFOLevel returns how many samples are queued.
func (p *PWMAudio) FIFOLevel() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fifo)
}

// Stats reports playback progress and health.
func (p *PWMAudio) Stats() (consumed, underruns uint64, energy float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consumed, p.underruns, p.energy
}

// DMAEngine models the BCM2837 DMA controller as Proto's sound driver uses
// it: the driver hands it a physical buffer of 16-bit samples; the engine
// copies them into the PWM FIFO asynchronously and raises IRQDMA on
// completion so the driver can queue the next buffer (§4.4's
// producer-consumer pipeline).
type DMAEngine struct {
	mem *Mem
	ic  *IRQController

	mu        sync.Mutex
	busy      bool
	transfers uint64
	bytes     uint64
}

// NewDMAEngine returns the DMA controller.
func NewDMAEngine(mem *Mem, ic *IRQController) *DMAEngine {
	return &DMAEngine{mem: mem, ic: ic}
}

// TransferToPWM starts an asynchronous copy of n bytes at physical address
// pa (little-endian int16 samples) into the PWM FIFO. It returns false if a
// transfer is already in flight (one channel, like Proto's driver assumes).
// Completion raises IRQDMA.
func (d *DMAEngine) TransferToPWM(pwm *PWMAudio, pa, n int) bool {
	if n <= 0 || n%2 != 0 {
		panic("hw: DMA audio transfer must be a positive even byte count")
	}
	d.mu.Lock()
	if d.busy {
		d.mu.Unlock()
		return false
	}
	d.busy = true
	d.mu.Unlock()

	src := d.mem.Bytes(pa, n)
	samples := make([]int16, n/2)
	for i := range samples {
		samples[i] = int16(uint16(src[2*i]) | uint16(src[2*i+1])<<8)
	}
	go func() {
		// The engine trickles samples in as FIFO room appears, pacing
		// itself against the output stage like real DMA pacing via DREQ.
		for len(samples) > 0 {
			pushed := pwm.push(samples)
			if pushed == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			samples = samples[pushed:]
		}
		d.mu.Lock()
		d.busy = false
		d.transfers++
		d.bytes += uint64(n)
		d.mu.Unlock()
		d.ic.Raise(IRQDMA)
	}()
	return true
}

// Busy reports whether a transfer is in flight.
func (d *DMAEngine) Busy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Stats reports completed transfer counts for the power model.
func (d *DMAEngine) Stats() (transfers, bytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transfers, d.bytes
}
