package hw

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// The USB stack is deliberately layered — host controller, root hub,
// device, endpoint, HID class — because the paper's point about USPi is
// that USB keyboards buy demonstrability at the price of a multi-layer
// stack the students treat as a substrate (§4.4). The kernel driver above
// enumerates the bus with control transfers and then services interrupt-IN
// transfers carrying 8-byte HID boot-protocol reports.

// USB request codes (the subset enumeration needs).
const (
	usbReqGetDescriptor = 6
	usbReqSetAddress    = 5
	usbReqSetConfig     = 9
	usbReqSetProtocol   = 11 // HID class: 0 = boot protocol

	usbDescDevice = 1
	usbDescConfig = 2
)

// HIDReportLen is the boot-protocol keyboard report size.
const HIDReportLen = 8

// HID modifier bits (byte 0 of the report).
const (
	ModLCtrl  = 1 << 0
	ModLShift = 1 << 1
	ModLAlt   = 1 << 2
	ModRCtrl  = 1 << 4
	ModRShift = 1 << 5
)

// Errors surfaced by the controller.
var (
	ErrUSBNoDevice = errors.New("usb: no device at address")
	ErrUSBStall    = errors.New("usb: endpoint stalled")
)

// SetupPacket is a USB control-transfer setup stage.
type SetupPacket struct {
	RequestType byte
	Request     byte
	Value       uint16
	Index       uint16
	Length      uint16
}

// usbDevice is the device-side model: a HID boot keyboard plugged into the
// root hub.
type usbDevice struct {
	mu         sync.Mutex
	address    byte
	configured bool
	bootProto  bool

	reports [][HIDReportLen]byte // pending interrupt-IN reports
}

func (d *usbDevice) deviceDescriptor() []byte {
	// Standard 18-byte device descriptor: HID keyboard, VID/PID invented.
	desc := make([]byte, 18)
	desc[0] = 18
	desc[1] = usbDescDevice
	binary.LittleEndian.PutUint16(desc[2:], 0x0200) // USB 2.0
	desc[7] = 8                                     // ep0 max packet
	binary.LittleEndian.PutUint16(desc[8:], 0x1d6b) // vendor
	binary.LittleEndian.PutUint16(desc[10:], 0x0112)
	desc[17] = 1 // one configuration
	return desc
}

func (d *usbDevice) configDescriptor() []byte {
	// config(9) + interface(9) + HID(9) + endpoint(7) = 34 bytes.
	buf := make([]byte, 34)
	buf[0], buf[1] = 9, usbDescConfig
	binary.LittleEndian.PutUint16(buf[2:], 34)
	buf[4] = 1 // one interface
	buf[5] = 1 // configuration value
	iface := buf[9:]
	iface[0], iface[1] = 9, 4 // interface descriptor
	iface[3] = 0
	iface[4] = 1 // one endpoint
	iface[5] = 3 // HID class
	iface[6] = 1 // boot subclass
	iface[7] = 1 // keyboard protocol
	hid := buf[18:]
	hid[0], hid[1] = 9, 0x21 // HID descriptor
	ep := buf[27:]
	ep[0], ep[1] = 7, 5 // endpoint descriptor
	ep[2] = 0x81        // EP1 IN
	ep[3] = 3           // interrupt
	binary.LittleEndian.PutUint16(ep[4:], HIDReportLen)
	ep[6] = 10 // 10 ms polling interval
	return buf
}

func (d *usbDevice) control(setup SetupPacket) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch setup.Request {
	case usbReqGetDescriptor:
		switch byte(setup.Value >> 8) {
		case usbDescDevice:
			return clampDesc(d.deviceDescriptor(), setup.Length), nil
		case usbDescConfig:
			return clampDesc(d.configDescriptor(), setup.Length), nil
		}
		return nil, ErrUSBStall
	case usbReqSetAddress:
		d.address = byte(setup.Value)
		return nil, nil
	case usbReqSetConfig:
		d.configured = setup.Value == 1
		return nil, nil
	case usbReqSetProtocol:
		d.bootProto = setup.Value == 0
		return nil, nil
	}
	return nil, ErrUSBStall
}

func clampDesc(desc []byte, want uint16) []byte {
	if int(want) < len(desc) {
		return desc[:want]
	}
	return desc
}

// interruptIn pops one pending report, ok=false when none pending.
func (d *usbDevice) interruptIn() (r [HIDReportLen]byte, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.configured || len(d.reports) == 0 {
		return r, false
	}
	r = d.reports[0]
	d.reports = d.reports[1:]
	return r, true
}

func (d *usbDevice) queueReport(r [HIDReportLen]byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.reports) >= 64 {
		return false
	}
	d.reports = append(d.reports, r)
	return true
}

// USBController is the host-controller + root-hub layer. Exactly one
// keyboard can be attached (Proto supports one USB keyboard).
type USBController struct {
	ic *IRQController

	mu       sync.Mutex
	kbd      *usbDevice
	attached bool

	controlXfers uint64
	intXfers     uint64
}

// NewUSBController returns a controller with no device attached.
func NewUSBController(ic *IRQController) *USBController {
	return &USBController{ic: ic}
}

// AttachKeyboard plugs a keyboard into the root hub.
func (c *USBController) AttachKeyboard() *USBKeyboard {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kbd = &usbDevice{}
	c.attached = true
	return &USBKeyboard{dev: c.kbd, ic: c.ic}
}

// PortConnected reports root-hub port status.
func (c *USBController) PortConnected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attached
}

// ControlTransfer performs a control transfer to the device at addr
// (address 0 reaches the just-reset device, per the USB enumeration dance).
func (c *USBController) ControlTransfer(addr byte, setup SetupPacket) ([]byte, error) {
	c.mu.Lock()
	dev := c.kbd
	c.controlXfers++
	c.mu.Unlock()
	if dev == nil {
		return nil, ErrUSBNoDevice
	}
	dev.mu.Lock()
	devAddr := dev.address
	dev.mu.Unlock()
	// After SET_ADDRESS the device no longer answers at the default
	// address 0, exactly the enumeration pitfall USPi handles.
	if addr != devAddr {
		return nil, ErrUSBNoDevice
	}
	return dev.control(setup)
}

// InterruptTransfer polls the keyboard's interrupt-IN endpoint for one
// report. ok=false means NAK (nothing pending), as on the wire.
func (c *USBController) InterruptTransfer(addr byte) (r [HIDReportLen]byte, ok bool, err error) {
	c.mu.Lock()
	dev := c.kbd
	c.intXfers++
	c.mu.Unlock()
	if dev == nil {
		return r, false, ErrUSBNoDevice
	}
	dev.mu.Lock()
	devAddr := dev.address
	dev.mu.Unlock()
	if addr != devAddr {
		return r, false, ErrUSBNoDevice
	}
	r, ok = dev.interruptIn()
	return r, ok, nil
}

// Stats reports transfer counts (used in tests to show enumeration really
// walked the descriptor dance).
func (c *USBController) Stats() (control, interrupt uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.controlXfers, c.intXfers
}

// USBKeyboard is the host-side handle tests use to type on the simulated
// keyboard. It builds genuine HID boot reports — including modifier bits,
// multi-key rollover and key release — the features the paper says UART
// input cannot provide (§4.3).
type USBKeyboard struct {
	dev *usbDevice
	ic  *IRQController

	mu   sync.Mutex
	down map[byte]bool
	mods byte
}

// KeyDown presses a key (HID usage code) and emits a report.
func (k *USBKeyboard) KeyDown(usage byte) { k.change(usage, 0, true) }

// KeyUp releases a key and emits a report.
func (k *USBKeyboard) KeyUp(usage byte) { k.change(usage, 0, false) }

// ModifierDown presses a modifier (ModLCtrl etc.).
func (k *USBKeyboard) ModifierDown(mod byte) { k.change(0, mod, true) }

// ModifierUp releases a modifier.
func (k *USBKeyboard) ModifierUp(mod byte) { k.change(0, mod, false) }

func (k *USBKeyboard) change(usage, mod byte, down bool) {
	k.mu.Lock()
	if k.down == nil {
		k.down = make(map[byte]bool)
	}
	if usage != 0 {
		if down {
			k.down[usage] = true
		} else {
			delete(k.down, usage)
		}
	}
	if mod != 0 {
		if down {
			k.mods |= mod
		} else {
			k.mods &^= mod
		}
	}
	var rep [HIDReportLen]byte
	rep[0] = k.mods
	i := 2
	for u := range k.down {
		if i >= HIDReportLen {
			break // 6-key rollover limit, as in boot protocol
		}
		rep[i] = u
		i++
	}
	k.mu.Unlock()
	if k.dev.queueReport(rep) {
		k.ic.Raise(IRQUSB)
	}
}

// Tap presses and releases a key.
func (k *USBKeyboard) Tap(usage byte) {
	k.KeyDown(usage)
	k.KeyUp(usage)
}

// TypeString taps the keys for each byte of s (letters, digits, space,
// newline and a few punctuation marks), driving the shell in tests.
func (k *USBKeyboard) TypeString(s string) {
	for _, ch := range []byte(s) {
		usage, shift, ok := asciiToUsage(ch)
		if !ok {
			continue
		}
		if shift {
			k.ModifierDown(ModLShift)
		}
		k.Tap(usage)
		if shift {
			k.ModifierUp(ModLShift)
		}
	}
}

// HID usage codes Proto's keyboard driver understands.
const (
	UsageA         = 0x04
	UsageZ         = 0x1d
	Usage1         = 0x1e
	Usage0         = 0x27
	UsageEnter     = 0x28
	UsageEsc       = 0x29
	UsageBackspace = 0x2a
	UsageTab       = 0x2b
	UsageSpace     = 0x2c
	UsageMinus     = 0x2d
	UsageDot       = 0x37
	UsageSlash     = 0x38
	UsageRight     = 0x4f
	UsageLeft      = 0x50
	UsageDown      = 0x51
	UsageUp        = 0x52
)

// asciiToUsage maps printable ASCII to (usage, needs-shift).
func asciiToUsage(ch byte) (usage byte, shift, ok bool) {
	switch {
	case ch >= 'a' && ch <= 'z':
		return UsageA + (ch - 'a'), false, true
	case ch >= 'A' && ch <= 'Z':
		return UsageA + (ch - 'A'), true, true
	case ch >= '1' && ch <= '9':
		return Usage1 + (ch - '1'), false, true
	case ch == '0':
		return Usage0, false, true
	case ch == '\n':
		return UsageEnter, false, true
	case ch == ' ':
		return UsageSpace, false, true
	case ch == '-':
		return UsageMinus, false, true
	case ch == '.':
		return UsageDot, false, true
	case ch == '/':
		return UsageSlash, false, true
	}
	return 0, false, false
}

// UsageToASCII converts a usage code plus modifier state back to a byte
// (0 if unprintable); the kernel's keyboard driver uses it for /dev/events'
// text form and the shell's line discipline.
func UsageToASCII(usage, mods byte) byte {
	shift := mods&(ModLShift|ModRShift) != 0
	switch {
	case usage >= UsageA && usage <= UsageZ:
		if shift {
			return 'A' + (usage - UsageA)
		}
		return 'a' + (usage - UsageA)
	case usage >= Usage1 && usage <= Usage1+8:
		return '1' + (usage - Usage1)
	case usage == Usage0:
		return '0'
	case usage == UsageEnter:
		return '\n'
	case usage == UsageSpace:
		return ' '
	case usage == UsageBackspace:
		return 0x08
	case usage == UsageMinus:
		return '-'
	case usage == UsageDot:
		return '.'
	case usage == UsageSlash:
		return '/'
	}
	return 0
}

// DescribeUsage names a usage code for traces.
func DescribeUsage(usage byte) string {
	if a := UsageToASCII(usage, 0); a != 0 && a != 0x08 {
		if a == '\n' {
			return "enter"
		}
		return string(rune(a))
	}
	switch usage {
	case UsageEsc:
		return "esc"
	case UsageTab:
		return "tab"
	case UsageUp:
		return "up"
	case UsageDown:
		return "down"
	case UsageLeft:
		return "left"
	case UsageRight:
		return "right"
	}
	return fmt.Sprintf("usage%#x", usage)
}
