package hw

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// NIC ring and framing constants.
const (
	// NICMTU bounds one frame on the wire, header included. The network
	// stack sizes its segments to fit.
	NICMTU = 2048
	// NICTxRing bounds submitted-but-uncompleted TX descriptors. SubmitTX
	// refuses beyond it with ErrNICTxRingFull; the submitter waits for a
	// completion IRQ and retries, exactly like the SD card's queue depth.
	NICTxRing = 256
	// NICRxRing bounds frames delivered but not yet popped. Overflow
	// drops the frame (counted in Stats.RxDrops) — the receive ring of a
	// real controller under an unresponsive driver.
	NICRxRing = 4096
)

// NIC submission errors.
var (
	// ErrNICTxRingFull: every TX descriptor is in flight; pop completions
	// (wait for the IRQ) before submitting more.
	ErrNICTxRingFull = errors.New("nic: tx ring full")
	// ErrNICFrameTooBig: the frame exceeds NICMTU.
	ErrNICFrameTooBig = errors.New("nic: frame exceeds MTU")
	// ErrNICDown: the NIC (or its link) has been closed.
	ErrNICDown = errors.New("nic: interface down")
)

// NICStats counts ring activity for /proc/net and the tests.
type NICStats struct {
	TxFrames uint64
	TxBytes  uint64
	RxFrames uint64
	RxBytes  uint64
	RxDrops  uint64 // RX ring overflow: frame discarded
	TxIRQs   uint64 // completion interrupts raised
	RxIRQs   uint64 // delivery interrupts raised
}

// nicCompletion is one finished TX descriptor awaiting collection.
type nicCompletion struct {
	tag uint64
	err error
}

// NIC models one half of a point-to-point Ethernet-ish device, mirroring
// the split submit/completion design of the SD card's DMA path:
//
//   - SubmitTX programs a TX descriptor and returns immediately. The
//     frame's bytes are latched at submit (the descriptor owns a copy of
//     the slice reference; callers hand ownership over and never reuse the
//     buffer). When the simulated wire accepts the frame, a completion
//     record (tag, error) is queued and IRQNIC fires.
//   - Received frames land in the RX ring; each delivery raises IRQNIC.
//     The IRQ handler drains both rings with PopTX/PopRX until empty —
//     one interrupt may cover several descriptors, as on real hardware.
//
// Two NICs cross-wired by NewLink form a full-duplex link with
// configurable per-direction latency and bandwidth; each direction is a
// FIFO wire (frames serialize in submit order and deliver in that order
// unless a NetFaultPlan says otherwise).
type NIC struct {
	name string
	ic   *IRQController
	dir  *linkDir // outbound wire owned by this NIC

	mu       sync.Mutex
	notify   func() // completion signal when no IRQ controller is wired
	inflight int    // submitted TX descriptors not yet completed
	rxq      [][]byte
	txComp   []nicCompletion
	closed   bool
	stats    NICStats
}

// Name identifies the interface ("eth0", "peer0") in diagnostics.
func (n *NIC) Name() string { return n.name }

// SetNotify installs a completion signal for NICs without an IRQ
// controller (the test-harness / remote-host side of a link): it fires
// after every TX completion or RX delivery, in place of IRQNIC.
func (n *NIC) SetNotify(fn func()) {
	n.mu.Lock()
	n.notify = fn
	n.mu.Unlock()
}

// raise signals ring activity: IRQNIC when a controller is wired, the
// notify hook otherwise. Called with n.mu NOT held.
func (n *NIC) raise() {
	n.mu.Lock()
	ic, fn := n.ic, n.notify
	n.mu.Unlock()
	if ic != nil {
		ic.Raise(IRQNIC)
	}
	if fn != nil {
		fn()
	}
}

// SubmitTX programs one TX descriptor and returns immediately; the frame
// travels the link and the completion (tag) is collected via PopTX after
// IRQNIC. The NIC takes ownership of the slice — callers must not touch
// it again (the wire delivers the very bytes to the peer's RX ring).
func (n *NIC) SubmitTX(tag uint64, frame []byte) error {
	if len(frame) > NICMTU {
		return ErrNICFrameTooBig
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNICDown
	}
	if n.inflight >= NICTxRing {
		n.mu.Unlock()
		return ErrNICTxRingFull
	}
	n.inflight++
	n.stats.TxFrames++
	n.stats.TxBytes += uint64(len(frame))
	n.mu.Unlock()
	n.dir.submit(txFrame{tag: tag, data: frame, src: n})
	return nil
}

// completeTX queues the descriptor's completion and raises the IRQ — the
// wire calls it once the frame has serialized onto the link.
func (n *NIC) completeTX(tag uint64, err error) {
	n.mu.Lock()
	n.inflight--
	n.txComp = append(n.txComp, nicCompletion{tag: tag, err: err})
	n.stats.TxIRQs++
	n.mu.Unlock()
	n.raise()
}

// deliverRX lands a frame in the RX ring (wire side). A full ring drops
// the frame; recovery is the protocol layer's problem, as in real life.
func (n *NIC) deliverRX(frame []byte) {
	n.mu.Lock()
	if n.closed || len(n.rxq) >= NICRxRing {
		n.stats.RxDrops++
		n.mu.Unlock()
		return
	}
	n.rxq = append(n.rxq, frame)
	n.stats.RxFrames++
	n.stats.RxBytes += uint64(len(frame))
	n.stats.RxIRQs++
	n.mu.Unlock()
	n.raise()
}

// PopTX collects one finished TX descriptor (tag and error), FIFO. The
// IRQNIC handler drains this until ok is false.
func (n *NIC) PopTX() (tag uint64, err error, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.txComp) == 0 {
		return 0, nil, false
	}
	c := n.txComp[0]
	n.txComp = n.txComp[1:]
	return c.tag, c.err, true
}

// PopRX collects one received frame, FIFO. The IRQNIC handler drains this
// until ok is false.
func (n *NIC) PopRX() (frame []byte, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.rxq) == 0 {
		return nil, false
	}
	f := n.rxq[0]
	n.rxq = n.rxq[1:]
	return f, true
}

// RxQueued reports frames waiting in the RX ring (diagnostics).
func (n *NIC) RxQueued() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rxq)
}

// Stats snapshots the ring counters.
func (n *NIC) Stats() NICStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close downs the interface: future submits fail, its outbound wire
// stops, queued RX frames are dropped. Closing both NICs of a link stops
// all four wire goroutines.
func (n *NIC) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.rxq = nil
	n.mu.Unlock()
	n.dir.close()
}

// LinkConfig shapes a full-duplex link. The zero value is an instant,
// infinite-bandwidth wire (unit tests); benchmarks set real numbers.
type LinkConfig struct {
	// LatencyAB / LatencyBA delay delivery per direction (propagation
	// time; overlaps with serialization of later frames).
	LatencyAB, LatencyBA time.Duration
	// BandwidthAB / BandwidthBA serialize frames at bytes/second per
	// direction (0 = infinite). Serialization occupies the wire: frames
	// queue behind each other, which is what makes fan-out bandwidth real.
	BandwidthAB, BandwidthBA int
}

// NewLink mints two cross-wired NICs: a's transmissions deliver to b's RX
// ring and vice versa. Either IRQ controller may be nil (use SetNotify on
// that side). Frames per direction are FIFO unless a NetFaultPlan
// reorders them.
func NewLink(nameA, nameB string, icA, icB *IRQController, cfg LinkConfig) (a, b *NIC) {
	a = &NIC{name: nameA, ic: icA}
	b = &NIC{name: nameB, ic: icB}
	a.dir = newLinkDir(fmt.Sprintf("%s->%s", nameA, nameB), b, cfg.LatencyAB, cfg.BandwidthAB)
	b.dir = newLinkDir(fmt.Sprintf("%s->%s", nameB, nameA), a, cfg.LatencyBA, cfg.BandwidthBA)
	return a, b
}

// txFrame is one frame in flight on a wire.
type txFrame struct {
	tag  uint64
	data []byte
	src  *NIC
}

// linkDir is one direction of a link: a FIFO wire with serialization
// (bandwidth) and propagation (latency) stages. Two goroutines model the
// pipeline — the serializer occupies the wire per frame and completes the
// TX descriptor; the deliverer sleeps out the propagation delay in FIFO
// order so a long latency never reorders frames, then lands each frame in
// the peer's RX ring. The optional NetFaultPlan sits between the stages.
type linkDir struct {
	name    string
	dst     *NIC
	latency time.Duration
	bytesNS float64 // nanoseconds per byte (0 = infinite bandwidth)

	mu      sync.Mutex
	queue   []txFrame
	cond    *sync.Cond
	closed  bool
	started bool
	faults  *netFaultState

	deliver chan delivery
}

// delivery is a frame past serialization, stamped with its arrival time.
// stop is the pipeline-shutdown sentinel: the channel is never closed
// (the fault layer's delayed flush may still send after link close; a
// late frame parks harmlessly in the buffer instead of panicking).
type delivery struct {
	data []byte
	at   time.Time
	stop bool
}

func newLinkDir(name string, dst *NIC, latency time.Duration, bandwidth int) *linkDir {
	d := &linkDir{name: name, dst: dst, latency: latency}
	if bandwidth > 0 {
		d.bytesNS = float64(time.Second) / float64(bandwidth)
	}
	d.cond = sync.NewCond(&d.mu)
	d.deliver = make(chan delivery, NICRxRing)
	return d
}

// submit queues a frame for the wire, starting the direction's goroutines
// on first use (links in NIC-less tests cost nothing until touched).
func (d *linkDir) submit(f txFrame) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		f.src.completeTX(f.tag, ErrNICDown)
		return
	}
	if !d.started {
		d.started = true
		go d.serialize()
		go d.propagate()
	}
	d.queue = append(d.queue, f)
	d.mu.Unlock()
	d.cond.Signal()
}

func (d *linkDir) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	started := d.started
	d.mu.Unlock()
	d.cond.Broadcast()
	if !started {
		return
	}
}

// serialize is the wire-occupancy stage: one frame at a time, in submit
// order, each charged its serialization time. Completion of the TX
// descriptor fires here — the DMA engine has read the buffer.
func (d *linkDir) serialize() {
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if d.closed {
			// Fail whatever is still queued, then stop the pipeline.
			rest := d.queue
			d.queue = nil
			d.mu.Unlock()
			for _, f := range rest {
				f.src.completeTX(f.tag, ErrNICDown)
			}
			d.deliver <- delivery{stop: true}
			return
		}
		f := d.queue[0]
		d.queue = d.queue[1:]
		fp := d.faults
		d.mu.Unlock()

		if d.bytesNS > 0 {
			time.Sleep(time.Duration(d.bytesNS * float64(len(f.data))))
		}
		f.src.completeTX(f.tag, nil)
		if fp != nil {
			fp.emit(f.data, d.deliver)
		} else {
			d.deliver <- delivery{data: f.data, at: time.Now().Add(d.latency)}
		}
	}
}

// propagate is the latency stage: frames sleep until their arrival time
// in FIFO order (arrival times are monotonic for a fixed latency, and a
// fault-plan latency spike delays everything behind it — spikes never
// reorder).
func (d *linkDir) propagate() {
	for dl := range d.deliver {
		if dl.stop {
			return
		}
		if wait := time.Until(dl.at); wait > 0 {
			time.Sleep(wait)
		}
		d.dst.deliverRX(dl.data)
	}
}
