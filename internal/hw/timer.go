package hw

import (
	"sync"
	"sync/atomic"
	"time"
)

// SystemTimer is the SoC-level free-running counter (BCM2835 system timer:
// 1 MHz on the Pi3). Proto uses it for timekeeping; the per-core generic
// timers drive scheduler ticks.
type SystemTimer struct {
	epoch time.Time
}

// NewSystemTimer starts the counter at zero.
func NewSystemTimer() *SystemTimer { return &SystemTimer{epoch: time.Now()} }

// Ticks returns microseconds since power-on (the counter runs at 1 MHz).
func (t *SystemTimer) Ticks() uint64 {
	return uint64(time.Since(t.epoch) / time.Microsecond)
}

// Now returns the elapsed time since power-on.
func (t *SystemTimer) Now() time.Duration { return time.Since(t.epoch) }

// GenericTimer is one core's ARM generic timer. When started it raises that
// core's timer IRQ at the programmed interval; the kernel uses it for
// preemption ticks. Each core owns exactly one (§4.5: "interrupts from ARM
// generic timers ... are fed to each core").
type GenericTimer struct {
	core     int
	ic       *IRQController
	mu       sync.Mutex
	stop     chan struct{}
	interval time.Duration
	fired    atomic.Uint64
}

// NewGenericTimer returns core's (stopped) generic timer.
func NewGenericTimer(core int, ic *IRQController) *GenericTimer {
	return &GenericTimer{core: core, ic: ic}
}

// Core returns which core this timer interrupts.
func (t *GenericTimer) Core() int { return t.core }

// Start programs the timer to fire every interval. The handler must already
// be registered on GenericTimerLine(core). Restarting reprograms.
func (t *GenericTimer) Start(interval time.Duration) {
	if interval <= 0 {
		panic("hw: generic timer interval must be positive")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop != nil {
		close(t.stop)
	}
	stop := make(chan struct{})
	t.stop = stop
	t.interval = interval
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.fired.Add(1)
				t.ic.Raise(GenericTimerLine(t.core))
			}
		}
	}()
}

// Stop disarms the timer.
func (t *GenericTimer) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop != nil {
		close(t.stop)
		t.stop = nil
	}
}

// Fired reports how many times the timer has fired since Start.
func (t *GenericTimer) Fired() uint64 { return t.fired.Load() }
