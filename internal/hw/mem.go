// Package hw models the Raspberry Pi 3-class hardware that Proto targets:
// physical memory, an interrupt controller with per-core routing and FIQ,
// UART, system and per-core generic timers, the mailbox/framebuffer path, a
// GPIO block, PWM audio fed by a DMA engine, an SD-card controller, and a
// layered USB stack with a HID keyboard.
//
// The devices are in-process models, not emulations of register files: each
// device exposes the operations the Proto kernel drivers need (with the same
// synchrony, latency structure, and IRQ behaviour as the real parts), so the
// kernel above exercises the same design decisions the paper describes —
// polled UART TX, IRQ-driven RX, DMA completion interrupts, per-block SD
// latency, and a framebuffer whose writes are invisible until a CPU cache
// flush.
package hw

import "fmt"

// FrameSize is the small page size of the machine (4 KB, as on ARMv8).
const FrameSize = 4096

// BlockSize is the coarse kernel mapping granularity (1 MB blocks).
const BlockSize = 1 << 20

// Mem is the machine's physical memory. The kernel's frame allocator hands
// out frame-aligned regions of it; devices (framebuffer, DMA) read and write
// it directly, exactly like DRAM shared between CPU and peripherals.
type Mem struct {
	buf []byte
}

// NewMem returns physical memory of the given size, rounded up to a whole
// number of frames. Memory content is deliberately NOT guaranteed to be zero
// (see Scramble): the paper calls out that real hardware boots with arbitrary
// values in uninitialized memory, unlike QEMU.
func NewMem(size int) *Mem {
	if size <= 0 {
		panic("hw: memory size must be positive")
	}
	size = (size + FrameSize - 1) / FrameSize * FrameSize
	return &Mem{buf: make([]byte, size)}
}

// Size returns the total number of bytes of physical memory.
func (m *Mem) Size() int { return len(m.buf) }

// Frames returns the number of physical frames.
func (m *Mem) Frames() int { return len(m.buf) / FrameSize }

// Bytes returns the backing store for a physical address range. The slice
// aliases physical memory: writes through it are visible to devices.
func (m *Mem) Bytes(pa, n int) []byte {
	if pa < 0 || n < 0 || pa+n > len(m.buf) {
		panic(fmt.Sprintf("hw: physical access [%#x,%#x) outside %#x bytes of DRAM", pa, pa+n, len(m.buf)))
	}
	return m.buf[pa : pa+n : pa+n]
}

// Frame returns the backing store of one whole physical frame.
func (m *Mem) Frame(frame int) []byte {
	return m.Bytes(frame*FrameSize, FrameSize)
}

// Scramble fills memory with a deterministic non-zero pattern, modelling the
// arbitrary content of real DRAM at power-on. Kernel code that assumes
// zeroed memory (a QEMU-only luxury) breaks visibly under test.
func (m *Mem) Scramble(seed uint64) {
	x := seed | 1
	for i := range m.buf {
		// xorshift64: cheap, deterministic garbage.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.buf[i] = byte(x)
	}
}

// MemMove copies within physical memory using a widened fast path, standing
// in for Proto's hand-written ARMv8 assembly memmove (§5.2). The kernel's
// ModeXv6 baseline uses a byte-at-a-time loop instead; benchmarks compare
// the two.
func (m *Mem) MemMove(dst, src, n int) {
	copy(m.Bytes(dst, n), m.Bytes(src, n))
}

// MemMoveSlow is the unoptimized byte-loop copy used by the xv6-like
// baseline configuration.
func (m *Mem) MemMoveSlow(dst, src, n int) {
	d := m.Bytes(dst, n)
	s := m.Bytes(src, n)
	for i := 0; i < n; i++ {
		d[i] = s[i]
	}
}
