package hw

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IRQLine identifies one interrupt source, mirroring the BCM2837 sources
// Proto uses.
type IRQLine int

// Interrupt sources. Per-core generic timers get one line per core; all
// other IO lines are routed to a single core (core 0 on Proto) for
// simplicity, exactly as §4.5 describes.
const (
	IRQSysTimer IRQLine = iota // SoC-level system timer
	IRQUARTRx                  // UART receive FIFO non-empty
	IRQUSB                     // USB host controller (keyboard reports)
	IRQDMA                     // DMA transfer completion (audio)
	IRQGPIO                    // GPIO edge (Game HAT buttons)
	IRQSD                      // SD controller DMA completion (prod baseline)
	IRQNIC                     // NIC ring activity: RX frame delivered or TX descriptor completed
	FIQPanic                   // panic button: fast interrupt, never masked

	irqGenericTimerBase // per-core timer lines follow; do not use directly
)

// GenericTimerLine returns the IRQ line of core's ARM generic timer.
func GenericTimerLine(core int) IRQLine { return irqGenericTimerBase + IRQLine(core) }

// String names the line for traces and tests.
func (l IRQLine) String() string {
	switch l {
	case IRQSysTimer:
		return "systimer"
	case IRQUARTRx:
		return "uart-rx"
	case IRQUSB:
		return "usb"
	case IRQDMA:
		return "dma"
	case IRQGPIO:
		return "gpio"
	case IRQSD:
		return "sd"
	case IRQNIC:
		return "nic"
	case FIQPanic:
		return "fiq-panic"
	}
	if l >= irqGenericTimerBase {
		return fmt.Sprintf("gtimer%d", int(l-irqGenericTimerBase))
	}
	return fmt.Sprintf("irq%d", int(l))
}

// IRQHandler runs in interrupt context: on the raising device's goroutine,
// with the target core's IRQs conceptually masked. Handlers must not block
// on anything a masked-IRQ context could not wait for.
type IRQHandler func(line IRQLine, core int)

// IRQController routes device interrupts to cores, honouring per-core
// masking. A line raised while its target core is masked stays pending and
// is delivered when the core unmasks — except FIQPanic, which (like ARMv8's
// FIQ in Proto's panic-button design) bypasses the IRQ mask entirely and is
// delivered round-robin across cores.
type IRQController struct {
	mu       sync.Mutex
	handlers map[IRQLine]IRQHandler
	routing  map[IRQLine]int
	enabled  map[IRQLine]bool
	masked   []bool      // per-core IRQ mask (DAIF.I analogue)
	pending  [][]IRQLine // per-core pending lines raised while masked
	fiqNext  atomic.Uint32

	counts map[IRQLine]*atomic.Uint64
}

// NewIRQController returns a controller for ncores cores. All lines start
// disabled and routed to core 0.
func NewIRQController(ncores int) *IRQController {
	if ncores <= 0 {
		panic("hw: need at least one core")
	}
	return &IRQController{
		handlers: make(map[IRQLine]IRQHandler),
		routing:  make(map[IRQLine]int),
		enabled:  make(map[IRQLine]bool),
		masked:   make([]bool, ncores),
		pending:  make([][]IRQLine, ncores),
		counts:   make(map[IRQLine]*atomic.Uint64),
	}
}

// Cores returns the number of cores the controller routes to.
func (ic *IRQController) Cores() int { return len(ic.masked) }

// Register installs the handler for a line and enables it, routing to core.
func (ic *IRQController) Register(line IRQLine, core int, h IRQHandler) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if core < 0 || core >= len(ic.masked) {
		panic(fmt.Sprintf("hw: irq %v routed to bad core %d", line, core))
	}
	ic.handlers[line] = h
	ic.routing[line] = core
	ic.enabled[line] = true
	if ic.counts[line] == nil {
		ic.counts[line] = new(atomic.Uint64)
	}
}

// Disable stops delivery for a line; raises while disabled are dropped.
func (ic *IRQController) Disable(line IRQLine) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	ic.enabled[line] = false
}

// Mask blocks IRQ delivery to a core (raised lines go pending).
func (ic *IRQController) Mask(core int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	ic.masked[core] = true
}

// Unmask re-enables IRQ delivery to a core and drains its pending lines.
func (ic *IRQController) Unmask(core int) {
	ic.mu.Lock()
	drain := ic.pending[core]
	ic.pending[core] = nil
	ic.masked[core] = false
	handlers := make([]IRQHandler, 0, len(drain))
	for _, line := range drain {
		if ic.enabled[line] {
			handlers = append(handlers, ic.handlers[line])
		}
	}
	ic.mu.Unlock()
	for i, line := range drain {
		if i < len(handlers) && handlers[i] != nil {
			ic.counts[line].Add(1)
			handlers[i](line, core)
		}
	}
}

// Raise signals a device interrupt. If the line's core is masked the
// interrupt stays pending; FIQPanic ignores masking and rotates cores.
func (ic *IRQController) Raise(line IRQLine) {
	if line == FIQPanic {
		ic.raiseFIQ()
		return
	}
	ic.mu.Lock()
	if !ic.enabled[line] {
		ic.mu.Unlock()
		return
	}
	core := ic.routing[line]
	h := ic.handlers[line]
	if ic.masked[core] {
		ic.pending[core] = append(ic.pending[core], line)
		ic.mu.Unlock()
		return
	}
	cnt := ic.counts[line]
	ic.mu.Unlock()
	if h != nil {
		cnt.Add(1)
		h(line, core)
	}
}

// raiseFIQ delivers the panic FIQ round-robin regardless of IRQ masks, as
// Proto's emergency-dump design requires (§5.1).
func (ic *IRQController) raiseFIQ() {
	ic.mu.Lock()
	h := ic.handlers[FIQPanic]
	enabled := ic.enabled[FIQPanic]
	n := len(ic.masked)
	cnt := ic.counts[FIQPanic]
	ic.mu.Unlock()
	if !enabled || h == nil {
		return
	}
	core := int(ic.fiqNext.Add(1)-1) % n
	cnt.Add(1)
	h(FIQPanic, core)
}

// Count reports how many interrupts of a line have been delivered.
func (ic *IRQController) Count(line IRQLine) uint64 {
	ic.mu.Lock()
	c := ic.counts[line]
	ic.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// PendingLen reports how many interrupts are queued for a masked core
// (exposed for tests of mask/unmask semantics).
func (ic *IRQController) PendingLen(core int) int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return len(ic.pending[core])
}

// Routed reports whether a line currently has an enabled handler. Devices
// whose completions are collected exclusively through an IRQ handler (the
// NIC rings) check this at attach time so a forgotten Register fails
// loudly instead of silently dropping every completion.
func (ic *IRQController) Routed(line IRQLine) bool {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.enabled[line] && ic.handlers[line] != nil
}
