package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Fig7Bucket is one SLoC category of Figure 7.
type Fig7Bucket struct {
	Name string
	SLoC int
}

// fig7Map assigns repository packages to the paper's Figure 7 categories.
var fig7Map = []struct {
	prefix string
	bucket string
}{
	{"internal/kernel/sched", "kernel core"},
	{"internal/kernel/mm", "kernel core"},
	{"internal/kernel/ksync", "kernel core"},
	{"internal/kernel/kdebug", "kernel core"},
	{"internal/kernel/wm", "kernel core"},
	{"internal/kernel/fs", "file"},
	{"internal/kernel/bcache", "file"},
	{"internal/kernel/xv6fs", "file"},
	{"internal/kernel/fat32", "FAT32"},
	{"internal/hw", "drivers"},
	{"internal/kernel", "kernel core"}, // remaining kernel files
	{"internal/uelf", "lib/util"},
	{"internal/user/ulib", "userlib"},
	{"internal/user/minisdl", "userlib"},
	{"internal/user/codec", "userlib"},
	{"internal/user/apps", "apps"},
	{"internal/core", "lib/util"},
	{"internal/experiments", "harness"},
	{"cmd", "harness"},
	{"examples", "apps"},
}

// CountSLoC walks root counting non-blank, non-comment-only Go lines per
// Figure 7 bucket. Test files are tallied separately.
func CountSLoC(root string) (buckets []Fig7Bucket, testLines int, err error) {
	counts := map[string]int{}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n := sloc(string(data))
		if strings.HasSuffix(path, "_test.go") {
			testLines += n
			return nil
		}
		bucket := "other"
		for _, m := range fig7Map {
			if strings.HasPrefix(rel, m.prefix) {
				bucket = m.bucket
				break
			}
		}
		counts[bucket] += n
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for name, n := range counts {
		buckets = append(buckets, Fig7Bucket{name, n})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].SLoC > buckets[j].SLoC })
	return buckets, testLines, nil
}

// sloc counts non-blank lines that are not pure comments.
func sloc(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// Fig7 renders the source analysis for the repository at root.
func Fig7(root string) (string, error) {
	buckets, tests, err := CountSLoC(root)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: source lines of code by subsystem (this reproduction)\n")
	total := 0
	for _, bk := range buckets {
		fmt.Fprintf(&b, "%-12s %7d\n", bk.Name, bk.SLoC)
		total += bk.SLoC
	}
	fmt.Fprintf(&b, "%-12s %7d\n", "TOTAL", total)
	fmt.Fprintf(&b, "%-12s %7d (not in the paper's count)\n", "tests", tests)
	fmt.Fprintf(&b, "(paper: kernel 2.5K SLoC at Prototype 1 growing to ~33K at Prototype 5,\n dominated by FAT32 + USB; same shape: drivers+FAT32 dominate here)\n")
	return b.String(), nil
}
