package experiments

import (
	"fmt"
	"strings"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/wm"
	"protosim/internal/user/apps/blockchain"
	"protosim/internal/user/apps/nes"
	"protosim/internal/user/codec/mpv"
	"protosim/internal/user/ulib"
)

// marioInstance runs the emulator for n frames, presenting through its own
// WM surface — exactly how Figure 1(l)'s eight marios share the screen.
// (Direct rendering would serialize all instances on the one hardware
// framebuffer; the window manager is what makes the workload scale.)
func marioInstance(p *kernel.Proc, n int) int {
	cart, err := nes.BuildMarioROM("mario", 3)
	if err != nil {
		return 1
	}
	sfd, err := p.OpenSurface("mario8", nes.ScreenW/2, nes.ScreenH/2)
	if err != nil {
		return 1
	}
	console := nes.NewConsole(cart)
	frame := make([]byte, nes.ScreenW*nes.ScreenH*4)
	small := make([]byte, (nes.ScreenW/2)*(nes.ScreenH/2)*4)
	for i := 0; i < n; i++ {
		console.StepFrame()
		console.Render(frame, nes.ScreenW*4)
		// Downscale 2x into the window (8 windows must fit the panel).
		for y := 0; y < nes.ScreenH/2; y++ {
			srow := frame[(y*2)*nes.ScreenW*4:]
			drow := small[y*(nes.ScreenW/2)*4:]
			for x := 0; x < nes.ScreenW/2; x++ {
				copy(drow[x*4:x*4+4], srow[x*8:x*8+4])
			}
		}
		if _, err := p.SysWrite(sfd, small); err != nil {
			return 1
		}
		p.Checkpoint()
	}
	return 0
}

// mineN mines n blocks at the given difficulty with `threads` workers.
func mineN(p *kernel.Proc, n, difficulty, threads int) error {
	m := blockchain.NewMiner(difficulty, threads)
	var prev [32]byte
	for i := 0; i < n; i++ {
		blk := blockchain.Block{Index: uint32(i), PrevHash: prev}
		solved, err := m.MineBlock(p, blk)
		if err != nil {
			return err
		}
		if !blockchain.Verify(&solved, difficulty) {
			return fmt.Errorf("experiments: mined block failed verification")
		}
		prev = solved.Hash
	}
	return nil
}

// Fig11Render is the rendering-latency breakdown for one app (ms/frame).
type Fig11Render struct {
	Name     string
	AppLogic float64 // emulate / decode (user)
	Draw     float64 // pixel conversion + blit into fb memory (lib)
	Present  float64 // cache flush / surface write (kernel)
}

// Fig11Rendering instruments the frame pipelines of video and the mario
// variants, splitting each frame into app logic, draw, and present — the
// decomposition of Figure 11(a).
func Fig11Rendering(frames int) ([]Fig11Render, string, error) {
	sys, err := newSystem(kernel.ModeProto, 4, 8)
	if err != nil {
		return nil, "", err
	}
	defer sys.Shutdown()
	var out []Fig11Render

	// video: decode (app) / YUV convert (draw) / flush (present).
	var vr Fig11Render
	vr.Name = "video"
	err = runProc(sys, "fig11-video", func(p *kernel.Proc) error {
		data, err := ulib.ReadFile(p, "/d/clip480.mpv")
		if err != nil {
			return err
		}
		dec, err := mpv.NewDecoder(data)
		if err != nil {
			return err
		}
		fbmem, err := p.MapFramebuffer()
		if err != nil {
			return err
		}
		fb := p.Kernel().FB
		var tApp, tDraw, tPresent time.Duration
		n := 0
		for n < frames {
			t0 := time.Now()
			f, err := dec.NextFrame()
			if err != nil {
				return err
			}
			if f == nil {
				// Loop the clip.
				dec, _ = mpv.NewDecoder(data)
				continue
			}
			t1 := time.Now()
			if f.W <= fb.Width() && f.H <= fb.Height() {
				mpv.FastYUVToXRGB(f, fbmem, fb.Pitch())
			}
			t2 := time.Now()
			p.SysCacheFlush(0, fb.Size())
			t3 := time.Now()
			tApp += t1.Sub(t0)
			tDraw += t2.Sub(t1)
			tPresent += t3.Sub(t2)
			n++
			p.Checkpoint()
		}
		vr.AppLogic = msPerFrame(tApp, n)
		vr.Draw = msPerFrame(tDraw, n)
		vr.Present = msPerFrame(tPresent, n)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	out = append(out, vr)

	// mario-noinput: emulate (app) / render+blit (draw) / flush (present).
	var mr Fig11Render
	mr.Name = "mario-noinput"
	err = runProc(sys, "fig11-mario", func(p *kernel.Proc) error {
		cart, err := nes.BuildMarioROM("mario", 3)
		if err != nil {
			return err
		}
		fbmem, err := p.MapFramebuffer()
		if err != nil {
			return err
		}
		fb := p.Kernel().FB
		console := nes.NewConsole(cart)
		frame := make([]byte, nes.ScreenW*nes.ScreenH*4)
		var tApp, tDraw, tPresent time.Duration
		for i := 0; i < frames; i++ {
			t0 := time.Now()
			console.StepFrame()
			t1 := time.Now()
			console.Render(frame, nes.ScreenW*4)
			rows := min(nes.ScreenH, fb.Height())
			for y := 0; y < rows; y++ {
				copy(fbmem[y*fb.Pitch():], frame[y*nes.ScreenW*4:(y+1)*nes.ScreenW*4])
			}
			t2 := time.Now()
			p.SysCacheFlush(0, fb.Size())
			t3 := time.Now()
			tApp += t1.Sub(t0)
			tDraw += t2.Sub(t1)
			tPresent += t3.Sub(t2)
			p.Checkpoint()
		}
		mr.AppLogic = msPerFrame(tApp, frames)
		mr.Draw = msPerFrame(tDraw, frames)
		mr.Present = msPerFrame(tPresent, frames)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	out = append(out, mr)

	// mario-sdl: same emulation, but present = surface write + WM
	// composition (the indirection cost).
	var sr Fig11Render
	sr.Name = "mario-sdl"
	err = runProc(sys, "fig11-mariosdl", func(p *kernel.Proc) error {
		cart, err := nes.BuildMarioROM("mario", 3)
		if err != nil {
			return err
		}
		sfd, err := p.OpenSurface("mario", nes.ScreenW, nes.ScreenH)
		if err != nil {
			return err
		}
		console := nes.NewConsole(cart)
		frame := make([]byte, nes.ScreenW*nes.ScreenH*4)
		var tApp, tDraw, tPresent time.Duration
		for i := 0; i < frames; i++ {
			t0 := time.Now()
			console.StepFrame()
			t1 := time.Now()
			console.Render(frame, nes.ScreenW*4)
			t2 := time.Now()
			if _, err := p.SysWrite(sfd, frame); err != nil {
				return err
			}
			t3 := time.Now()
			tApp += t1.Sub(t0)
			tDraw += t2.Sub(t1)
			tPresent += t3.Sub(t2)
			p.Checkpoint()
		}
		sr.AppLogic = msPerFrame(tApp, frames)
		sr.Draw = msPerFrame(tDraw, frames)
		sr.Present = msPerFrame(tPresent, frames)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	out = append(out, sr)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11(a): rendering latency breakdown (ms/frame)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "app", "app logic", "draw", "present")
	for _, r := range out {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f\n", r.Name, r.AppLogic, r.Draw, r.Present)
	}
	return out, b.String(), nil
}

func msPerFrame(d time.Duration, n int) float64 {
	return float64(d.Microseconds()) / 1000 / float64(n)
}

// Fig11Input is the input-latency result for one delivery path (µs).
type Fig11Input struct {
	Path      string
	LatencyUS float64
}

// Fig11InputLatency measures end-to-end input latency: key injection at
// the "driver" to observation by the app, for the three delivery paths of
// Figure 11(b). As in the paper, the app-side polling interval dominates:
// DOOM polls its non-blocking fd every ~5 ms, while the mario variants
// consume events once per ~15 ms frame, plus the extra indirection (pipe
// IPC for mario-proc, WM dispatch + event queue for mario-sdl). Keys are
// injected asynchronously at varying offsets within the polling period.
func Fig11InputLatency(rounds int) ([]Fig11Input, string, error) {
	sys, err := newSystem(kernel.ModeProto, 4, 8)
	if err != nil {
		return nil, "", err
	}
	defer sys.Shutdown()
	var out []Fig11Input

	// inject sends a key after a deterministic pseudo-random offset so the
	// app's polling phase is sampled uniformly.
	inject := func(i int) time.Time {
		offset := time.Duration(i*7%13) * time.Millisecond
		time.Sleep(offset)
		sent := time.Now()
		sys.Kernel.InjectKey(wm.InputEvent{Down: true, Code: hw.UsageA, ASCII: 'a'})
		return sent
	}

	// DOOM: direct non-blocking poll every 5 ms.
	var direct float64
	err = runProc(sys, "input-direct", func(p *kernel.Proc) error {
		efd, err := p.SysOpen("/dev/events", fs.ORdOnly|fs.ONonblock)
		if err != nil {
			return err
		}
		buf := make([]byte, wm.EventSize)
		var total time.Duration
		for i := 0; i < rounds; i++ {
			sentCh := make(chan time.Time, 1)
			go func(i int) { sentCh <- inject(i) }(i)
			var sent time.Time
			for {
				if _, err := p.SysRead(efd, buf); err == nil {
					if sent.IsZero() {
						sent = <-sentCh
					}
					break
				}
				p.SysSleep(5) // DOOM's polling interval
			}
			total += time.Since(sent)
		}
		direct = float64(total.Microseconds()) / float64(rounds)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	out = append(out, Fig11Input{"doom-direct-poll", direct})

	// mario-proc: a reader process forwards events into a pipe; the main
	// loop drains the pipe once per 15 ms frame.
	var viaIPC float64
	err = runProc(sys, "input-ipc", func(p *kernel.Proc) error {
		rfd, wfd, err := p.SysPipe()
		if err != nil {
			return err
		}
		p.SysFork(func(c *kernel.Proc) {
			efd, err := c.SysOpen("/dev/events", fs.ORdOnly)
			if err != nil {
				c.SysExit(1)
			}
			buf := make([]byte, wm.EventSize)
			for {
				if _, err := c.SysRead(efd, buf); err != nil {
					c.SysExit(0)
				}
				if _, err := c.SysWrite(wfd, buf); err != nil {
					c.SysExit(0)
				}
			}
		})
		// Drain via a non-blocking frame loop: the pipe read must not
		// block, so probe with a 1-byte peek through a second pipe? The
		// kernel pipe blocks; emulate the frame loop by reading only when
		// the event must have been forwarded — poll the pipe with a short
		// frame sleep first, matching mario-proc's event consumption
		// cadence (events are handled at most once per frame).
		buf := make([]byte, wm.EventSize)
		var total time.Duration
		for i := 0; i < rounds; i++ {
			sentCh := make(chan time.Time, 1)
			go func(i int) { sentCh <- inject(i) }(i)
			p.SysSleep(15) // the frame in progress when the key arrives
			if _, err := p.SysRead(rfd, buf); err != nil {
				return err
			}
			sent := <-sentCh
			total += time.Since(sent)
		}
		viaIPC = float64(total.Microseconds()) / float64(rounds)
		p.SysClose(rfd)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	out = append(out, Fig11Input{"mario-proc-ipc", viaIPC})

	// mario-sdl: WM focus dispatch into the window's queue, polled once
	// per 15 ms frame.
	var viaWM float64
	err = runProc(sys, "input-wm", func(p *kernel.Proc) error {
		if _, err := p.OpenSurface("probe", 32, 32); err != nil {
			return err
		}
		efd, err := p.OpenSurfaceEvents(true)
		if err != nil {
			return err
		}
		buf := make([]byte, wm.EventSize)
		var total time.Duration
		for i := 0; i < rounds; i++ {
			sentCh := make(chan time.Time, 1)
			go func(i int) { sentCh <- inject(i) }(i)
			var sent time.Time
			for {
				if _, err := p.SysRead(efd, buf); err == nil {
					if sent.IsZero() {
						sent = <-sentCh
					}
					break
				}
				p.SysSleep(15) // frame-paced event polling
			}
			total += time.Since(sent)
		}
		viaWM = float64(total.Microseconds()) / float64(rounds)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	out = append(out, Fig11Input{"mario-sdl-wm", viaWM})

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11(b): input latency, injection to app (us)\n")
	for _, r := range out {
		fmt.Fprintf(&b, "%-18s %10.0f us\n", r.Path, r.LatencyUS)
	}
	return out, b.String(), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
