// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) against the simulated system. Each experiment returns
// structured results plus a formatted text rendition; cmd/experiments
// prints them and bench_test.go wraps them as testing.B benchmarks.
//
// Absolute numbers come from the simulation substrate and differ from the
// paper's Pi3 silicon; EXPERIMENTS.md records both and the *shape*
// comparisons that must hold.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"protosim/internal/core"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
)

// newSystem boots a Prototype 5 system for measurements.
func newSystem(mode kernel.Mode, cores, assetScale int) (*core.System, error) {
	return core.NewSystem(core.Options{
		Prototype:  core.Prototype5,
		Cores:      cores,
		Mode:       mode,
		MemBytes:   96 << 20,
		AssetScale: assetScale,
		FBWidth:    640,
		FBHeight:   480,
	})
}

// runProc runs fn inside a fresh process on sys and waits.
func runProc(sys *core.System, name string, fn func(p *kernel.Proc) error) error {
	errCh := make(chan error, 1)
	sys.Kernel.Spawn(name, 0, func(p *kernel.Proc, _ []string) int {
		errCh <- fn(p)
		return 0
	}, nil)
	select {
	case err := <-errCh:
		return err
	case <-time.After(10 * time.Minute):
		return fmt.Errorf("experiments: %s timed out", name)
	}
}

// --- Table 1 ---

// Table1 renders the feature matrix (apps × prototypes).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: feature matrix (checked against the app registry)\n")
	fmt.Fprintf(&b, "%-16s P1 P2 P3 P4 P5\n", "app")
	matrix := core.FeatureMatrix()
	names := make([]string, 0, len(matrix))
	for n := range matrix {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		row := matrix[n]
		fmt.Fprintf(&b, "%-16s", n)
		for _, ok := range row {
			if ok {
				fmt.Fprintf(&b, " ✔ ")
			} else {
				fmt.Fprintf(&b, " . ")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --- Table 2 ---

// Table2 renders the student-workload table.
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: student workload per lab\n")
	fmt.Fprintf(&b, "%-6s %-7s %-7s %-7s %-8s %s\n", "Lab", "#Tasks", "#Files", "SLoC", "#Videos", "Team")
	for _, lab := range core.Labs() {
		team := ""
		if lab.Teamwork {
			team = "yes"
		}
		fmt.Fprintf(&b, "Lab%-3d %-7d %-7d %-7s %-8d %s\n",
			lab.Number, len(lab.Tasks), lab.Files, lab.SLoC, lab.Videos, team)
	}
	return b.String()
}

// --- Figure 8: kernel microbenchmarks ---

// Fig8Result carries the microbenchmark numbers.
type Fig8Result struct {
	SyscallNS float64
	IPCNS     float64
	BootMS    float64
	// FAT32 throughput, KB/s, by IO size.
	ReadKBs  map[int]float64
	WriteKBs map[int]float64
}

// Fig8 measures syscall latency, pipe IPC latency, FAT32 throughput at
// 4 KB / 128 KB / 512 KB IO sizes, and boot time.
func Fig8() (Fig8Result, string, error) {
	var r Fig8Result
	bootStart := time.Now()
	sys, err := newSystem(kernel.ModeProto, 4, 8)
	if err != nil {
		return r, "", err
	}
	r.BootMS = float64(time.Since(bootStart).Microseconds()) / 1000
	defer sys.Shutdown()

	// Syscall latency: getpid in a tight loop.
	err = runProc(sys, "syscall-bench", func(p *kernel.Proc) error {
		const n = 200000
		start := time.Now()
		for i := 0; i < n; i++ {
			p.SysGetPID()
		}
		r.SyscallNS = float64(time.Since(start).Nanoseconds()) / n
		return nil
	})
	if err != nil {
		return r, "", err
	}

	// IPC latency: one-byte ping-pong over two pipes between two
	// processes; one-way latency = round-trip / 2.
	err = runProc(sys, "ipc-bench", func(p *kernel.Proc) error {
		r1, w1, err := p.SysPipe() // parent -> child
		if err != nil {
			return err
		}
		r2, w2, err := p.SysPipe() // child -> parent
		if err != nil {
			return err
		}
		const rounds = 3000
		p.SysFork(func(c *kernel.Proc) {
			b := make([]byte, 1)
			for i := 0; i < rounds; i++ {
				if _, err := c.SysRead(r1, b); err != nil {
					return
				}
				if _, err := c.SysWrite(w2, b); err != nil {
					return
				}
			}
		})
		b := []byte{0}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := p.SysWrite(w1, b); err != nil {
				return err
			}
			if _, err := p.SysRead(r2, b); err != nil {
				return err
			}
		}
		r.IPCNS = float64(time.Since(start).Nanoseconds()) / rounds / 2
		p.SysWait()
		return nil
	})
	if err != nil {
		return r, "", err
	}

	// FAT32 throughput with the real SD latency model.
	r.ReadKBs, r.WriteKBs = map[int]float64{}, map[int]float64{}
	sizes := []int{4 << 10, 128 << 10, 512 << 10}
	err = runProc(sys, "fs-bench", func(p *kernel.Proc) error {
		for _, size := range sizes {
			buf := make([]byte, size)
			// Write.
			fd, err := p.SysOpen("/d/bench.bin", fs.OCreate|fs.OWrOnly|fs.OTrunc)
			if err != nil {
				return err
			}
			start := time.Now()
			total := 0
			for total < 1<<20 {
				n, err := p.SysWrite(fd, buf)
				if err != nil {
					return err
				}
				total += n
			}
			// Writes are write-behind; the figure reports durable
			// throughput, so the sync barrier is inside the timed window.
			// It also drains the backlog so the read numbers that follow
			// measure the read path, not contention with the flusher.
			if err := p.SysSync(); err != nil {
				return err
			}
			wElapsed := time.Since(start).Seconds()
			p.SysClose(fd)
			r.WriteKBs[size] = float64(total) / 1024 / wElapsed
			// Read.
			fd, err = p.SysOpen("/d/bench.bin", fs.ORdOnly)
			if err != nil {
				return err
			}
			start = time.Now()
			total = 0
			for {
				n, err := p.SysRead(fd, buf)
				if err != nil {
					return err
				}
				if n == 0 {
					break
				}
				total += n
			}
			rElapsed := time.Since(start).Seconds()
			p.SysClose(fd)
			r.ReadKBs[size] = float64(total) / 1024 / rElapsed
			p.SysUnlink("/d/bench.bin")
		}
		return nil
	})
	if err != nil {
		return r, "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: kernel microbenchmarks (paper: syscall 3.4us, IPC 21us, boot ~6s)\n")
	fmt.Fprintf(&b, "syscall (getpid)      %8.0f ns\n", r.SyscallNS)
	fmt.Fprintf(&b, "IPC one-way (pipe)    %8.0f ns\n", r.IPCNS)
	fmt.Fprintf(&b, "boot to ready         %8.1f ms (simulated; no firmware load)\n", r.BootMS)
	for _, size := range sizes {
		fmt.Fprintf(&b, "fat32 %4dKB  read %8.0f KB/s   write %8.0f KB/s\n",
			size/1024, r.ReadKBs[size], r.WriteKBs[size])
	}
	return r, b.String(), nil
}

// --- Figure 9: microbenchmarks vs baselines ---

// Fig9Row is one benchmark across the three kernel modes (nanoseconds).
type Fig9Row struct {
	Name  string
	Proto float64
	Xv6   float64
	Prod  float64
}

// Fig9 runs the microbenchmark suite under ModeProto, ModeXv6 and ModeProd
// (our Linux/FreeBSD stand-in — see DESIGN.md substitution 6).
func Fig9() ([]Fig9Row, string, error) {
	benches := fig9Benches()
	rows := make([]Fig9Row, len(benches))
	for i := range benches {
		rows[i].Name = benches[i].name
	}
	for _, mode := range []kernel.Mode{kernel.ModeProto, kernel.ModeXv6, kernel.ModeProd} {
		sys, err := newSystem(mode, 4, 8)
		if err != nil {
			return nil, "", err
		}
		for i, bench := range benches {
			var ns float64
			err := runProc(sys, "fig9-"+bench.name, func(p *kernel.Proc) error {
				var err error
				ns, err = bench.run(p, sys)
				return err
			})
			if err != nil {
				sys.Shutdown()
				return nil, "", fmt.Errorf("%s under %v: %w", bench.name, mode, err)
			}
			switch mode {
			case kernel.ModeProto:
				rows[i].Proto = ns
			case kernel.ModeXv6:
				rows[i].Xv6 = ns
			case kernel.ModeProd:
				rows[i].Prod = ns
			}
		}
		if err := sys.Shutdown(); err != nil {
			return nil, "", err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: normalized latency (ours = 1.0; xv6-like and prod-like baselines)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %10s\n", "bench", "ours (ns)", "xv6", "prod")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.0f %9.2fx %9.2fx\n", r.Name, r.Proto, r.Xv6/r.Proto, r.Prod/r.Proto)
	}
	return rows, b.String(), nil
}
