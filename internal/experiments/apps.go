package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"protosim/internal/core"
	"protosim/internal/kernel"
)

// AppFPS is one Table 5 row.
type AppFPS struct {
	Name   string
	FPS    float64
	Frames int
}

// Table5 measures app throughput: DOOM, video 480p/720p, and the three
// mario variants, each over `frames` frames (after the pipelines warm up
// on the first frames, like the paper's warm-up period). assetScale=1
// produces paper-sized assets (multi-MB WAD, real 480p/720p clips) and
// takes correspondingly longer.
func Table5(frames, assetScale int) ([]AppFPS, string, error) {
	sys, err := newSystem(kernel.ModeProto, 4, assetScale)
	if err != nil {
		return nil, "", err
	}
	defer sys.Shutdown()

	runs := []struct {
		name string // report label
		app  string // registry name
		argv []string
	}{
		{"doom", "doom", []string{"doom", "/d/doom1.wad", fmt.Sprint(frames)}},
		{"video-480p", "videoplayer", []string{"videoplayer", "/d/clip480.mpv", fmt.Sprint(frames)}},
		{"video-720p", "videoplayer", []string{"videoplayer", "/d/clip720.mpv", fmt.Sprint(frames)}},
		{"mario-noinput", "mario-noinput", []string{"mario-noinput", "builtin:mario", fmt.Sprint(frames)}},
		{"mario-proc", "mario-proc", []string{"mario-proc", "builtin:mario", fmt.Sprint(frames)}},
		{"mario-sdl", "mario-sdl", []string{"mario-sdl", "builtin:mario", fmt.Sprint(frames)}},
	}
	var out []AppFPS
	for _, r := range runs {
		start := time.Now()
		code, err := sys.RunApp(r.app, r.argv, 10*time.Minute)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", r.name, err)
		}
		if code != 0 {
			return nil, "", fmt.Errorf("%s exited %d", r.name, code)
		}
		elapsed := time.Since(start).Seconds()
		out = append(out, AppFPS{Name: r.name, FPS: float64(frames) / elapsed, Frames: frames})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: app throughput, %d frames each (paper Pi3: DOOM 62, 480p 27, 720p 12, mario 72-115)\n", frames)
	for _, r := range out {
		fmt.Fprintf(&b, "%-14s %8.1f FPS\n", r.Name, r.FPS)
	}
	return out, b.String(), nil
}

// Fig10Result is one core-count sample.
type Fig10Result struct {
	Cores          int
	MarioFPSPerApp float64 // 8 simultaneous marios
	BlocksPerSec   float64 // multithreaded miner
}

// Fig10 measures multicore scalability: eight simultaneous mario
// instances (multi-programmed) and the blockchain miner (multi-threaded)
// on 1–4 cores.
func Fig10(frames, difficulty int) ([]Fig10Result, string, error) {
	var out []Fig10Result
	for cores := 1; cores <= 4; cores++ {
		sys, err := newSystem(kernel.ModeProto, cores, 8)
		if err != nil {
			return nil, "", err
		}
		// 8×mario: run concurrently, wait for all.
		done := make(chan int, 8)
		start := time.Now()
		for i := 0; i < 8; i++ {
			sys.Kernel.Spawn("mario8", 0, func(p *kernel.Proc, _ []string) int {
				code := marioInstance(p, frames)
				done <- code
				return code
			}, nil)
		}
		for i := 0; i < 8; i++ {
			if code := <-done; code != 0 {
				sys.Shutdown()
				return nil, "", fmt.Errorf("mario instance exited %d", code)
			}
		}
		elapsed := time.Since(start).Seconds()
		res := Fig10Result{Cores: cores, MarioFPSPerApp: float64(frames) / elapsed}

		// Blockchain: mine blocks for a fixed difficulty, threads = 4. The
		// difficulty must make hashing dominate thread management or the
		// measurement is pure overhead (use >= 16).
		blocks := 2
		errCh := make(chan error, 1)
		start = time.Now()
		sys.Kernel.Spawn("miner", 0, func(p *kernel.Proc, _ []string) int {
			errCh <- mineN(p, blocks, difficulty, 4)
			return 0
		}, nil)
		if err := <-errCh; err != nil {
			sys.Shutdown()
			return nil, "", err
		}
		res.BlocksPerSec = float64(blocks) / time.Since(start).Seconds()
		out = append(out, res)
		if err := sys.Shutdown(); err != nil {
			return nil, "", err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: multicore scalability (8x mario FPS/instance; blockchain blocks/s)\n")
	if runtime.NumCPU() < 4 {
		fmt.Fprintf(&b, "NOTE: host has %d CPU(s); simulated cores are goroutines and cannot\n", runtime.NumCPU())
		fmt.Fprintf(&b, "exceed host parallelism — expect flat scaling below %d cores here.\n", runtime.NumCPU()+1)
	}
	fmt.Fprintf(&b, "%-6s %16s %14s %14s\n", "cores", "mario FPS/inst", "speedup", "blocks/s")
	for _, r := range out {
		fmt.Fprintf(&b, "%-6d %16.1f %13.2fx %14.3f\n",
			r.Cores, r.MarioFPSPerApp, r.MarioFPSPerApp/out[0].MarioFPSPerApp, r.BlocksPerSec)
	}
	return out, b.String(), nil
}

// Fig12Workload is one power sample.
type Fig12Workload struct {
	Name         string
	PiWatts      float64
	HATWatts     float64
	TotalWatts   float64
	BatteryHours float64
}

// Fig12 estimates device power and battery life per workload via the
// activity-counter model (a model, not a measurement — see EXPERIMENTS.md).
func Fig12() ([]Fig12Workload, string, error) {
	workloads := []struct {
		name  string
		run   func(sys *core.System) error
		audio bool
		sd    bool
	}{
		{"shell-idle", func(sys *core.System) error {
			time.Sleep(300 * time.Millisecond) // cores in WFI
			return nil
		}, false, false},
		{"mario-sdl", func(sys *core.System) error {
			_, err := sys.RunApp("mario-sdl", []string{"mario-sdl", "builtin:mario", "30"}, 5*time.Minute)
			return err
		}, false, false},
		{"musicplayer", func(sys *core.System) error {
			_, err := sys.RunApp("musicplayer", nil, 5*time.Minute)
			return err
		}, true, true},
		{"doom", func(sys *core.System) error {
			_, err := sys.RunApp("doom", []string{"doom", "/d/doom1.wad", "30"}, 5*time.Minute)
			return err
		}, false, true},
		{"video-480p", func(sys *core.System) error {
			_, err := sys.RunApp("videoplayer", []string{"videoplayer", "/d/clip480.mpv", "12"}, 5*time.Minute)
			return err
		}, false, true},
	}
	var out []Fig12Workload
	for _, w := range workloads {
		sys, err := newSystem(kernel.ModeProto, 4, 8)
		if err != nil {
			return nil, "", err
		}
		if err := w.run(sys); err != nil {
			sys.Shutdown()
			return nil, "", fmt.Errorf("%s: %w", w.name, err)
		}
		reading := sys.Machine.Power.Sample(true, w.audio, w.sd)
		out = append(out, Fig12Workload{
			Name: w.name, PiWatts: reading.PiWatts, HATWatts: reading.HATWatts,
			TotalWatts: reading.TotalWatts, BatteryHours: reading.BatteryHours,
		})
		if err := sys.Shutdown(); err != nil {
			return nil, "", err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: modeled power and battery life (paper: ~3W idle / ~4W loaded, 2.6-3.7h)\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %10s\n", "workload", "Pi W", "HAT W", "total W", "battery h")
	for _, w := range out {
		fmt.Fprintf(&b, "%-12s %8.2f %8.2f %8.2f %10.1f\n", w.Name, w.PiWatts, w.HATWatts, w.TotalWatts, w.BatteryHours)
	}
	return out, b.String(), nil
}

// Fig13 renders the paper's survey results (data replay; not re-runnable).
func Fig13() string {
	qs, n := core.Survey()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: pedagogical survey (paper's reported data, N=%d; not re-runnable)\n", n)
	for _, q := range qs {
		bars := strings.Repeat("#", int(q.Score*8))
		fmt.Fprintf(&b, "%-3s %4.1f |%-40s| %s — %s\n", q.ID, q.Score, bars, q.Principle, q.Question)
	}
	return b.String()
}
