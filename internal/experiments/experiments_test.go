package experiments

import (
	"runtime"
	"strings"
	"testing"

	"protosim/internal/kernel"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "doom") || !strings.Contains(out, "P5") {
		t.Fatalf("table1 = %q", out)
	}
	// doom must be unavailable before P5: its row has dots then one check.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "doom ") || strings.HasPrefix(line, "doom\t") {
			if strings.Count(line, "✔") != 1 {
				t.Fatalf("doom row = %q", line)
			}
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Lab1", "Lab5", "#Videos"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig13Rendering(t *testing.T) {
	out := Fig13()
	if !strings.Contains(out, "Q9") || !strings.Contains(out, "N=48") {
		t.Fatalf("fig13 = %q", out)
	}
}

func TestFig7CountsThisRepo(t *testing.T) {
	buckets, tests, err := CountSLoC("../..")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	byName := map[string]int{}
	for _, b := range buckets {
		total += b.SLoC
		byName[b.Name] = b.SLoC
	}
	if total < 10000 {
		t.Fatalf("total SLoC = %d; repository should be substantial", total)
	}
	if tests < 2000 {
		t.Fatalf("test SLoC = %d", tests)
	}
	for _, want := range []string{"kernel core", "drivers", "file", "FAT32", "apps"} {
		if byName[want] == 0 {
			t.Errorf("bucket %q empty", want)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, out, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if r.SyscallNS <= 0 || r.IPCNS <= r.SyscallNS {
		t.Fatalf("syscall=%f ipc=%f: IPC must cost more than a syscall", r.SyscallNS, r.IPCNS)
	}
	if r.ReadKBs[512<<10] <= 0 {
		t.Fatal("no FS throughput measured")
	}
	// Shape: large IO sizes beat small ones on the polled SD (per-command
	// setup amortized) — Fig 8's left panel.
	if r.ReadKBs[512<<10] < r.ReadKBs[4<<10] {
		t.Fatalf("512K read %.0f < 4K read %.0f KB/s; range amortization missing",
			r.ReadKBs[512<<10], r.ReadKBs[4<<10])
	}
	if !strings.Contains(out, "syscall") {
		t.Fatal("report missing")
	}
}

func TestTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, out, err := Table5(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FPS <= 0 {
			t.Errorf("%s: fps = %f", r.Name, r.FPS)
		}
	}
	if !strings.Contains(out, "mario-sdl") {
		t.Fatal("report missing rows")
	}
}

func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, _, err := Fig10(12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape: 4 cores beat 1 core on the multi-programmed workload — but
	// simulated cores are goroutines, so the speedup is bounded by host
	// parallelism; a 1-CPU host cannot show it (see EXPERIMENTS.md).
	if runtime.NumCPU() >= 4 && rows[3].MarioFPSPerApp <= rows[0].MarioFPSPerApp {
		t.Fatalf("no multicore scaling: 1 core %.1f, 4 cores %.1f",
			rows[0].MarioFPSPerApp, rows[3].MarioFPSPerApp)
	}
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rend, _, err := Fig11Rendering(6)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: app logic dominates rendering latency (Fig 11a).
	for _, r := range rend {
		if r.AppLogic <= 0 {
			t.Errorf("%s: app logic %.2f ms", r.Name, r.AppLogic)
		}
	}
	inputs, _, err := Fig11InputLatency(10)
	if err != nil {
		t.Fatal(err)
	}
	var direct, ipc float64
	for _, r := range inputs {
		if r.LatencyUS <= 0 {
			t.Errorf("%s: latency %.0f", r.Path, r.LatencyUS)
		}
		switch r.Path {
		case "doom-direct-poll":
			direct = r.LatencyUS
		case "mario-proc-ipc":
			ipc = r.LatencyUS
		}
	}
	_ = direct
	_ = ipc // polling interval dominates direct; see EXPERIMENTS.md
}

func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, _, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	var idle, doom float64
	for _, r := range rows {
		if r.TotalWatts < 2 || r.TotalWatts > 6 {
			t.Errorf("%s: %.2f W outside plausible envelope", r.Name, r.TotalWatts)
		}
		switch r.Name {
		case "shell-idle":
			idle = r.TotalWatts
		case "doom":
			doom = r.TotalWatts
		}
	}
	if doom <= idle {
		t.Fatalf("doom %.2f W <= idle %.2f W; load must draw more", doom, idle)
	}
}

func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, out, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Shape 1: fork under prod (COW) is much cheaper than ours (paper 17×
	// the other way around: ours slower).
	f := byName["fork"]
	if f.Prod >= f.Proto {
		t.Fatalf("COW fork (%.0f ns) not faster than eager fork (%.0f ns)", f.Prod, f.Proto)
	}
	// Shape 2: getpid roughly mode-independent (within 3x).
	g := byName["getpid"]
	if g.Xv6 > g.Proto*3 || g.Proto > g.Xv6*3 {
		t.Fatalf("getpid diverges across modes: %v", g)
	}
	// Shape 3: diskfs read slower under xv6 mode (no range bypass).
	d := byName["diskfs/r"]
	if d.Xv6 <= d.Proto {
		t.Fatalf("single-block FAT32 read (%.0f) not slower than range bypass (%.0f)", d.Xv6, d.Proto)
	}
	if !strings.Contains(out, "getpid") {
		t.Fatal("report missing")
	}
	_ = kernel.ModeProto
}
