package experiments

import (
	"crypto/md5"
	"sort"
	"time"

	"protosim/internal/core"
	"protosim/internal/kernel"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/mm"
	"protosim/internal/user/ulib"
)

// fig9Bench is one microbenchmark; run returns per-op nanoseconds.
type fig9Bench struct {
	name string
	run  func(p *kernel.Proc, sys *core.System) (float64, error)
}

// timeOps measures fn over n iterations.
func timeOps(n int, fn func(i int) error) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

// fig9Benches mirrors Figure 9's x-axis: getpid, fork, sbrk, ipc, malloc,
// memset, md5sum, qsort, ramfs r/w, diskfs r/w.
func fig9Benches() []fig9Bench {
	return []fig9Bench{
		{"getpid", func(p *kernel.Proc, _ *core.System) (float64, error) {
			return timeOps(100000, func(int) error { p.SysGetPID(); return nil })
		}},
		{"fork", func(p *kernel.Proc, _ *core.System) (float64, error) {
			// Give the process a meaty image so fork has pages to copy —
			// this is where eager copy vs COW separates (paper: 17×).
			if _, err := p.SysSbrk(256 * mm.PageSize); err != nil {
				return 0, err
			}
			// Time only the fork() call: the child hand-off and wait()
			// are scheduler latency, identical across modes, and noisy
			// enough to swamp the copy-vs-COW difference Fig 9 plots.
			const n = 40
			var forkNS int64
			for i := 0; i < n; i++ {
				start := make(chan struct{})
				t0 := time.Now()
				_, err := p.SysFork(func(c *kernel.Proc) { <-start })
				forkNS += time.Since(t0).Nanoseconds()
				if err != nil {
					return 0, err
				}
				close(start)
				if _, _, err := p.SysWait(); err != nil {
					return 0, err
				}
			}
			return float64(forkNS) / n, nil
		}},
		{"sbrk", func(p *kernel.Proc, _ *core.System) (float64, error) {
			return timeOps(2000, func(int) error {
				_, err := p.SysSbrk(mm.PageSize)
				return err
			})
		}},
		{"ipc", func(p *kernel.Proc, _ *core.System) (float64, error) {
			r1, w1, err := p.SysPipe()
			if err != nil {
				return 0, err
			}
			r2, w2, err := p.SysPipe()
			if err != nil {
				return 0, err
			}
			const rounds = 1500
			// The child echoes exactly `rounds` bytes then exits; a fork
			// shares both pipe ends, so the parent closing its own fds
			// would never EOF the child's read.
			p.SysFork(func(c *kernel.Proc) {
				b := make([]byte, 1)
				for i := 0; i < rounds; i++ {
					if _, err := c.SysRead(r1, b); err != nil {
						return
					}
					if _, err := c.SysWrite(w2, b); err != nil {
						return
					}
				}
			})
			b := []byte{1}
			ns, err := timeOps(rounds, func(int) error {
				if _, err := p.SysWrite(w1, b); err != nil {
					return err
				}
				_, err := p.SysRead(r2, b)
				return err
			})
			p.SysWait()
			return ns / 2, err // one-way
		}},
		{"malloc", func(p *kernel.Proc, _ *core.System) (float64, error) {
			a := ulib.NewAlloc(p)
			ptrs := make([]uint64, 0, 512)
			return timeOps(5000, func(i int) error {
				va, err := a.Malloc(64 + i%256)
				if err != nil {
					return err
				}
				ptrs = append(ptrs, va)
				if len(ptrs) >= 512 {
					for _, q := range ptrs {
						a.Free(q)
					}
					ptrs = ptrs[:0]
				}
				return nil
			})
		}},
		{"memset", func(p *kernel.Proc, _ *core.System) (float64, error) {
			// User-space memset through the page tables (64 KB per op).
			old, err := p.SysSbrk(16 * mm.PageSize)
			if err != nil {
				return 0, err
			}
			buf := make([]byte, 16*mm.PageSize)
			for i := range buf {
				buf[i] = 0xAB
			}
			return timeOps(300, func(int) error {
				return p.AddressSpace().WriteAt(old, buf)
			})
		}},
		{"md5sum", func(p *kernel.Proc, _ *core.System) (float64, error) {
			data := make([]byte, 256<<10)
			for i := range data {
				data[i] = byte(i)
			}
			return timeOps(50, func(int) error {
				md5.Sum(data)
				p.Checkpoint()
				return nil
			})
		}},
		{"qsort", func(p *kernel.Proc, _ *core.System) (float64, error) {
			return timeOps(50, func(int) error {
				vals := make([]int, 20000)
				x := 12345
				for i := range vals {
					x = x*1103515245 + 12347
					vals[i] = x
				}
				sort.Ints(vals)
				p.Checkpoint()
				return nil
			})
		}},
		{"ramfs/w", func(p *kernel.Proc, _ *core.System) (float64, error) {
			buf := make([]byte, 16<<10)
			return timeOps(40, func(i int) error {
				fd, err := p.SysOpen("/rfw.bin", fs.OCreate|fs.OWrOnly|fs.OTrunc)
				if err != nil {
					return err
				}
				for k := 0; k < 8; k++ {
					if _, err := p.SysWrite(fd, buf); err != nil {
						return err
					}
				}
				p.SysClose(fd)
				return p.SysUnlink("/rfw.bin")
			})
		}},
		{"ramfs/r", func(p *kernel.Proc, _ *core.System) (float64, error) {
			buf := make([]byte, 16<<10)
			fd, err := p.SysOpen("/rfr.bin", fs.OCreate|fs.OWrOnly)
			if err != nil {
				return 0, err
			}
			for k := 0; k < 8; k++ {
				p.SysWrite(fd, buf)
			}
			p.SysClose(fd)
			return timeOps(60, func(int) error {
				fd, err := p.SysOpen("/rfr.bin", fs.ORdOnly)
				if err != nil {
					return err
				}
				for {
					n, err := p.SysRead(fd, buf)
					if err != nil {
						return err
					}
					if n == 0 {
						break
					}
				}
				return p.SysClose(fd)
			})
		}},
		{"diskfs/w", func(p *kernel.Proc, _ *core.System) (float64, error) {
			buf := make([]byte, 64<<10)
			return timeOps(6, func(int) error {
				fd, err := p.SysOpen("/d/dfw.bin", fs.OCreate|fs.OWrOnly|fs.OTrunc)
				if err != nil {
					return err
				}
				for k := 0; k < 4; k++ {
					if _, err := p.SysWrite(fd, buf); err != nil {
						return err
					}
				}
				p.SysClose(fd)
				return p.SysUnlink("/d/dfw.bin")
			})
		}},
		{"diskfs/r", func(p *kernel.Proc, _ *core.System) (float64, error) {
			buf := make([]byte, 64<<10)
			fd, err := p.SysOpen("/d/dfr.bin", fs.OCreate|fs.OWrOnly)
			if err != nil {
				return 0, err
			}
			for k := 0; k < 4; k++ {
				if _, err := p.SysWrite(fd, buf); err != nil {
					return 0, err
				}
			}
			p.SysClose(fd)
			return timeOps(8, func(int) error {
				fd, err := p.SysOpen("/d/dfr.bin", fs.ORdOnly)
				if err != nil {
					return err
				}
				for {
					n, err := p.SysRead(fd, buf)
					if err != nil {
						return err
					}
					if n == 0 {
						break
					}
				}
				return p.SysClose(fd)
			})
		}},
	}
}
