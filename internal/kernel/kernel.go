// Package kernel assembles Proto: the monolithic kernel that drives the
// simulated Pi3 (internal/hw), schedules tasks (sched), manages memory
// (mm), serves the 28 syscalls across task management, files, and
// threading/synchronization (§3), and hosts the drivers — framebuffer,
// USB keyboard, PWM/DMA sound, SD card — plus the window manager kernel
// thread and the self-hosted debugging facilities.
//
// Feature staging (which prototype enables what) lives one level up in
// internal/core; this package accepts a Config with feature switches and
// implements everything.
package kernel

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/kdebug"
	"protosim/internal/kernel/ktime"
	"protosim/internal/kernel/mm"
	"protosim/internal/kernel/net"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/wm"
	"protosim/internal/kernel/xv6fs"
)

// Mode selects the kernel baseline for Figure 9's comparison columns.
type Mode int

// Kernel modes.
const (
	// ModeProto is Proto as published: eager-copy fork, fast memmove,
	// FAT32 range bypass, polled SD.
	ModeProto Mode = iota
	// ModeXv6 strips Proto's optimizations: byte-loop memmove and all
	// FAT32 data IO through the single-block buffer cache.
	ModeXv6
	// ModeProd adds the production-OS mechanisms the paper credits for
	// Linux/FreeBSD wins: copy-on-write fork and SD DMA.
	ModeProd
)

func (m Mode) String() string {
	switch m {
	case ModeProto:
		return "proto"
	case ModeXv6:
		return "xv6"
	case ModeProd:
		return "prod"
	}
	return "?"
}

// Config selects which mechanisms the kernel brings up. internal/core maps
// prototypes 1–5 onto these switches.
type Config struct {
	Machine *hw.Machine
	Cores   int // cores to release from "parked" (<= Machine cores)
	Mode    Mode

	RunqueueMode sched.RunqueueMode
	TickInterval time.Duration // scheduler tick (default 4ms)

	// Feature switches (Table 1 rows).
	EnableVM      bool // per-app address spaces + EL0/EL1 split
	EnableFiles   bool // file abstraction, ramdisk xv6fs, devfs/procfs
	EnableFAT     bool // SD card + FAT32 mounted at /d
	EnableUSB     bool // USB keyboard
	EnableSound   bool // PWM/DMA audio via /dev/sb
	EnableWM      bool // window manager kernel thread
	EnableThreads bool // clone + semaphores
	EnableTrace   bool // kdebug event tracing
	EnableNet     bool // TCP-ish sockets over the board NIC (needs MachineConfig.EnableNIC)

	// Buffer-cache sizing for both filesystems (0 = bcache defaults).
	// Shard count trades lock contention for memory locality; buffer
	// count bounds how much of the working set stays cached.
	CacheShards  int
	CacheBuffers int

	// QueueDepth bounds how many commands each device's IO request queue
	// keeps in flight (0 = blkq.DefaultDepth; negative disables the
	// queues entirely — the synchronous baseline). ModeXv6 always runs
	// without queues.
	QueueDepth int

	// WritebackRatio is the dirty-buffer percentage that wakes the
	// per-mount writeback daemon ahead of its age interval (0 = bcache
	// default; negative disables the ratio trigger). ModeXv6 runs the
	// caches write-through, without daemons.
	WritebackRatio int

	// PlugDelay is each request queue's anticipatory-plug window: how long
	// a request arriving at an idle queue is held back so a lone
	// sequential writer's follow-ups can accumulate and merge (0 =
	// blkq.DefaultPlugDelay; negative disables anticipatory plugging).
	// ModeXv6 runs without queues, so without plugging too.
	PlugDelay time.Duration

	// AdaptivePlug sizes each anticipatory window from the observed
	// inter-submit gap instead of always waiting the full PlugDelay
	// (blkq.Options.AdaptivePlug): fast bursts get short windows, and
	// submitters slower than the window stop opening them — plug
	// timeouts stop charging latency to workloads anticipation cannot
	// help. PlugDelay stays the ceiling.
	AdaptivePlug bool

	RamdiskImage []byte // xv6fs image for the root filesystem

	// ConsoleOut tees printk output (nil = in-memory transcript only).
	ConsoleOut io.Writer
}

// DefaultTick is the scheduler tick period.
const DefaultTick = 4 * time.Millisecond

// Kernel is the running system.
type Kernel struct {
	cfg Config
	m   *hw.Machine

	Sched      *sched.Scheduler
	FrameAlloc *mm.FrameAllocator
	KHeap      *mm.KAlloc
	VFS        *fs.VFS
	DevFS      *fs.DevFS
	ProcFS     *fs.ProcFS
	RootFS     *xv6fs.FS
	FatFS      *fat32.FS
	FB         *hw.Framebuffer
	Net        *net.Stack
	WM         *wm.WM
	Trace      *kdebug.Trace
	Unwinder   *kdebug.Unwinder
	Monitor    *kdebug.Monitor
	VTimers    *ktime.Set

	mu       sync.Mutex
	procs    map[int]*Proc
	nextPID  int
	programs map[string]Program

	blockDevs    []*BlockIO               // every block device, behind the unified IO path
	blockCaches  map[string]*bcache.Cache // device name -> its buffer cache (diskstats)
	daemonCaches []*bcache.Cache          // caches with a running kflushd (stopped at shutdown)
	dcache       *dcache.Cache            // kernel dentry cache (one Mount handle per filesystem)

	rawEvents *eventQueue // keyboard events when no WM runs
	kbdAddr   byte
	kbdLast   [hw.HIDReportLen]byte
	sound     *soundDev
	surfaces  map[int]*wm.Surface // proc PID -> surface (for /dev/event1)

	syscalls atomic.Int64
	booted   time.Time
	bootTime time.Duration
	panicLog []string
	wmTask   *sched.Task
	shutdown atomic.Bool
}

// Program is a user program body: Proto apps compiled as ELF executables
// resolve to these via the uelf token (see internal/uelf).
type Program func(p *Proc, argv []string) int

// New creates a kernel over the machine; Boot brings it up.
func New(cfg Config) *Kernel {
	if cfg.Machine == nil {
		panic("kernel: nil machine")
	}
	if cfg.Cores <= 0 || cfg.Cores > cfg.Machine.Cores() {
		cfg.Cores = cfg.Machine.Cores()
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTick
	}
	k := &Kernel{
		cfg:      cfg,
		m:        cfg.Machine,
		procs:    make(map[int]*Proc),
		programs: make(map[string]Program),
		surfaces: make(map[int]*wm.Surface),
	}
	return k
}

// Machine exposes the underlying board.
func (k *Kernel) Machine() *hw.Machine { return k.m }

// Mode reports the kernel baseline mode.
func (k *Kernel) Mode() Mode { return k.cfg.Mode }

// Cores reports the active core count.
func (k *Kernel) Cores() int { return k.cfg.Cores }

// Printk writes a kernel message to the UART, synchronously (§4.1: debug
// output never buffers).
func (k *Kernel) Printk(format string, args ...any) {
	fmt.Fprintf(k.m.UART, format, args...)
}

// Transcript returns everything printk'd so far.
func (k *Kernel) Transcript() string { return k.m.UART.Transcript() }

// RegisterProgram installs a user program under its token name.
func (k *Kernel) RegisterProgram(name string, fn Program) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.programs[name] = fn
}

// Programs lists registered program names.
func (k *Kernel) Programs() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.programs))
	for n := range k.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Boot brings the kernel up: scheduler and per-core timers, memory,
// filesystems, drivers, the window manager — the Prototype 5 sequence,
// gated by the Config feature switches.
func (k *Kernel) Boot() error {
	start := time.Now()
	if k.cfg.ConsoleOut != nil {
		k.m.UART.SetSink(k.cfg.ConsoleOut)
	}
	k.Printk("proto: booting on %d core(s), mode=%s\n", k.cfg.Cores, k.cfg.Mode)

	// Debug facilities first — everything else traces through them.
	k.Trace = kdebug.NewTrace(k.cfg.Cores)
	k.Trace.SetEnabled(k.cfg.EnableTrace)
	k.Unwinder = kdebug.NewUnwinder()
	k.Monitor = kdebug.NewMonitor()

	// Memory: reserve the first 2 MB for the "kernel image" and the top
	// 8 MB for the GPU framebuffer carve-out.
	reserveLow := (2 << 20) / mm.PageSize
	reserveHigh := (8 << 20) / mm.PageSize
	if k.m.Mem.Frames() < reserveLow+reserveHigh+64 {
		reserveLow, reserveHigh = 4, 4
	}
	k.FrameAlloc = mm.NewFrameAllocator(k.m.Mem, reserveLow, reserveHigh)
	// kmalloc arena: carve 64 frames out of the allocator.
	heapFrames := 64
	heapBase := -1
	for i := 0; i < heapFrames; i++ {
		f, err := k.FrameAlloc.Alloc()
		if err != nil {
			return fmt.Errorf("kernel: kmalloc arena: %w", err)
		}
		if heapBase < 0 {
			heapBase = f
		}
	}
	k.KHeap = mm.NewKAlloc(heapBase*mm.PageSize, heapFrames*mm.PageSize)

	// Virtual timers over the hardware timer (Prototype 1, Lab 1 #11):
	// every sleep() in the system multiplexes through this set.
	k.VTimers = ktime.NewSet()

	// Scheduler + per-core generic timers.
	k.Sched = sched.New(sched.Config{
		Cores:   k.cfg.Cores,
		Mode:    k.cfg.RunqueueMode,
		Quantum: k.cfg.TickInterval,
		Power:   k.m.Power,
		Tracer:  k.Trace,
		After: func(d time.Duration, fn func()) func() bool {
			return k.VTimers.After(d, fn).Stop
		},
		OnPanic: k.taskPanicked,
	})
	k.Sched.Start()
	for c := 0; c < k.cfg.Cores; c++ {
		core := c
		k.m.IRQ.Register(hw.GenericTimerLine(core), core, func(hw.IRQLine, int) {
			k.Sched.Tick(core)
		})
		k.m.GTimers[core].Start(k.cfg.TickInterval)
	}

	// Panic button: FIQ, never masked.
	k.m.IRQ.Register(hw.FIQPanic, 0, func(_ hw.IRQLine, core int) {
		k.PanicDump(core)
	})

	// Framebuffer via the mailbox (first-class peripheral: present from
	// Prototype 1 on).
	fb, err := k.m.Mailbox.AllocFramebuffer(k.m.Cfg.FBWidth, k.m.Cfg.FBHeight)
	if err != nil {
		return fmt.Errorf("kernel: framebuffer: %w", err)
	}
	k.FB = fb

	// Filesystems. Every mount goes over a BlockIO — the unified block IO
	// path — fronted (outside the xv6 baseline) by a blkq request queue,
	// and a sharded buffer cache sized by the Config knobs. The queue
	// gives cross-task elevator merging and IRQ-driven completion; the
	// cache runs write-behind with a kflushd daemon per mount.
	copts := bcache.Options{
		Buffers:        k.cfg.CacheBuffers,
		Shards:         k.cfg.CacheShards,
		WritebackRatio: k.cfg.WritebackRatio,
	}
	useQueue := k.cfg.Mode != ModeXv6 && k.cfg.QueueDepth >= 0
	if k.cfg.Mode == ModeXv6 {
		// The xv6 baseline gets xv6's cache everywhere: one shard, NBUF
		// buffers, no readahead, synchronous write-through — Figure 9
		// measures the original structure, not a shrunken sharded one.
		copts = bcache.Options{Buffers: bcache.Xv6Buffers, Shards: 1, Readahead: -1,
			Policy: bcache.WritePolicyThrough}
	}
	k.blockCaches = make(map[string]*bcache.Cache)
	// The dentry cache is kernel-global with one handle per mount, like
	// the buffer caches: path walks on both filesystems resolve hot
	// components from it without touching directory blocks or locks.
	k.dcache = dcache.New(0, 0)
	if k.cfg.EnableFiles {
		k.VFS = fs.NewVFS()
		var rd *fs.Ramdisk
		if k.cfg.RamdiskImage != nil {
			rd = fs.NewRamdiskFromImage(xv6fs.BlockSize, k.cfg.RamdiskImage)
		} else {
			// An empty root if no image was packed.
			img, err := xv6fs.BuildImage(1024, 128, nil)
			if err != nil {
				return err
			}
			rd = img
		}
		rdev := NewBlockIO("rd0", rd)
		k.addBlockDev(rdev)
		root, err := xv6fs.MountWith(k.stackQueue(rdev, useQueue), nil, copts)
		if err != nil {
			return fmt.Errorf("kernel: root fs: %w", err)
		}
		k.RootFS = root
		root.SetDcache(k.dcache.NewMount("/"))
		k.blockCaches[rdev.Name()] = root.Cache()
		k.startFlushDaemon(rdev.Name(), root.Cache())
		if err := k.VFS.Mount("/", root); err != nil {
			return err
		}
		k.DevFS = fs.NewDevFS()
		k.ProcFS = fs.NewProcFS()
		if err := k.VFS.Mount("/dev", k.DevFS); err != nil {
			return err
		}
		if err := k.VFS.Mount("/proc", k.ProcFS); err != nil {
			return err
		}
		k.registerProcFiles()
		k.registerDevices()
		for _, d := range k.blockDevs {
			k.registerBlockDevFile(d)
		}
	}

	if k.cfg.EnableFAT {
		if k.m.SD == nil {
			return fmt.Errorf("kernel: FAT32 enabled but no SD card")
		}
		sdio := NewBlockIO("sd0", sdBlockDev{k.m.SD})
		fatfs, err := fat32.MountWith(k.stackQueue(sdio, useQueue), nil, copts)
		if err != nil {
			return fmt.Errorf("kernel: FAT32: %w", err)
		}
		k.FatFS = fatfs
		fatfs.SetDcache(k.dcache.NewMount("/d"))
		k.blockCaches[sdio.Name()] = fatfs.Cache()
		k.startFlushDaemon(sdio.Name(), fatfs.Cache())
		if k.cfg.Mode == ModeXv6 {
			// ...and loops sector-by-sector, one command per block.
			fatfs.SetDataPath(fat32.DataPathSingleBlock)
		}
		if k.cfg.Mode == ModeProd {
			k.m.SD.SetDMA(true)
		}
		if k.VFS == nil {
			return fmt.Errorf("kernel: FAT32 requires files")
		}
		if err := k.VFS.Mount("/d", fatfs); err != nil {
			return err
		}
		k.addBlockDev(sdio)
	}

	// Network: the TCP-ish stack over the board NIC. The IRQNIC handler
	// only kicks the stack's softirq goroutine (NAPI-style) — protocol
	// work never runs in interrupt context. The Routed check makes a
	// forgotten registration fail at boot: a NIC whose completion rings
	// nobody drains would instead hang every TX-blocked writer silently.
	if k.cfg.EnableNet {
		if k.m.NIC == nil {
			return fmt.Errorf("kernel: network enabled but machine has no NIC (MachineConfig.EnableNIC)")
		}
		k.Net = net.NewStack("eth0", NetLocalHost, k.m.NIC, net.Options{
			After: func(d time.Duration, fn func()) func() bool {
				return k.VTimers.After(d, fn).Stop
			},
		})
		k.m.IRQ.Register(hw.IRQNIC, 0, func(hw.IRQLine, int) { k.Net.IRQ() })
		if !k.m.IRQ.Routed(hw.IRQNIC) {
			return fmt.Errorf("kernel: IRQNIC has no routed handler after registration")
		}
		if k.ProcFS != nil {
			k.ProcFS.Register("net", func() string { return k.Net.ProcText() })
		}
	}

	// USB keyboard.
	if k.cfg.EnableUSB {
		if err := k.initKeyboard(); err != nil {
			k.Printk("proto: usb keyboard: %v\n", err)
		}
	}

	// Sound.
	if k.cfg.EnableSound {
		if err := k.initSound(); err != nil {
			return fmt.Errorf("kernel: sound: %w", err)
		}
	}

	// Window manager kernel thread.
	if k.cfg.EnableWM {
		k.WM = wm.New(k.FB)
		k.wmTask = k.Sched.Go("kwm", 2, k.WM.Run)
	}

	k.booted = time.Now()
	k.bootTime = time.Since(start)
	k.Printk("proto: boot complete in %v\n", k.bootTime.Round(time.Microsecond))
	return nil
}

// stackQueue fronts a block device with an IO request queue: elevator
// sorting, cross-task merging, anticipatory plugging on the kernel's
// virtual timers, and — when the device has async halves (the SD card) —
// IRQ-driven completion, with submitting tasks asleep on the sched waitq
// until hw.IRQSD fires. Returns the device unwrapped when queues are
// disabled (baselines).
func (k *Kernel) stackQueue(d *BlockIO, enabled bool) fs.BlockDevice {
	if !enabled {
		return d
	}
	q := blkq.New(d, blkq.Options{
		Depth:        k.cfg.QueueDepth,
		Async:        d.Async(),
		PlugDelay:    k.cfg.PlugDelay,
		AdaptivePlug: k.cfg.AdaptivePlug,
		After: func(dur time.Duration, fn func()) func() bool {
			return k.VTimers.After(dur, fn).Stop
		},
	})
	d.SetQueue(q)
	if d.Async() != nil {
		// Route the device's completion IRQ into the queue: finished
		// commands wake their submitters and the next command is issued
		// from interrupt context.
		k.m.IRQ.Register(hw.IRQSD, 0, func(hw.IRQLine, int) { q.CompletionIRQ() })
	}
	return q
}

// startFlushDaemon launches the kflushd kernel task for one mount's
// cache: background write-behind flushing by dirty ratio and age, with
// eviction handing dirty victims to it instead of writing inline. No-op
// for write-through caches (baselines).
func (k *Kernel) startFlushDaemon(name string, c *bcache.Cache) {
	if !c.WriteBehind() {
		return
	}
	k.daemonCaches = append(k.daemonCaches, c)
	k.Sched.Go("kflushd-"+name, 1, func(t *sched.Task) {
		c.RunDaemon(t, func(d time.Duration, fn func()) func() bool {
			return k.VTimers.After(d, fn).Stop
		})
	})
}

// sdBlockDev adapts the SD card to fs.BlockDevice, forwarding the async
// submit/completion halves the request queue drives.
type sdBlockDev struct{ sd *hw.SDCard }

func (d sdBlockDev) BlockSize() int { return hw.SDBlockSize }
func (d sdBlockDev) Blocks() int    { return d.sd.Blocks() }
func (d sdBlockDev) ReadBlocks(lba, n int, dst []byte) error {
	return d.sd.ReadBlocks(lba, n, dst)
}
func (d sdBlockDev) WriteBlocks(lba, n int, src []byte) error {
	return d.sd.WriteBlocks(lba, n, src)
}
func (d sdBlockDev) SubmitRead(tag uint64, lba, n int, dst []byte) error {
	return d.sd.SubmitRead(tag, lba, n, dst)
}
func (d sdBlockDev) SubmitWrite(tag uint64, lba, n int, src []byte) error {
	return d.sd.SubmitWrite(tag, lba, n, src)
}
func (d sdBlockDev) PopCompletion() (uint64, error, bool) { return d.sd.PopCompletion() }

// taskPanicked is the kernel oops path for a crashing user task.
func (k *Kernel) taskPanicked(t *sched.Task, reason any) {
	k.Printk("proto: oops: task %d (%s): %v\n", t.ID, t.Name, reason)
	k.Printk("%s", k.Unwinder.Format(t.ID))
}

// BootDuration reports how long Boot took.
func (k *Kernel) BootDuration() time.Duration { return k.bootTime }

// Uptime reports time since boot completed.
func (k *Kernel) Uptime() time.Duration { return time.Since(k.booted) }

// SyscallCount reports total syscalls served.
func (k *Kernel) SyscallCount() int64 { return k.syscalls.Load() }

// Shutdown stops user tasks, the WM, flushes filesystems and stops cores.
func (k *Kernel) Shutdown() error {
	if !k.shutdown.CompareAndSwap(false, true) {
		return nil
	}
	if k.WM != nil {
		k.WM.Stop()
	}
	if k.sound != nil {
		k.sound.stop()
	}
	// Tear the network down before the scheduler: aborting every conn
	// wakes tasks blocked in socket reads/writes so the kill sweep can
	// collect them instead of timing out on net-parked sleepers.
	if k.Net != nil {
		k.Net.Close()
	}
	// Stop the writeback daemons first, cleanly: they park in
	// uninterruptible waits holding no locks, and letting the scheduler
	// kill one mid-flush could strand buffer locks the final SyncAll then
	// spins on. The stop flag reaches even a daemon task that has not
	// been granted the CPU yet.
	for _, c := range k.daemonCaches {
		c.StopDaemon()
	}
	err := k.Sched.Shutdown(10 * time.Second)
	if k.VTimers != nil {
		k.VTimers.Close()
	}
	// One unified flush path: every mounted filesystem that can sync does.
	// Only after a clean scheduler shutdown — Sync drains per-inode and
	// allocator locks, and a wedged task that survived the timeout may
	// still hold one; a hung host process is worse than skipping the
	// final flush.
	if k.VFS != nil && err == nil {
		k.VFS.SyncAll(nil)
	}
	k.m.Shutdown()
	return err
}

// registerProcFiles fills /proc with the paper's nodes.
func (k *Kernel) registerProcFiles() {
	k.ProcFS.Register("cpuinfo", func() string {
		var b strings.Builder
		util := k.m.Power.Utilization()
		for c := 0; c < k.cfg.Cores; c++ {
			fmt.Fprintf(&b, "processor: %d\nmodel: Cortex-A53 (sim)\nutil_pct: %d\n", c, int(util[c]*100))
		}
		return b.String()
	})
	k.ProcFS.Register("meminfo", func() string {
		total := k.m.Mem.Size()
		free := k.FrameAlloc.FreeFrames() * mm.PageSize
		return fmt.Sprintf("MemTotal: %d kB\nMemFree: %d kB\nKmallocUsed: %d\n",
			total/1024, free/1024, k.KHeap.InUse())
	})
	k.ProcFS.Register("uptime", func() string {
		return fmt.Sprintf("%.3f\n", k.Uptime().Seconds())
	})
	k.ProcFS.Register("diskstats", func() string {
		var b strings.Builder
		for _, d := range k.blockDevs {
			rc, rb, wc, wb := d.Stats()
			fmt.Fprintf(&b, "%s read_cmds=%d read_blocks=%d write_cmds=%d write_blocks=%d\n",
				d.Name(), rc, rb, wc, wb)
		}
		// Request queues: merge ratio is submitted requests over dispatched
		// device commands — >1 means the elevator folded concurrent
		// requests into fewer, larger commands.
		for _, d := range k.blockDevs {
			q := d.Queue()
			if q == nil {
				continue
			}
			sub, disp, merged, depthPeak, queuedPeak := q.Stats()
			hits, timeouts := q.PlugStats()
			ratio := 1.0
			if disp > 0 {
				ratio = float64(sub) / float64(disp)
			}
			retries, cmdTimeouts, splits, dead := q.FaultStats()
			fmt.Fprintf(&b, "%s.q depth=%d submitted=%d commands=%d merged=%d merge_ratio=%.2f inflight_peak=%d queued_peak=%d plug_hits=%d plug_timeouts=%d retries=%d cmd_timeouts=%d splits=%d dead=%t\n",
				d.Name(), q.Depth(), sub, disp, merged, ratio, depthPeak, queuedPeak, hits, timeouts, retries, cmdTimeouts, splits, dead)
		}
		for _, d := range k.blockDevs {
			c := k.blockCaches[d.Name()]
			if c == nil {
				continue
			}
			h, m, ev, wb := c.Stats()
			ro, rbl, ra := c.RangeStats()
			fmt.Fprintf(&b, "%s.cache hits=%d misses=%d evictions=%d writebacks=%d range_ops=%d range_blocks=%d readahead=%d dirty=%d daemon_flushes=%d give_ups=%d read_retries=%d\n",
				d.Name(), h, m, ev, wb, ro, rbl, ra, c.DirtyBuffers(), c.DaemonFlushes(), c.GiveUps(), c.ReadRetries())
		}
		return b.String()
	})
	// Dentry-cache counters, one line per mount plus a total: hit/miss
	// rates, negative hits, invalidations, and how many walks took the
	// lock-free fast path versus falling back to the locked walk.
	k.ProcFS.Register("dcache", func() string {
		return k.dcache.String()
	})
	// One line per mounted filesystem: the errors=remount-ro state surface.
	// A latched mount shows rw=false with the typed cause that tripped it.
	k.ProcFS.Register("mounts", func() string {
		var b strings.Builder
		line := func(dev, path, kind string, degraded, ro bool, cause error) {
			fmt.Fprintf(&b, "%s %s %s rw=%t degraded=%t", dev, path, kind, !ro, degraded)
			if cause != nil {
				fmt.Fprintf(&b, " errors=%q", cause.Error())
			}
			b.WriteByte('\n')
		}
		if k.RootFS != nil {
			degraded, ro, cause := k.RootFS.Health()
			line("rd0", "/", "xv6fs", degraded, ro, cause)
		}
		if k.FatFS != nil {
			degraded, ro, cause := k.FatFS.Health()
			line("sd0", "/d", "fat32", degraded, ro, cause)
		}
		return b.String()
	})
	k.ProcFS.Register("tasks", func() string {
		var b strings.Builder
		for _, t := range k.Sched.Tasks() {
			fmt.Fprintf(&b, "%d %s %s cpu=%dus\n", t.ID, t.Name, t.State(), t.CPUTime().Microseconds())
		}
		return b.String()
	})
}

// PanicDump is the panic-button handler: dump every core's current task
// and call stack over UART, even if the kernel is deadlocked (§5.1).
func (k *Kernel) PanicDump(core int) {
	k.Printk("\n=== PANIC BUTTON (fiq on core %d) ===\n", core)
	for c := 0; c < k.cfg.Cores; c++ {
		t := k.Sched.Current(c)
		if t == nil {
			k.Printk("cpu%d: idle (wfi)\n", c)
			continue
		}
		k.Printk("cpu%d: %s\n", c, t.String())
		k.Printk("%s", k.Unwinder.Format(t.ID))
	}
	k.mu.Lock()
	k.panicLog = append(k.panicLog, fmt.Sprintf("fiq@core%d", core))
	k.mu.Unlock()
}

// PanicDumps reports how many emergency dumps have fired.
func (k *Kernel) PanicDumps() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.panicLog)
}

// fat32Format formats a block device as FAT32 (mkimage and tests use it).
func fat32Format(dev fs.BlockDevice) error { return fat32.Mkfs(dev) }
