package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/net"
	"protosim/internal/kernel/xv6fs"
)

// netKernel boots a kernel with the NIC pair enabled and returns a
// host-side peer stack wired to the far end of the link.
func netKernel(t *testing.T, cores int) (*Kernel, *net.Stack) {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.Cores = cores
	cfg.MemBytes = 32 << 20
	cfg.SDBlocks = 8192
	cfg.FBWidth, cfg.FBHeight = 320, 240
	cfg.EnableNIC = true
	m := hw.NewMachine(cfg)
	m.SD.SetLatencyScale(0)

	rd, err := xv6fs.BuildImage(2048, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	kc := fullConfig(m, rd.Image())
	kc.EnableNet = true
	k := New(kc)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}

	peer := net.NewStack("peer0", NetPeerHost, m.PeerNIC, net.Options{
		After: func(d time.Duration, fn func()) func() bool {
			return time.AfterFunc(d, fn).Stop
		},
	})
	m.PeerNIC.SetNotify(peer.IRQ)

	t.Cleanup(func() {
		peer.Close()
		if err := k.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return k, peer
}

// peerDial connects a host-side client to a port on the kernel stack.
func peerDial(t *testing.T, peer *net.Stack, port uint16) *net.Socket {
	t.Helper()
	c := peer.NewSocket()
	if err := c.Connect(nil, net.Addr{Host: NetLocalHost, Port: port}); err != nil {
		t.Fatalf("peer connect: %v", err)
	}
	return c
}

func TestSysSocketEndToEndEcho(t *testing.T) {
	k, peer := netKernel(t, 2)

	ready := make(chan struct{})
	code := runAsync(t, k, "echo-server", func(p *Proc, _ []string) int {
		lfd, err := p.SysSocket()
		if err != nil {
			t.Errorf("socket: %v", err)
			return 1
		}
		if err := p.SysBind(lfd, 80); err != nil {
			t.Errorf("bind: %v", err)
			return 1
		}
		if err := p.SysListen(lfd, 8); err != nil {
			t.Errorf("listen: %v", err)
			return 1
		}
		close(ready)
		cfd, err := p.SysAccept(lfd)
		if err != nil {
			t.Errorf("accept: %v", err)
			return 1
		}
		// Echo until EOF through the GENERIC read/write syscalls: the
		// descriptor is a plain stream file to this code.
		buf := make([]byte, 512)
		for {
			n, err := p.SysRead(cfd, buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				return 1
			}
			if n == 0 {
				break
			}
			if _, err := p.SysWrite(cfd, buf[:n]); err != nil {
				t.Errorf("server write: %v", err)
				return 1
			}
		}
		if err := p.SysClose(cfd); err != nil {
			t.Errorf("close conn: %v", err)
		}
		if err := p.SysClose(lfd); err != nil {
			t.Errorf("close listener: %v", err)
		}
		return 0
	})

	<-ready
	c := peerDial(t, peer, 80)
	msg := []byte("ping over the simulated wire")
	if _, err := c.Write(nil, msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	got := make([]byte, len(msg))
	n := 0
	for n < len(msg) {
		m, err := c.Read(nil, got[n:])
		if err != nil || m == 0 {
			t.Fatalf("client read: n=%d err=%v", m, err)
		}
		n += m
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if err := c.Shutdown(nil, net.ShutWR); err != nil {
		t.Fatalf("client shutdown: %v", err)
	}
	// Server drains to EOF and exits 0.
	if got := <-code; got != 0 {
		t.Fatalf("server exit code %d", got)
	}
	c.Close(nil)
}

func TestSysReadBlockedWakesWithEOFOnPeerClose(t *testing.T) {
	k, peer := netKernel(t, 2)

	ready := make(chan struct{})
	blocked := make(chan struct{})
	code := runAsync(t, k, "server", func(p *Proc, _ []string) int {
		lfd, _ := p.SysSocket()
		p.SysBind(lfd, 80)
		p.SysListen(lfd, 4)
		close(ready)
		cfd, err := p.SysAccept(lfd)
		if err != nil {
			t.Errorf("accept: %v", err)
			return 1
		}
		close(blocked)
		// Block in read with nothing buffered; the peer's close (FIN)
		// must wake us with a clean EOF, not hang or error.
		n, err := p.SysRead(cfd, make([]byte, 64))
		if n != 0 || err != nil {
			t.Errorf("blocked read woke with n=%d err=%v, want EOF", n, err)
			return 1
		}
		return 0
	})

	<-ready
	c := peerDial(t, peer, 80)
	<-blocked
	time.Sleep(5 * time.Millisecond) // let the server actually park in read
	c.Close(nil)
	if got := <-code; got != 0 {
		t.Fatalf("server exit %d", got)
	}
}

func TestSysShutdownRDWakesLocalBlockedReader(t *testing.T) {
	k, peer := netKernel(t, 2)

	ready := make(chan struct{})
	code := runAsync(t, k, "server", func(p *Proc, _ []string) int {
		lfd, _ := p.SysSocket()
		p.SysBind(lfd, 80)
		p.SysListen(lfd, 4)
		close(ready)
		cfd, err := p.SysAccept(lfd)
		if err != nil {
			t.Errorf("accept: %v", err)
			return 1
		}
		// A sibling thread shares the fd table and shuts the read side
		// down while we're parked in read: we must wake with EOF.
		readRet := make(chan error, 1)
		tid, err := p.SysClone("reader", func(tp *Proc) {
			n, err := tp.SysRead(cfd, make([]byte, 64))
			if n != 0 || err != nil {
				readRet <- fmt.Errorf("n=%d err=%v", n, err)
			} else {
				readRet <- nil
			}
		})
		if err != nil {
			t.Errorf("clone: %v", err)
			return 1
		}
		_ = tid
		time.Sleep(10 * time.Millisecond) // let the reader park
		if err := p.SysShutdown(cfd, net.ShutRD); err != nil {
			t.Errorf("shutdown(RD): %v", err)
			return 1
		}
		if err := <-readRet; err != nil {
			t.Errorf("reader woke badly: %v", err)
			return 1
		}
		return 0
	})

	<-ready
	c := peerDial(t, peer, 80)
	defer c.Close(nil)
	if got := <-code; got != 0 {
		t.Fatalf("server exit %d", got)
	}
}

func TestSysShutdownWRDeliversFINThenErrPipe(t *testing.T) {
	k, peer := netKernel(t, 2)

	ready := make(chan struct{})
	code := runAsync(t, k, "client-proc", func(p *Proc, _ []string) int {
		fd, err := p.SysSocket()
		if err != nil {
			t.Errorf("socket: %v", err)
			return 1
		}
		<-ready
		if err := p.SysConnect(fd, NetPeerHost, 7000); err != nil {
			t.Errorf("connect: %v", err)
			return 1
		}
		if _, err := p.SysWrite(fd, []byte("goodbye")); err != nil {
			t.Errorf("write: %v", err)
			return 1
		}
		if err := p.SysShutdown(fd, net.ShutWR); err != nil {
			t.Errorf("shutdown: %v", err)
			return 1
		}
		if _, err := p.SysWrite(fd, []byte("x")); !errors.Is(err, fs.ErrPipeClosed) {
			t.Errorf("write after shutdown(WR): %v, want ErrPipeClosed", err)
			return 1
		}
		return 0
	})

	ls := peer.NewSocket()
	if err := ls.Bind(nil, 7000); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(nil, 4); err != nil {
		t.Fatal(err)
	}
	defer ls.Close(nil)
	close(ready)
	s, err := ls.Accept(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(nil)
	// Drain the buffered bytes, then the FIN's clean EOF.
	buf := make([]byte, 64)
	got := ""
	for {
		n, err := s.Read(nil, buf)
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		if n == 0 {
			break
		}
		got += string(buf[:n])
	}
	if got != "goodbye" {
		t.Fatalf("peer got %q", got)
	}
	if c := <-code; c != 0 {
		t.Fatalf("client exit %d", c)
	}
}

func TestSysAcceptRacingListenerClose(t *testing.T) {
	k, _ := netKernel(t, 2)

	code := runAsync(t, k, "racer", func(p *Proc, _ []string) int {
		lfd, _ := p.SysSocket()
		p.SysBind(lfd, 80)
		p.SysListen(lfd, 4)
		acceptRet := make(chan error, 1)
		if _, err := p.SysClone("acceptor", func(tp *Proc) {
			_, err := tp.SysAccept(lfd)
			acceptRet <- err
		}); err != nil {
			t.Errorf("clone: %v", err)
			return 1
		}
		time.Sleep(10 * time.Millisecond) // let the acceptor park
		if err := p.SysClose(lfd); err != nil {
			t.Errorf("close listener: %v", err)
			return 1
		}
		if err := <-acceptRet; !errors.Is(err, net.ErrListenerClosed) && !errors.Is(err, fs.ErrBadFD) {
			t.Errorf("accept woke with %v, want ErrListenerClosed or ErrBadFD", err)
			return 1
		}
		return 0
	})
	if c := <-code; c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSocketOFDSharedAcrossFork(t *testing.T) {
	k, peer := netKernel(t, 2)

	ls := peer.NewSocket()
	if err := ls.Bind(nil, 7000); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(nil, 4); err != nil {
		t.Fatal(err)
	}
	defer ls.Close(nil)

	code := runAsync(t, k, "forker", func(p *Proc, _ []string) int {
		fd, err := p.SysSocket()
		if err != nil {
			t.Errorf("socket: %v", err)
			return 1
		}
		if err := p.SysConnect(fd, NetPeerHost, 7000); err != nil {
			t.Errorf("connect: %v", err)
			return 1
		}
		// Fork: the child inherits the descriptor (same OFD) and writes
		// through it; the connection must survive the child's exit and
		// close, because the parent still holds a reference.
		pid, err := p.SysFork(func(c *Proc) {
			if _, err := c.SysWrite(fd, []byte("from child")); err != nil {
				t.Errorf("child write: %v", err)
			}
			c.SysExit(0)
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return 1
		}
		if _, _, err := p.SysWait(); err != nil {
			t.Errorf("wait: %v", err)
			return 1
		}
		_ = pid
		if _, err := p.SysWrite(fd, []byte(" and parent")); err != nil {
			t.Errorf("parent write after child exit: %v", err)
			return 1
		}
		if err := p.SysClose(fd); err != nil {
			t.Errorf("close: %v", err)
			return 1
		}
		return 0
	})

	s, err := ls.Accept(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(nil)
	var sb strings.Builder
	buf := make([]byte, 64)
	for {
		n, err := s.Read(nil, buf)
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		if n == 0 {
			break
		}
		sb.Write(buf[:n])
	}
	if got := sb.String(); got != "from child and parent" {
		t.Fatalf("peer got %q", got)
	}
	if c := <-code; c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestSysDupSharesSocketOFD(t *testing.T) {
	k, peer := netKernel(t, 2)

	ls := peer.NewSocket()
	if err := ls.Bind(nil, 7000); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(nil, 4); err != nil {
		t.Fatal(err)
	}
	defer ls.Close(nil)

	code := runAsync(t, k, "duper", func(p *Proc, _ []string) int {
		fd, _ := p.SysSocket()
		if err := p.SysConnect(fd, NetPeerHost, 7000); err != nil {
			t.Errorf("connect: %v", err)
			return 1
		}
		dup, err := p.SysDup(fd)
		if err != nil {
			t.Errorf("dup: %v", err)
			return 1
		}
		if _, err := p.SysWrite(dup, []byte("via dup")); err != nil {
			t.Errorf("write via dup: %v", err)
			return 1
		}
		// Closing the original must NOT close the connection: the dup
		// still references the OFD.
		if err := p.SysClose(fd); err != nil {
			t.Errorf("close original: %v", err)
			return 1
		}
		if _, err := p.SysWrite(dup, []byte(" still open")); err != nil {
			t.Errorf("write after closing original: %v", err)
			return 1
		}
		p.SysClose(dup)
		return 0
	})

	s, err := ls.Accept(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(nil)
	var sb strings.Builder
	buf := make([]byte, 64)
	for {
		n, err := s.Read(nil, buf)
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		if n == 0 {
			break
		}
		sb.Write(buf[:n])
	}
	if got := sb.String(); got != "via dup still open" {
		t.Fatalf("peer got %q", got)
	}
	if c := <-code; c != 0 {
		t.Fatalf("exit %d", c)
	}
}

func TestProcNetVisibleThroughVFS(t *testing.T) {
	k, peer := netKernel(t, 2)

	ready := make(chan struct{})
	hold := make(chan struct{})
	code := runAsync(t, k, "proc-net", func(p *Proc, _ []string) int {
		lfd, _ := p.SysSocket()
		p.SysBind(lfd, 80)
		p.SysListen(lfd, 4)
		close(ready)
		cfd, err := p.SysAccept(lfd)
		if err != nil {
			t.Errorf("accept: %v", err)
			return 1
		}
		// Read /proc/net through the ordinary file path while the
		// connection is live.
		pf, err := p.SysOpen("/proc/net", fs.ORdOnly)
		if err != nil {
			t.Errorf("open /proc/net: %v", err)
			return 1
		}
		buf := make([]byte, 4096)
		n, err := p.SysRead(pf, buf)
		if err != nil {
			t.Errorf("read /proc/net: %v", err)
			return 1
		}
		txt := string(buf[:n])
		for _, want := range []string{"stack eth0 host 1", "LISTEN 1:80", "ESTABLISHED"} {
			if !strings.Contains(txt, want) {
				t.Errorf("/proc/net missing %q:\n%s", want, txt)
			}
		}
		p.SysClose(pf)
		<-hold
		p.SysClose(cfd)
		p.SysClose(lfd)
		return 0
	})

	<-ready
	c := peerDial(t, peer, 80)
	close(hold)
	if got := <-code; got != 0 {
		t.Fatalf("exit %d", got)
	}
	c.Close(nil)
}

// runAsync launches fn as a process and returns its exit-code channel.
func runAsync(t *testing.T, k *Kernel, name string, fn Program) <-chan int {
	t.Helper()
	code := make(chan int, 1)
	k.Spawn(name, 0, func(p *Proc, argv []string) int {
		c := fn(p, argv)
		code <- c
		return c
	}, nil)
	return code
}
