package kernel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/mm"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/uring"
	"protosim/internal/uelf"
)

// MaxFDs is the per-process descriptor limit. It left xv6's NOFILE=16
// behind when sockets arrived: a channel server holds one fd per client
// plus the listener, so the limit is sized for hundreds of connections
// (the table itself starts small and grows on demand — see fs.FDTable).
const MaxFDs = 4096

// Syscall errors.
var (
	ErrNoProgram  = errors.New("kernel: exec target is not a known program")
	ErrNoVM       = errors.New("kernel: virtual memory not enabled in this prototype")
	ErrNoFiles    = errors.New("kernel: files not enabled in this prototype")
	ErrNoThreads  = errors.New("kernel: threading not enabled in this prototype")
	ErrNoSem      = errors.New("kernel: bad semaphore id")
	ErrNoProc     = errors.New("kernel: no such process")
	ErrNoKids     = errors.New("kernel: no children to wait for")
	ErrNoRing     = errors.New("kernel: no ring set up (SysRingSetup first)")
	ErrRingExists = errors.New("kernel: process already has a ring")
)

// procExit unwinds a process goroutine on exit()/exec-completion.
type procExit struct{ code int }

// Proc is one user process (or thread within a process). It is also the
// syscall interface handed to user programs — every Sys* method is one of
// Proto's 28 syscalls.
type Proc struct {
	PID  int
	Name string
	k    *Kernel
	Task *sched.Task

	mm  *mm.AddressSpace // nil before Prototype 3
	fds *fs.FDTable
	cwd string

	parent   *Proc
	mu       sync.Mutex
	children map[int]*Proc
	zombies  map[int]int // pid -> exit status
	childWQ  sched.WaitQueue

	isThread bool
	group    *Proc // thread-group leader (self for processes)
	threads  int   // live threads in the group (leader included)

	sems    map[int]*ksync.Semaphore
	nextSem int

	// ring is the group's submission/completion ring (SysRingSetup), held
	// by the leader and shared by threads like the FD table. Closed on
	// process exit before the descriptor table is torn down.
	ring *uring.Ring

	argv []string
	exit int
}

// Argv returns the program arguments.
func (p *Proc) Argv() []string { return p.argv }

// Kernel returns the owning kernel (user library code uses it for device
// discovery in examples/tests; apps stick to syscalls).
func (p *Proc) Kernel() *Kernel { return p.k }

// AddressSpace returns the process's memory image (nil pre-VM).
func (p *Proc) AddressSpace() *mm.AddressSpace { return p.mm }

// Checkpoint is the preemption checkpoint app compute loops call — the
// place a timer IRQ would land (see sched.Task.CheckPreempt).
func (p *Proc) Checkpoint() { p.Task.CheckPreempt() }

// newProc allocates the process structure.
func (k *Kernel) newProc(parent *Proc, name string, argv []string) *Proc {
	k.mu.Lock()
	k.nextPID++
	pid := k.nextPID
	k.mu.Unlock()
	p := &Proc{
		PID:      pid,
		Name:     name,
		k:        k,
		parent:   parent,
		children: make(map[int]*Proc),
		zombies:  make(map[int]int),
		sems:     make(map[int]*ksync.Semaphore),
		cwd:      "/",
		argv:     argv,
	}
	p.group = p
	p.threads = 1
	if k.cfg.EnableFiles {
		p.fds = fs.NewFDTable(MaxFDs)
	}
	k.mu.Lock()
	k.procs[pid] = p
	k.mu.Unlock()
	return p
}

// Spawn starts a user program as a new process (the init-launch path; apps
// themselves use fork/exec).
func (k *Kernel) Spawn(name string, prio int, fn Program, argv []string) *Proc {
	p := k.newProc(nil, name, argv)
	if k.cfg.EnableVM {
		p.mm = mm.NewAddressSpace(k.FrameAlloc)
		p.mm.SetupStack(mm.DefaultStackVA, mm.MaxStackPages)
	}
	k.startProcTask(p, prio, func() {
		p.runBody(func() int { return fn(p, argv) })
	})
	return p
}

// startProcTask launches body as p's scheduler task. The body (and every
// syscall it makes) reads p.Task, and a core may dispatch the task before
// Sched.Go returns — so the task waits on a gate that is closed only after
// the p.Task assignment completes.
func (k *Kernel) startProcTask(p *Proc, prio int, body func()) {
	ready := make(chan struct{})
	p.Task = k.Sched.Go(p.Name, prio, func(*sched.Task) {
		<-ready
		body()
	})
	close(ready)
}

// runBody executes a process body, translating exit() unwinds and cleaning
// up kernel state afterwards.
func (p *Proc) runBody(body func() int) {
	code := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(procExit); ok {
					code = e.code
					return
				}
				panic(r) // real crash: let sched's OnPanic oops it
			}
		}()
		code = body()
	}()
	p.finalize(code)
}

// finalize releases process resources and notifies the parent.
func (p *Proc) finalize(code int) {
	p.exit = code
	if p.fds != nil {
		// Carry the exiting task: a final close may reclaim an unlinked
		// file's storage, which sleeps on locks and does IO. A condemned
		// task must not — its sleep would panic out of finalize and skip
		// the cleanup below — so it closes host-style instead.
		t := p.Task
		if t != nil && t.Killed() {
			t = nil
		}
		if p.ring != nil {
			// The ring's workers execute against this descriptor table —
			// shut the pool down before tearing descriptors out from under
			// it. Close drains the active set, so every handed-off SQE
			// still posts its CQE. A condemned task cannot Close: the join
			// would park it host-side still holding its core, which the
			// workers may need to exit — Abandon skips the join and leans
			// on the OpenFile in-flight guards for descriptor safety.
			if t != nil {
				p.ring.Close(t)
			} else {
				p.ring.Abandon()
			}
			p.ring = nil
		}
		p.fds.CloseAll(t)
	}
	if p.mm != nil {
		p.mm.Release()
	}
	// Close any WM surface the process owned.
	p.k.mu.Lock()
	if s, ok := p.k.surfaces[p.PID]; ok {
		delete(p.k.surfaces, p.PID)
		p.k.mu.Unlock()
		s.Close()
	} else {
		p.k.mu.Unlock()
	}
	// Reparent live children (they auto-reap on exit).
	p.mu.Lock()
	kids := make([]*Proc, 0, len(p.children))
	for _, c := range p.children {
		kids = append(kids, c)
	}
	p.mu.Unlock()
	for _, c := range kids {
		c.mu.Lock()
		c.parent = nil
		c.mu.Unlock()
	}
	p.k.mu.Lock()
	delete(p.k.procs, p.PID)
	p.k.mu.Unlock()
	// Tell the parent.
	par := p.parent
	if par != nil && !p.isThread {
		par.mu.Lock()
		delete(par.children, p.PID)
		par.zombies[p.PID] = code
		par.mu.Unlock()
		par.childWQ.WakeAll()
	}
	if p.isThread && p.group != nil {
		p.group.mu.Lock()
		p.group.threads--
		p.group.mu.Unlock()
	}
}

// --- Task-management syscalls (1–10) ---

// SysFork creates a child process that runs childBody. The child inherits
// a copy of the address space (eagerly copied in ModeProto/ModeXv6,
// copy-on-write in ModeProd — Fig 9's fork 17× gap) and shares the open
// file descriptions, as in xv6.
//
// Substitution note (DESIGN.md §5): Go cannot resume a forked goroutine at
// the fork point, so the child's continuation is passed explicitly. The
// kernel-side work — duplicating the mm and fd table, wiring the parent/
// child relationship — is exactly fork's.
func (p *Proc) SysFork(childBody func(c *Proc)) (int, error) {
	p.k.count()
	child := p.k.newProc(p, p.Name+"-child", p.argv)
	if p.mm != nil {
		cm, err := p.mm.Fork(p.k.cfg.Mode == ModeProd)
		if err != nil {
			return -1, err
		}
		child.mm = cm
	}
	if p.fds != nil {
		child.fds = p.fds.Clone()
	}
	child.cwd = p.cwd
	p.mu.Lock()
	p.children[child.PID] = child
	p.mu.Unlock()
	p.k.startProcTask(child, p.Task.Priority, func() {
		child.runBody(func() int { childBody(child); return 0 })
	})
	return child.PID, nil
}

// SysExec replaces the process image with the executable at path: it reads
// the ELF, validates it, builds a fresh address space, maps the segments,
// sets up the demand-paged stack, and transfers control. On success it
// never returns.
func (p *Proc) SysExec(path string, argv []string) error {
	p.k.count()
	if p.k.VFS == nil {
		return ErrNoFiles
	}
	img, err := p.readAll(path)
	if err != nil {
		return fmt.Errorf("exec %s: %w", path, err)
	}
	parsed, err := uelf.Parse(img)
	if err != nil {
		return fmt.Errorf("exec %s: %w", path, err)
	}
	p.k.mu.Lock()
	fn, ok := p.k.programs[parsed.Program]
	p.k.mu.Unlock()
	if !ok {
		return fmt.Errorf("exec %s: %w (%q)", path, ErrNoProgram, parsed.Program)
	}
	// Build the new image before tearing down the old one.
	var as *mm.AddressSpace
	if p.k.cfg.EnableVM {
		as = mm.NewAddressSpace(p.k.FrameAlloc)
		for _, seg := range parsed.Segments {
			flags := mm.FlagValid | mm.FlagCached
			if seg.Flags&uelf.FlagW != 0 {
				flags |= mm.FlagWrite
			}
			if err := as.MapSegment(seg.Vaddr, seg.Data, int(seg.MemSz), flags); err != nil {
				as.Release()
				return fmt.Errorf("exec %s: %w", path, err)
			}
		}
		if err := as.SetupStack(mm.DefaultStackVA, mm.MaxStackPages); err != nil {
			as.Release()
			return fmt.Errorf("exec %s: %w", path, err)
		}
	}
	old := p.mm
	p.mm = as
	if old != nil {
		old.Release()
	}
	p.Name = parsed.Program
	p.argv = argv
	// Transfer control: run the new program, then exit with its status.
	p.k.Unwinder.Push(p.Task.ID, parsed.Program+"_main")
	code := fn(p, argv)
	p.k.Unwinder.Pop(p.Task.ID)
	panic(procExit{code})
}

// SysExit terminates the calling process with status code; never returns.
func (p *Proc) SysExit(code int) {
	p.k.count()
	panic(procExit{code})
}

// SysWait blocks until a child exits, returning its pid and status.
func (p *Proc) SysWait() (pid, status int, err error) {
	p.k.count()
	for {
		p.mu.Lock()
		for zpid, st := range p.zombies {
			delete(p.zombies, zpid)
			p.mu.Unlock()
			return zpid, st, nil
		}
		if len(p.children) == 0 {
			p.mu.Unlock()
			return -1, 0, ErrNoKids
		}
		p.mu.Unlock()
		p.childWQ.Sleep(p.Task)
	}
}

// SysKill condemns a process by pid.
func (p *Proc) SysKill(pid int) error {
	p.k.count()
	p.k.mu.Lock()
	victim := p.k.procs[pid]
	p.k.mu.Unlock()
	if victim == nil {
		return ErrNoProc
	}
	p.k.Sched.Kill(victim.Task)
	return nil
}

// SysGetPID returns the caller's pid (Fig 8/9's syscall-latency probe).
func (p *Proc) SysGetPID() int {
	p.k.count()
	return p.PID
}

// SysSleep blocks for ms milliseconds (the donut animation timer).
func (p *Proc) SysSleep(ms int) {
	p.k.count()
	p.Task.SleepFor(msToDuration(ms))
}

// SysUptime returns microseconds since boot.
func (p *Proc) SysUptime() int64 {
	p.k.count()
	return p.k.Uptime().Microseconds()
}

// SysSbrk grows the heap by delta bytes, returning the old break — the
// pixel-buffer allocation path mario uses (§4.3).
func (p *Proc) SysSbrk(delta int) (uint64, error) {
	p.k.count()
	if p.mm == nil {
		return 0, ErrNoVM
	}
	return p.mm.Sbrk(delta)
}

// SysYield voluntarily releases the CPU.
func (p *Proc) SysYield() {
	p.k.count()
	p.Task.Yield()
}

// --- Threading / synchronization syscalls (24–28) ---

// SysClone starts a thread sharing the address space (CLONE_VM) and file
// table, as Prototype 5 implements for SDL's audio thread (§4.5).
func (p *Proc) SysClone(name string, body func(threadProc *Proc)) (int, error) {
	p.k.count()
	if !p.k.cfg.EnableThreads {
		return -1, ErrNoThreads
	}
	leader := p.group
	thread := p.k.newProc(p, p.Name+"/"+name, p.argv)
	thread.isThread = true
	thread.group = leader
	if p.mm != nil {
		p.mm.Ref()
		thread.mm = p.mm
	}
	thread.fds = p.fds // shared table, not a clone
	leader.mu.Lock()
	leader.threads++
	leader.mu.Unlock()
	p.k.startProcTask(thread, p.Task.Priority, func() {
		thread.runBodyThread(func() { body(thread) })
	})
	return thread.PID, nil
}

// runBodyThread is runBody for threads: shared fds must not be closed.
func (tp *Proc) runBodyThread(body func()) {
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procExit); ok {
					return
				}
				panic(r)
			}
		}()
		body()
	}()
	// Thread teardown: release the mm reference but leave fds alone.
	if tp.mm != nil {
		tp.mm.Release()
	}
	tp.k.mu.Lock()
	delete(tp.k.procs, tp.PID)
	tp.k.mu.Unlock()
	if tp.group != nil {
		tp.group.mu.Lock()
		tp.group.threads--
		tp.group.mu.Unlock()
	}
}

// Threads reports live threads in the caller's group.
func (p *Proc) Threads() int {
	g := p.group
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.threads
}

// SysSemCreate allocates a semaphore with an initial count, returning its id.
func (p *Proc) SysSemCreate(initial int) (int, error) {
	p.k.count()
	if !p.k.cfg.EnableThreads {
		return -1, ErrNoThreads
	}
	g := p.group
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextSem++
	id := g.nextSem
	g.sems[id] = ksync.NewSemaphore(initial)
	return id, nil
}

// SysSemWait performs P on a semaphore.
func (p *Proc) SysSemWait(id int) error {
	p.k.count()
	s, err := p.sem(id)
	if err != nil {
		return err
	}
	s.Wait(p.Task)
	return nil
}

// SysSemPost performs V on a semaphore.
func (p *Proc) SysSemPost(id int) error {
	p.k.count()
	s, err := p.sem(id)
	if err != nil {
		return err
	}
	s.Post()
	return nil
}

func (p *Proc) sem(id int) (*ksync.Semaphore, error) {
	g := p.group
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.sems[id]
	if s == nil {
		return nil, ErrNoSem
	}
	return s, nil
}

// SysCacheFlush cleans the CPU cache over a framebuffer byte range so the
// panel sees it — the kernel service Prototype 3 adds because EL0 cannot
// flush the cache itself (§4.3).
func (p *Proc) SysCacheFlush(off, n int) error {
	p.k.count()
	if off < 0 || n < 0 || off+n > p.k.FB.Size() {
		return fmt.Errorf("kernel: cacheflush [%d,%d) outside framebuffer", off, off+n)
	}
	p.k.FB.FlushRegion(off, n)
	return nil
}

// MapFramebuffer appends an identity mapping of the framebuffer to the
// process page table (the end-of-exec step in §4.3) and returns the user
// view of the pixels. Writes land in "cached" memory: without
// SysCacheFlush the panel keeps showing stale pixels.
func (p *Proc) MapFramebuffer() ([]byte, error) {
	fb := p.k.FB
	if p.mm != nil {
		va := uint64(fb.Base()) // identity-mapped for debugging ease
		if _, _, ok := p.mm.PageTable().Translate(va); !ok {
			if err := p.mm.MapShared(va, fb.Base(), fb.Size(), mm.FlagValid|mm.FlagWrite|mm.FlagCached); err != nil {
				return nil, err
			}
		}
	}
	return fb.Mem(), nil
}

func msToDuration(ms int) time.Duration {
	return time.Duration(ms) * time.Millisecond
}
