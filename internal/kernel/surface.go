package kernel

import (
	"fmt"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/wm"
)

// OpenSurface gives the calling process a window: it opens /dev/surface
// semantics directly (apps use the ulib wrapper, which issues the open +
// size ioctl). Writes of full frames blit into the surface; the WM
// composites them. The paired event stream is OpenSurfaceEvents.
func (p *Proc) OpenSurface(title string, w, h int) (int, error) {
	p.k.count()
	if p.k.WM == nil {
		return -1, fmt.Errorf("kernel: no window manager in this prototype")
	}
	if p.fds == nil {
		return -1, ErrNoFiles
	}
	s, err := p.k.WM.CreateSurface(p.PID, title, w, h)
	if err != nil {
		return -1, err
	}
	p.k.mu.Lock()
	p.k.surfaces[p.group.PID] = s
	p.k.mu.Unlock()
	return p.installOF(&surfaceFile{k: p.k, s: s}, fs.ORdWr)
}

// OpenSurfaceEvents opens the /dev/event1 stream: input events routed to
// the caller's window by the WM focus logic (§4.5).
func (p *Proc) OpenSurfaceEvents(nonblock bool) (int, error) {
	p.k.count()
	if p.fds == nil {
		return -1, ErrNoFiles
	}
	p.k.mu.Lock()
	s := p.k.surfaces[p.group.PID]
	p.k.mu.Unlock()
	if s == nil {
		return -1, fmt.Errorf("kernel: process has no surface")
	}
	return p.installOF(&surfaceEventsFile{s: s, nonblock: nonblock}, fs.ORdOnly)
}

// Surface returns the process's window (examples/tests peek at geometry).
func (p *Proc) Surface() *wm.Surface {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	return p.k.surfaces[p.group.PID]
}

// surfaceFile renders indirectly through the WM: each Write is a full (or
// partial, streaming) frame in XRGB8888. The surface itself is closed at
// process exit (finalize) so multiple opens of the fd can come and go —
// the default no-op Close is exactly right.
type surfaceFile struct {
	fs.BaseOps
	k *Kernel
	s *wm.Surface
}

// Write implements fs.FileOps: blit one frame.
func (f *surfaceFile) Write(_ *sched.Task, p []byte) (int, error) {
	if err := f.s.Blit(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Stat implements fs.FileOps.
func (f *surfaceFile) Stat(*sched.Task) (fs.Stat, error) {
	w, h := f.s.Size()
	return fs.Stat{Name: "surface", Type: fs.TypeDevice, Size: int64(w * h * 4)}, nil
}

// Caps implements fs.FileOps: a stream with control operations.
func (f *surfaceFile) Caps() fs.Caps { return fs.CapIoctl }

// Ioctl implements fs.FileOps: surface geometry and alpha.
func (f *surfaceFile) Ioctl(_ *sched.Task, op int, arg int64) (int64, error) {
	switch op {
	case IoctlSurfSize:
		w, h := f.s.Size()
		_ = arg // resize unsupported: Proto windows are fixed-size
		return int64(w)<<32 | int64(h), nil
	case IoctlSurfAlpha:
		if arg < 0 || arg > 255 {
			return 0, fmt.Errorf("kernel: alpha %d", arg)
		}
		f.s.SetAlpha(byte(arg))
		return 0, nil
	}
	return 0, fmt.Errorf("kernel: surface ioctl %d", op)
}

// surfaceEventsFile reads the window's input queue as 8-byte records.
type surfaceEventsFile struct {
	fs.BaseOps
	s        *wm.Surface
	nonblock bool
}

// Read implements fs.FileOps: the next 8-byte event record.
func (f *surfaceEventsFile) Read(t *sched.Task, p []byte) (int, error) {
	if len(p) < wm.EventSize {
		return 0, fmt.Errorf("kernel: event read needs %d bytes", wm.EventSize)
	}
	e, ok := f.s.PopEvent(t, !f.nonblock)
	if !ok {
		return 0, fs.ErrWouldBlock
	}
	e.Encode(p)
	return wm.EventSize, nil
}

// Stat implements fs.FileOps.
func (f *surfaceEventsFile) Stat(*sched.Task) (fs.Stat, error) {
	return fs.Stat{Name: "event1", Type: fs.TypeDevice}, nil
}

// Caps implements fs.FileOps: a stream with control operations.
func (f *surfaceEventsFile) Caps() fs.Caps { return fs.CapIoctl }

// Ioctl implements fs.FileOps.
func (f *surfaceEventsFile) Ioctl(_ *sched.Task, op int, arg int64) (int64, error) {
	if op == IoctlNonblock {
		f.nonblock = arg != 0
		return 0, nil
	}
	return 0, fs.ErrNotSupported
}
