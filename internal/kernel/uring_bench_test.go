package kernel

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/uring"
	"protosim/internal/kernel/xv6fs"
)

// The ring-vs-syscall harness behind `make bench`: random 4K preads over
// a small set of latency-bound SD-backed FAT32 files, issued one syscall
// per operation (SysPread) versus one syscall per BATCH (SysRingEnter at
// batch 64). The ring's worker pool keeps the device's whole queue depth
// busy — in-flight reads overlap at the card — while the syscall loop
// serializes one device latency per op. The working set is far larger
// than the buffer cache, so both modes miss and pay the device; it spans
// several files because FAT32 serves each file's reads under its
// pseudo-inode lock, so a single file caps device concurrency at one
// regardless of issue depth (the many-file fan-out is exactly the shape
// io_uring batches in practice).
const (
	rbFiles     = 4       // fan-out: matches the worker pool / queue depth
	rbFileMB    = 1       // per file; 4 MB working set, 64x the cache
	rbIOSize    = 4 << 10 // random 4K ops
	rbOps       = 256     // per mode
	rbBatch     = 64      // SQEs per SysRingEnter
	rbCacheBufs = 128     // 64 KB cache: misses dominate
	rbSDScale   = 0.05    // SD timing scale: latency-bound but quick
)

// ringBenchResult is one mode's row in BENCH_file.json.
type ringBenchResult struct {
	Config   string  `json:"config"`
	Ops      int     `json:"ops"`
	Syscalls int64   `json:"syscalls"`
	MBps     float64 `json:"mbps"`
}

// TestRingIOThroughput records the ring-vs-syscall comparison into
// BENCH_file.json (merged: the xv6fs file_random4k recorder writes the
// file first) and gates ring throughput at >= 1.3x the per-op syscall
// path. Heavyweight and timing-sensitive: runs only under
// BENCH_FILE_JSON (the `make bench` / non-blocking CI path).
func TestRingIOThroughput(t *testing.T) {
	out := os.Getenv("BENCH_FILE_JSON")
	if out == "" {
		t.Skip("set BENCH_FILE_JSON=<path> to run the ring-IO benchmark")
	}
	hwCfg := hw.DefaultConfig()
	hwCfg.Cores = 4
	hwCfg.MemBytes = 32 << 20
	hwCfg.SDBlocks = 32768 // 16 MB card: room for the 4 MB file
	hwCfg.FBWidth, hwCfg.FBHeight = 320, 240
	m := hw.NewMachine(hwCfg)
	m.SD.SetLatencyScale(0)
	if err := fat32Mkfs(sdBlockDev{m.SD}); err != nil {
		t.Fatal(err)
	}
	rd, err := xv6fs.BuildImage(1024, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fullConfig(m, rd.Image())
	cfg.EnableFAT = true
	cfg.CacheBuffers = rbCacheBufs
	k := New(cfg)
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	defer k.Shutdown()

	// One (file, offset) sequence for both modes, 4K-aligned.
	span := (rbFileMB << 20) / rbIOSize
	rng := rand.New(rand.NewSource(7))
	offs := make([]int64, rbOps)
	files := make([]int, rbOps)
	for i := range offs {
		offs[i] = int64(rng.Intn(span)) * rbIOSize
		files[i] = rng.Intn(rbFiles)
	}

	var syscallRes, ringRes ringBenchResult
	code := run(t, k, "ringbench", func(p *Proc, _ []string) int {
		// Lay the files down at zero latency, durably, so measurement pays
		// only for reads.
		chunk := make([]byte, 256<<10)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		fds := make([]int, rbFiles)
		for fi := range fds {
			fd, err := p.SysOpen(fmt.Sprintf("/d/ring%d.bin", fi), fs.OCreate|fs.ORdWr)
			if err != nil {
				return 1
			}
			fds[fi] = fd
			for written := 0; written < rbFileMB<<20; written += len(chunk) {
				if _, err := p.SysWrite(fd, chunk); err != nil {
					return 2
				}
			}
		}
		if err := p.SysSync(); err != nil {
			return 3
		}
		m.SD.SetLatencyScale(rbSDScale)
		defer m.SD.SetLatencyScale(0)

		buf := make([]byte, rbIOSize)
		mbps := func(elapsed time.Duration) float64 {
			return (float64(rbOps*rbIOSize) / (1 << 20)) / elapsed.Seconds()
		}

		// Mode 1: one syscall per op.
		scBefore := k.SyscallCount()
		start := time.Now()
		for i, off := range offs {
			if _, err := p.SysPread(fds[files[i]], buf, off); err != nil {
				return 4
			}
		}
		syscallRes = ringBenchResult{
			Config:   "syscall-per-op (SysPread)",
			Ops:      rbOps,
			Syscalls: k.SyscallCount() - scBefore,
			MBps:     round2(mbps(time.Since(start))),
		}

		// Mode 2: one syscall per 64-op batch through the ring.
		r, err := p.SysRingSetup(rbBatch)
		if err != nil {
			return 5
		}
		bufs := make([][]byte, rbBatch)
		for i := range bufs {
			bufs[i] = make([]byte, rbIOSize)
		}
		scBefore = k.SyscallCount()
		start = time.Now()
		for base := 0; base < rbOps; base += rbBatch {
			for i, off := range offs[base : base+rbBatch] {
				if err := r.Queue(uring.SQE{Op: uring.OpPread, FD: fds[files[base+i]], Off: off, Buf: bufs[i], User: uint64(i)}); err != nil {
					return 6
				}
			}
			if _, err := p.SysRingEnter(rbBatch, rbBatch); err != nil {
				return 7
			}
			for i := 0; i < rbBatch; i++ {
				if cqe, ok := r.Reap(); !ok || cqe.Err != nil {
					return 8
				}
			}
		}
		ringRes = ringBenchResult{
			Config:   fmt.Sprintf("ring batch %d (SysRingEnter)", rbBatch),
			Ops:      rbOps,
			Syscalls: k.SyscallCount() - scBefore,
			MBps:     round2(mbps(time.Since(start))),
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("bench process exit = %d", code)
	}

	// Merge into BENCH_file.json beside the xv6fs recorder's section.
	report := map[string]any{}
	if blob, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(blob, &report)
	}
	speedup := ringRes.MBps / syscallRes.MBps
	report["ring_random4k"] = map[string]any{
		"benchmark": fmt.Sprintf("random 4K pread over %d FAT32 files (%dMB each) on latency-bound SD (scale %.2f), %dKB cache",
			rbFiles, rbFileMB, rbSDScale, rbCacheBufs*512>>10),
		"results":      []ringBenchResult{syscallRes, ringRes},
		"ring_speedup": round2(speedup),
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("syscall-per-op: %.2f MB/s over %d syscalls; ring: %.2f MB/s over %d syscalls (%.2fx)",
		syscallRes.MBps, syscallRes.Syscalls, ringRes.MBps, ringRes.Syscalls, speedup)

	// The satellite's gate: batching must buy at least 1.3x on a
	// latency-bound device (the CI job running this is non-blocking).
	if speedup < 1.3 {
		t.Errorf("ring speedup %.2fx < 1.3x over the per-op syscall path", speedup)
	}
	if want := int64(rbOps / rbBatch); ringRes.Syscalls != want+1 && ringRes.Syscalls != want {
		t.Errorf("ring mode used %d syscalls for %d ops, want ~%d (one per batch)", ringRes.Syscalls, rbOps, want)
	}
}

func round2(f float64) float64 { return float64(int(f*100)) / 100 }
