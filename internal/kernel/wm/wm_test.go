package wm

import (
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/sched"
)

func newWM(t *testing.T) (*WM, *hw.Framebuffer) {
	t.Helper()
	mem := hw.NewMem(16 << 20)
	mb := hw.NewMailbox(mem)
	fb, err := mb.AllocFramebuffer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	return New(fb), fb
}

func solidFrame(w, h int, r, g, b byte) []byte {
	f := make([]byte, w*h*4)
	for i := 0; i < len(f); i += 4 {
		f[i], f[i+1], f[i+2], f[i+3] = b, g, r, 0xFF
	}
	return f
}

func TestEventEncodeDecode(t *testing.T) {
	e := InputEvent{Down: true, Code: hw.UsageA, Mods: hw.ModLShift, ASCII: 'A'}
	var b [EventSize]byte
	e.Encode(b[:])
	got, ok := DecodeEvent(b[:])
	if !ok || got != e {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
	if _, ok := DecodeEvent([]byte{1, 2, 3}); ok {
		t.Fatal("short/garbage decode accepted")
	}
}

func TestSurfaceCompositesToFramebuffer(t *testing.T) {
	w, fb := newWM(t)
	s, err := w.CreateSurface(1, "red", 40, 30)
	if err != nil {
		t.Fatal(err)
	}
	s.Move(10, 10)
	s.Blit(solidFrame(40, 30, 0xFF, 0, 0))
	if !w.Composite() {
		t.Fatal("composite drew nothing")
	}
	// Pixel inside the window is red; outside is background.
	if px := fb.PixelAt(12, 12); px&0xFF0000 != 0xFF0000 {
		t.Fatalf("window pixel = %#x", px)
	}
	if px := fb.PixelAt(100, 100); px&0xFFFFFF == 0xFF0000 {
		t.Fatal("background is red")
	}
}

func TestZOrderOverlap(t *testing.T) {
	w, fb := newWM(t)
	bottom, _ := w.CreateSurface(1, "bottom", 60, 60)
	top, _ := w.CreateSurface(2, "top", 60, 60)
	bottom.Move(0, 0)
	top.Move(20, 20)
	bottom.Blit(solidFrame(60, 60, 0, 0xFF, 0)) // green
	top.Blit(solidFrame(60, 60, 0, 0, 0xFF))    // blue
	w.Composite()
	// Overlap region shows the top (blue) window.
	if px := fb.PixelAt(30, 30); px&0xFF != 0xFF {
		t.Fatalf("overlap pixel = %#x, want blue on top", px)
	}
	// Raising the bottom window flips the overlap.
	w.Raise(bottom)
	w.Composite()
	if px := fb.PixelAt(30, 30); px&0x00FF00 != 0x00FF00 {
		t.Fatalf("after raise pixel = %#x, want green", px)
	}
}

func TestTranslucentFloatingWindow(t *testing.T) {
	w, fb := newWM(t)
	base, _ := w.CreateSurface(1, "app", 80, 80)
	base.Move(0, 0)
	base.Blit(solidFrame(80, 80, 0xFF, 0, 0)) // red
	mon, _ := w.CreateSurface(2, "sysmon", 40, 40)
	mon.Move(0, 0)
	mon.SetAlpha(128)
	mon.Blit(solidFrame(40, 40, 0, 0, 0xFF)) // translucent blue over red
	w.Composite()
	px := fb.PixelAt(5, 5)
	r := (px >> 16) & 0xFF
	b := px & 0xFF
	if r < 0x40 || r > 0xC0 || b < 0x40 || b > 0xC0 {
		t.Fatalf("blend = %#x (r=%#x b=%#x), want mixed", px, r, b)
	}
}

func TestDirtyRegionSkipsCleanFrames(t *testing.T) {
	w, _ := newWM(t)
	s, _ := w.CreateSurface(1, "app", 40, 40)
	s.Blit(solidFrame(40, 40, 1, 2, 3))
	if !w.Composite() {
		t.Fatal("first composite drew nothing")
	}
	// Nothing changed: second pass must be a no-op.
	if w.Composite() {
		t.Fatal("clean composite still drew")
	}
	s.Blit(solidFrame(40, 40, 9, 9, 9))
	if !w.Composite() {
		t.Fatal("dirty composite skipped")
	}
}

func TestDirtyRegionLimitsBlending(t *testing.T) {
	w, _ := newWM(t)
	s, _ := w.CreateSurface(1, "app", 100, 100)
	s.Move(0, 0)
	s.Blit(solidFrame(100, 100, 5, 5, 5))
	w.Composite()
	_, p0 := w.Stats()
	// A 10x10 update must blend far fewer pixels than the whole window.
	s.BlitRect(20, 20, 10, 10, solidFrame(10, 10, 0xFF, 0xFF, 0xFF))
	w.Composite()
	_, p1 := w.Stats()
	if delta := p1 - p0; delta > 100*100/2 {
		t.Fatalf("partial update blended %d pixels; dirty tracking broken", delta)
	}
}

func TestFocusRoutingAndCtrlTab(t *testing.T) {
	w, _ := newWM(t)
	a, _ := w.CreateSurface(1, "a", 20, 20)
	b, _ := w.CreateSurface(2, "b", 20, 20)
	if w.Focused() != b {
		t.Fatal("newest window not focused")
	}
	// Plain key goes to b.
	w.DeliverKey(InputEvent{Down: true, Code: hw.UsageA, ASCII: 'a'})
	if e, ok := b.PopEvent(nil, false); !ok || e.ASCII != 'a' {
		t.Fatalf("b event = %+v, %v", e, ok)
	}
	if _, ok := a.PopEvent(nil, false); ok {
		t.Fatal("unfocused window received input")
	}
	// ctrl+tab switches to a; the chord itself is swallowed.
	w.DeliverKey(InputEvent{Down: true, Code: hw.UsageTab, Mods: hw.ModLCtrl})
	if w.Focused() != a {
		t.Fatal("ctrl+tab did not rotate focus")
	}
	if _, ok := a.PopEvent(nil, false); ok {
		t.Fatal("focus chord leaked to app")
	}
	w.DeliverKey(InputEvent{Down: true, Code: hw.UsageA + 1, Mods: 0, ASCII: 'b'})
	if e, ok := a.PopEvent(nil, false); !ok || e.ASCII != 'b' {
		t.Fatalf("a event = %+v", e)
	}
}

func TestCtrlArrowMovesWindow(t *testing.T) {
	w, _ := newWM(t)
	s, _ := w.CreateSurface(1, "a", 20, 20)
	s.Move(50, 50)
	w.DeliverKey(InputEvent{Down: true, Code: hw.UsageRight, Mods: hw.ModLCtrl})
	w.DeliverKey(InputEvent{Down: true, Code: hw.UsageDown, Mods: hw.ModLCtrl})
	x, y := s.Pos()
	if x != 66 || y != 66 {
		t.Fatalf("pos = (%d,%d)", x, y)
	}
}

func TestBlockingEventRead(t *testing.T) {
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	w, _ := newWM(t)
	surf, _ := w.CreateSurface(1, "app", 20, 20)
	got := make(chan InputEvent, 1)
	s.Go("reader", 0, func(t *sched.Task) {
		e, ok := surf.PopEvent(t, true)
		if ok {
			got <- e
		}
	})
	time.Sleep(5 * time.Millisecond)
	w.DeliverKey(InputEvent{Down: true, Code: hw.UsageA, ASCII: 'a'})
	select {
	case e := <-got:
		if e.ASCII != 'a' {
			t.Fatalf("event = %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking read never woke")
	}
}

func TestCloseSurfaceRefocusesAndUnblocks(t *testing.T) {
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	w, _ := newWM(t)
	a, _ := w.CreateSurface(1, "a", 20, 20)
	b, _ := w.CreateSurface(2, "b", 20, 20)
	done := make(chan bool, 1)
	s.Go("reader", 0, func(t *sched.Task) {
		_, ok := b.PopEvent(t, true)
		done <- ok
	})
	time.Sleep(5 * time.Millisecond)
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed surface delivered an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader stuck on closed surface")
	}
	if w.Focused() != a {
		t.Fatal("focus did not fall back")
	}
	if len(w.Surfaces()) != 1 {
		t.Fatal("surface not removed")
	}
}

func TestWMRunsAsKernelThread(t *testing.T) {
	s := sched.New(sched.Config{Cores: 2})
	s.Start()
	defer s.Shutdown(5 * time.Second)
	w, fb := newWM(t)
	s.Go("wm", 5, w.Run)
	surf, _ := w.CreateSurface(1, "app", 30, 30)
	surf.Move(0, 0)
	surf.Blit(solidFrame(30, 30, 0xFF, 0xFF, 0))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if px := fb.PixelAt(5, 5); px&0xFFFF00 == 0xFFFF00 {
			w.Stop()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.Stop()
	t.Fatal("kernel thread never composited the frame")
}
