// Package wm is Proto's window manager (§4.5, ~800 SLoC in the paper): it
// runs as a kernel thread, composites per-app surfaces onto the hardware
// framebuffer, tracks z-order and dirty regions, supports floating
// semi-transparent windows (sysmon), and dispatches input events to the
// focused window, intercepting ctrl+tab for focus switching.
package wm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/sched"
)

// InputEvent is one keyboard event as delivered to apps via /dev/event1.
type InputEvent struct {
	Down  bool
	Code  byte // HID usage
	Mods  byte
	ASCII byte // 0 when unprintable
}

// EventSize is the wire size of an encoded event.
const EventSize = 8

// Encode packs the event into an 8-byte record.
func (e InputEvent) Encode(b []byte) {
	b[0] = 'E'
	if e.Down {
		b[1] = 1
	} else {
		b[1] = 0
	}
	b[2] = e.Code
	b[3] = e.Mods
	b[4] = e.ASCII
	b[5], b[6], b[7] = 0, 0, 0
}

// DecodeEvent unpacks a record.
func DecodeEvent(b []byte) (InputEvent, bool) {
	if len(b) < EventSize || b[0] != 'E' {
		return InputEvent{}, false
	}
	return InputEvent{Down: b[1] == 1, Code: b[2], Mods: b[3], ASCII: b[4]}, true
}

// rect is a dirty region.
type rect struct{ x0, y0, x1, y1 int }

func (r rect) empty() bool { return r.x1 <= r.x0 || r.y1 <= r.y0 }

func (r rect) union(o rect) rect {
	if r.empty() {
		return o
	}
	if o.empty() {
		return r
	}
	if o.x0 < r.x0 {
		r.x0 = o.x0
	}
	if o.y0 < r.y0 {
		r.y0 = o.y0
	}
	if o.x1 > r.x1 {
		r.x1 = o.x1
	}
	if o.y1 > r.y1 {
		r.y1 = o.y1
	}
	return r
}

func (r rect) clip(w, h int) rect {
	if r.x0 < 0 {
		r.x0 = 0
	}
	if r.y0 < 0 {
		r.y0 = 0
	}
	if r.x1 > w {
		r.x1 = w
	}
	if r.y1 > h {
		r.y1 = h
	}
	return r
}

// Surface is one app window: an offscreen pixel buffer plus geometry and a
// per-window input queue.
type Surface struct {
	ID    int
	Title string
	Owner int // task ID

	wm *WM

	mu     sync.Mutex
	x, y   int
	w, h   int
	z      int
	alpha  byte // 255 opaque
	pixels []byte
	dirty  rect
	closed bool

	events   []InputEvent
	eventsWQ sched.WaitQueue
}

// Size returns the surface dimensions.
func (s *Surface) Size() (w, h int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w, s.h
}

// Pos returns the window position.
func (s *Surface) Pos() (x, y int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.x, s.y
}

// Move repositions the window (ctrl+arrows path) and dirties both places.
func (s *Surface) Move(x, y int) {
	s.mu.Lock()
	old := rect{s.x, s.y, s.x + s.w, s.y + s.h}
	s.x, s.y = x, y
	s.mu.Unlock()
	s.wm.dirtyGlobal(old)
	s.wm.dirtyGlobal(rect{x, y, x + s.w, y + s.h})
}

// SetAlpha sets window translucency (255 = opaque); sysmon uses ~160.
func (s *Surface) SetAlpha(a byte) {
	s.mu.Lock()
	s.alpha = a
	s.mu.Unlock()
	s.markAllDirty()
}

// Blit replaces the surface content with a full frame of XRGB pixels
// (len = w*h*4). Partial trailing rows are permitted for streaming writes.
func (s *Surface) Blit(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(frame) > len(s.pixels) {
		return fmt.Errorf("wm: frame %d bytes exceeds surface %d", len(frame), len(s.pixels))
	}
	copy(s.pixels, frame)
	rows := (len(frame) + s.w*4 - 1) / (s.w * 4)
	s.dirty = s.dirty.union(rect{0, 0, s.w, rows})
	return nil
}

// BlitRect updates a sub-rectangle (row-major src of rw*rh*4 bytes).
func (s *Surface) BlitRect(x, y, rw, rh int, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if x < 0 || y < 0 || x+rw > s.w || y+rh > s.h || len(src) < rw*rh*4 {
		return fmt.Errorf("wm: blit rect out of bounds")
	}
	for r := 0; r < rh; r++ {
		copy(s.pixels[((y+r)*s.w+x)*4:], src[r*rw*4:(r+1)*rw*4])
	}
	s.dirty = s.dirty.union(rect{x, y, x + rw, y + rh})
	return nil
}

func (s *Surface) markAllDirty() {
	s.mu.Lock()
	s.dirty = rect{0, 0, s.w, s.h}
	s.mu.Unlock()
}

// PushEvent queues an input event (called by the WM dispatcher).
func (s *Surface) PushEvent(e InputEvent) {
	s.mu.Lock()
	if len(s.events) < 256 {
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
	s.eventsWQ.WakeAll()
}

// PopEvent dequeues one event; blocking when block is set, else ok=false.
func (s *Surface) PopEvent(t *sched.Task, block bool) (InputEvent, bool) {
	for {
		s.mu.Lock()
		if len(s.events) > 0 {
			e := s.events[0]
			s.events = s.events[1:]
			s.mu.Unlock()
			return e, true
		}
		closed := s.closed
		s.mu.Unlock()
		if !block || closed {
			return InputEvent{}, false
		}
		s.eventsWQ.Sleep(t)
	}
}

// Close removes the surface from the compositor.
func (s *Surface) Close() {
	s.wm.removeSurface(s)
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.eventsWQ.WakeAll()
}

// WM is the compositor.
type WM struct {
	fb *hw.Framebuffer

	mu       sync.Mutex
	surfaces []*Surface // sorted by z ascending (bottom first)
	focus    *Surface
	nextID   int
	nextZ    int
	global   rect // region dirtied by moves/closes
	bg       uint32

	frames        atomic.Int64 // composition passes that drew something
	pixelsBlended atomic.Int64

	stop atomic.Bool
	task *sched.Task
}

// New creates a window manager over the hardware framebuffer.
func New(fb *hw.Framebuffer) *WM {
	return &WM{fb: fb, bg: 0x202830} // a dark desktop background
}

// CreateSurface registers a new window and focuses it.
func (w *WM) CreateSurface(owner int, title string, width, height int) (*Surface, error) {
	if width <= 0 || height <= 0 || width > w.fb.Width() || height > w.fb.Height() {
		return nil, fmt.Errorf("wm: bad surface geometry %dx%d", width, height)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	w.nextZ++
	s := &Surface{
		ID: w.nextID, Title: title, Owner: owner, wm: w,
		w: width, h: height, z: w.nextZ, alpha: 255,
		pixels: make([]byte, width*height*4),
		// Cascade new windows so they don't fully overlap.
		x: (len(w.surfaces) * 24) % (w.fb.Width() - width + 1),
		y: (len(w.surfaces) * 18) % (w.fb.Height() - height + 1),
	}
	s.dirty = rect{0, 0, width, height}
	w.surfaces = append(w.surfaces, s)
	w.focus = s
	return s, nil
}

func (w *WM) removeSurface(s *Surface) {
	w.mu.Lock()
	for i, cur := range w.surfaces {
		if cur == s {
			w.surfaces = append(w.surfaces[:i], w.surfaces[i+1:]...)
			break
		}
	}
	if w.focus == s {
		if len(w.surfaces) > 0 {
			w.focus = w.surfaces[len(w.surfaces)-1]
		} else {
			w.focus = nil
		}
	}
	s.mu.Lock()
	w.global = w.global.union(rect{s.x, s.y, s.x + s.w, s.y + s.h})
	s.mu.Unlock()
	w.mu.Unlock()
}

func (w *WM) dirtyGlobal(r rect) {
	w.mu.Lock()
	w.global = w.global.union(r)
	w.mu.Unlock()
}

// Raise brings a surface to the top of the z-order.
func (w *WM) Raise(s *Surface) {
	w.mu.Lock()
	w.nextZ++
	s.mu.Lock()
	s.z = w.nextZ
	s.mu.Unlock()
	w.sortLocked()
	w.mu.Unlock()
	s.markAllDirty()
}

func (w *WM) sortLocked() {
	// Insertion sort by z; the list is tiny and nearly sorted.
	for i := 1; i < len(w.surfaces); i++ {
		for j := i; j > 0 && w.surfaces[j-1].z > w.surfaces[j].z; j-- {
			w.surfaces[j-1], w.surfaces[j] = w.surfaces[j], w.surfaces[j-1]
		}
	}
}

// Focused returns the surface that receives input.
func (w *WM) Focused() *Surface {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.focus
}

// FocusNext rotates focus (ctrl+tab) and raises the newly focused window.
func (w *WM) FocusNext() {
	w.mu.Lock()
	if len(w.surfaces) == 0 {
		w.mu.Unlock()
		return
	}
	idx := 0
	for i, s := range w.surfaces {
		if s == w.focus {
			idx = (i + 1) % len(w.surfaces)
			break
		}
	}
	next := w.surfaces[idx]
	w.focus = next
	w.mu.Unlock()
	w.Raise(next)
}

// Surfaces snapshots the current z-ordered window list (bottom first).
func (w *WM) Surfaces() []*Surface {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*Surface, len(w.surfaces))
	copy(out, w.surfaces)
	return out
}

// DeliverKey is the keyboard driver's entry point: it intercepts the
// window-management chords and routes everything else to the focused app.
func (w *WM) DeliverKey(e InputEvent) {
	const ctrl = hw.ModLCtrl | hw.ModRCtrl
	if e.Down && e.Mods&ctrl != 0 {
		switch e.Code {
		case hw.UsageTab:
			w.FocusNext()
			return
		case hw.UsageLeft, hw.UsageRight, hw.UsageUp, hw.UsageDown:
			if f := w.Focused(); f != nil {
				x, y := f.Pos()
				switch e.Code {
				case hw.UsageLeft:
					x -= 16
				case hw.UsageRight:
					x += 16
				case hw.UsageUp:
					y -= 16
				case hw.UsageDown:
					y += 16
				}
				f.Move(x, y)
			}
			return
		}
	}
	if f := w.Focused(); f != nil {
		f.PushEvent(e)
	}
}

// Composite performs one composition pass, redrawing only dirty regions.
// It reports whether anything was drawn.
func (w *WM) Composite() bool {
	w.mu.Lock()
	// Union all dirty regions (in screen coordinates).
	damage := w.global
	w.global = rect{}
	surfs := make([]*Surface, len(w.surfaces))
	copy(surfs, w.surfaces)
	for _, s := range surfs {
		s.mu.Lock()
		if !s.dirty.empty() {
			damage = damage.union(rect{s.x + s.dirty.x0, s.y + s.dirty.y0, s.x + s.dirty.x1, s.y + s.dirty.y1})
			s.dirty = rect{}
		}
		s.mu.Unlock()
	}
	w.mu.Unlock()

	damage = damage.clip(w.fb.Width(), w.fb.Height())
	if damage.empty() {
		return false
	}

	fbmem := w.fb.Mem()
	pitch := w.fb.Pitch()
	// Background fill of the damaged region.
	for y := damage.y0; y < damage.y1; y++ {
		row := fbmem[y*pitch:]
		for x := damage.x0; x < damage.x1; x++ {
			o := x * 4
			row[o] = byte(w.bg)
			row[o+1] = byte(w.bg >> 8)
			row[o+2] = byte(w.bg >> 16)
			row[o+3] = 0xFF
		}
	}
	// Draw surfaces bottom to top, clipped to the damage. The surface
	// lock is held across the blend: snapshotting the pixel slice and
	// reading it unlocked would race a concurrent Blit's copy into the
	// same backing array.
	blended := int64(0)
	for _, s := range surfs {
		s.mu.Lock()
		sx, sy, sw, sh, alpha := s.x, s.y, s.w, s.h, s.alpha
		pixels := s.pixels
		r := rect{sx, sy, sx + sw, sy + sh}.clip(w.fb.Width(), w.fb.Height())
		r = r.union(rect{}) // no-op, keep shape
		// Intersect with damage.
		if r.x0 < damage.x0 {
			r.x0 = damage.x0
		}
		if r.y0 < damage.y0 {
			r.y0 = damage.y0
		}
		if r.x1 > damage.x1 {
			r.x1 = damage.x1
		}
		if r.y1 > damage.y1 {
			r.y1 = damage.y1
		}
		if r.empty() {
			s.mu.Unlock()
			continue
		}
		for y := r.y0; y < r.y1; y++ {
			dstRow := fbmem[y*pitch:]
			srcRow := pixels[(y-sy)*sw*4:]
			for x := r.x0; x < r.x1; x++ {
				so := (x - sx) * 4
				do := x * 4
				if alpha == 255 {
					dstRow[do] = srcRow[so]
					dstRow[do+1] = srcRow[so+1]
					dstRow[do+2] = srcRow[so+2]
					dstRow[do+3] = 0xFF
				} else {
					a := int(alpha)
					na := 255 - a
					dstRow[do] = byte((int(srcRow[so])*a + int(dstRow[do])*na) / 255)
					dstRow[do+1] = byte((int(srcRow[so+1])*a + int(dstRow[do+1])*na) / 255)
					dstRow[do+2] = byte((int(srcRow[so+2])*a + int(dstRow[do+2])*na) / 255)
					dstRow[do+3] = 0xFF
				}
				blended++
			}
		}
		s.mu.Unlock()
	}
	// Flush only the damaged rows — the cache maintenance the paper makes
	// Prototype 3 students implement.
	for y := damage.y0; y < damage.y1; y++ {
		w.fb.FlushRegion(y*pitch+damage.x0*4, (damage.x1-damage.x0)*4)
	}
	w.frames.Add(1)
	w.pixelsBlended.Add(blended)
	return true
}

// Run is the kernel-thread body: composite at ~60 Hz until Stop.
func (w *WM) Run(t *sched.Task) {
	w.task = t
	for !w.stop.Load() {
		w.Composite()
		t.SleepFor(16 * time.Millisecond)
	}
}

// Stop ends the compositor loop.
func (w *WM) Stop() { w.stop.Store(true) }

// Stats reports composition activity (frames drawn, pixels blended).
func (w *WM) Stats() (frames, pixels int64) {
	return w.frames.Load(), w.pixelsBlended.Load()
}
