package fat32

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// TestFSInfoPersistedAcrossMounts: Sync writes the FSInfo sector (free
// count + next-free hint) and a fresh mount reads it back, so the next
// allocation scan continues where the last mount stopped instead of
// restarting at cluster 2.
func TestFSInfoPersistedAcrossMounts(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh volume's FSInfo comes straight from Mkfs.
	free0, next0 := f.FSInfo(nil)
	if next0 != rootCluster+1 {
		t.Fatalf("fresh next-free hint = %d, want %d", next0, rootCluster+1)
	}
	scan, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free0 != scan {
		t.Fatalf("mkfs FSInfo free=%d, scan says %d", free0, scan)
	}

	fl, err := openOF(f, "/grow.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, bytes.Repeat([]byte{7}, 5*ClusterSize)); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	wantFree, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, wantNext := f.FSInfo(nil)

	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotFree, gotNext := f2.FSInfo(nil)
	if gotFree != wantFree || gotNext != wantNext {
		t.Fatalf("remount FSInfo = (%d, %d), want (%d, %d)", gotFree, gotNext, wantFree, wantNext)
	}
	// And the persisted count is the truth, not a stale copy.
	scan2, err := f2.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotFree != scan2 {
		t.Fatalf("persisted free=%d but FAT scan says %d", gotFree, scan2)
	}
}

// TestFSInfoInvalidIgnored: a volume whose FSInfo sector is garbage (or a
// pre-FSInfo image) mounts fine and falls back to scan-from-the-start.
func TestFSInfoInvalidIgnored(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xA5}, SectorSize)
	if err := dev.WriteBlocks(fsInfoSector, 1, junk); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	free, next := f.FSInfo(nil)
	if free != -1 || next != rootCluster {
		t.Fatalf("invalid FSInfo gave (%d, %d), want (-1, %d)", free, next, rootCluster)
	}
	// The volume still allocates and syncs — and Sync repairs the sector.
	fl, err := openOF(f, "/a.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("x"))
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2, _ := f2.FSInfo(nil); free2 < 0 {
		t.Fatal("Sync did not repair the FSInfo sector")
	}
}

// TestDaemonWritebackErrorReachesSync is the filesystem-level async
// error-propagation contract: a file's data is written (landing dirty in
// the cache), hw.ErrSDInjected fires inside a DAEMON writeback pass, and
// the error must surface at the owner's next Sync — not be silently
// dropped — while the data survives for the successful retry.
func TestDaemonWritebackErrorReachesSync(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := MountWith(dev, nil, bcache.Options{
		Buffers: 256, Shards: 4, Readahead: -1,
		FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cache()
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	payload := bytes.Repeat([]byte{0xEE}, 3*ClusterSize)
	fl, err := openOF(f, "/victim.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err) // write-behind: no device error possible here
	}
	sd.InjectErrors(1)
	// Rewrite the head of the file: every touched sector is already
	// cached, so this dirties data without any device traffic — there is
	// guaranteed dirty state AFTER the injector armed, whatever the
	// daemon managed to flush before.
	if _, err := fl.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, payload[:ClusterSize]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.WritebackErrPending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected error")
		}
		time.Sleep(time.Millisecond)
	}
	if err := f.Sync(nil); !errors.Is(err, hw.ErrSDInjected) {
		t.Fatalf("Sync after daemon write error = %v, want ErrSDInjected", err)
	}
	// The retry happened (or happens now): after a clean Sync the data is
	// durable and intact on a fresh mount.
	if err := f.Sync(nil); err != nil {
		t.Fatalf("second Sync = %v, want nil", err)
	}
	fl.Close(nil)
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := openOF(f2, "/victim.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	read := 0
	for read < len(got) {
		n, err := rf.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("read back: %d, %v", n, err)
		}
		read += n
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across the failed daemon writeback")
	}
}
