package fat32

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// flakyDev wraps a device and, once armed, fails WriteBlocks after a set
// number of further write commands succeed.
type flakyDev struct {
	fs.BlockDevice
	mu       sync.Mutex
	armed    bool
	okWrites int
}

var errInjected = errors.New("flaky: injected write error")

func (d *flakyDev) arm(okWrites int) {
	d.mu.Lock()
	d.armed = true
	d.okWrites = okWrites
	d.mu.Unlock()
}

func (d *flakyDev) disarm() {
	d.mu.Lock()
	d.armed = false
	d.mu.Unlock()
}

func (d *flakyDev) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	if d.armed {
		if d.okWrites == 0 {
			d.mu.Unlock()
			return errInjected
		}
		d.okWrites--
	}
	d.mu.Unlock()
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

func newFlakyFS(t *testing.T, blocks int) (*FS, *flakyDev) {
	t.Helper()
	sd := hw.NewSDCard(blocks, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := &flakyDev{BlockDevice: sdDev{sd}}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	// Write-through: these tests exercise the write-PATH error rollback,
	// which needs device errors to surface inside Write itself. Under the
	// default write-behind policy device errors surface at Sync instead
	// (see the async error-propagation tests).
	f, err := MountWith(dev, nil, bcache.Options{Policy: bcache.WritePolicyThrough})
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

// TestShortWriteRollbackMidCluster covers the PR-1 skip-zeroing rollback
// path: a write that grows the chain (skipping the zero pass for clusters
// it fully covers) fails mid-transfer; the appended clusters must be
// unlinked and freed — no unzeroed cluster may stay reachable — and the
// reported short-write count clamped to what is durable (in-place bytes
// below the old size).
func TestShortWriteRollbackMidCluster(t *testing.T) {
	for _, tc := range []struct {
		name     string
		okWrites int // device write commands allowed after arming
	}{
		{"fail-during-zeroing", 0},
		{"fail-after-partial-edge", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, dev := newFlakyFS(t, 4096)
			fl, err := openOF(f, "/victim.bin", fs.OCreate|fs.ORdWr)
			if err != nil {
				t.Fatal(err)
			}
			orig := bytes.Repeat([]byte{0xAB}, 6000) // ~1.5 clusters
			if _, err := fl.Write(nil, orig); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(nil); err != nil {
				t.Fatal(err)
			}
			freeBefore, err := f.FreeClusters(nil)
			if err != nil {
				t.Fatal(err)
			}

			// Overwrite from mid-cluster offset 4000 with 20000 bytes:
			// grows the chain by 4 clusters, three fully covered
			// (skip-zeroed), the tail partially covered (zeroed).
			const off = 4000
			if _, err := fl.Seek(nil, off, fs.SeekSet); err != nil {
				t.Fatal(err)
			}
			dev.arm(tc.okWrites)
			n, err := fl.Write(nil, bytes.Repeat([]byte{0xCD}, 20000))
			dev.disarm()
			if !errors.Is(err, errInjected) {
				t.Fatalf("write err = %v, want injected error", err)
			}
			// Short-write report: only in-place bytes below the old size
			// are durable; bytes in rolled-back clusters must not be
			// counted.
			if n > len(orig)-off {
				t.Fatalf("short write reported %d bytes, max durable is %d", n, len(orig)-off)
			}

			// Rollback observed: every appended cluster is free again.
			freeAfter, err := f.FreeClusters(nil)
			if err != nil {
				t.Fatal(err)
			}
			if freeAfter != freeBefore {
				t.Fatalf("cluster leak: %d free before failed write, %d after", freeBefore, freeAfter)
			}
			// Size unchanged; nothing beyond the old EOF is reachable, so
			// a skipped zero pass can never leak stale device bytes.
			st, err := f.Stat(nil, "/victim.bin")
			if err != nil || st.Size != int64(len(orig)) {
				t.Fatalf("stat after failed write = %+v, %v", st, err)
			}
			// Bytes before the failed write's offset are untouched.
			if _, err := fl.Seek(nil, 0, fs.SeekSet); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(orig))
			read := 0
			for read < len(got) {
				m, err := fl.Read(nil, got[read:])
				if err != nil || m == 0 {
					t.Fatalf("read back: %d, %v", m, err)
				}
				read += m
			}
			if !bytes.Equal(got[:off], orig[:off]) {
				t.Fatal("bytes below the failed write's offset were corrupted")
			}
			fl.Close(nil)

			// The volume still works: a full rewrite goes through.
			fl2, err := openOF(f, "/victim.bin", fs.OCreate|fs.ORdWr|fs.OTrunc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fl2.Write(nil, bytes.Repeat([]byte{0xEF}, 20000)); err != nil {
				t.Fatalf("write after rollback: %v", err)
			}
			fl2.Close(nil)
		})
	}
}

// TestRollbackConcurrentNeighbors runs the failing write while another
// file on the same mount keeps writing — the rollback must free only its
// own clusters and never disturb the neighbour.
func TestRollbackConcurrentNeighbors(t *testing.T) {
	withRankCheck(t)
	f, dev := newFlakyFS(t, 8192)
	victim, err := openOF(f, "/victim.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Write(nil, bytes.Repeat([]byte{1}, 6000)); err != nil {
		t.Fatal(err)
	}

	neighbor := bytes.Repeat([]byte{2}, 32<<10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			nf, err := openOF(f, "/steady.bin", fs.OCreate|fs.OWrOnly|fs.OTrunc)
			if err != nil {
				// The create/truncate path may absorb the injected failure
				// instead of the victim; this loop rewrites from scratch
				// each round, so just take another one.
				if errors.Is(err, errInjected) {
					continue
				}
				t.Errorf("neighbor open: %v", err)
				return
			}
			if _, err := nf.Write(nil, neighbor); err != nil && !errors.Is(err, errInjected) {
				t.Errorf("neighbor write: %v", err)
				return
			}
			nf.Close(nil)
		}
	}()
	// Inject one failure window; the victim's write must roll back while
	// the neighbour keeps going (its writes may also trip the injector —
	// that's fine, its loop rewrites from scratch each round).
	victim.Seek(nil, 4000, fs.SeekSet)
	dev.arm(1)
	_, werr := victim.Write(nil, bytes.Repeat([]byte{3}, 20000))
	dev.disarm()
	<-done
	if t.Failed() {
		return
	}
	if werr == nil {
		// The neighbour may have absorbed the injected failure instead;
		// only if the victim write failed do we assert rollback.
		t.Skip("injected failure landed on the neighbour; rollback path not taken")
	}
	st, err := f.Stat(nil, "/victim.bin")
	if err != nil || st.Size != 6000 {
		t.Fatalf("victim stat = %+v, %v", st, err)
	}
	// The neighbour's final rewrite (after disarm) must be intact.
	nf, err := openOF(f, "/steady.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(neighbor))
	read := 0
	for read < len(got) {
		m, err := nf.Read(nil, got[read:])
		if err != nil || m == 0 {
			t.Fatalf("neighbor read: %d, %v", m, err)
		}
		read += m
	}
	if !bytes.Equal(got, neighbor) {
		t.Fatal("neighbour corrupted by victim's rollback")
	}
	nf.Close(nil)
	victim.Close(nil)
}
