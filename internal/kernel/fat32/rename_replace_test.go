package fat32

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"protosim/internal/kernel/fs"
)

func newReplaceFS(t *testing.T) *FS {
	t.Helper()
	dev := fs.NewRamdisk(SectorSize, 16384)
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func writeNew(t *testing.T, f *FS, path, content string) {
	t.Helper()
	fl, err := openOF(f, path, fs.OCreate|fs.OWrOnly|fs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte(content)); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
}

func readAll(t *testing.T, f *FS, path string) []byte {
	t.Helper()
	fl, err := openOF(f, path, fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close(nil)
	st, err := fl.Stat(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, st.Size)
	if _, err := fl.Pread(nil, out, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRenameReplacesFile: POSIX rename onto an existing FAT32 file
// atomically replaces it — the target's dirent is repointed in place (no
// ErrExists), and a handle still open on the victim keeps reading the
// displaced contents until it closes, at which point the chain is freed
// (deferred reclaim, as with unlink-while-open).
func TestRenameReplacesFile(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/src.bin", "new-contents")
	writeNew(t, f, "/dst.bin", "old-contents!")

	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := openOF(f, "/dst.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(nil, "/src.bin", "/dst.bin"); err != nil {
		t.Fatalf("replace rename = %v, want nil", err)
	}
	if _, err := f.Stat(nil, "/src.bin"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("source survives: %v", err)
	}
	if got := readAll(t, f, "/dst.bin"); !bytes.Equal(got, []byte("new-contents")) {
		t.Fatalf("dst = %q", got)
	}
	// The surviving victim handle still reads the displaced contents —
	// its chain is kept allocated while the handle lives...
	free1, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0 {
		t.Fatalf("free clusters %d -> %d, want the victim's chain retained while open", free0, free1)
	}
	got := make([]byte, len("old-contents!"))
	if _, err := victim.Pread(nil, got, 0); err != nil || !bytes.Equal(got, []byte("old-contents!")) {
		t.Fatalf("victim handle read = %q, %v, want the displaced contents", got, err)
	}
	// ...and the last close reclaims it (one cluster back in the pool).
	if err := victim.Close(nil); err != nil {
		t.Fatalf("victim close = %v", err)
	}
	free2, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2 != free0+1 {
		t.Fatalf("free clusters %d -> %d after last close, want the victim's chain freed", free0, free2)
	}
}

// TestRenameReplaceTyping: the POSIX cross-type rules on FAT32.
func TestRenameReplaceTyping(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/file.bin", "x")
	for _, d := range []string{"/empty", "/full", "/move"} {
		if err := f.Mkdir(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	writeNew(t, f, "/full/kid.bin", "y")

	if err := f.Rename(nil, "/file.bin", "/empty"); !errors.Is(err, fs.ErrIsDir) {
		t.Fatalf("file onto dir = %v, want ErrIsDir (EISDIR)", err)
	}
	if err := f.Rename(nil, "/move", "/file.bin"); !errors.Is(err, fs.ErrNotDir) {
		t.Fatalf("dir onto file = %v, want ErrNotDir (ENOTDIR)", err)
	}
	if err := f.Rename(nil, "/move", "/full"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("dir onto full dir = %v, want ErrNotEmpty", err)
	}
	if err := f.Rename(nil, "/move", "/empty"); err != nil {
		t.Fatalf("dir onto empty dir = %v, want nil", err)
	}
	if _, err := f.Stat(nil, "/move"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal("moved dir still at old path")
	}
	writeNew(t, f, "/empty/fresh.bin", "z")
	if got := readAll(t, f, "/empty/fresh.bin"); !bytes.Equal(got, []byte("z")) {
		t.Fatalf("fresh = %q", got)
	}
}

// TestRenameSameChainIsNoop: both names pointing at one chain — rename
// succeeds and removes nothing (POSIX).
func TestRenameSameChainIsNoop(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/same.bin", "data")
	if err := f.Rename(nil, "/same.bin", "/same.bin"); err != nil {
		t.Fatalf("self rename = %v", err)
	}
	if got := readAll(t, f, "/same.bin"); !bytes.Equal(got, []byte("data")) {
		t.Fatalf("same = %q", got)
	}
}

// TestRenameOntoAncestorNoDeadlock is the FAT32 twin of the xv6fs
// regression: renaming onto the source's own parent/ancestor fails with
// the POSIX error instead of self-deadlocking on the held pseudo-inode
// lock.
func TestRenameOntoAncestorNoDeadlock(t *testing.T) {
	f := newReplaceFS(t)
	for _, d := range []string{"/x", "/x/y", "/x/y/z"} {
		if err := f.Mkdir(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	writeNew(t, f, "/x/y/f.bin", "payload")

	done := make(chan error, 4)
	go func() { done <- f.Rename(nil, "/x/y/z", "/x/y") }()
	go func() { done <- f.Rename(nil, "/x/y/z", "/x") }()
	go func() { done <- f.Rename(nil, "/x/y/f.bin", "/x/y") }()
	go func() { done <- f.Rename(nil, "/x/y/f.bin", "/x") }()
	got := map[error]int{}
	for i := 0; i < 4; i++ {
		select {
		case err := <-done:
			got[err]++
		case <-time.After(5 * time.Second):
			t.Fatal("rename onto ancestor deadlocked")
		}
	}
	if got[fs.ErrNotEmpty] != 2 || got[fs.ErrIsDir] != 2 {
		t.Fatalf("errors = %v, want 2×ErrNotEmpty + 2×ErrIsDir", got)
	}
	if err := f.Rename(nil, "/x/y/f.bin", "/x/moved.bin"); err != nil {
		t.Fatalf("follow-up rename = %v", err)
	}
}

// TestFailedAppendKeepsOffset: a Write through an O_APPEND description
// that fails (here: the volume runs out of clusters mid-append) must fail
// WITHOUT corrupting the shared offset (regression: the OFD used to store
// Pwrite's unresolved input offset — OffAppend is -1 — as the file
// position on failure).
func TestFailedAppendKeepsOffset(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/grow.bin", "0123456789")
	fl, err := openOF(f, "/grow.bin", fs.OWrOnly|fs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close(nil)
	if _, err := fl.Write(nil, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if off := fl.Offset(); off != 13 {
		t.Fatalf("offset after append = %d, want 13", off)
	}
	// Exhaust the pool so the next cluster-crossing append cannot grow
	// the chain.
	free, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	filler, err := openOF(f, "/filler.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filler.Write(nil, make([]byte, free*ClusterSize)); err != nil {
		t.Fatal(err)
	}
	defer filler.Close(nil)
	if _, err := fl.Write(nil, make([]byte, ClusterSize)); !errors.Is(err, fs.ErrNoSpace) {
		t.Fatalf("append on full volume = %v, want ErrNoSpace", err)
	}
	if off := fl.Offset(); off != 13 {
		t.Fatalf("offset after failed append = %d, want 13 (not corrupted)", off)
	}
}
