// Package fat32 is Proto's FatFS substitute: a FAT32 implementation with
// real on-disk structures (boot sector, file allocation table, 32-byte
// directory entries, cluster chains) over the SD card. As in Prototype 5
// (§4.5):
//
//   - files and directories get *pseudo-inodes* (handle structures) because
//     FAT has no inode concept;
//   - data IO uses *range* transfers straight to the block device,
//     bypassing the single-block buffer cache (§5.2's optimization) —
//     metadata (FAT, directories) still goes through the cache;
//   - names are 8.3 (uppercase on disk, case-insensitive lookup), which
//     covers Proto's assets (DOOM1.WAD, music, videos).
package fat32

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// Geometry.
const (
	SectorSize        = 512
	SectorsPerCluster = 8 // 4 KB clusters
	ClusterSize       = SectorSize * SectorsPerCluster

	fatEntrySize = 4
	direntSize   = 32

	endOfChain = 0x0FFFFFF8
	freeClust  = 0

	attrDir     = 0x10
	attrArchive = 0x20

	rootCluster = 2
)

// ErrBadFS reports an unrecognized boot sector.
var ErrBadFS = errors.New("fat32: bad boot sector")

// FS is a mounted FAT32 volume.
type FS struct {
	dev fs.BlockDevice
	bc  *bcache.Cache

	totalSectors int
	fatStart     int // sector
	fatSectors   int
	dataStart    int // sector of cluster 2
	clusters     int

	lock ksync.SleepLock // volume-wide, like xv6fs's

	mu          sync.Mutex
	pseudo      map[uint32]*pseudoInode // keyed by first cluster
	rangeReads  int64
	rangeBlocks int64

	// useBcacheForData disables the §5.2 bypass so benchmarks can measure
	// what it buys (the ModeXv6 baseline keeps the cache in the path).
	useBcacheForData bool
}

// pseudoInode bridges FAT (no inodes) to Proto's file layer: one per open
// file or directory, keyed by first cluster.
type pseudoInode struct {
	firstCluster uint32
	size         uint32
	isDir        bool
	refs         int
	// Directory entry location, for size updates on write.
	dirCluster uint32
	dirIndex   int
}

// Mkfs formats dev as FAT32 with an empty root directory.
func Mkfs(dev fs.BlockDevice) error {
	if dev.BlockSize() != SectorSize {
		return fmt.Errorf("fat32: mkfs wants %d-byte sectors, got %d", SectorSize, dev.BlockSize())
	}
	total := dev.Blocks()
	// Size the FAT: clusters ≈ (total - reserved) / sectorsPerCluster.
	reserved := 32
	clusters := (total - reserved) / SectorsPerCluster
	fatSectors := (clusters*fatEntrySize + SectorSize - 1) / SectorSize
	clusters = (total - reserved - fatSectors) / SectorsPerCluster
	if clusters < 16 {
		return fmt.Errorf("fat32: device too small (%d sectors)", total)
	}

	boot := make([]byte, SectorSize)
	copy(boot[3:], "PROTOFAT")
	binary.LittleEndian.PutUint16(boot[11:], SectorSize)
	boot[13] = SectorsPerCluster
	binary.LittleEndian.PutUint16(boot[14:], uint16(reserved))
	boot[16] = 1 // one FAT
	binary.LittleEndian.PutUint32(boot[32:], uint32(total))
	binary.LittleEndian.PutUint32(boot[36:], uint32(fatSectors))
	binary.LittleEndian.PutUint32(boot[44:], rootCluster)
	boot[510], boot[511] = 0x55, 0xAA
	if err := dev.WriteBlocks(0, 1, boot); err != nil {
		return err
	}

	// Zero the FAT, then mark reserved entries and the root cluster.
	zero := make([]byte, SectorSize)
	for s := 0; s < fatSectors; s++ {
		if err := dev.WriteBlocks(reserved+s, 1, zero); err != nil {
			return err
		}
	}
	fat0 := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(fat0[0:], 0x0FFFFFF8) // media
	binary.LittleEndian.PutUint32(fat0[4:], 0x0FFFFFFF) // reserved
	binary.LittleEndian.PutUint32(fat0[8:], endOfChain) // root dir
	if err := dev.WriteBlocks(reserved, 1, fat0); err != nil {
		return err
	}
	// Zero the root directory cluster.
	dataStart := reserved + fatSectors
	for s := 0; s < SectorsPerCluster; s++ {
		if err := dev.WriteBlocks(dataStart+s, 1, zero); err != nil {
			return err
		}
	}
	return nil
}

// Mount opens a FAT32 volume.
func Mount(dev fs.BlockDevice, t *sched.Task) (*FS, error) {
	if dev.BlockSize() != SectorSize {
		return nil, fmt.Errorf("%w: sector size %d", ErrBadFS, dev.BlockSize())
	}
	f := &FS{dev: dev, bc: bcache.New(dev, bcache.DefaultBuffers), pseudo: make(map[uint32]*pseudoInode)}
	boot := make([]byte, SectorSize)
	if err := dev.ReadBlocks(0, 1, boot); err != nil {
		return nil, err
	}
	if boot[510] != 0x55 || boot[511] != 0xAA || string(boot[3:11]) != "PROTOFAT" {
		return nil, ErrBadFS
	}
	reserved := int(binary.LittleEndian.Uint16(boot[14:]))
	f.totalSectors = int(binary.LittleEndian.Uint32(boot[32:]))
	f.fatSectors = int(binary.LittleEndian.Uint32(boot[36:]))
	f.fatStart = reserved
	f.dataStart = reserved + f.fatSectors
	f.clusters = (f.totalSectors - f.dataStart) / SectorsPerCluster
	return f, nil
}

// SetDataThroughCache forces data IO through the single-block buffer cache
// (disabling the §5.2 bypass); used by the xv6-baseline benchmarks.
func (f *FS) SetDataThroughCache(on bool) {
	f.mu.Lock()
	f.useBcacheForData = on
	f.mu.Unlock()
}

// RangeStats reports bypassed range transfers (reads, blocks).
func (f *FS) RangeStats() (ops, blocks int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rangeReads, f.rangeBlocks
}

// Cache exposes the metadata buffer cache.
func (f *FS) Cache() *bcache.Cache { return f.bc }

// --- FAT access (through the buffer cache; caller holds f.lock) ---

func (f *FS) fatGet(t *sched.Task, cluster uint32) (uint32, error) {
	off := int(cluster) * fatEntrySize
	sector := f.fatStart + off/SectorSize
	var val uint32
	b, err := f.bc.Get(t, sector)
	if err != nil {
		return 0, err
	}
	val = binary.LittleEndian.Uint32(b.Data[off%SectorSize:]) & 0x0FFFFFFF
	f.bc.Release(b)
	return val, nil
}

func (f *FS) fatSet(t *sched.Task, cluster, val uint32) error {
	off := int(cluster) * fatEntrySize
	sector := f.fatStart + off/SectorSize
	b, err := f.bc.Get(t, sector)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b.Data[off%SectorSize:], val&0x0FFFFFFF)
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return nil
}

// allocCluster finds a free FAT entry, links it as end-of-chain.
func (f *FS) allocCluster(t *sched.Task) (uint32, error) {
	for c := uint32(rootCluster); c < uint32(f.clusters+rootCluster); c++ {
		v, err := f.fatGet(t, c)
		if err != nil {
			return 0, err
		}
		if v == freeClust {
			if err := f.fatSet(t, c, endOfChain); err != nil {
				return 0, err
			}
			// Zero the cluster (directories depend on this).
			zero := make([]byte, ClusterSize)
			if err := f.writeClusterData(t, c, zero); err != nil {
				return 0, err
			}
			return c, nil
		}
	}
	return 0, fs.ErrNoSpace
}

// freeChain releases a cluster chain.
func (f *FS) freeChain(t *sched.Task, c uint32) error {
	for c >= rootCluster && c < endOfChain {
		next, err := f.fatGet(t, c)
		if err != nil {
			return err
		}
		if err := f.fatSet(t, c, freeClust); err != nil {
			return err
		}
		c = next
	}
	return nil
}

// chain returns the cluster list of a chain starting at c.
func (f *FS) chain(t *sched.Task, c uint32) ([]uint32, error) {
	var out []uint32
	for c >= rootCluster && c < endOfChain {
		out = append(out, c)
		next, err := f.fatGet(t, c)
		if err != nil {
			return nil, err
		}
		if next == c {
			return nil, fmt.Errorf("fat32: cluster %d links to itself", c)
		}
		c = next
	}
	return out, nil
}

func (f *FS) clusterSector(c uint32) int {
	return f.dataStart + int(c-rootCluster)*SectorsPerCluster
}

// readClusterData reads one whole cluster. Data path: a single range read
// (the bypass), or 8 single-block cached reads in baseline mode.
func (f *FS) readClusterData(t *sched.Task, c uint32, dst []byte) error {
	sector := f.clusterSector(c)
	f.mu.Lock()
	cached := f.useBcacheForData
	f.mu.Unlock()
	if cached {
		for s := 0; s < SectorsPerCluster; s++ {
			b, err := f.bc.Get(t, sector+s)
			if err != nil {
				return err
			}
			copy(dst[s*SectorSize:], b.Data)
			f.bc.Release(b)
		}
		return nil
	}
	f.mu.Lock()
	f.rangeReads++
	f.rangeBlocks += SectorsPerCluster
	f.mu.Unlock()
	return f.dev.ReadBlocks(sector, SectorsPerCluster, dst)
}

func (f *FS) writeClusterData(t *sched.Task, c uint32, src []byte) error {
	sector := f.clusterSector(c)
	f.mu.Lock()
	cached := f.useBcacheForData
	f.mu.Unlock()
	if cached {
		for s := 0; s < SectorsPerCluster; s++ {
			b, err := f.bc.Get(t, sector+s)
			if err != nil {
				return err
			}
			copy(b.Data, src[s*SectorSize:(s+1)*SectorSize])
			f.bc.MarkDirty(b)
			f.bc.Release(b)
		}
		return nil
	}
	f.mu.Lock()
	f.rangeReads++
	f.rangeBlocks += SectorsPerCluster
	f.mu.Unlock()
	return f.dev.WriteBlocks(sector, SectorsPerCluster, src)
}

// readRange reads contiguous cluster runs with single range commands — the
// §5.2 fast path whose effect Fig 8's throughput sweep shows.
func (f *FS) readRange(t *sched.Task, clusters []uint32, off int, dst []byte) error {
	// Walk [off, off+len(dst)) across the chain, coalescing contiguous
	// clusters into one device command.
	done := 0
	for done < len(dst) {
		pos := off + done
		ci := pos / ClusterSize
		co := pos % ClusterSize
		if ci >= len(clusters) {
			return fmt.Errorf("fat32: read beyond chain")
		}
		if co != 0 || len(dst)-done < ClusterSize {
			// Partial cluster: read it whole, copy the piece.
			buf := make([]byte, ClusterSize)
			if err := f.readClusterData(t, clusters[ci], buf); err != nil {
				return err
			}
			n := copy(dst[done:], buf[co:])
			done += n
			continue
		}
		// Aligned: coalesce a contiguous run.
		run := 1
		for ci+run < len(clusters) &&
			clusters[ci+run] == clusters[ci]+uint32(run) &&
			done+(run+1)*ClusterSize <= len(dst) {
			run++
		}
		f.mu.Lock()
		cached := f.useBcacheForData
		f.mu.Unlock()
		if cached {
			for k := 0; k < run; k++ {
				if err := f.readClusterData(t, clusters[ci+k], dst[done+k*ClusterSize:done+(k+1)*ClusterSize]); err != nil {
					return err
				}
			}
		} else {
			sector := f.clusterSector(clusters[ci])
			nsec := run * SectorsPerCluster
			f.mu.Lock()
			f.rangeReads++
			f.rangeBlocks += int64(nsec)
			f.mu.Unlock()
			if err := f.dev.ReadBlocks(sector, nsec, dst[done:done+run*ClusterSize]); err != nil {
				return err
			}
		}
		done += run * ClusterSize
	}
	return nil
}
