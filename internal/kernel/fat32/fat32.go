// Package fat32 is Proto's FatFS substitute: a FAT32 implementation with
// real on-disk structures (boot sector, file allocation table, 32-byte
// directory entries, cluster chains) over the SD card. As in Prototype 5
// (§4.5):
//
//   - files and directories get *pseudo-inodes* (handle structures) because
//     FAT has no inode concept;
//   - data IO uses *range* transfers — multi-block commands that pay the
//     SD command setup once per contiguous run (§5.2's optimization);
//   - names are 8.3 (uppercase on disk, case-insensitive lookup), which
//     covers Proto's assets (DOOM1.WAD, music, videos).
//
// Historically the range path bypassed the single-block buffer cache
// because the cache could not express multi-block operations. The sharded
// bcache now supports range reads/writes natively, so all IO — data and
// metadata — flows through one cache (DataPathRange, the default). The two
// older paths survive only as measurement baselines: DataPathSingleBlock
// reproduces the xv6 per-sector cached loop for Figure 9's ModeXv6 column,
// and DataPathBypass reproduces the pre-cache direct-device path so
// benchmarks can show what caching range IO buys.
package fat32

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// Geometry.
const (
	SectorSize        = 512
	SectorsPerCluster = 8 // 4 KB clusters
	ClusterSize       = SectorSize * SectorsPerCluster

	fatEntrySize = 4
	direntSize   = 32

	endOfChain = 0x0FFFFFF8
	freeClust  = 0

	attrDir     = 0x10
	attrArchive = 0x20

	rootCluster = 2

	// FSInfo sector (standard FAT32 layout): free-cluster count and
	// next-free hint, persisted at Sync/unmount and read back at mount so
	// a fresh mount neither rescans the FAT for the count nor restarts
	// its allocation scan from cluster 2.
	fsInfoSector    = 1
	fsInfoLeadSig   = 0x41615252 // "RRaA"
	fsInfoStructSig = 0x61417272 // "rrAa"
	fsInfoUnknown   = 0xFFFFFFFF
)

// ErrBadFS reports an unrecognized boot sector.
var ErrBadFS = errors.New("fat32: bad boot sector")

// DataPath selects how file data reaches the block device. Metadata (FAT,
// directories) always goes through the buffer cache.
type DataPath int

// Data paths. Only DataPathRange is a production path; the other two exist
// so experiments can reproduce the baselines the paper compares against.
// Switching paths on a live volume is a benchmark-harness affordance:
// callers must Sync first, and the bypass path must not run concurrently
// with cached writes to the same clusters.
const (
	// DataPathRange (default) sends multi-block range operations through
	// the sharded buffer cache: cached blocks from memory, misses
	// coalesced into single device commands, batched writeback.
	DataPathRange DataPath = iota
	// DataPathSingleBlock loops over sectors through the cache one block
	// at a time — the xv6 baseline of Figure 9 (kernel ModeXv6).
	DataPathSingleBlock
	// DataPathBypass issues range commands directly to the device,
	// skipping the cache — the pre-sharded-cache behavior, kept as the
	// benchmark baseline the sharded cache is measured against.
	DataPathBypass
)

func (p DataPath) String() string {
	switch p {
	case DataPathRange:
		return "range"
	case DataPathSingleBlock:
		return "single-block"
	case DataPathBypass:
		return "bypass"
	}
	return "?"
}

// FS is a mounted FAT32 volume.
type FS struct {
	dev fs.BlockDevice
	bc  *bcache.Cache

	totalSectors int
	fatStart     int // sector
	fatSectors   int
	dataStart    int // sector of cluster 2
	clusters     int

	// renameMu guards tree reshaping (rank: rename). Cross-directory
	// renames — the only operations that move names between directories,
	// whose textual ancestry checks and two-directory lock ordering need
	// a stable tree — take it exclusively. Same-directory renames never
	// consult ancestry and lock parent-then-child like create/unlink, so
	// they take it shared and proceed concurrently; see FS.Rename.
	renameMu ksync.RWSleepLock

	// fatLock (rank: alloc) is the dedicated allocator lock: it guards
	// free↔claimed FAT transitions (allocCluster's scan-and-claim,
	// freeChain) and the FSInfo-style next-free hint. Chain walks and
	// tail links of a chain the caller owns (its pseudo-inode locked)
	// don't need it — individual FAT entry updates are atomic under
	// their sector's buffer lock — so allocators never contend with
	// data IO.
	fatLock  ksync.SleepLock
	freeHint uint32 // next-free scan start, guarded by fatLock
	// freeCount is the running free-cluster tally, guarded by fatLock:
	// seeded from the FSInfo sector at mount (or by one lazy scan when
	// the image carried none) and maintained by every claim/free
	// transition, so Sync persists it in O(1) instead of rescanning the
	// FAT. -1 = not yet known.
	freeCount int
	// fsInfoOK records that the boot sector advertises an FSInfo sector
	// AND the reserved region actually contains it. Foreign/legacy
	// volumes with reserved <= fsInfoSector put FAT (or data) at that
	// address; persisting FSInfo there would corrupt the volume, so such
	// mounts keep the count in memory only.
	fsInfoOK bool

	// Error-resilience state (errors=remount-ro). degraded flips when any
	// asynchronous writeback is abandoned; roFlag latches when an ordered
	// publish barrier fails — the dirent about to be written would point
	// at structure the device never accepted — or the device dies. Once
	// latched, every mutating entry point returns ErrReadOnly; reads and
	// fsync stay available.
	degraded atomic.Bool
	roFlag   atomic.Bool
	roCause  atomic.Value // error

	mu          sync.Mutex
	pseudo      map[uint32]*pseudoInode // keyed by first cluster
	dataPath    DataPath
	rangeOps    int64
	rangeBlocks int64

	// owners maps first cluster -> the file's writeback-error stream,
	// guarded by mu. Deliberately separate from the pseudo-inode table:
	// write-behind buffers keep their owner tag after the last close
	// drops the pseudo-inode, so the stream must outlive it — a reopen
	// finds the same Owner and its fsync still flushes that earlier data
	// and reports its errors. An entry dies at unlink, when the first
	// cluster stops naming this file.
	owners map[uint32]*bcache.Owner

	// dc is the kernel dentry cache handle for this mount — nil until the
	// kernel attaches one; every dcache.Mount method is nil-safe, so a
	// bare-mounted volume just runs uncached. Lookups consult it before
	// scanning directory clusters and fill what the scan proved; every
	// name mutation invalidates its keys BEFORE the dirent write lands.
	// Keys are the parent directory's first cluster plus the lower-cased
	// component name (FAT lookups are case-insensitive).
	dc *dcache.Mount
}

// pseudoInode bridges FAT (no inodes) to Proto's file layer: one per
// in-use file or directory, keyed by first cluster and deduplicated so
// every holder converges on the same sleeplock — the per-file lock that
// replaced the volume-wide one.
type pseudoInode struct {
	firstCluster uint32
	isDir        bool
	refs         int // guarded by FS.mu

	// lock (rank: inode, order: firstCluster) serializes operations on
	// this file/directory and guards the fields below.
	lock ksync.SleepLock
	size uint32
	dead bool // poisoned: chain freed, operations must fail
	// unlinked marks an object removed from the namespace while other
	// handles still referenced it: the dirent is gone but the chain is
	// kept allocated so those descriptors keep reading, writing, and
	// fsyncing, and the LAST unpin frees the chain (deferred reclaim,
	// the xv6fs open-unlink contract). Written while holding both
	// pi.lock and FS.mu; readable under either.
	unlinked bool
	// Directory entry location, for size updates on write.
	dirCluster uint32
	dirIndex   int
	// Dentry-cache identity: the parent directory's first cluster and
	// the lower-cased component name, so size publishes can refresh the
	// cached entry in place (see patchDirentSize). Written at pin
	// creation (under FS.mu, before the pseudo-inode is visible) and at
	// rename (under lock); read under lock.
	parent uint32
	name   string

	// wb is this file's writeback-error stream (shared via FS.owners so
	// it survives the pseudo-inode): data writes tag their dirty buffers
	// with it, asynchronous write failures advance it, and the file's
	// fsync observes it (bcache errseq semantics).
	wb *bcache.Owner
}

// Mkfs formats dev as FAT32 with an empty root directory.
func Mkfs(dev fs.BlockDevice) error {
	if dev.BlockSize() != SectorSize {
		return fmt.Errorf("fat32: mkfs wants %d-byte sectors, got %d", SectorSize, dev.BlockSize())
	}
	total := dev.Blocks()
	// Size the FAT: clusters ≈ (total - reserved) / sectorsPerCluster.
	reserved := 32
	clusters := (total - reserved) / SectorsPerCluster
	fatSectors := (clusters*fatEntrySize + SectorSize - 1) / SectorSize
	clusters = (total - reserved - fatSectors) / SectorsPerCluster
	if clusters < 16 {
		return fmt.Errorf("fat32: device too small (%d sectors)", total)
	}

	boot := make([]byte, SectorSize)
	copy(boot[3:], "PROTOFAT")
	binary.LittleEndian.PutUint16(boot[11:], SectorSize)
	boot[13] = SectorsPerCluster
	binary.LittleEndian.PutUint16(boot[14:], uint16(reserved))
	boot[16] = 1 // one FAT
	binary.LittleEndian.PutUint32(boot[32:], uint32(total))
	binary.LittleEndian.PutUint32(boot[36:], uint32(fatSectors))
	binary.LittleEndian.PutUint32(boot[44:], rootCluster)
	binary.LittleEndian.PutUint16(boot[48:], fsInfoSector)
	boot[510], boot[511] = 0x55, 0xAA
	if err := dev.WriteBlocks(0, 1, boot); err != nil {
		return err
	}

	// FSInfo: all clusters free except the root directory's; next free
	// scan starts right behind the root.
	fsi := make([]byte, SectorSize)
	encodeFSInfo(fsi, uint32(clusters-1), rootCluster+1)
	if err := dev.WriteBlocks(fsInfoSector, 1, fsi); err != nil {
		return err
	}

	// Empty orphan list (a reused device may carry stale records).
	if err := dev.WriteBlocks(orphanSector, 1, make([]byte, SectorSize)); err != nil {
		return err
	}

	// Zero the FAT, then mark reserved entries and the root cluster.
	zero := make([]byte, SectorSize)
	for s := 0; s < fatSectors; s++ {
		if err := dev.WriteBlocks(reserved+s, 1, zero); err != nil {
			return err
		}
	}
	fat0 := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(fat0[0:], 0x0FFFFFF8) // media
	binary.LittleEndian.PutUint32(fat0[4:], 0x0FFFFFFF) // reserved
	binary.LittleEndian.PutUint32(fat0[8:], endOfChain) // root dir
	if err := dev.WriteBlocks(reserved, 1, fat0); err != nil {
		return err
	}
	// Zero the root directory cluster.
	dataStart := reserved + fatSectors
	for s := 0; s < SectorsPerCluster; s++ {
		if err := dev.WriteBlocks(dataStart+s, 1, zero); err != nil {
			return err
		}
	}
	return nil
}

// Mount opens a FAT32 volume with default cache sizing.
func Mount(dev fs.BlockDevice, t *sched.Task) (*FS, error) {
	return MountWith(dev, t, bcache.Options{})
}

// MountWith opens a FAT32 volume with an explicitly configured buffer
// cache (shard count, buffer count, readahead).
func MountWith(dev fs.BlockDevice, t *sched.Task, copts bcache.Options) (*FS, error) {
	if dev.BlockSize() != SectorSize {
		return nil, fmt.Errorf("%w: sector size %d", ErrBadFS, dev.BlockSize())
	}
	f := &FS{
		dev:    dev,
		pseudo: make(map[uint32]*pseudoInode),
		owners: make(map[uint32]*bcache.Owner),
	}
	// Cache give-up notifications drive the mount's health: any abandoned
	// writeback marks the volume degraded; device death latches it
	// read-only. The hook runs with a buffer sleeplock held and only
	// flips atomics; a caller-supplied hook is chained after ours.
	userGiveUp := copts.OnGiveUp
	copts.OnGiveUp = func(lba int, err error) {
		f.degraded.Store(true)
		if errors.Is(err, fs.ErrDeviceDead) {
			f.remountRO(err)
		}
		if userGiveUp != nil {
			userGiveUp(lba, err)
		}
	}
	f.bc = bcache.NewWithOptions(dev, copts)
	f.renameMu.SetRank(ksync.RankRename, 0)
	f.fatLock.SetRank(ksync.RankAlloc, 0)
	f.freeHint = rootCluster
	boot := make([]byte, SectorSize)
	if err := dev.ReadBlocks(0, 1, boot); err != nil {
		return nil, err
	}
	if boot[510] != 0x55 || boot[511] != 0xAA || string(boot[3:11]) != "PROTOFAT" {
		return nil, ErrBadFS
	}
	// Validate every geometry field before it sizes a loop or a block
	// address — a hostile BPB must fail typed here, not panic later. All
	// bounds math runs in int64 so crafted uint32s can't overflow.
	if bps := binary.LittleEndian.Uint16(boot[11:]); bps != SectorSize {
		return nil, fmt.Errorf("%w: %d-byte sectors", ErrBadFS, bps)
	}
	if spc := boot[13]; spc != SectorsPerCluster {
		return nil, fmt.Errorf("%w: %d sectors per cluster", ErrBadFS, spc)
	}
	if rc := binary.LittleEndian.Uint32(boot[44:]); rc != rootCluster {
		return nil, fmt.Errorf("%w: root cluster %d", ErrBadFS, rc)
	}
	reserved := int64(binary.LittleEndian.Uint16(boot[14:]))
	totalSectors := int64(binary.LittleEndian.Uint32(boot[32:]))
	fatSectors := int64(binary.LittleEndian.Uint32(boot[36:]))
	if reserved < 1 || fatSectors < 1 {
		return nil, fmt.Errorf("%w: %d reserved, %d FAT sectors", ErrBadFS, reserved, fatSectors)
	}
	if totalSectors < 1 || totalSectors > int64(dev.Blocks()) {
		return nil, fmt.Errorf("%w: %d sectors (device %d)", ErrBadFS, totalSectors, dev.Blocks())
	}
	dataStart := reserved + fatSectors
	clusters := (totalSectors - dataStart) / SectorsPerCluster
	if clusters < 1 {
		return nil, fmt.Errorf("%w: no data clusters", ErrBadFS)
	}
	// Every cluster's FAT entry must live inside the FAT region, or chain
	// walks would read file data as links.
	if (clusters+rootCluster)*fatEntrySize > fatSectors*SectorSize {
		return nil, fmt.Errorf("%w: FAT too small for %d clusters", ErrBadFS, clusters)
	}
	f.totalSectors = int(totalSectors)
	f.fatSectors = int(fatSectors)
	f.fatStart = int(reserved)
	f.dataStart = int(dataStart)
	f.clusters = int(clusters)

	// FSInfo: seed the next-free hint (and remember the persisted free
	// count) when a valid sector is present. Images from before the
	// FSInfo change just have an invalid sector and start from scratch.
	if s := int(binary.LittleEndian.Uint16(boot[48:])); s == fsInfoSector && reserved > fsInfoSector {
		f.fsInfoOK = true
		fsi := make([]byte, SectorSize)
		if err := dev.ReadBlocks(fsInfoSector, 1, fsi); err != nil {
			return nil, err
		}
		if free, next, ok := decodeFSInfo(fsi); ok {
			if next >= rootCluster && next < uint32(f.clusters)+rootCluster {
				f.freeHint = next
			}
			if free != fsInfoUnknown && free <= uint32(f.clusters) {
				f.freeCount = int(free)
			} else {
				f.freeCount = -1
			}
		} else {
			f.freeCount = -1
		}
	} else {
		f.freeCount = -1
	}
	// Reclaim chains whose unlink was deferred past the previous mount's
	// lifetime (unlinked-but-open files; see orphan.go). Needs the
	// geometry and FSInfo seeding above: freeChain maintains freeCount.
	if f.orphanListUsable() {
		if err := f.orphanScan(t); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// encodeFSInfo lays out a standard FAT32 FSInfo sector.
func encodeFSInfo(b []byte, free, next uint32) {
	binary.LittleEndian.PutUint32(b[0:], fsInfoLeadSig)
	binary.LittleEndian.PutUint32(b[484:], fsInfoStructSig)
	binary.LittleEndian.PutUint32(b[488:], free)
	binary.LittleEndian.PutUint32(b[492:], next)
	b[510], b[511] = 0x55, 0xAA
}

// decodeFSInfo validates and extracts an FSInfo sector.
func decodeFSInfo(b []byte) (free, next uint32, ok bool) {
	if binary.LittleEndian.Uint32(b[0:]) != fsInfoLeadSig ||
		binary.LittleEndian.Uint32(b[484:]) != fsInfoStructSig ||
		b[510] != 0x55 || b[511] != 0xAA {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint32(b[488:]), binary.LittleEndian.Uint32(b[492:]), true
}

// FSInfo reports the running free-cluster count (-1 when the mounted
// image carried no valid FSInfo and no Sync has scanned yet) and the
// current next-free hint.
func (f *FS) FSInfo(t *sched.Task) (freeCount int, nextFree uint32) {
	f.fatLock.Lock(t)
	defer f.fatLock.Unlock()
	return f.freeCount, f.freeHint
}

// writeFSInfoLocked pushes the running free count and hint into the
// FSInfo sector through the cache. The count is maintained incrementally
// by the claim/free transitions (all under fatLock); only a mount from a
// pre-FSInfo image pays one lazy FAT scan here. Caller holds fatLock.
func (f *FS) writeFSInfoLocked(t *sched.Task) error {
	// No recognized FSInfo sector inside the reserved region (foreign
	// image): sector 1 belongs to the FAT or data there, never write it.
	if !f.fsInfoOK {
		return nil
	}
	if f.freeCount < 0 {
		free, err := f.freeClustersLocked(t)
		if err != nil {
			return err
		}
		f.freeCount = free
	}
	b, err := f.bc.Get(t, fsInfoSector)
	if err != nil {
		return err
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	encodeFSInfo(b.Data, uint32(f.freeCount), f.freeHint)
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return nil
}

// SetDataPath switches the data IO strategy (benchmark baselines only —
// see DataPath). Callers must Sync before switching away from a cached
// path; the clean cache contents are dropped here so neither side of the
// switch can serve — or leave behind — stale copies.
func (f *FS) SetDataPath(p DataPath) {
	f.mu.Lock()
	changed := f.dataPath != p
	f.dataPath = p
	f.mu.Unlock()
	if changed {
		f.bc.Invalidate()
	}
}

// DataPath reports the active data IO strategy.
func (f *FS) DataPath() DataPath {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dataPath
}

// RangeStats reports range transfers issued by the data path (ops, blocks).
func (f *FS) RangeStats() (ops, blocks int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rangeOps, f.rangeBlocks
}

// Cache exposes the buffer cache (all IO flows through it by default).
func (f *FS) Cache() *bcache.Cache { return f.bc }

// SetDcache attaches the kernel dentry cache handle for this mount. The
// kernel wires it right after mount, before the volume sees traffic.
func (f *FS) SetDcache(m *dcache.Mount) { f.dc = m }

// Dcache returns the mount's dentry-cache handle (nil if none attached).
func (f *FS) Dcache() *dcache.Mount { return f.dc }

// dcName normalizes a component for dentry-cache keys: FAT lookups are
// case-insensitive, so "DOOM1.WAD" and "doom1.wad" must share one entry.
func dcName(name string) string { return strings.ToLower(name) }

// dcInval drops the cached entry for name in dp and bumps the mount
// generation. Caller holds dp.lock; call BEFORE the dirent write that
// changes the name's meaning, so no lock-free walk can pass its
// generation recheck having used the superseded answer.
func (f *FS) dcInval(dp *pseudoInode, name string) {
	f.dc.Invalidate(int64(dp.firstCluster), dcName(name))
}

// dcFillPos records what a directory scan proved while dp.lock was held:
// name exists in dp as de, at ref.
func (f *FS) dcFillPos(dp *pseudoInode, name string, de *dirent83, ref direntRef) {
	f.dc.PutPositive(int64(dp.firstCluster), dcName(name), dcache.Entry{
		Ino:   int64(de.cluster),
		IsDir: de.attr&attrDir != 0,
		Size:  int64(de.size),
		RefA:  int64(ref.cluster),
		RefB:  int64(ref.index),
	})
}

// dcFillNeg records a proven absence. Caller holds dp.lock.
func (f *FS) dcFillNeg(dp *pseudoInode, name string) {
	f.dc.PutNegative(int64(dp.firstCluster), dcName(name))
}

// remountRO latches the volume read-only, keeping the first cause.
// Called when an ordered publish barrier fails or the device dies —
// after either, further mutation could only publish structure the disk
// never accepted.
func (f *FS) remountRO(err error) {
	if f.roFlag.CompareAndSwap(false, true) {
		f.roCause.Store(err)
	}
	f.degraded.Store(true)
	// A dead mount serves no cached names: drop every entry and refuse
	// further fills, so walks fall through to the (still-readable)
	// directory blocks and mutating paths see the latched state.
	f.dc.Kill()
}

// checkRW gates mutating entry points: nil on a healthy mount,
// fs.ErrReadOnly once the volume has latched read-only.
func (f *FS) checkRW() error {
	if f.roFlag.Load() {
		return fs.ErrReadOnly
	}
	return nil
}

// Health reports the mount's error state: degraded means at least one
// asynchronous writeback was abandoned (per-file fsync has the
// details), readOnly means a publish barrier failed and mutations are
// refused. cause is the error that latched read-only, nil otherwise.
func (f *FS) Health() (degraded, readOnly bool, cause error) {
	if e, ok := f.roCause.Load().(error); ok {
		cause = e
	}
	return f.degraded.Load(), f.roFlag.Load(), cause
}

// countRange accounts one multi-block transfer of n sectors.
func (f *FS) countRange(n int) {
	f.mu.Lock()
	f.rangeOps++
	f.rangeBlocks += int64(n)
	f.mu.Unlock()
}

// --- FAT access (through the buffer cache) ---
//
// A single fatGet/fatSet is atomic under its sector's buffer sleeplock.
// Entries belonging to a chain whose pseudo-inode lock the caller holds
// can be read and relinked with no further locking (nobody else mutates an
// owned chain); free↔claimed transitions go under fatLock.

// fatSector returns the FAT sector holding cluster c's entry.
func (f *FS) fatSector(c uint32) int {
	return f.fatStart + int(c)*fatEntrySize/SectorSize
}

// orderedFlush forces the named sectors durable NOW, under one request-
// queue plug. It is the ordered-writes discipline's only primitive: every
// directory-entry write that publishes new structure (a fresh cluster, a
// grown chain, a moved name) is preceded by an orderedFlush of the data
// and FAT sectors it depends on, so no crash can leave a dirent pointing
// at structure the device never saw. The reverse operations (unlink,
// truncate) flush the UNpublishing dirent write before freeing, for the
// same reason mirrored. See ARCHITECTURE.md's crash-consistency section
// for the site-by-site ordering argument.
// A failed barrier latches the mount read-only: the caller's dirent
// write will not happen, and allowing later mutations to race ahead of
// the unflushed structure would break the ordering discipline globally.
func (f *FS) orderedFlush(t *sched.Task, sectors ...int) error {
	if err := f.bc.FlushBlocks(t, sectors, true); err != nil {
		f.remountRO(err)
		return err
	}
	return nil
}

func (f *FS) fatGet(t *sched.Task, cluster uint32) (uint32, error) {
	off := int(cluster) * fatEntrySize
	sector := f.fatStart + off/SectorSize
	var val uint32
	b, err := f.bc.Get(t, sector)
	if err != nil {
		return 0, err
	}
	val = binary.LittleEndian.Uint32(b.Data[off%SectorSize:]) & 0x0FFFFFFF
	f.bc.Release(b)
	return val, nil
}

func (f *FS) fatSet(t *sched.Task, cluster, val uint32) error {
	off := int(cluster) * fatEntrySize
	sector := f.fatStart + off/SectorSize
	b, err := f.bc.Get(t, sector)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b.Data[off%SectorSize:], val&0x0FFFFFFF)
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return nil
}

// allocCluster finds a free FAT entry and links it as end-of-chain. The
// scan-and-claim runs under fatLock, starting at the FSInfo-style
// next-free hint; the zeroing write happens after the claim, outside the
// allocator lock, because the fresh cluster is private to the caller.
//
// Only directory clusters and partially-covered file clusters need zeroing
// (the scan depends on the 0 end-mark; unwritten file bytes must read as
// zeros). A caller passing zero=false promises the cluster is either
// fully overwritten by its write or unlinked again on failure (see
// file.Write's rollback) — skipping the zero write halves the device
// traffic of appends.
func (f *FS) allocCluster(t *sched.Task, zero bool) (uint32, error) {
	f.fatLock.Lock(t)
	c, err := f.allocClusterLocked(t)
	f.fatLock.Unlock()
	if err != nil {
		return 0, err
	}
	if zero {
		// Zeroing always goes through the cache, so every data path
		// observes the zeros in every mode.
		if err := f.writeClusterCached(t, c, make([]byte, ClusterSize)); err != nil {
			f.unclaimCluster(t, c)
			return 0, err
		}
	}
	return c, nil
}

// allocClusterLocked is the scan-and-claim; caller holds fatLock.
func (f *FS) allocClusterLocked(t *sched.Task) (uint32, error) {
	span := uint32(f.clusters)
	start := f.freeHint
	if start < rootCluster || start >= rootCluster+span {
		start = rootCluster
	}
	for i := uint32(0); i < span; i++ {
		c := rootCluster + (start-rootCluster+i)%span
		v, err := f.fatGet(t, c)
		if err != nil {
			return 0, err
		}
		if v == freeClust {
			if err := f.fatSet(t, c, endOfChain); err != nil {
				return 0, err
			}
			f.freeHint = c + 1
			if f.freeCount > 0 {
				f.freeCount--
			}
			return c, nil
		}
	}
	return 0, fs.ErrNoSpace
}

// unclaimCluster releases a just-claimed, never-linked cluster (alloc
// failure paths). Best-effort.
func (f *FS) unclaimCluster(t *sched.Task, c uint32) {
	f.fatLock.Lock(t)
	if f.fatSet(t, c, freeClust) == nil {
		if c < f.freeHint {
			f.freeHint = c
		}
		if f.freeCount >= 0 {
			f.freeCount++
		}
	}
	f.fatLock.Unlock()
}

// freeChain releases a cluster chain. The free transitions (and the hint
// update) run under fatLock so a concurrent allocator scan never claims a
// half-released entry.
func (f *FS) freeChain(t *sched.Task, c uint32) error {
	f.fatLock.Lock(t)
	defer f.fatLock.Unlock()
	for c >= rootCluster && c < endOfChain {
		next, err := f.fatGet(t, c)
		if err != nil {
			return err
		}
		if err := f.fatSet(t, c, freeClust); err != nil {
			return err
		}
		if c < f.freeHint {
			f.freeHint = c
		}
		if f.freeCount >= 0 {
			f.freeCount++
		}
		c = next
	}
	return nil
}

// FreeClusters counts free FAT entries — the FSInfo free-count, used by
// tests to assert that failed writes roll their allocations back.
func (f *FS) FreeClusters(t *sched.Task) (int, error) {
	f.fatLock.Lock(t)
	defer f.fatLock.Unlock()
	return f.freeClustersLocked(t)
}

// freeClustersLocked is the scan; caller holds fatLock.
func (f *FS) freeClustersLocked(t *sched.Task) (int, error) {
	n := 0
	for c := uint32(rootCluster); c < uint32(f.clusters+rootCluster); c++ {
		v, err := f.fatGet(t, c)
		if err != nil {
			return 0, err
		}
		if v == freeClust {
			n++
		}
	}
	return n, nil
}

// chain returns the cluster list of a chain starting at c. Callers hold
// the owning pseudo-inode's lock, which is what keeps the walk stable.
func (f *FS) chain(t *sched.Task, c uint32) ([]uint32, error) {
	var out []uint32
	for c >= rootCluster && c < endOfChain {
		out = append(out, c)
		next, err := f.fatGet(t, c)
		if err != nil {
			return nil, err
		}
		if next == c {
			return nil, fmt.Errorf("fat32: cluster %d links to itself", c)
		}
		c = next
	}
	return out, nil
}

func (f *FS) clusterSector(c uint32) int {
	return f.dataStart + int(c-rootCluster)*SectorsPerCluster
}

// devRead moves nsec sectors starting at sector into dst along the
// active data path — the one dispatch point every data read shares.
func (f *FS) devRead(t *sched.Task, sector, nsec int, dst []byte) error {
	switch f.DataPath() {
	case DataPathSingleBlock:
		for s := 0; s < nsec; s++ {
			b, err := f.bc.Get(t, sector+s)
			if err != nil {
				return err
			}
			copy(dst[s*SectorSize:], b.Data)
			f.bc.Release(b)
		}
		return nil
	case DataPathBypass:
		f.countRange(nsec)
		return f.dev.ReadBlocks(sector, nsec, dst)
	default:
		f.countRange(nsec)
		return f.bc.ReadRange(t, sector, nsec, dst)
	}
}

// devWrite is devRead's write-side twin. o tags the dirtied buffers with
// the writing file's error stream on the cached paths (nil for unowned
// writes); the bypass path is synchronous, so its errors are direct and
// the owner is moot.
func (f *FS) devWrite(t *sched.Task, sector, nsec int, src []byte, o *bcache.Owner) error {
	switch f.DataPath() {
	case DataPathSingleBlock:
		for s := 0; s < nsec; s++ {
			b, err := f.bc.Get(t, sector+s)
			if err != nil {
				return err
			}
			copy(b.Data, src[s*SectorSize:(s+1)*SectorSize])
			f.bc.MarkDirtyOwned(b, o)
			f.bc.Release(b)
		}
		return nil
	case DataPathBypass:
		f.countRange(nsec)
		return f.dev.WriteBlocks(sector, nsec, src)
	default:
		f.countRange(nsec)
		return f.bc.WriteRangeOwned(t, sector, nsec, src, o)
	}
}

// readClusterData reads one whole cluster along the active data path.
func (f *FS) readClusterData(t *sched.Task, c uint32, dst []byte) error {
	return f.devRead(t, f.clusterSector(c), SectorsPerCluster, dst)
}

// writeClusterData writes one whole cluster along the active data path,
// tagging the buffers with the owning file's error stream.
func (f *FS) writeClusterData(t *sched.Task, c uint32, src []byte, o *bcache.Owner) error {
	return f.devWrite(t, f.clusterSector(c), SectorsPerCluster, src, o)
}

// readClusterCached / writeClusterCached are the metadata variants:
// directory clusters (and cluster zeroing) always go through the buffer
// cache no matter the DataPath, so the benchmark baselines can never
// leave a stale cached directory behind. Write-through keeps the device
// current for the bypass path.
func (f *FS) readClusterCached(t *sched.Task, c uint32, dst []byte) error {
	return f.bc.ReadRange(t, f.clusterSector(c), SectorsPerCluster, dst)
}

func (f *FS) writeClusterCached(t *sched.Task, c uint32, src []byte) error {
	return f.bc.WriteRange(t, f.clusterSector(c), SectorsPerCluster, src)
}

// clusterRuns walks [off, off+size) across the chain and calls partial for
// unaligned edges and aligned for maximal contiguous full-cluster runs —
// the coalescing that turns a big sequential transfer into a handful of
// range commands (§5.2, Fig 8's throughput sweep).
func (f *FS) clusterRuns(clusters []uint32, off, size int,
	partial func(ci, co, n int) error, aligned func(ci, run int) error) (int, error) {
	done := 0
	for done < size {
		pos := off + done
		ci := pos / ClusterSize
		co := pos % ClusterSize
		if ci >= len(clusters) {
			return done, fmt.Errorf("fat32: access beyond chain")
		}
		if co != 0 || size-done < ClusterSize {
			n := ClusterSize - co
			if n > size-done {
				n = size - done
			}
			if err := partial(ci, co, n); err != nil {
				return done, err
			}
			done += n
			continue
		}
		run := 1
		for ci+run < len(clusters) &&
			clusters[ci+run] == clusters[ci]+uint32(run) &&
			done+(run+1)*ClusterSize <= size {
			run++
		}
		if err := aligned(ci, run); err != nil {
			return done, err
		}
		done += run * ClusterSize
	}
	return done, nil
}

// readRange reads [off, off+len(dst)) of a cluster chain, coalescing
// contiguous clusters into multi-block commands through the cache (or the
// baseline paths).
func (f *FS) readRange(t *sched.Task, clusters []uint32, off int, dst []byte) error {
	pos := 0 // write cursor into dst, advanced in lockstep with the walk
	_, err := f.clusterRuns(clusters, off, len(dst),
		func(ci, co, n int) error {
			buf := make([]byte, ClusterSize)
			if err := f.readClusterData(t, clusters[ci], buf); err != nil {
				return err
			}
			copy(dst[pos:pos+n], buf[co:])
			pos += n
			return nil
		},
		func(ci, run int) error {
			out := dst[pos : pos+run*ClusterSize]
			pos += run * ClusterSize
			return f.devRead(t, f.clusterSector(clusters[ci]), run*SectorsPerCluster, out)
		})
	return err
}

// writeRange writes src at [off, off+len(src)) of a cluster chain, which
// must already be long enough. Aligned full-cluster runs go out as single
// multi-block commands; unaligned edges read-modify-write their cluster.
// Dirtied buffers carry o, the owning file's error stream. Returns how
// many leading bytes landed (short-write reporting).
func (f *FS) writeRange(t *sched.Task, clusters []uint32, off int, src []byte, o *bcache.Owner) (int, error) {
	pos := 0
	return f.clusterRuns(clusters, off, len(src),
		func(ci, co, n int) error {
			buf := make([]byte, ClusterSize)
			if err := f.readClusterData(t, clusters[ci], buf); err != nil {
				return err
			}
			copy(buf[co:], src[pos:pos+n])
			pos += n
			return f.writeClusterData(t, clusters[ci], buf, o)
		},
		func(ci, run int) error {
			in := src[pos : pos+run*ClusterSize]
			pos += run * ClusterSize
			return f.devWrite(t, f.clusterSector(clusters[ci]), run*SectorsPerCluster, in, o)
		})
}
