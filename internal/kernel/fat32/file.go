package fat32

import (
	"encoding/binary"
	"errors"
	"sort"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/errseq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// file is the fs.FileOps of one open FAT32 file, backed by a shared
// pseudo-inode. It is pure per-FILE state: the offset, open flags,
// refcounts and the per-open error cursor live in the fs.OpenFile
// wrapping it.
type file struct {
	fs.BaseOps
	fsys *FS
	pi   *pseudoInode
	name string
}

// pin returns (creating if needed) a referenced pseudo-inode for the
// object whose chain starts at cluster. Callers pin while holding the
// parent directory's lock (or for the root, nothing), so a pin never races
// the unlink that would invalidate its dirent.
func (f *FS) pin(cluster uint32, isDir bool, size uint32, ref direntRef, parent uint32, name string) *pseudoInode {
	f.mu.Lock()
	defer f.mu.Unlock()
	if pi, ok := f.pseudo[cluster]; ok {
		// Deduplicating onto the live pseudo-inode deliberately ignores
		// the caller's size/ref/name: the live object is the truth (a
		// dentry-cache-sourced size could lag an in-flight write).
		pi.refs++
		return pi
	}
	wb := f.owners[cluster]
	if wb == nil {
		wb = &bcache.Owner{}
		f.owners[cluster] = wb
	}
	pi := &pseudoInode{
		firstCluster: cluster,
		size:         size,
		isDir:        isDir,
		refs:         1,
		dirCluster:   ref.cluster,
		dirIndex:     ref.index,
		parent:       parent,
		name:         name,
		wb:           wb,
	}
	pi.lock.SetRank(ksync.RankInode, int64(cluster))
	f.pseudo[cluster] = pi
	return pi
}

// unpin drops a reference. The identity check matters: a dead (poisoned)
// pseudo-inode was already removed from the map, and its first cluster may
// have been reused by a live successor that must not be evicted.
//
// The last unpin of an unlinked object performs the deferred reclaim: the
// dirent went durable at unlink time, so all that is left is freeing the
// chain and retiring the error stream (no new writer can be tagged with it
// once the pseudo-inode is gone). freeChain runs after FS.mu is dropped —
// it takes the allocator sleeplock, which must never nest inside the
// table mutex — and its error is returned so the closing descriptor hears
// about a reclaim that leaked clusters.
func (f *FS) unpin(t *sched.Task, pi *pseudoInode) error {
	f.mu.Lock()
	pi.refs--
	reclaim := false
	if pi.refs <= 0 {
		if cur, ok := f.pseudo[pi.firstCluster]; ok && cur == pi {
			delete(f.pseudo, pi.firstCluster)
		}
		if pi.unlinked && !pi.dead {
			pi.dead = true
			delete(f.owners, pi.firstCluster)
			reclaim = true
		}
	}
	f.mu.Unlock()
	if reclaim {
		// Durably retire the orphan record BEFORE freeing: a crash in
		// between leaves a leaked (fsck-repairable) chain, never a
		// record pointing at freed clusters. A clear failure skips the
		// free — the record survives, and the next mount's scan reclaims.
		if err := f.orphanClear(t, pi.firstCluster); err != nil {
			return err
		}
		return f.freeChain(t, pi.firstCluster)
	}
	return nil
}

// PseudoInodes reports how many pseudo-inodes are live (tests verify the
// bridge cleans up after itself).
func (f *FS) PseudoInodes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pseudo)
}

// patchDirentSize pushes pi.size into its directory entry, atomically
// under the entry's sector buffer lock, then refreshes the dentry
// cache's copy in place (FixSize touches only a positive entry whose
// identity still matches — no generation bump, because the name→cluster
// mapping is unchanged). Caller holds pi.lock, which serializes size
// publishes for this file. Caller must not call this for an unlinked
// file (its slot is gone and possibly reused).
func (f *FS) patchDirentSize(t *sched.Task, pi *pseudoInode) error {
	ref := direntRef{cluster: pi.dirCluster, index: pi.dirIndex}
	size := pi.size
	if err := f.patchDirent(t, ref, func(entry []byte) {
		binary.LittleEndian.PutUint32(entry[28:], size)
	}); err != nil {
		return err
	}
	f.dc.FixSize(int64(pi.parent), pi.name, int64(pi.firstCluster), int64(size))
	return nil
}

// Open implements fs.FileSystem.
func (f *FS) Open(t *sched.Task, path string, flags int) (fs.FileOps, error) {
	// A latched-read-only mount refuses opens that could mutate; plain
	// read opens stay available.
	if flags&(fs.OCreate|fs.OTrunc|fs.OWrOnly|fs.ORdWr) != 0 {
		if err := f.checkRW(); err != nil {
			return nil, err
		}
	}
	path = fs.Clean(path)
	if path == "/" {
		if flags&(fs.OWrOnly|fs.ORdWr) != 0 {
			return nil, fs.ErrIsDir
		}
		return &file{fsys: f, pi: f.pinRoot(), name: "/"}, nil
	}
	dp, name, err := f.walkParent(t, path)
	if err != nil {
		return nil, err
	}
	dp.lock.Lock(t)
	fail := func(err error) (fs.FileOps, error) {
		dp.lock.Unlock()
		f.unpin(t, dp)
		return nil, err
	}
	if dp.gone() {
		return fail(fs.ErrNotFound)
	}
	de, ref, err := f.lookupCached(t, dp, name)
	if err == fs.ErrNotFound && flags&fs.OCreate != 0 {
		de, ref, err = f.createInDir(t, dp, name, false)
	}
	if err != nil {
		return fail(err)
	}
	if de.attr&attrDir != 0 && flags&(fs.OWrOnly|fs.ORdWr) != 0 {
		return fail(fs.ErrIsDir)
	}
	pi := f.pin(de.cluster, de.attr&attrDir != 0, de.size, ref, dp.firstCluster, dcName(name))
	if flags&fs.OTrunc != 0 && !pi.isDir {
		pi.lock.LockNested(t)
		if pi.size > 0 {
			if err := f.truncatePI(t, pi); err != nil {
				pi.lock.Unlock()
				f.unpin(t, pi)
				return fail(err)
			}
		}
		pi.lock.Unlock()
	}
	dp.lock.Unlock()
	f.unpin(t, dp)
	return &file{fsys: f, pi: pi, name: name}, nil
}

// truncatePI frees all but the first cluster and zeroes the size. Caller
// holds pi.lock.
//
// Ordered writes, shrinking direction: the size=0 dirent patch goes
// durable first, then the first cluster's end-of-chain mark, and only
// then are the tail clusters freed. Every crash window leaves either the
// old intact file, a zero-size file with extra (leaked, repairable)
// clusters, or the final state — never a dirent whose size exceeds its
// chain, and never a chain running into freed clusters.
func (f *FS) truncatePI(t *sched.Task, pi *pseudoInode) error {
	next, err := f.fatGet(t, pi.firstCluster)
	if err != nil {
		return err
	}
	pi.size = 0
	if err := f.patchDirentSize(t, pi); err != nil {
		return err
	}
	if next >= endOfChain {
		return nil
	}
	sector, _ := f.direntLoc(direntRef{cluster: pi.dirCluster, index: pi.dirIndex})
	if err := f.orderedFlush(t, sector); err != nil {
		return err
	}
	if err := f.fatSet(t, pi.firstCluster, endOfChain); err != nil {
		return err
	}
	if err := f.orderedFlush(t, f.fatSector(pi.firstCluster)); err != nil {
		return err
	}
	return f.freeChain(t, next)
}

// createInDir adds a new file or directory entry named name to dp. Caller
// holds dp.lock, which serializes the lookup-miss → slot-claim sequence.
func (f *FS) createInDir(t *sched.Task, dp *pseudoInode, name string, dir bool) (*dirent83, direntRef, error) {
	n83, ok := to83(name)
	if !ok {
		return nil, direntRef{}, fs.ErrNameTooLong
	}
	c, err := f.allocCluster(t, true)
	if err != nil {
		return nil, direntRef{}, err
	}
	// Ordered writes: the zeroed cluster and its FAT end-of-chain mark
	// must be durable before the dirent that publishes them — a crash
	// right after the dirent landed must find a valid (empty) object, not
	// a free cluster or, for a directory, garbage entries.
	sectors := make([]int, 0, SectorsPerCluster+1)
	cs := f.clusterSector(c)
	for s := 0; s < SectorsPerCluster; s++ {
		sectors = append(sectors, cs+s)
	}
	sectors = append(sectors, f.fatSector(c))
	if err := f.orderedFlush(t, sectors...); err != nil {
		f.unclaimCluster(t, c)
		return nil, direntRef{}, err
	}
	de := &dirent83{name: n83, cluster: c, attr: attrArchive}
	if dir {
		de.attr = attrDir
	}
	// Kill the cached ENOENT (the lookup-miss that led here filled one)
	// BEFORE the dirent write makes the name real: a lock-free walk must
	// never pass its generation recheck holding the stale negative.
	f.dcInval(dp, name)
	ref, err := f.addDirent(t, dp.firstCluster, de)
	if err != nil {
		f.unclaimCluster(t, c)
		return nil, direntRef{}, err
	}
	f.dcFillPos(dp, name, de, ref)
	return de, ref, nil
}

// Mkdir implements fs.FileSystem.
func (f *FS) Mkdir(t *sched.Task, path string) error {
	if err := f.checkRW(); err != nil {
		return err
	}
	path = fs.Clean(path)
	if path == "/" {
		return fs.ErrExists
	}
	dp, name, err := f.walkParent(t, path)
	if err != nil {
		return err
	}
	dp.lock.Lock(t)
	defer func() {
		dp.lock.Unlock()
		f.unpin(t, dp)
	}()
	if dp.gone() {
		return fs.ErrNotFound
	}
	if _, _, err := f.lookupCached(t, dp, name); err == nil {
		return fs.ErrExists
	} else if err != fs.ErrNotFound {
		return err
	}
	_, _, err = f.createInDir(t, dp, name, true)
	return err
}

// Unlink implements fs.FileSystem.
func (f *FS) Unlink(t *sched.Task, path string) error {
	if err := f.checkRW(); err != nil {
		return err
	}
	path = fs.Clean(path)
	if path == "/" {
		return fs.ErrPerm
	}
	dp, name, err := f.walkParent(t, path)
	if err != nil {
		return err
	}
	dp.lock.Lock(t)
	fail := func(err error) error {
		dp.lock.Unlock()
		f.unpin(t, dp)
		return err
	}
	if dp.gone() {
		return fail(fs.ErrNotFound)
	}
	de, ref, err := f.lookupCached(t, dp, name)
	if err != nil {
		return fail(err)
	}
	pi := f.pin(de.cluster, de.attr&attrDir != 0, de.size, ref, dp.firstCluster, dcName(name))
	pi.lock.LockNested(t)
	failBoth := func(err error) error {
		pi.lock.Unlock()
		f.unpin(t, pi)
		return fail(err)
	}
	if pi.isDir {
		empty := true
		if err := f.scanDir(t, de.cluster, func(*dirent83, direntRef) bool {
			empty = false
			return false
		}); err != nil {
			return failBoth(err)
		}
		if !empty {
			return failBoth(fs.ErrNotEmpty)
		}
	}
	// Invalidate the name — and for a directory, every entry it parents,
	// since its first cluster can be recycled — BEFORE the dirent write,
	// so no lock-free walk survives its generation recheck holding the
	// stale positive.
	f.dcInval(dp, name)
	if pi.isDir {
		f.dc.InvalidateDir(int64(pi.firstCluster))
	}
	// Ordered writes: remove the dirent and force that removal durable
	// BEFORE freeing the chain. The reverse order has a crash window where
	// a durable dirent points at freed (possibly reallocated) clusters —
	// fatal corruption; this order's worst case is leaked clusters, which
	// fsck repair reclaims.
	if err := f.removeDirent(t, ref); err != nil {
		return failBoth(err)
	}
	sector, _ := f.direntLoc(ref)
	if err := f.orderedFlush(t, sector); err != nil {
		return failBoth(err)
	}
	f.dcFillNeg(dp, name)
	err = f.disownPI(t, pi)
	pi.lock.Unlock()
	if uerr := f.unpin(t, pi); err == nil {
		err = uerr
	}
	dp.lock.Unlock()
	f.unpin(t, dp)
	return err
}

// killPI poisons a pseudo-inode whose chain is gone, so surviving handles
// fail cleanly instead of reading reallocated clusters, and drops it — and
// its error stream — from the tables so the first cluster's next owner
// gets a fresh identity. Caller holds pi.lock.
func (f *FS) killPI(pi *pseudoInode) {
	pi.dead = true
	f.mu.Lock()
	if cur, ok := f.pseudo[pi.firstCluster]; ok && cur == pi {
		delete(f.pseudo, pi.firstCluster)
	}
	delete(f.owners, pi.firstCluster)
	f.mu.Unlock()
}

// disownPI finishes an unlink or rename-replace for an object whose dirent
// is already durably gone. Holding the only reference, it frees the chain
// and poisons the pseudo-inode inline; with other handles live it only
// marks the object unlinked — those descriptors keep working against the
// still-allocated chain, and the last unpin reclaims it (deferred reclaim,
// matching xv6fs). Caller holds pi.lock and a pin on pi.
func (f *FS) disownPI(t *sched.Task, pi *pseudoInode) error {
	f.mu.Lock()
	if pi.refs > 1 {
		pi.unlinked = true
		f.mu.Unlock()
		// Durably record the pending reclaim so it survives an unmount
		// (or crash) that happens before the last close — the caller's
		// dirent removal is already durable, so the record always names
		// an unreachable chain. See orphan.go.
		return f.orphanAdd(t, pi.firstCluster)
	}
	f.mu.Unlock()
	err := f.freeChain(t, pi.firstCluster)
	f.killPI(pi)
	return err
}

// gone reports whether the object has left the namespace — poisoned, or
// unlinked and awaiting last-close reclaim. Directory operations check it
// so nothing new is created or resolved under a removed directory; file
// data paths deliberately check only dead, keeping surviving descriptors
// usable. Caller holds pi.lock or FS.mu.
func (pi *pseudoInode) gone() bool { return pi.dead || pi.unlinked }

// Rename implements fs.Renamer: atomically move oldPath to newPath within
// the volume. An existing target is atomically REPLACED (POSIX rename):
// its directory entry — same name, same slot — is repointed at the moved
// file's chain in one sector-atomic patch, so newPath never stops
// resolving; the displaced chain is freed — immediately when nothing else
// references it, otherwise deferred to the last close so surviving
// handles keep working (see disownPI). A directory may only replace an empty
// directory; replacing across types fails with ErrIsDir/ErrNotDir.
//
// Rename is the one operation holding two directory locks at once, so
// cross-directory renames are serialized volume-wide by renameMu (taken
// EXCLUSIVE) and lock the pair ancestor-first (ascending first-cluster
// for unrelated directories). Ancestry comes from the cleaned paths —
// safe because only renames reshape the tree and at most one
// tree-reshaping rename runs at a time. A same-directory rename never
// consults ancestry and holds a single directory lock, parent-then-child
// like create/unlink — it takes renameMu SHARED, so hot same-directory
// renames on different directories proceed concurrently. Against
// create/unlink/walk, which lock parent-then-child down the tree,
// ancestor-first ordering closes every cycle. The moved and displaced
// pseudo-inodes are locked nested under the directories; holders of a
// single file lock never acquire a second, so the pair cannot cycle
// either.
func (f *FS) Rename(t *sched.Task, oldPath, newPath string) error {
	if err := f.checkRW(); err != nil {
		return err
	}
	oldPath, newPath = fs.Clean(oldPath), fs.Clean(newPath)
	if oldPath == "/" || newPath == "/" {
		return fs.ErrPerm
	}
	if oldPath == newPath {
		return nil
	}
	// Moving a directory into its own subtree would orphan it.
	if fs.IsPathAncestor(oldPath, newPath) {
		return fs.ErrPerm
	}
	oldDir, oldName := fs.SplitPath(oldPath)
	newDir, newName := fs.SplitPath(newPath)
	n83, ok := to83(newName)
	if !ok {
		return fs.ErrNameTooLong
	}

	if oldDir == newDir {
		f.renameMu.RLock(t)
		defer f.renameMu.RUnlock()
	} else {
		f.renameMu.Lock(t)
		defer f.renameMu.Unlock()
	}

	// Renaming onto an ANCESTOR of the source ("/x/y/z" → "/x/y"): the
	// target is a directory the source's own lock path runs through —
	// locking it as the replace victim would deadlock against the locks
	// this call (or a concurrent walk) already holds — and it necessarily
	// contains the source, so the POSIX answer needs no victim lock:
	// ErrNotEmpty for a directory source, ErrIsDir for a file. Stable
	// under renameMu: only renames reshape the tree.
	if fs.IsPathAncestor(newPath, oldPath) {
		st, err := f.Stat(t, oldPath)
		if err != nil {
			return err
		}
		if st.Type == fs.TypeDir {
			return fs.ErrNotEmpty
		}
		return fs.ErrIsDir
	}

	dp1, err := f.walkDir(t, oldDir)
	if err != nil {
		return err
	}
	dp2, err := f.walkDir(t, newDir)
	if err != nil {
		f.unpin(t, dp1)
		return err
	}
	unpinDirs := func() {
		f.unpin(t, dp1)
		f.unpin(t, dp2)
	}

	first, second := dp1, dp2
	switch {
	case dp1 == dp2:
		second = nil
	case fs.IsPathAncestor(newDir, oldDir): // newDir is the ancestor
		first, second = dp2, dp1
	case fs.IsPathAncestor(oldDir, newDir): // oldDir is the ancestor
	default: // unrelated: ascending first cluster
		if dp2.firstCluster < dp1.firstCluster {
			first, second = dp2, dp1
		}
	}
	first.lock.Lock(t)
	if second != nil {
		second.lock.LockNested(t)
	}
	fail := func(err error) error {
		if second != nil {
			second.lock.Unlock()
		}
		first.lock.Unlock()
		unpinDirs()
		return err
	}
	if dp1.gone() || dp2.gone() {
		return fail(fs.ErrNotFound)
	}

	de, ref, err := f.lookupCached(t, dp1, oldName)
	if err != nil {
		return fail(err)
	}
	tde, tref, terr := f.lookupCached(t, dp2, newName)
	if terr != nil && terr != fs.ErrNotFound {
		return fail(terr)
	}
	if terr == nil && tde.cluster == de.cluster {
		// Both names already point at the same chain: POSIX no-op.
		return fail(nil)
	}
	if terr == nil && (tde.cluster == dp1.firstCluster || tde.cluster == dp2.firstCluster) {
		// Defensive: the ancestor-target check before the locks were
		// taken should make this unreachable; refuse rather than deadlock
		// on a lock this call already holds.
		return fail(fs.ErrNotEmpty)
	}

	// Both names are about to change meaning: drop their cached entries
	// BEFORE any dirent write, so no lock-free walk survives its
	// generation recheck holding either stale answer.
	f.dcInval(dp1, oldName)
	f.dcInval(dp2, newName)

	// Lock the moved object's pseudo-inode across the move so a concurrent
	// size patch through an open handle can neither race the dirent copy
	// nor land on the vacated slot.
	pi := f.pin(de.cluster, de.attr&attrDir != 0, de.size, ref, dp1.firstCluster, dcName(oldName))
	pi.lock.LockNested(t)
	failPI := func(err error) error {
		pi.lock.Unlock()
		f.unpin(t, pi)
		return fail(err)
	}
	if terr == nil {
		// Replace: validate typing, then repoint the target's entry — one
		// sector-atomic patch of cluster/size/attr, the name is already
		// newName — free the displaced chain and poison its pseudo-inode.
		vpi := f.pin(tde.cluster, tde.attr&attrDir != 0, tde.size, tref, dp2.firstCluster, dcName(newName))
		vpi.lock.LockNested(t)
		failBoth := func(err error) error {
			vpi.lock.Unlock()
			f.unpin(t, vpi)
			return failPI(err)
		}
		if vpi.isDir {
			if !pi.isDir {
				return failBoth(fs.ErrIsDir)
			}
			empty := true
			if err := f.scanDir(t, tde.cluster, func(*dirent83, direntRef) bool {
				empty = false
				return false
			}); err != nil {
				return failBoth(err)
			}
			if !empty {
				return failBoth(fs.ErrNotEmpty)
			}
		} else if pi.isDir {
			return failBoth(fs.ErrNotDir)
		}
		if vpi.isDir {
			// The displaced directory's first cluster can be recycled:
			// drop every cached entry it parents, stale positives and
			// stale negatives alike.
			f.dc.InvalidateDir(int64(vpi.firstCluster))
		}
		nde := *de
		nde.name = n83
		nde.size = pi.size
		if err := f.patchDirent(t, tref, func(entry []byte) {
			nde.encode(entry)
		}); err != nil {
			return failBoth(err)
		}
		// Ordered writes: the repointed target entry goes durable before the
		// source entry is removed and before the displaced chain is freed.
		// A crash then leaves either the old state, or the moved file under
		// BOTH names (a repairable duplicate reference) — never a window
		// where newPath stops resolving or points at freed clusters.
		tsector, _ := f.direntLoc(tref)
		if err := f.orderedFlush(t, tsector); err != nil {
			_ = f.patchDirent(t, tref, func(entry []byte) {
				tde.encode(entry)
			})
			return failBoth(err)
		}
		if err := f.removeDirent(t, ref); err != nil {
			// Roll the repoint back rather than leave the file under two
			// names; best-effort, the original error wins.
			_ = f.patchDirent(t, tref, func(entry []byte) {
				tde.encode(entry)
			})
			return failBoth(err)
		}
		// Only now is the displaced chain unreachable; free it — inline
		// when this rename holds the victim's only reference, deferred to
		// last close when open descriptors survive the replace. The
		// rename itself is committed at this point — a FAT write failure
		// here leaks the displaced clusters (fsck territory), so it is
		// still reported to the caller, as Unlink reports its own
		// free-chain failures.
		freeErr := f.disownPI(t, vpi)
		pi.dirCluster, pi.dirIndex = tref.cluster, tref.index
		pi.parent, pi.name = dp2.firstCluster, dcName(newName)
		// The move is committed: record what the directories now prove.
		f.dcFillPos(dp2, newName, &nde, tref)
		f.dcFillNeg(dp1, oldName)
		vpi.lock.Unlock()
		if uerr := f.unpin(t, vpi); freeErr == nil {
			freeErr = uerr
		}
		if freeErr != nil {
			pi.lock.Unlock()
			f.unpin(t, pi)
			return fail(freeErr)
		}
	} else {
		nde := *de
		nde.name = n83
		nde.size = pi.size
		newRef, err := f.addDirent(t, dp2.firstCluster, &nde)
		if err != nil {
			return failPI(err)
		}
		// Ordered writes: the new entry goes durable before the old one is
		// removed, so no crash window loses the file. The tolerated artifact
		// is the inverse — both entries durable, one chain — which fsck
		// repair resolves by dropping the duplicate reference.
		nsector, _ := f.direntLoc(newRef)
		if err := f.orderedFlush(t, nsector); err != nil {
			_ = f.removeDirent(t, newRef)
			return failPI(err)
		}
		if err := f.removeDirent(t, ref); err != nil {
			// Roll the new entry back rather than leave the file under two
			// names; best-effort, the original error wins.
			_ = f.removeDirent(t, newRef)
			return failPI(err)
		}
		pi.dirCluster, pi.dirIndex = newRef.cluster, newRef.index
		pi.parent, pi.name = dp2.firstCluster, dcName(newName)
		f.dcFillPos(dp2, newName, &nde, newRef)
		f.dcFillNeg(dp1, oldName)
	}
	pi.lock.Unlock()
	f.unpin(t, pi)
	if second != nil {
		second.lock.Unlock()
	}
	first.lock.Unlock()
	unpinDirs()
	return nil
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(t *sched.Task, path string) (fs.Stat, error) {
	path = fs.Clean(path)
	if path == "/" {
		return fs.Stat{Name: "/", Type: fs.TypeDir, Inode: rootCluster}, nil
	}
	dp, name, err := f.walkParent(t, path)
	if err != nil {
		return fs.Stat{}, err
	}
	dp.lock.Lock(t)
	defer func() {
		dp.lock.Unlock()
		f.unpin(t, dp)
	}()
	if dp.gone() {
		return fs.Stat{}, fs.ErrNotFound
	}
	de, _, err := f.lookupCached(t, dp, name)
	if err != nil {
		return fs.Stat{}, err
	}
	typ := fs.TypeFile
	if de.attr&attrDir != 0 {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: name, Type: typ, Size: int64(de.size), Inode: uint64(de.cluster)}, nil
}

// Sync is the volume's durability barrier. Metadata lands in the cache
// under per-object locks, so Sync first drains in-flight operations by
// taking each live pseudo-inode lock once — one at a time, never two held
// together, so it cannot deadlock against parent→child holders — then
// quiesces the FAT allocator while it persists the FSInfo sector (free
// count + next-free hint) and runs the cache's Flush barrier: every dirty
// buffer submitted and its completion awaited, with asynchronous
// writeback errors from the daemon reported to this caller.
func (f *FS) Sync(t *sched.Task) error {
	f.mu.Lock()
	live := make([]*pseudoInode, 0, len(f.pseudo))
	for _, pi := range f.pseudo {
		pi.refs++
		live = append(live, pi)
	}
	f.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].firstCluster < live[j].firstCluster })
	for _, pi := range live {
		pi.lock.Lock(t)
		pi.lock.Unlock()
		f.unpin(t, pi)
	}
	f.fatLock.Lock(t)
	err := f.writeFSInfoLocked(t)
	if ferr := f.bc.Flush(t); err == nil {
		err = ferr
	}
	f.fatLock.Unlock()
	if err != nil && (errors.Is(err, fs.ErrDeviceDead) || errors.Is(err, fs.ErrBadSector)) {
		// A fatal Sync failure is durability loss for cached metadata — on a
		// journal-less volume that is exactly what errors=remount-ro guards.
		// Transient writeback errors stay reportable-but-recoverable: the
		// dirty buffer survives and the next barrier may land it.
		f.remountRO(err)
	}
	return err
}

// --- fs.FileOps implementation ---

// Caps implements fs.FileOps: directories list and sync, files are
// positional and sync.
func (fl *file) Caps() fs.Caps {
	if fl.pi.isDir {
		return fs.CapDir | fs.CapSync
	}
	return fs.CapSeek | fs.CapSync
}

// WbStream implements fs.FileOps: the pseudo-inode's errseq stream, which
// the OpenFile samples for its per-open error cursor.
func (fl *file) WbStream() *errseq.Stream { return &fl.pi.wb.Stream }

// Pread implements fs.FileOps: read at an absolute offset under the
// pseudo-inode lock. No open-file state is touched.
func (fl *file) Pread(t *sched.Task, p []byte, off int64) (int, error) {
	pi := fl.pi
	pi.lock.Lock(t)
	defer pi.lock.Unlock()
	if pi.isDir {
		return 0, fs.ErrIsDir
	}
	if pi.dead {
		return 0, fs.ErrNotFound
	}
	size := int64(pi.size)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	clusters, err := fl.fsys.chain(t, pi.firstCluster)
	if err != nil {
		return 0, err
	}
	if err := fl.fsys.readRange(t, clusters, int(off), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Pwrite implements fs.FileOps: write at an absolute offset — or, for
// fs.OffAppend, at EOF resolved under the same pseudo-inode lock as the
// write itself, making O_APPEND atomic across concurrent appenders.
func (fl *file) Pwrite(t *sched.Task, p []byte, off int64) (int, int64, error) {
	if err := fl.fsys.checkRW(); err != nil {
		return 0, off, err
	}
	pi := fl.pi
	pi.lock.Lock(t)
	defer pi.lock.Unlock()
	if pi.isDir {
		return 0, off, fs.ErrIsDir
	}
	if pi.dead {
		return 0, off, fs.ErrNotFound
	}
	if off == fs.OffAppend {
		off = int64(pi.size)
	}
	if off < 0 {
		return 0, off, fs.ErrBadSeek
	}

	end := off + int64(len(p))
	clusters, err := fl.fsys.chain(t, pi.firstCluster)
	if err != nil {
		return 0, off, err
	}
	origLen := len(clusters)
	// rollback unlinks and frees clusters appended by this write, so a
	// failed write leaves the chain exactly as it found it — in
	// particular, no unzeroed cluster stays reachable (see allocCluster:
	// fully-covered clusters skip zeroing on the promise the data write
	// lands or the cluster is unlinked). Best-effort: the write's own
	// error is what the caller sees.
	rollback := func() {
		if len(clusters) == origLen {
			return
		}
		fl.fsys.fatSet(t, clusters[origLen-1], endOfChain)
		fl.fsys.freeChain(t, clusters[origLen])
	}
	// Grow the chain to cover end. A new cluster fully covered by this
	// write is about to be overwritten whole — skip its zeroing write;
	// partially covered ones (tail, seek-past-EOF gaps) still get zeroed
	// so unwritten bytes read back as zeros.
	for int64(len(clusters))*ClusterSize < end {
		span0 := int64(len(clusters)) * ClusterSize
		covered := off <= span0 && end >= span0+ClusterSize
		nc, err := fl.fsys.allocCluster(t, !covered)
		if err != nil {
			rollback()
			return 0, off, err
		}
		if err := fl.fsys.fatSet(t, clusters[len(clusters)-1], nc); err != nil {
			fl.fsys.unclaimCluster(t, nc)
			rollback()
			return 0, off, err
		}
		clusters = append(clusters, nc)
	}
	// Range write: contiguous full clusters coalesce into single
	// multi-block commands, unaligned edges read-modify-write. On error
	// the appended clusters are unlinked and the reported short-write
	// count is clamped to the old file size: bytes that landed in
	// rolled-back clusters are not durable, while in-place overwrites
	// below the old size are.
	oldSize := int64(pi.size)
	done, err := fl.fsys.writeRange(t, clusters, int(off), p, pi.wb)
	if err != nil {
		rollback()
		durable := oldSize - off
		if durable < 0 {
			durable = 0
		}
		if int64(done) > durable {
			done = int(durable)
		}
		return done, off + int64(done), err
	}
	if end > int64(pi.size) {
		// Ordered writes, extending direction: before the dirent's size
		// patch can publish the new length, the FAT links that make the
		// appended clusters part of the chain must be durable — a crash
		// with the size out but the links not leaves a dirent whose size
		// exceeds its chain, which strict fsck flags as corruption. Only
		// the FAT sectors are forced, not the cached data: FAT32 promises
		// metadata consistency across a crash, while data durability stays
		// an fsync matter (unfsynced appends may read back stale or zero
		// after a crash — the classic FAT contract). In-place overwrites
		// (no chain growth) publish nothing new and skip the flush. An
		// unlinked file has no dirent left to publish to: its size grows
		// only in memory, and the FAT links need no barrier — a crash
		// leaves the whole chain as a repairable leak either way.
		if len(clusters) > origLen && !pi.unlinked {
			fatSectors := make([]int, 0, len(clusters)-origLen+1)
			last := -1
			for _, c := range clusters[origLen-1:] {
				s := fl.fsys.fatSector(c)
				if s != last {
					fatSectors = append(fatSectors, s)
					last = s
				}
			}
			if err := fl.fsys.orderedFlush(t, fatSectors...); err != nil {
				rollback()
				return done, off + int64(done), err
			}
		}
		pi.size = uint32(end)
		// No size patch for an unlinked file: its dirent slot is gone and
		// may already hold an unrelated entry.
		if !pi.unlinked {
			if err := fl.fsys.patchDirentSize(t, pi); err != nil {
				return done, off + int64(done), err
			}
		}
	}
	return done, off + int64(done), nil
}

// Sync implements fs.FileOps — the flush half of fsync. It writes back
// this file's dirty data buffers (found through the pseudo-inode's
// per-owner dirty list) plus every metadata sector the file's durability
// depends on: the directory sector holding its entry (the size patch
// lives there) and the FAT sectors covering its cluster chain — without
// the chain links, data appended past the old tail would be durable but
// unreachable. Error observation happens in the caller: the fs.OpenFile
// observes its own per-open cursor against the pseudo-inode's stream, so
// each descriptor hears a failure exactly once.
func (fl *file) Sync(t *sched.Task) error {
	f := fl.fsys
	pi := fl.pi
	pi.lock.Lock(t)
	defer pi.lock.Unlock()
	if pi.dead {
		return fs.ErrNotFound
	}
	clusters, err := f.chain(t, pi.firstCluster)
	if err != nil {
		return err
	}
	var extra []int
	last := -1
	for _, c := range clusters {
		// The chain is in allocation order, not sector order, so dedupe
		// against everything collected so far; FlushOwner sorts.
		s := f.fatStart + int(c)*fatEntrySize/SectorSize
		if s == last {
			continue
		}
		last = s
		dup := false
		for _, have := range extra {
			if have == s {
				dup = true
				break
			}
		}
		if !dup {
			extra = append(extra, s)
		}
	}
	// Ordered writes: data and FAT links first, the dirent sector (where
	// the size patch lives) second — two barriers, so a crash between them
	// leaves the old size over a complete chain, never a published size
	// the chain or data doesn't back.
	if err := f.bc.FlushOwner(t, pi.wb, extra...); err != nil {
		return err
	}
	// An unlinked file's dirent slot is gone (and possibly reused): there
	// is no size patch to force, so fsync through a surviving descriptor
	// stops after data + FAT.
	if !pi.isDir && !pi.unlinked && pi.dirCluster >= rootCluster {
		sector, _ := f.direntLoc(direntRef{cluster: pi.dirCluster, index: pi.dirIndex})
		return f.orderedFlush(t, sector)
	}
	return nil
}

// Close implements fs.FileOps: drop the pseudo-inode reference. The
// OpenFile calls it exactly once, after the last descriptor closed and
// the last in-flight operation drained. Closing the last handle of an
// unlinked file is the deferred-reclaim point: unpin frees the chain, and
// a reclaim failure (leaked clusters) surfaces here.
func (fl *file) Close(t *sched.Task) error {
	return fl.fsys.unpin(t, fl.pi)
}

// Stat implements fs.FileOps.
func (fl *file) Stat(t *sched.Task) (fs.Stat, error) {
	pi := fl.pi
	pi.lock.Lock(t)
	defer pi.lock.Unlock()
	typ := fs.TypeFile
	if pi.isDir {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: fl.name, Type: typ, Size: int64(pi.size), Inode: uint64(pi.firstCluster)}, nil
}

// ReadDir implements fs.FileOps.
func (fl *file) ReadDir(t *sched.Task) ([]fs.DirEntry, error) {
	pi := fl.pi
	pi.lock.Lock(t)
	defer pi.lock.Unlock()
	if !pi.isDir {
		return nil, fs.ErrNotDir
	}
	if pi.dead {
		return nil, fs.ErrNotFound
	}
	var out []fs.DirEntry
	err := fl.fsys.scanDir(t, pi.firstCluster, func(de *dirent83, _ direntRef) bool {
		typ := fs.TypeFile
		if de.attr&attrDir != 0 {
			typ = fs.TypeDir
		}
		out = append(out, fs.DirEntry{Name: from83(de.name), Type: typ, Size: int64(de.size)})
		return true
	})
	return out, err
}

var (
	_ fs.FileOps = (*file)(nil)
	_ fs.Renamer = (*FS)(nil)
)
