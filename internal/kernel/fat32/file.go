package fat32

import (
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// file is one open FAT32 file, backed by a shared pseudo-inode.
type file struct {
	fsys *FS
	pi   *pseudoInode
	name string

	mu    sync.Mutex
	off   int64
	flags int
}

// getPseudo returns (creating if needed) the pseudo-inode for a dirent.
// Caller holds f.lock.
func (f *FS) getPseudo(de *dirent83, ref direntRef) *pseudoInode {
	f.mu.Lock()
	defer f.mu.Unlock()
	if pi, ok := f.pseudo[de.cluster]; ok {
		pi.refs++
		return pi
	}
	pi := &pseudoInode{
		firstCluster: de.cluster,
		size:         de.size,
		isDir:        de.attr&attrDir != 0,
		refs:         1,
		dirCluster:   ref.cluster,
		dirIndex:     ref.index,
	}
	f.pseudo[de.cluster] = pi
	return pi
}

func (f *FS) putPseudo(pi *pseudoInode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pi.refs--
	if pi.refs <= 0 {
		delete(f.pseudo, pi.firstCluster)
	}
}

// PseudoInodes reports how many pseudo-inodes are live (tests verify the
// bridge cleans up after itself).
func (f *FS) PseudoInodes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pseudo)
}

// Open implements fs.FileSystem.
func (f *FS) Open(t *sched.Task, path string, flags int) (fs.File, error) {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	path = fs.Clean(path)
	de, ref, err := f.walk(t, path)
	if err == fs.ErrNotFound && flags&fs.OCreate != 0 {
		de, ref, err = f.createLocked(t, path, false)
	}
	if err != nil {
		return nil, err
	}
	if de.attr&attrDir != 0 && flags&(fs.OWrOnly|fs.ORdWr) != 0 {
		return nil, fs.ErrIsDir
	}
	pi := f.getPseudo(de, ref)
	if flags&fs.OTrunc != 0 && !pi.isDir && pi.size > 0 {
		// Free all but the first cluster, reset size.
		next, err := f.fatGet(t, pi.firstCluster)
		if err != nil {
			return nil, err
		}
		if next < endOfChain {
			if err := f.freeChain(t, next); err != nil {
				return nil, err
			}
			if err := f.fatSet(t, pi.firstCluster, endOfChain); err != nil {
				return nil, err
			}
		}
		pi.size = 0
		de.size = 0
		if err := f.writeDirent(t, ref, de); err != nil {
			return nil, err
		}
	}
	_, name := fs.SplitPath(path)
	return &file{fsys: f, pi: pi, name: name, flags: flags}, nil
}

// createLocked adds a new file or directory; caller holds f.lock.
func (f *FS) createLocked(t *sched.Task, path string, dir bool) (*dirent83, direntRef, error) {
	parent, name, err := f.parentCluster(t, path)
	if err != nil {
		return nil, direntRef{}, err
	}
	if _, _, err := f.lookup(t, parent, name); err == nil {
		return nil, direntRef{}, fs.ErrExists
	} else if err != fs.ErrNotFound {
		return nil, direntRef{}, err
	}
	n83, ok := to83(name)
	if !ok {
		return nil, direntRef{}, fs.ErrNameTooLong
	}
	c, err := f.allocCluster(t, true)
	if err != nil {
		return nil, direntRef{}, err
	}
	de := &dirent83{name: n83, cluster: c, attr: attrArchive}
	if dir {
		de.attr = attrDir
	}
	if err := f.addDirent(t, parent, de); err != nil {
		return nil, direntRef{}, err
	}
	_, ref, err := f.lookup(t, parent, name)
	if err != nil {
		return nil, direntRef{}, err
	}
	return de, ref, nil
}

// Mkdir implements fs.FileSystem.
func (f *FS) Mkdir(t *sched.Task, path string) error {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	_, _, err := f.createLocked(t, path, true)
	return err
}

// Unlink implements fs.FileSystem.
func (f *FS) Unlink(t *sched.Task, path string) error {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	de, ref, err := f.walk(t, path)
	if err != nil {
		return err
	}
	if de.attr&attrDir != 0 {
		empty := true
		if err := f.scanDir(t, de.cluster, func(*dirent83, direntRef) bool {
			empty = false
			return false
		}); err != nil {
			return err
		}
		if !empty {
			return fs.ErrNotEmpty
		}
	}
	if err := f.freeChain(t, de.cluster); err != nil {
		return err
	}
	return f.removeDirent(t, ref)
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(t *sched.Task, path string) (fs.Stat, error) {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	de, _, err := f.walk(t, path)
	if err != nil {
		return fs.Stat{}, err
	}
	_, name := fs.SplitPath(path)
	typ := fs.TypeFile
	if de.attr&attrDir != 0 {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: name, Type: typ, Size: int64(de.size), Inode: uint64(de.cluster)}, nil
}

// Sync flushes dirty cache state, batched. It takes the volume lock like
// every other operation: the cache's range paths rely on the filesystem
// serializing its IO, so Flush must not run concurrently with a Write.
func (f *FS) Sync(t *sched.Task) error {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	return f.bc.Flush(t)
}

// --- fs.File implementation ---

func (fl *file) Read(t *sched.Task, p []byte) (int, error) {
	fl.fsys.lock.Lock(t)
	defer fl.fsys.lock.Unlock()
	if fl.pi.isDir {
		return 0, fs.ErrIsDir
	}
	fl.mu.Lock()
	off := fl.off
	fl.mu.Unlock()
	size := int64(fl.pi.size)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	clusters, err := fl.fsys.chain(t, fl.pi.firstCluster)
	if err != nil {
		return 0, err
	}
	if err := fl.fsys.readRange(t, clusters, int(off), p); err != nil {
		return 0, err
	}
	fl.mu.Lock()
	fl.off += int64(len(p))
	fl.mu.Unlock()
	return len(p), nil
}

func (fl *file) Write(t *sched.Task, p []byte) (int, error) {
	if fl.flags&(fs.OWrOnly|fs.ORdWr) == 0 {
		return 0, fs.ErrPerm
	}
	fl.fsys.lock.Lock(t)
	defer fl.fsys.lock.Unlock()
	if fl.pi.isDir {
		return 0, fs.ErrIsDir
	}
	fl.mu.Lock()
	off := fl.off
	if fl.flags&fs.OAppend != 0 {
		off = int64(fl.pi.size)
	}
	fl.mu.Unlock()

	end := off + int64(len(p))
	clusters, err := fl.fsys.chain(t, fl.pi.firstCluster)
	if err != nil {
		return 0, err
	}
	origLen := len(clusters)
	// rollback unlinks and frees clusters appended by this write, so a
	// failed write leaves the chain exactly as it found it — in
	// particular, no unzeroed cluster stays reachable (see allocCluster:
	// fully-covered clusters skip zeroing on the promise the data write
	// lands or the cluster is unlinked). Best-effort: the write's own
	// error is what the caller sees.
	rollback := func() {
		if len(clusters) == origLen {
			return
		}
		fl.fsys.fatSet(t, clusters[origLen-1], endOfChain)
		fl.fsys.freeChain(t, clusters[origLen])
	}
	// Grow the chain to cover end. A new cluster fully covered by this
	// write is about to be overwritten whole — skip its zeroing write;
	// partially covered ones (tail, seek-past-EOF gaps) still get zeroed
	// so unwritten bytes read back as zeros.
	for int64(len(clusters))*ClusterSize < end {
		span0 := int64(len(clusters)) * ClusterSize
		covered := off <= span0 && end >= span0+ClusterSize
		nc, err := fl.fsys.allocCluster(t, !covered)
		if err != nil {
			rollback()
			return 0, err
		}
		if err := fl.fsys.fatSet(t, clusters[len(clusters)-1], nc); err != nil {
			fl.fsys.fatSet(t, nc, freeClust)
			rollback()
			return 0, err
		}
		clusters = append(clusters, nc)
	}
	// Range write: contiguous full clusters coalesce into single
	// multi-block commands, unaligned edges read-modify-write. On error
	// the appended clusters are unlinked and the reported short-write
	// count is clamped to the old file size: bytes that landed in
	// rolled-back clusters are not durable, while in-place overwrites
	// below the old size are.
	oldSize := int64(fl.pi.size)
	done, err := fl.fsys.writeRange(t, clusters, int(off), p)
	if err != nil {
		rollback()
		durable := oldSize - off
		if durable < 0 {
			durable = 0
		}
		if int64(done) > durable {
			done = int(durable)
		}
		return done, err
	}
	fl.mu.Lock()
	fl.off = off + int64(done)
	fl.mu.Unlock()
	if end > int64(fl.pi.size) {
		fl.pi.size = uint32(end)
		// Update the directory entry's size field.
		ref := direntRef{cluster: fl.pi.dirCluster, index: fl.pi.dirIndex}
		var de dirent83
		dbuf := make([]byte, ClusterSize)
		if err := fl.fsys.readClusterCached(t, ref.cluster, dbuf); err != nil {
			return done, err
		}
		de.decode(dbuf[ref.index*direntSize:])
		de.size = fl.pi.size
		// Patch the entry into the cluster already in hand — writeDirent
		// would re-read the same cluster for nothing.
		de.encode(dbuf[ref.index*direntSize:])
		if err := fl.fsys.writeClusterCached(t, ref.cluster, dbuf); err != nil {
			return done, err
		}
	}
	return done, nil
}

func (fl *file) Close() error {
	fl.fsys.putPseudo(fl.pi)
	return nil
}

func (fl *file) Stat() (fs.Stat, error) {
	typ := fs.TypeFile
	if fl.pi.isDir {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: fl.name, Type: typ, Size: int64(fl.pi.size), Inode: uint64(fl.pi.firstCluster)}, nil
}

// Lseek implements fs.Seeker.
func (fl *file) Lseek(offset int64, whence int) (int64, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	var base int64
	switch whence {
	case fs.SeekSet:
		base = 0
	case fs.SeekCur:
		base = fl.off
	case fs.SeekEnd:
		base = int64(fl.pi.size)
	default:
		return 0, fs.ErrBadSeek
	}
	n := base + offset
	if n < 0 {
		return 0, fs.ErrBadSeek
	}
	fl.off = n
	return n, nil
}

// ReadDir implements fs.DirReader.
func (fl *file) ReadDir() ([]fs.DirEntry, error) {
	fl.fsys.lock.Lock(nil)
	defer fl.fsys.lock.Unlock()
	if !fl.pi.isDir {
		return nil, fs.ErrNotDir
	}
	var out []fs.DirEntry
	err := fl.fsys.scanDir(nil, fl.pi.firstCluster, func(de *dirent83, _ direntRef) bool {
		typ := fs.TypeFile
		if de.attr&attrDir != 0 {
			typ = fs.TypeDir
		}
		out = append(out, fs.DirEntry{Name: from83(de.name), Type: typ, Size: int64(de.size)})
		return true
	})
	return out, err
}

var (
	_ fs.File      = (*file)(nil)
	_ fs.Seeker    = (*file)(nil)
	_ fs.DirReader = (*file)(nil)
)
