package fat32

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
)

// withRankCheck arms the ksync lock-order assertion for one test.
func withRankCheck(t *testing.T) {
	t.Helper()
	ksync.SetRankCheck(true)
	t.Cleanup(func() { ksync.SetRankCheck(false) })
}

// runWithDeadline fails the test if fn does not finish in time — the
// deadlock detector for the concurrency suite.
func runWithDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock suspected: no progress after %v\n%s", d, buf[:n])
	}
}

// TestParallelDisjointFiles drives 8 tasks against disjoint files on ONE
// FAT32 mount — create/write/read/append/unlink mixes — and verifies final
// contents. With per-file pseudo-inode locks the tasks serialize only on
// the narrow FAT allocator lock, never on each other's data IO.
func TestParallelDisjointFiles(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 16384) // 8 MB card
	const workers = 8
	const rounds = 12

	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				main := fmt.Sprintf("/w%d.dat", w)
				dir := fmt.Sprintf("/dir%d", w)
				if err := f.Mkdir(nil, dir); err != nil {
					t.Errorf("w%d mkdir: %v", w, err)
					return
				}
				payload := bytes.Repeat([]byte{byte('A' + w)}, 24<<10) // 6 clusters
				for r := 0; r < rounds; r++ {
					fl, err := openOF(f, main, fs.OCreate|fs.ORdWr|fs.OTrunc)
					if err != nil {
						t.Errorf("w%d open: %v", w, err)
						return
					}
					if _, err := fl.Write(nil, payload); err != nil {
						t.Errorf("w%d write: %v", w, err)
						return
					}
					fl.Seek(nil, 0, fs.SeekSet)
					got := make([]byte, len(payload))
					read := 0
					for read < len(got) {
						n, err := fl.Read(nil, got[read:])
						if err != nil || n == 0 {
							t.Errorf("w%d read: %d, %v", w, n, err)
							return
						}
						read += n
					}
					if !bytes.Equal(got, payload) {
						t.Errorf("w%d round %d: read back wrong bytes", w, r)
						return
					}
					fl.Close(nil)

					sp := fmt.Sprintf("%s/s%d.tmp", dir, r%3)
					sf, err := openOF(f, sp, fs.OCreate|fs.OWrOnly)
					if err != nil {
						t.Errorf("w%d scratch: %v", w, err)
						return
					}
					sf.Write(nil, payload[:512])
					sf.Close(nil)
					if err := f.Unlink(nil, sp); err != nil {
						t.Errorf("w%d scratch unlink: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	for w := 0; w < workers; w++ {
		st, err := f.Stat(nil, fmt.Sprintf("/w%d.dat", w))
		if err != nil || st.Size != 24<<10 {
			t.Fatalf("final stat w%d = %+v, %v", w, st, err)
		}
		fl, _ := openOF(f, fmt.Sprintf("/w%d.dat", w), fs.ORdOnly)
		got := make([]byte, 24<<10)
		read := 0
		for read < len(got) {
			n, err := fl.Read(nil, got[read:])
			if err != nil || n == 0 {
				t.Fatalf("final read w%d: %v", w, err)
			}
			read += n
		}
		for i, b := range got {
			if b != byte('A'+w) {
				t.Fatalf("w%d byte %d = %q, files bled into each other", w, i, b)
			}
		}
		fl.Close(nil)
	}
	if n := f.PseudoInodes(); n != 0 {
		t.Fatalf("pseudo-inode leak: %d live after close", n)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// TestConcurrentRenameOpposingDirs bounces files between two directories
// in both directions at once with create/unlink churn — the two-directory
// lock-order stress, with the rank assertion armed.
func TestConcurrentRenameOpposingDirs(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 8192)
	for _, d := range []string{"/a", "/b"} {
		if err := f.Mkdir(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	mkfile := func(path, content string) {
		fl, err := openOF(f, path, fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		fl.Write(nil, []byte(content))
		fl.Close(nil)
	}
	mkfile("/a/x.bin", "xx")
	mkfile("/b/y.bin", "yyy")

	const rounds = 80
	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		bounce := func(from, to string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := f.Rename(nil, from, to); err != nil {
					t.Errorf("rename %s -> %s: %v", from, to, err)
					return
				}
				if err := f.Rename(nil, to, from); err != nil {
					t.Errorf("rename %s -> %s: %v", to, from, err)
					return
				}
			}
		}
		churn := func(dir string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p := fmt.Sprintf("%s/c%d.tmp", dir, r%5)
				fl, err := openOF(f, p, fs.OCreate|fs.OWrOnly)
				if err != nil {
					t.Errorf("churn create %s: %v", p, err)
					return
				}
				fl.Close(nil)
				if err := f.Unlink(nil, p); err != nil {
					t.Errorf("churn unlink %s: %v", p, err)
					return
				}
			}
		}
		wg.Add(4)
		go bounce("/a/x.bin", "/b/x.bin")
		go bounce("/b/y.bin", "/a/y.bin")
		go churn("/a")
		go churn("/b")
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	for path, size := range map[string]int64{"/a/x.bin": 2, "/b/y.bin": 3} {
		st, err := f.Stat(nil, path)
		if err != nil || st.Size != size {
			t.Fatalf("final %s = %+v, %v", path, st, err)
		}
	}
}

// TestCreateVsWalkSameParent races creates in one directory against walks
// through it.
func TestCreateVsWalkSameParent(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 8192)
	if err := f.Mkdir(nil, "/p"); err != nil {
		t.Fatal(err)
	}
	fl, _ := openOF(f, "/p/known.txt", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("k"))
	fl.Close(nil)

	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := fmt.Sprintf("/p/f%02d.txt", i)
				fl, err := openOF(f, p, fs.OCreate|fs.OWrOnly)
				if err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				fl.Close(nil)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if _, err := f.Stat(nil, "/p/known.txt"); err != nil {
					t.Errorf("walk: %v", err)
					return
				}
			}
		}()
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	d, _ := openOF(f, "/p", fs.ORdOnly)
	entries, _ := d.ReadDir(nil)
	if len(entries) != 51 {
		t.Fatalf("entries = %d, want 51", len(entries))
	}
}

// TestUnlinkDeferredReclaim pins the POSIX unlink-while-open contract
// (xv6fs-style deferred reclaim): a descriptor opened before the unlink
// keeps reading, writing, growing, and fsyncing the file; the name is gone
// from the namespace immediately; and the LAST close frees the chain and
// drops the pseudo-inode.
func TestUnlinkDeferredReclaim(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 4096)
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/gone.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/gone.bin"); err != nil {
		t.Fatal(err)
	}
	// The name is gone immediately...
	if _, err := f.Stat(nil, "/gone.bin"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat after unlink = %v, want ErrNotFound", err)
	}
	// ...but the descriptor still works: read back, overwrite, grow past
	// the old tail, and fsync, all against the retained chain.
	got := make([]byte, len(payload))
	if _, err := fl.Pread(nil, got, 0); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after unlink: %v (match=%v)", err, bytes.Equal(got, payload))
	}
	if _, err := fl.Pwrite(nil, []byte("still-here"), 0); err != nil {
		t.Fatalf("write after unlink = %v", err)
	}
	if _, err := fl.Pwrite(nil, []byte("grown"), int64(len(payload))); err != nil {
		t.Fatalf("grow after unlink = %v", err)
	}
	if err := fl.Sync(nil); err != nil {
		t.Fatalf("fsync after unlink = %v", err)
	}
	if _, err := fl.Pread(nil, got[:10], 0); err != nil || string(got[:10]) != "still-here" {
		t.Fatalf("readback after unlink: %q, %v", got[:10], err)
	}
	// The last close reclaims: pseudo-inode gone, every cluster back in
	// the pool.
	if err := fl.Close(nil); err != nil {
		t.Fatal(err)
	}
	if n := f.PseudoInodes(); n != 0 {
		t.Fatalf("pseudo-inode leak after close: %d", n)
	}
	free1, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0 {
		t.Fatalf("free clusters %d -> %d after last close, want full reclaim", free0, free1)
	}
	// The first cluster may be reused by a new file without aliasing the
	// closed handle's pseudo-inode.
	fl2, err := openOF(f, "/fresh.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl2.Write(nil, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	fl2.Close(nil)
}
