package fat32

import (
	"encoding/binary"
	"errors"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
)

// newDevFS is newFS but keeps the device handle so the test can remount
// the same medium or inspect raw sectors.
func newDevFS(t *testing.T, blocks int) (sdDev, *FS) {
	t.Helper()
	sd := hw.NewSDCard(blocks, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dev, f
}

// orphanRecords reads the on-disk orphan sector and returns its nonzero
// slots.
func orphanRecords(t *testing.T, dev sdDev) []uint32 {
	t.Helper()
	b := make([]byte, SectorSize)
	if err := dev.ReadBlocks(orphanSector, 1, b); err != nil {
		t.Fatal(err)
	}
	var out []uint32
	for i := 0; i < orphanSlots; i++ {
		if c := binary.LittleEndian.Uint32(b[i*fatEntrySize:]); c != 0 {
			out = append(out, c)
		}
	}
	return out
}

// TestOrphanReclaimAcrossRemount is the regression test for the
// deferred-reclaim leak: unlink a file somebody still holds open, then
// lose the mount (crash, unmount) before the last close. The chain used
// to leak until an fsck repair; now the durable orphan record lets the
// next mount reclaim it.
func TestOrphanReclaimAcrossRemount(t *testing.T) {
	dev, f := newDevFS(t, 4096)
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/gone.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, make([]byte, 3*ClusterSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// The unlink recorded the pending reclaim durably — visible on the
	// raw medium, not just in memory.
	recs := orphanRecords(t, dev)
	if len(recs) != 1 {
		t.Fatalf("orphan records after unlink-while-open = %v, want one", recs)
	}
	// Remount the same medium WITHOUT closing the descriptor: the old
	// mount's in-memory deferred reclaim is gone, exactly as after a
	// crash. The new mount's scan must free the chain.
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	free2, err := f2.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2 != free0 {
		t.Fatalf("free clusters %d after remount, want %d (chain leaked)", free2, free0)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("orphan records after remount scan = %v, want none", recs)
	}
	if _, err := f2.Stat(nil, "/gone.bin"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat unlinked file on new mount = %v, want ErrNotFound", err)
	}
}

// TestOrphanRecordRetiredByLastClose: the normal (no-crash) path — the
// last close frees the chain AND retires its record, so a later mount
// scan finds nothing to do.
func TestOrphanRecordRetiredByLastClose(t *testing.T) {
	dev, f := newDevFS(t, 4096)
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/gone.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, make([]byte, ClusterSize+100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if len(orphanRecords(t, dev)) != 1 {
		t.Fatal("no orphan record while the unlinked file is held open")
	}
	if err := fl.Close(nil); err != nil {
		t.Fatal(err)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("orphan records after last close = %v, want none", recs)
	}
	free1, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0 {
		t.Fatalf("free clusters %d -> %d after last close", free0, free1)
	}
	// After a sync, a fresh mount has nothing to reclaim and the same
	// free count.
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2, _ := f2.FreeClusters(nil); free2 != free0 {
		t.Fatalf("free clusters %d on remount, want %d", free2, free0)
	}
}

// mkfsSmallReserved lays out a minimal foreign/legacy volume whose
// reserved region is a single sector: the FAT begins at absolute sector
// 1, so the orphan sector (2) is FAT territory.
func mkfsSmallReserved(t *testing.T, dev fs.BlockDevice) {
	t.Helper()
	total := dev.Blocks()
	const reserved = 1
	clusters := (total - reserved) / SectorsPerCluster
	fatSectors := ((clusters+rootCluster)*fatEntrySize + SectorSize - 1) / SectorSize
	boot := make([]byte, SectorSize)
	copy(boot[3:], "PROTOFAT")
	binary.LittleEndian.PutUint16(boot[11:], SectorSize)
	boot[13] = SectorsPerCluster
	binary.LittleEndian.PutUint16(boot[14:], reserved)
	boot[16] = 1
	binary.LittleEndian.PutUint32(boot[32:], uint32(total))
	binary.LittleEndian.PutUint32(boot[36:], uint32(fatSectors))
	binary.LittleEndian.PutUint32(boot[44:], rootCluster)
	// No FSInfo — it would not fit inside one reserved sector.
	boot[510], boot[511] = 0x55, 0xAA
	if err := dev.WriteBlocks(0, 1, boot); err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, SectorSize)
	for s := 0; s < fatSectors; s++ {
		if err := dev.WriteBlocks(reserved+s, 1, zero); err != nil {
			t.Fatal(err)
		}
	}
	fat0 := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(fat0[0:], 0x0FFFFFF8) // media
	binary.LittleEndian.PutUint32(fat0[4:], 0x0FFFFFFF) // reserved
	binary.LittleEndian.PutUint32(fat0[8:], endOfChain) // root dir
	if err := dev.WriteBlocks(reserved, 1, fat0); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < SectorsPerCluster; s++ {
		if err := dev.WriteBlocks(reserved+fatSectors+s, 1, zero); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOrphanListDisabledOnSmallReservedVolume: on a volume whose
// reserved region does not contain the orphan sector, unlink-while-open
// must NOT write orphan records — sector 2 is part of the FAT there, and
// a record would corrupt cluster chains. The deferral degrades to the
// old in-memory-only behavior: the last close still reclaims.
func TestOrphanListDisabledOnSmallReservedVolume(t *testing.T) {
	rd := fs.NewRamdisk(SectorSize, 4096)
	mkfsSmallReserved(t, rd)
	f, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/gone.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, make([]byte, 2*ClusterSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Sector 2 holds FAT entries for clusters this workload never
	// allocated; an orphan record written there would show up as a
	// spurious nonzero entry.
	b := make([]byte, SectorSize)
	if err := rd.ReadBlocks(orphanSector, 1, b); err != nil {
		t.Fatal(err)
	}
	for i, c := range b {
		if c != 0 {
			t.Fatalf("byte %d of FAT sector %d dirtied by orphan record", i, orphanSector)
		}
	}
	// Sector 1 is the FAT head here; a Sync that persisted FSInfo to its
	// usual address would stamp the "RRaA" signature over the media entry.
	if err := rd.ReadBlocks(1, 1, b); err != nil {
		t.Fatal(err)
	}
	if e := binary.LittleEndian.Uint32(b[0:]); e != 0x0FFFFFF8 {
		t.Fatalf("FAT[0] media entry = %#x after sync — FSInfo written over the FAT", e)
	}
	// The in-memory deferral still does its job at last close.
	if err := fl.Close(nil); err != nil {
		t.Fatal(err)
	}
	free1, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0 {
		t.Fatalf("free clusters %d after last close, want %d", free1, free0)
	}
	// And a remount (which must not scan the nonexistent list) works.
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Stat(nil, "/gone.bin"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat unlinked file on remount = %v, want ErrNotFound", err)
	}
}

// TestOrphanScanSkipsInvalidRecords: one corrupt byte in the orphan
// sector must not make the volume unmountable. Out-of-range records are
// dropped (like already-free ones); the leak-not-corruption posture
// leaves anything truly wrong to fsck repair.
func TestOrphanScanSkipsInvalidRecords(t *testing.T) {
	dev, f := newDevFS(t, 4096)
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(b[0:], 0x0FFFFFF0)                     // far out of range
	binary.LittleEndian.PutUint32(b[4:], rootCluster+5)                  // in range, already free
	binary.LittleEndian.PutUint32(b[8:], uint32(f.clusters)+rootCluster) // one past the end
	if err := dev.WriteBlocks(orphanSector, 1, b); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatalf("mount with corrupt orphan records = %v, want success", err)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("orphan records after scan = %v, want none", recs)
	}
	free2, err := f2.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2 != free0 {
		t.Fatalf("free clusters %d after scan of garbage records, want %d", free2, free0)
	}
}

// TestMkfsClearsOrphanSector: mkfs on a reused medium must not inherit
// stale orphan records that would free live clusters on first mount.
func TestMkfsClearsOrphanSector(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	b := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(b[0:], 77)
	binary.LittleEndian.PutUint32(b[12:], 99)
	if err := dev.WriteBlocks(orphanSector, 1, b); err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("mkfs left stale orphan records: %v", recs)
	}
	if _, err := Mount(dev, nil); err != nil {
		t.Fatal(err)
	}
}
