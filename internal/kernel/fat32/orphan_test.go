package fat32

import (
	"encoding/binary"
	"errors"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
)

// newDevFS is newFS but keeps the device handle so the test can remount
// the same medium or inspect raw sectors.
func newDevFS(t *testing.T, blocks int) (sdDev, *FS) {
	t.Helper()
	sd := hw.NewSDCard(blocks, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dev, f
}

// orphanRecords reads the on-disk orphan sector and returns its nonzero
// slots.
func orphanRecords(t *testing.T, dev sdDev) []uint32 {
	t.Helper()
	b := make([]byte, SectorSize)
	if err := dev.ReadBlocks(orphanSector, 1, b); err != nil {
		t.Fatal(err)
	}
	var out []uint32
	for i := 0; i < orphanSlots; i++ {
		if c := binary.LittleEndian.Uint32(b[i*fatEntrySize:]); c != 0 {
			out = append(out, c)
		}
	}
	return out
}

// TestOrphanReclaimAcrossRemount is the regression test for the
// deferred-reclaim leak: unlink a file somebody still holds open, then
// lose the mount (crash, unmount) before the last close. The chain used
// to leak until an fsck repair; now the durable orphan record lets the
// next mount reclaim it.
func TestOrphanReclaimAcrossRemount(t *testing.T) {
	dev, f := newDevFS(t, 4096)
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/gone.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, make([]byte, 3*ClusterSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// The unlink recorded the pending reclaim durably — visible on the
	// raw medium, not just in memory.
	recs := orphanRecords(t, dev)
	if len(recs) != 1 {
		t.Fatalf("orphan records after unlink-while-open = %v, want one", recs)
	}
	// Remount the same medium WITHOUT closing the descriptor: the old
	// mount's in-memory deferred reclaim is gone, exactly as after a
	// crash. The new mount's scan must free the chain.
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	free2, err := f2.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2 != free0 {
		t.Fatalf("free clusters %d after remount, want %d (chain leaked)", free2, free0)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("orphan records after remount scan = %v, want none", recs)
	}
	if _, err := f2.Stat(nil, "/gone.bin"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat unlinked file on new mount = %v, want ErrNotFound", err)
	}
}

// TestOrphanRecordRetiredByLastClose: the normal (no-crash) path — the
// last close frees the chain AND retires its record, so a later mount
// scan finds nothing to do.
func TestOrphanRecordRetiredByLastClose(t *testing.T) {
	dev, f := newDevFS(t, 4096)
	free0, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/gone.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, make([]byte, ClusterSize+100)); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/gone.bin"); err != nil {
		t.Fatal(err)
	}
	if len(orphanRecords(t, dev)) != 1 {
		t.Fatal("no orphan record while the unlinked file is held open")
	}
	if err := fl.Close(nil); err != nil {
		t.Fatal(err)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("orphan records after last close = %v, want none", recs)
	}
	free1, err := f.FreeClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0 {
		t.Fatalf("free clusters %d -> %d after last close", free0, free1)
	}
	// After a sync, a fresh mount has nothing to reclaim and the same
	// free count.
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if free2, _ := f2.FreeClusters(nil); free2 != free0 {
		t.Fatalf("free clusters %d on remount, want %d", free2, free0)
	}
}

// TestMkfsClearsOrphanSector: mkfs on a reused medium must not inherit
// stale orphan records that would free live clusters on first mount.
func TestMkfsClearsOrphanSector(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	b := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(b[0:], 77)
	binary.LittleEndian.PutUint32(b[12:], 99)
	if err := dev.WriteBlocks(orphanSector, 1, b); err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	if recs := orphanRecords(t, dev); len(recs) != 0 {
		t.Fatalf("mkfs left stale orphan records: %v", recs)
	}
	if _, err := Mount(dev, nil); err != nil {
		t.Fatal(err)
	}
}
