package fat32

import (
	"fmt"
	"sync"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// BenchmarkParallelFiles measures N workers streaming N distinct files on
// ONE FAT32 mount.
//
//   - "io": the SD card's latency model is on (scaled down) and the cache
//     is deliberately tiny, so every read pays simulated wire time — slept
//     outside the card's lock, like real hardware. Device waits overlap
//     iff the filesystem's locking lets them: the volume-lock baseline
//     pins this at ~1× regardless of workers, per-file pseudo-inode locks
//     scale it with workers even on one CPU.
//   - "mem": warm cache, latency off; pure lock+memcpy cost (scales only
//     with real cores).
func BenchmarkParallelFiles(b *testing.B) {
	const fileSize = 256 << 10
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("io/workers=%d", workers), func(b *testing.B) {
			sd := hw.NewSDCard(16384, hw.NewIRQController(1))
			sd.SetLatencyScale(0)
			dev := sdDev{sd}
			if err := Mkfs(dev); err != nil {
				b.Fatal(err)
			}
			// 256 buffers against a 256 KB (512-sector) sequential scan
			// per file: LRU evicts each block before reuse, so every pass
			// misses in full and pays simulated wire time — for every
			// worker count, keeping the numbers comparable. Scale 0.2
			// makes a 16 KB range command ~2.5 ms, large against Go timer
			// slack, so sleep jitter stays noise.
			f, err := MountWith(dev, nil, bcache.Options{Buffers: 256, Shards: 8, Readahead: -1})
			if err != nil {
				b.Fatal(err)
			}
			setupParallelFiles(b, f, workers, fileSize)
			sd.SetLatencyScale(0.2) // ~76 µs per sector on the wire
			runParallelReads(b, f, workers, fileSize)
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mem/workers=%d", workers), func(b *testing.B) {
			sd := hw.NewSDCard(16384, hw.NewIRQController(1))
			sd.SetLatencyScale(0)
			dev := sdDev{sd}
			if err := Mkfs(dev); err != nil {
				b.Fatal(err)
			}
			f, err := Mount(dev, nil)
			if err != nil {
				b.Fatal(err)
			}
			setupParallelFiles(b, f, workers, fileSize)
			runParallelReads(b, f, workers, fileSize)
		})
	}
}

var benchFiles []*fs.OpenFile

func setupParallelFiles(b *testing.B, f *FS, workers, fileSize int) {
	benchFiles = make([]*fs.OpenFile, workers)
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for w := range benchFiles {
		fl, err := openOF(f, fmt.Sprintf("/w%d.bin", w), fs.OCreate|fs.ORdWr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fl.Write(nil, data); err != nil {
			b.Fatal(err)
		}
		benchFiles[w] = fl
	}
	// Flush setup writes so the timed loop never pays their writeback.
	if err := f.Sync(nil); err != nil {
		b.Fatal(err)
	}
}

func runParallelReads(b *testing.B, f *FS, workers, fileSize int) {
	b.SetBytes(int64(workers) * int64(fileSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(fl *fs.OpenFile) {
				defer wg.Done()
				sk := fl
				sk.Seek(nil, 0, fs.SeekSet)
				// 16 KB chunks: claims stay small enough for every
				// worker's device commands to stay in flight at once.
				buf := make([]byte, 16<<10)
				for got := 0; got < fileSize; {
					n, err := fl.Read(nil, buf)
					if err != nil || n == 0 {
						b.Error(err)
						return
					}
					got += n
				}
			}(benchFiles[w])
		}
		wg.Wait()
	}
}
