// Hostile-image hardening: a corrupt or adversarial boot sector must
// fail the mount with ErrBadFS — never panic, hang, or derive a block
// address from an unchecked geometry field.
package fat32

import (
	"encoding/binary"
	"errors"
	"testing"

	"protosim/internal/kernel/fs"
)

// hostileBoot formats a valid volume, then lets corrupt rewrite the boot
// sector before the mount attempt.
func hostileBoot(t *testing.T, corrupt func(boot []byte)) *fs.Ramdisk {
	t.Helper()
	rd := fs.NewRamdisk(SectorSize, 4096)
	if err := Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	boot := make([]byte, SectorSize)
	if err := rd.ReadBlocks(0, 1, boot); err != nil {
		t.Fatal(err)
	}
	corrupt(boot)
	if err := rd.WriteBlocks(0, 1, boot); err != nil {
		t.Fatal(err)
	}
	return rd
}

func TestMountRejectsHostileBootSector(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(boot []byte)
	}{
		{"no signature", func(b []byte) { b[510] = 0 }},
		{"foreign OEM", func(b []byte) { copy(b[3:], "MSWIN4.1") }},
		{"4K sectors", func(b []byte) { binary.LittleEndian.PutUint16(b[11:], 4096) }},
		{"zero sector size", func(b []byte) { binary.LittleEndian.PutUint16(b[11:], 0) }},
		{"16 sectors per cluster", func(b []byte) { b[13] = 16 }},
		{"zero sectors per cluster", func(b []byte) { b[13] = 0 }},
		{"zero reserved", func(b []byte) { binary.LittleEndian.PutUint16(b[14:], 0) }},
		{"zero FAT sectors", func(b []byte) { binary.LittleEndian.PutUint32(b[36:], 0) }},
		{"FAT sectors max uint32", func(b []byte) { binary.LittleEndian.PutUint32(b[36:], 0xFFFFFFFF) }},
		{"total beyond device", func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 1<<30) }},
		{"total max uint32", func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 0xFFFFFFFF) }},
		{"total zero", func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 0) }},
		{"no data clusters", func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 40) }},
		{"FAT too small for clusters", func(b []byte) {
			// Claim one FAT sector (128 entries) for a volume whose data
			// region implies far more clusters than the FAT can index.
			binary.LittleEndian.PutUint32(b[36:], 1)
		}},
		{"root cluster not 2", func(b []byte) { binary.LittleEndian.PutUint32(b[44:], 7) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rd := hostileBoot(t, tc.corrupt)
			if _, err := Mount(rd, nil); !errors.Is(err, ErrBadFS) {
				t.Fatalf("Mount = %v, want ErrBadFS", err)
			}
		})
	}
}

// TestMountSurvivesHostileFSInfo: FSInfo is advisory — garbage values
// must not be trusted (hint out of range, free count beyond the volume)
// but must never fail the mount.
func TestMountSurvivesHostileFSInfo(t *testing.T) {
	rd := fs.NewRamdisk(SectorSize, 4096)
	if err := Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	fsi := make([]byte, SectorSize)
	encodeFSInfo(fsi, 0xFFFFFF00, 0xFFFFFF00) // both impossible
	if err := rd.WriteBlocks(fsInfoSector, 1, fsi); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(rd, nil)
	if err != nil {
		t.Fatalf("Mount = %v, want nil (FSInfo is advisory)", err)
	}
	free, next := f.FSInfo(nil)
	if free != -1 {
		t.Fatalf("freeCount = %d, want -1 (untrusted)", free)
	}
	if next < rootCluster || next >= uint32(f.clusters)+rootCluster {
		t.Fatalf("next-free hint %d out of range", next)
	}
	// The volume still works.
	fl, err := openOF(f, "/ok.txt", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
}
