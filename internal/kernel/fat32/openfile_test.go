package fat32

import "protosim/internal/kernel/fs"

// openOF opens path and wraps it in a fresh open file description, the
// way the VFS does on the syscall path — tests drive files through the
// same fs.OpenFile contract the kernel uses.
func openOF(f *FS, path string, flags int) (*fs.OpenFile, error) {
	ops, err := f.Open(nil, path, flags)
	if err != nil {
		return nil, err
	}
	return fs.NewOpenFile(ops, flags), nil
}
