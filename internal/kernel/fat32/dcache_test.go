package fat32

import (
	"bytes"
	"errors"
	"testing"

	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fs"
)

// newCachedFS mounts a FAT32 volume with a dentry cache attached, the
// way the kernel wires it at boot.
func newCachedFS(t *testing.T, blocks int) (*FS, *dcache.Mount) {
	t.Helper()
	f := newFS(t, blocks)
	m := dcache.New(4, 64).NewMount("/d")
	f.SetDcache(m)
	return f, m
}

func TestNegativeEntryCachedUntilCreate(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	if _, err := f.Stat(nil, "/nope.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat = %v, want ErrNotFound", err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/nope.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("second stat = %v, want ErrNotFound", err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("repeated ENOENT did not hit the negative entry")
	}
	// Creating the name must kill the cached ENOENT.
	fl, err := openOF(f, "/nope.txt", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("hello"))
	fl.Close(nil)
	st, err := f.Stat(nil, "/nope.txt")
	if err != nil || st.Size != 5 {
		t.Fatalf("stat after create = %+v, %v (stale negative entry?)", st, err)
	}
}

func TestUnlinkInstallsNegativeEntry(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	fl, err := openOF(f, "/x.txt", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if _, err := f.Stat(nil, "/x.txt"); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/x.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/x.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat after unlink = %v (stale positive entry?)", err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/x.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal(err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("unlink did not leave a negative entry behind")
	}
}

func TestRenameOverInvalidatesBothNames(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	for name, body := range map[string]string{"/a.txt": "AAAA", "/b.txt": "BB"} {
		fl, err := openOF(f, name, fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		fl.Write(nil, []byte(body))
		fl.Close(nil)
	}
	// Warm the cache on both names.
	if _, err := f.Stat(nil, "/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/b.txt"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(nil, "/a.txt", "/b.txt"); err != nil {
		t.Fatal(err)
	}
	// Old name gone — and the ENOENT is itself cached.
	if _, err := f.Stat(nil, "/a.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat old name = %v (stale positive entry?)", err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/a.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal(err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("rename did not cache the old name's ENOENT")
	}
	// New name is a.txt's content, not the stale victim mapping.
	fl, err := openOF(f, "/b.txt", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	n, _ := fl.Read(nil, got)
	fl.Close(nil)
	if !bytes.Equal(got[:n], []byte("AAAA")) {
		t.Fatalf("read new name = %q, want AAAA (stale dcache mapping?)", got[:n])
	}
}

// TestDcacheCaseInsensitiveKeys: FAT lookups are case-insensitive, so
// every casing of one name must share one cache entry — positive and
// negative.
func TestDcacheCaseInsensitiveKeys(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	fl, err := openOF(f, "/File.TXT", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if _, err := f.Stat(nil, "/file.txt"); err != nil {
		t.Fatal(err)
	}
	h0 := m.Stats().Hits
	if _, err := f.Stat(nil, "/FILE.txt"); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Hits <= h0 {
		t.Fatal("different casing missed the shared cache entry")
	}
	// A cached ENOENT under one casing answers every casing — and a
	// create under ANOTHER casing must still invalidate it.
	if _, err := f.Stat(nil, "/NoPe"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal(err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/nope"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal(err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("case-varied ENOENT missed the shared negative entry")
	}
	fl, err = openOF(f, "/NOPE", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if _, err := f.Stat(nil, "/nope"); err != nil {
		t.Fatalf("stat after case-varied create = %v", err)
	}
}

// TestDcacheSizeFreshness: a stat served from the cache must report the
// file's current size, not the size at fill time (patchDirentSize keeps
// the entry fresh via FixSize).
func TestDcacheSizeFreshness(t *testing.T) {
	f, _ := newCachedFS(t, 4096)
	fl, err := openOF(f, "/grow.txt", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("1234"))
	fl.Close(nil)
	if st, err := f.Stat(nil, "/grow.txt"); err != nil || st.Size != 4 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	// Grow through a second descriptor while the entry is cached.
	fl, err = openOF(f, "/grow.txt", fs.OWrOnly|fs.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("56789"))
	fl.Close(nil)
	if st, err := f.Stat(nil, "/grow.txt"); err != nil || st.Size != 9 {
		t.Fatalf("stat after growth = %+v, %v (stale cached size?)", st, err)
	}
}

// TestRemountROKillsDcache: errors=remount-ro degradation empties the
// cache and latches it dead, so reads fall through to the (still
// readable) directory blocks.
func TestRemountROKillsDcache(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	fl, err := openOF(f, "/keep.txt", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("data"))
	fl.Close(nil)
	if _, err := f.Stat(nil, "/keep.txt"); err != nil {
		t.Fatal(err)
	}
	f.remountRO(errors.New("injected fault"))
	if !m.Dead() {
		t.Fatal("remount-ro did not kill the dcache mount")
	}
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("dead mount still holds %d entries", st.Entries)
	}
	// Reads still work, straight from the directory blocks.
	if st, err := f.Stat(nil, "/keep.txt"); err != nil || st.Size != 4 {
		t.Fatalf("stat on ro mount = %+v, %v", st, err)
	}
	if err := f.Unlink(nil, "/keep.txt"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("unlink on ro mount = %v, want ErrReadOnly", err)
	}
}
