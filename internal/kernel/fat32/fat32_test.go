package fat32

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"protosim/internal/hw"
	"protosim/internal/kernel/fs"
)

// sdDev adapts hw.SDCard to fs.BlockDevice for tests.
type sdDev struct{ sd *hw.SDCard }

func (d sdDev) BlockSize() int { return hw.SDBlockSize }
func (d sdDev) Blocks() int    { return d.sd.Blocks() }
func (d sdDev) ReadBlocks(lba, n int, dst []byte) error {
	return d.sd.ReadBlocks(lba, n, dst)
}
func (d sdDev) WriteBlocks(lba, n int, src []byte) error {
	return d.sd.WriteBlocks(lba, n, src)
}

func newFS(t *testing.T, blocks int) *FS {
	t.Helper()
	sd := hw.NewSDCard(blocks, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMkfsMount(t *testing.T) {
	f := newFS(t, 4096)
	st, err := f.Stat(nil, "/")
	if err != nil || st.Type != fs.TypeDir {
		t.Fatalf("root = %+v, %v", st, err)
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	sd := hw.NewSDCard(256, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	if _, err := Mount(sdDev{sd}, nil); !errors.Is(err, ErrBadFS) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateWriteReadLargeFile(t *testing.T) {
	f := newFS(t, 16384) // 8 MB card
	fl, err := openOF(f, "/doom1.wad", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	// A multi-MB file: far beyond xv6fs's 268 KB cap — the whole point of
	// FAT32 in Prototype 5.
	data := make([]byte, 2<<20)
	for i := range data {
		data[i] = byte(i * 2654435761)
	}
	if n, err := fl.Write(nil, data); err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if _, err := fl.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	read := 0
	for read < len(got) {
		n, err := fl.Read(nil, got[read:])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		read += n
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file round-trip corrupted")
	}
	st, _ := f.Stat(nil, "/doom1.wad")
	if st.Size != int64(len(data)) {
		t.Fatalf("size = %d", st.Size)
	}
}

func TestRangeBypassUsed(t *testing.T) {
	f := newFS(t, 16384)
	fl, _ := openOF(f, "/video.mpv", fs.OCreate|fs.ORdWr)
	data := make([]byte, 512<<10)
	fl.Write(nil, data)
	fl.Seek(nil, 0, fs.SeekSet)
	opsBefore, blocksBefore := f.RangeStats()
	buf := make([]byte, 256<<10)
	if _, err := fl.Read(nil, buf); err != nil {
		t.Fatal(err)
	}
	ops, blocks := f.RangeStats()
	gotOps, gotBlocks := ops-opsBefore, blocks-blocksBefore
	if gotOps == 0 {
		t.Fatal("no range transfers used")
	}
	// A 256 KB aligned read over a freshly-written (contiguous) chain
	// should coalesce into very few commands, not one per sector.
	if gotOps > 8 {
		t.Fatalf("range read used %d commands for %d blocks; coalescing broken", gotOps, gotBlocks)
	}
}

func TestNamesCaseInsensitive83(t *testing.T) {
	f := newFS(t, 4096)
	fl, err := openOF(f, "/Track01.pog", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("audio"))
	fl.Close(nil)
	// Lookup with different case succeeds (FAT is case-insensitive).
	if _, err := f.Stat(nil, "/TRACK01.POG"); err != nil {
		t.Fatalf("uppercase lookup: %v", err)
	}
	if _, err := f.Stat(nil, "/track01.pog"); err != nil {
		t.Fatalf("lowercase lookup: %v", err)
	}
	// ReadDir reports the lowered name.
	d, _ := openOF(f, "/", fs.ORdOnly)
	entries, _ := d.ReadDir(nil)
	if len(entries) != 1 || entries[0].Name != "track01.pog" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestNameRejection(t *testing.T) {
	f := newFS(t, 4096)
	for _, bad := range []string{"/waytoolongbasename.txt", "/file.toolong", "/sp ace.txt"} {
		if _, err := openOF(f, bad, fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrNameTooLong) {
			t.Fatalf("%s: err = %v", bad, err)
		}
	}
}

func TestDirectoriesNested(t *testing.T) {
	f := newFS(t, 4096)
	if err := f.Mkdir(nil, "/photos"); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir(nil, "/photos/trip"); err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/photos/trip/img1.bmp", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("BM"))
	fl.Close(nil)
	st, err := f.Stat(nil, "/photos/trip/img1.bmp")
	if err != nil || st.Size != 2 {
		t.Fatalf("stat = %+v %v", st, err)
	}
}

func TestUnlinkAndSpaceReuse(t *testing.T) {
	f := newFS(t, 2048) // ~1 MB card
	payload := make([]byte, 256<<10)
	for i := 0; i < 4; i++ {
		fl, err := openOF(f, "/big.bin", fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if _, err := fl.Write(nil, payload); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		fl.Close(nil)
		if err := f.Unlink(nil, "/big.bin"); err != nil {
			t.Fatalf("iter %d unlink: %v", i, err)
		}
	}
}

func TestUnlinkNonEmptyDir(t *testing.T) {
	f := newFS(t, 4096)
	f.Mkdir(nil, "/d")
	fl, _ := openOF(f, "/d/x.txt", fs.OCreate|fs.OWrOnly)
	fl.Close(nil)
	if err := f.Unlink(nil, "/d"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncReleasesClusters(t *testing.T) {
	f := newFS(t, 2048)
	fl, _ := openOF(f, "/t.bin", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, make([]byte, 128<<10))
	fl.Close(nil)
	fl2, err := openOF(f, "/t.bin", fs.OWrOnly|fs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	fl2.Close(nil)
	st, _ := f.Stat(nil, "/t.bin")
	if st.Size != 0 {
		t.Fatalf("size = %d after trunc", st.Size)
	}
}

func TestPseudoInodeLifecycle(t *testing.T) {
	f := newFS(t, 4096)
	fl, _ := openOF(f, "/a.txt", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("x"))
	if f.PseudoInodes() != 1 {
		t.Fatalf("pseudo inodes = %d", f.PseudoInodes())
	}
	// Second open of the same file shares the pseudo-inode.
	fl2, _ := openOF(f, "/a.txt", fs.ORdOnly)
	if f.PseudoInodes() != 1 {
		t.Fatalf("pseudo inodes = %d after second open", f.PseudoInodes())
	}
	// Both sides see a consistent size.
	st, _ := fl2.Stat(nil)
	if st.Size != 1 {
		t.Fatalf("shared size = %d", st.Size)
	}
	fl.Close(nil)
	fl2.Close(nil)
	if f.PseudoInodes() != 0 {
		t.Fatalf("pseudo inodes leak: %d", f.PseudoInodes())
	}
}

func TestDiskFull(t *testing.T) {
	f := newFS(t, 512) // 256 KB card
	fl, _ := openOF(f, "/fill.bin", fs.OCreate|fs.OWrOnly)
	var err error
	chunk := make([]byte, 64<<10)
	for i := 0; i < 32; i++ {
		if _, err = fl.Write(nil, chunk); err != nil {
			break
		}
	}
	if !errors.Is(err, fs.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestSDErrorSurfaces(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, _ := openOF(f, "/x.bin", fs.OCreate|fs.ORdWr)
	fl.Write(nil, make([]byte, 64<<10))
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Remount for a cold cache: with the data resident, a read would be
	// served from memory and never touch the failing device.
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := openOF(f2, "/x.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	// The cache retries transient SD errors (bcache read-retry budget), so
	// a persistent fault needs enough injected failures to exhaust every
	// attempt of one read command before the error can surface.
	sd.InjectErrors(3)
	buf := make([]byte, 64<<10)
	if _, err := fl2.Read(nil, buf); err == nil {
		t.Fatal("injected SD error did not surface")
	}
}

func TestMkfsRemountPersistence(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	Mkfs(dev)
	f, _ := Mount(dev, nil)
	fl, _ := openOF(f, "/save.dat", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("persistent"))
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Remount from the same card (simulating a reboot).
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl2, err := openOF(f2, "/save.dat", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 32)
	n, _ := fl2.Read(nil, b)
	if string(b[:n]) != "persistent" {
		t.Fatalf("after remount: %q", b[:n])
	}
}

func Test83RoundTripProperty(t *testing.T) {
	// Property: to83/from83 round-trips valid names (lowercased).
	names := []string{"a", "file.txt", "doom1.wad", "track01.pog", "x1234567.abc", "noext"}
	for _, n := range names {
		raw, ok := to83(n)
		if !ok {
			t.Fatalf("to83(%q) rejected", n)
		}
		if got := from83(raw); got != n {
			t.Fatalf("round trip %q -> %q", n, got)
		}
	}
	// Property via quick: any (short alnum base, short alnum ext) survives.
	check := func(b, e uint16) bool {
		base := fmt.Sprintf("f%d", b%9999)
		ext := fmt.Sprintf("e%d", e%99)
		name := base + "." + ext
		raw, ok := to83(name)
		return ok && from83(raw) == name
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtOffsets(t *testing.T) {
	f := newFS(t, 8192)
	fl, _ := openOF(f, "/rw.bin", fs.OCreate|fs.ORdWr)
	model := make([]byte, 96<<10)
	fl.Write(nil, model) // allocate
	sk := fl
	writes := []struct {
		off int
		val byte
		n   int
	}{
		{0, 1, 100}, {4095, 2, 2}, {4096, 3, 4096}, {50000, 4, 20000}, {95<<10 - 7, 5, 1024 + 7},
	}
	for _, w := range writes {
		data := bytes.Repeat([]byte{w.val}, w.n)
		sk.Seek(nil, int64(w.off), fs.SeekSet)
		if _, err := fl.Write(nil, data); err != nil {
			t.Fatalf("write at %d: %v", w.off, err)
		}
		copy(model[w.off:], data)
	}
	sk.Seek(nil, 0, fs.SeekSet)
	got := make([]byte, len(model)+4096)
	read := 0
	for {
		n, err := fl.Read(nil, got[read:])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		read += n
	}
	if read < len(model) {
		t.Fatalf("read %d, want >= %d", read, len(model))
	}
	if !bytes.Equal(got[:len(model)], model) {
		t.Fatal("offset writes diverged from model")
	}
}

// --- sharded-cache data path (this replaces the §5.2 bypass) ---

func TestDataFlowsThroughCache(t *testing.T) {
	sd := hw.NewSDCard(4096, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.DataPath() != DataPathRange {
		t.Fatalf("default data path = %v, want range", f.DataPath())
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	fl, err := openOF(f, "/data.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	ops, blocks := f.RangeStats()
	if ops == 0 || blocks == 0 {
		t.Fatalf("write issued no range transfers (ops=%d blocks=%d)", ops, blocks)
	}
	cro, _, _ := f.Cache().RangeStats()
	if cro == 0 {
		t.Fatal("cache saw no range operations — data is not flowing through it")
	}
	// Warm read: the file was write-allocated, so no device reads happen.
	_, r0, _, _ := sd.Stats()
	fl.Seek(nil, 0, fs.SeekSet)
	got := make([]byte, len(payload))
	if _, err := fl.Read(nil, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cached read returned wrong data")
	}
	_, r1, _, _ := sd.Stats()
	if r1 != r0 {
		t.Fatalf("warm read hit the device: %d -> %d blocks", r0, r1)
	}
	fl.Close(nil)
}

func TestDataPathModesAgree(t *testing.T) {
	payload := make([]byte, 100<<10) // unaligned tail exercises partials
	for i := range payload {
		payload[i] = byte(i ^ (i >> 8))
	}
	f := newFS(t, 4096)
	fl, err := openOF(f, "/agree.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []DataPath{DataPathRange, DataPathSingleBlock, DataPathBypass} {
		f.SetDataPath(p)
		fl, err := openOF(f, "/agree.bin", fs.ORdOnly)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got := make([]byte, len(payload))
		if _, err := fl.Read(nil, got); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("data path %v read different bytes", p)
		}
		fl.Close(nil)
	}
}

func TestRangeWritesCoalesceCommands(t *testing.T) {
	sd := hw.NewSDCard(8192, hw.NewIRQController(1))
	sd.SetLatencyScale(0)
	dev := sdDev{sd}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/big.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	c0, _, _, _ := sd.Stats()
	// One 256 KB write over a fresh contiguous chain: the data itself
	// should go out in a handful of multi-block commands, far fewer than
	// the 512 sectors it covers.
	if _, err := fl.Write(nil, make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	c1, _, _, _ := sd.Stats()
	if cmds := c1 - c0; cmds > 200 {
		t.Fatalf("256 KB write issued %d device commands; range batching missing", cmds)
	}
	fl.Close(nil)
}
