package fat32

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// errLBAInjected is the targeted write failure lbaFlakyDev raises.
var errLBAInjected = errors.New("fat32 test: injected write error")

// lbaFlakyDev fails a limited number of write commands that overlap a
// target LBA range — the per-file fault injector the cross-file isolation
// test needs (a whole-device injector could not tell A's writeback from
// B's).
type lbaFlakyDev struct {
	fs.BlockDevice
	mu       sync.Mutex
	lo, hi   int // fail writes overlapping [lo, hi)
	failures int // remaining injections
}

func (d *lbaFlakyDev) arm(lo, hi, count int) {
	d.mu.Lock()
	d.lo, d.hi, d.failures = lo, hi, count
	d.mu.Unlock()
}

func (d *lbaFlakyDev) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	if d.failures > 0 && lba < d.hi && lba+n > d.lo {
		d.failures--
		d.mu.Unlock()
		return errLBAInjected
	}
	d.mu.Unlock()
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

// TestFsyncIsolatesCrossFileErrors is the regression test for the
// pre-errseq bug this PR fixes: the async writeback error latch was
// per-cache, so an fsync of file B could report file A's daemon write
// error. Now errors ride per-inode errseq streams: a daemon write failure
// on A's blocks must leave B's fsync clean, reach A's fsync exactly once
// (even though the daemon's retry has long since succeeded), and still
// surface exactly once on the device-wide stream that volume Sync
// observes.
func TestFsyncIsolatesCrossFileErrors(t *testing.T) {
	dev := &lbaFlakyDev{BlockDevice: fs.NewRamdisk(SectorSize, 16384)}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := MountWith(dev, nil, bcache.Options{
		Buffers: 256, Shards: 4, Readahead: -1,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cache()
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	// Lay the files out with a spacer between them so A's and B's dirty
	// clusters can never coalesce into one device command — the injector
	// must be able to fail A's writeback without touching B's.
	open := func(name string) *fs.OpenFile {
		fl, err := openOF(f, name, fs.OCreate|fs.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}
	af := open("/a.bin")
	gap := open("/gap.bin")
	bf := open("/b.bin")
	defer af.Close(nil)
	defer bf.Close(nil)
	gap.Close(nil)

	aData := bytes.Repeat([]byte{0xAA}, ClusterSize)
	bData := bytes.Repeat([]byte{0xBB}, ClusterSize)
	if _, err := af.Write(nil, aData); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Write(nil, bData); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err) // everything clean and durable before the injection
	}

	api, bpi := af.Ops().(*file).pi, bf.Ops().(*file).pi
	aSector := f.clusterSector(api.firstCluster)

	// Arm: the next write command touching A's cluster fails, once. Then
	// rewrite both files' first clusters — pure cache traffic (the
	// clusters are warm, the sizes don't change), so the dirty state the
	// daemon flushes is exactly A's 8 sectors and B's 8 sectors, in two
	// separate runs.
	dev.arm(aSector, aSector+SectorsPerCluster, 1)
	aData2 := bytes.Repeat([]byte{0xA2}, ClusterSize)
	if _, err := af.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write(nil, aData2); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Write(nil, bData); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for !api.wb.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected error on A's blocks")
		}
		time.Sleep(time.Millisecond)
	}

	// B's fsync: clean. Its own blocks flush fine and A's error must not
	// leak across — the whole point of per-inode errseq tracking.
	if err := bf.Sync(nil); err != nil {
		t.Fatalf("B's fsync observed a foreign error: %v", err)
	}
	if bpi.wb.Pending() {
		t.Fatal("B's error stream advanced without a B write failing")
	}

	// A's fsync: the injected error, exactly once — the injector is long
	// disarmed, so the flush retry inside this very fsync succeeds, and
	// the error must still be reported (errseq never rewinds).
	if err := af.Sync(nil); !errors.Is(err, errLBAInjected) {
		t.Fatalf("A's fsync = %v, want the injected error", err)
	}
	if err := af.Sync(nil); err != nil {
		t.Fatalf("A's second fsync = %v, want nil (exactly-once)", err)
	}

	// The device-wide stream is an independent observer: volume Sync
	// reports the same failure once, then goes clean.
	if err := f.Sync(nil); !errors.Is(err, errLBAInjected) {
		t.Fatalf("volume Sync = %v, want the injected error", err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatalf("second volume Sync = %v, want nil", err)
	}

	// And the data itself was never dropped: A's rewrite is durable.
	f2, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := openOF(f2, "/a.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ClusterSize)
	read := 0
	for read < len(got) {
		n, err := rf.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("read back: %d, %v", n, err)
		}
		read += n
	}
	if !bytes.Equal(got, aData2) {
		t.Fatal("A's data lost across the failed daemon writeback")
	}
}

// TestFsyncAfterReopenAndChainGrowth pins two durability holes review
// found in the first fsync design. (1) The error stream must survive the
// in-memory pseudo-inode: data written through one handle and left dirty
// (write-behind), then the handle closed and the file reopened, must
// still be flushed by the new handle's fsync — the Owner lives in
// FS.owners keyed by file identity, not in the discarded pseudo-inode.
// (2) fsync must flush the FAT sectors linking the chain, or data
// appended past the old tail is durable but unreachable: a fresh mount
// of the raw device (simulated crash: the dirty cache is simply
// abandoned) must read the full file back.
func TestFsyncAfterReopenAndChainGrowth(t *testing.T) {
	rd := fs.NewRamdisk(SectorSize, 16384)
	if err := Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	// No daemon, age/ratio triggers off: fsync is the only flusher, so
	// anything durable got there through SyncT alone.
	f, err := MountWith(rd, nil, bcache.Options{
		Buffers: 512, Shards: 4, Readahead: -1,
		FlushInterval: time.Hour, WritebackRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x7D}, 3*ClusterSize) // grows the chain twice
	fl, err := openOF(f, "/log.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	// Close with everything still dirty, reopen, fsync through the NEW
	// handle.
	fl.Close(nil)
	if n := f.PseudoInodes(); n != 0 {
		t.Fatalf("%d pseudo-inodes live after close", n)
	}
	fl2, err := openOF(f, "/log.bin", fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl2.Sync(nil); err != nil {
		t.Fatal(err)
	}
	fl2.Close(nil)

	// Crash: mount the raw device fresh, abandoning f's cache. The whole
	// file — data, size, and the chain links for the appended clusters —
	// must be there.
	f2, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f2.Stat(nil, "/log.bin")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(payload)) {
		t.Fatalf("post-crash size = %d, want %d (dirent sector not fsynced)", st.Size, len(payload))
	}
	rf, err := openOF(f2, "/log.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	read := 0
	for read < len(got) {
		n, err := rf.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("post-crash read at %d: %d, %v (chain FAT sectors not fsynced?)", read, n, err)
		}
		read += n
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fsynced data unreadable after crash")
	}
}

// TestFsyncFlushesOnlyOwnBlocks pins FlushOwner's selectivity: a file's
// fsync makes that file durable without paying for the other files'
// dirty buffers.
func TestFsyncFlushesOnlyOwnBlocks(t *testing.T) {
	rd := fs.NewRamdisk(SectorSize, 16384)
	if err := Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	// No daemon: dirty state stays put until somebody flushes it.
	f, err := MountWith(rd, nil, bcache.Options{
		Buffers: 256, Shards: 4, Readahead: -1,
		FlushInterval: time.Hour, WritebackRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	af, err := openOF(f, "/a.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := openOF(f, "/b.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5C}, 2*ClusterSize)
	if _, err := af.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if err := af.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// A's data is durable on the raw device...
	a := af.Ops().(*file).pi
	got := make([]byte, ClusterSize)
	if err := rd.ReadBlocks(f.clusterSector(a.firstCluster), SectorsPerCluster, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:ClusterSize]) {
		t.Fatal("fsync did not make A durable")
	}
	// ...while B's dirty buffers were not flushed by A's fsync.
	b := bf.Ops().(*file).pi
	if err := rd.ReadBlocks(f.clusterSector(b.firstCluster), SectorsPerCluster, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload[:ClusterSize]) {
		t.Fatal("A's fsync flushed B's blocks too")
	}
	af.Close(nil)
	bf.Close(nil)
}

// TestPerOpenFsyncExactlyOnceFAT32 is the FAT32 twin of the xv6fs
// f_wb_err regression behind SysFsync: two descriptors opened on one
// file each observe an injected asynchronous writeback error exactly
// once — the error cursor is per open file description, not per
// pseudo-inode — and a descriptor opened after the reports stays silent.
func TestPerOpenFsyncExactlyOnceFAT32(t *testing.T) {
	dev := &lbaFlakyDev{BlockDevice: fs.NewRamdisk(SectorSize, 16384)}
	if err := Mkfs(dev); err != nil {
		t.Fatal(err)
	}
	f, err := MountWith(dev, nil, bcache.Options{
		Buffers: 256, Shards: 4, Readahead: -1,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cache()
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	// Two open file descriptions over one pseudo-inode — separate opens,
	// not a dup, so each holds its own errseq cursor sampled at open.
	fd1, err := openOF(f, "/twice.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := openOF(f, "/twice.bin", fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	defer fd1.Close(nil)
	defer fd2.Close(nil)
	if _, err := fd1.Write(nil, bytes.Repeat([]byte{0xE1}, ClusterSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}

	pi := fd1.Ops().(*file).pi
	sector := f.clusterSector(pi.firstCluster)
	dev.arm(sector, sector+SectorsPerCluster, 1)

	// Re-dirty through fd1 and let the daemon hit the injected failure.
	if _, err := fd1.Pwrite(nil, bytes.Repeat([]byte{0xE2}, ClusterSize), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !pi.wb.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected error")
		}
		time.Sleep(time.Millisecond)
	}

	if err := fd1.Sync(nil); !errors.Is(err, errLBAInjected) {
		t.Fatalf("fd1 fsync = %v, want the injected error", err)
	}
	if err := fd1.Sync(nil); err != nil {
		t.Fatalf("fd1 second fsync = %v, want nil (exactly-once per open)", err)
	}
	// fd2's cursor was NOT consumed by fd1's observation.
	if err := fd2.Sync(nil); !errors.Is(err, errLBAInjected) {
		t.Fatalf("fd2 fsync = %v, want the injected error (per-open cursor)", err)
	}
	if err := fd2.Sync(nil); err != nil {
		t.Fatalf("fd2 second fsync = %v, want nil", err)
	}
	// A descriptor opened after both reports samples the current stream
	// position: old news is not reported to new opens.
	fd3, err := openOF(f, "/twice.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer fd3.Close(nil)
	if err := fd3.Sync(nil); err != nil {
		t.Fatalf("late open fsync = %v, want nil", err)
	}
}
