package fat32

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"protosim/internal/hw"
	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
)

// The write-heavy workload: N workers appending small records to their
// own files on ONE latency-bound mount — the shape that rewards
// write-behind (each tail cluster is rewritten many times before it ever
// reaches the device) and the request queue (the flusher's per-block
// submissions from interleaved per-worker allocations merge into long
// commands).
//
// Two configurations:
//
//   - "sync": write-through cache, no request queue — the synchronous
//     writeback baseline (every append pays a device round trip for its
//     tail-cluster rewrite).
//   - "blkq": write-behind + flusher daemon + request queue over the SD
//     card's async submit/IRQ halves.
//
// The timed region ends with a full Sync, so both configurations measure
// durable throughput.

// asyncSDDev adapts hw.SDCard with its async halves for the queue.
type asyncSDDev struct{ sdDev }

func (d asyncSDDev) SubmitRead(tag uint64, lba, n int, dst []byte) error {
	return d.sd.SubmitRead(tag, lba, n, dst)
}
func (d asyncSDDev) SubmitWrite(tag uint64, lba, n int, src []byte) error {
	return d.sd.SubmitWrite(tag, lba, n, src)
}
func (d asyncSDDev) PopCompletion() (uint64, error, bool) { return d.sd.PopCompletion() }

type writeBenchResult struct {
	Config       string  `json:"config"`
	Workers      int     `json:"workers"`
	TotalBytes   int     `json:"total_bytes"`
	Seconds      float64 `json:"seconds"`
	MBps         float64 `json:"mb_per_s"`
	DeviceCmds   uint64  `json:"device_cmds"`
	DeviceBlocks uint64  `json:"device_write_blocks"`
	QSubmitted   int64   `json:"queue_submitted"`
	QCommands    int64   `json:"queue_commands"`
	MergeRatio   float64 `json:"merge_ratio"`
}

func runWriteHeavy(tb testing.TB, queued bool, workers, appends, appendSize int, latencyScale float64) writeBenchResult {
	tb.Helper()
	ic := hw.NewIRQController(1)
	sd := hw.NewSDCard(65536, ic) // 32 MB card
	sd.SetLatencyScale(0)
	raw := sdDev{sd}
	if err := Mkfs(raw); err != nil {
		tb.Fatal(err)
	}

	copts := bcache.Options{Buffers: 2048, Shards: 8, Readahead: -1}
	var dev fs.BlockDevice = raw
	var q *blkq.Queue
	if queued {
		adev := asyncSDDev{raw}
		q = blkq.New(adev, blkq.Options{Async: adev})
		ic.Register(hw.IRQSD, 0, func(hw.IRQLine, int) { q.CompletionIRQ() })
		dev = q
	} else {
		copts.Policy = bcache.WritePolicyThrough
	}
	f, err := MountWith(dev, nil, copts)
	if err != nil {
		tb.Fatal(err)
	}
	if queued {
		go f.Cache().RunDaemon(nil, nil)
		defer f.Cache().StopDaemon()
	}

	files := make([]*fs.OpenFile, workers)
	for w := range files {
		fl, err := openOF(f, fmt.Sprintf("/w%d.log", w), fs.OCreate|fs.OWrOnly)
		if err != nil {
			tb.Fatal(err)
		}
		files[w] = fl
	}
	record := make([]byte, appendSize)
	for i := range record {
		record[i] = byte(i * 17)
	}

	_, _, w0, _ := sd.Stats()
	c0, _, _, _ := sd.Stats()
	sd.SetLatencyScale(latencyScale)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(fl *fs.OpenFile) {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				if _, err := fl.Write(nil, record); err != nil {
					tb.Error(err)
					return
				}
			}
		}(files[w])
	}
	wg.Wait()
	if err := f.Sync(nil); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	sd.SetLatencyScale(0)
	for _, fl := range files {
		fl.Close(nil)
	}

	c1, _, w1, _ := sd.Stats()
	total := workers * appends * appendSize
	res := writeBenchResult{
		Config:       "sync",
		Workers:      workers,
		TotalBytes:   total,
		Seconds:      elapsed.Seconds(),
		MBps:         float64(total) / (1 << 20) / elapsed.Seconds(),
		DeviceCmds:   c1 - c0,
		DeviceBlocks: w1 - w0,
		MergeRatio:   1,
	}
	if queued {
		res.Config = "blkq"
		sub, disp, _, _, _ := q.Stats()
		res.QSubmitted = sub
		res.QCommands = disp
		if disp > 0 {
			res.MergeRatio = float64(sub) / float64(disp)
		}
	}
	return res
}

// Workload shape shared by the benchmark and the JSON harness: 8 tasks ×
// 192 appends × 512 B on a device at 1/10th of the real SD latency. Small
// records are the point: a 4 KB cluster absorbs 8 appends in cache before
// one writeback, where the synchronous baseline pays 8 cluster rewrites.
const (
	wbWorkers    = 8
	wbAppends    = 192
	wbAppendSize = 512
	wbScale      = 0.1
)

// wbPR5BaselineMBps is the blkq configuration's recorded throughput from
// the PR 5 BENCH_blkq.json, before the crash-consistency PR added the
// ordered-writes discipline (dirent publishes now wait for their cluster
// and FAT sectors). The discipline costs a few targeted flushes per
// create — the regression gate asserts the write-heavy number keeps at
// least 80% of it.
const wbPR5BaselineMBps = 8.04

// The 1-appender fsync workload: one durability-conscious logger
// appending a full cluster and fsyncing after every record. Each fsync
// (bcache.FlushOwner) submits its handful of sectors to an IDLE queue
// with no explicit plug — the lone-submitter shape where, without
// anticipatory plugging, the first requests dispatch solo before their
// adjacent neighbours arrive and the elevator has nothing to merge. With
// PlugDelay the burst accumulates in the anticipatory window (released by
// the fsync's first Wait, so the delay is not actually paid) and goes out
// as one command per contiguous run.
const (
	faAppends    = 96
	faAppendSize = ClusterSize // 8 sectors per fsync: a mergeable burst
)

type fsyncAppendResult struct {
	Config       string  `json:"config"`
	Appends      int     `json:"appends"`
	AppendSize   int     `json:"append_size"`
	Seconds      float64 `json:"seconds"`
	QSubmitted   int64   `json:"queue_submitted"`
	QCommands    int64   `json:"queue_commands"`
	MergeRatio   float64 `json:"merge_ratio"`
	PlugHits     int64   `json:"plug_hits"`
	PlugTimeouts int64   `json:"plug_timeouts"`
}

func runFsyncAppend(tb testing.TB, plugDelay time.Duration, appends, appendSize int, latencyScale float64) fsyncAppendResult {
	tb.Helper()
	ic := hw.NewIRQController(1)
	sd := hw.NewSDCard(65536, ic)
	sd.SetLatencyScale(0)
	raw := sdDev{sd}
	if err := Mkfs(raw); err != nil {
		tb.Fatal(err)
	}
	adev := asyncSDDev{raw}
	q := blkq.New(adev, blkq.Options{Async: adev, PlugDelay: plugDelay})
	ic.Register(hw.IRQSD, 0, func(hw.IRQLine, int) { q.CompletionIRQ() })
	// No daemon and no ratio trigger: the fsync path is the only flusher,
	// so the queue traffic is exactly the lone submitter's.
	f, err := MountWith(q, nil, bcache.Options{Buffers: 2048, Shards: 8, Readahead: -1,
		WritebackRatio: -1, FlushInterval: time.Hour})
	if err != nil {
		tb.Fatal(err)
	}
	fl, err := openOF(f, "/applog.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		tb.Fatal(err)
	}
	record := make([]byte, appendSize)
	for i := range record {
		record[i] = byte(i * 13)
	}
	sd.SetLatencyScale(latencyScale)
	start := time.Now()
	for i := 0; i < appends; i++ {
		if _, err := fl.Write(nil, record); err != nil {
			tb.Fatal(err)
		}
		if err := fl.Sync(nil); err != nil {
			tb.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	sd.SetLatencyScale(0)
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		tb.Fatal(err)
	}
	sub, disp, _, _, _ := q.Stats()
	hits, timeouts := q.PlugStats()
	res := fsyncAppendResult{
		Config:       "noplug",
		Appends:      appends,
		AppendSize:   appendSize,
		Seconds:      elapsed.Seconds(),
		QSubmitted:   sub,
		QCommands:    disp,
		MergeRatio:   1,
		PlugHits:     hits,
		PlugTimeouts: timeouts,
	}
	if plugDelay > 0 {
		res.Config = "plug"
	}
	if disp > 0 {
		res.MergeRatio = float64(sub) / float64(disp)
	}
	return res
}

// The paced 1-appender workload: a lone logger appending one sector-sized
// record every few milliseconds, fire-and-forget, straight into the
// request queue — the unattended-log-device shape (nobody fsyncs;
// completions drain by IRQ). Every batch-assembling flusher in the stack
// either plugs explicitly (Flush, the daemon) or waits and thereby
// converts its window (FlushOwner/fsync — which is why the fsync
// appender's recording shows plug_timeouts 0), so this fire-and-forget
// submitter is the shape where windows actually EXPIRE: each record finds
// an idle queue, opens an anticipatory window, and — the cadence being far
// slower than any window — waits it out for nothing, paying one PlugDelay
// of added time-to-media latency per record. Fixed-delay plugging pays
// that on every single record; adaptive plugging learns the cadence after
// the first window and stops opening them, so plug_timeouts (and the
// added latency) collapse.
const (
	paAppends    = 64
	paAppendSize = SectorSize
	paThink      = 4 * blkq.DefaultPlugDelay // inter-record think time
)

func runPacedAppend(tb testing.TB, adaptive bool, latencyScale float64) fsyncAppendResult {
	tb.Helper()
	ic := hw.NewIRQController(1)
	sd := hw.NewSDCard(65536, ic)
	sd.SetLatencyScale(latencyScale)
	adev := asyncSDDev{sdDev{sd}}
	q := blkq.New(adev, blkq.Options{Async: adev, PlugDelay: blkq.DefaultPlugDelay, AdaptivePlug: adaptive})
	ic.Register(hw.IRQSD, 0, func(hw.IRQLine, int) { q.CompletionIRQ() })
	record := make([]byte, paAppendSize)
	for i := range record {
		record[i] = byte(i * 7)
	}
	start := time.Now()
	tks := make([]fs.BlockTicket, 0, paAppends)
	for i := 0; i < paAppends; i++ {
		tk, err := q.SubmitWrite(nil, 100+i, 1, record)
		if err != nil {
			tb.Fatal(err)
		}
		tks = append(tks, tk)
		time.Sleep(paThink)
	}
	// Drain: by now every record's window has long expired; these waits
	// just collect completions (and surface any error).
	for _, tk := range tks {
		if err := tk.Wait(nil); err != nil {
			tb.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	sd.SetLatencyScale(0)
	sub, disp, _, _, _ := q.Stats()
	hits, timeouts := q.PlugStats()
	res := fsyncAppendResult{
		Config:       "fixed-plug",
		Appends:      paAppends,
		AppendSize:   paAppendSize,
		Seconds:      elapsed.Seconds(),
		QSubmitted:   sub,
		QCommands:    disp,
		MergeRatio:   1,
		PlugHits:     hits,
		PlugTimeouts: timeouts,
	}
	if adaptive {
		res.Config = "adaptive-plug"
	}
	if disp > 0 {
		res.MergeRatio = float64(sub) / float64(disp)
	}
	return res
}

// BenchmarkWriteHeavy compares the two configurations under `go test
// -bench WriteHeavy`.
func BenchmarkWriteHeavy(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		queued bool
	}{{"sync-baseline", false}, {"blkq-writeback", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(wbWorkers * wbAppends * wbAppendSize))
			for i := 0; i < b.N; i++ {
				runWriteHeavy(b, cfg.queued, wbWorkers, wbAppends, wbAppendSize, wbScale)
			}
		})
	}
}

// BenchmarkFsyncAppend compares the 1-appender fsync-per-record workload
// with anticipatory plugging off and on under `go test -bench FsyncAppend`.
func BenchmarkFsyncAppend(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		delay time.Duration
	}{{"noplug", -1}, {"plug", blkq.DefaultPlugDelay}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(faAppends * faAppendSize))
			for i := 0; i < b.N; i++ {
				runFsyncAppend(b, cfg.delay, faAppends, faAppendSize, wbScale)
			}
		})
	}
}

// TestWriteHeavyThroughput is the recorded perf gate: it runs the
// 8-appender configurations (asserting the async stack beats the
// synchronous baseline ≥2× with a merge ratio >1, and holds ≥0.8× of the
// PR 5 recording now that ordered writes are in) and the 1-appender
// fsync workload with anticipatory plugging off/on (asserting plugging
// measurably improves the lone submitter's merge ratio), and writes
// BENCH_blkq.json. Heavyweight and timing-sensitive, so it only runs when
// BENCH_BLKQ_JSON names the output (the `make bench` / CI bench path),
// never in plain `go test ./...`.
func TestWriteHeavyThroughput(t *testing.T) {
	out := os.Getenv("BENCH_BLKQ_JSON")
	if out == "" {
		t.Skip("set BENCH_BLKQ_JSON=<path> to run the write-heavy benchmark")
	}
	base := runWriteHeavy(t, false, wbWorkers, wbAppends, wbAppendSize, wbScale)
	opt := runWriteHeavy(t, true, wbWorkers, wbAppends, wbAppendSize, wbScale)
	speedup := opt.MBps / base.MBps
	noplug := runFsyncAppend(t, -1, faAppends, faAppendSize, wbScale)
	plug := runFsyncAppend(t, blkq.DefaultPlugDelay, faAppends, faAppendSize, wbScale)
	fixedPaced := runPacedAppend(t, false, wbScale)
	adaptivePaced := runPacedAppend(t, true, wbScale)
	report := map[string]any{
		"benchmark":         "write-heavy (8 tasks, latency-bound SD, one FAT32 mount)",
		"append_size":       wbAppendSize,
		"appends":           wbAppends,
		"results":           []writeBenchResult{base, opt},
		"speedup":           speedup,
		"pr5_baseline_mbps": wbPR5BaselineMBps,
		"vs_pr5":            opt.MBps / wbPR5BaselineMBps,
		"fsync_1appender": map[string]any{
			"benchmark": "1 appender, fsync per 4 KB record, latency-bound SD",
			"results":   []fsyncAppendResult{noplug, plug},
		},
		"paced_1appender": map[string]any{
			"benchmark": "1 paced fire-and-forget appender, think time 4x PlugDelay, latency-bound SD",
			"results":   []fsyncAppendResult{fixedPaced, adaptivePaced},
		},
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sync: %.2f MB/s (%d cmds, %d blocks)", base.MBps, base.DeviceCmds, base.DeviceBlocks)
	t.Logf("blkq: %.2f MB/s (%d cmds, %d blocks, merge ratio %.2f)", opt.MBps, opt.DeviceCmds, opt.DeviceBlocks, opt.MergeRatio)
	t.Logf("speedup: %.2fx", speedup)
	t.Logf("fsync-appender noplug: %d submitted / %d commands, merge ratio %.2f", noplug.QSubmitted, noplug.QCommands, noplug.MergeRatio)
	t.Logf("fsync-appender plug:   %d submitted / %d commands, merge ratio %.2f (hits %d, timeouts %d)",
		plug.QSubmitted, plug.QCommands, plug.MergeRatio, plug.PlugHits, plug.PlugTimeouts)
	t.Logf("paced-appender fixed:    %d submitted / %d commands, merge ratio %.2f (hits %d, timeouts %d)",
		fixedPaced.QSubmitted, fixedPaced.QCommands, fixedPaced.MergeRatio, fixedPaced.PlugHits, fixedPaced.PlugTimeouts)
	t.Logf("paced-appender adaptive: %d submitted / %d commands, merge ratio %.2f (hits %d, timeouts %d)",
		adaptivePaced.QSubmitted, adaptivePaced.QCommands, adaptivePaced.MergeRatio, adaptivePaced.PlugHits, adaptivePaced.PlugTimeouts)
	if speedup < 2 {
		t.Errorf("async stack speedup %.2fx, want >= 2x", speedup)
	}
	if opt.MergeRatio <= 1 {
		t.Errorf("merge ratio %.2f, want > 1", opt.MergeRatio)
	}
	if plug.MergeRatio < noplug.MergeRatio*1.2 {
		t.Errorf("anticipatory plugging merge ratio %.2f vs %.2f unplugged; want a >=1.2x win for the lone appender",
			plug.MergeRatio, noplug.MergeRatio)
	}
	if fixedPaced.PlugTimeouts == 0 {
		t.Errorf("paced appender under fixed plugging recorded no plug timeouts — the workload no longer exercises the window-expiry path")
	}
	if adaptivePaced.PlugTimeouts*2 > fixedPaced.PlugTimeouts {
		t.Errorf("adaptive plug timeouts = %d vs %d fixed; want at least a 2x drop on the paced lone appender",
			adaptivePaced.PlugTimeouts, fixedPaced.PlugTimeouts)
	}
	if opt.MBps < 0.8*wbPR5BaselineMBps {
		t.Errorf("write-heavy throughput %.2f MB/s is under 80%% of the PR 5 baseline %.2f MB/s — the ordered-writes discipline regressed the hot path",
			opt.MBps, wbPR5BaselineMBps)
	}
}
