package fatfsck_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fat32/fatfsck"
	"protosim/internal/kernel/fs"
)

// mkVolume builds a small synced FAT32 volume: /big.dat spanning three
// clusters, /dir with one file inside.
func mkVolume(t *testing.T) *fs.Ramdisk {
	t.Helper()
	rd := fs.NewRamdisk(fat32.SectorSize, 4096)
	if err := fat32.Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	fsys, err := fat32.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mkdir(nil, "/dir"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/big.dat", "/dir/in.dat"} {
		ops, err := fsys.Open(nil, p, fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		fl := fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly)
		if _, err := fl.Write(nil, make([]byte, 2*fat32.ClusterSize+100)); err != nil {
			t.Fatal(err)
		}
		fl.Close(nil)
	}
	if err := fsys.Sync(nil); err != nil {
		t.Fatal(err)
	}
	return rd
}

func check(t *testing.T, rd *fs.Ramdisk, mode fatfsck.Mode) *fatfsck.Report {
	t.Helper()
	rep, err := fatfsck.Check(rd, mode)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// geometry decodes the boot sector for test surgery.
func geometry(t *testing.T, rd *fs.Ramdisk) (fatStart, dataStart int) {
	t.Helper()
	boot := make([]byte, fat32.SectorSize)
	if err := rd.ReadBlocks(0, 1, boot); err != nil {
		t.Fatal(err)
	}
	reserved := int(binary.LittleEndian.Uint16(boot[14:]))
	return reserved, reserved + int(binary.LittleEndian.Uint32(boot[36:]))
}

// fatPatch rewrites FAT entry c to val directly on disk.
func fatPatch(t *testing.T, rd *fs.Ramdisk, c int, val uint32) {
	t.Helper()
	fatStart, _ := geometry(t, rd)
	sector := fatStart + c*4/fat32.SectorSize
	b := make([]byte, fat32.SectorSize)
	if err := rd.ReadBlocks(sector, 1, b); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[c*4%fat32.SectorSize:], val)
	if err := rd.WriteBlocks(sector, 1, b); err != nil {
		t.Fatal(err)
	}
}

// fatRead returns FAT entry c.
func fatRead(t *testing.T, rd *fs.Ramdisk, c int) uint32 {
	t.Helper()
	fatStart, _ := geometry(t, rd)
	sector := fatStart + c*4/fat32.SectorSize
	b := make([]byte, fat32.SectorSize)
	if err := rd.ReadBlocks(sector, 1, b); err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint32(b[c*4%fat32.SectorSize:]) & 0x0FFFFFFF
}

// expectError asserts corruption mentioning want.
func expectError(t *testing.T, rep *fatfsck.Report, want string) {
	t.Helper()
	if rep.Clean() {
		t.Fatalf("corruption not detected (wanted %q)", want)
	}
	for _, e := range rep.Errors {
		if strings.Contains(e, want) {
			return
		}
	}
	t.Fatalf("errors %v mention nothing about %q", rep.Errors, want)
}

// expectRepairable asserts the finding is a PostCrash warning, a Strict
// error, and gone after Repair.
func expectRepairable(t *testing.T, rd *fs.Ramdisk, want string) {
	t.Helper()
	rep := check(t, rd, fatfsck.PostCrash)
	if !rep.Clean() {
		t.Fatalf("artifact escalated to corruption: %v", rep.Errors)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings %v mention nothing about %q", rep.Warnings, want)
	}
	expectError(t, check(t, rd, fatfsck.Strict), want)
	if rep, err := fatfsck.Repair(rd); err != nil || !rep.Clean() {
		t.Fatalf("repair: %v %v", err, rep.Errors)
	}
	if rep := check(t, rd, fatfsck.Strict); !rep.Clean() {
		t.Fatalf("artifact survived repair: %v", rep.Errors)
	}
}

func TestCleanVolumePasses(t *testing.T) {
	rd := mkVolume(t)
	rep := check(t, rd, fatfsck.Strict)
	if !rep.Clean() || len(rep.Warnings) != 0 {
		t.Fatalf("clean volume flagged: %v %v", rep.Errors, rep.Warnings)
	}
	if rep.Files != 2 || rep.Dirs != 1 {
		t.Fatalf("saw %d files / %d dirs, want 2 / 1", rep.Files, rep.Dirs)
	}
}

func TestLostClustersRepairable(t *testing.T) {
	rd := mkVolume(t)
	// Allocate two clusters nobody references: a crashed unlink's
	// half-freed chain.
	fatPatch(t, rd, 400, 401)
	fatPatch(t, rd, 401, 0x0FFFFFF8)
	expectRepairable(t, rd, "lost clusters")
	if fatRead(t, rd, 400) != 0 || fatRead(t, rd, 401) != 0 {
		t.Fatal("repair did not free the lost clusters")
	}
}

func TestExcessTailClustersRepairable(t *testing.T) {
	rd := mkVolume(t)
	// Extend /big.dat's chain past what its size needs: append's FAT
	// links went durable, the size patch didn't. Find the chain tail by
	// walking from the dirent.
	tail := bigDatTail(t, rd)
	fatPatch(t, rd, tail, 420)
	fatPatch(t, rd, 420, 0x0FFFFFF8)
	expectRepairable(t, rd, "excess tail")
	if fatRead(t, rd, 420) != 0 {
		t.Fatal("repair did not free the excess cluster")
	}
	if fatRead(t, rd, tail) < 0x0FFFFFF8 {
		t.Fatal("repair did not re-terminate the chain")
	}
}

// bigDatTail walks /big.dat's chain and returns its last cluster.
func bigDatTail(t *testing.T, rd *fs.Ramdisk) int {
	t.Helper()
	_, dataStart := geometry(t, rd)
	// Scan the root directory cluster for BIG     DAT.
	buf := make([]byte, fat32.ClusterSize)
	if err := rd.ReadBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i += 32 {
		if string(buf[i:i+11]) == "BIG     DAT" {
			c := int(binary.LittleEndian.Uint16(buf[i+20:]))<<16 | int(binary.LittleEndian.Uint16(buf[i+26:]))
			for {
				next := fatRead(t, rd, c)
				if next >= 0x0FFFFFF8 {
					return c
				}
				c = int(next)
			}
		}
	}
	t.Fatal("/big.dat not found in root")
	return 0
}

func TestDuplicateDirentRepairable(t *testing.T) {
	rd := mkVolume(t)
	_, dataStart := geometry(t, rd)
	// Clone /big.dat's entry under a new name in a free root slot: the
	// rename window where both names are durable.
	buf := make([]byte, fat32.ClusterSize)
	if err := rd.ReadBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	var src []byte
	freeAt := -1
	for i := 0; i < len(buf); i += 32 {
		switch {
		case string(buf[i:i+11]) == "BIG     DAT":
			src = buf[i : i+32]
		case buf[i] == 0 && freeAt < 0:
			freeAt = i
		}
	}
	if src == nil || freeAt < 0 {
		t.Fatal("root layout not as expected")
	}
	copy(buf[freeAt:], src)
	copy(buf[freeAt:freeAt+11], "COPY    DAT")
	// Keep the end-mark invariant: the slot after the clone stays zero.
	if err := rd.WriteBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	expectRepairable(t, rd, "duplicate reference")
	// The first entry (original name) must survive, the clone must not.
	if err := rd.ReadBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[freeAt:freeAt+1]) != "\xe5" {
		t.Fatal("repair did not drop the duplicate entry")
	}
}

func TestStaleFSInfoRepairable(t *testing.T) {
	rd := mkVolume(t)
	fsi := make([]byte, fat32.SectorSize)
	if err := rd.ReadBlocks(1, 1, fsi); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(fsi[488:], 3) // bogus free count
	if err := rd.WriteBlocks(1, 1, fsi); err != nil {
		t.Fatal(err)
	}
	expectRepairable(t, rd, "FSInfo")
}

func TestDirentToFreeClusterIsCorruption(t *testing.T) {
	rd := mkVolume(t)
	// Free /big.dat's first cluster behind its dirent's back — the state
	// ordered writes make impossible (the dirent publish is flushed only
	// after the cluster and FAT landed).
	_, dataStart := geometry(t, rd)
	buf := make([]byte, fat32.ClusterSize)
	if err := rd.ReadBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i += 32 {
		if string(buf[i:i+11]) == "BIG     DAT" {
			c := int(binary.LittleEndian.Uint16(buf[i+20:]))<<16 | int(binary.LittleEndian.Uint16(buf[i+26:]))
			fatPatch(t, rd, c, 0)
			break
		}
	}
	rep := check(t, rd, fatfsck.PostCrash)
	expectError(t, rep, "free")
}

func TestChainLoopIsCorruption(t *testing.T) {
	rd := mkVolume(t)
	tail := bigDatTail(t, rd)
	// Point the tail back at itself.
	fatPatch(t, rd, tail, uint32(tail))
	expectError(t, check(t, rd, fatfsck.PostCrash), "loop")
}

func TestSizeBeyondChainIsCorruption(t *testing.T) {
	rd := mkVolume(t)
	_, dataStart := geometry(t, rd)
	buf := make([]byte, fat32.ClusterSize)
	if err := rd.ReadBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i += 32 {
		if string(buf[i:i+11]) == "BIG     DAT" {
			binary.LittleEndian.PutUint32(buf[i+28:], 100*fat32.ClusterSize)
			break
		}
	}
	if err := rd.WriteBlocks(dataStart, fat32.SectorsPerCluster, buf); err != nil {
		t.Fatal(err)
	}
	expectError(t, check(t, rd, fatfsck.PostCrash), "needs")
}

// orphanPatch writes first-cluster c into slot i of the on-disk orphan
// list (reserved sector 2, fat32/orphan.go).
func orphanPatch(t *testing.T, rd *fs.Ramdisk, slot int, c uint32) {
	t.Helper()
	b := make([]byte, fat32.SectorSize)
	if err := rd.ReadBlocks(2, 1, b); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[slot*4:], c)
	if err := rd.WriteBlocks(2, 1, b); err != nil {
		t.Fatal(err)
	}
}

// TestOrphanedChainCleanAndReclaimable builds the real deferred-reclaim
// state through the filesystem — unlink-while-open, sync, "crash" before
// the last close — and demands that fsck judge it CLEAN even in Strict
// mode (the record is what makes the chain accounted for, like ext4's
// orphan inode list), while Repair reclaims it.
func TestOrphanedChainCleanAndReclaimable(t *testing.T) {
	rd := mkVolume(t)
	fsys, err := fat32.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := fsys.Open(nil, "/loose.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl := fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly)
	if _, err := fl.Write(nil, make([]byte, fat32.ClusterSize+10)); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Unlink(nil, "/loose.bin"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// fl deliberately left open: the volume state is what a crash before
	// the last close leaves behind.
	rep := check(t, rd, fatfsck.Strict)
	if !rep.Clean() {
		t.Fatalf("orphan-recorded chain flagged in Strict mode: %v", rep.Errors)
	}
	rep, err = fatfsck.Repair(rd)
	if err != nil || !rep.Clean() {
		t.Fatalf("repair: %v %v", err, rep.Errors)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "orphan list") {
			found = true
		}
	}
	if !found {
		t.Fatalf("repair warnings %v mention nothing about the orphan list", rep.Warnings)
	}
	if rep := check(t, rd, fatfsck.Strict); !rep.Clean() {
		t.Fatalf("volume not clean after orphan reclaim: %v", rep.Errors)
	}
}

func TestOrphanRecordToFreeClusterRepairable(t *testing.T) {
	rd := mkVolume(t)
	orphanPatch(t, rd, 0, 450) // cluster 450 is free
	expectRepairable(t, rd, "already free")
}

func TestOrphanRecordToReachableChainRepairable(t *testing.T) {
	rd := mkVolume(t)
	orphanPatch(t, rd, 3, 2) // the root directory itself
	expectRepairable(t, rd, "reachable from a dirent")
}

func TestOrphanRecordOutOfRangeRepairable(t *testing.T) {
	rd := mkVolume(t)
	orphanPatch(t, rd, 7, 0x0FFFFFF0)
	expectRepairable(t, rd, "out of range")
}
