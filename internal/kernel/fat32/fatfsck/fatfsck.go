// Package fatfsck is an fsck.fat-style checker and repairer for the
// FAT32 volumes internal/kernel/fat32 produces — the verification half
// of the crash-injection harness for the ordered-writes filesystem. Like
// xfsck it decodes the on-disk format independently (its own boot
// sector, FAT and dirent readers), so the filesystem cannot misread its
// own corruption into a pass.
//
// FAT32 has no journal; the ordered-writes discipline only promises that
// a crash leaves the volume REPAIRABLE, not clean. The artifacts the
// ordering is designed to bound — and that Repair fixes, exactly as
// fsck.fat would — are:
//
//   - lost clusters: allocated in the FAT but reachable from no
//     directory entry (a crash between an unlink's durable dirent
//     removal and its chain walk, or mid-freeChain);
//   - excess tail clusters: a chain longer than the published file size
//     needs (append's FAT links go durable before the size patch, and
//     truncate publishes size 0 before freeing);
//   - duplicate references: two directory entries naming one chain (the
//     window between rename's durable publish of the new entry and the
//     removal of the old one);
//   - a stale FSInfo sector (free count and next-free hint are only
//     rewritten on Sync).
//
// Everything else — a dirent pointing at a free or out-of-range cluster,
// a chain that runs through a free entry or loops, a published size
// exceeding its chain, genuine mid-chain cross-links — is corruption the
// ordering discipline exists to prevent, and stays an error in BOTH
// modes: Strict reports the repairable artifacts as errors too (right
// for a volume that was cleanly synced or already repaired), PostCrash
// downgrades exactly the four artifact classes above to warnings.
package fatfsck

import (
	"encoding/binary"
	"fmt"

	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
)

// Mode selects how the tolerated post-crash artifacts are judged.
type Mode int

const (
	// Strict treats every inconsistency, including repairable post-crash
	// artifacts, as an error.
	Strict Mode = iota
	// PostCrash downgrades the artifact classes the ordered-writes
	// discipline deliberately tolerates (lost clusters, excess tails,
	// duplicate dirent references, stale FSInfo) to warnings.
	PostCrash
)

const (
	sectorSize        = fat32.SectorSize
	sectorsPerCluster = fat32.SectorsPerCluster
	clusterSize       = fat32.ClusterSize
	direntSize        = 32
	fatEntrySize      = 4
	rootCluster       = 2
)

// FAT entry semantics (28-bit entries, top nibble reserved).
const (
	entMask = 0x0FFFFFFF
	entFree = 0
	entEOC  = 0x0FFFFFF8 // values >= this terminate a chain
)

const (
	fsInfoSector    = 1
	fsInfoLeadSig   = 0x41615252
	fsInfoStructSig = 0x61417272

	// orphanSector is the reserved sector holding the deferred-reclaim
	// orphan list: uint32 first-cluster slots, 0 = empty (fat32/orphan.go).
	orphanSector = 2
)

const (
	attrDir = 0x10
)

// Report is the outcome of one Check or Repair run.
type Report struct {
	// Errors are corruption findings.
	Errors []string
	// Warnings are tolerated post-crash artifacts (PostCrash mode), or —
	// from Repair — descriptions of what was repaired.
	Warnings []string
	// Files and Dirs count live directory entries seen on the walk.
	Files, Dirs int
	// UsedClusters counts FAT entries that are neither free nor the two
	// reserved head entries; FreeFAT is the free count the FAT implies;
	// FreeFSInfo is the count the FSInfo sector advertises (-1 invalid).
	UsedClusters, FreeFAT, FreeFSInfo int
}

// Clean reports whether the volume passed: no corruption found.
func (r *Report) Clean() bool { return len(r.Errors) == 0 }

// String renders the report for test logs.
func (r *Report) String() string {
	return fmt.Sprintf("fatfsck: %d files, %d dirs, %d used clusters, %d errors, %d warnings",
		r.Files, r.Dirs, r.UsedClusters, len(r.Errors), len(r.Warnings))
}

// volume is one parsed image held in memory.
type volume struct {
	img      []byte
	fatStart int // sector
	fatSecs  int
	dataSt   int // sector of cluster 2
	clusters int // valid cluster numbers are [2, 2+clusters)
	rep      *Report
	mode     Mode
}

func (v *volume) errf(format string, args ...any) {
	v.rep.Errors = append(v.rep.Errors, fmt.Sprintf(format, args...))
}

// flag records a repairable artifact: a warning in PostCrash mode, an
// error in Strict mode.
func (v *volume) flag(format string, args ...any) {
	if v.mode == PostCrash {
		v.rep.Warnings = append(v.rep.Warnings, fmt.Sprintf(format, args...))
	} else {
		v.errf(format, args...)
	}
}

func (v *volume) sector(s int) []byte {
	return v.img[s*sectorSize : (s+1)*sectorSize]
}

func (v *volume) fatGet(c int) uint32 {
	off := v.fatStart*sectorSize + c*fatEntrySize
	return binary.LittleEndian.Uint32(v.img[off:]) & entMask
}

func (v *volume) fatSet(c int, val uint32) {
	off := v.fatStart*sectorSize + c*fatEntrySize
	binary.LittleEndian.PutUint32(v.img[off:], val&entMask)
}

func (v *volume) validCluster(c int) bool {
	return c >= rootCluster && c < rootCluster+v.clusters
}

// load parses the boot sector and pulls the image into memory.
func load(dev fs.BlockDevice, mode Mode) (*volume, error) {
	if dev.BlockSize() != sectorSize {
		return nil, fmt.Errorf("fatfsck: device sector size %d, want %d", dev.BlockSize(), sectorSize)
	}
	img := make([]byte, dev.Blocks()*sectorSize)
	if err := dev.ReadBlocks(0, dev.Blocks(), img); err != nil {
		return nil, err
	}
	v := &volume{img: img, rep: &Report{FreeFSInfo: -1}, mode: mode}
	boot := v.sector(0)
	if boot[510] != 0x55 || boot[511] != 0xAA || string(boot[3:11]) != "PROTOFAT" {
		v.errf("boot sector: bad signature")
		return v, nil
	}
	reserved := int(binary.LittleEndian.Uint16(boot[14:]))
	total := int(binary.LittleEndian.Uint32(boot[32:]))
	v.fatSecs = int(binary.LittleEndian.Uint32(boot[36:]))
	v.fatStart = reserved
	v.dataSt = reserved + v.fatSecs
	v.clusters = (total - v.dataSt) / sectorsPerCluster
	if total*sectorSize > len(img) || v.clusters < 1 || reserved < 2 ||
		(rootCluster+v.clusters)*fatEntrySize > v.fatSecs*sectorSize {
		v.errf("boot sector: inconsistent geometry (total=%d fat=%d reserved=%d)", total, v.fatSecs, reserved)
		return v, nil
	}
	return v, nil
}

// Check verifies the FAT32 image on dev without modifying it.
func Check(dev fs.BlockDevice, mode Mode) (*Report, error) {
	v, err := load(dev, mode)
	if err != nil {
		return nil, err
	}
	if len(v.rep.Errors) == 0 {
		v.check(false)
	}
	return v.rep, nil
}

// Repair checks the image and fixes every repairable post-crash
// artifact in place on dev — removing duplicate directory references,
// truncating excess tail clusters, freeing lost clusters and rewriting
// the FSInfo sector — then writes the repaired image back. After a
// successful Repair, Check in Strict mode passes unless the volume has
// genuine (unrepairable) corruption, which stays in the report's
// Errors. The Warnings list what was repaired.
func Repair(dev fs.BlockDevice) (*Report, error) {
	v, err := load(dev, PostCrash)
	if err != nil {
		return nil, err
	}
	if len(v.rep.Errors) == 0 {
		v.check(true)
		if err := dev.WriteBlocks(0, len(v.img)/sectorSize, v.img); err != nil {
			return nil, err
		}
	}
	return v.rep, nil
}

// check walks the tree and the FAT, recording findings; with repair set
// it also fixes the repairable ones in v.img.
func (v *volume) check(repair bool) {
	// claims maps cluster -> first cluster of the chain that owns it.
	claims := make(map[int]int)
	v.walkDir(rootCluster, claims, repair)

	// Orphan list: chains unlinked while still open, durably recorded so
	// the next mount reclaims them. A recorded chain is legitimately
	// allocated-but-unreachable — claim it so the lost-cluster sweep
	// below doesn't flag it; Repair reclaims it the way a mount would.
	v.checkOrphans(claims, repair)

	// FAT sweep: reserved head entries, lost clusters, free count.
	if e := v.fatGet(0); e < entEOC {
		v.errf("FAT[0]: media entry %#x not reserved", e)
	}
	if e := v.fatGet(1); e < entEOC {
		v.errf("FAT[1]: reserved entry %#x clear", e)
	}
	lost := 0
	for c := rootCluster; c < rootCluster+v.clusters; c++ {
		e := v.fatGet(c)
		if e == entFree {
			v.rep.FreeFAT++
			continue
		}
		v.rep.UsedClusters++
		if _, ok := claims[c]; !ok {
			lost++
			if repair {
				v.fatSet(c, entFree)
				v.rep.FreeFAT++
				v.rep.UsedClusters--
			}
		}
	}
	if lost > 0 {
		v.flag("%d lost clusters (allocated but unreachable)", lost)
		if repair {
			v.rep.Warnings = append(v.rep.Warnings, fmt.Sprintf("repair: freed %d lost clusters", lost))
		}
	}

	// FSInfo agreement.
	fsi := v.sector(fsInfoSector)
	if binary.LittleEndian.Uint32(fsi[0:]) == fsInfoLeadSig &&
		binary.LittleEndian.Uint32(fsi[484:]) == fsInfoStructSig &&
		fsi[510] == 0x55 && fsi[511] == 0xAA {
		v.rep.FreeFSInfo = int(binary.LittleEndian.Uint32(fsi[488:]))
	}
	if v.rep.FreeFSInfo != v.rep.FreeFAT {
		v.flag("FSInfo free count %d, FAT says %d", v.rep.FreeFSInfo, v.rep.FreeFAT)
	}
	if repair {
		binary.LittleEndian.PutUint32(fsi[0:], fsInfoLeadSig)
		binary.LittleEndian.PutUint32(fsi[484:], fsInfoStructSig)
		binary.LittleEndian.PutUint32(fsi[488:], uint32(v.rep.FreeFAT))
		binary.LittleEndian.PutUint32(fsi[492:], rootCluster+1)
		fsi[510], fsi[511] = 0x55, 0xAA
		v.rep.FreeFSInfo = v.rep.FreeFAT
	}
}

// checkOrphans validates the deferred-reclaim records in the orphan
// sector. Sound records claim their chains (they are consistent state,
// clean even in Strict mode — the record IS what makes the chain
// accounted for); anomalous ones — out-of-range, already free, or
// naming a chain a dirent also reaches — are repairable artifacts whose
// fix is dropping the record. With repair set, sound chains are freed
// and the list emptied, exactly what the next mount's scan would do.
func (v *volume) checkOrphans(claims map[int]int, repair bool) {
	if v.fatStart <= orphanSector {
		return // no orphan sector in this layout
	}
	sec := v.sector(orphanSector)
	reclaimed := 0
	for i := 0; i < sectorSize/fatEntrySize; i++ {
		c := int(binary.LittleEndian.Uint32(sec[i*fatEntrySize:]))
		if c == 0 {
			continue
		}
		_, dup := claims[c]
		drop := true
		switch {
		case !v.validCluster(c):
			v.flag("orphan record %d: cluster %d out of range", i, c)
		case v.fatGet(c) == entFree:
			v.flag("orphan record %d: cluster %d already free", i, c)
		case dup:
			v.flag("orphan record %d: cluster %d reachable from a dirent", i, c)
		default:
			chain := v.claimChain(c, fmt.Sprintf("orphan chain %d", c), claims)
			if repair {
				for _, cc := range chain {
					v.fatSet(cc, entFree)
				}
				reclaimed += len(chain)
			} else {
				drop = false
			}
		}
		if repair && drop {
			binary.LittleEndian.PutUint32(sec[i*fatEntrySize:], 0)
		}
	}
	if repair && reclaimed > 0 {
		v.rep.Warnings = append(v.rep.Warnings,
			fmt.Sprintf("repair: reclaimed %d clusters from the orphan list", reclaimed))
	}
}

// chain follows the FAT from first, validating as it goes. Returns the
// clusters it traversed (possibly truncated at a fatal finding).
func (v *volume) chain(first int, what string) []int {
	var out []int
	seen := make(map[int]bool)
	c := first
	for {
		if !v.validCluster(c) {
			v.errf("%s: chain link to invalid cluster %d", what, c)
			return out
		}
		if seen[c] {
			v.errf("%s: chain loops at cluster %d", what, c)
			return out
		}
		seen[c] = true
		out = append(out, c)
		e := v.fatGet(c)
		if e == entFree {
			v.errf("%s: chain runs through free cluster %d", what, c)
			return out
		}
		if e >= entEOC {
			return out
		}
		c = int(e)
	}
}

// walkDir scans the directory whose chain starts at dirCluster,
// claiming its own chain and every child's, recursing into
// subdirectories. Mirrors the filesystem's scan semantics: an end-mark
// entry (name[0] == 0) stops the whole scan.
func (v *volume) walkDir(dirCluster int, claims map[int]int, repair bool) {
	dirChain := v.claimChain(dirCluster, fmt.Sprintf("directory cluster %d", dirCluster), claims)
	for _, c := range dirChain {
		base := v.dataSt + (c-rootCluster)*sectorsPerCluster
		for i := 0; i < clusterSize/direntSize; i++ {
			off := base*sectorSize + i*direntSize
			ent := v.img[off : off+direntSize]
			if ent[0] == 0 {
				return // end mark
			}
			if ent[0] == 0xE5 {
				continue // deleted
			}
			first := int(binary.LittleEndian.Uint16(ent[20:]))<<16 | int(binary.LittleEndian.Uint16(ent[26:]))
			size := binary.LittleEndian.Uint32(ent[28:])
			name := direntName(ent)
			if !v.validCluster(first) {
				v.errf("dirent %q: first cluster %d out of range", name, first)
				continue
			}
			if v.fatGet(first) == entFree {
				v.errf("dirent %q: first cluster %d is free", name, first)
				continue
			}
			if owner, dup := claims[first]; dup && owner == first {
				// A second dirent naming an already-claimed chain head:
				// rename's tolerated window (new entry durable, old
				// removal not). Repair drops the later reference.
				v.flag("dirent %q: duplicate reference to cluster %d", name, first)
				if repair {
					v.img[off] = 0xE5
					v.rep.Warnings = append(v.rep.Warnings,
						fmt.Sprintf("repair: dropped duplicate dirent %q (cluster %d)", name, first))
				}
				continue
			}
			if ent[11]&attrDir != 0 {
				v.rep.Dirs++
				v.walkDir(first, claims, repair)
				continue
			}
			v.rep.Files++
			chain := v.claimChain(first, fmt.Sprintf("file %q", name), claims)
			need := (int(size) + clusterSize - 1) / clusterSize
			if need == 0 {
				need = 1 // zero-size files keep their first cluster
			}
			if need > len(chain) {
				v.errf("file %q: size %d needs %d clusters, chain has %d", name, size, need, len(chain))
			} else if need < len(chain) {
				v.flag("file %q: %d excess tail clusters beyond size %d", name, len(chain)-need, size)
				if repair {
					v.fatSet(chain[need-1], entEOC)
					for _, tc := range chain[need:] {
						v.fatSet(tc, entFree)
					}
					v.rep.Warnings = append(v.rep.Warnings,
						fmt.Sprintf("repair: truncated %d excess clusters off %q", len(chain)-need, name))
				}
			}
		}
	}
}

// claimChain walks and claims a chain, flagging genuine mid-chain
// cross-links (a cluster owned by a DIFFERENT chain) as corruption.
func (v *volume) claimChain(first int, what string, claims map[int]int) []int {
	chain := v.chain(first, what)
	for _, c := range chain {
		if owner, dup := claims[c]; dup {
			if owner != first {
				v.errf("%s: cluster %d cross-linked with chain %d", what, c, owner)
			}
			continue
		}
		claims[c] = first
	}
	return chain
}

// direntName renders an 8.3 name for reports.
func direntName(ent []byte) string {
	base, ext := "", ""
	for i := 0; i < 8 && ent[i] != ' '; i++ {
		base += string(rune(ent[i]))
	}
	for i := 8; i < 11 && ent[i] != ' '; i++ {
		ext += string(rune(ent[i]))
	}
	if ext != "" {
		return base + "." + ext
	}
	return base
}
