package fat32

import (
	"encoding/binary"

	"protosim/internal/kernel/sched"
)

// On-disk orphan-cluster list (reserved sector 2).
//
// Unlinking a file that other descriptors still hold open defers the
// chain reclaim to the last close (see disownPI/unpin). That deferral
// used to live only in memory: an unmount — or a crash — before the last
// close forgot the pending reclaim entirely, and the chain leaked until
// an fsck repair happened to run. The orphan list is the durable record
// of those pending reclaims, the FAT-flavored analogue of ext4's orphan
// inode list and of xv6fs's on-disk orphan table: one reserved sector of
// uint32 first-cluster slots (0 = empty), maintained with the same
// ordered-writes discipline as everything else on the volume —
//
//   - a record is ADDED (durably) only after the unlink's dirent removal
//     is durable, so a record always names an unreachable chain;
//   - a record is CLEARED (durably) before its chain is freed, so no
//     crash leaves a record pointing at freed — possibly reallocated —
//     clusters. The tolerated crash artifact in both directions is a
//     leaked chain, exactly what fsck repair already reclaims.
//
// Mount scans the list, frees every recorded chain, and zeroes the
// sector, so pending reclaims survive remounts instead of leaking.

const (
	orphanSector = 2
	orphanSlots  = SectorSize / fatEntrySize
)

// orphanListUsable reports whether the volume's reserved region actually
// contains the orphan sector. MountWith accepts foreign/legacy images with
// reserved as small as 1, where sector 2 is FAT (or data): writing orphan
// records there would corrupt cluster chains. Such volumes degrade to the
// old in-memory-only deferral — an unmount before the last close leaks the
// chain to fsck repair, as before the orphan list existed.
func (f *FS) orphanListUsable() bool { return f.fatStart > orphanSector }

// orphanAdd durably records first-cluster c as awaiting deferred
// reclaim. Called from disownPI after the dirent removal is durable;
// fatLock serializes slot claims. A full list is not an error — the
// chain just reverts to being an fsck-repairable leak if the volume is
// unmounted before the last close.
func (f *FS) orphanAdd(t *sched.Task, c uint32) error {
	if !f.orphanListUsable() {
		return nil
	}
	f.fatLock.Lock(t)
	defer f.fatLock.Unlock()
	b, err := f.bc.Get(t, orphanSector)
	if err != nil {
		return err
	}
	slot := -1
	for i := 0; i < orphanSlots; i++ {
		if binary.LittleEndian.Uint32(b.Data[i*fatEntrySize:]) == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		f.bc.Release(b)
		return nil
	}
	binary.LittleEndian.PutUint32(b.Data[slot*fatEntrySize:], c)
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return f.orderedFlush(t, orphanSector)
}

// orphanClear durably retires c's record. Called from unpin BEFORE the
// chain is freed: a crash between the clear and the free leaves a
// leaked (repairable) chain, never a record over freed clusters. A
// missing record (list was full at add time) is fine.
func (f *FS) orphanClear(t *sched.Task, c uint32) error {
	if !f.orphanListUsable() {
		return nil
	}
	f.fatLock.Lock(t)
	defer f.fatLock.Unlock()
	b, err := f.bc.Get(t, orphanSector)
	if err != nil {
		return err
	}
	found := false
	for i := 0; i < orphanSlots; i++ {
		if binary.LittleEndian.Uint32(b.Data[i*fatEntrySize:]) == c {
			binary.LittleEndian.PutUint32(b.Data[i*fatEntrySize:], 0)
			found = true
			break
		}
	}
	if !found {
		f.bc.Release(b)
		return nil
	}
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return f.orderedFlush(t, orphanSector)
}

// orphanScan runs at mount: reclaim every recorded chain, then zero the
// list. The sector is zeroed (durably) before the chains are freed —
// the same leak-not-corruption direction as orphanClear. Records that
// fail validation (out of range, or pointing at an already-free entry)
// are dropped; they cannot arise from this code's crash windows, but a
// scan must never turn a bad record into a freeChain of live data.
func (f *FS) orphanScan(t *sched.Task) error {
	b, err := f.bc.Get(t, orphanSector)
	if err != nil {
		return err
	}
	var pending []uint32
	for i := 0; i < orphanSlots; i++ {
		if c := binary.LittleEndian.Uint32(b.Data[i*fatEntrySize:]); c != 0 {
			pending = append(pending, c)
			binary.LittleEndian.PutUint32(b.Data[i*fatEntrySize:], 0)
		}
	}
	if len(pending) == 0 {
		f.bc.Release(b)
		return nil
	}
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	if err := f.bc.FlushBlocks(t, []int{orphanSector}, true); err != nil {
		return err
	}
	for _, c := range pending {
		if c < rootCluster || c >= uint32(f.clusters)+rootCluster {
			continue
		}
		v, err := f.fatGet(t, c)
		if err != nil {
			return err
		}
		if v == freeClust {
			continue
		}
		if err := f.freeChain(t, c); err != nil {
			return err
		}
	}
	return nil
}
