// Device-fault behaviour of the mounted FAT32 volume: a failed ordered
// publish barrier or device death latches the mount read-only with a
// typed cause, mutating entry points fail ErrReadOnly, reads survive.
package fat32

import (
	"errors"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
)

// faultMount mounts a fresh FAT32 over a FaultDisk routed through a
// request queue — the production fault-model stack.
func faultMount(t *testing.T) (*FS, *hw.FaultDisk) {
	t.Helper()
	rd := fs.NewRamdisk(SectorSize, 4096)
	if err := Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	fd := hw.NewFaultDisk(rd, hw.FaultPlan{Seed: 1})
	q := blkq.New(fd, blkq.Options{Async: fd, PlugDelay: -1})
	fd.SetNotify(func() { q.CompletionIRQ() })
	f, err := Mount(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, fd
}

// TestDeviceDeathRemountsReadOnly: after the device dies, the first
// ordered barrier latches the mount read-only; mutations fail typed,
// cached reads keep serving.
func TestDeviceDeathRemountsReadOnly(t *testing.T) {
	f, fd := faultMount(t)
	fl, err := openOF(f, "/data.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte("before death")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}

	fd.Kill()
	// The next create needs an ordered flush of the fresh cluster and its
	// FAT entry — which the dead device refuses.
	if _, err := openOF(f, "/new.bin", fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("create on dead device = %v, want ErrDeviceDead", err)
	}
	if degraded, ro, cause := f.Health(); !degraded || !ro || !errors.Is(cause, fs.ErrDeviceDead) {
		t.Fatalf("Health = (%v, %v, %v), want (true, true, ErrDeviceDead)", degraded, ro, cause)
	}

	if _, err := openOF(f, "/other.bin", fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("create on RO mount = %v, want ErrReadOnly", err)
	}
	if err := f.Mkdir(nil, "/d"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Mkdir on RO mount = %v, want ErrReadOnly", err)
	}
	if err := f.Unlink(nil, "/data.bin"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Unlink on RO mount = %v, want ErrReadOnly", err)
	}
	if err := f.Rename(nil, "/data.bin", "/moved.bin"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Rename on RO mount = %v, want ErrReadOnly", err)
	}
	if _, err := fl.Write(nil, []byte("more")); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("write on RO mount = %v, want ErrReadOnly", err)
	}
	got := make([]byte, 32)
	rfl, err := openOF(f, "/data.bin", fs.ORdOnly)
	if err != nil {
		t.Fatalf("read-only open on RO mount = %v", err)
	}
	if n, err := rfl.Read(nil, got); err != nil || string(got[:n]) != "before death" {
		t.Fatalf("read on RO mount = %q, %v", got[:n], err)
	}
}

// TestBadSectorPublishLatchesReadOnly: a persistent media error under an
// ordered publish barrier — not whole-device death — is durability loss
// for the structure about to be published, and must latch read-only too.
func TestBadSectorPublishLatchesReadOnly(t *testing.T) {
	f, fd := faultMount(t)
	// Warm the cache over the healthy device first: the FAT sector must be
	// resident so the failure lands on the publish WRITE, not the lookup's
	// read (read errors degrade nothing — the data is still on disk).
	warm, err := openOF(f, "/warm.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	warm.Close(nil)
	// The next allocation's FAT entry lives in the first FAT sector, which
	// createInDir's ordered barrier must flush — onto the bad sector.
	fd.AddBadSector(f.fatSector(3))
	if _, err := openOF(f, "/new.bin", fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrBadSector) {
		t.Fatalf("create over bad FAT sector = %v, want ErrBadSector", err)
	}
	if _, ro, cause := f.Health(); !ro || !errors.Is(cause, fs.ErrBadSector) {
		t.Fatalf("Health = (ro=%v, cause=%v), want latched ErrBadSector", ro, cause)
	}
	if err := f.Mkdir(nil, "/d"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Mkdir after latch = %v, want ErrReadOnly", err)
	}
}
