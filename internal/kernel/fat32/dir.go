package fat32

import (
	"bytes"
	"encoding/binary"
	"strings"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// dirent83 is one 32-byte FAT directory entry (8.3, no LFN — Proto's asset
// names fit; see package comment).
type dirent83 struct {
	name    [11]byte // "NAME    EXT"
	attr    byte
	cluster uint32
	size    uint32
}

func (d *dirent83) encode(b []byte) {
	copy(b[0:11], d.name[:])
	b[11] = d.attr
	binary.LittleEndian.PutUint16(b[20:], uint16(d.cluster>>16))
	binary.LittleEndian.PutUint16(b[26:], uint16(d.cluster&0xFFFF))
	binary.LittleEndian.PutUint32(b[28:], d.size)
}

func (d *dirent83) decode(b []byte) {
	copy(d.name[:], b[0:11])
	d.attr = b[11]
	d.cluster = uint32(binary.LittleEndian.Uint16(b[20:]))<<16 | uint32(binary.LittleEndian.Uint16(b[26:]))
	d.size = binary.LittleEndian.Uint32(b[28:])
}

func (d *dirent83) free() bool    { return d.name[0] == 0 || d.name[0] == 0xE5 }
func (d *dirent83) endMark() bool { return d.name[0] == 0 }

// to83 converts "doom1.wad" to "DOOM1   WAD". Returns false for names that
// don't fit 8.3.
func to83(name string) ([11]byte, bool) {
	var out [11]byte
	for i := range out {
		out[i] = ' '
	}
	name = strings.ToUpper(name)
	base, ext := name, ""
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		base, ext = name[:i], name[i+1:]
	}
	if base == "" || len(base) > 8 || len(ext) > 3 || strings.ContainsAny(name, " /\\") {
		return out, false
	}
	copy(out[0:8], base)
	copy(out[8:11], ext)
	return out, true
}

// from83 converts "DOOM1   WAD" back to "doom1.wad".
func from83(raw [11]byte) string {
	base := strings.TrimRight(string(raw[0:8]), " ")
	ext := strings.TrimRight(string(raw[8:11]), " ")
	s := base
	if ext != "" {
		s += "." + ext
	}
	return strings.ToLower(s)
}

// direntRef locates an entry inside a directory chain.
type direntRef struct {
	cluster uint32 // cluster holding the entry
	index   int    // entry index within the cluster
}

// scanDir iterates a directory chain, calling fn for each live entry.
// fn returning false stops the scan.
func (f *FS) scanDir(t *sched.Task, dirCluster uint32, fn func(de *dirent83, ref direntRef) bool) error {
	clusters, err := f.chain(t, dirCluster)
	if err != nil {
		return err
	}
	buf := make([]byte, ClusterSize)
	for _, c := range clusters {
		if err := f.readClusterCached(t, c, buf); err != nil {
			return err
		}
		for i := 0; i < ClusterSize/direntSize; i++ {
			var de dirent83
			de.decode(buf[i*direntSize:])
			if de.endMark() {
				return nil
			}
			if de.free() {
				continue
			}
			if !fn(&de, direntRef{cluster: c, index: i}) {
				return nil
			}
		}
	}
	return nil
}

// lookup finds name in the directory starting at dirCluster.
func (f *FS) lookup(t *sched.Task, dirCluster uint32, name string) (*dirent83, direntRef, error) {
	want, ok := to83(name)
	if !ok {
		return nil, direntRef{}, fs.ErrNameTooLong
	}
	var found *dirent83
	var ref direntRef
	err := f.scanDir(t, dirCluster, func(de *dirent83, r direntRef) bool {
		if bytes.Equal(de.name[:], want[:]) {
			cp := *de
			found, ref = &cp, r
			return false
		}
		return true
	})
	if err != nil {
		return nil, direntRef{}, err
	}
	if found == nil {
		return nil, direntRef{}, fs.ErrNotFound
	}
	return found, ref, nil
}

// writeDirent stores de at ref.
func (f *FS) writeDirent(t *sched.Task, ref direntRef, de *dirent83) error {
	buf := make([]byte, ClusterSize)
	if err := f.readClusterCached(t, ref.cluster, buf); err != nil {
		return err
	}
	de.encode(buf[ref.index*direntSize:])
	return f.writeClusterCached(t, ref.cluster, buf)
}

// addDirent appends an entry to a directory, extending the chain when full.
func (f *FS) addDirent(t *sched.Task, dirCluster uint32, de *dirent83) error {
	clusters, err := f.chain(t, dirCluster)
	if err != nil {
		return err
	}
	buf := make([]byte, ClusterSize)
	for _, c := range clusters {
		if err := f.readClusterCached(t, c, buf); err != nil {
			return err
		}
		for i := 0; i < ClusterSize/direntSize; i++ {
			var cur dirent83
			cur.decode(buf[i*direntSize:])
			if cur.free() {
				de.encode(buf[i*direntSize:])
				return f.writeClusterCached(t, c, buf)
			}
		}
	}
	// Directory full: grow the chain.
	nc, err := f.allocCluster(t, true)
	if err != nil {
		return err
	}
	last := clusters[len(clusters)-1]
	if err := f.fatSet(t, last, nc); err != nil {
		return err
	}
	if err := f.readClusterCached(t, nc, buf); err != nil {
		return err
	}
	de.encode(buf[0:])
	return f.writeClusterCached(t, nc, buf)
}

// removeDirent marks an entry deleted (0xE5).
func (f *FS) removeDirent(t *sched.Task, ref direntRef) error {
	buf := make([]byte, ClusterSize)
	if err := f.readClusterCached(t, ref.cluster, buf); err != nil {
		return err
	}
	buf[ref.index*direntSize] = 0xE5
	return f.writeClusterCached(t, ref.cluster, buf)
}

// walk resolves a cleaned absolute path to its directory entry. The root
// has no dirent; rootDe() fakes one.
func (f *FS) walk(t *sched.Task, path string) (*dirent83, direntRef, error) {
	path = fs.Clean(path)
	if path == "/" {
		return rootDe(), direntRef{}, nil
	}
	cur := uint32(rootCluster)
	segs := strings.Split(path[1:], "/")
	for i, seg := range segs {
		de, ref, err := f.lookup(t, cur, seg)
		if err != nil {
			return nil, direntRef{}, err
		}
		if i == len(segs)-1 {
			return de, ref, nil
		}
		if de.attr&attrDir == 0 {
			return nil, direntRef{}, fs.ErrNotDir
		}
		cur = de.cluster
	}
	return nil, direntRef{}, fs.ErrNotFound
}

func rootDe() *dirent83 {
	return &dirent83{attr: attrDir, cluster: rootCluster}
}

// parentCluster resolves the directory containing path's final element.
func (f *FS) parentCluster(t *sched.Task, path string) (uint32, string, error) {
	dir, name := fs.SplitPath(path)
	if name == "" {
		return 0, "", fs.ErrPerm
	}
	de, _, err := f.walk(t, dir)
	if err != nil {
		return 0, "", err
	}
	if de.attr&attrDir == 0 {
		return 0, "", fs.ErrNotDir
	}
	return de.cluster, name, nil
}
