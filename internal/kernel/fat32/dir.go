package fat32

import (
	"bytes"
	"encoding/binary"
	"strings"

	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// dirent83 is one 32-byte FAT directory entry (8.3, no LFN — Proto's asset
// names fit; see package comment).
type dirent83 struct {
	name    [11]byte // "NAME    EXT"
	attr    byte
	cluster uint32
	size    uint32
}

func (d *dirent83) encode(b []byte) {
	copy(b[0:11], d.name[:])
	b[11] = d.attr
	binary.LittleEndian.PutUint16(b[20:], uint16(d.cluster>>16))
	binary.LittleEndian.PutUint16(b[26:], uint16(d.cluster&0xFFFF))
	binary.LittleEndian.PutUint32(b[28:], d.size)
}

func (d *dirent83) decode(b []byte) {
	copy(d.name[:], b[0:11])
	d.attr = b[11]
	d.cluster = uint32(binary.LittleEndian.Uint16(b[20:]))<<16 | uint32(binary.LittleEndian.Uint16(b[26:]))
	d.size = binary.LittleEndian.Uint32(b[28:])
}

func (d *dirent83) free() bool    { return d.name[0] == 0 || d.name[0] == 0xE5 }
func (d *dirent83) endMark() bool { return d.name[0] == 0 }

// to83 converts "doom1.wad" to "DOOM1   WAD". Returns false for names that
// don't fit 8.3.
func to83(name string) ([11]byte, bool) {
	var out [11]byte
	for i := range out {
		out[i] = ' '
	}
	name = strings.ToUpper(name)
	base, ext := name, ""
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		base, ext = name[:i], name[i+1:]
	}
	if base == "" || len(base) > 8 || len(ext) > 3 || strings.ContainsAny(name, " /\\") {
		return out, false
	}
	copy(out[0:8], base)
	copy(out[8:11], ext)
	return out, true
}

// from83 converts "DOOM1   WAD" back to "doom1.wad".
func from83(raw [11]byte) string {
	base := strings.TrimRight(string(raw[0:8]), " ")
	ext := strings.TrimRight(string(raw[8:11]), " ")
	s := base
	if ext != "" {
		s += "." + ext
	}
	return strings.ToLower(s)
}

// direntRef locates an entry inside a directory chain.
type direntRef struct {
	cluster uint32 // cluster holding the entry
	index   int    // entry index within the cluster
}

// direntLoc maps ref to its device sector and intra-sector byte offset. A
// 32-byte entry never straddles a 512-byte sector.
func (f *FS) direntLoc(ref direntRef) (sector, off int) {
	byteOff := ref.index * direntSize
	return f.clusterSector(ref.cluster) + byteOff/SectorSize, byteOff % SectorSize
}

// patchDirent read-modify-writes the single SECTOR holding ref's entry
// under that sector's buffer sleeplock. This is the one way directory
// entries are mutated: sector granularity makes a file's size update
// (under its own file lock) atomic against a concurrent create or unlink
// patching a different entry of the same directory cluster — no
// whole-cluster read-modify-write can lose either update.
func (f *FS) patchDirent(t *sched.Task, ref direntRef, fn func(entry []byte)) error {
	sector, off := f.direntLoc(ref)
	b, err := f.bc.Get(t, sector)
	if err != nil {
		return err
	}
	fn(b.Data[off : off+direntSize])
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return nil
}

// scanDir iterates a directory chain, calling fn for each live entry.
// fn returning false stops the scan. Caller holds the directory's
// pseudo-inode lock.
func (f *FS) scanDir(t *sched.Task, dirCluster uint32, fn func(de *dirent83, ref direntRef) bool) error {
	clusters, err := f.chain(t, dirCluster)
	if err != nil {
		return err
	}
	buf := make([]byte, ClusterSize)
	for _, c := range clusters {
		if err := f.readClusterCached(t, c, buf); err != nil {
			return err
		}
		for i := 0; i < ClusterSize/direntSize; i++ {
			var de dirent83
			de.decode(buf[i*direntSize:])
			if de.endMark() {
				return nil
			}
			if de.free() {
				continue
			}
			if !fn(&de, direntRef{cluster: c, index: i}) {
				return nil
			}
		}
	}
	return nil
}

// lookup finds name in the directory starting at dirCluster. Caller holds
// the directory's pseudo-inode lock.
func (f *FS) lookup(t *sched.Task, dirCluster uint32, name string) (*dirent83, direntRef, error) {
	want, ok := to83(name)
	if !ok {
		return nil, direntRef{}, fs.ErrNameTooLong
	}
	var found *dirent83
	var ref direntRef
	err := f.scanDir(t, dirCluster, func(de *dirent83, r direntRef) bool {
		if bytes.Equal(de.name[:], want[:]) {
			cp := *de
			found, ref = &cp, r
			return false
		}
		return true
	})
	if err != nil {
		return nil, direntRef{}, err
	}
	if found == nil {
		return nil, direntRef{}, fs.ErrNotFound
	}
	return found, ref, nil
}

// addDirent claims a free slot for de (extending the chain when full) and
// returns where it landed. Caller holds the directory's pseudo-inode lock,
// which is what makes the scan-then-patch slot claim exclusive.
func (f *FS) addDirent(t *sched.Task, dirCluster uint32, de *dirent83) (direntRef, error) {
	clusters, err := f.chain(t, dirCluster)
	if err != nil {
		return direntRef{}, err
	}
	buf := make([]byte, ClusterSize)
	for _, c := range clusters {
		if err := f.readClusterCached(t, c, buf); err != nil {
			return direntRef{}, err
		}
		for i := 0; i < ClusterSize/direntSize; i++ {
			var cur dirent83
			cur.decode(buf[i*direntSize:])
			if cur.free() {
				ref := direntRef{cluster: c, index: i}
				return ref, f.patchDirent(t, ref, de.encode)
			}
		}
	}
	// Directory full: grow the chain with a zeroed cluster. Ordered
	// writes: the zeros and both FAT updates (the tail link and the new
	// end-of-chain) go durable before the first entry is written into the
	// new cluster — a dirent in a cluster whose zeroing never landed would
	// read back surrounded by garbage "entries".
	nc, err := f.allocCluster(t, true)
	if err != nil {
		return direntRef{}, err
	}
	last := clusters[len(clusters)-1]
	if err := f.fatSet(t, last, nc); err != nil {
		f.unclaimCluster(t, nc)
		return direntRef{}, err
	}
	sectors := make([]int, 0, SectorsPerCluster+2)
	cs := f.clusterSector(nc)
	for s := 0; s < SectorsPerCluster; s++ {
		sectors = append(sectors, cs+s)
	}
	sectors = append(sectors, f.fatSector(last), f.fatSector(nc))
	if err := f.orderedFlush(t, sectors...); err != nil {
		_ = f.fatSet(t, last, endOfChain)
		f.unclaimCluster(t, nc)
		return direntRef{}, err
	}
	ref := direntRef{cluster: nc, index: 0}
	return ref, f.patchDirent(t, ref, de.encode)
}

// removeDirent marks an entry deleted (0xE5). Caller holds the directory's
// pseudo-inode lock.
func (f *FS) removeDirent(t *sched.Task, ref direntRef) error {
	return f.patchDirent(t, ref, func(entry []byte) {
		entry[0] = 0xE5
	})
}

// rootDe fakes a dirent for the root directory, which has none on disk.
func rootDe() *dirent83 {
	return &dirent83{attr: attrDir, cluster: rootCluster}
}

// pinRoot pins the root directory's pseudo-inode.
func (f *FS) pinRoot() *pseudoInode {
	return f.pin(rootCluster, true, 0, direntRef{}, 0, "/")
}

// walkDir resolves a cleaned absolute path to a pinned, UNLOCKED directory
// pseudo-inode. It first attempts the dentry-cache fast path — every
// segment answered from the cache, no directory locks at all — and falls
// back to the classic hand-over-hand locked walk on any miss or
// generation bump.
func (f *FS) walkDir(t *sched.Task, path string) (*pseudoInode, error) {
	path = fs.Clean(path)
	if path == "/" {
		return f.pinRoot(), nil
	}
	segs := strings.Split(path[1:], "/")
	if pi, err, done := f.walkDirFast(t, segs); done {
		return pi, err
	}
	return f.walkDirLocked(t, segs)
}

// walkDirFast is the lock-free walk. It snapshots the mount's mutation
// generation, resolves every segment from the dentry cache, and trusts
// the result only if the generation is unchanged at the end: no name
// mutated anywhere on the mount during the walk, so every hop's answer
// was simultaneously true. The final pin lands inside that window, so
// the pinned pseudo-inode is the directory the path named at that
// instant. done=false means a segment missed or the generation moved:
// take the locked walk.
func (f *FS) walkDirFast(t *sched.Task, segs []string) (_ *pseudoInode, _ error, done bool) {
	dc := f.dc
	if dc == nil || dc.Dead() {
		return nil, nil, false
	}
	gen := dc.Gen()
	cur := int64(rootCluster)
	parent := int64(rootCluster)
	var last dcache.Entry
	for _, seg := range segs {
		e, ok := dc.Lookup(cur, dcName(seg))
		if !ok {
			dc.FastPathFellBack()
			return nil, nil, false
		}
		if e.Neg || !e.IsDir {
			// A cached ENOENT (or a file where a directory is needed)
			// anywhere on the path decides the whole walk — if the
			// generation held.
			if dc.Gen() != gen {
				dc.FastPathFellBack()
				return nil, nil, false
			}
			dc.FastPathResolved()
			if e.Neg {
				return nil, fs.ErrNotFound, true
			}
			return nil, fs.ErrNotDir, true
		}
		parent = cur
		cur = e.Ino
		last = e
	}
	pi := f.pin(uint32(last.Ino), true, uint32(last.Size),
		direntRef{cluster: uint32(last.RefA), index: int(last.RefB)},
		uint32(parent), dcName(segs[len(segs)-1]))
	if dc.Gen() != gen {
		f.unpin(t, pi)
		dc.FastPathFellBack()
		return nil, nil, false
	}
	dc.FastPathResolved()
	return pi, nil, true
}

// walkDirLocked is the classic hand-over-hand walk: each directory is
// locked only while looking up the next segment and released before the
// child is locked, so a walk holds at most one lock and can never
// deadlock against create/unlink/rename, which lock parent before child.
// Under each lock it consults the cache first (an entry observed under
// the parent's lock is truthful — mutations invalidate under that same
// lock) and fills what the scan proved.
func (f *FS) walkDirLocked(t *sched.Task, segs []string) (*pseudoInode, error) {
	cur := f.pinRoot()
	for _, seg := range segs {
		cur.lock.Lock(t)
		if cur.gone() {
			cur.lock.Unlock()
			f.unpin(t, cur)
			return nil, fs.ErrNotFound
		}
		de, ref, err := f.lookupCached(t, cur, seg)
		if err != nil {
			cur.lock.Unlock()
			f.unpin(t, cur)
			return nil, err
		}
		if de.attr&attrDir == 0 {
			cur.lock.Unlock()
			f.unpin(t, cur)
			return nil, fs.ErrNotDir
		}
		next := f.pin(de.cluster, true, de.size, ref, cur.firstCluster, dcName(seg))
		cur.lock.Unlock()
		f.unpin(t, cur)
		cur = next
	}
	return cur, nil
}

// lookupCached answers "does name exist in dp, and as what" through the
// dentry cache, scanning the directory only on a miss and filling the
// proven answer (positive or negative). Caller holds dp.lock, which is
// what makes a cached answer truthful: every mutation of (dp, name)
// invalidates under that same lock. A positive hit reconstructs the
// dirent — cluster, type, size, and slot location are all cached, and
// the size is kept fresh in place by patchDirentSize.
func (f *FS) lookupCached(t *sched.Task, dp *pseudoInode, name string) (*dirent83, direntRef, error) {
	if e, ok := f.dc.Lookup(int64(dp.firstCluster), dcName(name)); ok {
		if e.Neg {
			return nil, direntRef{}, fs.ErrNotFound
		}
		n83, ok83 := to83(name)
		if !ok83 {
			return nil, direntRef{}, fs.ErrNameTooLong
		}
		de := &dirent83{name: n83, cluster: uint32(e.Ino), size: uint32(e.Size), attr: attrArchive}
		if e.IsDir {
			de.attr = attrDir
		}
		return de, direntRef{cluster: uint32(e.RefA), index: int(e.RefB)}, nil
	}
	de, ref, err := f.lookup(t, dp.firstCluster, name)
	if err == fs.ErrNotFound {
		f.dcFillNeg(dp, name)
		return nil, direntRef{}, err
	}
	if err != nil {
		return nil, direntRef{}, err
	}
	f.dcFillPos(dp, name, de, ref)
	return de, ref, nil
}

// walkParent resolves the directory containing path's final element,
// pinned and unlocked, plus the name.
func (f *FS) walkParent(t *sched.Task, path string) (*pseudoInode, string, error) {
	dir, name := fs.SplitPath(path)
	if name == "" {
		return nil, "", fs.ErrPerm
	}
	dp, err := f.walkDir(t, dir)
	if err != nil {
		return nil, "", err
	}
	return dp, name, nil
}
