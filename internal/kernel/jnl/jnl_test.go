package jnl_test

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/jnl"
)

const (
	blockSize = 1024
	devBlocks = 256
	logStart  = 200 // header block; slots follow
)

// newJournal builds a ramdisk, a daemonless cache over it, and a journal
// over the log region [logStart, logStart+logBlocks).
func newJournal(t *testing.T, logBlocks int) (*jnl.Journal, *bcache.Cache, *fs.Ramdisk) {
	t.Helper()
	rd := fs.NewRamdisk(blockSize, devBlocks)
	bc := bcache.NewWithOptions(rd, bcache.Options{
		Buffers:        64,
		Shards:         4,
		Readahead:      -1,
		FlushInterval:  time.Hour,
		WritebackRatio: -1,
	})
	return jnl.New(bc, logStart, logBlocks), bc, rd
}

// record runs one Begin/Record/End bracket that fills block lba with val.
func record(t *testing.T, j *jnl.Journal, bc *bcache.Cache, lba int, val byte) {
	t.Helper()
	j.Begin(nil)
	b, err := bc.Get(nil, lba)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Data {
		b.Data[i] = val
	}
	if err := j.Record(nil, b); err != nil {
		t.Fatal(err)
	}
	bc.Release(b)
	if err := j.End(nil); err != nil {
		t.Fatal(err)
	}
}

// devBlock reads one block straight off the ramdisk.
func devBlock(t *testing.T, rd *fs.Ramdisk, lba int) []byte {
	t.Helper()
	b := make([]byte, blockSize)
	if err := rd.ReadBlocks(lba, 1, b); err != nil {
		t.Fatal(err)
	}
	return b
}

// header decodes the on-disk log header: valid, count, homes.
func header(t *testing.T, rd *fs.Ramdisk) (bool, int, []int) {
	t.Helper()
	hb := devBlock(t, rd, logStart)
	magic := binary.LittleEndian.Uint32(hb[0:])
	count := int(binary.LittleEndian.Uint32(hb[4:]))
	homes := make([]int, count)
	for i := range homes {
		homes[i] = int(binary.LittleEndian.Uint32(hb[8+4*i:]))
	}
	return magic == jnl.Magic, count, homes
}

// TestCommitThenCheckpoint pins the write-ahead discipline on the device
// itself: after commit the log (slots + header) is durable but the home
// block is untouched; after checkpoint the home is durable and the header
// is invalidated.
func TestCommitThenCheckpoint(t *testing.T) {
	j, bc, rd := newJournal(t, 8)
	record(t, j, bc, 10, 0xAB)

	if s := j.Stats(); s.Commits != 1 {
		t.Fatalf("commits = %d, want 1", s.Commits)
	}
	// Commit point reached: header names home 10, slot 0 holds the data.
	if ok, count, homes := header(t, rd); !ok || count != 1 || homes[0] != 10 {
		t.Fatalf("header after commit: valid=%v count=%d homes=%v", ok, count, homes)
	}
	if slot := devBlock(t, rd, logStart+1); slot[0] != 0xAB {
		t.Fatal("slot block not durable after commit")
	}
	// Write-ahead: home must NOT have been written yet.
	if home := devBlock(t, rd, 10); home[0] != 0 {
		t.Fatal("home block written before checkpoint")
	}

	j.Checkpoint(nil)
	if s := j.Stats(); s.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", s.Checkpoints)
	}
	if home := devBlock(t, rd, 10); home[0] != 0xAB {
		t.Fatal("home block not durable after checkpoint")
	}
	if _, count, _ := header(t, rd); count != 0 {
		t.Fatalf("header not invalidated after checkpoint (count %d)", count)
	}
}

// TestRecoverReplaysCommitted simulates a crash between commit and
// checkpoint: a fresh cache over the same device (the old cache's dirty
// buffers are lost) must replay the transaction from the log.
func TestRecoverReplaysCommitted(t *testing.T) {
	j, bc, rd := newJournal(t, 8)
	record(t, j, bc, 10, 0xCD)
	record(t, j, bc, 11, 0xEF)
	// Crash: abandon bc and j. Remount over the raw device.
	bc2 := bcache.NewWithOptions(rd, bcache.Options{
		Buffers: 64, Shards: 4, Readahead: -1,
		FlushInterval: time.Hour, WritebackRatio: -1,
	})
	j2 := jnl.New(bc2, logStart, 8)
	n, err := j2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The second record's commit checkpointed the first, so only the
	// second transaction (block 11) is in the log at crash time.
	if n != 1 {
		t.Fatalf("recovered %d blocks, want 1", n)
	}
	if home := devBlock(t, rd, 11); home[0] != 0xEF {
		t.Fatal("recovery did not install block 11 home")
	}
	if _, count, _ := header(t, rd); count != 0 {
		t.Fatal("recovery did not invalidate the header")
	}
	// Idempotent: a second Recover finds nothing.
	if n, err := j2.Recover(nil); err != nil || n != 0 {
		t.Fatalf("second Recover = %d, %v; want 0, nil", n, err)
	}
}

// TestAbsorption pins that re-recording a block costs no extra slot: the
// log holds the block's final content once.
func TestAbsorption(t *testing.T) {
	j, bc, rd := newJournal(t, 8)
	j.Begin(nil)
	for pass := 0; pass < 3; pass++ {
		b, err := bc.Get(nil, 10)
		if err != nil {
			t.Fatal(err)
		}
		b.Data[0] = byte(pass + 1)
		if err := j.Record(nil, b); err != nil {
			t.Fatal(err)
		}
		bc.Release(b)
	}
	if err := j.End(nil); err != nil {
		t.Fatal(err)
	}
	s := j.Stats()
	if s.Absorbed != 2 {
		t.Fatalf("absorbed = %d, want 2", s.Absorbed)
	}
	if _, count, _ := header(t, rd); count != 1 {
		t.Fatalf("header count = %d, want 1 (one slot for three records)", count)
	}
}

// TestGroupCommit pins that overlapping brackets commit as ONE
// transaction: the first End while another op is open must not commit.
func TestGroupCommit(t *testing.T) {
	j, bc, rd := newJournal(t, 32)
	j.Begin(nil)
	j.Begin(nil)
	for i, lba := range []int{10, 11} {
		b, err := bc.Get(nil, lba)
		if err != nil {
			t.Fatal(err)
		}
		b.Data[0] = byte(i + 1)
		if err := j.Record(nil, b); err != nil {
			t.Fatal(err)
		}
		bc.Release(b)
	}
	if err := j.End(nil); err != nil {
		t.Fatal(err)
	}
	if s := j.Stats(); s.Commits != 0 {
		t.Fatal("committed with an operation still open")
	}
	if err := j.End(nil); err != nil {
		t.Fatal(err)
	}
	if s := j.Stats(); s.Commits != 1 {
		t.Fatalf("commits = %d, want 1 (group commit)", s.Commits)
	}
	if _, count, homes := header(t, rd); count != 2 || homes[0] != 10 || homes[1] != 11 {
		t.Fatalf("header = %d %v, want both ops' blocks in one transaction", count, homes)
	}
}

// TestErrTooBig pins the overflow guard: one bracket recording more
// distinct blocks than the log has slots is a filesystem bug, reported
// not deadlocked.
func TestErrTooBig(t *testing.T) {
	j, bc, _ := newJournal(t, 5) // 4 slots
	if j.Slots() != 4 {
		t.Fatalf("slots = %d, want 4", j.Slots())
	}
	j.Begin(nil)
	var got error
	for lba := 10; lba < 16; lba++ {
		b, err := bc.Get(nil, lba)
		if err != nil {
			t.Fatal(err)
		}
		err = j.Record(nil, b)
		bc.Release(b)
		if err != nil {
			got = err
			break
		}
	}
	if got != jnl.ErrTooBig {
		t.Fatalf("oversized op returned %v, want ErrTooBig", got)
	}
	if err := j.End(nil); err != nil {
		t.Fatal(err)
	}
}

// TestInstallFromLog pins the write-behind wrinkle: a block committed by
// transaction N then re-frozen by open transaction N+1 must have N's
// content installed home FROM THE LOG SLOT — the cache buffer holds N+1's
// uncommitted bytes and flushing it would leak them ahead of commit.
func TestInstallFromLog(t *testing.T) {
	j, bc, rd := newJournal(t, 8)
	record(t, j, bc, 10, 0x11) // txn 1 commits; checkpoint still pending

	// Txn 2 re-records the same block before txn 1's checkpoint ran.
	j.Begin(nil)
	b, err := bc.Get(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Data {
		b.Data[i] = 0x22
	}
	if err := j.Record(nil, b); err != nil {
		t.Fatal(err)
	}
	bc.Release(b)
	if err := j.End(nil); err != nil {
		t.Fatal(err)
	}

	// Txn 2's commit had to checkpoint txn 1 first, and the cache buffer
	// already held txn 2's bytes — so txn 1's copy came from the log.
	s := j.Stats()
	if s.Installs != 1 {
		t.Fatalf("installs = %d, want 1", s.Installs)
	}
	if s.Commits != 2 {
		t.Fatalf("commits = %d, want 2", s.Commits)
	}
	// At this instant the durable home holds exactly txn 1's content:
	// txn 2 is committed in the log but not yet checkpointed.
	if home := devBlock(t, rd, 10); home[0] != 0x11 {
		t.Fatalf("home byte = %#x, want txn 1's 0x11", home[0])
	}
	j.Checkpoint(nil)
	if home := devBlock(t, rd, 10); home[0] != 0x22 {
		t.Fatalf("home byte = %#x, want txn 2's 0x22 after checkpoint", home[0])
	}
}

// TestSyncIsABarrier pins Sync's contract: when it returns, everything
// that Ended before the call is durable — in the log or at home — and a
// fresh mount's recovery observes it.
func TestSyncIsABarrier(t *testing.T) {
	j, bc, rd := newJournal(t, 8)
	record(t, j, bc, 12, 0x77)
	if err := j.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Sync does not force the checkpoint — the log may still own the
	// bytes — but log-or-home, the content must be recoverable.
	bc2 := bcache.NewWithOptions(rd, bcache.Options{
		Buffers: 64, Shards: 4, Readahead: -1,
		FlushInterval: time.Hour, WritebackRatio: -1,
	})
	j2 := jnl.New(bc2, logStart, 8)
	if _, err := j2.Recover(nil); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x77}, blockSize)
	if got := devBlock(t, rd, 12); !bytes.Equal(got, want) {
		t.Fatal("content recorded before Sync not recoverable after it")
	}
}

// TestRecordOutsideBracketFails pins the bracket discipline.
func TestRecordOutsideBracketFails(t *testing.T) {
	j, bc, _ := newJournal(t, 8)
	b, err := bc.Get(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Release(b)
	if err := j.Record(nil, b); err == nil {
		t.Fatal("Record outside Begin/End succeeded")
	}
}
