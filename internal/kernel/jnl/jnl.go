// Package jnl is a write-ahead metadata journal in the xv6 logging
// tradition, adapted to live ABOVE a write-behind buffer cache instead of
// xv6's write-through one.
//
// The contract: a filesystem operation brackets itself with Begin/End and
// Records every metadata block it modifies. Recorded blocks are FROZEN in
// the cache (bcache.Freeze) — valid, dirty, and invisible to every
// writeback path — so uncommitted metadata can never reach its home
// location. When the last outstanding operation Ends, the whole batch
// commits as one transaction (group commit): the frozen blocks are copied
// into the on-disk log's slot blocks and flushed under a single request-
// queue plug — one merged burst — and then the header block naming their
// home addresses is written and flushed. That header write is the commit
// point: before it, a crash replays nothing and the operations never
// happened; after it, recovery replays every block from the log and they
// all happened. Nothing in between is observable.
//
// After commit the blocks are thawed into ordinary dirty buffers; writing
// them home is the CHECKPOINT, and it rides the existing write-behind
// machinery — the kflushd daemon's idle hook (bcache.SetIdleHook) triggers
// it during quiet periods, so commit's critical path stays two flushes
// long. The one ordering obligation is that a transaction's home blocks
// must be durable before its header is invalidated, and the header must be
// invalidated before the NEXT transaction reuses the slot blocks —
// otherwise a crash would replay the old header over new slot contents.
// commit and checkpoint both preserve this by completing the previous
// transaction's checkpoint (and zeroing the header, flushed) before any
// slot is rewritten.
//
// One wrinkle is unique to the write-behind world: a block committed by
// transaction N may be re-modified (and re-frozen) by the still-open
// transaction N+1 before N's checkpoint ran. Its cache buffer then holds
// N+1's uncommitted content and must not be flushed — N's committed
// content is INSTALLED from its log slot copy straight to the home
// address, bypassing the cache (installs in Stats counts these).
package jnl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// Magic identifies a valid log header block.
const Magic = 0x6A6E6C31 // "jnl1"

// DefaultMaxOp is how many distinct metadata blocks one Begin/End bracket
// may Record — xv6's MAXOPBLOCKS. Begin reserves this much log space, so
// a batch never outgrows the slots mid-operation.
const DefaultMaxOp = 10

// ErrTooBig reports an operation that recorded more blocks than the log
// can hold — a filesystem bug (operations must fit DefaultMaxOp).
var ErrTooBig = errors.New("jnl: transaction exceeds log size")

// ErrBadLog reports a log header that carries the magic but names an
// impossible transaction — a slot count beyond the region or a home
// address outside the device (or inside the log itself). Mount refuses
// such an image rather than replay garbage over live blocks.
var ErrBadLog = errors.New("jnl: corrupt log header")

// ErrAborted reports a transaction poisoned by a mid-operation device
// error: the half-recorded batch was discarded instead of committed, so
// the on-disk metadata remains the pre-transaction state. The filesystem
// latches read-only on it — mutation cannot proceed when operations can
// no longer be made atomic.
var ErrAborted = errors.New("jnl: transaction aborted")

// Journal is the in-memory state of one on-disk log region.
type Journal struct {
	bc        *bcache.Cache
	dev       fs.BlockDevice
	tdev      fs.TaskBlockDevice // non-nil when dev threads tasks (blkq)
	blockSize int
	start     int // header block LBA
	slots     int // usable slot blocks (header excluded)
	maxOp     int

	mu          sync.Mutex
	outstanding int   // operations inside Begin/End brackets
	committing  bool  // a commit or checkpoint owns the log state
	aborted     bool  // the open batch is poisoned; discard, don't commit
	abortCause  error // first device error that poisoned the batch
	ckptErr     error // sticky: a failed checkpoint wedges the log
	err         error // sticky commit/checkpoint error, reported by Sync

	batch   []*bcache.Buf       // frozen buffers of the open batch, record order
	inBatch map[int]*bcache.Buf // home lba -> frozen buffer (absorption)
	pending map[int]int         // committed, un-checkpointed: home lba -> slot

	// discarded marks pending home LBAs whose cache buffers an abort
	// invalidated: their committed content now lives only in the log
	// slots, so checkpoint must install them home from there.
	discarded map[int]bool

	onCommit []func()

	commits, checkpoints, installs, absorbed, recovered, aborts int64
}

// Stats is a snapshot of journal activity for tests and /proc.
type Stats struct {
	Commits     int64 // transactions committed
	Checkpoints int64 // checkpoint passes (header invalidations)
	Installs    int64 // blocks installed home from log slots (re-frozen)
	Absorbed    int64 // Records absorbed into an already-batched block
	Recovered   int64 // blocks replayed by Recover at mount
	Aborts      int64 // poisoned batches discarded instead of committed
}

// New wires a journal over the log region [start, start+blocks) of bc's
// device. blocks includes the header; the usable slot count is further
// capped at half the cache (frozen buffers must never exhaust it) and at
// what the header block can index.
func New(bc *bcache.Cache, start, blocks int) *Journal {
	j := &Journal{
		bc:        bc,
		dev:       bc.Device(),
		blockSize: bc.Device().BlockSize(),
		start:     start,
		slots:     blocks - 1,
		maxOp:     DefaultMaxOp,
		inBatch:   make(map[int]*bcache.Buf),
		pending:   make(map[int]int),
		discarded: make(map[int]bool),
	}
	j.tdev, _ = j.dev.(fs.TaskBlockDevice)
	if half := bc.Buffers() / 2; j.slots > half {
		j.slots = half
	}
	if max := (j.blockSize - 8) / 4; j.slots > max {
		j.slots = max
	}
	if j.maxOp > j.slots {
		j.maxOp = j.slots
	}
	return j
}

// yieldRetry gives up the CPU between reservation retries (see bcache's
// twin: simulated tasks must Yield the simulated core; host contexts
// Gosched).
func yieldRetry(t *sched.Task) {
	if t != nil {
		t.Yield()
	} else {
		runtime.Gosched()
	}
}

// OnCommit registers fn to run after every successful commit (the
// filesystem clears its freed-block reuse guard here). Call before the
// journal sees traffic.
func (j *Journal) OnCommit(fn func()) { j.onCommit = append(j.onCommit, fn) }

// Begin opens an operation bracket, blocking while a commit or checkpoint
// owns the log or while admitting another operation could overflow it
// (every admitted operation may still Record maxOp blocks).
func (j *Journal) Begin(t *sched.Task) {
	for {
		j.mu.Lock()
		if !j.committing && len(j.batch)+(j.outstanding+1)*j.maxOp <= j.slots {
			j.outstanding++
			j.mu.Unlock()
			return
		}
		j.mu.Unlock()
		yieldRetry(t)
	}
}

// Record adds a held buffer (Get'd, not yet Released) to the open batch
// and freezes it — this op's replacement for MarkDirty on metadata
// blocks. Recording the same block twice absorbs into one slot: the log
// holds the block's final content, which is why a whole batch of
// operations updating one bitmap block costs one slot and one log write.
func (j *Journal) Record(t *sched.Task, b *bcache.Buf) error {
	j.mu.Lock()
	if j.outstanding == 0 {
		j.mu.Unlock()
		return fmt.Errorf("jnl: Record outside Begin/End")
	}
	if _, ok := j.inBatch[b.LBA()]; ok {
		j.absorbed++
		j.mu.Unlock()
		j.bc.Freeze(b) // idempotent; re-marks dirty after any clean transition
		return nil
	}
	if len(j.batch) >= j.slots {
		j.mu.Unlock()
		return ErrTooBig
	}
	j.batch = append(j.batch, b)
	j.inBatch[b.LBA()] = b
	j.mu.Unlock()
	j.bc.Freeze(b)
	return nil
}

// Abort poisons the open batch: an operation inside a Begin/End bracket
// hit a device error after recording some — but not all — of its blocks.
// Committing the half-operation would persist a state no crash could ever
// produce, so when the last bracket closes the whole batch is DISCARDED
// instead: every recorded buffer is dropped from the cache (the next Get
// re-reads the durable copy) and End/Sync report ErrAborted. Group commit
// makes the discard batch-wide — operations that shared the bracket lose
// their recordings too, exactly as if the machine had crashed before the
// commit point.
func (j *Journal) Abort(cause error) {
	j.mu.Lock()
	j.aborted = true
	if j.abortCause == nil {
		j.abortCause = cause
	}
	j.mu.Unlock()
}

// abortError names a discarded batch. It matches errors.Is for both
// ErrAborted and the device error that poisoned the transaction, so
// callers can latch on the mechanism or the root cause alike.
func abortError(cause error) error {
	if cause == nil {
		return ErrAborted
	}
	return fmt.Errorf("%w: %w", ErrAborted, cause)
}

// discard drops the poisoned batch. Caller owns the log state (committing
// set, outstanding zero). Blocks that also belong to the still-pending
// previous transaction lose their cache copy of THAT transaction's
// content too — mark them so checkpoint installs them home from their log
// slots instead of flushing a buffer that no longer exists.
func (j *Journal) discard(t *sched.Task) {
	for _, b := range j.batch {
		b.Lock(t)
		j.bc.Discard(b)
		b.Unlock()
		if _, ok := j.pending[b.LBA()]; ok {
			j.discarded[b.LBA()] = true
		}
	}
	j.batch = j.batch[:0]
	j.inBatch = make(map[int]*bcache.Buf)
	j.aborted = false
	j.abortCause = nil
	j.aborts++
}

// End closes an operation bracket. The LAST close commits the whole batch
// — group commit: every operation that overlapped this bracket rides the
// same two log flushes — or, if an operation aborted, discards it. Commit
// errors are returned AND latched; Sync reports the latch to callers that
// weren't the unlucky committer.
func (j *Journal) End(t *sched.Task) error {
	j.mu.Lock()
	j.outstanding--
	if j.outstanding > 0 {
		j.mu.Unlock()
		return nil
	}
	if len(j.batch) == 0 {
		// Nothing recorded; nothing to poison.
		j.aborted, j.abortCause = false, nil
		j.mu.Unlock()
		return nil
	}
	j.committing = true
	aborted, cause := j.aborted, j.abortCause
	j.mu.Unlock()
	var err error
	if aborted {
		j.discard(t)
		err = abortError(cause)
	} else {
		err = j.commit(t)
	}
	j.mu.Lock()
	if err != nil && j.err == nil {
		j.err = err
	}
	j.committing = false
	j.mu.Unlock()
	return err
}

// Sync drains every open operation, commits whatever batch is left (a
// failed End's leftovers included) and reports — then clears — the sticky
// journal error. This is fsync's and umount's ordering barrier: when it
// returns nil, every operation that Ended before the call is on disk, in
// the log or at home.
func (j *Journal) Sync(t *sched.Task) error {
	for {
		j.mu.Lock()
		if j.outstanding == 0 && !j.committing {
			if len(j.batch) == 0 {
				j.aborted, j.abortCause = false, nil
				err := j.err
				j.err = nil
				j.mu.Unlock()
				return err
			}
			j.committing = true
			aborted, cause := j.aborted, j.abortCause
			j.mu.Unlock()
			var cerr error
			if aborted {
				j.discard(t)
				cerr = abortError(cause)
			} else {
				cerr = j.commit(t)
			}
			j.mu.Lock()
			if cerr != nil && j.err == nil {
				j.err = cerr
			}
			err := j.err
			j.err = nil
			j.committing = false
			j.mu.Unlock()
			return err
		}
		j.mu.Unlock()
		yieldRetry(t)
	}
}

// Checkpoint opportunistically drains the committed-but-unwritten
// transaction — the kflushd idle hook calls it. It only runs when the
// journal is quiet (no open operations, no commit in flight); at such a
// moment the open batch is necessarily empty, so every pending block's
// cache buffer is thawed and flushable.
func (j *Journal) Checkpoint(t *sched.Task) {
	j.mu.Lock()
	if j.outstanding > 0 || j.committing || len(j.pending) == 0 {
		j.mu.Unlock()
		return
	}
	j.committing = true
	j.mu.Unlock()
	err := j.checkpoint(t)
	j.mu.Lock()
	if err != nil && j.err == nil {
		j.err = err
	}
	j.committing = false
	j.mu.Unlock()
}

// commit writes the open batch to the log. Caller set committing (which
// blocks Begin), and outstanding is zero, so batch/inBatch/pending are
// exclusively ours even though mu is dropped.
//
// Order matters everywhere here:
//
//  1. The PREVIOUS transaction's checkpoint completes and its header is
//     zeroed, durably — only then may its slot blocks be reused (else a
//     crash replays the old header over new slot contents).
//  2. The batch is copied into slot blocks and flushed under one plug:
//     the group-commit device burst.
//  3. The header naming the home addresses is written and flushed: the
//     commit point.
//  4. The batch buffers thaw into ordinary dirty buffers and become the
//     new pending transaction, checkpointed at leisure.
func (j *Journal) commit(t *sched.Task) error {
	if err := j.checkpoint(t); err != nil {
		return err
	}
	slotLBAs := make([]int, 0, len(j.batch))
	for i, b := range j.batch {
		slot := j.start + 1 + i
		// Buffer locks are ranked by ascending LBA. Most metadata lives
		// above the log region, so slot-then-block is the ascending order —
		// but the superblock (orphan list, LBA 0) sorts below it and must
		// be locked first.
		var sb *bcache.Buf
		var err error
		if b.LBA() < slot {
			b.Lock(t)
			if sb, err = j.bc.Get(t, slot); err != nil {
				b.Unlock()
				return err
			}
		} else {
			if sb, err = j.bc.Get(t, slot); err != nil {
				return err
			}
			b.Lock(t)
		}
		copy(sb.Data, b.Data)
		b.Unlock()
		j.bc.MarkDirty(sb)
		j.bc.Release(sb)
		slotLBAs = append(slotLBAs, slot)
	}
	if err := j.bc.FlushBlocks(t, slotLBAs, true); err != nil {
		return err
	}
	if err := j.writeHeader(t, j.batch); err != nil {
		return err
	}
	for i, b := range j.batch {
		j.pending[b.LBA()] = i
		b.Lock(t)
		j.bc.Thaw(b)
		b.Unlock()
	}
	j.batch = j.batch[:0]
	j.inBatch = make(map[int]*bcache.Buf)
	j.commits++
	for _, fn := range j.onCommit {
		fn()
	}
	return nil
}

// checkpoint makes the pending transaction's blocks durable at home and
// invalidates the header. Blocks whose cache buffers were re-frozen by
// the open batch hold NEWER uncommitted content — their committed content
// is installed straight from the log slot to the home address, bypassing
// the cache. Caller owns the log state (committing set).
func (j *Journal) checkpoint(t *sched.Task) error {
	// A checkpoint that failed mid-way may have lost a pending block's only
	// cache copy (a fatal writeback error gives the buffer up), leaving the
	// log slot as the sole durable home of committed data. Retrying would
	// skip the clean-looking buffer, complete, and zero the header — erasing
	// that last copy. The journal wedges instead: the header stays intact,
	// the transaction stays replayable, and the mount (latched read-only by
	// the first failure) never commits again.
	if j.ckptErr != nil {
		return j.ckptErr
	}
	if len(j.pending) == 0 {
		return nil
	}
	flush := make([]int, 0, len(j.pending))
	type install struct{ slot, home int }
	var installs []install
	for lba, slot := range j.pending {
		// Install rather than flush when the cache buffer does not hold
		// this transaction's content: re-frozen by the open batch (newer,
		// uncommitted), or invalidated by an abort (gone).
		if _, frozen := j.inBatch[lba]; frozen || j.discarded[lba] {
			installs = append(installs, install{slot: j.start + 1 + slot, home: lba})
		} else {
			flush = append(flush, lba)
		}
	}
	if err := j.bc.FlushBlocks(t, flush, true); err != nil {
		j.ckptErr = err
		return err
	}
	for _, in := range installs {
		sb, err := j.bc.Get(t, in.slot)
		if err != nil {
			j.ckptErr = err
			return err
		}
		err = j.devWrite(t, in.home, sb.Data)
		j.bc.Release(sb)
		if err != nil {
			j.ckptErr = err
			return err
		}
		j.installs++
	}
	if err := j.writeHeader(t, nil); err != nil {
		j.ckptErr = err
		return err
	}
	j.pending = make(map[int]int)
	j.discarded = make(map[int]bool)
	j.checkpoints++
	return nil
}

// writeHeader encodes and durably writes the header block: magic, block
// count, then the home LBA of each slot in order. A nil batch writes the
// empty header — the invalidation.
func (j *Journal) writeHeader(t *sched.Task, batch []*bcache.Buf) error {
	hb, err := j.bc.Get(t, j.start)
	if err != nil {
		return err
	}
	for i := range hb.Data {
		hb.Data[i] = 0
	}
	binary.LittleEndian.PutUint32(hb.Data[0:], Magic)
	binary.LittleEndian.PutUint32(hb.Data[4:], uint32(len(batch)))
	for i, b := range batch {
		binary.LittleEndian.PutUint32(hb.Data[8+4*i:], uint32(b.LBA()))
	}
	j.bc.MarkDirty(hb)
	j.bc.Release(hb)
	return j.bc.FlushBlocks(t, []int{j.start}, false)
}

// devWrite writes one block straight to the device, bypassing the cache
// (install-from-log only: the cache buffer for the block deliberately
// holds different — newer, uncommitted — content).
func (j *Journal) devWrite(t *sched.Task, lba int, src []byte) error {
	if j.tdev != nil {
		return j.tdev.WriteBlocksT(t, lba, 1, src)
	}
	return j.dev.WriteBlocks(lba, 1, src)
}

// Recover replays the log at mount: if the header names a committed
// transaction, every slot block is copied to its home address (through
// the cache, flushed) and the header is invalidated. Idempotent — a crash
// mid-recovery just replays again. Returns how many blocks were replayed.
// Must run before the filesystem reads any metadata.
func (j *Journal) Recover(t *sched.Task) (int, error) {
	hb, err := j.bc.Get(t, j.start)
	if err != nil {
		return 0, err
	}
	magic := binary.LittleEndian.Uint32(hb.Data[0:])
	count := int(binary.LittleEndian.Uint32(hb.Data[4:]))
	if magic != Magic || count == 0 {
		// No committed transaction (a foreign/garbage header doesn't
		// carry the magic): nothing to replay.
		j.bc.Release(hb)
		return 0, nil
	}
	if count > j.slots {
		j.bc.Release(hb)
		return 0, fmt.Errorf("%w: %d blocks in a %d-slot log", ErrBadLog, count, j.slots)
	}
	homes := make([]int, 0, count)
	for i := 0; i < count; i++ {
		home := int(binary.LittleEndian.Uint32(hb.Data[8+4*i:]))
		// A hostile or torn header must not aim the replay outside the
		// device or back into the log region itself.
		if home < 0 || home >= j.dev.Blocks() ||
			(home >= j.start && home <= j.start+j.slots) {
			j.bc.Release(hb)
			return 0, fmt.Errorf("%w: home block %d out of range", ErrBadLog, home)
		}
		homes = append(homes, home)
	}
	j.bc.Release(hb)
	for i, home := range homes {
		slot := j.start + 1 + i
		// Ascending-LBA lock order, as in commit: the superblock's home
		// (LBA 0) sorts below the log region, everything else above it.
		var sb, db *bcache.Buf
		var err error
		if home < slot {
			if db, err = j.bc.Get(t, home); err != nil {
				return 0, err
			}
			if sb, err = j.bc.Get(t, slot); err != nil {
				j.bc.Release(db)
				return 0, err
			}
		} else {
			if sb, err = j.bc.Get(t, slot); err != nil {
				return 0, err
			}
			if db, err = j.bc.Get(t, home); err != nil {
				j.bc.Release(sb)
				return 0, err
			}
		}
		copy(db.Data, sb.Data)
		j.bc.MarkDirty(db)
		j.bc.Release(db)
		j.bc.Release(sb)
	}
	if err := j.bc.FlushBlocks(t, homes, true); err != nil {
		return 0, err
	}
	if err := j.writeHeader(t, nil); err != nil {
		return 0, err
	}
	j.recovered += int64(len(homes))
	return len(homes), nil
}

// Stats snapshots journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Commits:     j.commits,
		Checkpoints: j.checkpoints,
		Installs:    j.installs,
		Absorbed:    j.absorbed,
		Recovered:   j.recovered,
		Aborts:      j.aborts,
	}
}

// Slots reports the usable slot count (tests size transactions with it).
func (j *Journal) Slots() int { return j.slots }

// MaxOp reports the per-operation block budget.
func (j *Journal) MaxOp() int { return j.maxOp }
