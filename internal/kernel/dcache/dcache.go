package dcache

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards and DefaultPerShard size a mount's cache when the caller
// passes zero: 8 shards × 512 entries covers a build-tree of a few
// thousand names while staying small next to the buffer cache.
const (
	DefaultShards   = 8
	DefaultPerShard = 512
)

// Entry is one cached lookup answer. Ino is the child's identity — inode
// number for xv6fs, first data cluster for FAT32; a negative entry
// (Neg=true) records a proven ENOENT and carries no identity. The
// remaining fields are auxiliary state the owning filesystem needs to
// revive the child without re-reading its directory entry: FAT32 stores
// the file size and the dirent's location (RefA = sector-chain cluster,
// RefB = slot index); xv6fs leaves them zero.
type Entry struct {
	Ino   int64
	IsDir bool
	Neg   bool
	Size  int64
	RefA  int64
	RefB  int64
}

type key struct {
	parent int64
	name   string
}

// node is an entry on a shard's intrusive LRU list.
type node struct {
	key        key
	e          Entry
	prev, next *node
}

// shard is one lock's worth of the cache: a map for lookup plus an LRU
// list (head = most recent) for bounded capacity. The mutex is a plain
// leaf mutex, never held across sleeping or IO — taking it does not
// count as a "directory lock" in the fast path's no-locks claim.
type shard struct {
	mu         sync.Mutex
	m          map[key]*node
	head, tail *node
	cap        int
}

func (s *shard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard) pushFront(n *node) {
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

// Stats is a point-in-time counter snapshot for one mount (or, from
// Cache.Stats, the sum over all mounts).
type Stats struct {
	Hits     int64 // positive hits
	NegHits  int64 // negative hits (cached ENOENT)
	Misses   int64
	Fills    int64 // positive + negative fills
	Invals   int64 // explicit invalidations (entry present or not)
	Evicts   int64 // LRU evictions
	Entries  int64 // current resident entries
	FastRes  int64 // whole-path lock-free resolutions (filesystem-reported)
	FastFail int64 // fast-path walks abandoned to the locked walk
}

// Mount is one filesystem's slice of the dentry cache. The zero value is
// not usable; mint one with Cache.NewMount. All methods are safe for
// concurrent use and all are no-ops on a nil receiver, so filesystems
// can run with the cache unwired (tests, A/B benches).
type Mount struct {
	c      *Cache
	name   string
	shards []shard
	gen    atomic.Uint64
	dead   atomic.Bool

	hits, negHits, misses atomic.Int64
	fills, invals, evicts atomic.Int64
	fastRes, fastFail     atomic.Int64
}

// fnv1a over the parent key and name picks the shard.
func (m *Mount) shardOf(parent int64, name string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(parent>>(8*i)) & 0xff
		h *= 1099511628211
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &m.shards[h%uint64(len(m.shards))]
}

// Gen reads the mount's mutation generation. A lock-free walk snapshots
// it before the first hop and trusts its result only if the value is
// unchanged afterwards (see the package comment).
func (m *Mount) Gen() uint64 {
	if m == nil {
		return 0
	}
	return m.gen.Load()
}

// bump marks a name mutation. Ordered before the caller's directory
// change (the caller invalidates, then writes), so a fast walk that read
// a soon-stale entry always sees the new generation at its re-check.
func (m *Mount) bump() { m.gen.Add(1) }

// Lookup consults the cache. The second result reports whether an entry
// (positive or negative) was found; counters are updated either way.
func (m *Mount) Lookup(parent int64, name string) (Entry, bool) {
	if m == nil || m.dead.Load() {
		return Entry{}, false
	}
	s := m.shardOf(parent, name)
	s.mu.Lock()
	n, ok := s.m[key{parent, name}]
	if !ok {
		s.mu.Unlock()
		m.misses.Add(1)
		return Entry{}, false
	}
	s.unlink(n)
	s.pushFront(n)
	e := n.e
	s.mu.Unlock()
	if e.Neg {
		m.negHits.Add(1)
	} else {
		m.hits.Add(1)
	}
	return e, true
}

// PutPositive records that parent/name resolves to the child described
// by e. Call only while holding the parent directory's lock, after the
// answer has been read from (or written to) the directory itself.
func (m *Mount) PutPositive(parent int64, name string, e Entry) {
	if m == nil {
		return
	}
	e.Neg = false
	m.put(parent, name, e)
}

// PutNegative records a proven ENOENT for parent/name. Same locking
// contract as PutPositive.
func (m *Mount) PutNegative(parent int64, name string) {
	if m == nil {
		return
	}
	m.put(parent, name, Entry{Neg: true})
}

func (m *Mount) put(parent int64, name string, e Entry) {
	if m.dead.Load() {
		return
	}
	s := m.shardOf(parent, name)
	k := key{parent, name}
	s.mu.Lock()
	if n, ok := s.m[k]; ok {
		n.e = e
		s.unlink(n)
		s.pushFront(n)
		s.mu.Unlock()
		m.fills.Add(1)
		return
	}
	if len(s.m) >= s.cap && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.m, victim.key)
		m.evicts.Add(1)
	}
	n := &node{key: k, e: e}
	s.m[k] = n
	s.pushFront(n)
	s.mu.Unlock()
	m.fills.Add(1)
}

// FixSize updates the cached size of a positive entry in place, provided
// the entry still maps the name to the same child (ino). Mappings are
// untouched and the generation does not move: this is how FAT32 writes
// back a pseudo-inode's final size when it dies, without invalidating
// the name for the next opener.
func (m *Mount) FixSize(parent int64, name string, ino, size int64) {
	if m == nil || m.dead.Load() {
		return
	}
	s := m.shardOf(parent, name)
	s.mu.Lock()
	if n, ok := s.m[key{parent, name}]; ok && !n.e.Neg && n.e.Ino == ino {
		n.e.Size = size
	}
	s.mu.Unlock()
}

// Invalidate drops the entry for parent/name (if any) and bumps the
// generation. Mutation sites call it under the parent's lock, before
// changing the directory block.
func (m *Mount) Invalidate(parent int64, name string) {
	if m == nil {
		return
	}
	s := m.shardOf(parent, name)
	s.mu.Lock()
	if n, ok := s.m[key{parent, name}]; ok {
		s.unlink(n)
		delete(s.m, n.key)
	}
	s.mu.Unlock()
	m.invals.Add(1)
	m.bump()
}

// InvalidateDir drops every entry whose parent is dir and bumps the
// generation. Called when a directory is removed (rmdir, rename-over):
// its inode number may be recycled, and neither stale children nor stale
// ENOENTs may survive into the recycled directory's life.
func (m *Mount) InvalidateDir(dir int64) {
	if m == nil {
		return
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, n := range s.m {
			if k.parent == dir {
				s.unlink(n)
				delete(s.m, k)
				m.invals.Add(1)
			}
		}
		s.mu.Unlock()
	}
	m.bump()
}

// Kill empties the mount's cache and latches it dead: lookups miss and
// fills are refused from now on. Wired to errors=remount-ro degradation.
func (m *Mount) Kill() {
	if m == nil {
		return
	}
	m.dead.Store(true)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.m = make(map[key]*node)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
	m.bump()
}

// Dead reports whether Kill has latched the mount.
func (m *Mount) Dead() bool { return m != nil && m.dead.Load() }

// FastPathResolved / FastPathFellBack let the filesystems report
// whole-walk outcomes (distinct from per-component hit/miss counters).
func (m *Mount) FastPathResolved() {
	if m != nil {
		m.fastRes.Add(1)
	}
}

// FastPathFellBack counts a lock-free walk abandoned to the locked walk
// (component miss or generation bump mid-walk).
func (m *Mount) FastPathFellBack() {
	if m != nil {
		m.fastFail.Add(1)
	}
}

// Stats snapshots the mount's counters.
func (m *Mount) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	var entries int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		entries += int64(len(s.m))
		s.mu.Unlock()
	}
	return Stats{
		Hits:     m.hits.Load(),
		NegHits:  m.negHits.Load(),
		Misses:   m.misses.Load(),
		Fills:    m.fills.Load(),
		Invals:   m.invals.Load(),
		Evicts:   m.evicts.Load(),
		Entries:  entries,
		FastRes:  m.fastRes.Load(),
		FastFail: m.fastFail.Load(),
	}
}

// Cache owns the dentry cache for a whole kernel: one Mount handle per
// mounted filesystem, plus the aggregate view /proc/dcache renders.
type Cache struct {
	shards   int
	perShard int

	mu     sync.Mutex
	mounts map[string]*Mount
}

// New builds a cache whose mounts each get shards×perShard capacity;
// zero (or negative) arguments select the defaults.
func New(shards, perShard int) *Cache {
	if shards <= 0 {
		shards = DefaultShards
	}
	if perShard <= 0 {
		perShard = DefaultPerShard
	}
	return &Cache{shards: shards, perShard: perShard, mounts: make(map[string]*Mount)}
}

// NewMount mints the dentry cache for one mounted filesystem, named by
// its mount point for /proc. Minting the same name again replaces the
// old handle in the aggregate view (remount).
func (c *Cache) NewMount(name string) *Mount {
	m := &Mount{c: c, name: name, shards: make([]shard, c.shards)}
	for i := range m.shards {
		m.shards[i].m = make(map[key]*node)
		m.shards[i].cap = c.perShard
	}
	c.mu.Lock()
	c.mounts[name] = m
	c.mu.Unlock()
	return m
}

// Stats sums counters over all mounts.
func (c *Cache) Stats() Stats {
	var sum Stats
	c.mu.Lock()
	ms := make([]*Mount, 0, len(c.mounts))
	for _, m := range c.mounts {
		ms = append(ms, m)
	}
	c.mu.Unlock()
	for _, m := range ms {
		st := m.Stats()
		sum.Hits += st.Hits
		sum.NegHits += st.NegHits
		sum.Misses += st.Misses
		sum.Fills += st.Fills
		sum.Invals += st.Invals
		sum.Evicts += st.Evicts
		sum.Entries += st.Entries
		sum.FastRes += st.FastRes
		sum.FastFail += st.FastFail
	}
	return sum
}

// String renders the /proc/dcache table: one line per mount plus a
// totals line, in the key:value style of the other proc files.
func (c *Cache) String() string {
	c.mu.Lock()
	names := make([]string, 0, len(c.mounts))
	for n := range c.mounts {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)

	out := ""
	var sum Stats
	for _, n := range names {
		c.mu.Lock()
		m := c.mounts[n]
		c.mu.Unlock()
		st := m.Stats()
		state := "live"
		if m.Dead() {
			state = "dead"
		}
		out += fmt.Sprintf("mount %s state %s entries %d hits %d neghits %d misses %d fills %d invals %d evicts %d fastwalks %d fallbacks %d\n",
			n, state, st.Entries, st.Hits, st.NegHits, st.Misses, st.Fills, st.Invals, st.Evicts, st.FastRes, st.FastFail)
		sum.Hits += st.Hits
		sum.NegHits += st.NegHits
		sum.Misses += st.Misses
		sum.Fills += st.Fills
		sum.Invals += st.Invals
		sum.Evicts += st.Evicts
		sum.Entries += st.Entries
		sum.FastRes += st.FastRes
		sum.FastFail += st.FastFail
	}
	out += fmt.Sprintf("total entries %d hits %d neghits %d misses %d fills %d invals %d evicts %d fastwalks %d fallbacks %d\n",
		sum.Entries, sum.Hits, sum.NegHits, sum.Misses, sum.Fills, sum.Invals, sum.Evicts, sum.FastRes, sum.FastFail)
	return out
}
