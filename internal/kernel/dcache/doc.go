// Package dcache is the kernel dentry cache: a sharded name→inode map,
// keyed by (mount, parent directory, component name), that lets hot-path
// opens and stats resolve path components without reading directory
// blocks or taking directory inode locks. It is the metadata-side twin
// of the buffer cache — where bcache makes re-reading DATA cheap, dcache
// makes re-walking NAMES cheap.
//
// # Entries
//
// An entry is either positive (the name exists; the entry carries the
// child's identity — inode number for xv6fs, first cluster for FAT32 —
// plus filesystem-specific auxiliary fields) or negative (a lookup
// proved the name absent, so repeated opens of a missing path answer
// ENOENT without a directory scan). Each mount's entries live in a fixed
// number of shards, each a map plus an LRU list with a bounded capacity;
// filling a full shard evicts the coldest entry.
//
// # Consistency
//
// Two rules make cached answers safe without per-entry locks:
//
//  1. Fills happen only while the filesystem holds the parent
//     directory's lock, and every mutation (create, unlink, rmdir,
//     rename) invalidates the affected (parent, name) keys — also under
//     the parent's lock, before the directory block is changed. An entry
//     observed while holding the parent's lock is therefore truthful.
//
//  2. Every invalidation bumps the mount's generation counter. A
//     lock-free walk snapshots the generation, resolves components from
//     the cache, and re-checks the generation before trusting the
//     result; a bump during the walk sends the caller to the classic
//     locked walk. This is the seqlock discipline Linux applies with
//     rename_lock: if no name mutated anywhere on the mount during the
//     walk, every hop's answer was simultaneously true.
//
// Removing a directory additionally drops every entry parented by it
// (InvalidateDir), so a recycled inode number can never resurrect stale
// children or stale ENOENTs. A mount that degrades to read-only after a
// write error calls Kill, which empties the cache and refuses further
// fills — a dead mount serves no cached answers.
//
// Counters (hits, misses, negative hits, fills, invalidations,
// evictions) aggregate per mount and surface on /proc/dcache.
package dcache
