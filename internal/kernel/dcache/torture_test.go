// Lookup-vs-mutation torture suite: concurrent walkers hammer the
// lock-free cached path-resolution fast path while mutators create,
// unlink, rename (same-dir and cross-dir), and recycle directories
// underneath them. The invariants:
//
//   - a permanent file never resolves to ENOENT and never changes
//     contents;
//   - a name that never existed always resolves to ENOENT;
//   - a stat of a churning name may land on either side of a mutation
//     but never errors with anything besides ErrNotFound, and never
//     reports another file's identity;
//   - at quiescence, every cached answer equals the locked-walk answer
//     (checked by killing the cache and re-statting everything).
//
// Run under -race -count=2 by the CI torture job: the generation
// protocol's correctness is exactly the kind of bug only the race
// detector and repetition surface.
package dcache_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fat32"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
	"protosim/internal/kernel/xv6fs"
)

// tfs is the slice of the filesystem API the torture workload needs;
// both xv6fs.FS and fat32.FS satisfy it.
type tfs interface {
	Open(t *sched.Task, path string, flags int) (fs.FileOps, error)
	Stat(t *sched.Task, path string) (fs.Stat, error)
	Mkdir(t *sched.Task, path string) error
	Unlink(t *sched.Task, path string) error
	Rename(t *sched.Task, oldPath, newPath string) error
}

func mountXv6(t *testing.T) (tfs, *dcache.Mount) {
	t.Helper()
	rd := fs.NewRamdisk(xv6fs.BlockSize, 8192)
	if err := xv6fs.Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	f, err := xv6fs.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := dcache.New(0, 0).NewMount("/")
	f.SetDcache(m)
	return f, m
}

func mountFat(t *testing.T) (tfs, *dcache.Mount) {
	t.Helper()
	rd := fs.NewRamdisk(fat32.SectorSize, 8192)
	if err := fat32.Mkfs(rd); err != nil {
		t.Fatal(err)
	}
	f, err := fat32.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := dcache.New(0, 0).NewMount("/d")
	f.SetDcache(m)
	return f, m
}

func writeFile(t *testing.T, f tfs, path string, body []byte) {
	t.Helper()
	ops, err := f.Open(nil, path, fs.OCreate|fs.OWrOnly|fs.OTrunc)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	fl := fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly|fs.OTrunc)
	if _, err := fl.Write(nil, body); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := fl.Close(nil); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestTortureLookupVsMutation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mount func(*testing.T) (tfs, *dcache.Mount)
	}{
		{"xv6fs", mountXv6},
		{"fat32", mountFat},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tortureOne(t, tc.mount)
		})
	}
}

func tortureOne(t *testing.T, mount func(*testing.T) (tfs, *dcache.Mount)) {
	ksync.SetRankCheck(true)
	t.Cleanup(func() { ksync.SetRankCheck(false) })
	f, m := mount(t)

	const (
		walkers  = 4
		mutators = 3
		rounds   = 200
	)
	// Permanent population: files that must survive the storm untouched,
	// plus each mutator's private churn directories.
	perm := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/perm%d.dat", i)
		body := bytes.Repeat([]byte{byte('a' + i)}, 64+i*17)
		writeFile(t, f, p, body)
		perm[p] = body
	}
	for w := 0; w < mutators; w++ {
		for _, d := range []string{fmt.Sprintf("/ma%d", w), fmt.Sprintf("/mb%d", w)} {
			if err := f.Mkdir(nil, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	ghosts := []string{"/never.dat", "/ma0/never", "/no/such/dir"}

	var wg sync.WaitGroup
	for w := 0; w < walkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Permanent files resolve, always, with stable contents.
				for p, body := range perm {
					st, err := f.Stat(nil, p)
					if err != nil {
						t.Errorf("walker %d: stat %s = %v", w, p, err)
						return
					}
					if st.Size != int64(len(body)) {
						t.Errorf("walker %d: %s size %d, want %d", w, p, st.Size, len(body))
						return
					}
				}
				// Ghosts never resolve.
				for _, p := range ghosts {
					if _, err := f.Stat(nil, p); !errors.Is(err, fs.ErrNotFound) {
						t.Errorf("walker %d: stat ghost %s = %v", w, p, err)
						return
					}
				}
				// Churning names: either answer is fine, any other error
				// is not.
				churn := fmt.Sprintf("/ma%d/churn.dat", r%mutators)
				if _, err := f.Stat(nil, churn); err != nil && !errors.Is(err, fs.ErrNotFound) {
					t.Errorf("walker %d: stat %s = %v", w, churn, err)
					return
				}
				// Every tenth round, a full open+read of one permanent file.
				if r%10 == 0 {
					p := fmt.Sprintf("/perm%d.dat", r/10%6)
					ops, err := f.Open(nil, p, fs.ORdOnly)
					if err != nil {
						t.Errorf("walker %d: open %s = %v", w, p, err)
						return
					}
					fl := fs.NewOpenFile(ops, fs.ORdOnly)
					got := make([]byte, len(perm[p]))
					if _, err := fl.Read(nil, got); err != nil || !bytes.Equal(got, perm[p]) {
						fl.Close(nil)
						t.Errorf("walker %d: read %s = %v (match=%v)", w, p, err, bytes.Equal(got, perm[p]))
						return
					}
					fl.Close(nil)
				}
			}
		}(w)
	}
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			da := fmt.Sprintf("/ma%d", w)
			db := fmt.Sprintf("/mb%d", w)
			for r := 0; r < rounds; r++ {
				// create → same-dir rename → cross-dir rename → unlink.
				p0 := da + "/churn.dat"
				p1 := da + "/moved.dat"
				p2 := db + "/landed.dat"
				writeFile(t, f, p0, []byte("churn"))
				if err := f.Rename(nil, p0, p1); err != nil {
					t.Errorf("mutator %d: same-dir rename: %v", w, err)
					return
				}
				if err := f.Rename(nil, p1, p2); err != nil {
					t.Errorf("mutator %d: cross-dir rename: %v", w, err)
					return
				}
				if err := f.Unlink(nil, p2); err != nil {
					t.Errorf("mutator %d: unlink: %v", w, err)
					return
				}
				// Directory recycling every 25 rounds: rmdir + mkdir of a
				// private subdir, so InvalidateDir runs under fire.
				if r%25 == 0 {
					sub := da + "/sub"
					if err := f.Mkdir(nil, sub); err != nil {
						t.Errorf("mutator %d: mkdir %s: %v", w, sub, err)
						return
					}
					writeFile(t, f, sub+"/x", []byte("x"))
					if err := f.Unlink(nil, sub+"/x"); err != nil {
						t.Errorf("mutator %d: unlink in sub: %v", w, err)
						return
					}
					if err := f.Unlink(nil, sub); err != nil {
						t.Errorf("mutator %d: rmdir %s: %v", w, sub, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent equivalence: every cached answer must agree with the
	// locked walk. Warm pass first (served from the cache where
	// possible), then kill the cache and re-stat — identical results.
	paths := []string{}
	for p := range perm {
		paths = append(paths, p)
	}
	paths = append(paths, ghosts...)
	for w := 0; w < mutators; w++ {
		paths = append(paths,
			fmt.Sprintf("/ma%d", w), fmt.Sprintf("/mb%d", w),
			fmt.Sprintf("/ma%d/churn.dat", w), fmt.Sprintf("/ma%d/moved.dat", w),
			fmt.Sprintf("/mb%d/landed.dat", w), fmt.Sprintf("/ma%d/sub", w))
	}
	type answer struct {
		err  error
		size int64
		typ  fs.FileType
	}
	warm := make(map[string]answer)
	for _, p := range paths {
		st, err := f.Stat(nil, p)
		warm[p] = answer{err: err, size: st.Size, typ: st.Type}
	}
	m.Kill() // all subsequent stats take the locked, uncached walk
	for _, p := range paths {
		st, err := f.Stat(nil, p)
		w := warm[p]
		if !errors.Is(err, w.err) && !(err == nil && w.err == nil) {
			t.Errorf("%s: cached err %v, locked err %v", p, w.err, err)
			continue
		}
		if err == nil && (st.Size != w.size || st.Type != w.typ) {
			t.Errorf("%s: cached (size %d type %v), locked (size %d type %v)",
				p, w.size, w.typ, st.Size, st.Type)
		}
	}

	// The storm must actually have exercised the cache.
	st := m.Stats()
	if st.Hits == 0 || st.NegHits == 0 || st.Invals == 0 || st.Fills == 0 {
		t.Fatalf("torture did not exercise the cache: %+v", st)
	}
}
