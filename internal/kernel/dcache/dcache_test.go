package dcache

import (
	"strings"
	"testing"
)

func newMount(t *testing.T, shards, perShard int) *Mount {
	t.Helper()
	return New(shards, perShard).NewMount("/t")
}

func TestLookupFillInvalidate(t *testing.T) {
	m := newMount(t, 2, 8)
	if _, ok := m.Lookup(1, "a"); ok {
		t.Fatal("hit on empty cache")
	}
	m.PutPositive(1, "a", Entry{Ino: 7, IsDir: true, Size: 42})
	e, ok := m.Lookup(1, "a")
	if !ok || e.Neg || e.Ino != 7 || !e.IsDir || e.Size != 42 {
		t.Fatalf("positive lookup = %+v, %v", e, ok)
	}
	m.PutNegative(1, "b")
	e, ok = m.Lookup(1, "b")
	if !ok || !e.Neg {
		t.Fatalf("negative lookup = %+v, %v", e, ok)
	}
	// Same name under a different parent is a different key.
	if _, ok := m.Lookup(2, "a"); ok {
		t.Fatal("hit for wrong parent")
	}
	g := m.Gen()
	m.Invalidate(1, "a")
	if m.Gen() == g {
		t.Fatal("Invalidate did not bump the generation")
	}
	if _, ok := m.Lookup(1, "a"); ok {
		t.Fatal("hit after invalidate")
	}
	st := m.Stats()
	if st.Hits != 1 || st.NegHits != 1 || st.Misses != 3 || st.Fills != 2 || st.Invals != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 1 { // only the negative "b" remains
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestLRUEviction(t *testing.T) {
	m := newMount(t, 1, 3) // single shard so the LRU order is total
	m.PutPositive(1, "a", Entry{Ino: 1})
	m.PutPositive(1, "b", Entry{Ino: 2})
	m.PutPositive(1, "c", Entry{Ino: 3})
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := m.Lookup(1, "a"); !ok {
		t.Fatal("a missing before eviction")
	}
	m.PutPositive(1, "d", Entry{Ino: 4})
	if _, ok := m.Lookup(1, "b"); ok {
		t.Fatal("LRU victim b survived")
	}
	for _, name := range []string{"a", "c", "d"} {
		if _, ok := m.Lookup(1, name); !ok {
			t.Fatalf("%s evicted, want resident", name)
		}
	}
	st := m.Stats()
	if st.Evicts != 1 || st.Entries != 3 {
		t.Fatalf("evicts %d entries %d, want 1 and 3", st.Evicts, st.Entries)
	}
	// Re-putting an existing key updates in place — no eviction.
	m.PutPositive(1, "a", Entry{Ino: 11})
	if st := m.Stats(); st.Evicts != 1 {
		t.Fatalf("update-in-place evicted: %d", st.Evicts)
	}
	if e, _ := m.Lookup(1, "a"); e.Ino != 11 {
		t.Fatalf("update-in-place lost: %+v", e)
	}
}

func TestFixSize(t *testing.T) {
	m := newMount(t, 1, 8)
	m.PutPositive(1, "f", Entry{Ino: 9, Size: 100})
	g := m.Gen()
	m.FixSize(1, "f", 9, 4096)
	if m.Gen() != g {
		t.Fatal("FixSize bumped the generation")
	}
	if e, _ := m.Lookup(1, "f"); e.Size != 4096 {
		t.Fatalf("size = %d, want 4096", e.Size)
	}
	// Wrong ino: the name was re-bound since; size must not be smeared
	// onto the new child.
	m.FixSize(1, "f", 8, 1)
	if e, _ := m.Lookup(1, "f"); e.Size != 4096 {
		t.Fatalf("FixSize with stale ino applied: size %d", e.Size)
	}
	// Negative entries carry no size.
	m.PutNegative(1, "g")
	m.FixSize(1, "g", 0, 5)
	if e, _ := m.Lookup(1, "g"); !e.Neg || e.Size != 0 {
		t.Fatalf("FixSize touched a negative entry: %+v", e)
	}
}

func TestInvalidateDir(t *testing.T) {
	m := newMount(t, 4, 8)
	m.PutPositive(10, "a", Entry{Ino: 1})
	m.PutNegative(10, "b")
	m.PutPositive(20, "a", Entry{Ino: 2})
	g := m.Gen()
	m.InvalidateDir(10)
	if m.Gen() == g {
		t.Fatal("InvalidateDir did not bump the generation")
	}
	if _, ok := m.Lookup(10, "a"); ok {
		t.Fatal("child of dead dir survived")
	}
	if _, ok := m.Lookup(10, "b"); ok {
		t.Fatal("negative entry of dead dir survived")
	}
	if _, ok := m.Lookup(20, "a"); !ok {
		t.Fatal("sibling dir's child was dropped")
	}
	if st := m.Stats(); st.Invals != 2 {
		t.Fatalf("invals = %d, want 2", st.Invals)
	}
}

func TestKill(t *testing.T) {
	m := newMount(t, 2, 8)
	m.PutPositive(1, "a", Entry{Ino: 1})
	if m.Dead() {
		t.Fatal("dead before Kill")
	}
	m.Kill()
	if !m.Dead() {
		t.Fatal("not dead after Kill")
	}
	if _, ok := m.Lookup(1, "a"); ok {
		t.Fatal("hit on dead mount")
	}
	m.PutPositive(1, "b", Entry{Ino: 2})
	m.PutNegative(1, "c")
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("dead mount accepted fills: %d entries", st.Entries)
	}
}

func TestNilMountIsInert(t *testing.T) {
	var m *Mount
	if _, ok := m.Lookup(1, "a"); ok {
		t.Fatal("nil mount hit")
	}
	m.PutPositive(1, "a", Entry{Ino: 1})
	m.PutNegative(1, "b")
	m.FixSize(1, "a", 1, 2)
	m.Invalidate(1, "a")
	m.InvalidateDir(1)
	m.Kill()
	m.FastPathResolved()
	m.FastPathFellBack()
	if m.Gen() != 0 || m.Dead() || m.Stats() != (Stats{}) {
		t.Fatal("nil mount not inert")
	}
}

func TestCacheAggregation(t *testing.T) {
	c := New(1, 8)
	a := c.NewMount("/")
	b := c.NewMount("/d")
	a.PutPositive(1, "x", Entry{Ino: 1})
	b.PutNegative(1, "y")
	a.Lookup(1, "x")
	b.Lookup(1, "y")
	b.FastPathResolved()
	sum := c.Stats()
	if sum.Hits != 1 || sum.NegHits != 1 || sum.Fills != 2 || sum.Entries != 2 || sum.FastRes != 1 {
		t.Fatalf("aggregate = %+v", sum)
	}
	out := c.String()
	for _, want := range []string{
		"mount / state live",
		"mount /d state live",
		"total entries 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	// Remount: same name replaces the handle, old counters leave the view.
	c.NewMount("/d")
	if sum := c.Stats(); sum.NegHits != 0 || sum.Entries != 1 {
		t.Fatalf("remount did not replace: %+v", sum)
	}
	b.Kill()
	if !strings.Contains(c.String(), "mount /d state live") {
		t.Fatal("killing the replaced handle leaked into the new mount's line")
	}
}
