package dcache_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/xv6fs"
)

// The path-lookup harness behind `make bench` / BENCH_path.json: stat
// traffic over a directory tree whose metadata working set exceeds the
// buffer cache, on a device with per-command latency — the regime where
// every locked walk pays real IO for directory blocks and inode blocks,
// and the dentry cache's lock-free fast path pays (almost) none.

const (
	pbDelay    = 25 * time.Microsecond // per device command
	pbTopDirs  = 8
	pbSubDirs  = 16 // per top dir: 128 subdir blocks, past the 128-buffer cache
	pbFiles    = 4  // per subdir: 512 files
	pbRounds   = 6
	pbNInodes  = 1024
	pbDiskSize = 4096
)

// slowDisk adds a fixed per-command latency to a ramdisk — the
// latency-bound device (SD card, network block device) where path
// resolution cost is IO count, not CPU.
type slowDisk struct {
	rd    *fs.Ramdisk
	delay time.Duration
}

func (d *slowDisk) BlockSize() int { return d.rd.BlockSize() }
func (d *slowDisk) Blocks() int    { return d.rd.Blocks() }
func (d *slowDisk) ReadBlocks(lba, n int, dst []byte) error {
	time.Sleep(d.delay)
	return d.rd.ReadBlocks(lba, n, dst)
}
func (d *slowDisk) WriteBlocks(lba, n int, src []byte) error {
	time.Sleep(d.delay)
	return d.rd.WriteBlocks(lba, n, src)
}

// newPathBenchFS builds a mounted xv6fs tree on a slow disk: pbTopDirs ×
// pbSubDirs directories with pbFiles files each, plus one ghost (never
// created) name per subdir. The bcache is big enough for the journal but
// far smaller than the tree's metadata, so locked walks keep missing.
func newPathBenchFS(tb testing.TB, cached bool) (*xv6fs.FS, []string, []string) {
	tb.Helper()
	sd := &slowDisk{rd: fs.NewRamdisk(xv6fs.BlockSize, pbDiskSize), delay: 0}
	if err := xv6fs.Mkfs(sd.rd, pbNInodes); err != nil {
		tb.Fatal(err)
	}
	f, err := xv6fs.MountWith(sd, nil, bcache.Options{Buffers: 128, Shards: 8, Readahead: -1})
	if err != nil {
		tb.Fatal(err)
	}
	if cached {
		f.SetDcache(dcache.New(0, 0).NewMount("/"))
	}
	var files, ghosts []string
	for ti := 0; ti < pbTopDirs; ti++ {
		td := fmt.Sprintf("/t%d", ti)
		if err := f.Mkdir(nil, td); err != nil {
			tb.Fatal(err)
		}
		for si := 0; si < pbSubDirs; si++ {
			sub := fmt.Sprintf("%s/s%d", td, si)
			if err := f.Mkdir(nil, sub); err != nil {
				tb.Fatal(err)
			}
			for fi := 0; fi < pbFiles; fi++ {
				p := fmt.Sprintf("%s/f%d", sub, fi)
				ops, err := f.Open(nil, p, fs.OCreate|fs.OWrOnly)
				if err != nil {
					tb.Fatal(err)
				}
				fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly).Close(nil)
				files = append(files, p)
			}
			ghosts = append(ghosts, sub+"/nope")
		}
	}
	if err := f.Sync(nil); err != nil {
		tb.Fatal(err)
	}
	sd.delay = pbDelay // setup ran at full speed; measurement pays latency
	return f, files, ghosts
}

// statSweep stats every file and ghost path `rounds` times and returns
// lookups per second.
func statSweep(tb testing.TB, f *xv6fs.FS, files, ghosts []string, rounds int) float64 {
	tb.Helper()
	start := time.Now()
	n := 0
	for r := 0; r < rounds; r++ {
		for _, p := range files {
			if _, err := f.Stat(nil, p); err != nil {
				tb.Fatalf("stat %s: %v", p, err)
			}
			n++
		}
		for _, p := range ghosts {
			if _, err := f.Stat(nil, p); err == nil {
				tb.Fatalf("ghost %s resolved", p)
			}
			n++
		}
	}
	return float64(n) / time.Since(start).Seconds()
}

// TestPathLookupThroughput is the BENCH_path.json recorder and gate:
// stat throughput with the dentry cache attached must be at least 1.5×
// the uncached locked-walk baseline on the latency-bound device (it
// should be far more — a warm fast-path walk does no IO at all).
// Heavyweight and timing-sensitive, so it only runs when BENCH_PATH_JSON
// names the output (the `make bench` / CI path).
func TestPathLookupThroughput(t *testing.T) {
	out := os.Getenv("BENCH_PATH_JSON")
	if out == "" {
		t.Skip("set BENCH_PATH_JSON=<path> to run the path-lookup benchmark")
	}
	fc, files, ghosts := newPathBenchFS(t, true)
	fu, ufiles, ughosts := newPathBenchFS(t, false)
	// One warm pass each: fills the dentry cache on the cached mount and
	// gives the uncached mount the same (futile) bcache warmup.
	statSweep(t, fc, files, ghosts, 1)
	statSweep(t, fu, ufiles, ughosts, 1)

	cached := statSweep(t, fc, files, ghosts, pbRounds)
	uncached := statSweep(t, fu, ufiles, ughosts, pbRounds)
	speedup := cached / uncached

	st := fc.Dcache().Stats()
	res := map[string]any{
		"workload": fmt.Sprintf("stat sweep, %d files + %d ghosts at depth 3, %v/cmd device, 128-buffer cache",
			len(files), len(ghosts), pbDelay),
		"cached_lookups_per_sec":   round2(cached),
		"uncached_lookups_per_sec": round2(uncached),
		"speedup":                  round2(speedup),
		"fast_walks":               st.FastRes,
		"fallbacks":                st.FastFail,
		"hits":                     st.Hits,
		"neg_hits":                 st.NegHits,
	}
	blob, err := json.MarshalIndent(map[string]any{"path_lookup": res}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("path lookup: cached %.0f/s vs uncached %.0f/s (%.2fx); %d fast walks, %d fallbacks",
		cached, uncached, speedup, st.FastRes, st.FastFail)
	if speedup < 1.5 {
		t.Fatalf("dentry cache speedup %.2fx < 1.5x gate (cached %.0f/s, uncached %.0f/s)",
			speedup, cached, uncached)
	}
	if st.FastRes == 0 {
		t.Fatal("benchmark never took the lock-free fast path")
	}
}

func round2(f float64) float64 { return float64(int(f*100)) / 100 }

// BenchmarkPathLookupCached / BenchmarkPathLookupUncached expose the
// same sweep through `go test -bench` for the log.
func BenchmarkPathLookupCached(b *testing.B) {
	f, files, ghosts := newPathBenchFS(b, true)
	statSweep(b, f, files, ghosts, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		statSweep(b, f, files, ghosts, 1)
	}
}

func BenchmarkPathLookupUncached(b *testing.B) {
	f, files, ghosts := newPathBenchFS(b, false)
	statSweep(b, f, files, ghosts, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		statSweep(b, f, files, ghosts, 1)
	}
}
