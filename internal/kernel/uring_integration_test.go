package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/uring"
	"protosim/internal/kernel/xv6fs"
)

// TestRingBatchedIO is the tentpole contract end to end: a process sets
// up its ring, stages a whole batch of positional writes against an
// xv6fs file, and lands them all under exactly ONE syscall — then reads
// them back the same way.
func TestRingBatchedIO(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "ringio", func(p *Proc, _ []string) int {
		r, err := p.SysRingSetup(32)
		if err != nil {
			return 1
		}
		fd, err := p.SysOpen("/ring.dat", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 2
		}
		const n = 16
		for i := 0; i < n; i++ {
			chunk := []byte(fmt.Sprintf("[%02d]", i))
			if err := r.Queue(uring.SQE{Op: uring.OpPwrite, FD: fd, Off: int64(i * 4), Buf: chunk, User: uint64(i)}); err != nil {
				return 3
			}
		}
		// The whole batch is one kernel entry: the syscall counter moves by
		// exactly one across the drain, however many SQEs it carries.
		before := p.Kernel().SyscallCount()
		got, err := p.SysRingEnter(n, n)
		if delta := p.Kernel().SyscallCount() - before; err != nil || got != n || delta != 1 {
			return 4
		}
		for i := 0; i < n; i++ {
			cqe, ok := r.Reap()
			if !ok || cqe.Err != nil || cqe.Res != 4 {
				return 5
			}
		}
		// Read the batch back through the ring too.
		buf := make([]byte, 4*n)
		views := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			views = append(views, buf[i*4:i*4+4])
			if err := r.Queue(uring.SQE{Op: uring.OpPread, FD: fd, Off: int64(i * 4), Buf: views[i], User: uint64(i)}); err != nil {
				return 6
			}
		}
		if _, err := p.SysRingEnter(n, n); err != nil {
			return 7
		}
		for i := 0; i < n; i++ {
			if cqe, ok := r.Reap(); !ok || cqe.Err != nil || cqe.Res != 4 {
				return 8
			}
		}
		want := make([]byte, 0, 4*n)
		for i := 0; i < n; i++ {
			want = append(want, []byte(fmt.Sprintf("[%02d]", i))...)
		}
		if !bytes.Equal(buf, want) {
			return 9
		}
		// A ring fsync observes the same per-open error cursor SysFsync
		// does; on a healthy file it completes clean.
		if err := r.Queue(uring.SQE{Op: uring.OpFsync, FD: fd, User: 99}); err != nil {
			return 10
		}
		if _, err := p.SysRingEnter(1, 1); err != nil {
			return 11
		}
		if cqe, ok := r.Reap(); !ok || cqe.User != 99 || cqe.Err != nil {
			return 12
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

// TestRingLifecycle covers the setup/teardown rules: one ring per
// process, Enter without a ring fails, the handle survives via the
// Ring() accessor, and process exit closes the ring before the FD table
// is torn down.
func TestRingLifecycle(t *testing.T) {
	k := bootKernel(t, 2, nil)
	var escaped *uring.Ring
	code := run(t, k, "ringlife", func(p *Proc, _ []string) int {
		if _, err := p.SysRingEnter(0, 0); !errors.Is(err, ErrNoRing) {
			return 1
		}
		if p.Ring() != nil {
			return 2
		}
		r, err := p.SysRingSetup(8)
		if err != nil {
			return 3
		}
		if p.Ring() != r {
			return 4
		}
		if _, err := p.SysRingSetup(8); !errors.Is(err, ErrRingExists) {
			return 5
		}
		if _, err := p.SysRingSetup(0); !errors.Is(err, ErrRingExists) {
			return 6 // the one-per-group check fires before validation
		}
		escaped = r
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// finalize closed the ring on exit: the escaped handle is dead.
	if err := escaped.Queue(uring.SQE{Op: uring.OpNop}); !errors.Is(err, uring.ErrClosed) {
		t.Fatalf("Queue on an exited process's ring = %v, want ErrClosed", err)
	}
	if _, err := escaped.Enter(nil, 0, 0); !errors.Is(err, uring.ErrClosed) {
		t.Fatalf("Enter on an exited process's ring = %v, want ErrClosed", err)
	}
}

// TestRingShutdownRace regression-tests the teardown race between a
// fresh ring's process exit and scheduler shutdown: a worker task killed
// before its FIRST dispatch never runs its function, so worker-exit
// accounting inside the function would leave finalize's ring.Close
// waiting forever (the pool watcher counts task goroutines instead).
// Each iteration boots a kernel, sets a ring up, exits immediately, and
// shuts down while the worker pool may not have been dispatched yet.
func TestRingShutdownRace(t *testing.T) {
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		m := testMachine(2)
		rd, err := xv6fs.BuildImage(2048, 128, nil)
		if err != nil {
			t.Fatal(err)
		}
		k := New(fullConfig(m, rd.Image()))
		if err := k.Boot(); err != nil {
			t.Fatal(err)
		}
		if code := run(t, k, "ringshut", func(p *Proc, _ []string) int {
			if _, err := p.SysRingSetup(8); err != nil {
				return 1
			}
			return 0
		}); code != 0 {
			t.Fatalf("iter %d exit = %d", i, code)
		}
		// run returns on the body's exit code, racing finalize — Shutdown's
		// kill storm can condemn ring workers that never ran.
		if err := k.Shutdown(); err != nil {
			t.Fatalf("iter %d shutdown: %v", i, err)
		}
	}
}

// TestRingSharedByThreads: the ring is group state like the FD table — a
// clone sees the leader's ring through Ring() and can drive it with its
// own SysRingEnter.
func TestRingSharedByThreads(t *testing.T) {
	k := bootKernel(t, 2, nil)
	code := run(t, k, "ringthreads", func(p *Proc, _ []string) int {
		r, err := p.SysRingSetup(8)
		if err != nil {
			return 1
		}
		fd, err := p.SysOpen("/shared.dat", fs.OCreate|fs.ORdWr)
		if err != nil {
			return 2
		}
		result := make(chan int, 1)
		if _, err := p.SysClone("ringer", func(tp *Proc) {
			tr := tp.Ring()
			if tr != r {
				result <- 10
				return
			}
			if err := tr.Queue(uring.SQE{Op: uring.OpPwrite, FD: fd, Off: 0, Buf: []byte("from-thread"), User: 1}); err != nil {
				result <- 11
				return
			}
			if _, err := tp.SysRingEnter(1, 1); err != nil {
				result <- 12
				return
			}
			if cqe, ok := tr.Reap(); !ok || cqe.Err != nil || cqe.Res != len("from-thread") {
				result <- 13
				return
			}
			result <- 0
		}); err != nil {
			return 3
		}
		if rc := <-result; rc != 0 {
			return rc
		}
		buf := make([]byte, 16)
		n, err := p.SysPread(fd, buf, 0)
		if err != nil || string(buf[:n]) != "from-thread" {
			return 4
		}
		return 0
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
}
