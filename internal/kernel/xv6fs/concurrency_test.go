package xv6fs

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/ksync"
)

// withRankCheck turns the ksync lock-order assertion on for one test, so a
// lock-hierarchy regression fails loudly instead of deadlocking quietly.
func withRankCheck(t *testing.T) {
	t.Helper()
	ksync.SetRankCheck(true)
	t.Cleanup(func() { ksync.SetRankCheck(false) })
}

// runWithDeadline fails the test if fn does not finish in time — the
// deadlock detector for the concurrency suite. The goroutine dump makes a
// hung lock acquisition diagnosable from the failure output.
func runWithDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock suspected: no progress after %v\n%s", d, buf[:n])
	}
}

// TestParallelDisjointFiles hammers ONE mount with 8 tasks working on
// disjoint files — mixed create/write/read/append/unlink — and verifies
// every file's final contents. Under the old volume lock this exercised
// nothing; with per-inode locks it drives 8 inode locks and all cache
// shards concurrently (run under -race).
func TestParallelDisjointFiles(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 4096)
	const workers = 8
	const rounds = 25

	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				main := fmt.Sprintf("/w%d.dat", w)
				scratch := fmt.Sprintf("/s%d.tmp", w)
				dir := fmt.Sprintf("/d%d", w)
				if err := f.Mkdir(nil, dir); err != nil {
					t.Errorf("w%d mkdir: %v", w, err)
					return
				}
				payload := bytes.Repeat([]byte{byte('A' + w)}, 3000)
				for r := 0; r < rounds; r++ {
					// Main file: truncate, write, read back, append.
					fl, err := openOF(f, main, fs.OCreate|fs.ORdWr|fs.OTrunc)
					if err != nil {
						t.Errorf("w%d open: %v", w, err)
						return
					}
					if _, err := fl.Write(nil, payload); err != nil {
						t.Errorf("w%d write: %v", w, err)
						return
					}
					fl.Seek(nil, 0, fs.SeekSet)
					got := make([]byte, len(payload))
					n, err := fl.Read(nil, got)
					if err != nil || !bytes.Equal(got[:n], payload) {
						t.Errorf("w%d round %d read back %d bytes, err %v", w, r, n, err)
						return
					}
					fl.Close(nil)

					// Scratch file in the worker's own directory: create,
					// stat, unlink — the metadata-heavy mix.
					sp := dir + scratch
					sf, err := openOF(f, sp, fs.OCreate|fs.OWrOnly)
					if err != nil {
						t.Errorf("w%d scratch open: %v", w, err)
						return
					}
					sf.Write(nil, payload[:64])
					sf.Close(nil)
					if _, err := f.Stat(nil, sp); err != nil {
						t.Errorf("w%d scratch stat: %v", w, err)
						return
					}
					if err := f.Unlink(nil, sp); err != nil {
						t.Errorf("w%d scratch unlink: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	// Final contents: every worker's main file holds its own byte pattern.
	for w := 0; w < workers; w++ {
		fl, err := openOF(f, fmt.Sprintf("/w%d.dat", w), fs.ORdOnly)
		if err != nil {
			t.Fatalf("final open w%d: %v", w, err)
		}
		got := make([]byte, 4000)
		n, err := fl.Read(nil, got)
		if err != nil || n != 3000 {
			t.Fatalf("final read w%d: %d bytes, %v", w, n, err)
		}
		for i := 0; i < n; i++ {
			if got[i] != byte('A'+w) {
				t.Fatalf("w%d byte %d = %q, files bled into each other", w, i, got[i])
			}
		}
		fl.Close(nil)
		// Scratch files were unlinked; directories must be empty.
		d, _ := openOF(f, fmt.Sprintf("/d%d", w), fs.ORdOnly)
		if entries, _ := d.ReadDir(nil); len(entries) != 0 {
			t.Fatalf("w%d dir not empty: %v", w, entries)
		}
		d.Close(nil)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// TestConcurrentRenameOpposingDirs bounces files between two directories
// in BOTH directions at once, with create/unlink churn mixed in — the
// classic two-directory lock-ordering deadlock, looped under -race with
// the rank assertion armed.
func TestConcurrentRenameOpposingDirs(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 2048)
	for _, d := range []string{"/a", "/b"} {
		if err := f.Mkdir(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	mkfile := func(path string) {
		fl, err := openOF(f, path, fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		fl.Write(nil, []byte(path))
		fl.Close(nil)
	}
	mkfile("/a/x")
	mkfile("/b/y")

	const rounds = 120
	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		bounce := func(from, to string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := f.Rename(nil, from, to); err != nil {
					t.Errorf("rename %s -> %s: %v", from, to, err)
					return
				}
				if err := f.Rename(nil, to, from); err != nil {
					t.Errorf("rename %s -> %s: %v", to, from, err)
					return
				}
			}
		}
		churn := func(dir string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p := fmt.Sprintf("%s/c%d", dir, r%7)
				fl, err := openOF(f, p, fs.OCreate|fs.OWrOnly)
				if err != nil {
					t.Errorf("churn create %s: %v", p, err)
					return
				}
				fl.Close(nil)
				if err := f.Unlink(nil, p); err != nil {
					t.Errorf("churn unlink %s: %v", p, err)
					return
				}
			}
		}
		wg.Add(4)
		go bounce("/a/x", "/b/x") // a→b direction
		go bounce("/b/y", "/a/y") // b→a direction, opposing lock order
		go churn("/a")
		go churn("/b")
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	// Both files must be back home with their contents intact.
	for path, want := range map[string]string{"/a/x": "/a/x", "/b/y": "/b/y"} {
		fl, err := openOF(f, path, fs.ORdOnly)
		if err != nil {
			t.Fatalf("final open %s: %v", path, err)
		}
		got := make([]byte, 16)
		n, _ := fl.Read(nil, got)
		if string(got[:n]) != want {
			t.Fatalf("%s content = %q", path, got[:n])
		}
		fl.Close(nil)
	}
}

// TestConcurrentRenameDirAcrossDirs moves a DIRECTORY between two parents
// while a walker resolves paths through it — ".." rewriting plus
// ancestor-first ordering under load.
func TestConcurrentRenameDirAcrossDirs(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 2048)
	for _, d := range []string{"/p", "/q", "/p/mv"} {
		if err := f.Mkdir(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	fl, _ := openOF(f, "/p/mv/deep", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("deep"))
	fl.Close(nil)

	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for r := 0; r < 80; r++ {
				if err := f.Rename(nil, "/p/mv", "/q/mv"); err != nil {
					t.Errorf("mv p->q: %v", err)
					return
				}
				if err := f.Rename(nil, "/q/mv", "/p/mv"); err != nil {
					t.Errorf("mv q->p: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				// The dir is always under exactly one parent; a walk
				// through either location must never see anything but
				// found/not-found.
				_, err1 := f.Stat(nil, "/p/mv/deep")
				_, err2 := f.Stat(nil, "/q/mv/deep")
				for _, err := range []error{err1, err2} {
					if err != nil && !errors.Is(err, fs.ErrNotFound) {
						t.Errorf("walker: %v", err)
						return
					}
				}
			}
		}()
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	st, err := f.Stat(nil, "/p/mv/deep")
	if err != nil || st.Size != 4 {
		t.Fatalf("final stat = %+v, %v", st, err)
	}
	// ".." must have followed the moves home again.
	if _, err := f.Stat(nil, "/p/mv/../mv/deep"); err != nil {
		t.Fatalf("dot-dot after rename: %v", err)
	}
}

// TestCreateVsWalkSameParent races creates in one directory against path
// walks through that same directory (run under -race).
func TestCreateVsWalkSameParent(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 2048)
	if err := f.Mkdir(nil, "/p"); err != nil {
		t.Fatal(err)
	}
	fl, _ := openOF(f, "/p/known", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("k"))
	fl.Close(nil)

	runWithDeadline(t, 2*time.Minute, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				p := fmt.Sprintf("/p/f%02d", i)
				fl, err := openOF(f, p, fs.OCreate|fs.OWrOnly)
				if err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				fl.Close(nil)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := f.Stat(nil, "/p/known"); err != nil {
					t.Errorf("walk: %v", err)
					return
				}
			}
		}()
		wg.Wait()
	})
	if t.Failed() {
		return
	}
	d, _ := openOF(f, "/p", fs.ORdOnly)
	entries, _ := d.ReadDir(nil)
	if len(entries) != 61 { // known + 60 creates
		t.Fatalf("entries = %d, want 61", len(entries))
	}
}

// TestCreateInUnlinkedDirFails pins the orphaned-parent guard: once a
// directory is unlinked, creating into it must fail even for a holder
// whose reference predates the unlink — otherwise the new inode would be
// stranded forever when the orphan's data is reclaimed.
func TestCreateInUnlinkedDirFails(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 512)
	if err := f.Mkdir(nil, "/doomed"); err != nil {
		t.Fatal(err)
	}
	// Hold a reference to the directory across the unlink, as a racing
	// Open's walk would.
	d, err := openOF(f, "/doomed", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := openOF(f, "/doomed/stranded", fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("create in unlinked dir = %v, want ErrNotFound", err)
	}
	d.Close(nil)
}

// TestCloseVsReadRace hammers concurrent Read/Stat against Close on the
// same description (threads share FD tables, so the kernel must tolerate
// it): late operations fail with ErrBadFD rather than touching an inode
// whose reference was dropped.
func TestCloseVsReadRace(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 1024)
	for r := 0; r < 40; r++ {
		fl, err := openOF(f, "/race.bin", fs.OCreate|fs.ORdWr)
		if err != nil {
			t.Fatal(err)
		}
		fl.Write(nil, bytes.Repeat([]byte{9}, 2048))
		fl.Seek(nil, 0, fs.SeekSet)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			buf := make([]byte, 2048)
			for {
				if _, err := fl.Read(nil, buf); err != nil {
					if !errors.Is(err, fs.ErrBadFD) {
						t.Errorf("read after close: %v", err)
					}
					return
				}
				fl.Seek(nil, 0, fs.SeekSet)
			}
		}()
		go func() {
			defer wg.Done()
			fl.Stat(nil)
			fl.Close(nil)
		}()
		wg.Wait()
		if t.Failed() {
			return
		}
	}
	// The inode reference must have been dropped exactly once: unlink and
	// reuse still work.
	if err := f.Unlink(nil, "/race.bin"); err != nil {
		t.Fatal(err)
	}
}

// TestUnlinkWhileOpen pins the xv6 deferred-reclaim semantics the itable
// brought: an unlinked file stays readable through open descriptors, and
// its blocks are freed only at the last close.
func TestUnlinkWhileOpen(t *testing.T) {
	withRankCheck(t)
	f := newFS(t, 256)
	fl, err := openOF(f, "/keep", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 50*BlockSize)
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/keep"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/keep"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat after unlink = %v", err)
	}
	// Still readable through the open descriptor.
	fl.Seek(nil, 0, fs.SeekSet)
	got := make([]byte, len(payload))
	n := 0
	for n < len(got) {
		m, err := fl.Read(nil, got[n:])
		if err != nil || m == 0 {
			t.Fatalf("read after unlink: %d, %v", m, err)
		}
		n += m
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("unlinked-but-open file corrupted")
	}
	// Blocks must come back at close: a same-size file fits again.
	fl.Close(nil)
	fl2, err := openOF(f, "/next", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl2.Write(nil, payload); err != nil {
		t.Fatalf("blocks not reclaimed at final close: %v", err)
	}
	fl2.Close(nil)
}
