package xv6fs

import (
	"bytes"
	"errors"
	"testing"

	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fs"
)

// newCachedFS mounts an xv6fs volume with a dentry cache attached, the
// way the kernel wires it at boot.
func newCachedFS(t *testing.T, blocks int) (*FS, *dcache.Mount) {
	t.Helper()
	f := newFS(t, blocks)
	m := dcache.New(4, 64).NewMount("/")
	f.SetDcache(m)
	return f, m
}

func TestNegativeEntryCachedUntilCreate(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	if _, err := f.Stat(nil, "/nope"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat = %v, want ErrNotFound", err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/nope"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("second stat = %v, want ErrNotFound", err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("repeated ENOENT did not hit the negative entry")
	}
	fl, err := openOF(f, "/nope", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("hello"))
	fl.Close(nil)
	st, err := f.Stat(nil, "/nope")
	if err != nil || st.Size != 5 {
		t.Fatalf("stat after create = %+v, %v (stale negative entry?)", st, err)
	}
}

func TestUnlinkInstallsNegativeEntry(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	fl, err := openOF(f, "/x", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if _, err := f.Stat(nil, "/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/x"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat after unlink = %v (stale positive entry?)", err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/x"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal(err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("unlink did not leave a negative entry behind")
	}
}

func TestRenameOverInvalidatesBothNames(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	for _, nb := range []struct{ name, body string }{{"/a", "AAAA"}, {"/b", "BB"}} {
		fl, err := openOF(f, nb.name, fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		fl.Write(nil, []byte(nb.body))
		fl.Close(nil)
	}
	if _, err := f.Stat(nil, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(nil, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/a"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat old name = %v (stale positive entry?)", err)
	}
	neg0 := m.Stats().NegHits
	if _, err := f.Stat(nil, "/a"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal(err)
	}
	if m.Stats().NegHits <= neg0 {
		t.Fatal("rename did not cache the old name's ENOENT")
	}
	fl, err := openOF(f, "/b", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	n, _ := fl.Read(nil, got)
	fl.Close(nil)
	if !bytes.Equal(got[:n], []byte("AAAA")) {
		t.Fatalf("read new name = %q, want AAAA (stale dcache mapping?)", got[:n])
	}
}

// TestRecycledDirectoryInum: removing a directory must drop every cached
// entry keyed under its inum — the number is recycled, and a stale child
// (or stale ENOENT) must not leak into the recycled directory's life.
func TestRecycledDirectoryInum(t *testing.T) {
	f, _ := newCachedFS(t, 4096)
	if err := f.Mkdir(nil, "/d"); err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/d/f", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("old"))
	fl.Close(nil)
	if _, err := f.Stat(nil, "/d/f"); err != nil { // warm /d/f
		t.Fatal(err)
	}
	if _, err := f.Stat(nil, "/d/g"); !errors.Is(err, fs.ErrNotFound) { // warm ENOENT
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/d"); err != nil {
		t.Fatal(err)
	}
	// Recreate the directory — very likely on the recycled inum — and
	// give it a DIFFERENT population.
	if err := f.Mkdir(nil, "/d"); err != nil {
		t.Fatal(err)
	}
	fl, err = openOF(f, "/d/g", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("new"))
	fl.Close(nil)
	if _, err := f.Stat(nil, "/d/f"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat /d/f in recycled dir = %v, want ErrNotFound", err)
	}
	if st, err := f.Stat(nil, "/d/g"); err != nil || st.Size != 3 {
		t.Fatalf("stat /d/g in recycled dir = %+v, %v (stale ENOENT?)", st, err)
	}
}

// TestRemountROKillsDcache: journal-death degradation kills the cache;
// reads fall through to directory blocks and still work.
func TestRemountROKillsDcache(t *testing.T) {
	f, m := newCachedFS(t, 4096)
	fl, err := openOF(f, "/keep", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("data"))
	fl.Close(nil)
	if _, err := f.Stat(nil, "/keep"); err != nil {
		t.Fatal(err)
	}
	f.remountRO(errors.New("injected fault"))
	if !m.Dead() {
		t.Fatal("remount-ro did not kill the dcache mount")
	}
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("dead mount still holds %d entries", st.Entries)
	}
	if st, err := f.Stat(nil, "/keep"); err != nil || st.Size != 4 {
		t.Fatalf("stat on ro mount = %+v, %v", st, err)
	}
	if err := f.Unlink(nil, "/keep"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("unlink on ro mount = %v, want ErrReadOnly", err)
	}
}
