package xv6fs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// The journal-overhead harness behind BENCH_journal.json: a metadata-heavy
// churn (create, write a few blocks, rename-replace, unlink) on a
// journaled mount against the identical volume mounted unjournaled. Every
// operation now pays Begin/Record/End bookkeeping, and each group commit
// pays two targeted flushes (slots, header) that the unjournaled build
// never issues — the recorder quantifies that price and gates it.

const (
	jbWorkers = 4
	jbRounds  = 60 // per worker: one create+write+rename+unlink cycle each
	jbBlocks  = 2  // data blocks written per created file
)

// newJournalBenchFS formats a volume and mounts it. Unjournaled mounts
// come from the same image with LogSize zeroed in the superblock — the
// log region becomes dead space, so both configurations run identical
// geometry and allocator behaviour.
func newJournalBenchFS(tb testing.TB, journaled bool) *FS {
	tb.Helper()
	rd := fs.NewRamdisk(BlockSize, 4096)
	if err := Mkfs(rd, 256); err != nil {
		tb.Fatal(err)
	}
	if !journaled {
		sb := make([]byte, BlockSize)
		if err := rd.ReadBlocks(0, 1, sb); err != nil {
			tb.Fatal(err)
		}
		binary.LittleEndian.PutUint32(sb[24:], 0) // LogStart
		binary.LittleEndian.PutUint32(sb[28:], 0) // LogSize
		if err := rd.WriteBlocks(0, 1, sb); err != nil {
			tb.Fatal(err)
		}
	}
	f, err := MountWith(rd, nil, bcache.Options{Buffers: 1024, Shards: 8, Readahead: -1})
	if err != nil {
		tb.Fatal(err)
	}
	if journaled && f.Journal() == nil {
		tb.Fatal("journaled mount has no journal")
	}
	if !journaled && f.Journal() != nil {
		tb.Fatal("unjournaled mount grew a journal")
	}
	return f
}

// runMetadataChurn drives workers×rounds create/write/rename/unlink
// cycles and returns operations per second (4 metadata ops per cycle).
func runMetadataChurn(tb testing.TB, f *FS) float64 {
	tb.Helper()
	payload := make([]byte, jbBlocks*BlockSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < jbWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < jbRounds; r++ {
				name := fmt.Sprintf("/w%d-r%d.dat", w, r)
				tmp := fmt.Sprintf("/w%d-r%d.tmp", w, r)
				fl, err := openOF(f, tmp, fs.OCreate|fs.OWrOnly)
				if err != nil {
					tb.Error(err)
					return
				}
				if _, err := fl.Write(nil, payload); err != nil {
					tb.Error(err)
					fl.Close(nil)
					return
				}
				fl.Close(nil)
				if err := f.Rename(nil, tmp, name); err != nil {
					tb.Error(err)
					return
				}
				if err := f.Unlink(nil, name); err != nil {
					tb.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := f.Sync(nil); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	ops := float64(jbWorkers * jbRounds * 4) // create, write, rename, unlink
	return ops / elapsed.Seconds()
}

// TestJournalOverhead is the BENCH_journal.json recorder and gate:
// metadata-churn throughput on a journaled mount must hold a bounded
// fraction of the unjournaled build's — the write-ahead log's two extra
// flushes per group commit are the crash-consistency price. The measured
// ratio sits around 0.5× on a zero-latency ramdisk (the worst case for
// journaling: no device latency for group commit to amortize); the gate
// is 0.35× to stay clear of scheduler noise. Heavyweight and
// timing-sensitive, so it only runs when BENCH_JOURNAL_JSON names the
// output (the `make bench` / CI path).
func TestJournalOverhead(t *testing.T) {
	out := os.Getenv("BENCH_JOURNAL_JSON")
	if out == "" {
		t.Skip("set BENCH_JOURNAL_JSON=<path> to run the journal-overhead benchmark")
	}
	// Warm once: first-run allocator and cache effects hit both configs.
	runMetadataChurn(t, newJournalBenchFS(t, true))

	plain := runMetadataChurn(t, newJournalBenchFS(t, false))
	journaled := runMetadataChurn(t, newJournalBenchFS(t, true))
	if t.Failed() {
		return
	}
	fj := newJournalBenchFS(t, true)
	runMetadataChurn(t, fj)
	stats := fj.Journal().Stats()
	ratio := journaled / plain
	res := map[string]any{
		"workload": fmt.Sprintf("metadata churn: %d workers × %d create/write/rename/unlink cycles, %d-block files",
			jbWorkers, jbRounds, jbBlocks),
		"unjournaled_ops_per_s": round2(plain),
		"journaled_ops_per_s":   round2(journaled),
		"ratio":                 round2(ratio),
		"commits":               stats.Commits,
		"checkpoints":           stats.Checkpoints,
		"absorbed":              stats.Absorbed,
		"installs":              stats.Installs,
	}
	blob, err := json.MarshalIndent(map[string]any{"journal_overhead": res}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("metadata churn: journaled %.0f ops/s vs unjournaled %.0f ops/s (%.2fx); %d commits, %d absorbed",
		journaled, plain, ratio, stats.Commits, stats.Absorbed)
	if ratio < 0.35 {
		t.Errorf("journaled throughput is %.2fx the unjournaled build, want >= 0.35x", ratio)
	}
}

// BenchmarkJournalChurn exposes the same workload through `go test
// -bench` for the log, one sub-benchmark per configuration.
func BenchmarkJournalChurn(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		journaled bool
	}{{"unjournaled", false}, {"journaled", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runMetadataChurn(b, newJournalBenchFS(b, cfg.journaled))
			}
		})
	}
}
