package xv6fs

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// The random-4K file-IO harness behind `make bench` / BENCH_file.json:
// positional IO through the OpenFile contract (pread: no offset lock, one
// inode lock per op) against the pre-redesign idiom it replaces
// (lseek+read: an offset-lock round-trip plus two dispatches per op) —
// with several workers hammering ONE shared open file description, the
// dup/fork sharing shape where the old API forced full serialization.

const (
	fbFileBlocks = 256     // 256 KB file, well inside MaxFile and the cache
	fbIOSize     = 4 << 10 // random 4K ops
	fbOpsPerW    = 3000    // per worker per round
	fbWorkers    = 4
)

type fileBenchFS struct {
	f  *FS
	of *fs.OpenFile
}

func newFileBenchFS(tb testing.TB) *fileBenchFS {
	tb.Helper()
	rd := fs.NewRamdisk(BlockSize, 4096)
	if err := Mkfs(rd, 64); err != nil {
		tb.Fatal(err)
	}
	f, err := MountWith(rd, nil, bcache.Options{Buffers: 1024, Shards: 8, Readahead: -1})
	if err != nil {
		tb.Fatal(err)
	}
	of, err := openOF(f, "/bench.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		tb.Fatal(err)
	}
	data := make([]byte, fbFileBlocks*BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := of.Write(nil, data); err != nil {
		tb.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		tb.Fatal(err)
	}
	return &fileBenchFS{f: f, of: of}
}

// runRandomIO drives workers×ops random 4K operations at the shared
// description and returns MB/s. Four modes: pread / lseek+read and
// pwrite / lseek+write.
func (b *fileBenchFS) runRandomIO(tb testing.TB, positional, write bool) float64 {
	tb.Helper()
	span := int64(fbFileBlocks*BlockSize - fbIOSize)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < fbWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, fbIOSize)
			for i := 0; i < fbOpsPerW; i++ {
				off := rng.Int63n(span)
				var err error
				switch {
				case positional && write:
					_, err = b.of.Pwrite(nil, buf, off)
				case positional:
					_, err = b.of.Pread(nil, buf, off)
				case write:
					if _, err = b.of.Seek(nil, off, fs.SeekSet); err == nil {
						_, err = b.of.Write(nil, buf)
					}
				default:
					if _, err = b.of.Seek(nil, off, fs.SeekSet); err == nil {
						_, err = b.of.Read(nil, buf)
					}
				}
				if err != nil {
					tb.Errorf("io: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	mb := float64(fbWorkers*fbOpsPerW*fbIOSize) / (1 << 20)
	return mb / elapsed.Seconds()
}

// TestFileIOThroughput is the BENCH_file.json recorder and gate: random
// 4K pread throughput on a shared descriptor must be at least the
// lseek+read baseline (it should comfortably beat it — pread takes no
// offset lock and dispatches once per op). Heavyweight and
// timing-sensitive, so it only runs when BENCH_FILE_JSON names the output
// (the `make bench` / CI path).
func TestFileIOThroughput(t *testing.T) {
	out := os.Getenv("BENCH_FILE_JSON")
	if out == "" {
		t.Skip("set BENCH_FILE_JSON=<path> to run the file-IO benchmark")
	}
	b := newFileBenchFS(t)
	// Warm once so every mode runs against the same cached file.
	b.runRandomIO(t, true, false)

	lseekRead := b.runRandomIO(t, false, false)
	pread := b.runRandomIO(t, true, false)
	lseekWrite := b.runRandomIO(t, false, true)
	pwrite := b.runRandomIO(t, true, true)
	if t.Failed() {
		return
	}
	res := map[string]any{
		"workload": fmt.Sprintf("random 4K ops, %d workers on one shared OFD, %dKB file, warm cache",
			fbWorkers, fbFileBlocks*BlockSize>>10),
		"pread_mbps":       round2(pread),
		"lseek_read_mbps":  round2(lseekRead),
		"pwrite_mbps":      round2(pwrite),
		"lseek_write_mbps": round2(lseekWrite),
		"pread_speedup":    round2(pread / lseekRead),
		"pwrite_speedup":   round2(pwrite / lseekWrite),
	}
	blob, err := json.MarshalIndent(map[string]any{"file_random4k": res}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("random 4K: pread %.1f MB/s vs lseek+read %.1f MB/s (%.2fx); pwrite %.1f vs lseek+write %.1f",
		pread, lseekRead, pread/lseekRead, pwrite, lseekWrite)
	// The gate: positional reads must not lose to the seek round-trip.
	if pread < lseekRead {
		t.Fatalf("pread %.1f MB/s < lseek+read baseline %.1f MB/s", pread, lseekRead)
	}
}

func round2(f float64) float64 { return float64(int(f*100)) / 100 }

// BenchmarkRandomPread and BenchmarkRandomLseekRead expose the same
// workload through `go test -bench` for the log.
func BenchmarkRandomPread(b *testing.B) {
	fb := newFileBenchFS(b)
	b.SetBytes(int64(fbWorkers * fbOpsPerW * fbIOSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.runRandomIO(b, true, false)
	}
}

func BenchmarkRandomLseekRead(b *testing.B) {
	fb := newFileBenchFS(b)
	b.SetBytes(int64(fbWorkers * fbOpsPerW * fbIOSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.runRandomIO(b, false, false)
	}
}
