// Package xv6fs is Proto's port of the xv6 filesystem ("xv6fs"): an
// ext2-like on-disk layout with a superblock, inode array, allocation
// bitmap and data blocks, accessed through the buffer cache. Geometry
// follows the paper's numbers: 1 KB blocks, 12 direct addresses plus one
// singly-indirect block, so the maximum file size is (12+256)·1 KB =
// 268 KB — the "270 KB" limit that pushes Prototype 5 to FAT32 (§4.5).
//
// Metadata stays strictly block-at-a-time (the xv6 structure the paper
// teaches), but file reads coalesce runs of physically contiguous data
// blocks into multi-block cache range reads — the sharded bcache's
// ReadRange — so sequentially-written files stream at range speed without
// the filesystem knowing anything about the cache's internals.
//
// Locking follows xv6 proper, not the volume-wide sleeplock earlier
// versions of this port used: an in-memory inode table (itable) hands out
// refcounted inodes, each with its own sleeplock, and the shared
// allocation structures get dedicated narrow locks (ialloc for the inode
// array, balloc for the block bitmap) so allocators never contend with
// data IO on unrelated files. The lock hierarchy — rename serialization,
// then inodes (parent directory before child), then allocators, then
// buffer-cache blocks — is ranked and assertable via ksync.SetRankCheck;
// see ARCHITECTURE.md's locking section.
package xv6fs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/dcache"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/jnl"
	"protosim/internal/kernel/ksync"
	"protosim/internal/kernel/sched"
)

// On-disk geometry.
const (
	BlockSize = 1024
	NDirect   = 12
	NIndirect = BlockSize / 4
	MaxFile   = NDirect + NIndirect // blocks: 268 KB

	Magic = 0x10203040

	DirentSize = 16
	MaxName    = 13 // dirent name bytes minus NUL

	inodeSize      = 64
	inodesPerBlock = BlockSize / inodeSize
	rootInum       = 1

	// DefaultLogBlocks is the write-ahead log region Mkfs reserves right
	// after the superblock: one header block plus 63 transaction slots —
	// room for six maximally-sized operations in one group commit.
	DefaultLogBlocks = 64

	// The on-disk orphan list lives in the superblock block's tail — inodes
	// unlinked while still open, recorded in the unlinking transaction so a
	// crash leaves mount-time recovery an exact list to reclaim instead of
	// a full inode-array scan. Layout at orphanOff: a uint32 overflow flag
	// (non-zero = the list filled up and recovery must fall back to the
	// scan), then orphanMax uint32 inode numbers (0 = empty slot).
	orphanOff = 64
	orphanMax = (BlockSize - orphanOff - 4) / 4
)

// On-disk inode types.
const (
	typeFree = 0
	typeDir  = 1
	typeFile = 2
)

// ErrBadFS reports a corrupt or foreign superblock.
var ErrBadFS = errors.New("xv6fs: bad superblock")

// Superblock mirrors the on-disk layout header. LogStart/LogSize describe
// the write-ahead log region; a zero LogSize is a legacy unjournaled image
// (pre-journal superblocks left those bytes zero) and mounts without one.
type Superblock struct {
	Magic       uint32
	Size        uint32 // total blocks
	NInodes     uint32
	InodeStart  uint32
	BitmapStart uint32
	DataStart   uint32
	LogStart    uint32 // log header block; slots follow
	LogSize     uint32 // log blocks including the header (0 = no journal)
}

func (sb *Superblock) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], sb.Magic)
	binary.LittleEndian.PutUint32(b[4:], sb.Size)
	binary.LittleEndian.PutUint32(b[8:], sb.NInodes)
	binary.LittleEndian.PutUint32(b[12:], sb.InodeStart)
	binary.LittleEndian.PutUint32(b[16:], sb.BitmapStart)
	binary.LittleEndian.PutUint32(b[20:], sb.DataStart)
	binary.LittleEndian.PutUint32(b[24:], sb.LogStart)
	binary.LittleEndian.PutUint32(b[28:], sb.LogSize)
}

func (sb *Superblock) decode(b []byte) {
	sb.Magic = binary.LittleEndian.Uint32(b[0:])
	sb.Size = binary.LittleEndian.Uint32(b[4:])
	sb.NInodes = binary.LittleEndian.Uint32(b[8:])
	sb.InodeStart = binary.LittleEndian.Uint32(b[12:])
	sb.BitmapStart = binary.LittleEndian.Uint32(b[16:])
	sb.DataStart = binary.LittleEndian.Uint32(b[20:])
	sb.LogStart = binary.LittleEndian.Uint32(b[24:])
	sb.LogSize = binary.LittleEndian.Uint32(b[28:])
}

// validate rejects a corrupt or hostile superblock before any field is
// used to size a loop, an allocation, or a block address. All arithmetic
// is in uint64 so crafted values can't overflow their way past a bound;
// every region must land inside the device and the regions must appear
// in layout order without overlapping.
func (sb *Superblock) validate(devBlocks int) error {
	if sb.Magic != Magic {
		return fmt.Errorf("%w: magic %#x", ErrBadFS, sb.Magic)
	}
	size := uint64(sb.Size)
	if size < 4 || size > uint64(devBlocks) {
		return fmt.Errorf("%w: size %d (device %d)", ErrBadFS, sb.Size, devBlocks)
	}
	if sb.NInodes < 2 || sb.InodeStart < 1 {
		return fmt.Errorf("%w: %d inodes at block %d", ErrBadFS, sb.NInodes, sb.InodeStart)
	}
	inodeBlocks := (uint64(sb.NInodes) + inodesPerBlock - 1) / inodesPerBlock
	if uint64(sb.InodeStart)+inodeBlocks > uint64(sb.BitmapStart) {
		return fmt.Errorf("%w: inode array [%d,+%d) overruns bitmap at %d", ErrBadFS, sb.InodeStart, inodeBlocks, sb.BitmapStart)
	}
	bitmapBlocks := (size + BlockSize*8 - 1) / (BlockSize * 8)
	if uint64(sb.BitmapStart)+bitmapBlocks > uint64(sb.DataStart) {
		return fmt.Errorf("%w: bitmap [%d,+%d) overruns data at %d", ErrBadFS, sb.BitmapStart, bitmapBlocks, sb.DataStart)
	}
	if uint64(sb.DataStart) >= size {
		return fmt.Errorf("%w: data region starts at %d of %d blocks", ErrBadFS, sb.DataStart, sb.Size)
	}
	if sb.LogSize > 0 {
		if sb.LogStart < 1 || sb.LogSize < 2 || uint64(sb.LogStart)+uint64(sb.LogSize) > uint64(sb.InodeStart) {
			return fmt.Errorf("%w: log region [%d,+%d) overlaps metadata", ErrBadFS, sb.LogStart, sb.LogSize)
		}
	}
	return nil
}

// dinode is the on-disk inode.
type dinode struct {
	Type  uint16
	NLink uint16
	Size  uint32
	Addrs [NDirect + 1]uint32
}

func (di *dinode) encode(b []byte) {
	binary.LittleEndian.PutUint16(b[0:], di.Type)
	binary.LittleEndian.PutUint16(b[2:], di.NLink)
	binary.LittleEndian.PutUint32(b[4:], di.Size)
	for i, a := range di.Addrs {
		binary.LittleEndian.PutUint32(b[8+4*i:], a)
	}
}

func (di *dinode) decode(b []byte) {
	di.Type = binary.LittleEndian.Uint16(b[0:])
	di.NLink = binary.LittleEndian.Uint16(b[2:])
	di.Size = binary.LittleEndian.Uint32(b[4:])
	for i := range di.Addrs {
		di.Addrs[i] = binary.LittleEndian.Uint32(b[8+4*i:])
	}
}

// FS is a mounted xv6fs.
type FS struct {
	dev fs.BlockDevice
	bc  *bcache.Cache
	sb  Superblock

	// renameMu serializes renames per mount (rank: rename), with
	// reader-writer sharding: a same-directory rename — which touches one
	// directory and is already serialized by that directory's inode lock —
	// holds it SHARED, while a cross-directory rename holds it EXCLUSIVE.
	// Cross-directory two-lock acquisition orders by textual ancestry,
	// which is only stable while no other rename (same-directory renames
	// of a directory included — they relabel subtree paths) reshapes the
	// tree; exclusive mode buys exactly that window, and nothing more.
	renameMu ksync.RWSleepLock

	// dc is this mount's slice of the kernel dentry cache (nil = uncached;
	// every dcache method is a no-op on nil). Fills happen only under the
	// parent directory's inode lock; every mutation site invalidates —
	// also under the parent's lock, before the dirent write — and bumps
	// the mount generation that namex's lock-free fast path re-checks.
	dc *dcache.Mount

	// itable is the in-memory inode table: one entry per inode with live
	// references, deduplicated by inode number so every holder converges
	// on the same sleeplock. imu guards the map and the ref counts.
	imu    sync.Mutex
	itable map[int]*inode

	// owners maps inum -> the file's writeback-error stream, guarded by
	// imu. It is deliberately SEPARATE from the itable: write-behind
	// buffers keep their owner tag after the last close drops the
	// in-memory inode, so the stream must outlive it — a reopen finds the
	// same Owner and its fsync still flushes that earlier data and
	// reports its errors. An entry dies only when the on-disk file does
	// (iput's reclaim), so the map is bounded by live file identities.
	owners map[int]*bcache.Owner

	// Narrow allocator locks (rank: alloc). ialloc serializes inode-array
	// allocation scans and free transitions; balloc serializes the block
	// bitmap. Data IO on already-allocated blocks never touches either.
	ialloc ksync.SleepLock
	balloc ksync.SleepLock

	// log is the write-ahead metadata journal (nil on legacy images with
	// no log region). Every entry point that can modify metadata brackets
	// itself with beginOp/endOp — exactly one bracket per entry point,
	// taken before any lock, never nested — and metadata writes go through
	// writeMeta, which records them in the open transaction.
	log *jnl.Journal

	// Error-resilience state (errors=remount-ro, like ext4's default).
	// degraded flips when any asynchronous writeback is abandoned (data
	// loss recorded in the owning file's errseq stream); roFlag latches
	// when METADATA durability fails — a journal commit error or device
	// death — after which every mutating entry point returns ErrReadOnly.
	// Reads and fsync stay available: fsync is how applications learn
	// which writes were lost.
	degraded atomic.Bool
	roFlag   atomic.Bool
	roCause  atomic.Value // error

	// recentlyFreed guards against the metadata-journaling reuse hazard: a
	// block freed inside the OPEN (uncommitted) transaction must not be
	// reallocated — file data written into it is not journaled, so the
	// write-behind daemon could land that data in a block the on-disk
	// (pre-commit) metadata still considers live, and a crash before
	// commit would corrupt the old owner. freeBlock adds entries, the
	// allocBlock scan skips them, and the journal's commit hook clears the
	// set (once the free is durable the block is genuinely reusable).
	freedMu       sync.Mutex
	recentlyFreed map[int]bool
}

// inode is an in-memory inode: the per-file lock the whole filesystem
// hangs off, plus a cached copy of the on-disk dinode.
type inode struct {
	inum int
	ref  int // guarded by FS.imu

	// lock (rank: inode, order: inum) guards valid and di, and serializes
	// all metadata/data operations on this inode.
	lock  ksync.SleepLock
	valid bool
	di    dinode

	// wb is this file's writeback-error stream (shared via FS.owners so
	// it survives the in-memory inode): data writes tag their dirty
	// buffers with it, asynchronous write failures advance it, and the
	// file's fsync observes it (bcache errseq semantics).
	wb *bcache.Owner
}

// Mount opens an existing filesystem on dev with default cache sizing.
func Mount(dev fs.BlockDevice, t *sched.Task) (*FS, error) {
	return MountWith(dev, t, bcache.Options{})
}

// MountWith opens an existing filesystem on dev with an explicitly
// configured buffer cache (shard count, buffer count, readahead).
func MountWith(dev fs.BlockDevice, t *sched.Task, copts bcache.Options) (*FS, error) {
	if dev.BlockSize() != BlockSize {
		return nil, fmt.Errorf("%w: device block size %d, want %d", ErrBadFS, dev.BlockSize(), BlockSize)
	}
	f := &FS{
		dev:    dev,
		itable: make(map[int]*inode),
		owners: make(map[int]*bcache.Owner),
	}
	// Give-up notifications from the cache drive the mount's health: any
	// abandoned writeback marks the volume degraded, and device death —
	// after which no metadata can ever commit — latches it read-only.
	// The hook runs with the buffer sleeplock held, so it only flips
	// atomics; a caller-supplied hook is chained after ours.
	userGiveUp := copts.OnGiveUp
	copts.OnGiveUp = func(lba int, err error) {
		f.degraded.Store(true)
		if errors.Is(err, fs.ErrDeviceDead) {
			f.remountRO(err)
		}
		if userGiveUp != nil {
			userGiveUp(lba, err)
		}
	}
	f.bc = bcache.NewWithOptions(dev, copts)
	f.renameMu.SetRank(ksync.RankRename, 0)
	f.ialloc.SetRank(ksync.RankAlloc, 1)
	f.balloc.SetRank(ksync.RankAlloc, 2)
	b, err := f.bc.Get(t, 0)
	if err != nil {
		return nil, err
	}
	f.sb.decode(b.Data)
	f.bc.Release(b)
	if err := f.sb.validate(dev.Blocks()); err != nil {
		return nil, err
	}
	if f.sb.LogSize > 0 {
		f.log = jnl.New(f.bc, int(f.sb.LogStart), int(f.sb.LogSize))
		f.recentlyFreed = make(map[int]bool)
		f.log.OnCommit(func() {
			f.freedMu.Lock()
			for lba := range f.recentlyFreed {
				delete(f.recentlyFreed, lba)
			}
			f.freedMu.Unlock()
		})
		// Recovery before anything reads metadata: replay the committed
		// transaction the crash interrupted (if the header names one),
		// then reclaim orphans — files that were unlinked-but-open at the
		// crash, durable with no directory entry left.
		if _, err := f.log.Recover(t); err != nil {
			return nil, err
		}
		if err := f.reclaimOrphans(t); err != nil {
			return nil, err
		}
		// Checkpoint on kflushd idle: committed transactions drain to
		// their home blocks during quiet periods, off commit's critical
		// path. Mount precedes the daemon, so the hook is set in time.
		f.bc.SetIdleHook(func(ht *sched.Task) { f.log.Checkpoint(ht) })
	}
	return f, nil
}

// Journal exposes the write-ahead log (nil when unjournaled) for tests
// and /proc diagnostics.
func (f *FS) Journal() *jnl.Journal { return f.log }

// SetDcache attaches the mount's dentry cache. Call before the volume
// sees traffic (right after MountWith); a nil mount runs uncached.
func (f *FS) SetDcache(m *dcache.Mount) { f.dc = m }

// Dcache returns the attached dentry-cache mount (nil when uncached).
func (f *FS) Dcache() *dcache.Mount { return f.dc }

// dcInval drops the cached lookup answer for (dp, name) and bumps the
// mount generation. Mutation sites call it while holding dp's lock,
// BEFORE writing the directory change, so a lock-free walk that read the
// soon-stale entry always fails its generation re-check. "." and ".."
// are never cached (fs.Clean collapses them before any walk).
func (f *FS) dcInval(dp *inode, name string) {
	if name == "." || name == ".." {
		return
	}
	f.dc.Invalidate(int64(dp.inum), name)
}

// dcFillPos records dp/name → inum. Caller holds dp's lock and has just
// proven the mapping against the directory itself.
func (f *FS) dcFillPos(dp *inode, name string, inum int) {
	if name == "." || name == ".." {
		return
	}
	f.dc.PutPositive(int64(dp.inum), name, dcache.Entry{Ino: int64(inum)})
}

// dcFillNeg records a proven ENOENT for dp/name. Caller holds dp's lock.
func (f *FS) dcFillNeg(dp *inode, name string) {
	if name == "." || name == ".." {
		return
	}
	f.dc.PutNegative(int64(dp.inum), name)
}

// remountRO latches the volume read-only, keeping the first cause. Called
// when metadata durability is gone: a journal group commit failed (the
// on-disk metadata can no longer be made consistent with the in-memory
// view) or the device died.
func (f *FS) remountRO(err error) {
	if f.roFlag.CompareAndSwap(false, true) {
		f.roCause.Store(err)
	}
	f.degraded.Store(true)
	// A dead mount serves no cached names: in-memory link counts may have
	// diverged from disk when a transaction aborted, so drop every entry
	// and refuse further fills.
	f.dc.Kill()
}

// checkRW gates mutating entry points: nil on a healthy mount,
// fs.ErrReadOnly once the volume has latched read-only.
func (f *FS) checkRW() error {
	if f.roFlag.Load() {
		return fs.ErrReadOnly
	}
	return nil
}

// Health reports the mount's error state: degraded means at least one
// asynchronous writeback was abandoned (per-file fsync has the details),
// readOnly means metadata durability failed and mutations are refused.
// cause is the error that latched read-only, nil otherwise.
func (f *FS) Health() (degraded, readOnly bool, cause error) {
	if e, ok := f.roCause.Load().(error); ok {
		cause = e
	}
	return f.degraded.Load(), f.roFlag.Load(), cause
}

// orphanAdd records inum on the on-disk orphan list, inside the caller's
// open transaction — the same transaction that drops the last directory
// link — so the unlink and its orphan record commit (or vanish)
// atomically. A full list sets the overflow flag instead, and mount-time
// recovery falls back to the full inode-array scan.
func (f *FS) orphanAdd(t *sched.Task, inum int) error {
	if f.log == nil {
		return nil
	}
	return f.writeMeta(t, 0, func(data []byte) {
		free := -1
		for i := 0; i < orphanMax; i++ {
			off := orphanOff + 4 + 4*i
			switch binary.LittleEndian.Uint32(data[off:]) {
			case uint32(inum):
				return // already listed
			case 0:
				if free < 0 {
					free = off
				}
			}
		}
		if free < 0 {
			binary.LittleEndian.PutUint32(data[orphanOff:], 1) // overflow
			return
		}
		binary.LittleEndian.PutUint32(data[free:], uint32(inum))
	})
}

// orphanRemove clears inum's list slot, inside the reclaiming
// transaction, so the storage free and the de-listing commit together.
// The superblock block is only journaled when the slot was actually
// present — ordinary reclaims (files never unlinked-while-open) cost no
// log slot here.
func (f *FS) orphanRemove(t *sched.Task, inum int) error {
	if f.log == nil {
		return nil
	}
	b, err := f.bc.Get(t, 0)
	if err != nil {
		return err
	}
	for i := 0; i < orphanMax; i++ {
		off := orphanOff + 4 + 4*i
		if binary.LittleEndian.Uint32(b.Data[off:]) == uint32(inum) {
			binary.LittleEndian.PutUint32(b.Data[off:], 0)
			err = f.log.Record(t, b)
			break
		}
	}
	f.bc.Release(b)
	return err
}

// reclaimOrphans frees the previous boot's unlinked-but-open files at
// mount, after journal recovery cancelled their deferred reclaims. The
// on-disk orphan list names them exactly — each entry committed with the
// unlink that created it — so recovery visits a handful of listed inodes
// instead of scanning the whole inode array; the scan survives only as
// the fallback when the list overflowed. Each reclaim runs inside its
// own transaction, so a crash mid-reclaim is itself recoverable. List
// entries are never trusted: out-of-range and stale inums (hostile or
// half-committed images) are skipped and swept.
func (f *FS) reclaimOrphans(t *sched.Task) error {
	var overflow bool
	var listed []int
	if err := f.readBlock(t, 0, func(data []byte) {
		overflow = binary.LittleEndian.Uint32(data[orphanOff:]) != 0
		for i := 0; i < orphanMax; i++ {
			if inum := binary.LittleEndian.Uint32(data[orphanOff+4+4*i:]); inum != 0 {
				listed = append(listed, int(inum))
			}
		}
	}); err != nil {
		return err
	}
	dirtyList := overflow || len(listed) > 0
	if overflow {
		listed = listed[:0]
		for inum := rootInum + 1; inum < int(f.sb.NInodes); inum++ {
			listed = append(listed, inum)
		}
	}
	for _, inum := range listed {
		if inum <= rootInum || inum >= int(f.sb.NInodes) {
			continue
		}
		var di dinode
		if err := f.readInode(t, inum, &di); err != nil {
			return err
		}
		if di.Type == typeFree || di.NLink > 0 {
			continue
		}
		f.beginOp(t)
		ip := f.iget(inum)
		if err := f.ilock(t, ip); err != nil {
			f.iput(t, ip)
			f.opAbort(err)
			f.endOp(t)
			return err
		}
		f.iunlock(ip)
		f.iput(t, ip) // sole ref + NLink 0: deferred reclaim fires here
		f.endOp(t)
	}
	if !dirtyList {
		return nil
	}
	// Each reclaim above de-listed its own slot; whatever is left is
	// stale or hostile. One transaction zeroes the region and the flag.
	f.beginOp(t)
	err := f.writeMeta(t, 0, func(data []byte) {
		for i := orphanOff; i < BlockSize; i++ {
			data[i] = 0
		}
	})
	f.opAbort(err)
	f.endOp(t)
	return err
}

// beginOp opens this operation's journal bracket (no-op unjournaled).
// The discipline that keeps the log deadlock-free: exactly one bracket
// per kernel entry point, taken BEFORE any inode or allocator lock, never
// nested — commit needs every bracket closed, so a bracket that waited on
// a lock held across another bracket's commit-wait would wedge the log.
func (f *FS) beginOp(t *sched.Task) {
	if f.log != nil {
		f.log.Begin(t)
	}
}

// endOp closes the bracket; the last closer group-commits. Commit errors
// are latched in the journal and surfaced at the next fsync or Sync — the
// same report-at-the-barrier model the write-behind cache uses for
// asynchronous writeback errors — and additionally flip the mount
// read-only: a failed group commit means the on-disk metadata can no
// longer be brought in line with memory, so permitting further mutation
// would only widen the damage (ext4's errors=remount-ro).
func (f *FS) endOp(t *sched.Task) {
	if f.log != nil {
		if err := f.log.End(t); err != nil {
			f.remountRO(err)
		}
	}
}

// opAbort poisons the open journal bracket when an operation is unwinding
// with a device-level error: some of its metadata blocks may already be
// recorded, and committing that half-operation would persist a state no
// crash could ever produce (a dirent without its inode update, an nlink
// without its dirent). The journal discards the whole batch at the last
// End and reports ErrAborted, which endOp turns into the read-only latch.
// Logical errors (not-found, exists, no-space...) never abort: their
// partial recordings are consistent by construction.
func (f *FS) opAbort(err error) {
	if f.log == nil || err == nil {
		return
	}
	if errors.Is(err, fs.ErrDeviceDead) || errors.Is(err, fs.ErrBadSector) ||
		errors.Is(err, fs.ErrSDInjected) {
		f.log.Abort(err)
	}
}

// Cache exposes buffer-cache statistics for the experiment harness.
func (f *FS) Cache() *bcache.Cache { return f.bc }

// --- the inode table ---

// iget returns a referenced in-memory inode for inum, without locking it
// or touching the disk. Every holder of the same inum gets the same
// structure, so its sleeplock is the per-inode lock.
func (f *FS) iget(inum int) *inode {
	f.imu.Lock()
	defer f.imu.Unlock()
	if ip, ok := f.itable[inum]; ok {
		ip.ref++
		return ip
	}
	wb := f.owners[inum]
	if wb == nil {
		wb = &bcache.Owner{}
		f.owners[inum] = wb
	}
	ip := &inode{inum: inum, ref: 1, wb: wb}
	ip.lock.SetRank(ksync.RankInode, int64(inum))
	f.itable[inum] = ip
	return ip
}

// ilock locks ip and loads its dinode from disk if this is the first lock
// since it entered the table. On error the inode is left unlocked.
func (f *FS) ilock(t *sched.Task, ip *inode) error { return f.ilockMode(t, ip, false) }

// ilockNested is ilock for tree-protocol acquisitions: locking a child
// while the parent directory's lock is held (see ksync.LockNested).
func (f *FS) ilockNested(t *sched.Task, ip *inode) error { return f.ilockMode(t, ip, true) }

func (f *FS) ilockMode(t *sched.Task, ip *inode, nested bool) error {
	if nested {
		ip.lock.LockNested(t)
	} else {
		ip.lock.Lock(t)
	}
	if !ip.valid {
		if err := f.readInode(t, ip.inum, &ip.di); err != nil {
			ip.lock.Unlock()
			return err
		}
		ip.valid = true
	}
	return nil
}

func (f *FS) iunlock(ip *inode) { ip.lock.Unlock() }

// iupdate writes ip's cached dinode through to the inode array. Callers
// hold ip.lock; the write is atomic under the inode block's buffer lock,
// so neighbours in the same block are never torn.
func (f *FS) iupdate(t *sched.Task, ip *inode) error {
	return f.writeInode(t, ip.inum, &ip.di)
}

// iput drops a reference. The last reference to an unlinked inode frees
// its data blocks and on-disk slot — xv6's deferred reclaim, which is what
// makes unlink-while-open safe: the dirent goes away immediately, the
// storage only when the final descriptor closes.
func (f *FS) iput(t *sched.Task, ip *inode) {
	f.imu.Lock()
	reclaimed := false
	// A latched-read-only mount must not reclaim: in-memory link counts
	// may have diverged from disk when a transaction aborted, and writing
	// frees based on them would corrupt what DID land. The next mount's
	// orphan recovery sweeps whatever this leaks.
	if ip.ref == 1 && ip.valid && ip.di.NLink == 0 && f.checkRW() == nil {
		// Sole reference and no directory links left: nobody else can
		// reach this inode (dirLookup can't find it, allocInode won't
		// hand it out until it is marked free), so dropping imu here is
		// safe — no new ref can appear. LockNested: unlink still holds
		// the parent directory's lock when it puts the child.
		f.imu.Unlock()
		ip.lock.LockNested(t)
		// A device error mid-reclaim leaves the transaction half-recorded
		// (some frees without the inode update); poison the bracket so it
		// never commits — the orphan record on disk survives for the next
		// mount to finish the job.
		rerr := f.truncate(t, ip)
		f.ialloc.Lock(t)
		ip.di.Type = typeFree
		if err := f.iupdate(t, ip); rerr == nil {
			rerr = err
		}
		f.ialloc.Unlock()
		// De-list from the on-disk orphan list in the same transaction:
		// the slot free above and the orphan record must commit together
		// or recovery would reclaim a reused inum.
		if err := f.orphanRemove(t, ip.inum); rerr == nil {
			rerr = err
		}
		f.opAbort(rerr)
		ip.valid = false
		ip.lock.Unlock()
		reclaimed = true
		f.imu.Lock()
	}
	ip.ref--
	if ip.ref == 0 {
		delete(f.itable, ip.inum)
		if reclaimed {
			// The on-disk file is gone; the inum's next owner is a
			// different file and must start a fresh error stream.
			delete(f.owners, ip.inum)
		}
	}
	f.imu.Unlock()
}

// iunlockput unlocks then releases — the common tail of directory ops.
func (f *FS) iunlockput(t *sched.Task, ip *inode) {
	f.iunlock(ip)
	f.iput(t, ip)
}

// --- low-level block and inode helpers ---

func (f *FS) readBlock(t *sched.Task, lba int, fn func(data []byte)) error {
	b, err := f.bc.Get(t, lba)
	if err != nil {
		return err
	}
	fn(b.Data)
	f.bc.Release(b)
	return nil
}

func (f *FS) writeBlock(t *sched.Task, lba int, fn func(data []byte)) error {
	b, err := f.bc.Get(t, lba)
	if err != nil {
		return err
	}
	fn(b.Data)
	f.bc.MarkDirty(b)
	f.bc.Release(b)
	return nil
}

// writeMeta is writeBlock for METADATA blocks — the inode array, the
// allocation bitmap, indirect blocks, directory content. On a journaled
// mount the block is recorded in the open transaction (frozen in the
// cache until the group commit makes its log copy durable); unjournaled
// mounts fall back to a plain dirty mark. Callers are inside a
// beginOp/endOp bracket whenever f.log is set.
func (f *FS) writeMeta(t *sched.Task, lba int, fn func(data []byte)) error {
	b, err := f.bc.Get(t, lba)
	if err != nil {
		return err
	}
	fn(b.Data)
	if f.log != nil {
		err = f.log.Record(t, b)
	} else {
		f.bc.MarkDirty(b)
	}
	f.bc.Release(b)
	return err
}

// allocBlock finds a zero bit in the bitmap, sets it, zeroes the block.
// The scan-and-claim runs under balloc so two writers can't claim the same
// block; the zeroing write happens after the claim, outside any allocator
// state, because the block is already private to the caller. Blocks freed
// inside the open transaction are skipped (see recentlyFreed); the zeroing
// write is deliberately NOT journaled — the block is unreachable from any
// committed metadata until this transaction's pointers to it commit, so a
// premature writeback of zeros can only land in a dead block.
func (f *FS) allocBlock(t *sched.Task) (int, error) {
	f.balloc.Lock(t)
	found := -1
	total := int(f.sb.Size)
	for bmBlock := 0; found < 0 && bmBlock*BlockSize*8 < total; bmBlock++ {
		err := f.writeMeta(t, int(f.sb.BitmapStart)+bmBlock, func(data []byte) {
			for i := 0; i < BlockSize*8; i++ {
				blockNo := bmBlock*BlockSize*8 + i
				if blockNo >= total {
					return
				}
				if blockNo < int(f.sb.DataStart) {
					continue // metadata blocks are permanently "allocated"
				}
				if data[i/8]&(1<<(i%8)) == 0 {
					if f.log != nil && f.isRecentlyFreed(blockNo) {
						continue // freed in the open txn: not reusable yet
					}
					data[i/8] |= 1 << (i % 8)
					found = blockNo
					return
				}
			}
		})
		if err != nil {
			f.balloc.Unlock()
			return 0, err
		}
	}
	f.balloc.Unlock()
	if found < 0 {
		return 0, fs.ErrNoSpace
	}
	if err := f.writeBlock(t, found, func(d []byte) {
		for i := range d {
			d[i] = 0
		}
	}); err != nil {
		return 0, err
	}
	return found, nil
}

// isRecentlyFreed reports whether lba was freed inside the open
// (uncommitted) transaction batch.
func (f *FS) isRecentlyFreed(lba int) bool {
	f.freedMu.Lock()
	defer f.freedMu.Unlock()
	return f.recentlyFreed[lba]
}

// freeBlock clears the bitmap bit for lba. On a journaled mount the block
// is also quarantined from reallocation until the freeing transaction
// commits.
func (f *FS) freeBlock(t *sched.Task, lba int) error {
	f.balloc.Lock(t)
	defer f.balloc.Unlock()
	if f.log != nil {
		f.freedMu.Lock()
		f.recentlyFreed[lba] = true
		f.freedMu.Unlock()
	}
	bmBlock := lba / (BlockSize * 8)
	bit := lba % (BlockSize * 8)
	return f.writeMeta(t, int(f.sb.BitmapStart)+bmBlock, func(data []byte) {
		data[bit/8] &^= 1 << (bit % 8)
	})
}

// readInode loads inode inum.
func (f *FS) readInode(t *sched.Task, inum int, di *dinode) error {
	lba := int(f.sb.InodeStart) + inum/inodesPerBlock
	return f.readBlock(t, lba, func(data []byte) {
		di.decode(data[(inum%inodesPerBlock)*inodeSize:])
	})
}

// writeInode stores inode inum. Inode-array blocks are metadata: on a
// journaled mount the write lands in the open transaction.
func (f *FS) writeInode(t *sched.Task, inum int, di *dinode) error {
	lba := int(f.sb.InodeStart) + inum/inodesPerBlock
	return f.writeMeta(t, lba, func(data []byte) {
		di.encode(data[(inum%inodesPerBlock)*inodeSize:])
	})
}

// allocInode finds a free on-disk inode and claims it, under ialloc.
func (f *FS) allocInode(t *sched.Task, typ uint16) (int, error) {
	f.ialloc.Lock(t)
	defer f.ialloc.Unlock()
	for inum := 1; inum < int(f.sb.NInodes); inum++ {
		var di dinode
		if err := f.readInode(t, inum, &di); err != nil {
			return 0, err
		}
		if di.Type == typeFree {
			di = dinode{Type: typ, NLink: 1}
			if err := f.writeInode(t, inum, &di); err != nil {
				return 0, err
			}
			return inum, nil
		}
	}
	return 0, fs.ErrNoSpace
}

// bmap returns the disk block of file block fb, allocating when alloc.
// Caller holds ip.lock.
func (f *FS) bmap(t *sched.Task, ip *inode, fb int, alloc bool) (int, error) {
	if fb < NDirect {
		if ip.di.Addrs[fb] == 0 {
			if !alloc {
				return 0, nil
			}
			nb, err := f.allocBlock(t)
			if err != nil {
				return 0, err
			}
			ip.di.Addrs[fb] = uint32(nb)
			if err := f.iupdate(t, ip); err != nil {
				return 0, err
			}
		}
		return int(ip.di.Addrs[fb]), nil
	}
	fb -= NDirect
	if fb >= NIndirect {
		return 0, fs.ErrFileTooBig
	}
	if ip.di.Addrs[NDirect] == 0 {
		if !alloc {
			return 0, nil
		}
		nb, err := f.allocBlock(t)
		if err != nil {
			return 0, err
		}
		ip.di.Addrs[NDirect] = uint32(nb)
		if err := f.iupdate(t, ip); err != nil {
			return 0, err
		}
	}
	var blockNo int
	err := f.readBlock(t, int(ip.di.Addrs[NDirect]), func(data []byte) {
		blockNo = int(binary.LittleEndian.Uint32(data[4*fb:]))
	})
	if err != nil {
		return 0, err
	}
	if blockNo == 0 && alloc {
		nb, err := f.allocBlock(t)
		if err != nil {
			return 0, err
		}
		blockNo = nb
		// The indirect block is metadata — a pointer write that reaches
		// disk ahead of the bitmap claim it depends on would be exactly
		// the inconsistency the journal exists to rule out.
		if err := f.writeMeta(t, int(ip.di.Addrs[NDirect]), func(data []byte) {
			binary.LittleEndian.PutUint32(data[4*fb:], uint32(nb))
		}); err != nil {
			return 0, err
		}
	}
	return blockNo, nil
}

// readData reads n bytes at off from ip into dst. Runs of physically
// contiguous, block-aligned data go through the cache's multi-block
// ReadRange; everything else stays block-at-a-time. Caller holds ip.lock.
func (f *FS) readData(t *sched.Task, ip *inode, off int64, dst []byte) (int, error) {
	size := int64(ip.di.Size)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(dst)) > size {
		dst = dst[:size-off]
	}
	done := 0
	for done < len(dst) {
		fb := int((off + int64(done)) / BlockSize)
		bo := int((off + int64(done)) % BlockSize)
		blockNo, err := f.bmap(t, ip, fb, false)
		if err != nil {
			return done, err
		}
		n := BlockSize - bo
		if n > len(dst)-done {
			n = len(dst) - done
		}
		if blockNo == 0 { // hole
			for i := 0; i < n; i++ {
				dst[done+i] = 0
			}
			done += n
			continue
		}
		if bo == 0 && n == BlockSize {
			// Aligned full block: extend to a contiguous multi-block run.
			run := 1
			for done+(run+1)*BlockSize <= len(dst) {
				nb, err := f.bmap(t, ip, fb+run, false)
				if err != nil {
					return done, err
				}
				if nb != blockNo+run {
					break
				}
				run++
			}
			if run > 1 {
				if err := f.bc.ReadRange(t, blockNo, run, dst[done:done+run*BlockSize]); err != nil {
					return done, err
				}
				done += run * BlockSize
				continue
			}
		}
		if err := f.readBlock(t, blockNo, func(data []byte) {
			copy(dst[done:done+n], data[bo:])
		}); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

// writeData writes src at off, growing the file. Caller holds ip.lock.
//
// The write path mirrors readData's coalescing: aligned full-block spans
// claim their physically contiguous runs through the cache's multi-block
// WriteRange — one cache call installs the whole run dirty, and the
// write-behind machinery later flushes it segment-granular instead of
// block-at-a-time — while unaligned edges stay on the single-block
// read-modify-write path. Sequential appends allocate mostly contiguous
// blocks (allocBlock scans lowest-free-first), so big writes become a
// handful of range calls. Every dirtied buffer is tagged with the inode's
// error stream (ip.wb), so an asynchronous writeback failure of this
// file's data is attributed to this file's fsync.
func (f *FS) writeData(t *sched.Task, ip *inode, off int64, src []byte) (int, error) {
	if off+int64(len(src)) > MaxFile*BlockSize {
		return 0, fs.ErrFileTooBig
	}
	done := 0
	for done < len(src) {
		fb := int((off + int64(done)) / BlockSize)
		bo := int((off + int64(done)) % BlockSize)
		blockNo, err := f.bmap(t, ip, fb, true)
		if err != nil {
			return done, err
		}
		n := BlockSize - bo
		if n > len(src)-done {
			n = len(src) - done
		}
		if bo == 0 && n == BlockSize {
			// Aligned full block: extend to a physically contiguous run.
			// bmap allocates as it probes; a probe that lands elsewhere on
			// disk isn't wasted — the next loop iteration writes it.
			run := 1
			for done+(run+1)*BlockSize <= len(src) {
				nb, err := f.bmap(t, ip, fb+run, true)
				if err != nil {
					return done, err
				}
				if nb != blockNo+run {
					break
				}
				run++
			}
			if err := f.bc.WriteRangeOwned(t, blockNo, run, src[done:done+run*BlockSize], ip.wb); err != nil {
				return done, err
			}
			done += run * BlockSize
			continue
		}
		// Unaligned edge: single-block read-modify-write under the buffer
		// lock, tagged with the same owner. Directory content is metadata
		// — the dirent dances of create/unlink/rename must commit or
		// vanish atomically with the inode and bitmap updates they pair
		// with — so on a journaled mount it is recorded in the open
		// transaction instead of marked dirty. Directories only ever write
		// 16-byte dirents, so they always land on this path, never the
		// range path above.
		b, err := f.bc.Get(t, blockNo)
		if err != nil {
			return done, err
		}
		copy(b.Data[bo:], src[done:done+n])
		if f.log != nil && ip.di.Type == typeDir {
			err = f.log.Record(t, b)
		} else {
			f.bc.MarkDirtyOwned(b, ip.wb)
		}
		f.bc.Release(b)
		if err != nil {
			return done, err
		}
		done += n
	}
	if newSize := off + int64(done); newSize > int64(ip.di.Size) {
		ip.di.Size = uint32(newSize)
		if err := f.iupdate(t, ip); err != nil {
			return done, err
		}
	}
	return done, nil
}

// truncate frees all blocks of an inode. Caller holds ip.lock.
func (f *FS) truncate(t *sched.Task, ip *inode) error {
	for i := 0; i < NDirect; i++ {
		if ip.di.Addrs[i] != 0 {
			if err := f.freeBlock(t, int(ip.di.Addrs[i])); err != nil {
				return err
			}
			ip.di.Addrs[i] = 0
		}
	}
	if ip.di.Addrs[NDirect] != 0 {
		var indirect [NIndirect]uint32
		if err := f.readBlock(t, int(ip.di.Addrs[NDirect]), func(data []byte) {
			for i := range indirect {
				indirect[i] = binary.LittleEndian.Uint32(data[4*i:])
			}
		}); err != nil {
			return err
		}
		for _, a := range indirect {
			if a != 0 {
				if err := f.freeBlock(t, int(a)); err != nil {
					return err
				}
			}
		}
		if err := f.freeBlock(t, int(ip.di.Addrs[NDirect])); err != nil {
			return err
		}
		ip.di.Addrs[NDirect] = 0
	}
	ip.di.Size = 0
	return f.iupdate(t, ip)
}

// Sync is the volume's durability barrier. Per-inode metadata lands in
// the cache before its lock drops (every mutation iupdates), so Sync
// first drains in-flight operations by taking each live inode lock once
// — one at a time, in inum order, never two held together, so it cannot
// deadlock against parent→child holders — then quiesces both allocators
// across the cache's Flush barrier, so the bitmap and inode array flush
// as a consistent snapshot and every dirty buffer's write completion is
// awaited. Asynchronous writeback errors (the kflushd daemon, eviction)
// latched since the previous sync are reported to this caller.
func (f *FS) Sync(t *sched.Task) error {
	f.imu.Lock()
	live := make([]*inode, 0, len(f.itable))
	for _, ip := range f.itable {
		ip.ref++
		live = append(live, ip)
	}
	f.imu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].inum < live[j].inum })
	for _, ip := range live {
		// Each drop gets its own journal bracket: this iput can be the
		// last reference to an unlinked inode, and the reclaim it fires
		// (truncate + inode free) is a metadata transaction like any
		// other. One bracket per inode keeps every transaction inside the
		// per-operation block budget.
		f.beginOp(t)
		ip.lock.Lock(t)
		ip.lock.Unlock()
		f.iput(t, ip)
		f.endOp(t)
	}
	// Commit whatever the journal still holds — with no lock held, because
	// log.Sync waits for open brackets and a bracket may be waiting on a
	// lock. Commit errors latched by earlier group commits surface here.
	var logErr error
	if f.log != nil {
		if logErr = f.log.Sync(t); logErr != nil {
			f.remountRO(logErr)
		}
	}
	f.ialloc.Lock(t)
	f.balloc.Lock(t)
	err := f.bc.Flush(t)
	f.balloc.Unlock()
	f.ialloc.Unlock()
	if logErr != nil {
		return logErr
	}
	return err
}
