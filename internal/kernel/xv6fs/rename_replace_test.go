package xv6fs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"protosim/internal/kernel/fs"
)

func newReplaceFS(t *testing.T) *FS {
	t.Helper()
	rd := fs.NewRamdisk(BlockSize, 2048)
	if err := Mkfs(rd, 128); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func writeNew(t *testing.T, f *FS, path, content string) {
	t.Helper()
	fl, err := openOF(f, path, fs.OCreate|fs.OWrOnly|fs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte(content)); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
}

func readAll(t *testing.T, f *FS, path string) []byte {
	t.Helper()
	fl, err := openOF(f, path, fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close(nil)
	st, err := fl.Stat(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, st.Size)
	if _, err := fl.Pread(nil, out, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRenameReplacesFile: POSIX rename onto an existing file atomically
// replaces it — no ErrExists — and the displaced inode is reclaimed. A
// handle opened on the victim BEFORE the rename keeps reading the old
// data (xv6 deferred reclaim), exactly like unlink-while-open.
func TestRenameReplacesFile(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/src", "new-contents")
	writeNew(t, f, "/dst", "old-contents!")

	victim, err := openOF(f, "/dst", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(nil, "/src", "/dst"); err != nil {
		t.Fatalf("replace rename = %v, want nil", err)
	}
	if _, err := f.Stat(nil, "/src"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("source survives: %v", err)
	}
	if got := readAll(t, f, "/dst"); !bytes.Equal(got, []byte("new-contents")) {
		t.Fatalf("dst = %q", got)
	}
	// The pre-rename handle still sees the displaced file's bytes.
	old := make([]byte, 13)
	if n, err := victim.Pread(nil, old, 0); err != nil || string(old[:n]) != "old-contents!" {
		t.Fatalf("victim handle read = %q, %v", old[:n], err)
	}
	victim.Close(nil) // reclaim happens here
	// The name is reusable and the replacement is stable.
	if got := readAll(t, f, "/dst"); !bytes.Equal(got, []byte("new-contents")) {
		t.Fatalf("dst after victim close = %q", got)
	}
}

// TestRenameReplaceTyping: the POSIX cross-type rules — a directory may
// only displace an EMPTY directory, a file only a non-directory.
func TestRenameReplaceTyping(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/file", "x")
	if err := f.Mkdir(nil, "/emptydir"); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir(nil, "/fulldir"); err != nil {
		t.Fatal(err)
	}
	writeNew(t, f, "/fulldir/kid", "y")
	if err := f.Mkdir(nil, "/movedir"); err != nil {
		t.Fatal(err)
	}

	if err := f.Rename(nil, "/file", "/emptydir"); !errors.Is(err, fs.ErrIsDir) {
		t.Fatalf("file onto dir = %v, want ErrIsDir (EISDIR)", err)
	}
	if err := f.Rename(nil, "/movedir", "/file"); !errors.Is(err, fs.ErrNotDir) {
		t.Fatalf("dir onto file = %v, want ErrNotDir (ENOTDIR)", err)
	}
	if err := f.Rename(nil, "/movedir", "/fulldir"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("dir onto full dir = %v, want ErrNotEmpty", err)
	}
	// Directory onto empty directory replaces it.
	if err := f.Rename(nil, "/movedir", "/emptydir"); err != nil {
		t.Fatalf("dir onto empty dir = %v, want nil", err)
	}
	if _, err := f.Stat(nil, "/movedir"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatal("moved dir still at old path")
	}
	st, err := f.Stat(nil, "/emptydir")
	if err != nil || st.Type != fs.TypeDir {
		t.Fatalf("replaced dir stat = %+v, %v", st, err)
	}
	// The replaced directory's inode is gone; the slot is writable again.
	writeNew(t, f, "/emptydir/fresh", "z")
	if got := readAll(t, f, "/emptydir/fresh"); !bytes.Equal(got, []byte("z")) {
		t.Fatalf("fresh = %q", got)
	}
}

// TestRenameSameInodeIsNoop: rename where both names already point at the
// same inode succeeds and removes nothing (POSIX).
func TestRenameSameInodeIsNoop(t *testing.T) {
	f := newReplaceFS(t)
	writeNew(t, f, "/same", "data")
	if err := f.Rename(nil, "/same", "/same"); err != nil {
		t.Fatalf("self rename = %v", err)
	}
	if got := readAll(t, f, "/same"); !bytes.Equal(got, []byte("data")) {
		t.Fatalf("same = %q", got)
	}
}

// TestRenameOntoAncestorNoDeadlock: renaming something onto its own
// parent (or any ancestor) must fail with the POSIX error, not
// self-deadlock on the already-held directory lock (regression: the
// replace path used to iget the victim — which IS dp1 — and block
// forever on its own lock while holding renameMu).
func TestRenameOntoAncestorNoDeadlock(t *testing.T) {
	f := newReplaceFS(t)
	if err := f.Mkdir(nil, "/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir(nil, "/x/y"); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir(nil, "/x/y/z"); err != nil {
		t.Fatal(err)
	}
	writeNew(t, f, "/x/y/file", "payload")

	done := make(chan error, 4)
	go func() { done <- f.Rename(nil, "/x/y/z", "/x/y") }()    // dir onto parent
	go func() { done <- f.Rename(nil, "/x/y/z", "/x") }()      // dir onto grandparent
	go func() { done <- f.Rename(nil, "/x/y/file", "/x/y") }() // file onto parent
	go func() { done <- f.Rename(nil, "/x/y/file", "/x") }()   // file onto grandparent
	want := []error{fs.ErrNotEmpty, fs.ErrNotEmpty, fs.ErrIsDir, fs.ErrIsDir}
	got := map[error]int{}
	for range want {
		select {
		case err := <-done:
			got[err]++
		case <-time.After(5 * time.Second):
			t.Fatal("rename onto ancestor deadlocked")
		}
	}
	if got[fs.ErrNotEmpty] != 2 || got[fs.ErrIsDir] != 2 {
		t.Fatalf("errors = %v, want 2×ErrNotEmpty + 2×ErrIsDir", got)
	}
	// The volume is not wedged: a normal rename still goes through.
	if err := f.Rename(nil, "/x/y/file", "/x/moved"); err != nil {
		t.Fatalf("follow-up rename = %v", err)
	}
}
