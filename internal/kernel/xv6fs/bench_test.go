package xv6fs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// slowDev wraps a ramdisk with a fixed per-command latency, slept while NO
// lock is held — like real storage, commands from different tasks overlap.
// It is the probe for what per-inode locking buys: under the old volume
// lock one file's device wait stalled every other file on the mount.
type slowDev struct {
	fs.BlockDevice
	delay time.Duration
}

func (d slowDev) ReadBlocks(lba, n int, dst []byte) error {
	time.Sleep(d.delay)
	return d.BlockDevice.ReadBlocks(lba, n, dst)
}

func (d slowDev) WriteBlocks(lba, n int, src []byte) error {
	time.Sleep(d.delay)
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

// BenchmarkParallelFiles measures N workers driving N distinct files on
// ONE mount.
//
//   - "io": a device with per-command latency and a deliberately small
//     cache, so every read pays device time. Workers' device waits overlap
//     iff the filesystem's locking lets them — the volume-lock baseline
//     pins this at ~1× regardless of worker count, per-inode locking
//     scales it with workers (even on one CPU: the waits, not the compute,
//     dominate).
//   - "mem": everything cache-resident; pure lock+memcpy cost. Scales only
//     with real cores, so on a single-CPU host expect ~1×; the number to
//     watch there is that adding workers costs nothing.
func BenchmarkParallelFiles(b *testing.B) {
	const ioSize = 128 << 10 // per file
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("io/workers=%d", workers), func(b *testing.B) {
			rd := fs.NewRamdisk(BlockSize, 8192)
			if err := Mkfs(rd, 64); err != nil {
				b.Fatal(err)
			}
			// 128 buffers against a 128 KB sequential scan per file: LRU
			// evicts every block before its reuse, so each pass misses in
			// full and pays the device latency — for EVERY worker count,
			// keeping the numbers comparable. The 2 ms command latency is
			// large against Go timer slack, so sleep jitter stays noise.
			f, err := MountWith(slowDev{rd, 2 * time.Millisecond}, nil,
				bcache.Options{Buffers: 128, Shards: 8, Readahead: -1})
			if err != nil {
				b.Fatal(err)
			}
			runParallelFiles(b, f, workers, ioSize, false)
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mem/workers=%d", workers), func(b *testing.B) {
			rd := fs.NewRamdisk(BlockSize, 8192)
			if err := Mkfs(rd, 64); err != nil {
				b.Fatal(err)
			}
			f, err := Mount(rd, nil)
			if err != nil {
				b.Fatal(err)
			}
			runParallelFiles(b, f, workers, ioSize, true)
		})
	}
}

func runParallelFiles(b *testing.B, f *FS, workers, ioSize int, withWrites bool) {
	files := make([]*fs.OpenFile, workers)
	data := make([]byte, ioSize)
	for i := range data {
		data[i] = byte(i)
	}
	for w := range files {
		fl, err := openOF(f, fmt.Sprintf("/w%d.bin", w), fs.OCreate|fs.ORdWr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fl.Write(nil, data); err != nil {
			b.Fatal(err)
		}
		files[w] = fl
	}
	// Flush setup writes so the timed loop never pays their writeback.
	if err := f.Sync(nil); err != nil {
		b.Fatal(err)
	}
	bytesPerOp := int64(workers) * int64(ioSize)
	if withWrites {
		bytesPerOp *= 2 // write + read back
	}
	b.SetBytes(bytesPerOp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(fl *fs.OpenFile) {
				defer wg.Done()
				if withWrites {
					fl.Seek(nil, 0, fs.SeekSet)
					if _, err := fl.Write(nil, data); err != nil {
						b.Error(err)
						return
					}
				}
				fl.Seek(nil, 0, fs.SeekSet)
				// 16 KB chunks: claims stay small enough for every
				// worker's device commands to stay in flight at once.
				buf := make([]byte, 16<<10)
				for got := 0; got < ioSize; {
					n, err := fl.Read(nil, buf)
					if err != nil || n == 0 {
						b.Error(err)
						return
					}
					got += n
				}
			}(files[w])
		}
		wg.Wait()
	}
}
