package xv6fs

import (
	"bytes"
	"strings"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// dirent is the 16-byte on-disk directory entry: uint16 inum + 14-byte
// NUL-padded name.
func encodeDirent(inum int, name string, b []byte) {
	b[0] = byte(inum)
	b[1] = byte(inum >> 8)
	n := copy(b[2:DirentSize], name)
	for i := 2 + n; i < DirentSize; i++ {
		b[i] = 0
	}
}

func decodeDirent(b []byte) (inum int, name string) {
	inum = int(b[0]) | int(b[1])<<8
	raw := b[2:DirentSize]
	if i := bytes.IndexByte(raw, 0); i >= 0 {
		raw = raw[:i]
	}
	return inum, string(raw)
}

// dirLookup scans directory dp for name. Returns the entry's inum and byte
// offset, or inum 0. Caller holds dp.lock.
func (f *FS) dirLookup(t *sched.Task, dp *inode, name string) (inum int, off int64, err error) {
	buf := make([]byte, DirentSize)
	for o := int64(0); o < int64(dp.di.Size); o += DirentSize {
		if _, err := f.readData(t, dp, o, buf); err != nil {
			return 0, 0, err
		}
		in, n := decodeDirent(buf)
		if in != 0 && n == name {
			return in, o, nil
		}
	}
	return 0, 0, nil
}

// dirLink adds (name, inum) to directory dp, reusing holes. Caller holds
// dp.lock.
func (f *FS) dirLink(t *sched.Task, dp *inode, name string, inum int) error {
	if len(name) > MaxName {
		return fs.ErrNameTooLong
	}
	buf := make([]byte, DirentSize)
	off := int64(dp.di.Size)
	for o := int64(0); o < int64(dp.di.Size); o += DirentSize {
		if _, err := f.readData(t, dp, o, buf); err != nil {
			return err
		}
		if in, _ := decodeDirent(buf); in == 0 {
			off = o
			break
		}
	}
	encodeDirent(inum, name, buf)
	_, err := f.writeData(t, dp, off, buf)
	return err
}

// dirUnlink zeroes the entry for name. Caller holds dp.lock.
func (f *FS) dirUnlink(t *sched.Task, dp *inode, name string) error {
	inum, off, err := f.dirLookup(t, dp, name)
	if err != nil {
		return err
	}
	if inum == 0 {
		return fs.ErrNotFound
	}
	zero := make([]byte, DirentSize)
	_, err = f.writeData(t, dp, off, zero)
	return err
}

// dirSetInum repoints an existing entry (rename uses it to rewrite a moved
// directory's ".."). Caller holds dp.lock.
func (f *FS) dirSetInum(t *sched.Task, dp *inode, name string, inum int) error {
	old, off, err := f.dirLookup(t, dp, name)
	if err != nil {
		return err
	}
	if old == 0 {
		return fs.ErrNotFound
	}
	buf := make([]byte, DirentSize)
	encodeDirent(inum, name, buf)
	_, err = f.writeData(t, dp, off, buf)
	return err
}

// isDirEmpty reports whether dp holds no live entries besides "." and
// "..". Caller holds dp.lock.
func (f *FS) isDirEmpty(t *sched.Task, dp *inode) (bool, error) {
	buf := make([]byte, DirentSize)
	for o := int64(0); o < int64(dp.di.Size); o += DirentSize {
		if _, err := f.readData(t, dp, o, buf); err != nil {
			return false, err
		}
		inum, name := decodeDirent(buf)
		if inum != 0 && name != "." && name != ".." {
			return false, nil
		}
	}
	return true, nil
}

// dirEntries lists dp's live entries. Child metadata is read straight from
// the inode array (buffer-atomic) rather than through child locks, so a
// listing never stacks inode locks. Caller holds dp.lock.
func (f *FS) dirEntries(t *sched.Task, dp *inode) ([]fs.DirEntry, error) {
	var out []fs.DirEntry
	buf := make([]byte, DirentSize)
	for o := int64(0); o < int64(dp.di.Size); o += DirentSize {
		if _, err := f.readData(t, dp, o, buf); err != nil {
			return nil, err
		}
		inum, name := decodeDirent(buf)
		if inum == 0 || name == "." || name == ".." {
			continue
		}
		var cdi dinode
		if err := f.readInode(t, inum, &cdi); err != nil {
			return nil, err
		}
		typ := fs.TypeFile
		if cdi.Type == typeDir {
			typ = fs.TypeDir
		}
		out = append(out, fs.DirEntry{Name: name, Type: typ, Size: int64(cdi.Size)})
	}
	return out, nil
}

// namex resolves path to a referenced, UNLOCKED inode. It first attempts
// the dentry-cache fast path — every component answered from the cache,
// no directory inode locks at all — and falls back to the classic
// hand-over-hand locked walk on any miss or generation bump. The locked
// walk holds at most one inode lock (each directory only while looking
// up the next segment) and fills the cache as it goes.
func (f *FS) namex(t *sched.Task, path string) (*inode, error) {
	path = fs.Clean(path)
	if path == "/" {
		return f.iget(rootInum), nil
	}
	segs := strings.Split(path[1:], "/")
	if ip, err, done := f.namexFast(t, segs); done {
		return ip, err
	}
	return f.namexLocked(t, segs)
}

// namexFast is the lock-free walk. It snapshots the mount's mutation
// generation, resolves every component from the dentry cache, and trusts
// the result only if the generation is unchanged at the end: no name
// mutated anywhere on the mount during the walk, so every hop's answer
// was simultaneously true and the composite resolution was path's
// meaning at that instant. The final iget lands inside that window, so
// the returned reference pins the inode against inum reuse. done=false
// means a component missed or the generation moved: take the locked walk.
func (f *FS) namexFast(t *sched.Task, segs []string) (_ *inode, _ error, done bool) {
	dc := f.dc
	if dc == nil || dc.Dead() {
		return nil, nil, false
	}
	gen := dc.Gen()
	cur := int64(rootInum)
	for _, seg := range segs {
		e, ok := dc.Lookup(cur, seg)
		if !ok {
			dc.FastPathFellBack()
			return nil, nil, false
		}
		if e.Neg {
			// A cached ENOENT anywhere on the path proves the whole path
			// absent — if the generation held.
			if dc.Gen() != gen {
				dc.FastPathFellBack()
				return nil, nil, false
			}
			dc.FastPathResolved()
			return nil, fs.ErrNotFound, true
		}
		cur = e.Ino
	}
	ip := f.iget(int(cur))
	if dc.Gen() != gen {
		f.iput(t, ip)
		dc.FastPathFellBack()
		return nil, nil, false
	}
	dc.FastPathResolved()
	return ip, nil, true
}

// namexLocked is the classic hand-over-hand walk. Under each directory's
// lock it consults the cache first (an entry observed under the parent's
// lock is truthful — mutations invalidate under that same lock), scans
// the directory only on a miss, and fills what the scan proved.
func (f *FS) namexLocked(t *sched.Task, segs []string) (*inode, error) {
	ip := f.iget(rootInum)
	for _, seg := range segs {
		if err := f.ilock(t, ip); err != nil {
			f.iput(t, ip)
			return nil, err
		}
		if ip.di.Type != typeDir {
			f.iunlockput(t, ip)
			return nil, fs.ErrNotDir
		}
		next, err := f.dirLookupCached(t, ip, seg)
		if err != nil {
			f.iunlockput(t, ip)
			return nil, err
		}
		if next == 0 {
			f.iunlockput(t, ip)
			return nil, fs.ErrNotFound
		}
		nip := f.iget(next)
		f.iunlockput(t, ip)
		ip = nip
	}
	return ip, nil
}

// dirLookupCached answers "does name exist in dp, and as what inum"
// through the dentry cache, scanning the directory only on a miss and
// filling the proven answer (positive or negative). Caller holds
// dp.lock. Callers that need the entry's byte offset (unlink, rename)
// must use dirLookup directly.
func (f *FS) dirLookupCached(t *sched.Task, dp *inode, name string) (int, error) {
	if name != "." && name != ".." {
		if e, ok := f.dc.Lookup(int64(dp.inum), name); ok {
			if e.Neg {
				return 0, nil
			}
			return int(e.Ino), nil
		}
	}
	inum, _, err := f.dirLookup(t, dp, name)
	if err != nil {
		return 0, err
	}
	if inum == 0 {
		f.dcFillNeg(dp, name)
	} else {
		f.dcFillPos(dp, name, inum)
	}
	return inum, nil
}

// namexParent resolves the directory containing path's final element,
// returning it referenced and unlocked plus the final name.
func (f *FS) namexParent(t *sched.Task, path string) (*inode, string, error) {
	dir, name := fs.SplitPath(path)
	if name == "" {
		return nil, "", fs.ErrPerm
	}
	dp, err := f.namex(t, dir)
	if err != nil {
		return nil, "", err
	}
	return dp, name, nil
}
