package xv6fs

import (
	"bytes"
	"strings"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// dirent is the 16-byte on-disk directory entry: uint16 inum + 14-byte
// NUL-padded name.
func encodeDirent(inum int, name string, b []byte) {
	b[0] = byte(inum)
	b[1] = byte(inum >> 8)
	n := copy(b[2:DirentSize], name)
	for i := 2 + n; i < DirentSize; i++ {
		b[i] = 0
	}
}

func decodeDirent(b []byte) (inum int, name string) {
	inum = int(b[0]) | int(b[1])<<8
	raw := b[2:DirentSize]
	if i := bytes.IndexByte(raw, 0); i >= 0 {
		raw = raw[:i]
	}
	return inum, string(raw)
}

// dirLookup scans directory inode di for name. Returns the entry's inum
// and byte offset, or inum 0.
func (f *FS) dirLookup(t *sched.Task, di *dinode, dirInum int, name string) (inum int, off int64, err error) {
	buf := make([]byte, DirentSize)
	for o := int64(0); o < int64(di.Size); o += DirentSize {
		if _, err := f.readData(t, di, dirInum, o, buf); err != nil {
			return 0, 0, err
		}
		in, n := decodeDirent(buf)
		if in != 0 && n == name {
			return in, o, nil
		}
	}
	return 0, 0, nil
}

// dirLink adds (name, inum) to a directory, reusing holes.
func (f *FS) dirLink(t *sched.Task, di *dinode, dirInum int, name string, inum int) error {
	if len(name) > MaxName {
		return fs.ErrNameTooLong
	}
	buf := make([]byte, DirentSize)
	off := int64(di.Size)
	for o := int64(0); o < int64(di.Size); o += DirentSize {
		if _, err := f.readData(t, di, dirInum, o, buf); err != nil {
			return err
		}
		if in, _ := decodeDirent(buf); in == 0 {
			off = o
			break
		}
	}
	encodeDirent(inum, name, buf)
	_, err := f.writeData(t, di, dirInum, off, buf)
	return err
}

// dirUnlink zeroes the entry for name.
func (f *FS) dirUnlink(t *sched.Task, di *dinode, dirInum int, name string) error {
	inum, off, err := f.dirLookup(t, di, dirInum, name)
	if err != nil {
		return err
	}
	if inum == 0 {
		return fs.ErrNotFound
	}
	zero := make([]byte, DirentSize)
	_, err = f.writeData(t, di, dirInum, off, zero)
	return err
}

// dirEntries lists a directory's live entries.
func (f *FS) dirEntries(t *sched.Task, di *dinode, dirInum int) ([]fs.DirEntry, error) {
	var out []fs.DirEntry
	buf := make([]byte, DirentSize)
	for o := int64(0); o < int64(di.Size); o += DirentSize {
		if _, err := f.readData(t, di, dirInum, o, buf); err != nil {
			return nil, err
		}
		inum, name := decodeDirent(buf)
		if inum == 0 || name == "." || name == ".." {
			continue
		}
		var cdi dinode
		if err := f.readInode(t, inum, &cdi); err != nil {
			return nil, err
		}
		typ := fs.TypeFile
		if cdi.Type == typeDir {
			typ = fs.TypeDir
		}
		out = append(out, fs.DirEntry{Name: name, Type: typ, Size: int64(cdi.Size)})
	}
	return out, nil
}

// walk resolves path to an inode number. Paths are cleaned and absolute
// within this filesystem.
func (f *FS) walk(t *sched.Task, path string) (int, *dinode, error) {
	path = fs.Clean(path)
	inum := rootInum
	var di dinode
	if err := f.readInode(t, inum, &di); err != nil {
		return 0, nil, err
	}
	if path == "/" {
		return inum, &di, nil
	}
	for _, seg := range strings.Split(path[1:], "/") {
		if di.Type != typeDir {
			return 0, nil, fs.ErrNotDir
		}
		next, _, err := f.dirLookup(t, &di, inum, seg)
		if err != nil {
			return 0, nil, err
		}
		if next == 0 {
			return 0, nil, fs.ErrNotFound
		}
		inum = next
		if err := f.readInode(t, inum, &di); err != nil {
			return 0, nil, err
		}
	}
	return inum, &di, nil
}

// walkParent resolves the directory containing path's final element.
func (f *FS) walkParent(t *sched.Task, path string) (dirInum int, di *dinode, name string, err error) {
	dir, name := fs.SplitPath(path)
	if name == "" {
		return 0, nil, "", fs.ErrPerm
	}
	dirInum, di, err = f.walk(t, dir)
	if err != nil {
		return 0, nil, "", err
	}
	if di.Type != typeDir {
		return 0, nil, "", fs.ErrNotDir
	}
	return dirInum, di, name, nil
}
