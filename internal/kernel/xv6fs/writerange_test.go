package xv6fs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"protosim/internal/kernel/bcache"
	"protosim/internal/kernel/fs"
)

// TestWriteDataUsesRangePath pins the segment-granular write path: a big
// aligned file write must reach the cache as multi-block WriteRange calls
// (the contiguous runs sequential allocation produces), not a
// block-at-a-time Get/MarkDirty trickle — mirroring the read side's
// coalescing.
func TestWriteDataUsesRangePath(t *testing.T) {
	f := newFS(t, 1024)
	ops0, blocks0, _ := f.Cache().RangeStats()
	fl, err := openOF(f, "/big.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64*BlockSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if n, err := fl.Write(nil, payload); err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	ops1, blocks1, _ := f.Cache().RangeStats()
	rangeBlocks := blocks1 - blocks0
	if ops1 == ops0 || rangeBlocks < 32 {
		t.Fatalf("64-block write issued %d range ops over %d blocks; want the contiguous runs coalesced",
			ops1-ops0, rangeBlocks)
	}
	// And the data reads back exactly — through the cache and, after a
	// Sync, from the device on a fresh mount.
	if _, err := fl.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	read := 0
	for read < len(got) {
		n, err := fl.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("read = %d, %v", n, err)
		}
		read += n
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("range-written data corrupted in cache")
	}
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(f.dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := openOF(f2, "/big.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	read = 0
	for read < len(got) {
		n, err := rf.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("remount read = %d, %v", n, err)
		}
		read += n
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("range-written data corrupted on device")
	}
}

// TestWriteDataUnalignedEdges exercises the partial-block edges around
// the range path: writes that start or end mid-block must
// read-modify-write without disturbing their neighbours.
func TestWriteDataUnalignedEdges(t *testing.T) {
	f := newFS(t, 1024)
	fl, err := openOF(f, "/edges.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{0xEE}, 6*BlockSize)
	if _, err := fl.Write(nil, base); err != nil {
		t.Fatal(err)
	}
	// Overwrite an unaligned span crossing several block boundaries.
	patch := bytes.Repeat([]byte{0x21}, 3*BlockSize)
	off := int64(BlockSize/2 + BlockSize)
	if _, err := fl.Seek(nil, off, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, patch); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	copy(want[off:], patch)
	if _, err := fl.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	read := 0
	for read < len(got) {
		n, err := fl.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("read = %d, %v", n, err)
		}
		read += n
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unaligned overwrite corrupted the file")
	}
	fl.Close(nil)
}

// TestFsyncDurableAfterCrash pins xv6fs fsync's metadata coverage and
// the owner stream's lifetime. The file spans past NDirect so its tail
// hangs off the indirect block (dirtied unowned by bmap); the write
// happens through one handle which is then closed (discarding the
// in-memory inode) before a reopened handle fsyncs. A fresh mount of the
// raw device — simulated crash, the dirty cache abandoned — must read
// the whole file: data blocks (owner survived the close in FS.owners),
// inode, indirect block, and bitmap all made it out through SyncT alone.
func TestFsyncDurableAfterCrash(t *testing.T) {
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	// No daemon, no triggers: fsync is the only flusher.
	f, err := MountWith(rd, nil, bcache.Options{
		Buffers: 256, Shards: 4, Readahead: -1,
		FlushInterval: time.Hour, WritebackRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, (NDirect+4)*BlockSize) // into the indirect block
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	fl, err := openOF(f, "/deep.bin", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Make the newly created DIRENT durable first: as in POSIX, a file's
	// fsync covers its data and inode, not the parent directory's entry —
	// that needs a sync of the directory (here: the volume).
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil) // everything still dirty; the in-memory inode dies here
	fl2, err := openOF(f, "/deep.bin", fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl2.Sync(nil); err != nil {
		t.Fatal(err)
	}
	fl2.Close(nil)

	f2, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := openOF(f2, "/deep.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	read := 0
	for read < len(got) {
		n, err := rf.Read(nil, got[read:])
		if err != nil || n == 0 {
			t.Fatalf("post-crash read at %d: %d, %v (indirect block or inode not fsynced?)", read, n, err)
		}
		read += n
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fsynced data unreadable after crash")
	}
}

// errInjected is raised by flakyDev for writes overlapping its range.
var errInjected = errors.New("xv6fs test: injected write error")

// flakyDev fails writes overlapping an LBA range, count-limited.
type flakyDev struct {
	fs.BlockDevice
	mu     sync.Mutex
	lo, hi int
	fail   int
}

func (d *flakyDev) arm(lo, hi, count int) {
	d.mu.Lock()
	d.lo, d.hi, d.fail = lo, hi, count
	d.mu.Unlock()
}

func (d *flakyDev) WriteBlocks(lba, n int, src []byte) error {
	d.mu.Lock()
	if d.fail > 0 && lba < d.hi && lba+n > d.lo {
		d.fail--
		d.mu.Unlock()
		return errInjected
	}
	d.mu.Unlock()
	return d.BlockDevice.WriteBlocks(lba, n, src)
}

// TestFsyncIsolationXv6fs is the xv6fs twin of the FAT32 cross-file
// regression: a daemon write failure on A's data blocks must leave B's
// fsync clean and reach A's fsync exactly once.
func TestFsyncIsolationXv6fs(t *testing.T) {
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	dev := &flakyDev{BlockDevice: rd}
	f, err := MountWith(dev, nil, bcache.Options{
		Buffers: 128, Shards: 4, Readahead: -1,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cache()
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	af, err := openOF(f, "/a.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := openOF(f, "/b.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close(nil)
	defer bf.Close(nil)
	payload := bytes.Repeat([]byte{0xAB}, 2*BlockSize)
	if _, err := af.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}

	// A's first data block, straight out of the locked-in inode map.
	aip := af.Ops().(*file).ip
	aBlock := int(aip.di.Addrs[0])
	dev.arm(aBlock, aBlock+1, 1)

	// Dirty both files again — warm cache, no device traffic — and let
	// the daemon walk into the injected failure on A's block. A one-block
	// rewrite keeps A's dirty run disjoint from B's blocks.
	rewrite := func(fl *fs.OpenFile, b byte) {
		if _, err := fl.Seek(nil, 0, fs.SeekSet); err != nil {
			t.Fatal(err)
		}
		if _, err := fl.Write(nil, bytes.Repeat([]byte{b}, BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	rewrite(af, 0xA2)
	rewrite(bf, 0xB2)

	deadline := time.Now().Add(5 * time.Second)
	for !aip.wb.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected error on A's block")
		}
		time.Sleep(time.Millisecond)
	}
	if err := bf.Sync(nil); err != nil {
		t.Fatalf("B's fsync observed a foreign error: %v", err)
	}
	if err := af.Sync(nil); !errors.Is(err, errInjected) {
		t.Fatalf("A's fsync = %v, want the injected error", err)
	}
	if err := af.Sync(nil); err != nil {
		t.Fatalf("A's second fsync = %v, want nil (exactly-once)", err)
	}
	if err := f.Sync(nil); !errors.Is(err, errInjected) {
		t.Fatalf("volume Sync = %v, want the injected error once", err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatalf("second volume Sync = %v, want nil", err)
	}
}

// TestPerOpenFsyncExactlyOnceXv6fs is the f_wb_err contract behind
// SysFsync: TWO descriptors opened on the SAME inode each observe an
// injected asynchronous writeback error exactly once — the error cursor
// is per open file description, not per inode, so the first descriptor's
// fsync does not consume the second's report. A descriptor opened after
// the epoch has been reported stays silent.
func TestPerOpenFsyncExactlyOnceXv6fs(t *testing.T) {
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	dev := &flakyDev{BlockDevice: rd}
	f, err := MountWith(dev, nil, bcache.Options{
		Buffers: 128, Shards: 4, Readahead: -1,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cache()
	go c.RunDaemon(nil, nil)
	defer c.StopDaemon()

	// Two open file descriptions over one inode — separate opens, not a
	// dup, so each holds its own errseq cursor sampled at open.
	fd1, err := openOF(f, "/twice.bin", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := openOF(f, "/twice.bin", fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	defer fd1.Close(nil)
	defer fd2.Close(nil)
	payload := bytes.Repeat([]byte{0xE1}, BlockSize)
	if _, err := fd1.Write(nil, payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}

	ip := fd1.Ops().(*file).ip
	blk := int(ip.di.Addrs[0])
	dev.arm(blk, blk+1, 1)

	// Re-dirty through fd1 and let the daemon hit the injected failure.
	if _, err := fd1.Pwrite(nil, bytes.Repeat([]byte{0xE2}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !ip.wb.Pending() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never hit the injected error")
		}
		time.Sleep(time.Millisecond)
	}

	if err := fd1.Sync(nil); !errors.Is(err, errInjected) {
		t.Fatalf("fd1 fsync = %v, want the injected error", err)
	}
	if err := fd1.Sync(nil); err != nil {
		t.Fatalf("fd1 second fsync = %v, want nil (exactly-once per open)", err)
	}
	// fd2's cursor was NOT consumed by fd1's observation.
	if err := fd2.Sync(nil); !errors.Is(err, errInjected) {
		t.Fatalf("fd2 fsync = %v, want the injected error (per-open cursor)", err)
	}
	if err := fd2.Sync(nil); err != nil {
		t.Fatalf("fd2 second fsync = %v, want nil", err)
	}
	// A descriptor opened after both reports samples the current stream
	// position: old news is not reported to new opens.
	fd3, err := openOF(f, "/twice.bin", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer fd3.Close(nil)
	if err := fd3.Sync(nil); err != nil {
		t.Fatalf("late open fsync = %v, want nil", err)
	}
	// A dup SHARES the cursor: after fd1 reported, its dup stays silent.
	fd1.Ref()
	dup := fd1
	if err := dup.Sync(nil); err != nil {
		t.Fatalf("dup fsync = %v, want nil (shared cursor)", err)
	}
	dup.Close(nil)
}
