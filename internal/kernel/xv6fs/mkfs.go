package xv6fs

import (
	"fmt"
	"sort"
	"strings"

	"protosim/internal/kernel/fs"
)

// Mkfs formats dev with an empty xv6fs: superblock, inode array sized for
// ninodes, allocation bitmap, root directory. It writes the device
// directly (no buffer cache) — this is the host-side tool path, like xv6's
// mkfs running on the development machine.
func Mkfs(dev fs.BlockDevice, ninodes int) error {
	if dev.BlockSize() != BlockSize {
		return fmt.Errorf("xv6fs: mkfs needs %d-byte blocks, device has %d", BlockSize, dev.BlockSize())
	}
	total := dev.Blocks()
	inodeBlocks := (ninodes + inodesPerBlock - 1) / inodesPerBlock
	bitmapBlocks := (total + BlockSize*8 - 1) / (BlockSize * 8)
	// The write-ahead log sits right behind the superblock. Small volumes
	// get a proportionally smaller log; genuinely tiny ones (under 128
	// blocks) get none and mount unjournaled, like legacy images.
	logBlocks := DefaultLogBlocks
	switch {
	case total >= 512:
	case total >= 128:
		logBlocks = total / 8
	default:
		logBlocks = 0
	}
	sb := Superblock{
		Magic:       Magic,
		Size:        uint32(total),
		NInodes:     uint32(ninodes),
		InodeStart:  uint32(1 + logBlocks),
		BitmapStart: uint32(1 + logBlocks + inodeBlocks),
		DataStart:   uint32(1 + logBlocks + inodeBlocks + bitmapBlocks),
	}
	if logBlocks > 0 {
		sb.LogStart = 1
		sb.LogSize = uint32(logBlocks)
	}
	if int(sb.DataStart) >= total {
		return fmt.Errorf("xv6fs: %d blocks too small for metadata", total)
	}

	zero := make([]byte, BlockSize)
	for lba := 0; lba < int(sb.DataStart); lba++ {
		if err := dev.WriteBlocks(lba, 1, zero); err != nil {
			return err
		}
	}
	blk := make([]byte, BlockSize)
	sb.encode(blk)
	if err := dev.WriteBlocks(0, 1, blk); err != nil {
		return err
	}

	// Root inode: an empty directory with "." and "..".
	root := dinode{Type: typeDir, NLink: 1}
	rootData, err := mkfsAllocBlock(dev, &sb)
	if err != nil {
		return err
	}
	root.Addrs[0] = uint32(rootData)
	root.Size = 2 * DirentSize
	dblk := make([]byte, BlockSize)
	encodeDirent(rootInum, ".", dblk[0:])
	encodeDirent(rootInum, "..", dblk[DirentSize:])
	if err := dev.WriteBlocks(rootData, 1, dblk); err != nil {
		return err
	}
	iblk := make([]byte, BlockSize)
	if err := dev.ReadBlocks(int(sb.InodeStart), 1, iblk); err != nil {
		return err
	}
	root.encode(iblk[rootInum*inodeSize:])
	return dev.WriteBlocks(int(sb.InodeStart), 1, iblk)
}

// mkfsAllocBlock allocates one data block directly on the device.
func mkfsAllocBlock(dev fs.BlockDevice, sb *Superblock) (int, error) {
	blk := make([]byte, BlockSize)
	total := int(sb.Size)
	for bm := 0; bm*BlockSize*8 < total; bm++ {
		lba := int(sb.BitmapStart) + bm
		if err := dev.ReadBlocks(lba, 1, blk); err != nil {
			return 0, err
		}
		for i := 0; i < BlockSize*8; i++ {
			blockNo := bm*BlockSize*8 + i
			if blockNo >= total {
				break
			}
			if blockNo < int(sb.DataStart) {
				continue
			}
			if blk[i/8]&(1<<(i%8)) == 0 {
				blk[i/8] |= 1 << (i % 8)
				if err := dev.WriteBlocks(lba, 1, blk); err != nil {
					return 0, err
				}
				return blockNo, nil
			}
		}
	}
	return 0, fs.ErrNoSpace
}

// BuildImage formats a fresh ramdisk and populates it with files — the
// tool that packs Proto's ramdisk dump into the kernel image. Keys are
// absolute paths; intermediate directories are created. Returns the
// mounted filesystem's backing ramdisk image.
func BuildImage(blocks, ninodes int, files map[string][]byte) (*fs.Ramdisk, error) {
	rd := fs.NewRamdisk(BlockSize, blocks)
	if err := Mkfs(rd, ninodes); err != nil {
		return nil, err
	}
	fsys, err := Mount(rd, nil)
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths) // parents before children
	for _, p := range paths {
		clean := fs.Clean(p)
		// Ensure parent directories exist.
		parts := strings.Split(clean, "/")
		for i := 2; i < len(parts); i++ {
			dir := strings.Join(parts[:i], "/")
			if _, err := fsys.Stat(nil, dir); err == fs.ErrNotFound {
				if err := fsys.Mkdir(nil, dir); err != nil {
					return nil, fmt.Errorf("mkdir %s: %w", dir, err)
				}
			}
		}
		ops, err := fsys.Open(nil, clean, fs.OCreate|fs.OWrOnly)
		if err != nil {
			return nil, fmt.Errorf("create %s: %w", clean, err)
		}
		fl := fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly)
		if _, err := fl.Write(nil, files[p]); err != nil {
			return nil, fmt.Errorf("write %s: %w", clean, err)
		}
		fl.Close(nil)
	}
	if err := fsys.Sync(nil); err != nil {
		return nil, err
	}
	return rd, nil
}
