// Package xfsck is a standalone consistency checker for xv6fs disk
// images — the verification half of the crash-injection harness. It
// decodes the on-disk format independently of the xv6fs mount path (its
// own superblock, inode, dirent and bitmap readers), so a bug that makes
// the filesystem misread its own corruption cannot also blind the
// checker.
//
// Check runs against any fs.BlockDevice, typically a crash image
// materialized by internal/kernel/crash. It is journal-aware: when the
// superblock names a log region and the log header is valid, the
// committed transaction's slot blocks are overlaid onto their home
// locations IN MEMORY before checking — exactly the replay mount-time
// recovery would perform, without mutating the image. That makes Check's
// verdict "would this image be consistent after recovery", which is the
// write-ahead journal's actual promise.
//
// Two modes. Strict flags every anomaly as corruption — right for a
// healthy volume after Sync, or a crash image after a real mount ran
// recovery and orphan reclaim. PostCrash additionally tolerates, as
// warnings, the artifacts crash recovery is DESIGNED to leave behind:
// orphan inodes (type set, link count zero — an unlink committed while
// the file was open) together with the blocks they still claim. Anything
// else — unreachable claimed blocks, double-claimed blocks, dangling
// directory entries, bad dot entries, link-count drift — is corruption
// in both modes.
package xfsck

import (
	"encoding/binary"
	"fmt"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/jnl"
	"protosim/internal/kernel/xv6fs"
)

// Mode selects how post-crash artifacts are judged.
type Mode int

const (
	// Strict treats every inconsistency as corruption.
	Strict Mode = iota
	// PostCrash downgrades orphan inodes (and the blocks they claim) to
	// warnings: they are the expected residue of crashing between an
	// unlink's commit and the last close, and mount-time reclaim frees
	// them.
	PostCrash
)

// Report is the outcome of one Check run.
type Report struct {
	// Errors are corruption findings: invariants the filesystem promises
	// to hold (after recovery) that the image breaks.
	Errors []string
	// Warnings are tolerated post-crash artifacts (PostCrash mode only).
	Warnings []string
	// Replayed is how many journal slot blocks were overlaid onto their
	// home locations before checking (0 when the log was empty or the
	// image has no journal).
	Replayed int
	// Inodes and Blocks count live inodes and claimed data blocks seen.
	Inodes, Blocks int
}

// Clean reports whether the image passed: no corruption found.
func (r *Report) Clean() bool { return len(r.Errors) == 0 }

// String renders the report for test logs.
func (r *Report) String() string {
	return fmt.Sprintf("xfsck: %d inodes, %d blocks, %d replayed, %d errors, %d warnings",
		r.Inodes, r.Blocks, r.Replayed, len(r.Errors), len(r.Warnings))
}

// checker carries one run's state: the full image in memory plus the
// decoded superblock.
type checker struct {
	img  []byte
	sb   superblock
	mode Mode
	rep  *Report
}

type superblock struct {
	magic, size, ninodes               uint32
	inodeStart, bitmapStart, dataStart uint32
	logStart, logSize                  uint32
}

type dinode struct {
	typ, nlink uint16
	size       uint32
	addrs      [xv6fs.NDirect + 1]uint32
}

const (
	blockSize      = xv6fs.BlockSize
	direntSize     = xv6fs.DirentSize
	inodeSize      = 64
	inodesPerBlock = blockSize / inodeSize
	rootInum       = 1
	typeFree       = 0
	typeDir        = 1
	typeFile       = 2
)

// Check verifies the xv6fs image on dev and reports what it found. It
// never writes to dev. The returned error covers only failures to read
// the device; format findings land in the Report.
func Check(dev fs.BlockDevice, mode Mode) (*Report, error) {
	if dev.BlockSize() != blockSize {
		return nil, fmt.Errorf("xfsck: device block size %d, want %d", dev.BlockSize(), blockSize)
	}
	img := make([]byte, dev.Blocks()*blockSize)
	if err := dev.ReadBlocks(0, dev.Blocks(), img); err != nil {
		return nil, err
	}
	c := &checker{img: img, mode: mode, rep: &Report{}}
	if !c.loadSuper() {
		return c.rep, nil
	}
	c.replayJournal()
	c.checkAll()
	return c.rep, nil
}

func (c *checker) errf(format string, args ...any) {
	c.rep.Errors = append(c.rep.Errors, fmt.Sprintf(format, args...))
}

func (c *checker) warnf(format string, args ...any) {
	c.rep.Warnings = append(c.rep.Warnings, fmt.Sprintf(format, args...))
}

// block returns block lba of the (possibly journal-overlaid) image.
func (c *checker) block(lba int) []byte {
	return c.img[lba*blockSize : (lba+1)*blockSize]
}

// loadSuper decodes and sanity-checks the superblock. Returns false when
// the image is too corrupt to check further.
func (c *checker) loadSuper() bool {
	b := c.block(0)
	sb := &c.sb
	sb.magic = binary.LittleEndian.Uint32(b[0:])
	sb.size = binary.LittleEndian.Uint32(b[4:])
	sb.ninodes = binary.LittleEndian.Uint32(b[8:])
	sb.inodeStart = binary.LittleEndian.Uint32(b[12:])
	sb.bitmapStart = binary.LittleEndian.Uint32(b[16:])
	sb.dataStart = binary.LittleEndian.Uint32(b[20:])
	sb.logStart = binary.LittleEndian.Uint32(b[24:])
	sb.logSize = binary.LittleEndian.Uint32(b[28:])
	if sb.magic != xv6fs.Magic {
		c.errf("superblock: bad magic %#x", sb.magic)
		return false
	}
	if int(sb.size)*blockSize > len(c.img) || sb.size == 0 {
		c.errf("superblock: size %d exceeds device", sb.size)
		return false
	}
	inodeBlocks := (int(sb.ninodes) + inodesPerBlock - 1) / inodesPerBlock
	bitmapBlocks := (int(sb.size) + blockSize*8 - 1) / (blockSize * 8)
	if sb.logSize > 0 && (sb.logStart < 1 || sb.logStart+sb.logSize > sb.inodeStart) {
		c.errf("superblock: log [%d,%d) outside [1,%d)", sb.logStart, sb.logStart+sb.logSize, sb.inodeStart)
		return false
	}
	if int(sb.bitmapStart) != int(sb.inodeStart)+inodeBlocks ||
		int(sb.dataStart) != int(sb.bitmapStart)+bitmapBlocks ||
		sb.dataStart >= sb.size {
		c.errf("superblock: inconsistent layout inode=%d bitmap=%d data=%d size=%d",
			sb.inodeStart, sb.bitmapStart, sb.dataStart, sb.size)
		return false
	}
	return true
}

// replayJournal overlays a committed transaction from the log region onto
// the in-memory image, mirroring mount-time recovery. A header that fails
// validation is treated as absent (an interrupted header write is a
// not-committed transaction, not corruption).
func (c *checker) replayJournal() {
	sb := &c.sb
	if sb.logSize == 0 {
		return
	}
	hb := c.block(int(sb.logStart))
	if binary.LittleEndian.Uint32(hb[0:]) != jnl.Magic {
		return
	}
	count := int(binary.LittleEndian.Uint32(hb[4:]))
	slots := int(sb.logSize) - 1
	if count <= 0 || count > slots || 8+4*count > blockSize {
		return
	}
	for i := 0; i < count; i++ {
		home := int(binary.LittleEndian.Uint32(hb[8+4*i:]))
		// Home 0 is legal: the superblock's orphan-list tail is journaled
		// by unlink and reclaim transactions.
		if home < 0 || home >= int(sb.size) ||
			(home >= int(sb.logStart) && home < int(sb.logStart)+int(sb.logSize)) {
			c.errf("journal: slot %d names invalid home block %d", i, home)
			continue
		}
		copy(c.block(home), c.block(int(sb.logStart)+1+i))
		c.rep.Replayed++
	}
}

func (c *checker) readInode(inum int) dinode {
	b := c.block(int(c.sb.inodeStart) + inum/inodesPerBlock)
	raw := b[(inum%inodesPerBlock)*inodeSize:]
	var di dinode
	di.typ = binary.LittleEndian.Uint16(raw[0:])
	di.nlink = binary.LittleEndian.Uint16(raw[2:])
	di.size = binary.LittleEndian.Uint32(raw[4:])
	for i := range di.addrs {
		di.addrs[i] = binary.LittleEndian.Uint32(raw[8+4*i:])
	}
	return di
}

// bitmapBit reports whether the allocation bitmap claims block lba.
func (c *checker) bitmapBit(lba int) bool {
	b := c.block(int(c.sb.bitmapStart) + lba/(blockSize*8))
	bit := lba % (blockSize * 8)
	return b[bit/8]&(1<<(bit%8)) != 0
}

// checkAll runs the full invariant suite over the (replayed) image.
func (c *checker) checkAll() {
	sb := &c.sb
	ninodes := int(sb.ninodes)

	// Pass 1: every allocated inode's claimed blocks — in range, claimed
	// once volume-wide, present in the bitmap.
	claims := make(map[int]int) // data block -> claiming inum
	live := make([]dinode, ninodes)
	for inum := 1; inum < ninodes; inum++ {
		di := c.readInode(inum)
		live[inum] = di
		if di.typ == typeFree {
			if di.nlink != 0 {
				c.errf("inode %d: free but nlink %d", inum, di.nlink)
			}
			continue
		}
		if di.typ != typeDir && di.typ != typeFile {
			c.errf("inode %d: bad type %d", inum, di.typ)
			continue
		}
		c.rep.Inodes++
		if int64(di.size) > int64(xv6fs.MaxFile)*blockSize {
			c.errf("inode %d: size %d exceeds max file size", inum, di.size)
		}
		c.claimBlocks(inum, &di, claims)
	}

	// Pass 2: bitmap agreement — every set data bit is claimed by exactly
	// one inode (pass 1 caught the double-claims), every claim is set.
	for lba := int(sb.dataStart); lba < int(sb.size); lba++ {
		_, claimed := claims[lba]
		set := c.bitmapBit(lba)
		if set && !claimed {
			c.errf("bitmap: block %d marked in use but unreachable from any inode", lba)
		}
		if claimed && !set {
			c.errf("bitmap: block %d claimed by inode %d but marked free", lba, claims[lba])
		}
	}
	for lba := 0; lba < int(sb.dataStart); lba++ {
		if c.bitmapBit(lba) {
			c.errf("bitmap: metadata block %d has its bit set", lba)
		}
	}
	c.rep.Blocks = len(claims)

	// Pass 3: walk the directory tree from the root, checking dirent
	// targets, dot entries and uniqueness of directory parents; count
	// references for the link-count check.
	if live[rootInum].typ != typeDir {
		c.errf("root inode: type %d, want directory", live[rootInum].typ)
		return
	}
	refs := make([]int, ninodes)     // non-dot dirents naming each inum
	visited := make([]bool, ninodes) // directories entered (cycle/share guard)
	c.walk(rootInum, rootInum, live, refs, visited)

	// Pass 4: link counts vs directory references.
	for inum := 1; inum < ninodes; inum++ {
		di := live[inum]
		if di.typ == typeFree {
			continue
		}
		want := refs[inum]
		if inum == rootInum {
			want = 1 // the root has no parent dirent; NLink 1 by convention
		}
		if di.nlink == 0 {
			// Orphan: an unlink committed while the file was open. Its
			// refs are necessarily 0 (the dirent went in the same txn).
			if want != 0 {
				c.errf("inode %d: nlink 0 but %d dirents reference it", inum, want)
			} else if c.mode == PostCrash {
				c.warnf("inode %d: orphan (nlink 0, type %d) awaiting mount-time reclaim", inum, di.typ)
			} else {
				c.errf("inode %d: orphan (nlink 0) not reclaimed", inum)
			}
			continue
		}
		if int(di.nlink) != want {
			c.errf("inode %d: nlink %d but %d dirents reference it", inum, di.nlink, want)
		}
		if di.typ == typeDir && !visited[inum] && inum != rootInum {
			c.errf("directory inode %d: referenced but never reached from the root", inum)
		}
	}
}

// claimBlocks records every data block inode inum points at (direct,
// indirect pointer block, indirect targets) into claims, flagging
// out-of-range and double-claimed blocks.
func (c *checker) claimBlocks(inum int, di *dinode, claims map[int]int) {
	claim := func(lba int, what string) {
		if lba < int(c.sb.dataStart) || lba >= int(c.sb.size) {
			c.errf("inode %d: %s block %d outside data area", inum, what, lba)
			return
		}
		if prev, dup := claims[lba]; dup {
			c.errf("inode %d: %s block %d already claimed by inode %d", inum, what, lba, prev)
			return
		}
		claims[lba] = inum
	}
	for i := 0; i < xv6fs.NDirect; i++ {
		if di.addrs[i] != 0 {
			claim(int(di.addrs[i]), "direct")
		}
	}
	ind := int(di.addrs[xv6fs.NDirect])
	if ind == 0 {
		return
	}
	claim(ind, "indirect-pointer")
	if ind < int(c.sb.dataStart) || ind >= int(c.sb.size) {
		return // can't dereference an out-of-range pointer block
	}
	ib := c.block(ind)
	for i := 0; i < xv6fs.NIndirect; i++ {
		if lba := int(binary.LittleEndian.Uint32(ib[4*i:])); lba != 0 {
			claim(lba, "indirect")
		}
	}
}

// walk checks directory inum (whose parent is parent) and recurses into
// subdirectories.
func (c *checker) walk(inum, parent int, live []dinode, refs []int, visited []bool) {
	if visited[inum] {
		c.errf("directory inode %d: reached twice (loop or shared directory)", inum)
		return
	}
	visited[inum] = true
	di := live[inum]
	if di.size%direntSize != 0 {
		c.errf("directory inode %d: size %d not a multiple of %d", inum, di.size, direntSize)
	}
	var sawDot, sawDotDot bool
	for off := 0; off+direntSize <= int(di.size); off += direntSize {
		ent := c.direntAt(&di, off)
		if ent == nil {
			c.errf("directory inode %d: entry at %d in an unmapped block", inum, off)
			continue
		}
		target := int(ent[0]) | int(ent[1])<<8
		if target == 0 {
			continue // deleted slot
		}
		name := direntName(ent)
		if target >= len(live) || live[target].typ == typeFree {
			c.errf("directory inode %d: entry %q names free/bad inode %d", inum, name, target)
			continue
		}
		switch name {
		case ".":
			sawDot = true
			if target != inum {
				c.errf("directory inode %d: \".\" points at %d", inum, target)
			}
		case "..":
			sawDotDot = true
			if target != parent {
				c.errf("directory inode %d: \"..\" points at %d, want %d", inum, target, parent)
			}
		default:
			refs[target]++
			if live[target].typ == typeDir {
				c.walk(target, inum, live, refs, visited)
			}
		}
	}
	if !sawDot || !sawDotDot {
		c.errf("directory inode %d: missing %q or %q", inum, ".", "..")
	}
}

// direntAt reads the 16 bytes of the dirent at byte offset off of the
// directory described by di, or nil when the covering block is a hole.
func (c *checker) direntAt(di *dinode, off int) []byte {
	fb := off / blockSize
	var lba int
	switch {
	case fb < xv6fs.NDirect:
		lba = int(di.addrs[fb])
	case fb < xv6fs.MaxFile && di.addrs[xv6fs.NDirect] != 0:
		ind := int(di.addrs[xv6fs.NDirect])
		if ind < int(c.sb.dataStart) || ind >= int(c.sb.size) {
			return nil
		}
		lba = int(binary.LittleEndian.Uint32(c.block(ind)[4*(fb-xv6fs.NDirect):]))
	default:
		return nil
	}
	if lba < int(c.sb.dataStart) || lba >= int(c.sb.size) {
		return nil
	}
	bo := off % blockSize
	return c.block(lba)[bo : bo+direntSize]
}

// direntName extracts the NUL-padded name from a raw dirent.
func direntName(ent []byte) string {
	raw := ent[2:direntSize]
	for i, b := range raw {
		if b == 0 {
			return string(raw[:i])
		}
	}
	return string(raw)
}
