package xfsck_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/xv6fs"
	"protosim/internal/kernel/xv6fs/xfsck"
)

// mkVolume builds a small journaled volume with a few files and
// directories, synced clean, and returns its backing ramdisk.
func mkVolume(t *testing.T) *fs.Ramdisk {
	t.Helper()
	rd := fs.NewRamdisk(xv6fs.BlockSize, 1024)
	if err := xv6fs.Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	fsys, err := xv6fs.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mkdir(nil, "/dir"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a.txt", "/dir/b.txt"} {
		ops, err := fsys.Open(nil, p, fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatal(err)
		}
		fl := fs.NewOpenFile(ops, fs.OCreate|fs.OWrOnly)
		if _, err := fl.Write(nil, make([]byte, 3*xv6fs.BlockSize)); err != nil {
			t.Fatal(err)
		}
		fl.Close(nil)
	}
	if err := fsys.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Zero the log header (block 1): the volume is synced, so the homes
	// are current and the committed transaction is redundant. Without
	// this, the checker's replay overlay would restore clean copies over
	// the surgical corruption the tests below inject.
	if err := rd.WriteBlocks(1, 1, make([]byte, xv6fs.BlockSize)); err != nil {
		t.Fatal(err)
	}
	return rd
}

func check(t *testing.T, rd *fs.Ramdisk, mode xfsck.Mode) *xfsck.Report {
	t.Helper()
	rep, err := xfsck.Check(rd, mode)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// expectError asserts the report flags corruption mentioning want.
func expectError(t *testing.T, rep *xfsck.Report, want string) {
	t.Helper()
	if rep.Clean() {
		t.Fatalf("corruption not detected (wanted %q)", want)
	}
	for _, e := range rep.Errors {
		if strings.Contains(e, want) {
			return
		}
	}
	t.Fatalf("errors %v mention nothing about %q", rep.Errors, want)
}

func TestCleanVolumePasses(t *testing.T) {
	rd := mkVolume(t)
	rep := check(t, rd, xfsck.Strict)
	if !rep.Clean() || len(rep.Warnings) != 0 {
		t.Fatalf("clean volume flagged: %v %v", rep.Errors, rep.Warnings)
	}
	if rep.Inodes != 4 { // root, /dir, two files
		t.Fatalf("saw %d inodes, want 4", rep.Inodes)
	}
}

// patchBlock mutates one on-disk block in place.
func patchBlock(t *testing.T, rd *fs.Ramdisk, lba int, fn func(b []byte)) {
	t.Helper()
	b := make([]byte, xv6fs.BlockSize)
	if err := rd.ReadBlocks(lba, 1, b); err != nil {
		t.Fatal(err)
	}
	fn(b)
	if err := rd.WriteBlocks(lba, 1, b); err != nil {
		t.Fatal(err)
	}
}

// superblock offsets for test surgery.
func superblock(t *testing.T, rd *fs.Ramdisk) (inodeStart, bitmapStart, dataStart int) {
	t.Helper()
	b := make([]byte, xv6fs.BlockSize)
	if err := rd.ReadBlocks(0, 1, b); err != nil {
		t.Fatal(err)
	}
	return int(binary.LittleEndian.Uint32(b[12:])),
		int(binary.LittleEndian.Uint32(b[16:])),
		int(binary.LittleEndian.Uint32(b[20:]))
}

func TestDetectsLeakedBitmapBit(t *testing.T) {
	rd := mkVolume(t)
	_, bitmapStart, _ := superblock(t, rd)
	lba := rd.Blocks() - 2 // a high data block no inode claims
	patchBlock(t, rd, bitmapStart+lba/(xv6fs.BlockSize*8), func(b []byte) {
		bit := lba % (xv6fs.BlockSize * 8)
		b[bit/8] |= 1 << (bit % 8)
	})
	expectError(t, check(t, rd, xfsck.PostCrash), "unreachable")
}

func TestDetectsClaimedBlockMarkedFree(t *testing.T) {
	rd := mkVolume(t)
	inodeStart, bitmapStart, _ := superblock(t, rd)
	// Root's first data block: read root's Addrs[0] from the inode table.
	b := make([]byte, xv6fs.BlockSize)
	if err := rd.ReadBlocks(inodeStart, 1, b); err != nil {
		t.Fatal(err)
	}
	lba := int(binary.LittleEndian.Uint32(b[1*64+8:]))
	patchBlock(t, rd, bitmapStart+lba/(xv6fs.BlockSize*8), func(b []byte) {
		bit := lba % (xv6fs.BlockSize * 8)
		b[bit/8] &^= 1 << (bit % 8)
	})
	expectError(t, check(t, rd, xfsck.PostCrash), "marked free")
}

func TestDetectsDoubleClaimedBlock(t *testing.T) {
	rd := mkVolume(t)
	inodeStart, _, _ := superblock(t, rd)
	// Point inode 3's Addrs[0] at inode 2's Addrs[0].
	patchBlock(t, rd, inodeStart, func(b []byte) {
		stolen := binary.LittleEndian.Uint32(b[2*64+8:])
		binary.LittleEndian.PutUint32(b[3*64+8:], stolen)
	})
	expectError(t, check(t, rd, xfsck.PostCrash), "already claimed")
}

func TestDetectsNlinkDrift(t *testing.T) {
	rd := mkVolume(t)
	inodeStart, _, _ := superblock(t, rd)
	patchBlock(t, rd, inodeStart, func(b []byte) {
		binary.LittleEndian.PutUint16(b[2*64+2:], 7) // inode 2 nlink
	})
	expectError(t, check(t, rd, xfsck.PostCrash), "nlink 7")
}

func TestDetectsBrokenDotEntry(t *testing.T) {
	rd := mkVolume(t)
	inodeStart, _, _ := superblock(t, rd)
	// Find /dir's inode (the only typeDir besides root) and corrupt the
	// "." entry in its first data block.
	b := make([]byte, xv6fs.BlockSize)
	if err := rd.ReadBlocks(inodeStart, 1, b); err != nil {
		t.Fatal(err)
	}
	var data int
	for inum := 2; inum < 16; inum++ {
		if binary.LittleEndian.Uint16(b[inum*64:]) == 1 { // typeDir
			data = int(binary.LittleEndian.Uint32(b[inum*64+8:]))
			break
		}
	}
	if data == 0 {
		t.Fatal("no directory inode found")
	}
	patchBlock(t, rd, data, func(b []byte) {
		b[0] = 9 // "." now names inode 9
	})
	expectError(t, check(t, rd, xfsck.PostCrash), `"."`)
}

func TestOrphanInodeModeSplit(t *testing.T) {
	rd := mkVolume(t)
	inodeStart, _, _ := superblock(t, rd)
	// Zero /a.txt's (inode 3) nlink and remove its dirent from the root:
	// a crashed unlink-while-open. A FILE, deliberately — directories
	// can only be unlinked empty, so an orphaned dir never hides a
	// subtree from the walk.
	patchBlock(t, rd, inodeStart, func(b []byte) {
		binary.LittleEndian.PutUint16(b[3*64+2:], 0)
	})
	b := make([]byte, xv6fs.BlockSize)
	if err := rd.ReadBlocks(inodeStart, 1, b); err != nil {
		t.Fatal(err)
	}
	rootData := int(binary.LittleEndian.Uint32(b[1*64+8:]))
	patchBlock(t, rd, rootData, func(b []byte) {
		for off := 0; off < xv6fs.BlockSize; off += xv6fs.DirentSize {
			if binary.LittleEndian.Uint16(b[off:]) == 3 {
				binary.LittleEndian.PutUint16(b[off:], 0)
			}
		}
	})
	// The unlink transaction also records the inode on the superblock's
	// orphan list (flag word at offset 64, then inum slots) — mount-time
	// recovery is list-driven and reclaims exactly what is listed, not
	// what a whole-array scan would find.
	patchBlock(t, rd, 0, func(b []byte) {
		binary.LittleEndian.PutUint32(b[64+4:], 3)
	})
	if rep := check(t, rd, xfsck.PostCrash); !rep.Clean() {
		t.Fatalf("orphan should be tolerated post-crash: %v", rep.Errors)
	} else if len(rep.Warnings) == 0 {
		t.Fatal("orphan should at least warn")
	}
	expectError(t, check(t, rd, xfsck.Strict), "orphan")

	// A real mount reclaims the orphan; strict passes afterwards.
	fsys, err := xv6fs.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Sync(nil); err != nil {
		t.Fatal(err)
	}
	if rep := check(t, rd, xfsck.Strict); !rep.Clean() {
		t.Fatalf("orphan survived mount-time reclaim: %v", rep.Errors)
	}
}

// TestJournalOverlay pins the journal-aware half: a committed
// transaction sitting in the log whose home blocks are stale must count
// as consistent (the overlay replays it), and zeroing the log header
// must expose the stale home blocks as corruption.
func TestJournalOverlay(t *testing.T) {
	rd := mkVolume(t)
	fsys, err := xv6fs.Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An unlink whose transaction commits (Sync) but is never
	// checkpointed: with the journal header intact the image is
	// consistent via replay; without it, the home copies are a
	// half-applied transaction.
	if err := fsys.Unlink(nil, "/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Sync(nil); err != nil {
		t.Fatal(err)
	}
	rep := check(t, rd, xfsck.Strict)
	if !rep.Clean() {
		t.Fatalf("committed-but-not-checkpointed image flagged: %v", rep.Errors)
	}
	if rep.Replayed == 0 {
		t.Fatal("expected the checker to replay journal slots")
	}
}
