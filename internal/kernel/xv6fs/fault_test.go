// Device-fault behaviour of the mounted filesystem: errors=remount-ro on
// metadata durability loss, fsync error reporting exactly once per open,
// and the on-disk orphan list that replaces the mount-time inode scan.
package xv6fs

import (
	"encoding/binary"
	"errors"
	"testing"

	"protosim/internal/hw"
	"protosim/internal/kernel/blkq"
	"protosim/internal/kernel/fs"
)

// faultMount mounts a fresh xv6fs over a FaultDisk routed through a
// request queue — the production stack of PR 8's fault model.
func faultMount(t *testing.T) (*FS, *hw.FaultDisk) {
	t.Helper()
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	fd := hw.NewFaultDisk(rd, hw.FaultPlan{Seed: 1})
	q := blkq.New(fd, blkq.Options{Async: fd, PlugDelay: -1})
	fd.SetNotify(func() { q.CompletionIRQ() })
	f, err := Mount(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, fd
}

// TestDeviceDeathRemountsReadOnly: after the device dies, the first
// barrier that needs it latches the mount read-only; every mutating
// entry point then fails typed ErrReadOnly while reads of cached data
// keep working.
func TestDeviceDeathRemountsReadOnly(t *testing.T) {
	f, fd := faultMount(t)
	fl, err := openOF(f, "/data.txt", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte("before death")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}

	fd.Kill()
	// Force a metadata transaction and its commit under the dead device.
	_ = f.Mkdir(nil, "/dir")
	if err := f.Sync(nil); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("Sync on dead device = %v, want ErrDeviceDead", err)
	}
	if degraded, ro, cause := f.Health(); !degraded || !ro || !errors.Is(cause, fs.ErrDeviceDead) {
		t.Fatalf("Health = (%v, %v, %v), want (true, true, ErrDeviceDead)", degraded, ro, cause)
	}

	if _, err := openOF(f, "/new.txt", fs.OCreate|fs.OWrOnly); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("create on RO mount = %v, want ErrReadOnly", err)
	}
	if err := f.Mkdir(nil, "/d2"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Mkdir on RO mount = %v, want ErrReadOnly", err)
	}
	if err := f.Unlink(nil, "/data.txt"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Unlink on RO mount = %v, want ErrReadOnly", err)
	}
	if err := f.Rename(nil, "/data.txt", "/moved.txt"); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("Rename on RO mount = %v, want ErrReadOnly", err)
	}
	if _, err := fl.Write(nil, []byte("more")); !errors.Is(err, fs.ErrReadOnly) {
		t.Fatalf("write on RO mount = %v, want ErrReadOnly", err)
	}
	// Reads through the open description still serve from cache. (A fresh
	// path walk may need blocks the journal abort dropped, which the dead
	// device cannot re-read — a degraded mount promises cached data only.)
	got := make([]byte, 32)
	if n, err := fl.Pread(nil, got, 0); err != nil || string(got[:n]) != "before death" {
		t.Fatalf("cached read on RO mount = %q, %v", got[:n], err)
	}
}

// TestFsyncReportsFailureOncePerOpen: an asynchronous writeback loss is
// reported by each open description's fsync exactly once — the errseq
// cursor contract end-to-end through a real device failure, not a stub.
func TestFsyncReportsFailureOncePerOpen(t *testing.T) {
	f, fd := faultMount(t)
	fl1, err := openOF(f, "/twice.txt", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	// Lay the file's metadata down durably while the device is healthy, so
	// the later overwrite is a pure data write (no journal traffic).
	if _, err := fl1.Write(nil, make([]byte, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	fl2, err := openOF(f, "/twice.txt", fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}

	fd.Kill()
	if _, err := fl1.Pwrite(nil, []byte("doomed"), 0); err != nil {
		t.Fatal(err) // lands in cache; the device failure is asynchronous
	}
	// First fsync on each open reports the loss; the next is clean.
	if err := fl1.Sync(nil); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("fl1 first fsync = %v, want ErrDeviceDead", err)
	}
	if err := fl1.Sync(nil); err != nil {
		t.Fatalf("fl1 second fsync = %v, want nil (already reported)", err)
	}
	if err := fl2.Sync(nil); !errors.Is(err, fs.ErrDeviceDead) {
		t.Fatalf("fl2 first fsync = %v, want ErrDeviceDead (own cursor)", err)
	}
	if err := fl2.Sync(nil); err != nil {
		t.Fatalf("fl2 second fsync = %v, want nil", err)
	}
}

// readOrphanSlots decodes the on-disk orphan list via the cache.
func readOrphanSlots(t *testing.T, f *FS) (overflow bool, inums []int) {
	t.Helper()
	err := f.readBlock(nil, 0, func(d []byte) {
		overflow = binary.LittleEndian.Uint32(d[orphanOff:]) != 0
		for i := 0; i < orphanMax; i++ {
			if v := binary.LittleEndian.Uint32(d[orphanOff+4+4*i:]); v != 0 {
				inums = append(inums, int(v))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return overflow, inums
}

// TestOrphanListLifecycle: unlink-while-open records the inum in the
// unlinking transaction; the final close's reclaim de-lists it.
func TestOrphanListLifecycle(t *testing.T) {
	f := newFS(t, 1024)
	fl, err := openOF(f, "/open.txt", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte("held open")); err != nil {
		t.Fatal(err)
	}
	st, err := fl.Stat(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/open.txt"); err != nil {
		t.Fatal(err)
	}
	if _, inums := readOrphanSlots(t, f); len(inums) != 1 || inums[0] != int(st.Inode) {
		t.Fatalf("orphan list after unlink-while-open = %v, want [%d]", inums, st.Inode)
	}
	// A file NOT open at unlink reclaims inline and never hits the list.
	fl2, _ := openOF(f, "/closed.txt", fs.OCreate|fs.OWrOnly)
	fl2.Close(nil)
	if err := f.Unlink(nil, "/closed.txt"); err != nil {
		t.Fatal(err)
	}
	if _, inums := readOrphanSlots(t, f); len(inums) != 1 {
		t.Fatalf("orphan list grew on closed-file unlink: %v", inums)
	}
	fl.Close(nil) // deferred reclaim fires, de-listing the orphan
	if _, inums := readOrphanSlots(t, f); len(inums) != 0 {
		t.Fatalf("orphan list after final close = %v, want empty", inums)
	}
}

// TestOrphanListRecoversAcrossRemount is the crash story: a file
// unlinked while open, never closed (the "crash"), must be reclaimed by
// the next mount from the on-disk list — its inode slot freed, the list
// cleared.
func TestOrphanListRecoversAcrossRemount(t *testing.T) {
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/orphan.txt", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, make([]byte, 4*BlockSize)); err != nil {
		t.Fatal(err)
	}
	st, err := fl.Stat(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink(nil, "/orphan.txt"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// "Crash": abandon the mount without closing fl. The image holds the
	// orphan record; the deferred reclaim never ran.
	f2, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	var di dinode
	if err := f2.readInode(nil, int(st.Inode), &di); err != nil {
		t.Fatal(err)
	}
	if di.Type != typeFree {
		t.Fatalf("orphan inode %d type = %d after recovery, want free", st.Inode, di.Type)
	}
	if _, inums := readOrphanSlots(t, f2); len(inums) != 0 {
		t.Fatalf("orphan list after recovery = %v, want empty", inums)
	}
	if _, err := f2.Stat(nil, "/orphan.txt"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("Stat after recovery = %v, want ErrNotFound", err)
	}
}

// TestRenameVictimJoinsOrphanList: POSIX rename-over displaces the
// target; if the victim is held open its reclaim defers, and it must
// ride the orphan list exactly like an unlink.
func TestRenameVictimJoinsOrphanList(t *testing.T) {
	f := newFS(t, 1024)
	vic, err := openOF(f, "/victim.txt", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := vic.Stat(nil)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := openOF(f, "/src.txt", fs.OCreate|fs.OWrOnly)
	src.Close(nil)
	if err := f.Rename(nil, "/src.txt", "/victim.txt"); err != nil {
		t.Fatal(err)
	}
	if _, inums := readOrphanSlots(t, f); len(inums) != 1 || inums[0] != int(st.Inode) {
		t.Fatalf("orphan list after rename-over = %v, want [%d]", inums, st.Inode)
	}
	vic.Close(nil)
	if _, inums := readOrphanSlots(t, f); len(inums) != 0 {
		t.Fatalf("orphan list after victim close = %v, want empty", inums)
	}
}
