package xv6fs

import (
	"protosim/internal/kernel/errseq"
	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// file is the fs.FileOps of one open xv6fs file or directory, holding a
// reference on its in-memory inode. It is pure per-FILE state: the offset,
// open flags, refcounts and the per-open error cursor live in the
// fs.OpenFile wrapping it. Operations lock the inode for their duration,
// so tasks working on different files never serialize against each other —
// only against operations on the same inode.
type file struct {
	fs.BaseOps
	fsys  *FS
	ip    *inode
	name  string
	isDir bool
}

// Open implements fs.FileSystem.
func (f *FS) Open(t *sched.Task, path string, flags int) (_ fs.FileOps, err error) {
	// A latched-read-only mount refuses opens that could mutate; plain
	// read opens stay available (the data that did land is still there).
	if flags&(fs.OCreate|fs.OTrunc|fs.OWrOnly|fs.ORdWr) != 0 {
		if err := f.checkRW(); err != nil {
			return nil, err
		}
	}
	// One journal bracket per entry point, taken before any lock (see
	// beginOp). Even a read-only open needs it: the walk's iputs can fire
	// a deferred reclaim if a racing unlink dropped its reference first.
	// The closer inspects the returned error: a device failure mid-create
	// or mid-truncate poisons the bracket so the half-recorded transaction
	// is discarded, never committed.
	f.beginOp(t)
	defer func() { f.opAbort(err); f.endOp(t) }()
	path = fs.Clean(path)
	var ip *inode
	if flags&fs.OCreate != 0 && path != "/" {
		ip, err = f.create(t, path, typeFile, true)
		if err != nil {
			return nil, err
		}
	} else {
		if ip, err = f.namex(t, path); err != nil {
			return nil, err
		}
		if err = f.ilock(t, ip); err != nil {
			f.iput(t, ip)
			return nil, err
		}
	}
	if ip.di.Type == typeDir && flags&(fs.OWrOnly|fs.ORdWr) != 0 {
		f.iunlockput(t, ip)
		return nil, fs.ErrIsDir
	}
	if flags&fs.OTrunc != 0 && ip.di.Type == typeFile {
		if err := f.truncate(t, ip); err != nil {
			f.iunlockput(t, ip)
			return nil, err
		}
	}
	_, name := fs.SplitPath(path)
	if name == "" {
		name = "/"
	}
	isDir := ip.di.Type == typeDir
	f.iunlock(ip)
	return &file{fsys: f, ip: ip, name: name, isDir: isDir}, nil
}

// create makes (or, when existOK, returns) the inode for path's final
// element. On success the returned inode is referenced AND locked. Lock
// order is the canonical parent-directory → child → allocator: the parent
// stays locked from lookup through link so no second create can race the
// same name, and the child inode — invisible to everyone else until the
// dirLink lands — is locked nested under it.
func (f *FS) create(t *sched.Task, path string, typ uint16, existOK bool) (*inode, error) {
	dp, name, err := f.namexParent(t, path)
	if err != nil {
		return nil, err
	}
	if err := f.ilock(t, dp); err != nil {
		f.iput(t, dp)
		return nil, err
	}
	if dp.di.Type != typeDir {
		f.iunlockput(t, dp)
		return nil, fs.ErrNotDir
	}
	// Re-validate after locking: a racing unlink may have orphaned the
	// parent (NLink 0, reclaim deferred on our reference). Linking into
	// it would strand the new inode forever.
	if dp.di.NLink == 0 {
		f.iunlockput(t, dp)
		return nil, fs.ErrNotFound
	}
	if existing, err := f.dirLookupCached(t, dp, name); err != nil {
		f.iunlockput(t, dp)
		return nil, err
	} else if existing != 0 {
		ip := f.iget(existing)
		f.iunlockput(t, dp)
		if !existOK {
			f.iput(t, ip)
			return nil, fs.ErrExists
		}
		if err := f.ilock(t, ip); err != nil {
			f.iput(t, ip)
			return nil, err
		}
		return ip, nil
	}
	if len(name) > MaxName {
		f.iunlockput(t, dp)
		return nil, fs.ErrNameTooLong
	}
	inum, err := f.allocInode(t, typ)
	if err != nil {
		f.iunlockput(t, dp)
		return nil, err
	}
	ip := f.iget(inum)
	if err := f.ilockNested(t, ip); err != nil {
		f.iput(t, ip)
		f.iunlockput(t, dp)
		return nil, err
	}
	// Unwind a half-made inode: drop its link count so iput reclaims it.
	fail := func(err error) (*inode, error) {
		ip.di.NLink = 0
		_ = f.iupdate(t, ip)
		f.iunlockput(t, ip)
		f.iunlockput(t, dp)
		return nil, err
	}
	if typ == typeDir {
		if err := f.dirLink(t, ip, ".", inum); err != nil {
			return fail(err)
		}
		if err := f.dirLink(t, ip, "..", dp.inum); err != nil {
			return fail(err)
		}
	}
	// The name was just proven absent — possibly cached as ENOENT by the
	// lookup above. Kill that answer before the dirent lands, then record
	// the new mapping once it has.
	f.dcInval(dp, name)
	if err := f.dirLink(t, dp, name, inum); err != nil {
		return fail(err)
	}
	f.dcFillPos(dp, name, inum)
	f.iunlockput(t, dp)
	return ip, nil
}

// Mkdir implements fs.FileSystem.
func (f *FS) Mkdir(t *sched.Task, path string) (err error) {
	if err := f.checkRW(); err != nil {
		return err
	}
	f.beginOp(t)
	defer func() { f.opAbort(err); f.endOp(t) }()
	ip, err := f.create(t, fs.Clean(path), typeDir, false)
	if err != nil {
		return err
	}
	f.iunlockput(t, ip)
	return nil
}

// Unlink implements fs.FileSystem.
func (f *FS) Unlink(t *sched.Task, path string) (err error) {
	if err := f.checkRW(); err != nil {
		return err
	}
	f.beginOp(t)
	defer func() { f.opAbort(err); f.endOp(t) }()
	path = fs.Clean(path)
	dp, name, err := f.namexParent(t, path)
	if err != nil {
		return err
	}
	if err := f.ilock(t, dp); err != nil {
		f.iput(t, dp)
		return err
	}
	fail := func(err error) error {
		f.iunlockput(t, dp)
		return err
	}
	// The walk only type-checks directories it descends THROUGH; the final
	// parent must be validated here or a regular file's bytes would be
	// scanned as dirents.
	if dp.di.Type != typeDir {
		return fail(fs.ErrNotDir)
	}
	inum, err := f.dirLookupCached(t, dp, name)
	if err != nil {
		return fail(err)
	}
	if inum == 0 {
		return fail(fs.ErrNotFound)
	}
	ip := f.iget(inum)
	if err := f.ilockNested(t, ip); err != nil {
		f.iput(t, ip)
		return fail(err)
	}
	if ip.di.Type == typeDir {
		empty, err := f.isDirEmpty(t, ip)
		if err != nil {
			f.iunlockput(t, ip)
			return fail(err)
		}
		if !empty {
			f.iunlockput(t, ip)
			return fail(fs.ErrNotEmpty)
		}
	}
	// The name is about to stop resolving: invalidate before the dirent
	// write. A dying directory also takes its cached children (and cached
	// ENOENTs under it) along — its inum may be recycled.
	f.dcInval(dp, name)
	if ip.di.Type == typeDir {
		f.dc.InvalidateDir(int64(ip.inum))
	}
	if err := f.dirUnlink(t, dp, name); err != nil {
		f.iunlockput(t, ip)
		return fail(err)
	}
	f.dcFillNeg(dp, name)
	ip.di.NLink--
	err = f.iupdate(t, ip)
	// A file unlinked while still open elsewhere becomes an orphan: its
	// reclaim is deferred to the final close, and a crash before then
	// must not leak its storage — record it on the on-disk orphan list
	// in this same transaction. No new reference can appear once the
	// dirent is gone (this ref came from our own iget), so the ref count
	// read under imu is stable for this decision. When we hold the sole
	// reference, iput below reclaims immediately and no record is needed.
	if err == nil && ip.di.NLink == 0 {
		f.imu.Lock()
		openElsewhere := ip.ref > 1
		f.imu.Unlock()
		if openElsewhere {
			err = f.orphanAdd(t, ip.inum)
		}
	}
	// Reclaim happens in iput when the last reference drops — right here
	// if nothing has the file open, at final Close otherwise.
	f.iunlockput(t, ip)
	f.iunlockput(t, dp)
	return err
}

// Rename implements fs.Renamer: atomically move oldPath to newPath within
// this filesystem. An existing target is atomically REPLACED (POSIX
// rename): the target's directory entry is repointed at the moved inode
// in one buffer-atomic write — no moment exists when newPath is absent —
// and the displaced inode loses its link, reclaimed at its last close. A
// directory may only replace an empty directory; replacing across types
// fails with ErrIsDir/ErrNotDir as POSIX specifies.
//
// Rename is the one operation that must hold two directory locks at once,
// which is why it is serialized FS-wide by renameMu and locks the pair
// ancestor-first (falling back to ascending inum for unrelated
// directories). Ancestry comes from the cleaned paths — safe because only
// renames reshape the tree and renameMu admits one at a time. Against
// create/unlink/walk, which take parent-then-child down the tree,
// ancestor-first ordering closes every cycle. The moved and displaced
// inodes are locked nested under the directories; holders of a single
// file lock never acquire a second, so the pair cannot cycle either.
func (f *FS) Rename(t *sched.Task, oldPath, newPath string) (err error) {
	if err := f.checkRW(); err != nil {
		return err
	}
	f.beginOp(t)
	defer func() { f.opAbort(err); f.endOp(t) }()
	oldPath, newPath = fs.Clean(oldPath), fs.Clean(newPath)
	if oldPath == "/" || newPath == "/" {
		return fs.ErrPerm
	}
	if oldPath == newPath {
		return nil
	}
	// Moving a directory into its own subtree would orphan it.
	if fs.IsPathAncestor(oldPath, newPath) {
		return fs.ErrPerm
	}
	oldDir, oldName := fs.SplitPath(oldPath)
	newDir, newName := fs.SplitPath(newPath)
	if len(newName) > MaxName {
		return fs.ErrNameTooLong
	}

	// Per-mount rename sharding: a same-directory rename never consults
	// textual ancestry (its two paths share a parent, so neither can be
	// the other's prefix) and locks parent-then-child like create/unlink,
	// so it only needs to EXCLUDE cross-directory renames — whose ancestry
	// ordering a concurrent directory rename would invalidate — not other
	// same-directory renames. Shared mode buys exactly that.
	if oldDir == newDir {
		f.renameMu.RLock(t)
		defer f.renameMu.RUnlock()
	} else {
		f.renameMu.Lock(t)
		defer f.renameMu.Unlock()
	}

	// Renaming onto an ANCESTOR of the source ("/x/y/z" → "/x/y"): the
	// target is a directory the source's own lock path runs through —
	// locking it as the replace victim would deadlock against the locks
	// this call (or a concurrent walk) already holds — and it necessarily
	// contains the source, so the POSIX answer needs no victim lock:
	// ErrNotEmpty for a directory source, ErrIsDir for a file. Stable
	// under renameMu: only renames reshape the tree.
	if fs.IsPathAncestor(newPath, oldPath) {
		st, err := f.statInternal(t, oldPath)
		if err != nil {
			return err
		}
		if st.Type == fs.TypeDir {
			return fs.ErrNotEmpty
		}
		return fs.ErrIsDir
	}

	dp1, err := f.namex(t, oldDir)
	if err != nil {
		return err
	}
	dp2, err := f.namex(t, newDir)
	if err != nil {
		f.iput(t, dp1)
		return err
	}
	putDirs := func() {
		f.iput(t, dp1)
		f.iput(t, dp2)
	}

	first, second := dp1, dp2
	switch {
	case dp1 == dp2:
		second = nil
	case fs.IsPathAncestor(newDir, oldDir): // newDir is the ancestor
		first, second = dp2, dp1
	case fs.IsPathAncestor(oldDir, newDir): // oldDir is the ancestor
	default: // unrelated: ascending inum
		if dp2.inum < dp1.inum {
			first, second = dp2, dp1
		}
	}
	if err := f.ilock(t, first); err != nil {
		putDirs()
		return err
	}
	if second != nil {
		if err := f.ilockNested(t, second); err != nil {
			f.iunlock(first)
			putDirs()
			return err
		}
	}
	unlockDirs := func() {
		if second != nil {
			f.iunlock(second)
		}
		f.iunlock(first)
		putDirs()
	}
	// Re-validate after locking: an unlinked directory either reads back
	// as typeFree/reallocated (reclaimed) or still looks like a dir with
	// NLink 0 (reclaim deferred on our reference) — both are dead ends.
	if dp1.di.Type != typeDir || dp2.di.Type != typeDir ||
		dp1.di.NLink == 0 || dp2.di.NLink == 0 {
		unlockDirs()
		return fs.ErrNotFound
	}

	inum, err := f.dirLookupCached(t, dp1, oldName)
	if err != nil {
		unlockDirs()
		return err
	}
	if inum == 0 {
		unlockDirs()
		return fs.ErrNotFound
	}
	existing, err := f.dirLookupCached(t, dp2, newName)
	if err != nil {
		unlockDirs()
		return err
	}
	if existing == inum {
		// Both names already point at the same inode: POSIX says do
		// nothing and succeed.
		unlockDirs()
		return nil
	}
	if existing == dp1.inum || existing == dp2.inum {
		// Defensive: the ancestor-target check before the locks were
		// taken should make this unreachable; refuse rather than deadlock
		// on a lock this call already holds.
		unlockDirs()
		return fs.ErrNotEmpty
	}

	ip := f.iget(inum)
	if err := f.ilockNested(t, ip); err != nil {
		f.iput(t, ip)
		unlockDirs()
		return err
	}
	// The displaced target, if any, is locked under the moved inode. No
	// cycle: both parents are held (no create/unlink/walk can be between
	// these children), and open-file operations hold one inode lock only.
	var victim *inode
	failLocked := func(err error) error {
		if victim != nil {
			f.iunlockput(t, victim)
		}
		f.iunlockput(t, ip)
		unlockDirs()
		return err
	}
	if existing != 0 {
		victim = f.iget(existing)
		if err := f.ilockNested(t, victim); err != nil {
			f.iput(t, victim)
			victim = nil
			return failLocked(err)
		}
		// POSIX replace typing: a directory may only displace an empty
		// directory, a file only a non-directory.
		if victim.di.Type == typeDir {
			if ip.di.Type != typeDir {
				return failLocked(fs.ErrIsDir)
			}
			empty, err := f.isDirEmpty(t, victim)
			if err != nil {
				return failLocked(err)
			}
			if !empty {
				return failLocked(fs.ErrNotEmpty)
			}
		} else if ip.di.Type == typeDir {
			return failLocked(fs.ErrNotDir)
		}
	}
	// Both names go stale the moment the dirent dance below starts:
	// invalidate under the held directory locks, before any write. A
	// displaced directory dies here, so its cached children (and cached
	// ENOENTs under it) die with it.
	f.dcInval(dp1, oldName)
	f.dcInval(dp2, newName)
	if victim != nil && victim.di.Type == typeDir {
		f.dc.InvalidateDir(int64(victim.inum))
	}
	dotdotMoved := false
	if ip.di.Type == typeDir && dp1 != dp2 {
		// The moved directory's ".." must follow it to the new parent.
		if err := f.dirSetInum(t, ip, "..", dp2.inum); err != nil {
			return failLocked(err)
		}
		dotdotMoved = true
	}
	// Any failure past the ".." repoint must restore it, or the directory
	// stays under dp1 with ".." pointing at dp2; best-effort.
	undoDotdot := func() {
		if dotdotMoved {
			_ = f.dirSetInum(t, ip, "..", dp1.inum)
		}
	}
	if victim != nil {
		// Atomic replace: repoint the existing entry at the moved inode —
		// one dirent write, so newPath never stops resolving.
		if err := f.dirSetInum(t, dp2, newName, inum); err != nil {
			undoDotdot()
			return failLocked(err)
		}
	} else {
		if err := f.dirLink(t, dp2, newName, inum); err != nil {
			undoDotdot()
			return failLocked(err)
		}
	}
	if err := f.dirUnlink(t, dp1, oldName); err != nil {
		// Roll the new entry back rather than leave the file under two
		// names; best-effort, the original error wins.
		if victim != nil {
			_ = f.dirSetInum(t, dp2, newName, existing)
		} else {
			_ = f.dirUnlink(t, dp2, newName)
		}
		undoDotdot()
		return failLocked(err)
	}
	if victim != nil {
		// The displaced inode lost its only directory entry; its storage
		// is reclaimed at the last reference drop (right here when nothing
		// holds it open — xv6 deferred reclaim otherwise). Like Unlink,
		// a still-open victim joins the on-disk orphan list in this same
		// transaction so a crash cannot leak it.
		victim.di.NLink--
		_ = f.iupdate(t, victim)
		if victim.di.NLink == 0 {
			f.imu.Lock()
			openElsewhere := victim.ref > 1
			f.imu.Unlock()
			if openElsewhere {
				_ = f.orphanAdd(t, victim.inum)
			}
		}
		f.iunlockput(t, victim)
	}
	// Record what the rename proved, under the still-held directory locks:
	// the new name resolves to the moved inode, the old name to nothing.
	f.dcFillPos(dp2, newName, inum)
	f.dcFillNeg(dp1, oldName)
	f.iunlockput(t, ip)
	unlockDirs()
	return nil
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(t *sched.Task, path string) (fs.Stat, error) {
	// Read-only, but the walk's iputs can fire a deferred reclaim (see
	// Open), and reclaim writes metadata — so Stat brackets too.
	f.beginOp(t)
	defer f.endOp(t)
	return f.statInternal(t, path)
}

// statInternal is Stat minus the journal bracket, for callers already
// inside one (Rename's ancestor-target check — brackets never nest).
func (f *FS) statInternal(t *sched.Task, path string) (fs.Stat, error) {
	path = fs.Clean(path)
	ip, err := f.namex(t, path)
	if err != nil {
		return fs.Stat{}, err
	}
	if err := f.ilock(t, ip); err != nil {
		f.iput(t, ip)
		return fs.Stat{}, err
	}
	_, name := fs.SplitPath(path)
	typ := fs.TypeFile
	if ip.di.Type == typeDir {
		typ = fs.TypeDir
	}
	st := fs.Stat{Name: name, Type: typ, Size: int64(ip.di.Size), Inode: uint64(ip.inum)}
	f.iunlockput(t, ip)
	return st, nil
}

// --- fs.FileOps implementation ---

// Caps implements fs.FileOps: directories list and sync, files are
// positional and sync.
func (fl *file) Caps() fs.Caps {
	if fl.isDir {
		return fs.CapDir | fs.CapSync
	}
	return fs.CapSeek | fs.CapSync
}

// WbStream implements fs.FileOps: the inode's errseq stream, which the
// OpenFile samples for its per-open error cursor.
func (fl *file) WbStream() *errseq.Stream { return &fl.ip.wb.Stream }

// Pread implements fs.FileOps: read at an absolute offset under the inode
// lock. No open-file state is touched — concurrent preads of one
// description contend only on the inode, like two descriptions would.
func (fl *file) Pread(t *sched.Task, p []byte, off int64) (int, error) {
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return 0, err
	}
	defer fl.fsys.iunlock(fl.ip)
	if fl.ip.di.Type == typeDir {
		return 0, fs.ErrIsDir
	}
	return fl.fsys.readData(t, fl.ip, off, p)
}

// Pwrite implements fs.FileOps: write at an absolute offset — or, for
// fs.OffAppend, at EOF resolved under the same inode lock as the write
// itself, which is what makes O_APPEND atomic across any number of
// concurrent appenders.
func (fl *file) Pwrite(t *sched.Task, p []byte, off int64) (_ int, _ int64, err error) {
	// The bracket covers the allocations (bitmap, indirect) and the size
	// update this write may make; file DATA itself is not journaled —
	// metadata journaling, like ext4's default — so a crash can lose
	// recent data but never the filesystem's shape.
	if err := fl.fsys.checkRW(); err != nil {
		return 0, off, err
	}
	fl.fsys.beginOp(t)
	defer func() { fl.fsys.opAbort(err); fl.fsys.endOp(t) }()
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return 0, off, err
	}
	defer fl.fsys.iunlock(fl.ip)
	if fl.ip.di.Type == typeDir {
		return 0, off, fs.ErrIsDir
	}
	if off == fs.OffAppend {
		off = int64(fl.ip.di.Size)
	}
	if off < 0 {
		return 0, off, fs.ErrBadSeek
	}
	n, err := fl.fsys.writeData(t, fl.ip, off, p)
	return n, off + int64(n), err
}

// Sync implements fs.FileOps — the flush half of fsync. It writes back
// this file's dirty data buffers (found through the inode's per-owner
// dirty list) plus every metadata block the file's durability depends on:
// the inode-array block holding its on-disk inode, its indirect block
// (the pointers bmap dirties unowned), and the allocation bitmap (a
// block's bitmap bit must land with the pointer that references it, or a
// crash + fsck frees data fsync promised durable). All of it is already
// in the cache — every mutation under ip.lock writes through it — so the
// flush is purely a writeback barrier. Error observation happens in the
// caller: the fs.OpenFile observes its own per-open cursor against the
// inode's stream, so each descriptor hears a failure exactly once.
func (fl *file) Sync(t *sched.Task) error {
	f := fl.fsys
	// Journal barrier FIRST, before the inode lock: log.Sync waits for
	// every open bracket to End, and a bracketed operation may itself be
	// waiting on this inode's lock — taking the lock first would wedge
	// fsync and the log against each other. After it returns, every
	// metadata transaction this file's durability depends on is in the
	// on-disk log (or home); the FlushOwner below only needs to move data
	// blocks and already-checkpointed metadata.
	if f.log != nil {
		if err := f.log.Sync(t); err != nil {
			// A commit failure means metadata durability is gone for the
			// whole volume, not just this file: latch read-only. The error
			// itself is still reported to exactly this fsync — the journal
			// clears its sticky error once told.
			f.remountRO(err)
			return err
		}
	}
	if err := f.ilock(t, fl.ip); err != nil {
		return err
	}
	defer f.iunlock(fl.ip)
	extra := []int{int(f.sb.InodeStart) + fl.ip.inum/inodesPerBlock}
	if ind := fl.ip.di.Addrs[NDirect]; ind != 0 {
		extra = append(extra, int(ind))
	}
	// The whole bitmap is at most a handful of blocks (1 per 8 Mbit of
	// volume); clean ones are skipped by the flush anyway.
	for b := int(f.sb.BitmapStart); b < int(f.sb.DataStart); b++ {
		extra = append(extra, b)
	}
	return f.bc.FlushOwner(t, fl.ip.wb, extra...)
}

// Close implements fs.FileOps: drop the inode reference. The OpenFile
// calls it exactly once, after the last descriptor closed and the last
// in-flight operation drained. If the file was unlinked while open, this
// is where its blocks are reclaimed.
func (fl *file) Close(t *sched.Task) error {
	// The final close of an unlinked file reclaims its storage — a
	// metadata transaction, so Close brackets like any mutating entry
	// point.
	fl.fsys.beginOp(t)
	fl.fsys.iput(t, fl.ip)
	fl.fsys.endOp(t)
	return nil
}

// Stat implements fs.FileOps.
func (fl *file) Stat(t *sched.Task) (fs.Stat, error) {
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return fs.Stat{}, err
	}
	defer fl.fsys.iunlock(fl.ip)
	typ := fs.TypeFile
	if fl.ip.di.Type == typeDir {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: fl.name, Type: typ, Size: int64(fl.ip.di.Size), Inode: uint64(fl.ip.inum)}, nil
}

// ReadDir implements fs.FileOps.
func (fl *file) ReadDir(t *sched.Task) ([]fs.DirEntry, error) {
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return nil, err
	}
	defer fl.fsys.iunlock(fl.ip)
	if fl.ip.di.Type != typeDir {
		return nil, fs.ErrNotDir
	}
	return fl.fsys.dirEntries(t, fl.ip)
}

var (
	_ fs.FileOps = (*file)(nil)
	_ fs.Renamer = (*FS)(nil)
)
