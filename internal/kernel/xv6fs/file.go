package xv6fs

import (
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// file is one open xv6fs file or directory.
type file struct {
	fsys *FS
	inum int
	name string

	mu     sync.Mutex
	off    int64
	flags  int
	closed bool
}

// Open implements fs.FileSystem.
func (f *FS) Open(t *sched.Task, path string, flags int) (fs.File, error) {
	f.lock.Lock(t)
	defer f.lock.Unlock()

	path = fs.Clean(path)
	inum, di, err := f.walk(t, path)
	if err == fs.ErrNotFound && flags&fs.OCreate != 0 {
		inum, err = f.createLocked(t, path, typeFile)
		if err != nil {
			return nil, err
		}
		var ndi dinode
		if err := f.readInode(t, inum, &ndi); err != nil {
			return nil, err
		}
		di = &ndi
	} else if err != nil {
		return nil, err
	}
	if di.Type == typeDir && flags&(fs.OWrOnly|fs.ORdWr) != 0 {
		return nil, fs.ErrIsDir
	}
	if flags&fs.OTrunc != 0 && di.Type == typeFile {
		if err := f.truncate(t, di, inum); err != nil {
			return nil, err
		}
	}
	_, name := fs.SplitPath(path)
	if name == "" {
		name = "/"
	}
	return &file{fsys: f, inum: inum, name: name, flags: flags}, nil
}

// createLocked makes a new file/dir entry; caller holds f.lock.
func (f *FS) createLocked(t *sched.Task, path string, typ uint16) (int, error) {
	dirInum, ddi, name, err := f.walkParent(t, path)
	if err != nil {
		return 0, err
	}
	if existing, _, err := f.dirLookup(t, ddi, dirInum, name); err != nil {
		return 0, err
	} else if existing != 0 {
		return 0, fs.ErrExists
	}
	inum, err := f.allocInode(t, typ)
	if err != nil {
		return 0, err
	}
	if typ == typeDir {
		var di dinode
		if err := f.readInode(t, inum, &di); err != nil {
			return 0, err
		}
		if err := f.dirLink(t, &di, inum, ".", inum); err != nil {
			return 0, err
		}
		if err := f.readInode(t, inum, &di); err != nil {
			return 0, err
		}
		if err := f.dirLink(t, &di, inum, "..", dirInum); err != nil {
			return 0, err
		}
	}
	if err := f.readInode(t, dirInum, ddi); err != nil { // re-read: links moved it
		return 0, err
	}
	if err := f.dirLink(t, ddi, dirInum, name, inum); err != nil {
		return 0, err
	}
	return inum, nil
}

// Mkdir implements fs.FileSystem.
func (f *FS) Mkdir(t *sched.Task, path string) error {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	_, err := f.createLocked(t, path, typeDir)
	return err
}

// Unlink implements fs.FileSystem.
func (f *FS) Unlink(t *sched.Task, path string) error {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	inum, di, err := f.walk(t, path)
	if err != nil {
		return err
	}
	if di.Type == typeDir {
		entries, err := f.dirEntries(t, di, inum)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return fs.ErrNotEmpty
		}
	}
	dirInum, ddi, name, err := f.walkParent(t, path)
	if err != nil {
		return err
	}
	if err := f.dirUnlink(t, ddi, dirInum, name); err != nil {
		return err
	}
	di.NLink--
	if di.NLink == 0 {
		if err := f.truncate(t, di, inum); err != nil {
			return err
		}
		di.Type = typeFree
	}
	return f.writeInode(t, inum, di)
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(t *sched.Task, path string) (fs.Stat, error) {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	inum, di, err := f.walk(t, path)
	if err != nil {
		return fs.Stat{}, err
	}
	_, name := fs.SplitPath(path)
	typ := fs.TypeFile
	if di.Type == typeDir {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: name, Type: typ, Size: int64(di.Size), Inode: uint64(inum)}, nil
}

// Sync flushes dirty buffers to the device, batched. It takes the volume
// lock like every other operation so the flush never interleaves with an
// in-flight write's cache traffic.
func (f *FS) Sync(t *sched.Task) error {
	f.lock.Lock(t)
	defer f.lock.Unlock()
	return f.bc.Flush(t)
}

// --- fs.File implementation ---

func (fl *file) Read(t *sched.Task, p []byte) (int, error) {
	fl.fsys.lock.Lock(t)
	defer fl.fsys.lock.Unlock()
	var di dinode
	if err := fl.fsys.readInode(t, fl.inum, &di); err != nil {
		return 0, err
	}
	if di.Type == typeDir {
		return 0, fs.ErrIsDir
	}
	fl.mu.Lock()
	off := fl.off
	fl.mu.Unlock()
	n, err := fl.fsys.readData(t, &di, fl.inum, off, p)
	fl.mu.Lock()
	fl.off += int64(n)
	fl.mu.Unlock()
	return n, err
}

func (fl *file) Write(t *sched.Task, p []byte) (int, error) {
	if fl.flags&(fs.OWrOnly|fs.ORdWr) == 0 {
		return 0, fs.ErrPerm
	}
	fl.fsys.lock.Lock(t)
	defer fl.fsys.lock.Unlock()
	var di dinode
	if err := fl.fsys.readInode(t, fl.inum, &di); err != nil {
		return 0, err
	}
	fl.mu.Lock()
	off := fl.off
	if fl.flags&fs.OAppend != 0 {
		off = int64(di.Size)
	}
	fl.mu.Unlock()
	n, err := fl.fsys.writeData(t, &di, fl.inum, off, p)
	fl.mu.Lock()
	fl.off = off + int64(n)
	fl.mu.Unlock()
	return n, err
}

func (fl *file) Close() error {
	fl.mu.Lock()
	fl.closed = true
	fl.mu.Unlock()
	return nil
}

func (fl *file) Stat() (fs.Stat, error) {
	// Stat through an open file has no task handy; reading the inode
	// without the FS lock is safe because inode loads are single-block.
	var di dinode
	if err := fl.fsys.readInode(nil, fl.inum, &di); err != nil {
		return fs.Stat{}, err
	}
	typ := fs.TypeFile
	if di.Type == typeDir {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: fl.name, Type: typ, Size: int64(di.Size), Inode: uint64(fl.inum)}, nil
}

// Lseek implements fs.Seeker.
func (fl *file) Lseek(offset int64, whence int) (int64, error) {
	var size int64
	if whence == fs.SeekEnd {
		st, err := fl.Stat()
		if err != nil {
			return 0, err
		}
		size = st.Size
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	var base int64
	switch whence {
	case fs.SeekSet:
		base = 0
	case fs.SeekCur:
		base = fl.off
	case fs.SeekEnd:
		base = size
	default:
		return 0, fs.ErrBadSeek
	}
	n := base + offset
	if n < 0 {
		return 0, fs.ErrBadSeek
	}
	fl.off = n
	return n, nil
}

// ReadDir implements fs.DirReader.
func (fl *file) ReadDir() ([]fs.DirEntry, error) {
	fl.fsys.lock.Lock(nil)
	defer fl.fsys.lock.Unlock()
	var di dinode
	if err := fl.fsys.readInode(nil, fl.inum, &di); err != nil {
		return nil, err
	}
	if di.Type != typeDir {
		return nil, fs.ErrNotDir
	}
	return fl.fsys.dirEntries(nil, &di, fl.inum)
}

var (
	_ fs.File      = (*file)(nil)
	_ fs.Seeker    = (*file)(nil)
	_ fs.DirReader = (*file)(nil)
)
