package xv6fs

import (
	"sync"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/sched"
)

// file is one open xv6fs file or directory, holding a reference on its
// in-memory inode. Operations lock the inode for their duration, so tasks
// working on different files never serialize against each other — only
// against operations on the same inode.
type file struct {
	fsys *FS
	ip   *inode
	name string

	mu       sync.Mutex
	off      int64
	flags    int
	closed   bool
	inflight int // operations between use() and done()
}

// use opens an operation window on the description (false once closed);
// done closes it. Threads share FD tables, so a Close can race an
// in-flight Read/Write on the same descriptor — the inode reference is
// dropped by whoever finishes last, never yanked mid-operation.
func (fl *file) use() bool {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return false
	}
	fl.inflight++
	return true
}

func (fl *file) done(t *sched.Task) {
	fl.mu.Lock()
	fl.inflight--
	drop := fl.closed && fl.inflight == 0
	fl.mu.Unlock()
	if drop {
		fl.fsys.iput(t, fl.ip)
	}
}

// Open implements fs.FileSystem.
func (f *FS) Open(t *sched.Task, path string, flags int) (fs.File, error) {
	path = fs.Clean(path)
	var ip *inode
	var err error
	if flags&fs.OCreate != 0 && path != "/" {
		ip, err = f.create(t, path, typeFile, true)
		if err != nil {
			return nil, err
		}
	} else {
		if ip, err = f.namex(t, path); err != nil {
			return nil, err
		}
		if err = f.ilock(t, ip); err != nil {
			f.iput(t, ip)
			return nil, err
		}
	}
	if ip.di.Type == typeDir && flags&(fs.OWrOnly|fs.ORdWr) != 0 {
		f.iunlockput(t, ip)
		return nil, fs.ErrIsDir
	}
	if flags&fs.OTrunc != 0 && ip.di.Type == typeFile {
		if err := f.truncate(t, ip); err != nil {
			f.iunlockput(t, ip)
			return nil, err
		}
	}
	_, name := fs.SplitPath(path)
	if name == "" {
		name = "/"
	}
	f.iunlock(ip)
	return &file{fsys: f, ip: ip, name: name, flags: flags}, nil
}

// create makes (or, when existOK, returns) the inode for path's final
// element. On success the returned inode is referenced AND locked. Lock
// order is the canonical parent-directory → child → allocator: the parent
// stays locked from lookup through link so no second create can race the
// same name, and the child inode — invisible to everyone else until the
// dirLink lands — is locked nested under it.
func (f *FS) create(t *sched.Task, path string, typ uint16, existOK bool) (*inode, error) {
	dp, name, err := f.namexParent(t, path)
	if err != nil {
		return nil, err
	}
	if err := f.ilock(t, dp); err != nil {
		f.iput(t, dp)
		return nil, err
	}
	if dp.di.Type != typeDir {
		f.iunlockput(t, dp)
		return nil, fs.ErrNotDir
	}
	// Re-validate after locking: a racing unlink may have orphaned the
	// parent (NLink 0, reclaim deferred on our reference). Linking into
	// it would strand the new inode forever.
	if dp.di.NLink == 0 {
		f.iunlockput(t, dp)
		return nil, fs.ErrNotFound
	}
	if existing, _, err := f.dirLookup(t, dp, name); err != nil {
		f.iunlockput(t, dp)
		return nil, err
	} else if existing != 0 {
		ip := f.iget(existing)
		f.iunlockput(t, dp)
		if !existOK {
			f.iput(t, ip)
			return nil, fs.ErrExists
		}
		if err := f.ilock(t, ip); err != nil {
			f.iput(t, ip)
			return nil, err
		}
		return ip, nil
	}
	if len(name) > MaxName {
		f.iunlockput(t, dp)
		return nil, fs.ErrNameTooLong
	}
	inum, err := f.allocInode(t, typ)
	if err != nil {
		f.iunlockput(t, dp)
		return nil, err
	}
	ip := f.iget(inum)
	if err := f.ilockNested(t, ip); err != nil {
		f.iput(t, ip)
		f.iunlockput(t, dp)
		return nil, err
	}
	// Unwind a half-made inode: drop its link count so iput reclaims it.
	fail := func(err error) (*inode, error) {
		ip.di.NLink = 0
		_ = f.iupdate(t, ip)
		f.iunlockput(t, ip)
		f.iunlockput(t, dp)
		return nil, err
	}
	if typ == typeDir {
		if err := f.dirLink(t, ip, ".", inum); err != nil {
			return fail(err)
		}
		if err := f.dirLink(t, ip, "..", dp.inum); err != nil {
			return fail(err)
		}
	}
	if err := f.dirLink(t, dp, name, inum); err != nil {
		return fail(err)
	}
	f.iunlockput(t, dp)
	return ip, nil
}

// Mkdir implements fs.FileSystem.
func (f *FS) Mkdir(t *sched.Task, path string) error {
	ip, err := f.create(t, fs.Clean(path), typeDir, false)
	if err != nil {
		return err
	}
	f.iunlockput(t, ip)
	return nil
}

// Unlink implements fs.FileSystem.
func (f *FS) Unlink(t *sched.Task, path string) error {
	path = fs.Clean(path)
	dp, name, err := f.namexParent(t, path)
	if err != nil {
		return err
	}
	if err := f.ilock(t, dp); err != nil {
		f.iput(t, dp)
		return err
	}
	fail := func(err error) error {
		f.iunlockput(t, dp)
		return err
	}
	// The walk only type-checks directories it descends THROUGH; the final
	// parent must be validated here or a regular file's bytes would be
	// scanned as dirents.
	if dp.di.Type != typeDir {
		return fail(fs.ErrNotDir)
	}
	inum, _, err := f.dirLookup(t, dp, name)
	if err != nil {
		return fail(err)
	}
	if inum == 0 {
		return fail(fs.ErrNotFound)
	}
	ip := f.iget(inum)
	if err := f.ilockNested(t, ip); err != nil {
		f.iput(t, ip)
		return fail(err)
	}
	if ip.di.Type == typeDir {
		empty, err := f.isDirEmpty(t, ip)
		if err != nil {
			f.iunlockput(t, ip)
			return fail(err)
		}
		if !empty {
			f.iunlockput(t, ip)
			return fail(fs.ErrNotEmpty)
		}
	}
	if err := f.dirUnlink(t, dp, name); err != nil {
		f.iunlockput(t, ip)
		return fail(err)
	}
	ip.di.NLink--
	err = f.iupdate(t, ip)
	// Reclaim happens in iput when the last reference drops — right here
	// if nothing has the file open, at final Close otherwise.
	f.iunlockput(t, ip)
	f.iunlockput(t, dp)
	return err
}

// Rename implements fs.Renamer: atomically move oldPath to newPath within
// this filesystem. The destination must not already exist.
//
// Rename is the one operation that must hold two directory locks at once,
// which is why it is serialized FS-wide by renameMu and locks the pair
// ancestor-first (falling back to ascending inum for unrelated
// directories). Ancestry comes from the cleaned paths — safe because only
// renames reshape the tree and renameMu admits one at a time. Against
// create/unlink/walk, which take parent-then-child down the tree,
// ancestor-first ordering closes every cycle.
func (f *FS) Rename(t *sched.Task, oldPath, newPath string) error {
	oldPath, newPath = fs.Clean(oldPath), fs.Clean(newPath)
	if oldPath == "/" || newPath == "/" {
		return fs.ErrPerm
	}
	if oldPath == newPath {
		return nil
	}
	// Moving a directory into its own subtree would orphan it.
	if fs.IsPathAncestor(oldPath, newPath) {
		return fs.ErrPerm
	}
	oldDir, oldName := fs.SplitPath(oldPath)
	newDir, newName := fs.SplitPath(newPath)
	if len(newName) > MaxName {
		return fs.ErrNameTooLong
	}

	f.renameMu.Lock(t)
	defer f.renameMu.Unlock()

	dp1, err := f.namex(t, oldDir)
	if err != nil {
		return err
	}
	dp2, err := f.namex(t, newDir)
	if err != nil {
		f.iput(t, dp1)
		return err
	}
	putDirs := func() {
		f.iput(t, dp1)
		f.iput(t, dp2)
	}

	first, second := dp1, dp2
	switch {
	case dp1 == dp2:
		second = nil
	case fs.IsPathAncestor(newDir, oldDir): // newDir is the ancestor
		first, second = dp2, dp1
	case fs.IsPathAncestor(oldDir, newDir): // oldDir is the ancestor
	default: // unrelated: ascending inum
		if dp2.inum < dp1.inum {
			first, second = dp2, dp1
		}
	}
	if err := f.ilock(t, first); err != nil {
		putDirs()
		return err
	}
	if second != nil {
		if err := f.ilockNested(t, second); err != nil {
			f.iunlock(first)
			putDirs()
			return err
		}
	}
	unlockDirs := func() {
		if second != nil {
			f.iunlock(second)
		}
		f.iunlock(first)
		putDirs()
	}
	// Re-validate after locking: an unlinked directory either reads back
	// as typeFree/reallocated (reclaimed) or still looks like a dir with
	// NLink 0 (reclaim deferred on our reference) — both are dead ends.
	if dp1.di.Type != typeDir || dp2.di.Type != typeDir ||
		dp1.di.NLink == 0 || dp2.di.NLink == 0 {
		unlockDirs()
		return fs.ErrNotFound
	}

	inum, _, err := f.dirLookup(t, dp1, oldName)
	if err != nil {
		unlockDirs()
		return err
	}
	if inum == 0 {
		unlockDirs()
		return fs.ErrNotFound
	}
	if existing, _, err := f.dirLookup(t, dp2, newName); err != nil {
		unlockDirs()
		return err
	} else if existing != 0 {
		unlockDirs()
		return fs.ErrExists
	}

	ip := f.iget(inum)
	if err := f.ilockNested(t, ip); err != nil {
		f.iput(t, ip)
		unlockDirs()
		return err
	}
	if ip.di.Type == typeDir && dp1 != dp2 {
		// The moved directory's ".." must follow it to the new parent.
		if err := f.dirSetInum(t, ip, "..", dp2.inum); err != nil {
			f.iunlockput(t, ip)
			unlockDirs()
			return err
		}
	}
	if err := f.dirLink(t, dp2, newName, inum); err != nil {
		f.iunlockput(t, ip)
		unlockDirs()
		return err
	}
	if err := f.dirUnlink(t, dp1, oldName); err != nil {
		// Roll the new link back rather than leave the file under two
		// names; best-effort, the original error wins.
		_ = f.dirUnlink(t, dp2, newName)
		f.iunlockput(t, ip)
		unlockDirs()
		return err
	}
	f.iunlockput(t, ip)
	unlockDirs()
	return nil
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(t *sched.Task, path string) (fs.Stat, error) {
	path = fs.Clean(path)
	ip, err := f.namex(t, path)
	if err != nil {
		return fs.Stat{}, err
	}
	if err := f.ilock(t, ip); err != nil {
		f.iput(t, ip)
		return fs.Stat{}, err
	}
	_, name := fs.SplitPath(path)
	typ := fs.TypeFile
	if ip.di.Type == typeDir {
		typ = fs.TypeDir
	}
	st := fs.Stat{Name: name, Type: typ, Size: int64(ip.di.Size), Inode: uint64(ip.inum)}
	f.iunlockput(t, ip)
	return st, nil
}

// --- fs.File implementation ---

func (fl *file) Read(t *sched.Task, p []byte) (int, error) {
	if !fl.use() {
		return 0, fs.ErrBadFD
	}
	defer fl.done(t)
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return 0, err
	}
	defer fl.fsys.iunlock(fl.ip)
	if fl.ip.di.Type == typeDir {
		return 0, fs.ErrIsDir
	}
	fl.mu.Lock()
	off := fl.off
	fl.mu.Unlock()
	n, err := fl.fsys.readData(t, fl.ip, off, p)
	fl.mu.Lock()
	fl.off = off + int64(n)
	fl.mu.Unlock()
	return n, err
}

func (fl *file) Write(t *sched.Task, p []byte) (int, error) {
	if fl.flags&(fs.OWrOnly|fs.ORdWr) == 0 {
		return 0, fs.ErrPerm
	}
	if !fl.use() {
		return 0, fs.ErrBadFD
	}
	defer fl.done(t)
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return 0, err
	}
	defer fl.fsys.iunlock(fl.ip)
	fl.mu.Lock()
	off := fl.off
	if fl.flags&fs.OAppend != 0 {
		off = int64(fl.ip.di.Size)
	}
	fl.mu.Unlock()
	n, err := fl.fsys.writeData(t, fl.ip, off, p)
	fl.mu.Lock()
	fl.off = off + int64(n)
	fl.mu.Unlock()
	return n, err
}

// SyncT implements fs.FileSyncer — fsync. It writes back this file's
// dirty data buffers (tagged with the inode's error stream) plus every
// metadata block the file's durability depends on: the inode-array block
// holding its on-disk inode, its indirect block (the pointers bmap
// dirties unowned), and the allocation bitmap (a block's bitmap bit must
// land with the pointer that references it, or a crash + fsck frees data
// fsync promised durable). All of it is already in the cache — every
// mutation under ip.lock writes through it — so fsync is purely a
// writeback-and-observe barrier. Then the inode's error stream is
// observed: an asynchronous writeback failure of this file's data since
// the last fsync is reported exactly once, and another file's failure
// never is.
func (fl *file) SyncT(t *sched.Task) error {
	if !fl.use() {
		return fs.ErrBadFD
	}
	defer fl.done(t)
	f := fl.fsys
	if err := f.ilock(t, fl.ip); err != nil {
		return err
	}
	defer f.iunlock(fl.ip)
	extra := []int{int(f.sb.InodeStart) + fl.ip.inum/inodesPerBlock}
	if ind := fl.ip.di.Addrs[NDirect]; ind != 0 {
		extra = append(extra, int(ind))
	}
	// The whole bitmap is at most a handful of blocks (1 per 8 Mbit of
	// volume); clean ones are skipped by the flush anyway.
	for b := int(f.sb.BitmapStart); b < int(f.sb.DataStart); b++ {
		extra = append(extra, b)
	}
	return f.bc.FlushOwner(t, fl.ip.wb, extra...)
}

func (fl *file) Close() error { return fl.CloseT(nil) }

// CloseT implements fs.TaskCloser: the syscall layer closes with the task
// in hand, since reclaiming an unlinked file at last close is lock-and-IO
// work.
func (fl *file) CloseT(t *sched.Task) error {
	fl.mu.Lock()
	if fl.closed {
		fl.mu.Unlock()
		return nil
	}
	fl.closed = true
	drop := fl.inflight == 0
	fl.mu.Unlock()
	// Drop the inode reference — deferred to the last in-flight operation
	// if any are mid-call. If the file was unlinked while open, this is
	// where its blocks are reclaimed.
	if drop {
		fl.fsys.iput(t, fl.ip)
	}
	return nil
}

func (fl *file) Stat() (fs.Stat, error) { return fl.StatT(nil) }

// StatT implements fs.TaskStater.
func (fl *file) StatT(t *sched.Task) (fs.Stat, error) {
	if !fl.use() {
		return fs.Stat{}, fs.ErrBadFD
	}
	defer fl.done(t)
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return fs.Stat{}, err
	}
	defer fl.fsys.iunlock(fl.ip)
	typ := fs.TypeFile
	if fl.ip.di.Type == typeDir {
		typ = fs.TypeDir
	}
	return fs.Stat{Name: fl.name, Type: typ, Size: int64(fl.ip.di.Size), Inode: uint64(fl.ip.inum)}, nil
}

// Lseek implements fs.Seeker.
func (fl *file) Lseek(offset int64, whence int) (int64, error) {
	var size int64
	if whence == fs.SeekEnd {
		st, err := fl.Stat()
		if err != nil {
			return 0, err
		}
		size = st.Size
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	var base int64
	switch whence {
	case fs.SeekSet:
		base = 0
	case fs.SeekCur:
		base = fl.off
	case fs.SeekEnd:
		base = size
	default:
		return 0, fs.ErrBadSeek
	}
	n := base + offset
	if n < 0 {
		return 0, fs.ErrBadSeek
	}
	fl.off = n
	return n, nil
}

// ReadDir implements fs.DirReader.
func (fl *file) ReadDir() ([]fs.DirEntry, error) { return fl.ReadDirT(nil) }

// ReadDirT implements fs.TaskDirReader.
func (fl *file) ReadDirT(t *sched.Task) ([]fs.DirEntry, error) {
	if !fl.use() {
		return nil, fs.ErrBadFD
	}
	defer fl.done(t)
	if err := fl.fsys.ilock(t, fl.ip); err != nil {
		return nil, err
	}
	defer fl.fsys.iunlock(fl.ip)
	if fl.ip.di.Type != typeDir {
		return nil, fs.ErrNotDir
	}
	return fl.fsys.dirEntries(t, fl.ip)
}

var (
	_ fs.File          = (*file)(nil)
	_ fs.Seeker        = (*file)(nil)
	_ fs.DirReader     = (*file)(nil)
	_ fs.TaskStater    = (*file)(nil)
	_ fs.TaskCloser    = (*file)(nil)
	_ fs.TaskDirReader = (*file)(nil)
	_ fs.FileSyncer    = (*file)(nil)
	_ fs.Renamer       = (*FS)(nil)
)
