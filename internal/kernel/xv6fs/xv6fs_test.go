package xv6fs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"protosim/internal/kernel/fs"
)

func newFS(t *testing.T, blocks int) *FS {
	t.Helper()
	rd := fs.NewRamdisk(BlockSize, blocks)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMkfsMountEmptyRoot(t *testing.T) {
	f := newFS(t, 512)
	st, err := f.Stat(nil, "/")
	if err != nil || st.Type != fs.TypeDir {
		t.Fatalf("root stat = %+v, %v", st, err)
	}
	d, err := openOF(f, "/", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := d.ReadDir(nil)
	if err != nil || len(entries) != 0 {
		t.Fatalf("root entries = %v, %v", entries, err)
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	rd := fs.NewRamdisk(BlockSize, 64)
	if _, err := Mount(rd, nil); !errors.Is(err, ErrBadFS) {
		t.Fatalf("err = %v, want ErrBadFS", err)
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	f := newFS(t, 512)
	fl, err := openOF(f, "/hello.txt", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello from prototype 4")
	if n, err := fl.Write(nil, msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	fl.Close(nil)

	fl2, err := openOF(f, "/hello.txt", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	n, err := fl2.Read(nil, got)
	if err != nil || !bytes.Equal(got[:n], msg) {
		t.Fatalf("read %q, %v", got[:n], err)
	}
	// EOF.
	if n, _ := fl2.Read(nil, got); n != 0 {
		t.Fatalf("read past EOF returned %d", n)
	}
}

func TestOpenMissingFails(t *testing.T) {
	f := newFS(t, 512)
	if _, err := openOF(f, "/nope", fs.ORdOnly); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateExclusiveSemantics(t *testing.T) {
	f := newFS(t, 512)
	fl, _ := openOF(f, "/a", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("one"))
	fl.Close(nil)
	// Re-open with OCreate keeps existing content.
	fl2, err := openOF(f, "/a", fs.OCreate|fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 8)
	n, _ := fl2.Read(nil, b)
	if string(b[:n]) != "one" {
		t.Fatalf("content = %q", b[:n])
	}
	// OTrunc clears it.
	openOF(f, "/a", fs.OCreate|fs.OWrOnly|fs.OTrunc)
	st, _ := f.Stat(nil, "/a")
	if st.Size != 0 {
		t.Fatalf("size after trunc = %d", st.Size)
	}
}

func TestDirectoriesAndWalk(t *testing.T) {
	f := newFS(t, 512)
	if err := f.Mkdir(nil, "/bin"); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir(nil, "/bin/tools"); err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/bin/tools/ls", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Write(nil, []byte("ELF"))
	fl.Close(nil)
	st, err := f.Stat(nil, "/bin/tools/ls")
	if err != nil || st.Size != 3 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	// Walk through a file must fail with ErrNotDir.
	if _, err := f.Stat(nil, "/bin/tools/ls/x"); !errors.Is(err, fs.ErrNotDir) {
		t.Fatalf("err = %v", err)
	}
	// ReadDir sees the child.
	d, _ := openOF(f, "/bin", fs.ORdOnly)
	entries, _ := d.ReadDir(nil)
	if len(entries) != 1 || entries[0].Name != "tools" || entries[0].Type != fs.TypeDir {
		t.Fatalf("entries = %v", entries)
	}
}

func TestMkdirDuplicateFails(t *testing.T) {
	f := newFS(t, 512)
	f.Mkdir(nil, "/x")
	if err := f.Mkdir(nil, "/x"); !errors.Is(err, fs.ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnlinkFileAndFreesSpace(t *testing.T) {
	f := newFS(t, 256)
	data := bytes.Repeat([]byte{0xAA}, 50*BlockSize)
	// Fill and delete repeatedly: if blocks leak, this exhausts the disk.
	for i := 0; i < 5; i++ {
		fl, err := openOF(f, "/big", fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if _, err := fl.Write(nil, data); err != nil {
			t.Fatalf("iter %d write: %v", i, err)
		}
		fl.Close(nil)
		if err := f.Unlink(nil, "/big"); err != nil {
			t.Fatalf("iter %d unlink: %v", i, err)
		}
	}
	if _, err := f.Stat(nil, "/big"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat after unlink = %v", err)
	}
}

func TestUnlinkNonEmptyDirFails(t *testing.T) {
	f := newFS(t, 512)
	f.Mkdir(nil, "/d")
	fl, _ := openOF(f, "/d/f", fs.OCreate|fs.OWrOnly)
	fl.Close(nil)
	if err := f.Unlink(nil, "/d"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	f.Unlink(nil, "/d/f")
	if err := f.Unlink(nil, "/d"); err != nil {
		t.Fatalf("unlink empty dir: %v", err)
	}
}

func TestMaxFileSize270KB(t *testing.T) {
	f := newFS(t, 1024)
	fl, err := openOF(f, "/max", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	max := MaxFile * BlockSize // 268 KB: the paper's "270 KB" cap
	if max != 274432 {
		t.Fatalf("max file = %d bytes, expected 268 KB", max)
	}
	chunk := bytes.Repeat([]byte{7}, 32*1024)
	written := 0
	for written < max {
		n := len(chunk)
		if written+n > max {
			n = max - written
		}
		if _, err := fl.Write(nil, chunk[:n]); err != nil {
			t.Fatalf("write at %d: %v", written, err)
		}
		written += n
	}
	// One more byte must fail with ErrFileTooBig — the limitation that
	// motivates FAT32 in Prototype 5.
	if _, err := fl.Write(nil, []byte{1}); !errors.Is(err, fs.ErrFileTooBig) {
		t.Fatalf("err = %v, want ErrFileTooBig", err)
	}
}

func TestLseekAndSparseRead(t *testing.T) {
	f := newFS(t, 512)
	fl, _ := openOF(f, "/s", fs.OCreate|fs.ORdWr)
	fl.Write(nil, []byte("0123456789"))
	sk := fl
	if off, err := sk.Seek(nil, 4, fs.SeekSet); err != nil || off != 4 {
		t.Fatalf("seek = %d, %v", off, err)
	}
	b := make([]byte, 3)
	fl.Read(nil, b)
	if string(b) != "456" {
		t.Fatalf("read %q", b)
	}
	if off, _ := sk.Seek(nil, -2, fs.SeekEnd); off != 8 {
		t.Fatalf("seekend = %d", off)
	}
	if _, err := sk.Seek(nil, -100, fs.SeekSet); !errors.Is(err, fs.ErrBadSeek) {
		t.Fatalf("negative seek err = %v", err)
	}
}

func TestAppendFlag(t *testing.T) {
	f := newFS(t, 512)
	fl, _ := openOF(f, "/log", fs.OCreate|fs.OWrOnly)
	fl.Write(nil, []byte("aaa"))
	fl.Close(nil)
	fl2, _ := openOF(f, "/log", fs.OWrOnly|fs.OAppend)
	fl2.Write(nil, []byte("bbb"))
	fl2.Close(nil)
	fl3, _ := openOF(f, "/log", fs.ORdOnly)
	b := make([]byte, 16)
	n, _ := fl3.Read(nil, b)
	if string(b[:n]) != "aaabbb" {
		t.Fatalf("content = %q", b[:n])
	}
}

func TestWriteWithoutWritePermFails(t *testing.T) {
	f := newFS(t, 512)
	fl, _ := openOF(f, "/ro", fs.OCreate|fs.OWrOnly)
	fl.Close(nil)
	fl2, _ := openOF(f, "/ro", fs.ORdOnly)
	if _, err := fl2.Write(nil, []byte("x")); !errors.Is(err, fs.ErrPerm) {
		t.Fatalf("err = %v", err)
	}
}

func TestNameTooLong(t *testing.T) {
	f := newFS(t, 512)
	_, err := openOF(f, "/this-name-is-way-too-long-for-xv6fs", fs.OCreate|fs.OWrOnly)
	if !errors.Is(err, fs.ErrNameTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestDiskFullSurfaces(t *testing.T) {
	f := newFS(t, 48) // tiny disk
	fl, _ := openOF(f, "/fill", fs.OCreate|fs.OWrOnly)
	chunk := bytes.Repeat([]byte{1}, BlockSize)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = fl.Write(nil, chunk); err != nil {
			break
		}
	}
	if !errors.Is(err, fs.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestBuildImageAndRemount(t *testing.T) {
	files := map[string][]byte{
		"/bin/sh":     []byte("shell binary"),
		"/bin/ls":     []byte("ls binary"),
		"/etc/initrc": []byte("launcher\n"),
		"/readme":     bytes.Repeat([]byte("R"), 3000),
	}
	rd, err := BuildImage(1024, 64, files)
	if err != nil {
		t.Fatal(err)
	}
	// Remount from the raw image, as the kernel does at boot.
	f, err := Mount(fs.NewRamdiskFromImage(BlockSize, rd.Image()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range files {
		fl, err := openOF(f, path, fs.ORdOnly)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		got := make([]byte, len(want)+10)
		n, _ := fl.Read(nil, got)
		if !bytes.Equal(got[:n], want) {
			t.Fatalf("%s: got %d bytes, want %d", path, n, len(want))
		}
	}
}

// Property test: xv6fs agrees with an in-memory model across random
// write/read offsets within one file.
func TestReadWriteOffsetsProperty(t *testing.T) {
	f := newFS(t, 2048)
	fl, err := openOF(f, "/prop", fs.OCreate|fs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	sk := fl
	model := make([]byte, MaxFile*BlockSize)
	modelSize := 0
	op := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := int(off) % (200 * 1024)
		if o+len(data) > len(model) {
			return true
		}
		if _, err := sk.Seek(nil, int64(o), fs.SeekSet); err != nil {
			return false
		}
		if _, err := fl.Write(nil, data); err != nil {
			return false
		}
		copy(model[o:], data)
		if o+len(data) > modelSize {
			modelSize = o + len(data)
		}
		// Verify a read spanning the write.
		if _, err := sk.Seek(nil, int64(o), fs.SeekSet); err != nil {
			return false
		}
		got := make([]byte, len(data))
		n, err := fl.Read(nil, got)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:n], model[o:o+n])
	}
	if err := quick.Check(op, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	// Full-file comparison at the end.
	if _, err := sk.Seek(nil, 0, fs.SeekSet); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, modelSize)
	total := 0
	for total < modelSize {
		n, err := fl.Read(nil, got[total:])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if !bytes.Equal(got[:total], model[:total]) {
		t.Fatal("final content diverged from model")
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	f := newFS(t, 2048)
	for i := 0; i < 40; i++ {
		fl, err := openOF(f, fmt.Sprintf("/f%02d", i), fs.OCreate|fs.OWrOnly)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		fl.Write(nil, []byte{byte(i)})
		fl.Close(nil)
	}
	d, _ := openOF(f, "/", fs.ORdOnly)
	entries, _ := d.ReadDir(nil)
	if len(entries) != 40 {
		t.Fatalf("entries = %d, want 40", len(entries))
	}
	// Unlink reuses dirent holes.
	f.Unlink(nil, "/f00")
	fl, err := openOF(f, "/new", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	d2, _ := openOF(f, "/", fs.ORdOnly)
	entries2, _ := d2.ReadDir(nil)
	if len(entries2) != 40 {
		t.Fatalf("entries after churn = %d", len(entries2))
	}
}
