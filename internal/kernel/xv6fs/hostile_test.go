// Hostile-image hardening: a corrupt or adversarial superblock or log
// header must fail the mount with a typed error — never panic, hang, or
// size an allocation from an unchecked field.
package xv6fs

import (
	"encoding/binary"
	"errors"
	"testing"

	"protosim/internal/kernel/fs"
	"protosim/internal/kernel/jnl"
)

// hostileImage formats a valid image, then lets corrupt rewrite the
// superblock before the mount attempt.
func hostileImage(t *testing.T, corrupt func(sb *Superblock)) *fs.Ramdisk {
	t.Helper()
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, BlockSize)
	if err := rd.ReadBlocks(0, 1, blk); err != nil {
		t.Fatal(err)
	}
	var sb Superblock
	sb.decode(blk)
	corrupt(&sb)
	sb.encode(blk)
	if err := rd.WriteBlocks(0, 1, blk); err != nil {
		t.Fatal(err)
	}
	return rd
}

func TestMountRejectsHostileSuperblock(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(sb *Superblock)
	}{
		{"bad magic", func(sb *Superblock) { sb.Magic = 0xDEADBEEF }},
		{"size beyond device", func(sb *Superblock) { sb.Size = 1 << 30 }},
		{"size max uint32", func(sb *Superblock) { sb.Size = 0xFFFFFFFF }},
		{"size tiny", func(sb *Superblock) { sb.Size = 2 }},
		{"no inodes", func(sb *Superblock) { sb.NInodes = 0 }},
		{"one inode", func(sb *Superblock) { sb.NInodes = 1 }},
		{"inode array overruns bitmap", func(sb *Superblock) { sb.NInodes = 1 << 20 }},
		{"inode count max uint32", func(sb *Superblock) { sb.NInodes = 0xFFFFFFFF }},
		{"inode start zero", func(sb *Superblock) { sb.InodeStart = 0 }},
		{"inode start max uint32", func(sb *Superblock) { sb.InodeStart = 0xFFFFFFFF }},
		{"bitmap before inodes", func(sb *Superblock) { sb.BitmapStart = sb.InodeStart - 1 }},
		{"bitmap overruns data", func(sb *Superblock) { sb.DataStart = sb.BitmapStart }},
		{"data beyond volume", func(sb *Superblock) { sb.DataStart = sb.Size }},
		{"data start max uint32", func(sb *Superblock) { sb.DataStart = 0xFFFFFFFF }},
		{"log overlaps inode array", func(sb *Superblock) { sb.LogSize = sb.InodeStart }},
		{"log start zero", func(sb *Superblock) { sb.LogStart = 0 }},
		{"log size max uint32", func(sb *Superblock) { sb.LogSize = 0xFFFFFFFF }},
		{"log single block", func(sb *Superblock) { sb.LogSize = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rd := hostileImage(t, tc.corrupt)
			if _, err := Mount(rd, nil); !errors.Is(err, ErrBadFS) {
				t.Fatalf("Mount = %v, want ErrBadFS", err)
			}
		})
	}
}

// hostileLogHeader writes an adversarial journal header onto an
// otherwise-valid image: magic plus count, then count home addresses.
func hostileLogHeader(t *testing.T, rd *fs.Ramdisk, count uint32, homes ...uint32) {
	t.Helper()
	blk := make([]byte, BlockSize)
	if err := rd.ReadBlocks(0, 1, blk); err != nil {
		t.Fatal(err)
	}
	var sb Superblock
	sb.decode(blk)
	hdr := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(hdr[0:], jnl.Magic)
	binary.LittleEndian.PutUint32(hdr[4:], count)
	for i, h := range homes {
		binary.LittleEndian.PutUint32(hdr[8+4*i:], h)
	}
	if err := rd.WriteBlocks(int(sb.LogStart), 1, hdr); err != nil {
		t.Fatal(err)
	}
}

func TestMountRejectsHostileLogHeader(t *testing.T) {
	mk := func(t *testing.T) *fs.Ramdisk {
		rd := fs.NewRamdisk(BlockSize, 1024)
		if err := Mkfs(rd, 64); err != nil {
			t.Fatal(err)
		}
		return rd
	}
	t.Run("count beyond slots", func(t *testing.T) {
		rd := mk(t)
		hostileLogHeader(t, rd, 0xFFFF)
		if _, err := Mount(rd, nil); !errors.Is(err, jnl.ErrBadLog) {
			t.Fatalf("Mount = %v, want ErrBadLog", err)
		}
	})
	t.Run("home beyond device", func(t *testing.T) {
		rd := mk(t)
		hostileLogHeader(t, rd, 1, 0xFFFFFF00)
		if _, err := Mount(rd, nil); !errors.Is(err, jnl.ErrBadLog) {
			t.Fatalf("Mount = %v, want ErrBadLog", err)
		}
	})
	t.Run("home inside log region", func(t *testing.T) {
		rd := mk(t)
		hostileLogHeader(t, rd, 1, 2) // slot block, inside [LogStart, +LogSize)
		if _, err := Mount(rd, nil); !errors.Is(err, jnl.ErrBadLog) {
			t.Fatalf("Mount = %v, want ErrBadLog", err)
		}
	})
	t.Run("garbage header mounts clean", func(t *testing.T) {
		// No jnl magic: not a committed transaction, nothing to replay.
		rd := mk(t)
		blk := make([]byte, BlockSize)
		rd.ReadBlocks(0, 1, blk)
		var sb Superblock
		sb.decode(blk)
		junk := make([]byte, BlockSize)
		for i := range junk {
			junk[i] = byte(37 * i)
		}
		if err := rd.WriteBlocks(int(sb.LogStart), 1, junk); err != nil {
			t.Fatal(err)
		}
		if _, err := Mount(rd, nil); err != nil {
			t.Fatalf("Mount = %v, want nil", err)
		}
	})
}

// TestHostileOrphanListIsSweptNotTrusted: an orphan list naming the root
// inode, out-of-range inums, or live files must not reclaim anything it
// shouldn't — entries are validated per-inum and the region is swept.
func TestHostileOrphanList(t *testing.T) {
	rd := fs.NewRamdisk(BlockSize, 1024)
	if err := Mkfs(rd, 64); err != nil {
		t.Fatal(err)
	}
	f, err := Mount(rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := openOF(f, "/keep.txt", fs.OCreate|fs.OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Write(nil, []byte("live data")); err != nil {
		t.Fatal(err)
	}
	fl.Close(nil)
	if err := f.Sync(nil); err != nil {
		t.Fatal(err)
	}
	// Plant hostile entries directly on disk: root, out-of-range, a live
	// linked file's inum, and garbage.
	st, err := f.Stat(nil, "/keep.txt")
	if err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, BlockSize)
	rd.ReadBlocks(0, 1, blk)
	binary.LittleEndian.PutUint32(blk[orphanOff+4:], rootInum)
	binary.LittleEndian.PutUint32(blk[orphanOff+8:], 0xFFFFFFF0)
	binary.LittleEndian.PutUint32(blk[orphanOff+12:], uint32(st.Inode))
	binary.LittleEndian.PutUint32(blk[orphanOff+16:], 63) // in-range but free
	if err := rd.WriteBlocks(0, 1, blk); err != nil {
		t.Fatal(err)
	}
	f2, err := Mount(rd, nil)
	if err != nil {
		t.Fatalf("Mount with hostile orphan list = %v", err)
	}
	// The live file survived (NLink > 0 protects it).
	got := make([]byte, 16)
	fl2, err := openOF(f2, "/keep.txt", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := fl2.Read(nil, got); err != nil || string(got[:n]) != "live data" {
		t.Fatalf("read after hostile recovery = %q, %v", got[:n], err)
	}
	fl2.Close(nil)
	// The list was swept clean.
	var swept [BlockSize]byte
	if err := f2.readBlock(nil, 0, func(d []byte) { copy(swept[:], d) }); err != nil {
		t.Fatal(err)
	}
	for i := orphanOff; i < BlockSize; i++ {
		if swept[i] != 0 {
			t.Fatalf("orphan region byte %d = %#x after sweep, want 0", i, swept[i])
		}
	}
}
