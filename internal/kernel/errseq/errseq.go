// Package errseq implements writeback-error streams with per-observer
// cursors, modeled on Linux's errseq_t — the mechanism behind both the
// kernel's per-inode error tracking (mapping->wb_err) and the per-open-file
// refinement (struct file's f_wb_err).
//
// A Stream records asynchronous failures nobody was waiting on (a flusher
// daemon's write error, an eviction writeback error). Each recorded failure
// advances a never-rewinding sequence number, so a later successful retry
// does not erase the epoch: once data failed to reach the device, every
// observer's next observation reports it, exactly once per observer.
//
// Observers hold a Cursor — their private position in the stream. An open
// file description samples the stream's cursor at open (Sample) and
// observes it at every fsync (Observe): if the stream advanced past the
// cursor, the recorded error is reported and the cursor catches up. Two
// descriptors on the same file each hold their own cursor, so each reports
// a failure exactly once — Linux's f_wb_err semantics, which a single
// per-file cursor cannot give.
//
// Sample carries Linux's "seen" subtlety: a stream holding an error no
// observer has yet reported samples to a position BEFORE that error, so a
// file opened after the failure still learns about it on its first fsync.
// Once any observer has reported the epoch, later opens sample the current
// position and stay silent — the error is not news anymore.
//
// The zero Stream is ready and clean. A Stream must not be copied after
// first use.
package errseq

import "sync"

// Cursor is one observer's position in a Stream. The zero Cursor is the
// position of a clean stream; descriptors obtain theirs with Sample at
// open time and hand it back to Observe. A Cursor belongs to exactly one
// Stream; all cursor movement happens under that Stream's lock.
type Cursor uint64

// Stream is one writeback-error stream: a sequence that advances on every
// recorded failure, the most recent error, and the "unseen" flag that
// gives late openers their first observation of an unreported epoch.
type Stream struct {
	mu     sync.Mutex
	seq    uint64
	err    error
	unseen bool // an epoch no observer has reported yet

	// legacy is the stream's own built-in observer, for single-observer
	// uses (a cache's device-wide stream observed only by the volume sync
	// barrier) and for tests.
	legacy Cursor
}

// Record advances the stream with an asynchronous write failure.
func (s *Stream) Record(err error) {
	s.mu.Lock()
	s.seq++
	s.err = err
	s.unseen = true
	s.mu.Unlock()
}

// Sample returns the cursor a new observer should start from: the current
// position — unless the stream holds an epoch nobody has reported yet, in
// which case the cursor lands just before it, so the new observer's first
// Observe reports the pending error (a file opened after a still-unreported
// writeback failure must hear about it).
func (s *Stream) Sample() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unseen {
		return Cursor(s.seq - 1)
	}
	return Cursor(s.seq)
}

// Observe is the sample-and-advance: if the stream moved past c since c's
// last observation, the recorded error is reported once and c catches up;
// a stream at c's position stays silent. Concurrent observers — even of
// the same cursor, two fsyncs racing on one descriptor — serialize on the
// stream's lock.
func (s *Stream) Observe(c *Cursor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uint64(*c) == s.seq {
		return nil
	}
	*c = Cursor(s.seq)
	s.unseen = false
	return s.err
}

// Check observes the stream's built-in legacy cursor — the single-observer
// mode (device-wide streams, tests).
func (s *Stream) Check() error { return s.Observe(&s.legacy) }

// Pending reports whether the stream holds an error its built-in observer
// has not yet seen (diagnostics and tests).
func (s *Stream) Pending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(s.legacy) != s.seq
}
